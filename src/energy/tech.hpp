// Technology calibration constants (GlobalFoundries 22FDX class, 1 GHz).
//
// The paper reports synthesis results (Synopsys DC, GF22 FD-SOI, SSG corner
// for timing/area; TT corner for power). We cannot synthesize RTL here, so
// these constants encode the published data points and standard-cell
// scaling rules; every constant cites the figure it was calibrated against.
// EXPERIMENTS.md records how well the resulting model matches each figure.
#pragma once

namespace axipack::energy {

/// System clock for all power estimates (paper §III-C/D).
inline constexpr double kClockGhz = 1.0;

// ---- Fig. 4a: adapter area at 1 GHz, per bus width (kGE) ----
inline constexpr double kAdapterArea64 = 69.0;
inline constexpr double kAdapterArea128 = 130.0;
inline constexpr double kAdapterArea256 = 257.0;

// ---- Fig. 4a: minimum achievable clock period per bus width (ps) ----
inline constexpr double kMinPeriod64 = 787.0;
inline constexpr double kMinPeriod128 = 800.0;
inline constexpr double kMinPeriod256 = 839.0;

/// Area inflation when constraining the clock below 1 GHz toward the
/// minimum period (synthesis upsizes cells); ~+15% at the wall.
inline constexpr double kTightClockAreaPenalty = 0.15;
/// Area relaxation available at very loose clocks (smallest cells).
inline constexpr double kLooseClockAreaSlack = 0.08;

// ---- Fig. 4b: adapter area fractions at 256 bit (sum ~= 1) ----
inline constexpr double kFracIndirW = 74.0 / 258.0;
inline constexpr double kFracIndirR = 73.0 / 258.0;
inline constexpr double kFracStrideW = 37.0 / 258.0;
inline constexpr double kFracStrideR = 36.0 / 258.0;
inline constexpr double kFracBaseConv = 26.0 / 258.0;
inline constexpr double kFracMemMux = 9.0 / 258.0;
inline constexpr double kFracAxiDemux = 3.0 / 258.0;

// ---- Fig. 5c: bank crossbar area model (kGE, for 8 word ports) ----
// crossbar wiring/muxing grows with ports x banks; modulo/divide units are
// needed only for non-power-of-two bank counts and amortize with m.
inline constexpr double kXbarBase = 1.5;
inline constexpr double kXbarPerBank = 0.67;
inline constexpr double kModBase = 2.0;
inline constexpr double kModPerBank = 0.15;
inline constexpr double kDivBase = 4.0;
inline constexpr double kDivPerBank = 0.25;

/// Ara's area for 8 lanes, back-derived from the paper's statement that the
/// 256-bit adapter is 6.2% of Ara (257 / 0.062).
inline constexpr double kAraAreaKge8Lanes = 4145.0;

// ---- Fig. 4c: event energies (pJ) and static power (mW) ----
// Calibrated so BASE benchmark powers land in the paper's 100-300 mW band
// and PACK power rises at most ~31% (trmv) while energy efficiency gains
// track the measured speedups.
inline constexpr double kStaticPowerMw = 75.0;        ///< leakage + clock tree
inline constexpr double kEnergyFmaPj = 9.0;           ///< FP32 FMA + VRF access
inline constexpr double kEnergyBusBeatPj = 14.0;      ///< 256b R/W beat traversal
/// AR/AW handshake: address-phase traversal of VLSU address generation,
/// crossbar routing and adapter demux. Dominant on BASE's per-element
/// narrow accesses (one request per element) — this is what keeps BASE
/// power comparable to PACK's in Fig. 4c despite the lower throughput.
inline constexpr double kEnergyReqPj = 20.0;
inline constexpr double kEnergyBankWordPj = 5.5;      ///< 32b SRAM access + xbar
inline constexpr double kEnergyDispatchPj = 11.0;     ///< CVA6->Ara instruction
inline constexpr double kEnergyScalarCyclePj = 16.0;  ///< CVA6 active cycle
inline constexpr double kEnergyIdealWordPj = 6.0;     ///< IDEAL port word

}  // namespace axipack::energy
