#include "energy/power_model.hpp"

#include "energy/tech.hpp"

namespace axipack::energy {

PowerEstimate estimate(const sys::RunResult& result) {
  const sim::Counters& a = result.activity;
  // Bus beats scale in energy with bus width (wire count).
  const double beat_scale = static_cast<double>(result.bus_bits) / 256.0;
  double dynamic_pj = 0.0;
  dynamic_pj += static_cast<double>(a.get("vfu.elems")) * kEnergyFmaPj;
  dynamic_pj += static_cast<double>(result.bus.r_beats + result.bus.w_beats) *
                kEnergyBusBeatPj * beat_scale;
  dynamic_pj += static_cast<double>(result.bus.ar_handshakes +
                                    result.bus.aw_handshakes) *
                kEnergyReqPj;
  dynamic_pj += static_cast<double>(result.bank_grants) * kEnergyBankWordPj;
  dynamic_pj +=
      static_cast<double>(a.get("proc.dispatches")) * kEnergyDispatchPj;
  dynamic_pj +=
      static_cast<double>(a.get("proc.scalar_cycles")) * kEnergyScalarCyclePj;
  const std::uint64_t ideal_words = (a.get("ideal.read_bytes") +
                                     a.get("ideal.write_bytes") +
                                     a.get("ideal.index_bytes")) /
                                    4;
  dynamic_pj += static_cast<double>(ideal_words) * kEnergyIdealWordPj;

  const double static_pj =
      static_cast<double>(result.cycles) * kStaticPowerMw / kClockGhz;
  const double total_pj = dynamic_pj + static_pj;
  const double time_ns = static_cast<double>(result.cycles) / kClockGhz;

  PowerEstimate est;
  est.energy_uj = total_pj * 1e-6;
  est.power_mw = time_ns > 0.0 ? total_pj / time_ns : 0.0;  // pJ/ns == mW
  return est;
}

double efficiency_gain(const PowerEstimate& base_est,
                       std::uint64_t base_cycles,
                       const PowerEstimate& pack_est,
                       std::uint64_t pack_cycles) {
  (void)base_cycles;
  (void)pack_cycles;
  if (pack_est.energy_uj <= 0.0) return 0.0;
  return base_est.energy_uj / pack_est.energy_uj;
}

}  // namespace axipack::energy
