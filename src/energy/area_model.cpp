#include "energy/area_model.hpp"

#include <cassert>
#include <cmath>

#include "energy/tech.hpp"
#include "util/bits.hpp"

namespace axipack::energy {

namespace {

double area_at_1ghz(unsigned bus_bits) {
  switch (bus_bits) {
    case 64: return kAdapterArea64;
    case 128: return kAdapterArea128;
    case 256: return kAdapterArea256;
    default: {
      // Linear interpolation/extrapolation on width (the paper observes
      // linear scaling).
      const double slope = (kAdapterArea256 - kAdapterArea64) / (256.0 - 64.0);
      return kAdapterArea64 + slope * (static_cast<double>(bus_bits) - 64.0);
    }
  }
}

}  // namespace

double adapter_min_period_ps(unsigned bus_bits) {
  switch (bus_bits) {
    case 64: return kMinPeriod64;
    case 128: return kMinPeriod128;
    case 256: return kMinPeriod256;
    default: {
      const double slope = (kMinPeriod256 - kMinPeriod64) / (256.0 - 64.0);
      return kMinPeriod64 + slope * (static_cast<double>(bus_bits) - 64.0);
    }
  }
}

std::optional<double> adapter_area_kge(unsigned bus_bits, double clock_ps) {
  const double t_min = adapter_min_period_ps(bus_bits);
  if (clock_ps < t_min) return std::nullopt;
  const double a_1ghz = area_at_1ghz(bus_bits);
  if (clock_ps >= 1000.0) {
    // Relaxed clocks let synthesis downsize cells, asymptotically saving
    // kLooseClockAreaSlack of the area.
    const double relax = 1.0 - kLooseClockAreaSlack * (1.0 - 1000.0 / clock_ps);
    return a_1ghz * relax;
  }
  // Tightening toward the minimum period upsizes cells superlinearly.
  const double frac = (1000.0 - clock_ps) / (1000.0 - t_min);
  return a_1ghz * (1.0 + kTightClockAreaPenalty * frac * frac);
}

AdapterBreakdown adapter_breakdown_kge(unsigned bus_bits) {
  const double total = area_at_1ghz(bus_bits);
  AdapterBreakdown b;
  b.indirect_w = total * kFracIndirW;
  b.indirect_r = total * kFracIndirR;
  b.strided_w = total * kFracStrideW;
  b.strided_r = total * kFracStrideR;
  b.base_conv = total * kFracBaseConv;
  b.mem_mux = total * kFracMemMux;
  b.axi_demux = total * kFracAxiDemux;
  return b;
}

XbarArea bank_xbar_area_kge(unsigned banks, unsigned ports) {
  assert(banks > 0 && ports > 0);
  const double port_scale = static_cast<double>(ports) / 8.0;
  XbarArea a;
  a.crossbar = (kXbarBase + kXbarPerBank * banks) * port_scale;
  if (!util::is_pow2(banks)) {
    // Each port needs a modulo unit for bank selection and a divider for
    // the row address (paper Fig. 5c).
    a.modulo = (kModBase + kModPerBank * banks) * port_scale;
    a.divider = (kDivBase + kDivPerBank * banks) * port_scale;
  }
  return a;
}

double ara_area_kge(unsigned lanes) {
  return kAraAreaKge8Lanes * static_cast<double>(lanes) / 8.0;
}

}  // namespace axipack::energy
