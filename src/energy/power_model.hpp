// Event-based power/energy model reproducing paper Fig. 4c: per-benchmark
// average power for BASE and PACK, and the energy-efficiency improvement
// (same work, fewer cycles at mildly higher power).
#pragma once

#include "systems/system.hpp"

namespace axipack::energy {

struct PowerEstimate {
  double power_mw = 0.0;   ///< average power over the run
  double energy_uj = 0.0;  ///< total energy of the run
};

/// Estimates power/energy of a finished run from its activity counters
/// (the run records the bus width of the system that produced it).
PowerEstimate estimate(const sys::RunResult& result);

/// Energy-efficiency improvement of `pack` over `base` for the same
/// workload: (P_base * t_base) / (P_pack * t_pack).
double efficiency_gain(const PowerEstimate& base_est, std::uint64_t base_cycles,
                       const PowerEstimate& pack_est,
                       std::uint64_t pack_cycles);

}  // namespace axipack::energy
