// Analytical area/timing model for the AXI-Pack adapter and bank crossbar,
// reproducing paper Figs. 4a, 4b and 5c. See tech.hpp for calibration.
#pragma once

#include <optional>

namespace axipack::energy {

/// Minimum achievable clock period for the adapter at a bus width (ps).
double adapter_min_period_ps(unsigned bus_bits);

/// Adapter area in kGE when synthesized at `clock_ps`; nullopt if the
/// period is below the minimum achievable for that width.
std::optional<double> adapter_area_kge(unsigned bus_bits, double clock_ps);

/// Per-block adapter area breakdown (Fig. 4b), at 1 GHz.
struct AdapterBreakdown {
  double indirect_w = 0;
  double indirect_r = 0;
  double strided_w = 0;
  double strided_r = 0;
  double base_conv = 0;
  double mem_mux = 0;
  double axi_demux = 0;

  double total() const {
    return indirect_w + indirect_r + strided_w + strided_r + base_conv +
           mem_mux + axi_demux;
  }
};
AdapterBreakdown adapter_breakdown_kge(unsigned bus_bits);

/// Bank crossbar area split (Fig. 5c): modulo/divider only for non-pow2.
struct XbarArea {
  double crossbar = 0;
  double modulo = 0;
  double divider = 0;

  double total() const { return crossbar + modulo + divider; }
};
XbarArea bank_xbar_area_kge(unsigned banks, unsigned ports = 8);

/// Ara's approximate area (lane-dominated), for the adapter/Ara ratio.
double ara_area_kge(unsigned lanes);

}  // namespace axipack::energy
