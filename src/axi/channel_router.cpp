#include "axi/channel_router.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "axi/burst.hpp"

namespace axipack::axi {

namespace {

unsigned log2_exact(std::uint64_t v) {
  unsigned s = 0;
  while ((std::uint64_t{1} << s) < v) ++s;
  return s;
}

}  // namespace

ChannelRouter::ChannelRouter(sim::Kernel& k, AxiPort& upstream,
                             const ChannelRouteConfig& cfg,
                             const std::string& name)
    : k_(k), up_(upstream), cfg_(cfg) {
  assert(cfg_.channels >= 2 && cfg_.channels <= 64);
  assert((cfg_.channels & (cfg_.channels - 1)) == 0);
  assert(cfg_.granule > 0 && (cfg_.granule & (cfg_.granule - 1)) == 0);
  log2c_ = log2_exact(cfg_.channels);
  gran_log2_ = log2_exact(cfg_.granule);
  down_.reserve(cfg_.channels);
  for (unsigned c = 0; c < cfg_.channels; ++c) {
    down_.push_back(
        std::make_unique<AxiPort>(k, 2, name + ".ch" + std::to_string(c)));
  }
  r_expect_.resize(cfg_.channels);
  b_expect_.resize(cfg_.channels);
  k.add(*this);
  k.subscribe(*this, up_.ar);
  k.subscribe(*this, up_.aw);
  k.subscribe(*this, up_.w);
  for (auto& p : down_) {
    k.subscribe(*this, p->r);
    k.subscribe(*this, p->b);
  }
}

std::vector<ChannelRouter::Sub> ChannelRouter::split(const AxiAx& ax) const {
  std::vector<Sub> subs;
  if (ax.pack.has_value() || ax.burst != BurstType::incr || ax.len == 0) {
    // Whole-routed (see file header): pack bursts anchor on their stream
    // base, everything else on the request address.
    Sub s;
    s.ax = ax;
    const std::uint64_t anchor =
        (ax.pack.has_value() && ax.pack->indir) ? ax.pack->index_base
                                                : ax.addr;
    s.channel = static_cast<std::uint8_t>(channel_of(anchor));
    subs.push_back(std::move(s));
    return subs;
  }
  // Multi-beat INCR: group consecutive beats by owning channel. The channel
  // can only change at an interleave-granule boundary, so a full-width
  // sequential stream yields granule-sized sub-bursts.
  unsigned first = 0;
  unsigned ch = channel_of(beat_addr(ax, 0));
  const auto emit = [&](unsigned begin, unsigned end, unsigned channel) {
    Sub s;
    s.ax = ax;
    s.ax.addr = beat_addr(ax, begin);
    s.ax.len = static_cast<std::uint16_t>(end - begin - 1);
    s.channel = static_cast<std::uint8_t>(channel);
    subs.push_back(std::move(s));
  };
  for (unsigned i = 1; i < ax.beats(); ++i) {
    const unsigned c = channel_of(beat_addr(ax, i));
    if (c == ch) continue;
    emit(first, i, ch);
    first = i;
    ch = c;
  }
  emit(first, ax.beats(), ch);
  return subs;
}

void ChannelRouter::tick() {
  // R before AR: a poison raised while forwarding is observed by the AR
  // emitter in the same cycle, so no sub-burst of a dead transaction is
  // emitted after its error already went upstream.
  tick_r();
  tick_b();
  tick_ar();
  tick_aw();
  tick_w();
}

ChannelRouter::ReadTxn* ChannelRouter::find_read(std::uint64_t seq) {
  for (ReadTxn& t : r_plan_) {
    if (t.seq == seq) return &t;
  }
  return nullptr;
}

ChannelRouter::WriteTxn* ChannelRouter::find_write(std::uint64_t seq) {
  for (WriteTxn& t : b_plan_) {
    if (t.seq == seq) return &t;
  }
  return nullptr;
}

void ChannelRouter::drain_r() {
  // Always pop every visible beat (the deadlock break, see file header):
  // per channel, this master's sub-bursts return in emission order, so
  // the expect queue names the owning sub of every arriving beat.
  for (unsigned c = 0; c < cfg_.channels; ++c) {
    sim::Fifo<AxiR>& src = down_[c]->r;
    while (src.can_pop()) {
      assert(!r_expect_[c].empty() && "R beat with no expecting sub-burst");
      const RSlot slot = r_expect_[c].front();
      ReadTxn* txn = find_read(slot.seq);
      assert(txn != nullptr);
      Sub& sub = txn->subs[slot.sub];
      const AxiR beat = src.pop();
      assert(beat.id == txn->id &&
             "single-ID masters only: R reassembly is AR-ordered");
      sub.buf.push_back(beat);
      if (beat.last) {
        sub.complete = true;
        r_expect_[c].pop_front();
      }
    }
  }
}

void ChannelRouter::reap_poisoned() {
  while (!r_plan_.empty()) {
    ReadTxn& txn = r_plan_.front();
    if (!txn.poisoned) return;
    // The error already terminated the burst upstream: discard whatever
    // the remaining subs returned, skip cancelled (never-emitted) ones,
    // and wait for emitted stragglers still owing beats.
    while (txn.cur < txn.subs.size()) {
      Sub& s = txn.subs[txn.cur];
      if (!s.emitted) {
        ++txn.cur;
        continue;
      }
      s.buf.clear();
      if (!s.complete) break;
      ++txn.cur;
    }
    if (txn.cur < txn.subs.size()) return;
    // Fully drained. Leave it for the emitter to retire if its upstream
    // AR is still being split (single-entry plan).
    if (ar_splitting_ && r_plan_.size() == 1) return;
    r_plan_.pop_front();
  }
}

void ChannelRouter::tick_r() {
  drain_r();
  reap_poisoned();
  if (r_plan_.empty() || !up_.r.can_push()) return;
  ReadTxn& txn = r_plan_.front();
  if (txn.poisoned || txn.cur >= txn.subs.size()) return;
  Sub& sub = txn.subs[txn.cur];
  if (sub.buf.empty()) return;
  AxiR beat = sub.buf.front();
  sub.buf.pop_front();
  ++txn.beats_seen;
  const bool final_sub = txn.cur + 1 == txn.subs.size();
  if (!beat.last) {
    up_.r.push(beat);
    return;
  }
  const bool truncated = txn.beats_seen < sub.ax.beats();
  if (final_sub || truncated) {
    // Either the true end of the original burst or an error-terminated
    // sub-burst: in both shapes upstream sees the burst end here (the
    // truncated case reproduces exactly what a truncating link does).
    up_.r.push(beat);
    if (truncated && !final_sub) {
      txn.poisoned = true;
      ++txn.cur;
      txn.beats_seen = 0;
      reap_poisoned();  // stragglers may already be buffered
      return;
    }
    r_plan_.pop_front();
  } else {
    // Seam between sub-bursts inside the original burst: hide it.
    beat.last = false;
    up_.r.push(beat);
    ++txn.cur;
    txn.beats_seen = 0;
  }
}

void ChannelRouter::drain_b() {
  for (unsigned c = 0; c < cfg_.channels; ++c) {
    sim::Fifo<AxiB>& src = down_[c]->b;
    while (src.can_pop()) {
      assert(!b_expect_[c].empty() && "B with no expecting write txn");
      WriteTxn* txn = find_write(b_expect_[c].front());
      b_expect_[c].pop_front();
      const AxiB b = src.pop();
      assert(txn != nullptr && b.id == txn->id);
      txn->resp = worst_resp(txn->resp, b.resp);
      ++txn->received;
    }
  }
}

void ChannelRouter::tick_b() {
  drain_b();
  if (b_plan_.empty() || !up_.b.can_push()) return;
  WriteTxn& txn = b_plan_.front();
  if (txn.received < txn.sub_channels.size()) return;
  up_.b.push(AxiB{txn.id, txn.resp});
  b_plan_.pop_front();
}

bool ChannelRouter::quiescent() const {
  // Buffered responses act without a new push (the master freeing the
  // upstream R/B fifo is a pop, not a wake event): stay awake until the
  // reorder buffers are flushed. Request-side work is input-anchored.
  for (const ReadTxn& t : r_plan_) {
    for (const Sub& s : t.subs) {
      if (!s.buf.empty()) return false;
    }
  }
  for (const WriteTxn& t : b_plan_) {
    if (t.received == t.sub_channels.size()) return false;
  }
  return true;
}

void ChannelRouter::tick_ar() {
  if (!ar_splitting_) {
    if (!up_.ar.can_pop()) return;
    ReadTxn txn;
    txn.subs = split(up_.ar.front());
    txn.seq = next_seq_++;
    txn.id = up_.ar.front().id;
    // The plan entry exists from split time so tick_r can forward early
    // subs' beats while later subs are still blocked on full AR fifos.
    r_plan_.push_back(std::move(txn));
    ar_splitting_ = true;
    ar_next_sub_ = 0;
  }
  ReadTxn& txn = r_plan_.back();
  if (txn.poisoned) {
    // The transaction already error-terminated upstream; cancel the
    // un-emitted remainder.
    up_.ar.pop();
    ar_splitting_ = false;
    return;
  }
  while (ar_next_sub_ < txn.subs.size()) {
    Sub& s = txn.subs[ar_next_sub_];
    if (!down_[s.channel]->ar.try_push(s.ax)) break;
    s.emitted = true;
    r_expect_[s.channel].push_back(RSlot{txn.seq, ar_next_sub_});
    ++ar_next_sub_;
  }
  if (ar_next_sub_ == txn.subs.size()) {
    up_.ar.pop();
    ar_splitting_ = false;
  }
}

void ChannelRouter::tick_aw() {
  if (!aw_splitting_) {
    if (!up_.aw.can_pop()) return;
    aw_subs_ = split(up_.aw.front());
    WriteTxn txn;
    txn.seq = next_seq_++;
    txn.id = up_.aw.front().id;
    for (const Sub& s : aw_subs_) txn.sub_channels.push_back(s.channel);
    b_plan_.push_back(std::move(txn));
    aw_splitting_ = true;
    aw_next_sub_ = 0;
  }
  while (aw_next_sub_ < aw_subs_.size()) {
    const Sub& s = aw_subs_[aw_next_sub_];
    if (!down_[s.channel]->aw.try_push(s.ax)) break;
    // W beats follow sub-AW acceptance order, one route entry per sub.
    w_route_.push_back(WRoute{s.channel, s.ax.beats()});
    b_expect_[s.channel].push_back(b_plan_.back().seq);
    ++aw_next_sub_;
  }
  if (aw_next_sub_ == aw_subs_.size()) {
    up_.aw.pop();
    aw_splitting_ = false;
  }
}

void ChannelRouter::tick_w() {
  if (w_route_.empty()) return;
  WRoute& rt = w_route_.front();
  sim::Fifo<AxiW>& dst = down_[rt.channel]->w;
  if (!dst.can_push() || !up_.w.can_pop()) return;
  AxiW beat = up_.w.pop();
  beat.last = rt.beats_left == 1;  // per-sub last; the seam is re-cut here
  dst.push(beat);
  if (--rt.beats_left == 0) w_route_.pop_front();
}

}  // namespace axipack::axi
