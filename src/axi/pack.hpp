// Bit-level encoding of the AXI-Pack AR/AW user field (paper Fig. 1).
//
// Layout (LSB first), parameterized by the user-signal width:
//
//   bit 0        : pack   — extension active
//   bit 1        : indir  — 0: strided burst, 1: indirect burst
//   bits 2..3    : isize  — index size: 0 -> 8b, 1 -> 16b, 2 -> 32b
//   bits 4..W-1  : strided : sign-extended element stride in bytes
//                  indirect: index-array base address (zero-extended)
//
// The stream length in elements is carried redundantly alongside the AXI len
// field in our model (AxiAx::pack->num_elems); on real hardware it is implied
// by len and the element size, with the final beat padded. Encoding/decoding
// here exists to pin down protocol-level compatibility: a request round-trips
// through a fixed-width user bit vector exactly as it would through RTL
// user wires, and non-pack traffic carries user == 0.
#pragma once

#include <cstdint>
#include <optional>

#include "axi/types.hpp"

namespace axipack::axi {

/// Default user width used by the evaluation systems (enough for a 48-bit
/// index base plus the control bits).
inline constexpr unsigned kDefaultUserBits = 52;

/// Raw user vector; only the low `kDefaultUserBits` may be set.
using UserBits = std::uint64_t;

/// Supported user-signal widths: 4 control bits plus at least a nibble of
/// payload, at most the 64-bit UserBits carrier.
inline constexpr unsigned kMinUserBits = 8;
inline constexpr unsigned kMaxUserBits = 64;

/// True iff `stride` is representable in the signed payload field of a
/// `user_bits`-wide user signal (two's complement, user_bits - 4 bits).
bool stride_fits_user(std::int64_t stride,
                      unsigned user_bits = kDefaultUserBits);

/// True iff `index_base` is representable in the unsigned payload field of
/// a `user_bits`-wide user signal (user_bits - 4 bits; 48-bit bases need
/// user_bits >= 52, i.e. the default width).
bool index_base_fits_user(std::uint64_t index_base,
                          unsigned user_bits = kDefaultUserBits);

/// Encodes a PackRequest into user bits. Returns 0 for a plain AXI4 request
/// (disengaged optional), preserving backward compatibility.
/// Strides must satisfy stride_fits_user and index bases
/// index_base_fits_user (asserted); the full representable range —
/// including the maximum-magnitude negative stride at the minimum user
/// width and 48-bit index bases at the default width — round-trips exactly
/// through decode_user.
UserBits encode_user(const std::optional<PackRequest>& pack,
                     unsigned user_bits = kDefaultUserBits);

/// Decodes user bits back into the optional PackRequest. Bits above
/// `user_bits` have no wires on the bus and are ignored. `num_elems` is not
/// part of the wire encoding; the caller supplies it from burst geometry
/// (len, size, bus width) via stream_elems().
std::optional<PackRequest> decode_user(UserBits user,
                                       std::uint64_t num_elems,
                                       unsigned user_bits = kDefaultUserBits);

/// Number of elements a pack burst of `beats` beats carries on a
/// `bus_bytes`-wide bus with `elem_bytes`-wide elements, when the stream has
/// `total_elems` elements remaining (the last beat may be partial).
std::uint64_t stream_elems(unsigned beats, unsigned bus_bytes,
                           unsigned elem_bytes, std::uint64_t total_elems);

/// Index size field codes.
unsigned index_bits_to_code(unsigned index_bits);
unsigned index_code_to_bits(unsigned code);

}  // namespace axipack::axi
