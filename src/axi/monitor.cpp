#include "axi/monitor.hpp"

#include "axi/protocol_checker.hpp"

namespace axipack::axi {

BusStats BusStats::diff(const BusStats& earlier) const {
  BusStats d;
  d.ar_handshakes = ar_handshakes - earlier.ar_handshakes;
  d.aw_handshakes = aw_handshakes - earlier.aw_handshakes;
  d.r_beats = r_beats - earlier.r_beats;
  d.r_payload_bytes = r_payload_bytes - earlier.r_payload_bytes;
  d.r_index_bytes = r_index_bytes - earlier.r_index_bytes;
  d.w_beats = w_beats - earlier.w_beats;
  d.w_payload_bytes = w_payload_bytes - earlier.w_payload_bytes;
  d.b_handshakes = b_handshakes - earlier.b_handshakes;
  d.r_fault_beats = r_fault_beats - earlier.r_fault_beats;
  return d;
}

BusStats& BusStats::operator+=(const BusStats& other) {
  ar_handshakes += other.ar_handshakes;
  aw_handshakes += other.aw_handshakes;
  r_beats += other.r_beats;
  r_payload_bytes += other.r_payload_bytes;
  r_index_bytes += other.r_index_bytes;
  w_beats += other.w_beats;
  w_payload_bytes += other.w_payload_bytes;
  b_handshakes += other.b_handshakes;
  r_fault_beats += other.r_fault_beats;
  return *this;
}

AxiLink::AxiLink(sim::Kernel& k, AxiPort& upstream, AxiPort& downstream)
    : up_(upstream), down_(downstream), kernel_(k) {
  k.add(*this);
  k.subscribe(*this, up_.ar);
  k.subscribe(*this, up_.aw);
  k.subscribe(*this, up_.w);
  k.subscribe(*this, down_.r);
  k.subscribe(*this, down_.b);
}

void AxiLink::tick() {
  const sim::Cycle now = kernel_.now();
  if (up_.ar.can_pop() && down_.ar.can_push()) {
    if (checker_ != nullptr) checker_->observe_ar(up_.ar.front(), now);
    down_.ar.push(up_.ar.pop());
    ++stats_.ar_handshakes;
  }
  if (up_.aw.can_pop() && down_.aw.can_push()) {
    if (checker_ != nullptr) checker_->observe_aw(up_.aw.front(), now);
    down_.aw.push(up_.aw.pop());
    ++stats_.aw_handshakes;
  }
  if (up_.w.can_pop() && down_.w.can_push()) {
    AxiW beat = up_.w.pop();
    if (checker_ != nullptr) checker_->observe_w(beat, now);
    ++stats_.w_beats;
    stats_.w_payload_bytes += beat.useful_bytes;
    down_.w.push(std::move(beat));
  }
  if (down_.b.can_pop() && up_.b.can_push()) {
    if (checker_ != nullptr) checker_->observe_b(down_.b.front(), now);
    up_.b.push(down_.b.pop());
    ++stats_.b_handshakes;
  }
  if (r_discarding_ && down_.r.can_pop()) {
    // Tail of a truncated burst: swallow silently (not forwarded, not
    // counted, not shown to the checker) until the real last beat.
    if (down_.r.pop().last) r_discarding_ = false;
  } else if (down_.r.can_pop() && up_.r.can_push() &&
             now >= r_stall_until_) {
    if (faults_ != nullptr && !r_fault_decided_) {
      r_fault_decided_ = true;
      sim::Cycle stall_len = 0;
      r_fault_ = faults_->next_link_r(&stall_len, &r_flip_bit_);
      if (r_fault_ == sim::LinkFault::stall) {
        // Hold the head beat; it is delivered clean once the stall lapses
        // (r_fault_decided_ stays set, so no second draw for this beat).
        r_stall_until_ = now + stall_len;
        r_fault_ = sim::LinkFault::none;
        return;
      }
    }
    AxiR beat = down_.r.pop();
    if (r_fault_ != sim::LinkFault::none) ++stats_.r_fault_beats;
    if (r_fault_ == sim::LinkFault::flip) {
      const unsigned bits =
          beat.useful_bytes > 0 ? beat.useful_bytes * 8u : 8u;
      const unsigned bit = r_flip_bit_ % bits;
      beat.data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      beat.resp = worst_resp(beat.resp, kRespSlvErr);
    } else if (r_fault_ == sim::LinkFault::truncate) {
      beat.resp = worst_resp(beat.resp, kRespSlvErr);
      if (!beat.last) {
        beat.last = true;
        r_discarding_ = true;
      }
    }
    r_fault_ = sim::LinkFault::none;
    r_fault_decided_ = false;
    if (checker_ != nullptr) checker_->observe_r(beat, now);
    ++stats_.r_beats;
    stats_.r_payload_bytes += beat.useful_bytes;
    if (beat.traffic == Traffic::index) {
      stats_.r_index_bytes += beat.useful_bytes;
    }
    up_.r.push(std::move(beat));
  }
}

}  // namespace axipack::axi
