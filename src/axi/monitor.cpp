#include "axi/monitor.hpp"

#include "axi/protocol_checker.hpp"

namespace axipack::axi {

BusStats BusStats::diff(const BusStats& earlier) const {
  BusStats d;
  d.ar_handshakes = ar_handshakes - earlier.ar_handshakes;
  d.aw_handshakes = aw_handshakes - earlier.aw_handshakes;
  d.r_beats = r_beats - earlier.r_beats;
  d.r_payload_bytes = r_payload_bytes - earlier.r_payload_bytes;
  d.r_index_bytes = r_index_bytes - earlier.r_index_bytes;
  d.w_beats = w_beats - earlier.w_beats;
  d.w_payload_bytes = w_payload_bytes - earlier.w_payload_bytes;
  d.b_handshakes = b_handshakes - earlier.b_handshakes;
  return d;
}

AxiLink::AxiLink(sim::Kernel& k, AxiPort& upstream, AxiPort& downstream)
    : up_(upstream), down_(downstream), kernel_(k) {
  k.add(*this);
  k.subscribe(*this, up_.ar);
  k.subscribe(*this, up_.aw);
  k.subscribe(*this, up_.w);
  k.subscribe(*this, down_.r);
  k.subscribe(*this, down_.b);
}

void AxiLink::tick() {
  const sim::Cycle now = kernel_.now();
  if (up_.ar.can_pop() && down_.ar.can_push()) {
    if (checker_ != nullptr) checker_->observe_ar(up_.ar.front(), now);
    down_.ar.push(up_.ar.pop());
    ++stats_.ar_handshakes;
  }
  if (up_.aw.can_pop() && down_.aw.can_push()) {
    if (checker_ != nullptr) checker_->observe_aw(up_.aw.front(), now);
    down_.aw.push(up_.aw.pop());
    ++stats_.aw_handshakes;
  }
  if (up_.w.can_pop() && down_.w.can_push()) {
    AxiW beat = up_.w.pop();
    if (checker_ != nullptr) checker_->observe_w(beat, now);
    ++stats_.w_beats;
    stats_.w_payload_bytes += beat.useful_bytes;
    down_.w.push(std::move(beat));
  }
  if (down_.r.can_pop() && up_.r.can_push()) {
    AxiR beat = down_.r.pop();
    if (checker_ != nullptr) checker_->observe_r(beat, now);
    ++stats_.r_beats;
    stats_.r_payload_bytes += beat.useful_bytes;
    if (beat.traffic == Traffic::index) {
      stats_.r_index_bytes += beat.useful_bytes;
    }
    up_.r.push(std::move(beat));
  }
  if (down_.b.can_pop() && up_.b.can_push()) {
    if (checker_ != nullptr) checker_->observe_b(down_.b.front(), now);
    up_.b.push(down_.b.pop());
    ++stats_.b_handshakes;
  }
}

}  // namespace axipack::axi
