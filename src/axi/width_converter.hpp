// AXI data-width downsizer with AXI-Pack support.
//
// Demonstrates the paper's claim that burst-reshaping IPs "can easily be
// extended to support AXI-Pack by re-packing bus-aligned data elements":
// a wide-master/narrow-slave converter splits each wide beat into
// wide/narrow sub-beats for regular full-width INCR bursts, and for pack
// bursts simply re-derives the beat count from the element stream (packed
// payload is bus-aligned on both sides, so repacking is a concatenation).
//
// Scope: full-width INCR bursts and pack bursts; FIXED/WRAP and narrow
// regular bursts are not used by any evaluation system and are rejected.
#pragma once

#include <cstdint>
#include <deque>

#include "axi/types.hpp"
#include "sim/kernel.hpp"

namespace axipack::axi {

class AxiWidthConverter final : public sim::Component {
 public:
  /// `up` is the wide master-side port (width `up_bytes`), `down` the narrow
  /// slave-side port (width `down_bytes`); up_bytes must be a multiple of
  /// down_bytes.
  AxiWidthConverter(sim::Kernel& k, AxiPort& up, unsigned up_bytes,
                    AxiPort& down, unsigned down_bytes);

  void tick() override;
  /// With no burst in flight, work can only start from a subscribed channel;
  /// in-flight contexts (partial assembly/split) need ticking every cycle.
  bool quiescent() const override {
    return reads_.empty() && writes_.empty();
  }

 private:
  struct ReadCtx {
    std::uint32_t id = 0;
    Traffic traffic = Traffic::data;
    unsigned up_beats = 0;        ///< wide beats still to produce
    unsigned ratio_now = 0;       ///< narrow beats composing current wide beat
    std::uint64_t elems_left = 0; ///< pack: elements still to deliver
    unsigned elem_bytes = 0;      ///< pack element size (0 = regular)
    // Assembly state.
    AxiR acc{};
    unsigned filled = 0;  ///< narrow beats already merged into acc
  };
  struct WriteCtx {
    unsigned up_beats = 0;
    std::uint64_t elems_left = 0;
    unsigned elem_bytes = 0;
    // Split state.
    AxiW cur{};
    unsigned sent = 0;  ///< narrow beats already emitted from cur
    bool have_cur = false;
  };

  unsigned ratio() const { return up_bytes_ / down_bytes_; }
  /// Narrow beats needed for one wide beat carrying `useful` payload bytes.
  unsigned sub_beats(unsigned useful) const;

  AxiAx convert_ax(const AxiAx& ax) const;

  AxiPort& up_;
  AxiPort& down_;
  unsigned up_bytes_;
  unsigned down_bytes_;
  std::deque<ReadCtx> reads_;
  std::deque<WriteCtx> writes_;
};

}  // namespace axipack::axi
