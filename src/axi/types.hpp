// AXI4 channel payload types and the AXI-Pack request extension.
//
// We model AXI4 at beat granularity with its five independent channels:
//   AR (read request), R (read data), AW (write request), W (write data),
//   B (write response).
// Each channel is a sim::Fifo of the corresponding beat struct; a pop from
// the Fifo corresponds to a valid/ready handshake on the wire.
//
// AXI-Pack (the paper's contribution) rides in the AR/AW `user` field: a
// `pack` bit enables packed-burst semantics, an `indir` bit selects indirect
// (index-array) over strided addressing, and the remaining bits carry either
// the element stride or the index base/size. See pack.hpp for the bit-level
// user encoding.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "sim/kernel.hpp"

namespace axipack::axi {

/// Widest supported data bus: 256 bit (the paper's largest configuration).
inline constexpr unsigned kMaxBusBytes = 32;

/// Raw bytes of one data-bus beat. Only the first `bus_bytes` lanes of a
/// system's configured width are meaningful.
using BeatBytes = std::array<std::uint8_t, kMaxBusBytes>;

/// AXI4 burst type (AxBURST).
enum class BurstType : std::uint8_t { fixed = 0, incr = 1, wrap = 2 };

// AXI4 response codes (xRESP). EXOKAY is listed for completeness; nothing
// in this model issues exclusive accesses. Semantics here:
//   SLVERR — the slave detected a (possibly transient) error: corrupt or
//            lost data, an uncorrectable memory fault. Retryable.
//   DECERR — no slave decodes the address. Permanent; masters fail the
//            operation without retrying.
inline constexpr std::uint8_t kRespOkay = 0;
inline constexpr std::uint8_t kRespExokay = 1;
inline constexpr std::uint8_t kRespSlvErr = 2;
inline constexpr std::uint8_t kRespDecErr = 3;

/// Worst-of merge for resp codes: OKAY < EXOKAY < SLVERR < DECERR happens
/// to be the numeric order, so accumulating the max keeps the most severe
/// code when beats or sub-beats combine (width converter, pack beats).
inline std::uint8_t worst_resp(std::uint8_t a, std::uint8_t b) {
  return a > b ? a : b;
}

/// Measurement tag distinguishing index-vector traffic from element data so
/// bus monitors can report the paper's "R utilization (no indices)" series.
/// This is testbench metadata, not an architectural signal.
enum class Traffic : std::uint8_t { data = 0, index = 1 };

/// AXI-Pack request semantics carried in the AR/AW user field.
struct PackRequest {
  bool indir = false;           ///< false: strided burst, true: indirect burst
  std::int64_t stride = 0;      ///< byte stride between elements (strided)
  std::uint64_t index_base = 0; ///< address of the index array (indirect)
  unsigned index_bits = 32;     ///< index element width: 8, 16, or 32
  std::uint64_t num_elems = 0;  ///< stream length in elements for this burst

  bool operator==(const PackRequest&) const = default;
};

/// Read/write request beat (AR and AW have identical shape in AXI4).
struct AxiAx {
  std::uint64_t addr = 0;
  std::uint32_t id = 0;
  std::uint16_t len = 0;   ///< beats - 1, per AXI4
  std::uint8_t size = 0;   ///< log2(bytes); element size for pack bursts
  BurstType burst = BurstType::incr;
  Traffic traffic = Traffic::data;
  std::optional<PackRequest> pack;  ///< engaged iff the `pack` user bit is set

  unsigned beats() const { return static_cast<unsigned>(len) + 1; }
  unsigned beat_bytes() const { return 1u << size; }
};

using AxiAr = AxiAx;
using AxiAw = AxiAx;

/// Read data beat.
struct AxiR {
  std::uint32_t id = 0;
  BeatBytes data{};
  bool last = false;
  std::uint8_t resp = 0;             ///< 0 = OKAY
  std::uint16_t useful_bytes = 0;    ///< payload bytes carried (measurement)
  Traffic traffic = Traffic::data;
};

/// Write data beat. `strb` is a bitmask over byte lanes (bit i = lane i).
struct AxiW {
  BeatBytes data{};
  std::uint32_t strb = 0;
  bool last = false;
  std::uint16_t useful_bytes = 0;    ///< payload bytes carried (measurement)
};

/// Write response beat.
struct AxiB {
  std::uint32_t id = 0;
  std::uint8_t resp = 0;
};

/// One AXI port: the five channels, all owned here. A master pushes AR/AW/W
/// and pops R/B; a slave does the opposite. Fifo depths of 2 sustain one
/// handshake per cycle (register-slice semantics).
struct AxiPort {
  sim::Fifo<AxiAr> ar;
  sim::Fifo<AxiR> r;
  sim::Fifo<AxiAw> aw;
  sim::Fifo<AxiW> w;
  sim::Fifo<AxiB> b;

  AxiPort(sim::Kernel& k, std::size_t depth = 2, const std::string& name = {})
      : ar(k, depth, 1, name + ".ar"),
        r(k, depth, 1, name + ".r"),
        aw(k, depth, 1, name + ".aw"),
        w(k, depth, 1, name + ".w"),
        b(k, depth, 1, name + ".b") {}
};

/// Copies `n` bytes from `src` into beat lanes [lane, lane+n).
void place_bytes(BeatBytes& beat, unsigned lane, const std::uint8_t* src,
                 unsigned n);

/// Extracts `n` bytes from beat lanes [lane, lane+n) into `dst`.
void extract_bytes(const BeatBytes& beat, unsigned lane, std::uint8_t* dst,
                   unsigned n);

/// Strobe mask with `n` bits set starting at `lane`.
std::uint32_t strb_mask(unsigned lane, unsigned n);

}  // namespace axipack::axi
