// ChannelRouter: per-master address-interleaving fan-out to N memory
// channels (the scale-out hop in front of the per-channel fabrics).
//
// One router sits directly behind each master port of a multi-channel
// system. It decomposes the address of every AR/AW into a channel index
// (XOR-folded granule interleaving, see channel_of), fans the request out
// to its per-channel downstream ports, and re-serializes the responses so
// the master still sees one ordinary AXI4 slave:
//
//   * multi-beat INCR bursts are split at interleave-granule boundaries
//     into per-channel sub-bursts (pure beat pass-through: the sub-burst
//     beats carry the same absolute addresses the original beats had);
//   * AXI-Pack bursts, FIXED/WRAP bursts and single-beat requests are
//     routed whole — pack bursts by their stream anchor (the index-array
//     base for indirect bursts, the element base for strided ones), since
//     their element addresses are data-dependent and cannot be decomposed
//     at the fabric layer. Data stays exact (every backend serves absolute
//     addresses against the shared backing store); only the *timing* of a
//     whole-routed burst is charged to a single channel.
//
// The read and write machinery share no state: AR splitting + R
// reassembly and AW splitting + W routing + B merging are fully
// independent streams, so a long read burst on one channel never
// head-of-line blocks writes (or reads on other channels) — the
// multi-stream property wide fabrics need.
//
// Response re-serialization is strict AR/AW order per master, which is
// also what the single-ID masters in this codebase (VLSU, DMA) already
// rely on from the fabric. Responses are drained *eagerly* into
// per-transaction reorder buffers the moment they are visible, and
// forwarded upstream from the buffers in order. This is the deadlock
// break: each channel returns responses in its own acceptance order, so a
// router that only popped the beat it can forward next would head-of-line
// block a channel's return path on data another master needs first — with
// finite fabric buffering, two masters interleaved across two channels
// form a cyclic wait. Because every router always drains every down-port
// response Fifo, a channel's return path never blocks on re-serialization
// and the cycle cannot close. Buffering is bounded by the outstanding
// sub-bursts the down-port AR fifos admit.
//
// A sub-burst that terminates early with an error (link truncation,
// DECERR) poisons its transaction: the error beat is forwarded with
// `last` set — the same error-terminated-burst shape a truncated link
// burst has — and the remaining sub-bursts are drained and discarded
// (un-emitted ones are cancelled).
//
// Quiescence: request-side work is anchored on visible items in
// subscribed Fifos, but buffered responses can act without a new push
// (the master freeing the upstream R/B Fifo is a pop, not a wake event),
// so quiescent() vouches true only while the reorder buffers are empty.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "axi/types.hpp"
#include "sim/kernel.hpp"

namespace axipack::axi {

/// Address-interleave geometry shared by every router of a system.
struct ChannelRouteConfig {
  std::uint64_t base = 0;        ///< memory region base
  std::uint64_t size = 0;        ///< memory region size in bytes
  std::uint64_t granule = 4096;  ///< interleave granule in bytes (pow2)
  unsigned channels = 2;         ///< channel count (pow2, >= 2)
};

class ChannelRouter final : public sim::Component {
 public:
  /// `upstream` is the master's port (the router pops AR/AW/W from it and
  /// pushes R/B into it). The router owns its `channels` downstream ports;
  /// the per-channel fabric attaches to down(c).
  ChannelRouter(sim::Kernel& k, AxiPort& upstream,
                const ChannelRouteConfig& cfg, const std::string& name);

  AxiPort& down(unsigned channel) { return *down_[channel]; }
  unsigned num_channels() const { return cfg_.channels; }

  /// Channel owning `addr`: the XOR-fold of every log2(channels)-wide bit
  /// group of the granule index, so every aligned block of `channels`
  /// consecutive granules still covers each channel exactly once (wide
  /// sequential streams engage all channels) while power-of-two strides
  /// spread instead of collapsing onto one channel — the same folding idea
  /// the permuted DRAM bank mapping uses, composable with it because the
  /// per-channel DRAM map compacts the granule index back out (see
  /// DramAddressMap). Addresses outside [base, base+size) go to channel 0,
  /// whose crossbar synthesizes the DECERR.
  unsigned channel_of(std::uint64_t addr) const {
    if (addr < cfg_.base || addr - cfg_.base >= cfg_.size) return 0;
    const std::uint64_t g = (addr - cfg_.base) >> gran_log2_;
    std::uint64_t h = g;
    for (unsigned s = log2c_; s < 64; s += log2c_) h ^= g >> s;
    return static_cast<unsigned>(h & (cfg_.channels - 1));
  }

  void tick() override;
  /// True while the response reorder buffers are empty (see file header):
  /// request-side work is anchored on visible items in subscribed Fifos,
  /// buffered responses keep the router awake until flushed.
  bool quiescent() const override;

  /// Outstanding transactions (read + write), for drain checks and tests.
  std::size_t pending() const {
    return r_plan_.size() + b_plan_.size() + w_route_.size();
  }

 private:
  /// One per-channel slice of a split request.
  struct Sub {
    AxiAx ax;                ///< the sub-burst as emitted downstream
    std::uint8_t channel = 0;
    bool emitted = false;    ///< sub-AR/AW pushed downstream
    bool complete = false;   ///< all beats received (reads)
    std::deque<AxiR> buf;    ///< received-but-not-yet-forwarded beats
  };

  /// Read transaction: sub-bursts in original-beat order; responses are
  /// pulled selectively from the per-channel R Fifos in exactly this
  /// order and re-serialized upstream.
  struct ReadTxn {
    std::vector<Sub> subs;
    std::uint64_t seq = 0;        ///< router-local serial (reorder lookup)
    std::uint32_t id = 0;
    unsigned cur = 0;             ///< sub currently being forwarded
    unsigned beats_seen = 0;      ///< beats forwarded of subs[cur]
    bool poisoned = false;        ///< early error termination: discard rest
  };

  /// Write transaction awaiting its per-sub B responses.
  struct WriteTxn {
    std::vector<std::uint8_t> sub_channels;  ///< one entry per sub-AW
    std::uint64_t seq = 0;
    std::uint32_t id = 0;
    unsigned received = 0;        ///< sub-Bs drained so far
    std::uint8_t resp = 0;        ///< worst-of merge of drained sub-Bs
  };

  /// W beats owed to a sub-AW already emitted (AW acceptance order).
  struct WRoute {
    std::uint8_t channel = 0;
    unsigned beats_left = 0;
  };

  /// Splits `ax` into per-channel sub-bursts (see file header).
  std::vector<Sub> split(const AxiAx& ax) const;

  ReadTxn* find_read(std::uint64_t seq);
  WriteTxn* find_write(std::uint64_t seq);
  /// Pops every visible down-port R beat into its sub's reorder buffer.
  void drain_r();
  /// Pops every visible down-port B into its transaction's merge state.
  void drain_b();
  /// Discards buffered beats of a poisoned front transaction and retires
  /// it once every emitted sub has fully returned.
  void reap_poisoned();

  void tick_r();
  void tick_b();
  void tick_ar();
  void tick_aw();
  void tick_w();

  sim::Kernel& k_;
  AxiPort& up_;
  ChannelRouteConfig cfg_;
  unsigned log2c_ = 1;
  unsigned gran_log2_ = 12;
  std::vector<std::unique_ptr<AxiPort>> down_;

  // Read machine (no state shared with the write machine below).
  std::deque<ReadTxn> r_plan_;
  bool ar_splitting_ = false;  ///< r_plan_.back() belongs to up_.ar's head
  unsigned ar_next_sub_ = 0;
  /// Per channel: emitted-but-incomplete read subs in emission order —
  /// exactly the order the channel returns this master's bursts in.
  struct RSlot {
    std::uint64_t seq = 0;
    unsigned sub = 0;
  };
  std::vector<std::deque<RSlot>> r_expect_;

  // Write machine.
  std::deque<WriteTxn> b_plan_;
  bool aw_splitting_ = false;  ///< b_plan_.back() belongs to up_.aw's head
  std::vector<Sub> aw_subs_;
  unsigned aw_next_sub_ = 0;
  std::deque<WRoute> w_route_;
  /// Per channel: write txns with an outstanding sub-B, emission order.
  std::vector<std::deque<std::uint64_t>> b_expect_;

  std::uint64_t next_seq_ = 0;
};

}  // namespace axipack::axi
