// AXI(-Pack) protocol checker: a passive monitor that sits on an AxiLink
// hop and verifies protocol invariants as traffic flows by — the simulation
// counterpart of an RTL protocol-assertion IP. Violations are recorded (and
// optionally assert-fail) so tests can wire a checker into any harness and
// get protocol coverage for free.
//
// Checked rules:
//   * R bursts return exactly len+1 beats per AR (pack bursts: the beat
//     count implied by the element stream), with `last` on precisely the
//     final beat;
//   * R bursts for one ID do not interleave;
//   * every B corresponds to exactly one earlier AW;
//   * W beats never precede their AW beyond the current in-flight window,
//     and each write burst carries exactly the expected beat count with
//     `last` correctly placed;
//   * pack requests are well-formed: element size divides the bus width,
//     index size is 8/16/32, and the AXI len field matches the packed
//     stream geometry.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "axi/types.hpp"
#include "sim/kernel.hpp"

namespace axipack::axi {

/// One recorded protocol violation.
struct ProtocolViolation {
  sim::Cycle cycle = 0;
  std::string rule;
  std::string detail;
};

/// Passive observer; see file header. Attach via the callbacks of AxiLink
/// (observe_* are called by the link as beats cross the monitored hop).
class ProtocolChecker {
 public:
  explicit ProtocolChecker(unsigned bus_bytes, bool assert_on_violation = false)
      : bus_bytes_(bus_bytes), assert_on_violation_(assert_on_violation) {}

  void observe_ar(const AxiAr& ar, sim::Cycle now);
  void observe_aw(const AxiAw& aw, sim::Cycle now);
  void observe_w(const AxiW& w, sim::Cycle now);
  void observe_r(const AxiR& r, sim::Cycle now);
  void observe_b(const AxiB& b, sim::Cycle now);

  const std::vector<ProtocolViolation>& violations() const {
    return violations_;
  }
  bool clean() const { return violations_.empty(); }

  /// True once every outstanding transaction has completed — call at the
  /// end of a test to ensure nothing was left dangling.
  bool drained() const;

 private:
  struct ReadTxn {
    std::uint32_t id = 0;
    std::uint64_t beats_expected = 0;
    std::uint64_t beats_seen = 0;
  };
  struct WriteTxn {
    std::uint32_t id = 0;
    std::uint64_t beats_expected = 0;
    std::uint64_t beats_seen = 0;
    bool w_done = false;
  };

  void violation(sim::Cycle now, std::string rule, std::string detail);
  std::uint64_t expected_beats(const AxiAx& ax) const;
  void check_pack_request(const AxiAx& ax, const char* chan, sim::Cycle now);

  unsigned bus_bytes_;
  bool assert_on_violation_;
  // Reads per ID: outstanding bursts, responses return in order per ID.
  std::map<std::uint32_t, std::deque<ReadTxn>> reads_;
  std::deque<WriteTxn> writes_;  ///< AW order; W data follows this order
  std::vector<ProtocolViolation> violations_;
};

}  // namespace axipack::axi
