// AxiLink: a register slice that forwards all five channels between an
// upstream (master-side) and downstream (slave-side) AxiPort, one beat per
// channel per cycle, while counting traffic. This is both the bus monitor
// used to measure the paper's R-bus utilization and the pipeline stage a
// real interconnect hop would insert.
#pragma once

#include <cstdint>

#include "axi/types.hpp"
#include "sim/kernel.hpp"

namespace axipack::axi {

/// Traffic counters accumulated by an AxiLink.
struct BusStats {
  std::uint64_t ar_handshakes = 0;
  std::uint64_t aw_handshakes = 0;
  std::uint64_t r_beats = 0;
  std::uint64_t r_payload_bytes = 0;  ///< useful bytes, all traffic classes
  std::uint64_t r_index_bytes = 0;    ///< useful bytes tagged Traffic::index
  std::uint64_t w_beats = 0;
  std::uint64_t w_payload_bytes = 0;
  std::uint64_t b_handshakes = 0;

  BusStats diff(const BusStats& earlier) const;
};

class ProtocolChecker;

class AxiLink final : public sim::Component {
 public:
  /// Forwards upstream->downstream on AR/AW/W and downstream->upstream on
  /// R/B. Registers itself with the kernel.
  AxiLink(sim::Kernel& k, AxiPort& upstream, AxiPort& downstream);

  void tick() override;
  /// Pure forwarder: all pending work lives in the subscribed channel Fifos,
  /// so the kernel's input-visibility check alone decides wakefulness.
  bool quiescent() const override { return true; }

  const BusStats& stats() const { return stats_; }

  /// Attaches a passive protocol checker observing every beat that crosses
  /// this hop (non-owning; pass nullptr to detach).
  void attach_checker(ProtocolChecker* checker) { checker_ = checker; }

 private:
  AxiPort& up_;
  AxiPort& down_;
  BusStats stats_;
  ProtocolChecker* checker_ = nullptr;
  sim::Kernel& kernel_;
};

}  // namespace axipack::axi
