// AxiLink: a register slice that forwards all five channels between an
// upstream (master-side) and downstream (slave-side) AxiPort, one beat per
// channel per cycle, while counting traffic. This is both the bus monitor
// used to measure the paper's R-bus utilization and the pipeline stage a
// real interconnect hop would insert.
#pragma once

#include <cstdint>

#include "axi/types.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"

namespace axipack::axi {

/// Traffic counters accumulated by an AxiLink.
struct BusStats {
  std::uint64_t ar_handshakes = 0;
  std::uint64_t aw_handshakes = 0;
  std::uint64_t r_beats = 0;
  std::uint64_t r_payload_bytes = 0;  ///< useful bytes, all traffic classes
  std::uint64_t r_index_bytes = 0;    ///< useful bytes tagged Traffic::index
  std::uint64_t w_beats = 0;
  std::uint64_t w_payload_bytes = 0;
  std::uint64_t b_handshakes = 0;
  /// R beats this hop corrupted (bit-flip) or truncated under an armed
  /// fault plan — the per-link slice of the system-wide injection count,
  /// so multi-channel systems can report where faults landed.
  std::uint64_t r_fault_beats = 0;

  BusStats diff(const BusStats& earlier) const;
  /// Field-wise accumulation (multi-channel aggregation).
  BusStats& operator+=(const BusStats& other);
};

class ProtocolChecker;

class AxiLink final : public sim::Component {
 public:
  /// Forwards upstream->downstream on AR/AW/W and downstream->upstream on
  /// R/B. Registers itself with the kernel.
  AxiLink(sim::Kernel& k, AxiPort& upstream, AxiPort& downstream);

  void tick() override;
  /// Pure forwarder: all pending work lives in the subscribed channel Fifos,
  /// so the kernel's input-visibility check alone decides wakefulness.
  bool quiescent() const override { return true; }

  const BusStats& stats() const { return stats_; }

  /// Attaches a passive protocol checker observing every beat that crosses
  /// this hop (non-owning; pass nullptr to detach).
  void attach_checker(ProtocolChecker* checker) { checker_ = checker; }

  /// Attaches the system fault plan (nullptr = fault-free). R beats crossing
  /// the hop may then be bit-flipped (SLVERR), truncated (an error beat with
  /// last set; the rest of the real burst is swallowed so master-side burst
  /// accounting stays exact), or stalled a few cycles.
  void set_fault_plan(sim::FaultPlan* plan) { faults_ = plan; }

 private:
  AxiPort& up_;
  AxiPort& down_;
  BusStats stats_;
  ProtocolChecker* checker_ = nullptr;
  sim::Kernel& kernel_;
  sim::FaultPlan* faults_ = nullptr;
  // R-path fault state. All of it advances only while a visible beat sits
  // in down_.r, so quiescent() == true stays protocol-correct: a stalled or
  // discarding link always has its input beat visible and is kept awake.
  bool r_discarding_ = false;    ///< swallowing a truncated burst's tail
  bool r_fault_decided_ = false; ///< head beat's fault already drawn
  sim::LinkFault r_fault_ = sim::LinkFault::none;
  unsigned r_flip_bit_ = 0;
  sim::Cycle r_stall_until_ = 0;
};

}  // namespace axipack::axi
