#include "axi/xbar.hpp"

#include <cassert>

#include "util/bits.hpp"

namespace axipack::axi {

AxiXbar::AxiXbar(sim::Kernel& k, std::vector<AxiPort*> masters,
                 std::vector<AxiPort*> slaves, std::vector<AddrRule> map)
    : masters_(std::move(masters)),
      slaves_(std::move(slaves)),
      map_(std::move(map)),
      id_shift_(masters_.size() > 1
                    ? util::log2_ceil(masters_.size())
                    : 1),
      ar_rr_(slaves_.size(), 0),
      aw_rr_(slaves_.size(), 0),
      w_route_(masters_.size()),
      w_order_(slaves_.size()),
      r_lock_(masters_.size(), -1),
      r_rr_(masters_.size(), 0),
      b_rr_(masters_.size(), 0),
      err_r_(masters_.size()),
      err_b_(masters_.size()),
      sink_ids_(masters_.size()) {
  assert(!masters_.empty() && !slaves_.empty());
  k.add(*this);
  for (AxiPort* m : masters_) {
    k.subscribe(*this, m->ar);
    k.subscribe(*this, m->aw);
    k.subscribe(*this, m->w);
  }
  for (AxiPort* s : slaves_) {
    k.subscribe(*this, s->r);
    k.subscribe(*this, s->b);
  }
}

unsigned AxiXbar::route(std::uint64_t addr) const {
  const unsigned s = route_or_none(addr);
  assert(s != kNoSlave && "address not mapped");
  return s;
}

unsigned AxiXbar::route_or_none(std::uint64_t addr) const {
  for (const AddrRule& rule : map_) {
    if (addr >= rule.base && addr < rule.base + rule.size) return rule.slave;
  }
  return kNoSlave;
}

void AxiXbar::tick_errors() {
  for (unsigned m = 0; m < masters_.size(); ++m) {
    // Capture requests nothing decodes. The id is kept master-side (never
    // remapped): the response is synthesized here, not routed back.
    if (masters_[m]->ar.can_pop() &&
        route_or_none(masters_[m]->ar.front().addr) == kNoSlave) {
      err_r_[m].push_back(masters_[m]->ar.pop().id);
    }
    if (masters_[m]->aw.can_pop() &&
        route_or_none(masters_[m]->aw.front().addr) == kNoSlave) {
      sink_ids_[m].push_back(masters_[m]->aw.pop().id);
      w_route_[m].push_back(kWSink);
    }
    // Swallow the W data owed by an unmapped AW (in AW issue order, like
    // any other W routing); its B fires once the last beat is gone.
    if (!w_route_[m].empty() && w_route_[m].front() == kWSink &&
        masters_[m]->w.can_pop()) {
      if (masters_[m]->w.pop().last) {
        w_route_[m].pop_front();
        err_b_[m].push_back(sink_ids_[m].front());
        sink_ids_[m].pop_front();
      }
    }
    // Emit pending error responses. The R error is a single beat with last
    // set — an error-terminated burst — kept out of the middle of a locked
    // data burst; masters attribute beats by id, so the short burst
    // resolves cleanly against its own request.
    if (!err_r_[m].empty() && r_lock_[m] < 0 && masters_[m]->r.can_push()) {
      AxiR beat;
      beat.id = err_r_[m].front();
      beat.resp = kRespDecErr;
      beat.last = true;
      masters_[m]->r.push(beat);
      err_r_[m].pop_front();
    }
    if (!err_b_[m].empty() && masters_[m]->b.can_push()) {
      AxiB b;
      b.id = err_b_[m].front();
      b.resp = kRespDecErr;
      masters_[m]->b.push(b);
      err_b_[m].pop_front();
    }
  }
}

void AxiXbar::tick_ar() {
  // Per-slave round-robin over masters whose head AR targets it.
  for (unsigned s = 0; s < slaves_.size(); ++s) {
    if (!slaves_[s]->ar.can_push()) continue;
    const unsigned m0 = ar_rr_[s];
    for (unsigned i = 0; i < masters_.size(); ++i) {
      const unsigned m = (m0 + i) % masters_.size();
      if (!masters_[m]->ar.can_pop()) continue;
      if (route(masters_[m]->ar.front().addr) != s) continue;
      AxiAr ar = masters_[m]->ar.pop();
      ar.id = remap(ar.id, m);
      slaves_[s]->ar.push(std::move(ar));
      ar_rr_[s] = (m + 1) % masters_.size();
      break;
    }
  }
}

void AxiXbar::tick_aw() {
  for (unsigned s = 0; s < slaves_.size(); ++s) {
    if (!slaves_[s]->aw.can_push()) continue;
    const unsigned m0 = aw_rr_[s];
    for (unsigned i = 0; i < masters_.size(); ++i) {
      const unsigned m = (m0 + i) % masters_.size();
      if (!masters_[m]->aw.can_pop()) continue;
      if (route(masters_[m]->aw.front().addr) != s) continue;
      AxiAw aw = masters_[m]->aw.pop();
      aw.id = remap(aw.id, m);
      slaves_[s]->aw.push(std::move(aw));
      aw_rr_[s] = (m + 1) % masters_.size();
      w_route_[m].push_back(s);
      w_order_[s].push_back(m);
      break;
    }
  }
}

void AxiXbar::tick_w() {
  // Each slave accepts W beats from the master at the head of its AW
  // acceptance order; each master sends W beats toward the slave at the head
  // of its own AW issue order. A transfer happens when both agree.
  for (unsigned s = 0; s < slaves_.size(); ++s) {
    if (w_order_[s].empty() || !slaves_[s]->w.can_push()) continue;
    const unsigned m = w_order_[s].front();
    if (w_route_[m].empty() || w_route_[m].front() != s) continue;
    if (!masters_[m]->w.can_pop()) continue;
    AxiW beat = masters_[m]->w.pop();
    const bool last = beat.last;
    slaves_[s]->w.push(std::move(beat));
    if (last) {
      w_order_[s].pop_front();
      w_route_[m].pop_front();
    }
  }
}

void AxiXbar::tick_r() {
  // Per-master: stay locked to one slave for the duration of a burst so R
  // beats of one (master, id) stream never interleave.
  for (unsigned m = 0; m < masters_.size(); ++m) {
    if (!masters_[m]->r.can_push()) continue;
    if (r_lock_[m] < 0) {
      const unsigned s0 = r_rr_[m];
      for (unsigned i = 0; i < slaves_.size(); ++i) {
        const unsigned s = (s0 + i) % slaves_.size();
        if (slaves_[s]->r.can_pop() &&
            master_of(slaves_[s]->r.front().id) == m) {
          r_lock_[m] = static_cast<int>(s);
          r_rr_[m] = (s + 1) % slaves_.size();
          break;
        }
      }
    }
    if (r_lock_[m] < 0) continue;
    const auto s = static_cast<unsigned>(r_lock_[m]);
    if (!slaves_[s]->r.can_pop()) continue;
    if (master_of(slaves_[s]->r.front().id) != m) continue;
    AxiR beat = slaves_[s]->r.pop();
    beat.id = unmap(beat.id);
    const bool last = beat.last;
    masters_[m]->r.push(std::move(beat));
    if (last) r_lock_[m] = -1;
  }
}

void AxiXbar::tick_b() {
  for (unsigned m = 0; m < masters_.size(); ++m) {
    if (!masters_[m]->b.can_push()) continue;
    const unsigned s0 = b_rr_[m];
    for (unsigned i = 0; i < slaves_.size(); ++i) {
      const unsigned s = (s0 + i) % slaves_.size();
      if (slaves_[s]->b.can_pop() &&
          master_of(slaves_[s]->b.front().id) == m) {
        AxiB b = slaves_[s]->b.pop();
        b.id = unmap(b.id);
        masters_[m]->b.push(b);
        b_rr_[m] = (s + 1) % slaves_.size();
        break;
      }
    }
  }
}

void AxiXbar::tick_1x1() {
  AxiPort& m = *masters_[0];
  AxiPort& s = *slaves_[0];
  if (m.ar.can_pop() && s.ar.can_push()) {
    AxiAr ar = m.ar.pop();
    assert(route(ar.addr) == 0);
    ar.id = remap(ar.id, 0);
    s.ar.push(std::move(ar));
  }
  if (m.aw.can_pop() && s.aw.can_push()) {
    AxiAw aw = m.aw.pop();
    assert(route(aw.addr) == 0);
    aw.id = remap(aw.id, 0);
    s.aw.push(std::move(aw));
    w_route_[0].push_back(0);
    w_order_[0].push_back(0);
  }
  if (!w_route_[0].empty() && w_route_[0].front() != kWSink &&
      s.w.can_push() && m.w.can_pop()) {
    AxiW beat = m.w.pop();
    const bool last = beat.last;
    s.w.push(std::move(beat));
    if (last) {
      w_order_[0].pop_front();
      w_route_[0].pop_front();
    }
  }
  if (m.r.can_push() && s.r.can_pop()) {
    AxiR beat = s.r.pop();
    beat.id = unmap(beat.id);
    m.r.push(std::move(beat));
  }
  if (m.b.can_push() && s.b.can_pop()) {
    AxiB b = s.b.pop();
    b.id = unmap(b.id);
    m.b.push(b);
  }
}

void AxiXbar::tick() {
  tick_errors();
  if (masters_.size() == 1 && slaves_.size() == 1) {
    tick_1x1();
    return;
  }
  tick_ar();
  tick_aw();
  tick_w();
  tick_r();
  tick_b();
}

}  // namespace axipack::axi
