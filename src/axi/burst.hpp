// AXI4 burst geometry helpers: splitting logical streams into protocol-legal
// bursts and computing per-beat addresses, including narrow and wrapping
// bursts. Masters (the VLSU, DMA-style test drivers) use these to stay within
// AXI4's 256-beat and 4 KiB-boundary rules; pack bursts are exempt from the
// 4 KiB rule by construction (they address a single stream-aware endpoint)
// but still respect the 256-beat length limit.
#pragma once

#include <cstdint>
#include <vector>

#include "axi/types.hpp"

namespace axipack::axi {

inline constexpr unsigned kMaxBurstBeats = 256;
inline constexpr std::uint64_t k4K = 4096;

/// Splits a contiguous byte range [addr, addr+bytes) into legal INCR bursts
/// for a `bus_bytes`-wide bus. Bursts are bus-aligned except possibly the
/// first, never cross a 4 KiB boundary, and have at most 256 beats.
/// All returned requests use `size` = log2(bus_bytes) (full-width beats).
std::vector<AxiAr> split_contiguous(std::uint64_t addr, std::uint64_t bytes,
                                    unsigned bus_bytes,
                                    Traffic traffic = Traffic::data);

/// Splits a strided element stream into AXI-Pack strided bursts (<= 256
/// beats each). `elem_bytes` must divide `bus_bytes`.
std::vector<AxiAr> split_pack_strided(std::uint64_t base,
                                      std::int64_t stride_bytes,
                                      unsigned elem_bytes,
                                      std::uint64_t num_elems,
                                      unsigned bus_bytes);

/// Splits an indexed element stream into AXI-Pack indirect bursts. Each
/// burst's index_base points at the first index it consumes, so bursts are
/// independent (the controller never needs cross-burst state).
std::vector<AxiAr> split_pack_indirect(std::uint64_t elem_base,
                                       std::uint64_t index_base,
                                       unsigned index_bits,
                                       unsigned elem_bytes,
                                       std::uint64_t num_elems,
                                       unsigned bus_bytes);

/// Address of beat `i` of a regular (non-pack) burst, per the AXI4 rules for
/// INCR/FIXED/WRAP with the request's size.
std::uint64_t beat_addr(const AxiAx& ax, unsigned beat);

/// Lowest byte lane touched by beat `i` of a regular narrow burst on a
/// `bus_bytes` bus.
unsigned beat_lane(const AxiAx& ax, unsigned beat, unsigned bus_bytes);

}  // namespace axipack::axi
