#include "axi/types.hpp"

#include <cassert>
#include <cstring>

namespace axipack::axi {

void place_bytes(BeatBytes& beat, unsigned lane, const std::uint8_t* src,
                 unsigned n) {
  assert(lane + n <= kMaxBusBytes);
  std::memcpy(beat.data() + lane, src, n);
}

void extract_bytes(const BeatBytes& beat, unsigned lane, std::uint8_t* dst,
                   unsigned n) {
  assert(lane + n <= kMaxBusBytes);
  std::memcpy(dst, beat.data() + lane, n);
}

std::uint32_t strb_mask(unsigned lane, unsigned n) {
  assert(lane + n <= 32);
  const std::uint64_t mask = ((std::uint64_t{1} << n) - 1) << lane;
  return static_cast<std::uint32_t>(mask);
}

}  // namespace axipack::axi
