#include "axi/burst.hpp"

#include <algorithm>
#include <cassert>

#include "axi/pack.hpp"
#include "util/bits.hpp"

namespace axipack::axi {

using util::ceil_div;
using util::log2_exact;
using util::round_down;

std::vector<AxiAr> split_contiguous(std::uint64_t addr, std::uint64_t bytes,
                                    unsigned bus_bytes, Traffic traffic) {
  std::vector<AxiAr> out;
  if (bytes == 0) return out;
  const auto size = static_cast<std::uint8_t>(log2_exact(bus_bytes));
  std::uint64_t cur = round_down<std::uint64_t>(addr, bus_bytes);
  const std::uint64_t end = addr + bytes;
  while (cur < end) {
    // Stop at the earlier of: 4 KiB boundary, 256-beat limit, end of range.
    const std::uint64_t boundary = round_down(cur, k4K) + k4K;
    const std::uint64_t max_by_len = cur + std::uint64_t{kMaxBurstBeats} * bus_bytes;
    const std::uint64_t stop = std::min({boundary, max_by_len, end});
    const auto beats =
        static_cast<unsigned>(ceil_div<std::uint64_t>(stop - cur, bus_bytes));
    AxiAr ar;
    ar.addr = cur;
    ar.len = static_cast<std::uint16_t>(beats - 1);
    ar.size = size;
    ar.burst = BurstType::incr;
    ar.traffic = traffic;
    out.push_back(ar);
    cur += std::uint64_t{beats} * bus_bytes;
  }
  return out;
}

std::vector<AxiAr> split_pack_strided(std::uint64_t base,
                                      std::int64_t stride_bytes,
                                      unsigned elem_bytes,
                                      std::uint64_t num_elems,
                                      unsigned bus_bytes) {
  assert(bus_bytes % elem_bytes == 0);
  std::vector<AxiAr> out;
  const std::uint64_t epb = bus_bytes / elem_bytes;
  const std::uint64_t max_elems = std::uint64_t{kMaxBurstBeats} * epb;
  std::uint64_t done = 0;
  while (done < num_elems) {
    const std::uint64_t chunk = std::min(num_elems - done, max_elems);
    AxiAr ar;
    ar.addr = base + static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(done) * stride_bytes);
    ar.size = static_cast<std::uint8_t>(log2_exact(elem_bytes));
    ar.len = static_cast<std::uint16_t>(ceil_div(chunk, epb) - 1);
    ar.burst = BurstType::incr;
    ar.pack = PackRequest{.indir = false,
                          .stride = stride_bytes,
                          .index_base = 0,
                          .index_bits = 32,
                          .num_elems = chunk};
    out.push_back(ar);
    done += chunk;
  }
  return out;
}

std::vector<AxiAr> split_pack_indirect(std::uint64_t elem_base,
                                       std::uint64_t index_base,
                                       unsigned index_bits,
                                       unsigned elem_bytes,
                                       std::uint64_t num_elems,
                                       unsigned bus_bytes) {
  assert(bus_bytes % elem_bytes == 0);
  std::vector<AxiAr> out;
  const std::uint64_t epb = bus_bytes / elem_bytes;
  const std::uint64_t max_elems = std::uint64_t{kMaxBurstBeats} * epb;
  std::uint64_t done = 0;
  while (done < num_elems) {
    const std::uint64_t chunk = std::min(num_elems - done, max_elems);
    AxiAr ar;
    ar.addr = elem_base;
    ar.size = static_cast<std::uint8_t>(log2_exact(elem_bytes));
    ar.len = static_cast<std::uint16_t>(ceil_div(chunk, epb) - 1);
    ar.burst = BurstType::incr;
    ar.pack = PackRequest{.indir = true,
                          .stride = 0,
                          .index_base = index_base + done * (index_bits / 8),
                          .index_bits = index_bits,
                          .num_elems = chunk};
    out.push_back(ar);
    done += chunk;
  }
  return out;
}

std::uint64_t beat_addr(const AxiAx& ax, unsigned beat) {
  assert(!ax.pack.has_value());
  const std::uint64_t bytes = ax.beat_bytes();
  switch (ax.burst) {
    case BurstType::fixed:
      return ax.addr;
    case BurstType::incr: {
      if (beat == 0) return ax.addr;
      // Beats after the first are aligned to the transfer size.
      const std::uint64_t aligned = round_down<std::uint64_t>(ax.addr, bytes);
      return aligned + std::uint64_t{beat} * bytes;
    }
    case BurstType::wrap: {
      // WRAP requires aligned start and power-of-two container.
      const std::uint64_t container = bytes * ax.beats();
      const std::uint64_t base = round_down(ax.addr, container);
      const std::uint64_t off = (ax.addr - base + std::uint64_t{beat} * bytes) %
                                container;
      return base + off;
    }
  }
  return ax.addr;
}

unsigned beat_lane(const AxiAx& ax, unsigned beat, unsigned bus_bytes) {
  return static_cast<unsigned>(beat_addr(ax, beat) % bus_bytes);
}

}  // namespace axipack::axi
