#include "axi/protocol_checker.hpp"

#include <cassert>

#include "util/bits.hpp"

namespace axipack::axi {

void ProtocolChecker::violation(sim::Cycle now, std::string rule,
                                std::string detail) {
  violations_.push_back(ProtocolViolation{now, std::move(rule),
                                          std::move(detail)});
  assert(!assert_on_violation_ && "AXI protocol violation");
}

std::uint64_t ProtocolChecker::expected_beats(const AxiAx& ax) const {
  if (!ax.pack.has_value()) return static_cast<std::uint64_t>(ax.len) + 1;
  // Packed payload is tightly bus-aligned: beats = ceil(stream bytes / bus).
  const std::uint64_t bytes = ax.pack->num_elems * ax.beat_bytes();
  return util::ceil_div<std::uint64_t>(bytes, std::uint64_t{bus_bytes_});
}

void ProtocolChecker::check_pack_request(const AxiAx& ax, const char* chan,
                                         sim::Cycle now) {
  if (!ax.pack.has_value()) return;
  const PackRequest& p = *ax.pack;
  const unsigned es = ax.beat_bytes();
  if (es < 4 || bus_bytes_ % es != 0) {
    violation(now, std::string(chan) + ".pack.elem_size",
              "element size " + std::to_string(es) +
                  " does not divide bus width");
  }
  if (p.indir && p.index_bits != 8 && p.index_bits != 16 &&
      p.index_bits != 32) {
    violation(now, std::string(chan) + ".pack.index_size",
              "index width " + std::to_string(p.index_bits));
  }
  if (static_cast<std::uint64_t>(ax.len) + 1 != expected_beats(ax)) {
    violation(now, std::string(chan) + ".pack.len",
              "len field " + std::to_string(ax.len) + " != stream geometry " +
                  std::to_string(expected_beats(ax)) + " beats");
  }
}

void ProtocolChecker::observe_ar(const AxiAr& ar, sim::Cycle now) {
  check_pack_request(ar, "AR", now);
  reads_[ar.id].push_back(ReadTxn{ar.id, expected_beats(ar), 0});
}

void ProtocolChecker::observe_aw(const AxiAw& aw, sim::Cycle now) {
  check_pack_request(aw, "AW", now);
  writes_.push_back(WriteTxn{aw.id, expected_beats(aw), 0, false});
}

void ProtocolChecker::observe_w(const AxiW& w, sim::Cycle now) {
  // W data follows AW order (no WID in AXI4): beats belong to the oldest
  // write burst that has not yet seen its last beat.
  WriteTxn* txn = nullptr;
  for (WriteTxn& t : writes_) {
    if (!t.w_done) {
      txn = &t;
      break;
    }
  }
  if (txn == nullptr) {
    violation(now, "W.orphan", "W beat with no open write burst");
    return;
  }
  ++txn->beats_seen;
  if (w.last) {
    if (txn->beats_seen != txn->beats_expected) {
      violation(now, "W.last",
                "wlast after " + std::to_string(txn->beats_seen) +
                    " beats, expected " +
                    std::to_string(txn->beats_expected));
    }
    txn->w_done = true;
  } else if (txn->beats_seen >= txn->beats_expected) {
    violation(now, "W.overrun",
              "write burst exceeded " +
                  std::to_string(txn->beats_expected) +
                  " beats without wlast");
    txn->w_done = true;  // resynchronize
  }
}

void ProtocolChecker::observe_r(const AxiR& r, sim::Cycle now) {
  auto it = reads_.find(r.id);
  if (it == reads_.end() || it->second.empty()) {
    violation(now, "R.orphan",
              "R beat for id " + std::to_string(r.id) + " with no AR");
    return;
  }
  // Per-ID responses return in request order; a burst must finish before
  // the next burst of the same ID starts (AXI4 forbids same-ID interleave).
  ReadTxn& txn = it->second.front();
  ++txn.beats_seen;
  if (r.last) {
    if (txn.beats_seen != txn.beats_expected) {
      violation(now, "R.last",
                "rlast after " + std::to_string(txn.beats_seen) +
                    " beats, expected " + std::to_string(txn.beats_expected));
    }
    it->second.pop_front();  // keep the (tiny) per-id queue cached
  } else if (txn.beats_seen >= txn.beats_expected) {
    violation(now, "R.overrun",
              "read burst exceeded " + std::to_string(txn.beats_expected) +
                  " beats without rlast");
    it->second.pop_front();
  }
}

void ProtocolChecker::observe_b(const AxiB& b, sim::Cycle now) {
  // Match the oldest write burst with this ID. The response may only come
  // after the burst's last W beat.
  for (auto it = writes_.begin(); it != writes_.end(); ++it) {
    if (it->id != b.id) continue;
    if (!it->w_done) {
      violation(now, "B.early",
                "B for id " + std::to_string(b.id) +
                    " before its last W beat");
    }
    writes_.erase(it);
    return;
  }
  violation(now, "B.orphan", "B for id " + std::to_string(b.id) +
                                 " with no outstanding AW");
}

bool ProtocolChecker::drained() const {
  // Per-id read queues are kept cached when they drain (observe_r is hot);
  // drained means no transaction is outstanding, not no queue exists.
  for (const auto& [id, q] : reads_) {
    if (!q.empty()) return false;
  }
  return writes_.empty();
}

}  // namespace axipack::axi
