#include "axi/width_converter.hpp"

#include <cassert>

#include "axi/burst.hpp"
#include "util/bits.hpp"

namespace axipack::axi {

using util::ceil_div;
using util::log2_exact;

AxiWidthConverter::AxiWidthConverter(sim::Kernel& k, AxiPort& up,
                                     unsigned up_bytes, AxiPort& down,
                                     unsigned down_bytes)
    : up_(up), down_(down), up_bytes_(up_bytes), down_bytes_(down_bytes) {
  assert(up_bytes_ % down_bytes_ == 0 && up_bytes_ > down_bytes_);
  k.add(*this);
  k.subscribe(*this, up_.ar);
  k.subscribe(*this, up_.aw);
  k.subscribe(*this, up_.w);
  k.subscribe(*this, down_.r);
  k.subscribe(*this, down_.b);
}

unsigned AxiWidthConverter::sub_beats(unsigned useful) const {
  return ceil_div(useful, down_bytes_);
}

AxiAx AxiWidthConverter::convert_ax(const AxiAx& ax) const {
  AxiAx out = ax;
  if (ax.pack.has_value()) {
    // Re-pack: same element stream, beat count re-derived for the narrow bus.
    const unsigned elem_bytes = ax.beat_bytes();
    const std::uint64_t epb_dn = down_bytes_ / elem_bytes;
    const std::uint64_t beats = ceil_div(ax.pack->num_elems, epb_dn);
    assert(beats <= kMaxBurstBeats && "split across down-bursts unsupported");
    out.len = static_cast<std::uint16_t>(beats - 1);
  } else {
    assert(ax.burst == BurstType::incr && ax.beat_bytes() == up_bytes_ &&
           "only full-width INCR and pack bursts supported");
    const unsigned beats = ax.beats() * ratio();
    assert(beats <= kMaxBurstBeats && "split across down-bursts unsupported");
    out.len = static_cast<std::uint16_t>(beats - 1);
    out.size = static_cast<std::uint8_t>(log2_exact(down_bytes_));
  }
  return out;
}

void AxiWidthConverter::tick() {
  // AR: forward converted request, remember read context for R assembly.
  if (up_.ar.can_pop() && down_.ar.can_push()) {
    const AxiAr& ar = up_.ar.front();
    ReadCtx ctx;
    ctx.id = ar.id;
    ctx.traffic = ar.traffic;
    ctx.up_beats = ar.beats();
    if (ar.pack.has_value()) {
      ctx.elems_left = ar.pack->num_elems;
      ctx.elem_bytes = ar.beat_bytes();
    }
    down_.ar.push(convert_ax(ar));
    up_.ar.pop();
    reads_.push_back(ctx);
  }

  // R: merge narrow beats into wide beats.
  if (!reads_.empty() && down_.r.can_pop() && up_.r.can_push()) {
    ReadCtx& ctx = reads_.front();
    AxiR sub = down_.r.pop();
    if (ctx.filled == 0) {
      ctx.acc = AxiR{};
      ctx.acc.id = ctx.id;
      ctx.acc.traffic = ctx.traffic;
      if (ctx.elem_bytes != 0) {
        const std::uint64_t epb_up = up_bytes_ / ctx.elem_bytes;
        const auto useful = static_cast<unsigned>(
            std::min<std::uint64_t>(ctx.elems_left, epb_up) * ctx.elem_bytes);
        ctx.ratio_now = sub_beats(useful);
        ctx.acc.useful_bytes = static_cast<std::uint16_t>(useful);
      } else {
        ctx.ratio_now = ratio();
        ctx.acc.useful_bytes = static_cast<std::uint16_t>(up_bytes_);
      }
    }
    place_bytes(ctx.acc.data, ctx.filled * down_bytes_, sub.data.data(),
                down_bytes_);
    // A wide beat is as bad as its worst narrow sub-beat.
    ctx.acc.resp = worst_resp(ctx.acc.resp, sub.resp);
    ++ctx.filled;
    if (ctx.filled == ctx.ratio_now) {
      --ctx.up_beats;
      if (ctx.elem_bytes != 0) {
        const std::uint64_t epb_up = up_bytes_ / ctx.elem_bytes;
        ctx.elems_left -= std::min<std::uint64_t>(ctx.elems_left, epb_up);
      }
      ctx.acc.last = ctx.up_beats == 0;
      up_.r.push(ctx.acc);
      ctx.filled = 0;
      if (ctx.up_beats == 0) reads_.pop_front();
    }
  }

  // AW: forward converted request, remember write context for W splitting.
  if (up_.aw.can_pop() && down_.aw.can_push()) {
    const AxiAw& aw = up_.aw.front();
    WriteCtx ctx;
    ctx.up_beats = aw.beats();
    if (aw.pack.has_value()) {
      ctx.elems_left = aw.pack->num_elems;
      ctx.elem_bytes = aw.beat_bytes();
    }
    down_.aw.push(convert_ax(aw));
    up_.aw.pop();
    writes_.push_back(ctx);
  }

  // W: split wide beats into narrow beats, one narrow beat per cycle.
  if (!writes_.empty() && down_.w.can_push()) {
    WriteCtx& ctx = writes_.front();
    if (!ctx.have_cur && up_.w.can_pop()) {
      ctx.cur = up_.w.pop();
      ctx.sent = 0;
      ctx.have_cur = true;
    }
    if (ctx.have_cur) {
      unsigned subs;
      if (ctx.elem_bytes != 0) {
        const std::uint64_t epb_up = up_bytes_ / ctx.elem_bytes;
        const auto useful = static_cast<unsigned>(
            std::min<std::uint64_t>(ctx.elems_left, epb_up) * ctx.elem_bytes);
        subs = sub_beats(useful);
      } else {
        subs = ratio();
      }
      AxiW out;
      extract_bytes(ctx.cur.data, ctx.sent * down_bytes_, out.data.data(),
                    down_bytes_);
      out.strb = (ctx.cur.strb >> (ctx.sent * down_bytes_)) &
                 strb_mask(0, down_bytes_);
      const unsigned carried = std::min(
          down_bytes_,
          ctx.cur.useful_bytes > ctx.sent * down_bytes_
              ? static_cast<unsigned>(ctx.cur.useful_bytes) - ctx.sent * down_bytes_
              : 0u);
      out.useful_bytes = static_cast<std::uint16_t>(carried);
      ++ctx.sent;
      const bool beat_done = ctx.sent == subs;
      if (beat_done) {
        --ctx.up_beats;
        if (ctx.elem_bytes != 0) {
          const std::uint64_t epb_up = up_bytes_ / ctx.elem_bytes;
          ctx.elems_left -= std::min<std::uint64_t>(ctx.elems_left, epb_up);
        }
        ctx.have_cur = false;
      }
      out.last = beat_done && ctx.up_beats == 0;
      down_.w.push(out);
      if (out.last) writes_.pop_front();
    }
  }

  // B: one down burst per up burst, so pass through.
  if (down_.b.can_pop() && up_.b.can_push()) {
    up_.b.push(down_.b.pop());
  }
}

}  // namespace axipack::axi
