// AXI4 crossbar: M masters x S slaves, address-decoded routing, round-robin
// arbitration per slave, ID remapping for response routing.
//
// This is the "non-burst-reshaping interconnect IP" the paper stresses:
// AXI-Pack bursts flow through it untouched because routing only looks at
// AxADDR/AxID, never at the pack user payload. The crossbar preserves AXI4
// ordering rules: W beats follow AW acceptance order, R bursts of one
// (master, id) never interleave.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "axi/types.hpp"
#include "sim/kernel.hpp"

namespace axipack::axi {

/// One address-map entry: requests with addr in [base, base+size) route to
/// `slave`.
struct AddrRule {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  unsigned slave = 0;
};

class AxiXbar final : public sim::Component {
 public:
  /// `masters[i]` is the port the i-th master drives; `slaves[j]` is the port
  /// the j-th slave serves. Ports are owned by the caller.
  AxiXbar(sim::Kernel& k, std::vector<AxiPort*> masters,
          std::vector<AxiPort*> slaves, std::vector<AddrRule> map);

  void tick() override;
  /// Pure forwarder except for synthesized error responses: arbitration
  /// state only advances on channel traffic (all carried by subscribed
  /// Fifos), but a pending DECERR burst drains without further input, so
  /// the crossbar stays awake until its error queues are empty.
  bool quiescent() const override {
    for (const auto& q : err_r_) {
      if (!q.empty()) return false;
    }
    for (const auto& q : err_b_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  /// Slave index for an address; asserts the address is mapped.
  unsigned route(std::uint64_t addr) const;
  /// Slave index for an address, or kNoSlave when nothing decodes it.
  static constexpr unsigned kNoSlave = ~0u;
  unsigned route_or_none(std::uint64_t addr) const;

 private:
  // ID remap: id' = (id << id_shift_) | master_index.
  std::uint32_t remap(std::uint32_t id, unsigned master) const {
    return (id << id_shift_) | master;
  }
  unsigned master_of(std::uint32_t id) const {
    return id & ((1u << id_shift_) - 1u);
  }
  std::uint32_t unmap(std::uint32_t id) const { return id >> id_shift_; }

  /// Unmapped-address handling (AXI DECERR): consumes AR/AW heads no rule
  /// decodes, swallows the W beats owed by an unmapped AW, and synthesizes
  /// the error responses — a single R beat with last set (an
  /// error-terminated burst, the same shape a truncated link burst has) and
  /// a DECERR B. Runs for the generic and the 1x1 fabric alike.
  void tick_errors();
  void tick_ar();
  void tick_aw();
  void tick_w();
  void tick_r();
  void tick_b();
  /// Degenerate 1x1 crossbar (the monitored single-master fabrics): same
  /// grants and bookkeeping as the generic path without the arbitration
  /// scans — this is the hot configuration of every paper system.
  void tick_1x1();

  std::vector<AxiPort*> masters_;
  std::vector<AxiPort*> slaves_;
  std::vector<AddrRule> map_;
  unsigned id_shift_;

  // Round-robin pointers per slave (AR and AW arbitration).
  std::vector<unsigned> ar_rr_;
  std::vector<unsigned> aw_rr_;
  // Per-master: slaves whose W data is still owed, in AW issue order.
  // kWSink entries mark unmapped AWs whose W beats are swallowed.
  static constexpr unsigned kWSink = ~0u;
  std::vector<std::deque<unsigned>> w_route_;
  // Per-slave: masters whose W data is expected, in AW acceptance order.
  std::vector<std::deque<unsigned>> w_order_;
  // Per-master R lock: slave currently sending a burst (-1 = none).
  std::vector<int> r_lock_;
  std::vector<unsigned> r_rr_;
  std::vector<unsigned> b_rr_;
  // Pending synthesized DECERR responses, per master: read ids awaiting
  // their error-terminated R beat, write ids awaiting their B (pushed only
  // once the unmapped AW's W beats have all been swallowed).
  std::vector<std::deque<std::uint32_t>> err_r_;
  std::vector<std::deque<std::uint32_t>> err_b_;
  // Per-master ids of unmapped AWs still owed W data (aligned with the
  // kWSink entries in w_route_).
  std::vector<std::deque<std::uint32_t>> sink_ids_;
};

}  // namespace axipack::axi
