#include "axi/pack.hpp"

#include <cassert>

namespace axipack::axi {

unsigned index_bits_to_code(unsigned index_bits) {
  switch (index_bits) {
    case 8: return 0;
    case 16: return 1;
    case 32: return 2;
    default: assert(false && "unsupported index size"); return 2;
  }
}

unsigned index_code_to_bits(unsigned code) {
  switch (code) {
    case 0: return 8;
    case 1: return 16;
    case 2: return 32;
    default: assert(false && "unsupported index size code"); return 32;
  }
}

UserBits encode_user(const std::optional<PackRequest>& pack,
                     unsigned user_bits) {
  if (!pack.has_value()) return 0;
  assert(user_bits >= 8 && user_bits <= 64);
  const unsigned payload_bits = user_bits - 4;
  UserBits u = 1;  // pack bit
  if (pack->indir) {
    u |= UserBits{1} << 1;
    u |= UserBits{index_bits_to_code(pack->index_bits)} << 2;
    assert(payload_bits >= 64 ||
           (pack->index_base >> payload_bits) == 0);
    u |= (pack->index_base & ((UserBits{1} << payload_bits) - 1)) << 4;
  } else {
    // Sign check: stride must be representable in payload_bits signed bits.
    const std::int64_t lo = -(std::int64_t{1} << (payload_bits - 1));
    const std::int64_t hi = (std::int64_t{1} << (payload_bits - 1)) - 1;
    assert(pack->stride >= lo && pack->stride <= hi);
    (void)lo;
    (void)hi;
    const auto raw = static_cast<std::uint64_t>(pack->stride);
    u |= (raw & ((UserBits{1} << payload_bits) - 1)) << 4;
  }
  return u;
}

std::optional<PackRequest> decode_user(UserBits user, std::uint64_t num_elems,
                                       unsigned user_bits) {
  if ((user & 1) == 0) return std::nullopt;
  const unsigned payload_bits = user_bits - 4;
  PackRequest req;
  req.indir = ((user >> 1) & 1) != 0;
  req.num_elems = num_elems;
  const std::uint64_t payload = (user >> 4) & ((UserBits{1} << payload_bits) - 1);
  if (req.indir) {
    req.index_bits = index_code_to_bits(static_cast<unsigned>((user >> 2) & 3));
    req.index_base = payload;
  } else {
    // Sign-extend the stride payload.
    std::uint64_t raw = payload;
    if (raw & (std::uint64_t{1} << (payload_bits - 1))) {
      raw |= ~((std::uint64_t{1} << payload_bits) - 1);
    }
    req.stride = static_cast<std::int64_t>(raw);
  }
  return req;
}

std::uint64_t stream_elems(unsigned beats, unsigned bus_bytes,
                           unsigned elem_bytes, std::uint64_t total_elems) {
  assert(elem_bytes > 0 && bus_bytes % elem_bytes == 0);
  const std::uint64_t per_beat = bus_bytes / elem_bytes;
  const std::uint64_t full = std::uint64_t{beats} * per_beat;
  return full < total_elems ? full : total_elems;
}

}  // namespace axipack::axi
