#include "axi/pack.hpp"

#include <cassert>

namespace axipack::axi {

unsigned index_bits_to_code(unsigned index_bits) {
  switch (index_bits) {
    case 8: return 0;
    case 16: return 1;
    case 32: return 2;
    default: assert(false && "unsupported index size"); return 2;
  }
}

unsigned index_code_to_bits(unsigned code) {
  switch (code) {
    case 0: return 8;
    case 1: return 16;
    case 2: return 32;
    default: assert(false && "unsupported index size code"); return 32;
  }
}

namespace {

/// Mask with the low `bits` bits set; correct at the 64-bit boundary where
/// a plain (1 << bits) - 1 would shift out of range.
std::uint64_t low_mask(unsigned bits) {
  return bits >= 64 ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << bits) - 1;
}

unsigned payload_bits_of(unsigned user_bits) {
  assert(user_bits >= kMinUserBits && user_bits <= kMaxUserBits);
  return user_bits - 4;
}

}  // namespace

bool stride_fits_user(std::int64_t stride, unsigned user_bits) {
  const unsigned payload_bits = payload_bits_of(user_bits);
  const std::int64_t lo = -(std::int64_t{1} << (payload_bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (payload_bits - 1)) - 1;
  return stride >= lo && stride <= hi;
}

bool index_base_fits_user(std::uint64_t index_base, unsigned user_bits) {
  const unsigned payload_bits = payload_bits_of(user_bits);
  return (index_base & ~low_mask(payload_bits)) == 0;
}

UserBits encode_user(const std::optional<PackRequest>& pack,
                     unsigned user_bits) {
  if (!pack.has_value()) return 0;
  const unsigned payload_bits = payload_bits_of(user_bits);
  UserBits u = 1;  // pack bit
  if (pack->indir) {
    u |= UserBits{1} << 1;
    u |= UserBits{index_bits_to_code(pack->index_bits)} << 2;
    assert(index_base_fits_user(pack->index_base, user_bits));
    u |= (pack->index_base & low_mask(payload_bits)) << 4;
  } else {
    assert(stride_fits_user(pack->stride, user_bits));
    const auto raw = static_cast<std::uint64_t>(pack->stride);
    u |= (raw & low_mask(payload_bits)) << 4;
  }
  return u;
}

std::optional<PackRequest> decode_user(UserBits user, std::uint64_t num_elems,
                                       unsigned user_bits) {
  const unsigned payload_bits = payload_bits_of(user_bits);
  // Only the low user_bits exist as wires; ignore anything above them.
  user &= low_mask(user_bits);
  if ((user & 1) == 0) return std::nullopt;
  PackRequest req;
  req.indir = ((user >> 1) & 1) != 0;
  req.num_elems = num_elems;
  const std::uint64_t payload = (user >> 4) & low_mask(payload_bits);
  if (req.indir) {
    req.index_bits = index_code_to_bits(static_cast<unsigned>((user >> 2) & 3));
    req.index_base = payload;
  } else {
    // Sign-extend the stride payload.
    std::uint64_t raw = payload;
    if (raw & (std::uint64_t{1} << (payload_bits - 1))) {
      raw |= ~low_mask(payload_bits);
    }
    req.stride = static_cast<std::int64_t>(raw);
  }
  return req;
}

std::uint64_t stream_elems(unsigned beats, unsigned bus_bytes,
                           unsigned elem_bytes, std::uint64_t total_elems) {
  assert(elem_bytes > 0 && bus_bytes % elem_bytes == 0);
  const std::uint64_t per_beat = bus_bytes / elem_bytes;
  const std::uint64_t full = std::uint64_t{beats} * per_beat;
  return full < total_elems ? full : total_elems;
}

}  // namespace axipack::axi
