// AXI-Pack DMA engine: a non-core requestor performing descriptor-driven
// layout transforms over an AXI(-Pack) master port.
//
// This realizes the paper's Related Work claim that bus packing "can be done
// ... ahead of time by an AXI-Pack-capable direct memory access (DMA)
// controller" (PLANAR-style rearrangement): the engine moves an element
// stream between two access patterns (contiguous / strided / indirect on
// either side). In pack mode the irregular side is carried by AXI-Pack
// bursts; otherwise it degrades to the per-element narrow bursts of a
// conventional DMA — the inefficiency the paper quantifies. Read and write
// sides stream through an internal word buffer and overlap.
//
// Descriptors come from either of two sources, as on real engines:
//  * register programming — the host pushes Descriptor structs directly;
//  * memory chains — start_chain(addr) makes the engine fetch descriptors
//    over its own AXI port (plain INCR bursts) and follow `next` links.
//    A register-programmed descriptor with a nonzero `next` likewise
//    continues into an in-memory chain.
//
// Constraints (asserted): addresses and strides are word-aligned; in narrow
// (non-pack) mode irregular elements must also be element-size-aligned, as
// a single narrow AXI beat cannot cross its size container. Source and
// destination ranges of one descriptor must not overlap.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "axi/types.hpp"
#include "dma/descriptor.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"

namespace axipack::dma {

struct DmaConfig {
  unsigned bus_bytes = 32;
  bool use_pack = true;  ///< false: irregular patterns via narrow bursts
  unsigned max_outstanding_reads = 8;   ///< AR bursts in flight
  unsigned max_outstanding_writes = 8;  ///< AWs awaiting B
  std::size_t buffer_words = 4096;      ///< staging buffer capacity (words)
  std::uint32_t axi_id = 0xD;           ///< AXI ID for all engine traffic
  /// Fault handling: bounded per-descriptor retry with backoff, a progress
  /// watchdog, and pack->narrow degradation past the breaker threshold.
  /// Disabled (max_attempts == 0) an errored response fails the descriptor.
  sim::RetryConfig retry;
};

/// Aggregate activity counters (for tests, benches and the energy model).
struct DmaStats {
  std::uint64_t descriptors_done = 0;
  std::uint64_t bytes_moved = 0;  ///< payload bytes (each counted once)
  std::uint64_t ar_bursts = 0;
  std::uint64_t aw_bursts = 0;
  std::uint64_t r_beats = 0;
  std::uint64_t w_beats = 0;
  std::uint64_t index_fetch_bytes = 0;  ///< narrow-mode index staging traffic
  std::uint64_t desc_fetch_bytes = 0;
  sim::Cycle busy_cycles = 0;  ///< cycles with any work in flight
  /// Descriptors completed with an error (retries exhausted, fatal
  /// response, or a malformed in-memory descriptor). An error completion
  /// terminates its chain.
  std::uint64_t error_descriptors = 0;
  std::uint64_t malformed_descriptors = 0;
};

class DmaEngine final : public sim::Component {
 public:
  /// The engine masters `port` (pushes AR/AW/W, pops R/B). It never touches
  /// the backing store directly — all data moves through the port.
  DmaEngine(sim::Kernel& k, axi::AxiPort& port, const DmaConfig& cfg);

  /// Queues a register-programmed descriptor.
  void push(const Descriptor& d);

  /// Appends an in-memory descriptor chain starting at `head`.
  void start_chain(std::uint64_t head);

  /// True when no descriptor is pending or in flight.
  bool idle() const;

  const DmaStats& stats() const { return stats_; }
  const sim::RetryStats& retry_stats() const { return retry_stats_; }
  const DmaConfig& config() const { return cfg_; }

  void tick() override;
  /// idle() implies nothing is in flight (no descriptors, reads, writes or
  /// fetches); only push()/start_chain() — which wake us — create work.
  bool quiescent() const override { return idle(); }

 private:
  /// Source of the next descriptor to execute.
  struct PendingDesc {
    Descriptor desc;         ///< valid when !from_memory
    std::uint64_t addr = 0;  ///< valid when from_memory
    bool from_memory = false;
  };

  /// What an R beat's payload is for.
  enum class ReadKind : std::uint8_t { data, index, descriptor };

  /// One planned (not yet issued) read burst.
  struct PlannedRead {
    axi::AxiAr ar;
    std::uint64_t payload_bytes = 0;  ///< bytes this engine will consume
    ReadKind kind = ReadKind::data;
  };

  /// One issued read burst whose R beats are still arriving. Responses on
  /// our single ID arrive in issue order, so a deque suffices.
  struct ActiveRead {
    ReadKind kind = ReadKind::data;
    bool packed = false;       ///< payload packed from lane 0 (pack burst)
    std::uint64_t cursor = 0;  ///< next payload byte address (regular burst)
    std::uint64_t bytes_left = 0;
  };

  /// One planned write burst.
  struct PlannedWrite {
    axi::AxiAw aw;
    std::uint64_t payload_bytes = 0;
  };

  // Phase helpers, called from tick() in order.
  void tick_start();    ///< begin next descriptor / descriptor fetch
  void tick_read();     ///< AR issue + R receive
  void tick_write();    ///< AW/W issue + B receive
  void tick_timeout();  ///< progress watchdog
  void finish_transfer();

  void begin_transfer(const Descriptor& d);
  void plan_index_fetch(const Pattern& p);
  void plan_desc_fetch(std::uint64_t addr);
  void consume_read_payload(const axi::AxiR& r, ActiveRead& act);

  // Fault handling. A detected fault (error response, truncated burst,
  // watchdog expiry) freezes new request issue; in-flight responses drain
  // (owed W beats go out with null strobes), then the descriptor is either
  // replayed from scratch after backoff or completed with an error that
  // terminates its chain. Clean runs never enter any of these paths.
  void note_fault(std::uint8_t resp);
  bool fault_drained() const;  ///< nothing of the failed attempt in flight
  void resolve_fault();        ///< decide retry vs. error completion
  void reset_transfer();       ///< clear all per-transfer progress state

  /// Issues the next planned read if outstanding/buffer limits allow.
  void issue_next_read();

  /// Per-element address for narrow irregular access (idx caches must be
  /// ready for indirect patterns).
  std::uint64_t elem_addr(const Pattern& p, std::uint64_t i,
                          bool is_src) const;

  bool transfer_active_ = false;
  Descriptor cur_;
  bool needs_src_idx_ = false;  ///< narrow-mode src index staging pending
  bool needs_dst_idx_ = false;

  std::vector<PlannedRead> planned_reads_;
  std::size_t next_read_ = 0;
  std::deque<ActiveRead> active_reads_;
  unsigned outstanding_reads_ = 0;
  std::uint64_t rd_narrow_next_ = 0;  ///< narrow-mode per-element AR cursor

  std::vector<PlannedWrite> planned_writes_;
  std::size_t next_aw_ = 0;
  std::size_t w_burst_ = 0;        ///< burst whose W beats are being sent
  std::uint64_t w_sent_bytes_ = 0; ///< payload bytes sent of w_burst_
  std::uint64_t w_cursor_ = 0;     ///< byte address cursor within w_burst_
  unsigned outstanding_writes_ = 0;
  std::uint64_t wr_narrow_next_ = 0;  ///< narrow-mode per-element AW cursor

  std::deque<std::uint32_t> buffer_;  ///< staged words, element order
  std::uint64_t reserved_words_ = 0;  ///< buffered + in-flight read words

  // Narrow-mode index staging.
  std::vector<std::uint64_t> idx_src_;
  std::vector<std::uint64_t> idx_dst_;
  std::vector<std::uint8_t> idx_raw_;  ///< bytes of the array being fetched
  bool idx_fetch_src_ = false;         ///< current fetch fills idx_src_

  // Descriptor fetch state.
  bool fetching_desc_ = false;
  std::vector<std::uint8_t> desc_raw_;
  std::uint64_t desc_addr_ = 0;  ///< chain address being fetched (for retry)

  // Fault-handling state (all inert in fault-free runs).
  bool fault_ = false;          ///< current attempt is poisoned
  bool fatal_ = false;          ///< DECERR seen: never retried
  bool retry_pending_ = false;  ///< drained; replay after backoff_until_
  unsigned attempts_ = 0;       ///< failed attempts of the current activity
  std::uint64_t backoff_until_ = 0;
  std::uint64_t pack_fault_attempts_ = 0;  ///< breaker input
  std::uint64_t now_ = 0;            ///< ticks while busy (relative time)
  std::uint64_t last_progress_ = 0;  ///< watchdog reference point
  sim::RetryStats retry_stats_;

  std::deque<PendingDesc> queue_;
  axi::AxiPort& port_;
  DmaConfig cfg_;
  DmaStats stats_;
};

}  // namespace axipack::dma
