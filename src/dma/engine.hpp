// AXI-Pack DMA engine: a non-core requestor performing descriptor-driven
// layout transforms over an AXI(-Pack) master port.
//
// This realizes the paper's Related Work claim that bus packing "can be done
// ... ahead of time by an AXI-Pack-capable direct memory access (DMA)
// controller" (PLANAR-style rearrangement): the engine moves an element
// stream between two access patterns (contiguous / strided / indirect on
// either side). In pack mode the irregular side is carried by AXI-Pack
// bursts; otherwise it degrades to the per-element narrow bursts of a
// conventional DMA — the inefficiency the paper quantifies. Read and write
// sides stream through an internal word buffer and overlap.
//
// Descriptors come from either of two sources, as on real engines:
//  * register programming — the host pushes Descriptor structs directly;
//  * memory chains — start_chain(addr) makes the engine fetch descriptors
//    over its own AXI port (plain INCR bursts) and follow `next` links.
//    A register-programmed descriptor with a nonzero `next` likewise
//    continues into an in-memory chain.
//
// Constraints (asserted): addresses and strides are word-aligned; in narrow
// (non-pack) mode irregular elements must also be element-size-aligned, as
// a single narrow AXI beat cannot cross its size container. Source and
// destination ranges of one descriptor must not overlap.
// A third descriptor source is the ring mode used by the open-loop traffic
// subsystem (and by real streaming engines): start_ring() points the engine
// at a circular chain of in-memory descriptors whose `next` links close the
// loop. The producer publishes slots with publish() (a doorbell: "n more
// descriptors are valid") and the engine follows the links continuously,
// raising a completion event per descriptor. In double-buffer mode the next
// descriptor is prefetched while the current transfer's write side drains,
// hiding the fetch latency; single-buffer mode serializes fetch and
// transfer like the simplest hardware engines.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "axi/types.hpp"
#include "dma/descriptor.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "util/histogram.hpp"

namespace axipack::dma {

struct DmaConfig {
  unsigned bus_bytes = 32;
  bool use_pack = true;  ///< false: irregular patterns via narrow bursts
  unsigned max_outstanding_reads = 8;   ///< AR bursts in flight
  unsigned max_outstanding_writes = 8;  ///< AWs awaiting B
  std::size_t buffer_words = 4096;      ///< staging buffer capacity (words)
  std::uint32_t axi_id = 0xD;           ///< AXI ID for all engine traffic
  /// Fault handling: bounded per-descriptor retry with backoff, a progress
  /// watchdog, and pack->narrow degradation past the breaker threshold.
  /// Disabled (max_attempts == 0) an errored response fails the descriptor.
  sim::RetryConfig retry;
};

/// Aggregate activity counters (for tests, benches and the energy model).
struct DmaStats {
  std::uint64_t descriptors_done = 0;
  std::uint64_t bytes_moved = 0;  ///< payload bytes (each counted once)
  std::uint64_t ar_bursts = 0;
  std::uint64_t aw_bursts = 0;
  std::uint64_t r_beats = 0;
  std::uint64_t w_beats = 0;
  std::uint64_t index_fetch_bytes = 0;  ///< narrow-mode index staging traffic
  std::uint64_t desc_fetch_bytes = 0;
  sim::Cycle busy_cycles = 0;  ///< cycles with any work in flight
  /// Descriptors completed with an error (retries exhausted, fatal
  /// response, or a malformed in-memory descriptor). An error completion
  /// terminates its chain.
  std::uint64_t error_descriptors = 0;
  std::uint64_t malformed_descriptors = 0;
  /// High-water mark of descriptors pending execution (register queue
  /// depth, or published-but-incomplete ring slots) — saturation signal.
  std::uint64_t queue_peak = 0;
};

/// Circular descriptor chain configuration for ring mode.
struct RingConfig {
  std::uint64_t head_addr = 0;  ///< first slot; links must close the loop
  /// Prefetch the next descriptor while the current transfer drains.
  bool double_buffer = true;
};

class DmaEngine final : public sim::Component {
 public:
  /// The engine masters `port` (pushes AR/AW/W, pops R/B). It never touches
  /// the backing store directly — all data moves through the port.
  DmaEngine(sim::Kernel& k, axi::AxiPort& port, const DmaConfig& cfg);

  /// Queues a register-programmed descriptor.
  void push(const Descriptor& d);

  /// Appends an in-memory descriptor chain starting at `head`.
  void start_chain(std::uint64_t head);

  /// Enters ring mode: the engine follows the circular descriptor chain at
  /// `rc.head_addr`, executing one descriptor per publish() credit and
  /// raising a completion event per descriptor. Exclusive with push() /
  /// start_chain() until stop_ring(). Requires idle().
  void start_ring(const RingConfig& rc);
  /// Doorbell: `n` more ring slots hold valid descriptors. Completions are
  /// per-ordinal (0-based, in publish order). A broken ring (malformed
  /// slot, zero link, or a fetch whose retries exhaust) fail-completes
  /// everything still published so producers never hang.
  void publish(std::uint64_t n = 1);
  /// Leaves ring mode. All published descriptors must have completed.
  void stop_ring();
  /// Completion event for ring descriptors: (ordinal, ok). Invoked from
  /// the engine's tick when the descriptor finishes or errors out.
  void set_completion(std::function<void(std::uint64_t, bool)> fn);
  bool ring_active() const { return ring_active_; }
  std::uint64_t ring_completed() const { return ring_completed_; }

  /// True when no descriptor is pending or in flight.
  bool idle() const;

  const DmaStats& stats() const { return stats_; }
  const sim::RetryStats& retry_stats() const { return retry_stats_; }
  const DmaConfig& config() const { return cfg_; }

  /// Per-descriptor latency (queue entry -> completion) of register- and
  /// chain-programmed descriptors. Ring descriptors are measured by their
  /// producer instead (sojourn time including the slot wait).
  util::Histogram& latency_hist() { return latency_; }
  const util::Histogram& latency_hist() const { return latency_; }

  void tick() override;
  /// idle() implies nothing is in flight (no descriptors, reads, writes or
  /// fetches); only push()/start_chain() — which wake us — create work.
  bool quiescent() const override { return idle(); }

 private:
  /// Source of the next descriptor to execute.
  struct PendingDesc {
    Descriptor desc;         ///< valid when !from_memory
    std::uint64_t addr = 0;  ///< valid when from_memory
    bool from_memory = false;
    std::uint64_t arrival = 0;  ///< engine clock when queued (latency stamp)
  };

  /// What an R beat's payload is for.
  enum class ReadKind : std::uint8_t { data, index, descriptor };

  /// One planned (not yet issued) read burst.
  struct PlannedRead {
    axi::AxiAr ar;
    std::uint64_t payload_bytes = 0;  ///< bytes this engine will consume
    ReadKind kind = ReadKind::data;
  };

  /// One issued read burst whose R beats are still arriving. Responses on
  /// our single ID arrive in issue order, so a deque suffices.
  struct ActiveRead {
    ReadKind kind = ReadKind::data;
    bool packed = false;       ///< payload packed from lane 0 (pack burst)
    std::uint64_t cursor = 0;  ///< next payload byte address (regular burst)
    std::uint64_t bytes_left = 0;
  };

  /// One planned write burst.
  struct PlannedWrite {
    axi::AxiAw aw;
    std::uint64_t payload_bytes = 0;
  };

  // Phase helpers, called from tick() in order.
  void tick_start();    ///< begin next descriptor / descriptor fetch
  void tick_read();     ///< AR issue + R receive
  void tick_write();    ///< AW/W issue + B receive
  void tick_timeout();  ///< progress watchdog
  void tick_ring();     ///< double-buffer prefetch start/parse
  void finish_transfer();

  // Ring-mode helpers.
  void ring_complete(std::uint64_t ordinal, bool ok);
  /// Fail-completes every published-but-unconsumed slot of a broken ring.
  void ring_reject_pending();
  /// True once the active transfer's entire read side (indices, planned
  /// and lazy data reads) has drained — the only window in which
  /// plan_desc_fetch() may safely repurpose the read plan for a prefetch.
  bool read_side_drained() const;

  void begin_transfer(const Descriptor& d);
  void plan_index_fetch(const Pattern& p);
  void plan_desc_fetch(std::uint64_t addr);
  void consume_read_payload(const axi::AxiR& r, ActiveRead& act);

  // Fault handling. A detected fault (error response, truncated burst,
  // watchdog expiry) freezes new request issue; in-flight responses drain
  // (owed W beats go out with null strobes), then the descriptor is either
  // replayed from scratch after backoff or completed with an error that
  // terminates its chain. Clean runs never enter any of these paths.
  void note_fault(std::uint8_t resp);
  bool fault_drained() const;  ///< nothing of the failed attempt in flight
  void resolve_fault();        ///< decide retry vs. error completion
  void reset_transfer();       ///< clear all per-transfer progress state

  /// Issues the next planned read if outstanding/buffer limits allow.
  void issue_next_read();

  /// Per-element address for narrow irregular access (idx caches must be
  /// ready for indirect patterns).
  std::uint64_t elem_addr(const Pattern& p, std::uint64_t i,
                          bool is_src) const;

  bool transfer_active_ = false;
  Descriptor cur_;
  bool needs_src_idx_ = false;  ///< narrow-mode src index staging pending
  bool needs_dst_idx_ = false;

  std::vector<PlannedRead> planned_reads_;
  std::size_t next_read_ = 0;
  std::deque<ActiveRead> active_reads_;
  unsigned outstanding_reads_ = 0;
  std::uint64_t rd_narrow_next_ = 0;  ///< narrow-mode per-element AR cursor

  std::vector<PlannedWrite> planned_writes_;
  std::size_t next_aw_ = 0;
  std::size_t w_burst_ = 0;        ///< burst whose W beats are being sent
  std::uint64_t w_sent_bytes_ = 0; ///< payload bytes sent of w_burst_
  std::uint64_t w_cursor_ = 0;     ///< byte address cursor within w_burst_
  unsigned outstanding_writes_ = 0;
  std::uint64_t wr_narrow_next_ = 0;  ///< narrow-mode per-element AW cursor

  std::deque<std::uint32_t> buffer_;  ///< staged words, element order
  std::uint64_t reserved_words_ = 0;  ///< buffered + in-flight read words

  // Narrow-mode index staging.
  std::vector<std::uint64_t> idx_src_;
  std::vector<std::uint64_t> idx_dst_;
  std::vector<std::uint8_t> idx_raw_;  ///< bytes of the array being fetched
  bool idx_fetch_src_ = false;         ///< current fetch fills idx_src_

  // Descriptor fetch state.
  bool fetching_desc_ = false;
  std::vector<std::uint8_t> desc_raw_;
  std::uint64_t desc_addr_ = 0;  ///< chain address being fetched (for retry)

  // Ring mode (all inert unless start_ring() was called).
  static constexpr std::uint64_t kNoOrdinal = ~0ull;
  bool ring_active_ = false;
  RingConfig ring_cfg_;
  std::uint64_t ring_next_addr_ = 0;  ///< next slot to fetch; 0: ring broken
  std::uint64_t ring_published_ = 0;  ///< doorbell credits (cumulative)
  std::uint64_t ring_consumed_ = 0;   ///< descriptors fetched+parsed
  std::uint64_t ring_completed_ = 0;  ///< completion events raised
  bool has_prefetched_ = false;       ///< prefetched_ holds a parsed slot
  Descriptor prefetched_;
  std::uint64_t prefetched_ordinal_ = 0;
  std::uint64_t cur_ring_ordinal_ = kNoOrdinal;  ///< of the active transfer
  std::function<void(std::uint64_t, bool)> completion_;

  // Latency stamps (engine clock; deltas equal wall-cycle deltas because
  // the engine never sleeps while a descriptor is in flight).
  std::uint64_t cur_arrival_ = 0;    ///< queue-entry stamp of cur_
  std::uint64_t fetch_arrival_ = 0;  ///< stamp carried through a fetch
  util::Histogram latency_;

  // Fault-handling state (all inert in fault-free runs).
  bool fault_ = false;          ///< current attempt is poisoned
  bool fatal_ = false;          ///< DECERR seen: never retried
  bool retry_pending_ = false;  ///< drained; replay after backoff_until_
  unsigned attempts_ = 0;       ///< failed attempts of the current activity
  std::uint64_t backoff_until_ = 0;
  std::uint64_t pack_fault_attempts_ = 0;  ///< breaker input
  std::uint64_t now_ = 0;            ///< ticks while busy (relative time)
  std::uint64_t last_progress_ = 0;  ///< watchdog reference point
  sim::RetryStats retry_stats_;

  std::deque<PendingDesc> queue_;
  axi::AxiPort& port_;
  DmaConfig cfg_;
  DmaStats stats_;
};

}  // namespace axipack::dma
