#include "dma/descriptor.hpp"

#include <cassert>
#include <cstring>
#include <vector>

#include "util/bits.hpp"

namespace axipack::dma {
namespace {

/// Index width <-> 2-bit wire code (mirrors the AXI-Pack user encoding).
unsigned index_code(unsigned bits) {
  switch (bits) {
    case 8: return 0;
    case 16: return 1;
    case 32: return 2;
    default: assert(false && "index width must be 8, 16 or 32"); return 2;
  }
}

unsigned code_index(unsigned code) {
  static constexpr unsigned kBits[] = {8, 16, 32};
  return code < 3 ? kBits[code] : 0;
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof v);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Second 64-bit payload of one pattern (stride or index base).
std::uint64_t pattern_arg(const Pattern& p) {
  return p.kind == Pattern::Kind::strided
             ? static_cast<std::uint64_t>(p.stride)
             : p.index_base;
}

}  // namespace

void write_descriptor(mem::BackingStore& store, std::uint64_t addr,
                      const Descriptor& d) {
  assert(addr % 8 == 0 && "descriptors must be 8-byte aligned");
  assert(d.elem_bytes >= 4 && (d.elem_bytes & (d.elem_bytes - 1)) == 0);

  std::uint8_t raw[kDescriptorBytes] = {};
  const std::uint32_t flags =
      (static_cast<std::uint32_t>(d.src.kind) << 0) |
      (static_cast<std::uint32_t>(d.dst.kind) << 2) |
      (static_cast<std::uint32_t>(util::log2_exact(d.elem_bytes)) << 4) |
      (index_code(d.src.index_bits) << 8) |
      (index_code(d.dst.index_bits) << 12);
  std::memcpy(raw, &flags, 4);
  put_u64(raw + 8, d.num_elems);
  put_u64(raw + 16, d.src.addr);
  put_u64(raw + 24, pattern_arg(d.src));
  put_u64(raw + 32, d.dst.addr);
  put_u64(raw + 40, pattern_arg(d.dst));
  put_u64(raw + 48, d.next);
  store.write(addr, raw, kDescriptorBytes);
}

std::optional<Descriptor> parse_descriptor(const std::uint8_t* bytes) {
  std::uint32_t flags = 0;
  std::memcpy(&flags, bytes, 4);
  const unsigned src_kind = flags & 0x3;
  const unsigned dst_kind = (flags >> 2) & 0x3;
  const unsigned elem_log2 = (flags >> 4) & 0xf;
  const unsigned src_icode = (flags >> 8) & 0xf;
  const unsigned dst_icode = (flags >> 12) & 0xf;
  if (src_kind > 2 || dst_kind > 2 || elem_log2 < 2 || elem_log2 > 5 ||
      src_icode > 2 || dst_icode > 2) {
    return std::nullopt;
  }

  Descriptor d;
  d.elem_bytes = 1u << elem_log2;
  d.num_elems = get_u64(bytes + 8);
  d.next = get_u64(bytes + 48);

  auto load_pattern = [&](unsigned kind, unsigned icode, std::uint64_t addr,
                          std::uint64_t arg) {
    Pattern p;
    p.kind = static_cast<Pattern::Kind>(kind);
    p.addr = addr;
    if (p.kind == Pattern::Kind::strided) {
      p.stride = static_cast<std::int64_t>(arg);
    } else if (p.kind == Pattern::Kind::indirect) {
      p.index_base = arg;
      p.index_bits = code_index(icode);
    }
    return p;
  };
  d.src = load_pattern(src_kind, src_icode, get_u64(bytes + 16),
                       get_u64(bytes + 24));
  d.dst = load_pattern(dst_kind, dst_icode, get_u64(bytes + 32),
                       get_u64(bytes + 40));
  return d;
}

std::uint64_t build_chain(mem::BackingStore& store,
                          const std::vector<Descriptor>& descs) {
  assert(!descs.empty());
  std::vector<std::uint64_t> addrs;
  addrs.reserve(descs.size());
  for (std::size_t i = 0; i < descs.size(); ++i) {
    addrs.push_back(store.alloc(kDescriptorBytes, kDescriptorBytes));
  }
  for (std::size_t i = 0; i < descs.size(); ++i) {
    Descriptor d = descs[i];
    d.next = (i + 1 < descs.size()) ? addrs[i + 1] : 0;
    write_descriptor(store, addrs[i], d);
  }
  return addrs.front();
}

}  // namespace axipack::dma
