// DMA transfer descriptors for the AXI-Pack DMA engine.
//
// The paper's Related Work positions AXI-Pack as enabling ahead-of-time
// layout transforms "by an AXI-Pack-capable direct memory access (DMA)
// controller" (PLANAR-style data rearrangement). A descriptor names one
// transfer: a source access pattern, a destination access pattern, an
// element size and a stream length. Patterns may be contiguous, strided or
// indirect; irregular patterns map to AXI-Pack bursts when the engine runs
// in pack mode and to per-element narrow bursts otherwise (the baseline the
// paper quantifies against).
//
// Descriptors can be programmed directly (register-style) or linked into
// in-memory chains the engine fetches over its own AXI port; the wire
// layout is defined here so tests, examples and the engine agree on it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/backing_store.hpp"

namespace axipack::dma {

/// One side (source or destination) of a DMA transfer.
struct Pattern {
  enum class Kind : std::uint8_t { contiguous = 0, strided = 1, indirect = 2 };

  Kind kind = Kind::contiguous;
  std::uint64_t addr = 0;        ///< start address / indirect element base
  std::int64_t stride = 0;       ///< strided: byte distance between elements
  std::uint64_t index_base = 0;  ///< indirect: address of the index array
  unsigned index_bits = 32;      ///< indirect: index width (8, 16 or 32)

  static Pattern contiguous(std::uint64_t addr) {
    return Pattern{Kind::contiguous, addr, 0, 0, 32};
  }
  static Pattern strided(std::uint64_t addr, std::int64_t stride) {
    return Pattern{Kind::strided, addr, stride, 0, 32};
  }
  /// Element i is read/written at `base + index[i] * elem_bytes`.
  static Pattern indirect(std::uint64_t base, std::uint64_t index_base,
                          unsigned index_bits = 32) {
    return Pattern{Kind::indirect, base, 0, index_base, index_bits};
  }

  bool operator==(const Pattern&) const = default;
};

/// One DMA transfer: move `num_elems` elements of `elem_bytes` each from
/// `src` to `dst`. `next` chains descriptors in memory (0 terminates).
struct Descriptor {
  Pattern src;
  Pattern dst;
  unsigned elem_bytes = 4;  ///< 4, 8, 16 or 32 (multiple of the 32-bit word)
  std::uint64_t num_elems = 0;
  std::uint64_t next = 0;  ///< address of the next in-memory descriptor

  std::uint64_t total_bytes() const { return num_elems * elem_bytes; }

  bool operator==(const Descriptor&) const = default;
};

/// In-memory descriptor wire format: 64 bytes, word layout
///   w0  flags: [1:0] src kind, [3:2] dst kind, [7:4] log2(elem_bytes),
///              [11:8] src index-size code, [15:12] dst index-size code
///   w1  reserved (0)
///   w2/w3    num_elems       (lo/hi)
///   w4/w5    src.addr        (lo/hi)
///   w6/w7    src stride or index_base (lo/hi, stride sign-extended)
///   w8/w9    dst.addr        (lo/hi)
///   w10/w11  dst stride or index_base (lo/hi)
///   w12/w13  next            (lo/hi)
///   w14/w15  reserved (0)
inline constexpr std::uint64_t kDescriptorBytes = 64;

/// Serializes `d` into the backing store at `addr` (64-byte aligned).
void write_descriptor(mem::BackingStore& store, std::uint64_t addr,
                      const Descriptor& d);

/// Deserializes a descriptor from raw wire bytes (kDescriptorBytes long).
/// Returns nullopt if the flags word is malformed (unknown kind/size codes).
std::optional<Descriptor> parse_descriptor(const std::uint8_t* bytes);

/// Convenience: builds a chain in memory from `descs`, linking each entry to
/// the next and terminating the last. Returns the address of the head.
/// Descriptor storage is bump-allocated from `store`.
std::uint64_t build_chain(mem::BackingStore& store,
                          const std::vector<Descriptor>& descs);

}  // namespace axipack::dma
