#include "dma/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <optional>

#include "axi/burst.hpp"
#include "util/bits.hpp"

namespace axipack::dma {

namespace {

/// Words one element occupies.
unsigned wpe(const Descriptor& d) { return d.elem_bytes / 4; }

/// Bytes of one index entry.
unsigned idx_bytes(const Pattern& p) { return p.index_bits / 8; }

/// Burst plan for reading one side of `d` in pack/contiguous mode.
std::vector<axi::AxiAr> plan_pattern_reads(const Pattern& p,
                                           const Descriptor& d,
                                           unsigned bus_bytes) {
  switch (p.kind) {
    case Pattern::Kind::contiguous:
      return axi::split_contiguous(p.addr, d.total_bytes(), bus_bytes);
    case Pattern::Kind::strided:
      return axi::split_pack_strided(p.addr, p.stride, d.elem_bytes,
                                     d.num_elems, bus_bytes);
    case Pattern::Kind::indirect:
      return axi::split_pack_indirect(p.addr, p.index_base, p.index_bits,
                                      d.elem_bytes, d.num_elems, bus_bytes);
  }
  assert(false);
  return {};
}

}  // namespace

DmaEngine::DmaEngine(sim::Kernel& k, axi::AxiPort& port, const DmaConfig& cfg)
    : port_(port), cfg_(cfg) {
  assert(cfg_.bus_bytes % 4 == 0 && cfg_.bus_bytes <= axi::kMaxBusBytes);
  k.add(*this);
  k.subscribe(*this, port_.r);
  k.subscribe(*this, port_.b);
}

void DmaEngine::push(const Descriptor& d) {
  assert(d.elem_bytes >= 4 && d.elem_bytes % 4 == 0 &&
         d.elem_bytes <= cfg_.bus_bytes);
  assert(!ring_active_ && "register descriptors are exclusive with a ring");
  queue_.push_back(PendingDesc{d, 0, false, now_});
  stats_.queue_peak = std::max<std::uint64_t>(stats_.queue_peak,
                                              queue_.size());
  wake_self();
}

void DmaEngine::start_chain(std::uint64_t head) {
  assert(head != 0);
  assert(!ring_active_ && "chains are exclusive with a ring");
  queue_.push_back(PendingDesc{{}, head, true, now_});
  stats_.queue_peak = std::max<std::uint64_t>(stats_.queue_peak,
                                              queue_.size());
  wake_self();
}

void DmaEngine::start_ring(const RingConfig& rc) {
  assert(idle() && "start_ring requires an idle engine");
  assert(!ring_active_);
  assert(rc.head_addr != 0);
  ring_active_ = true;
  ring_cfg_ = rc;
  ring_next_addr_ = rc.head_addr;
  ring_published_ = ring_consumed_ = ring_completed_ = 0;
  has_prefetched_ = false;
  cur_ring_ordinal_ = kNoOrdinal;
  wake_self();
}

void DmaEngine::publish(std::uint64_t n) {
  assert(ring_active_ && "publish without a ring");
  ring_published_ += n;
  stats_.queue_peak = std::max(stats_.queue_peak,
                               ring_published_ - ring_completed_);
  wake_self();
}

void DmaEngine::stop_ring() {
  assert(ring_active_);
  assert(ring_completed_ == ring_published_ && !transfer_active_ &&
         !fetching_desc_ && !has_prefetched_ &&
         "stop_ring before the ring drained");
  ring_active_ = false;
  cur_ring_ordinal_ = kNoOrdinal;
}

void DmaEngine::set_completion(std::function<void(std::uint64_t, bool)> fn) {
  completion_ = std::move(fn);
}

void DmaEngine::ring_complete(std::uint64_t ordinal, bool ok) {
  ++ring_completed_;
  if (completion_) completion_(ordinal, ok);
}

void DmaEngine::ring_reject_pending() {
  while (ring_consumed_ < ring_published_) {
    ++retry_stats_.failed_ops;
    ++stats_.error_descriptors;
    ring_complete(ring_consumed_++, false);
  }
}

bool DmaEngine::idle() const {
  const bool ring_work =
      ring_active_ &&
      (has_prefetched_ || ring_consumed_ < ring_published_);
  return !transfer_active_ && !fetching_desc_ && queue_.empty() &&
         !ring_work;
}

std::uint64_t DmaEngine::elem_addr(const Pattern& p, std::uint64_t i,
                                   bool is_src) const {
  switch (p.kind) {
    case Pattern::Kind::contiguous:
      return p.addr + i * cur_.elem_bytes;
    case Pattern::Kind::strided:
      return p.addr + static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(i) * p.stride);
    case Pattern::Kind::indirect: {
      const auto& cache = is_src ? idx_src_ : idx_dst_;
      assert(i < cache.size() && "index not staged yet");
      return p.addr + cache[i] * cur_.elem_bytes;
    }
  }
  assert(false);
  return 0;
}

void DmaEngine::plan_index_fetch(const Pattern& p) {
  const std::uint64_t bytes = cur_.num_elems * idx_bytes(p);
  for (const axi::AxiAr& ar :
       axi::split_contiguous(p.index_base, bytes, cfg_.bus_bytes,
                             axi::Traffic::index)) {
    PlannedRead pr;
    pr.ar = ar;
    pr.ar.id = cfg_.axi_id;
    pr.kind = ReadKind::index;
    // Payload accounting below relies on planned order, so compute the
    // exact byte count this burst covers.
    pr.payload_bytes = 0;  // filled after the loop from the tiling
    planned_reads_.push_back(pr);
  }
  // split_contiguous tiles [index_base, index_base + bytes); recover each
  // burst's extent from consecutive start addresses.
  std::uint64_t end = p.index_base + bytes;
  for (std::size_t i = planned_reads_.size(); i-- > 0;) {
    PlannedRead& pr = planned_reads_[i];
    if (pr.kind != ReadKind::index || pr.payload_bytes != 0) break;
    pr.payload_bytes = end - pr.ar.addr;
    end = pr.ar.addr;
  }
}

void DmaEngine::begin_transfer(const Descriptor& d) {
  assert(!transfer_active_);
  cur_ = d;
  transfer_active_ = true;
  planned_reads_.clear();
  next_read_ = 0;
  planned_writes_.clear();
  next_aw_ = 0;
  w_burst_ = 0;
  w_sent_bytes_ = 0;
  w_cursor_ = 0;
  idx_src_.clear();
  idx_dst_.clear();
  idx_raw_.clear();
  needs_src_idx_ = false;
  needs_dst_idx_ = false;

  if (d.num_elems == 0) {
    finish_transfer();
    return;
  }

  // Narrow mode stages index arrays through the engine before the data
  // phase, like a conventional gather/scatter DMA (and like the paper's
  // BASE system fetching indices into the core).
  if (!cfg_.use_pack) {
    if (d.src.kind == Pattern::Kind::indirect) needs_src_idx_ = true;
    if (d.dst.kind == Pattern::Kind::indirect) needs_dst_idx_ = true;
    if (needs_src_idx_) {
      idx_fetch_src_ = true;
      plan_index_fetch(d.src);
    } else if (needs_dst_idx_) {
      idx_fetch_src_ = false;
      plan_index_fetch(d.dst);
    }
  }

  const bool src_irregular = d.src.kind != Pattern::Kind::contiguous;
  const bool dst_irregular = d.dst.kind != Pattern::Kind::contiguous;

  // Plan data reads. In narrow mode irregular sides use per-element bursts
  // generated on the fly (planned lazily in tick_read once indices are in).
  if (cfg_.use_pack || !src_irregular) {
    for (const axi::AxiAr& ar :
         plan_pattern_reads(d.src, d, cfg_.bus_bytes)) {
      PlannedRead pr;
      pr.ar = ar;
      pr.ar.id = cfg_.axi_id;
      pr.kind = ReadKind::data;
      pr.payload_bytes = 0;
      planned_reads_.push_back(pr);
    }
    // Recover per-burst payload from stream geometry.
    if (!src_irregular) {
      std::uint64_t end = d.src.addr + d.total_bytes();
      for (std::size_t i = planned_reads_.size(); i-- > 0;) {
        PlannedRead& pr = planned_reads_[i];
        if (pr.kind != ReadKind::data) break;
        pr.payload_bytes = end - pr.ar.addr;
        end = pr.ar.addr;
      }
    } else {
      for (PlannedRead& pr : planned_reads_) {
        if (pr.kind == ReadKind::data) {
          pr.payload_bytes = pr.ar.pack->num_elems * d.elem_bytes;
        }
      }
    }
  }

  // Plan data writes symmetrically.
  if (cfg_.use_pack || !dst_irregular) {
    Pattern dst = d.dst;
    switch (dst.kind) {
      case Pattern::Kind::contiguous: {
        for (const axi::AxiAr& ar :
             axi::split_contiguous(dst.addr, d.total_bytes(),
                                   cfg_.bus_bytes)) {
          planned_writes_.push_back(PlannedWrite{ar, 0});
        }
        std::uint64_t end = dst.addr + d.total_bytes();
        for (std::size_t i = planned_writes_.size(); i-- > 0;) {
          PlannedWrite& pw = planned_writes_[i];
          pw.payload_bytes = end - pw.aw.addr;
          end = pw.aw.addr;
        }
        break;
      }
      case Pattern::Kind::strided:
        for (const axi::AxiAr& ar :
             axi::split_pack_strided(dst.addr, dst.stride, d.elem_bytes,
                                     d.num_elems, cfg_.bus_bytes)) {
          planned_writes_.push_back(
              PlannedWrite{ar, ar.pack->num_elems * d.elem_bytes});
        }
        break;
      case Pattern::Kind::indirect:
        for (const axi::AxiAr& ar :
             axi::split_pack_indirect(dst.addr, dst.index_base,
                                      dst.index_bits, d.elem_bytes,
                                      d.num_elems, cfg_.bus_bytes)) {
          planned_writes_.push_back(
              PlannedWrite{ar, ar.pack->num_elems * d.elem_bytes});
        }
        break;
    }
    for (PlannedWrite& pw : planned_writes_) pw.aw.id = cfg_.axi_id;
  }
}

void DmaEngine::issue_next_read() {
  if (fault_ || retry_pending_) return;  // drain before replaying
  if (!port_.ar.can_push()) return;
  if (outstanding_reads_ >= cfg_.max_outstanding_reads) return;

  const bool src_irregular = cur_.src.kind != Pattern::Kind::contiguous;
  const bool lazy_narrow_src =
      transfer_active_ && !cfg_.use_pack && src_irregular;

  // Index and descriptor fetches, plus planned data bursts.
  if (next_read_ < planned_reads_.size()) {
    const PlannedRead& pr = planned_reads_[next_read_];
    // Data reads wait until required indices are staged (narrow mode) —
    // index bursts themselves always proceed.
    if (pr.kind == ReadKind::data && !cfg_.use_pack &&
        (needs_src_idx_ || needs_dst_idx_)) {
      return;
    }
    const std::uint64_t words = util::ceil_div<std::uint64_t>(
        pr.payload_bytes, 4);
    if (pr.kind == ReadKind::data &&
        reserved_words_ + words > cfg_.buffer_words && reserved_words_ > 0) {
      return;  // no buffer headroom; a lone oversized burst may still go
    }
    port_.ar.push(pr.ar);
    ++next_read_;
    ++outstanding_reads_;
    ++stats_.ar_bursts;
    last_progress_ = now_;
    ActiveRead act;
    act.kind = pr.kind;
    act.packed = pr.ar.pack.has_value();
    act.cursor = pr.ar.addr;
    act.bytes_left = pr.payload_bytes;
    active_reads_.push_back(act);
    if (pr.kind == ReadKind::data) reserved_words_ += words;
    return;
  }

  // Lazily generated per-element narrow reads (narrow-mode irregular src).
  if (lazy_narrow_src && !(needs_src_idx_ || needs_dst_idx_)) {
    if (rd_narrow_next_ >= cur_.num_elems) return;
    const unsigned words = wpe(cur_);
    if (reserved_words_ + words > cfg_.buffer_words && reserved_words_ > 0) {
      return;
    }
    const std::uint64_t addr = elem_addr(cur_.src, rd_narrow_next_, true);
    assert(addr % cur_.elem_bytes == 0 &&
           "narrow-mode elements must be size-aligned");
    axi::AxiAr ar;
    ar.addr = addr;
    ar.id = cfg_.axi_id;
    ar.len = 0;
    ar.size = static_cast<std::uint8_t>(util::log2_exact(cur_.elem_bytes));
    ar.burst = axi::BurstType::incr;
    port_.ar.push(ar);
    ++rd_narrow_next_;
    ++outstanding_reads_;
    ++stats_.ar_bursts;
    last_progress_ = now_;
    ActiveRead act;
    act.kind = ReadKind::data;
    act.packed = false;
    act.cursor = addr;
    act.bytes_left = cur_.elem_bytes;
    active_reads_.push_back(act);
    reserved_words_ += words;
  }
}

void DmaEngine::consume_read_payload(const axi::AxiR& r, ActiveRead& act) {
  // An errored beat poisons the whole attempt: its payload (and everything
  // staged after it) is untrustworthy, but accounting proceeds normally so
  // the attempt drains cleanly before the replay/fail decision.
  if (r.resp != axi::kRespOkay) note_fault(r.resp);

  const auto stash = [&](const std::uint8_t* raw, unsigned n) {
    switch (act.kind) {
      case ReadKind::data:
        for (unsigned i = 0; i < n; i += 4) {
          std::uint32_t w;
          std::memcpy(&w, raw + i, 4);
          buffer_.push_back(w);
        }
        break;
      case ReadKind::index:
        idx_raw_.insert(idx_raw_.end(), raw, raw + n);
        stats_.index_fetch_bytes += n;
        break;
      case ReadKind::descriptor:
        desc_raw_.insert(desc_raw_.end(), raw, raw + n);
        stats_.desc_fetch_bytes += n;
        break;
    }
  };

  // Extract this beat's payload bytes.
  unsigned lane;
  unsigned n;
  if (act.packed) {
    lane = 0;
    n = static_cast<unsigned>(std::min<std::uint64_t>(
        cfg_.bus_bytes, act.bytes_left));
  } else {
    lane = static_cast<unsigned>(act.cursor % cfg_.bus_bytes);
    n = static_cast<unsigned>(std::min<std::uint64_t>(
        cfg_.bus_bytes - lane, act.bytes_left));
  }
  assert(n % 4 == 0 && n > 0);
  std::uint8_t raw[axi::kMaxBusBytes];
  axi::extract_bytes(r.data, lane, raw, n);
  act.cursor += n;
  act.bytes_left -= n;
  stash(raw, n);

  // A truncated burst (error-terminated early `last`) delivers fewer bytes
  // than planned. Zero-fill the remainder so every downstream byte-count
  // invariant (staging buffer, index and descriptor assembly) holds; the
  // fault flag already condemns the data.
  if (r.last && act.bytes_left > 0) {
    note_fault(axi::kRespSlvErr);
    const std::uint8_t zeros[axi::kMaxBusBytes] = {};
    while (act.bytes_left > 0) {
      const unsigned z = static_cast<unsigned>(std::min<std::uint64_t>(
          sizeof zeros, act.bytes_left));
      act.cursor += z;
      act.bytes_left -= z;
      stash(zeros, z);
    }
  }
}

void DmaEngine::tick_read() {
  issue_next_read();

  const std::optional<axi::AxiR> r = port_.r.try_pop();
  if (!r) return;
  assert(!active_reads_.empty() && "R beat with no outstanding read");
  ++stats_.r_beats;
  last_progress_ = now_;
  ActiveRead& act = active_reads_.front();
  consume_read_payload(*r, act);
  if (r->last) {
    assert(act.bytes_left == 0 && "burst ended before payload complete");
    const ReadKind kind = act.kind;
    active_reads_.pop_front();
    assert(outstanding_reads_ > 0);
    --outstanding_reads_;

    if (kind == ReadKind::index) {
      // Completed all index bursts for the side being staged?
      const bool more_idx_bursts =
          next_read_ < planned_reads_.size() &&
          planned_reads_[next_read_].kind == ReadKind::index;
      const bool idx_inflight =
          std::any_of(active_reads_.begin(), active_reads_.end(),
                      [](const ActiveRead& a) {
                        return a.kind == ReadKind::index;
                      });
      if (!more_idx_bursts && !idx_inflight) {
        const Pattern& p = idx_fetch_src_ ? cur_.src : cur_.dst;
        auto& cache = idx_fetch_src_ ? idx_src_ : idx_dst_;
        const unsigned ib = idx_bytes(p);
        cache.reserve(cur_.num_elems);
        for (std::uint64_t i = 0; i < cur_.num_elems; ++i) {
          std::uint64_t v = 0;
          std::memcpy(&v, idx_raw_.data() + i * ib, ib);
          cache.push_back(v);
        }
        idx_raw_.clear();
        if (idx_fetch_src_) {
          needs_src_idx_ = false;
          if (needs_dst_idx_) {
            idx_fetch_src_ = false;
            plan_index_fetch(cur_.dst);
          }
        } else {
          needs_dst_idx_ = false;
        }
      }
    }
  }
}

void DmaEngine::tick_write() {
  // Collect write responses.
  if (const std::optional<axi::AxiB> b = port_.b.try_pop()) {
    assert(outstanding_writes_ > 0);
    --outstanding_writes_;
    last_progress_ = now_;
    if (b->resp != axi::kRespOkay) note_fault(b->resp);
  }
  if (!transfer_active_) return;
  if (!cfg_.use_pack && (needs_src_idx_ || needs_dst_idx_)) return;

  const bool dst_irregular = cur_.dst.kind != Pattern::Kind::contiguous;
  const bool narrow_dst = !cfg_.use_pack && dst_irregular;

  if (!narrow_dst) {
    // Planned bursts: AW strictly ahead of its W data, one beat per cycle.
    if (!fault_ && next_aw_ < planned_writes_.size() &&
        next_aw_ <= w_burst_ &&  // issue AW only as W catches up (bounded)
        outstanding_writes_ < cfg_.max_outstanding_writes &&
        port_.aw.can_push()) {
      port_.aw.push(planned_writes_[next_aw_].aw);
      ++next_aw_;
      ++outstanding_writes_;
      ++stats_.aw_bursts;
      last_progress_ = now_;
    }
    if (w_burst_ >= planned_writes_.size()) return;
    if (w_burst_ >= next_aw_) return;  // W may not precede its AW
    if (!port_.w.can_push()) return;
    const PlannedWrite& pw = planned_writes_[w_burst_];

    unsigned lane;
    unsigned n;
    const std::uint64_t left = pw.payload_bytes - w_sent_bytes_;
    if (pw.aw.pack.has_value()) {
      lane = 0;
      n = static_cast<unsigned>(
          std::min<std::uint64_t>(cfg_.bus_bytes, left));
    } else {
      if (w_sent_bytes_ == 0) w_cursor_ = pw.aw.addr;
      lane = static_cast<unsigned>(w_cursor_ % cfg_.bus_bytes);
      n = static_cast<unsigned>(
          std::min<std::uint64_t>(cfg_.bus_bytes - lane, left));
    }
    assert(n % 4 == 0 && n > 0);

    axi::AxiW w;
    if (fault_) {
      // Aborting: the slave is still owed this AW's full beat count, but
      // the staging buffer may never fill again. Drain with null strobes —
      // a replay (or the error completion) owns the destination bytes.
      w.strb = 0;
    } else {
      if (buffer_.size() < n / 4) return;  // data not staged yet
      for (unsigned i = 0; i < n; i += 4) {
        const std::uint32_t word = buffer_.front();
        buffer_.pop_front();
        axi::place_bytes(w.data, lane + i,
                         reinterpret_cast<const std::uint8_t*>(&word), 4);
      }
      assert(reserved_words_ >= n / 4);
      reserved_words_ -= n / 4;
      w.strb = axi::strb_mask(lane, n);
    }
    w.useful_bytes = static_cast<std::uint16_t>(n);
    w_sent_bytes_ += n;
    w_cursor_ += n;
    w.last = w_sent_bytes_ == pw.payload_bytes;
    port_.w.push(w);
    ++stats_.w_beats;
    if (w.last) {
      ++w_burst_;
      w_sent_bytes_ = 0;
    }
  } else {
    // Per-element narrow writes: one AW+W pair per element.
    if (fault_) return;  // AW+W go out atomically: nothing is ever owed
    if (wr_narrow_next_ >= cur_.num_elems) return;
    if (outstanding_writes_ >= cfg_.max_outstanding_writes) return;
    if (!port_.aw.can_push() || !port_.w.can_push()) return;
    const unsigned n = cur_.elem_bytes;
    if (buffer_.size() < n / 4) return;

    const std::uint64_t addr =
        elem_addr(cur_.dst, wr_narrow_next_, false);
    assert(addr % cur_.elem_bytes == 0 &&
           "narrow-mode elements must be size-aligned");
    axi::AxiAw aw;
    aw.addr = addr;
    aw.id = cfg_.axi_id;
    aw.len = 0;
    aw.size = static_cast<std::uint8_t>(util::log2_exact(n));
    aw.burst = axi::BurstType::incr;
    port_.aw.push(aw);
    ++stats_.aw_bursts;

    axi::AxiW w;
    const unsigned lane = static_cast<unsigned>(addr % cfg_.bus_bytes);
    for (unsigned i = 0; i < n; i += 4) {
      const std::uint32_t word = buffer_.front();
      buffer_.pop_front();
      axi::place_bytes(w.data, lane + i,
                       reinterpret_cast<const std::uint8_t*>(&word), 4);
    }
    assert(reserved_words_ >= n / 4);
    reserved_words_ -= n / 4;
    w.strb = axi::strb_mask(lane, n);
    w.useful_bytes = static_cast<std::uint16_t>(n);
    w.last = true;
    port_.w.push(w);
    ++stats_.w_beats;
    ++outstanding_writes_;
    ++wr_narrow_next_;
    last_progress_ = now_;
  }
}

void DmaEngine::tick_timeout() {
  const sim::RetryConfig& rc = cfg_.retry;
  if (!rc.enabled() || rc.timeout_cycles == 0) return;
  const bool inflight = !active_reads_.empty() || outstanding_writes_ > 0 ||
                        w_burst_ < next_aw_;
  if (!inflight) return;
  if (now_ <= last_progress_ + rc.timeout_cycles) return;
  ++retry_stats_.timeouts;
  note_fault(axi::kRespSlvErr);
  last_progress_ = now_;  // one expiry per stall; the drain then resolves
}

void DmaEngine::note_fault(std::uint8_t resp) {
  fault_ = true;
  if (resp == axi::kRespDecErr) fatal_ = true;
}

bool DmaEngine::fault_drained() const {
  return active_reads_.empty() && outstanding_writes_ == 0 &&
         w_burst_ >= next_aw_;
}

void DmaEngine::reset_transfer() {
  transfer_active_ = false;
  planned_reads_.clear();
  next_read_ = 0;
  active_reads_.clear();
  planned_writes_.clear();
  next_aw_ = 0;
  w_burst_ = 0;
  w_sent_bytes_ = 0;
  w_cursor_ = 0;
  rd_narrow_next_ = 0;
  wr_narrow_next_ = 0;
  buffer_.clear();
  reserved_words_ = 0;
  idx_src_.clear();
  idx_dst_.clear();
  idx_raw_.clear();
  needs_src_idx_ = false;
  needs_dst_idx_ = false;
}

void DmaEngine::resolve_fault() {
  assert(fault_ && fault_drained());
  // A ring prefetch that was in flight when the transfer faulted is
  // abandoned: its slot was not yet consumed and will simply be fetched
  // again. The transfer owns the retry/fail decision.
  if (transfer_active_ && fetching_desc_) {
    fetching_desc_ = false;
    desc_raw_.clear();
    planned_reads_.clear();
    next_read_ = 0;
  }
  ++attempts_;
  const sim::RetryConfig& rc = cfg_.retry;
  // Breaker input: a failed attempt of a transfer whose irregular side rode
  // AXI-Pack bursts. Past the threshold the engine degrades to narrow
  // per-element bursts for everything that follows, replay included —
  // correct, just slow.
  if (transfer_active_ && cfg_.use_pack &&
      (cur_.src.kind != Pattern::Kind::contiguous ||
       cur_.dst.kind != Pattern::Kind::contiguous)) {
    ++pack_fault_attempts_;
    if (!retry_stats_.degraded && rc.breaker_threshold != 0 &&
        pack_fault_attempts_ >= rc.breaker_threshold) {
      retry_stats_.degraded = true;
      cfg_.use_pack = false;
    }
  }
  fault_ = false;
  if (fatal_ || !rc.enabled() || attempts_ >= rc.max_attempts) {
    // Error completion: record it and terminate the chain (cur_.next is
    // not followed; a descriptor fetch in progress is abandoned). A ring
    // behaves differently: slots are independent requests, so a failed
    // transfer completes with an error and the ring continues — but a
    // failed slot *fetch* breaks the link walk and ends the ring.
    ++retry_stats_.failed_ops;
    ++stats_.error_descriptors;
    fatal_ = false;
    attempts_ = 0;
    if (fetching_desc_) {
      fetching_desc_ = false;
      desc_raw_.clear();
      planned_reads_.clear();
      next_read_ = 0;
      if (ring_active_) {
        ring_complete(ring_consumed_++, false);
        ring_next_addr_ = 0;
        ring_reject_pending();
      }
    } else {
      const std::uint64_t ring_ord = cur_ring_ordinal_;
      cur_ring_ordinal_ = kNoOrdinal;
      reset_transfer();
      if (ring_ord != kNoOrdinal) ring_complete(ring_ord, false);
    }
  } else {
    ++retry_stats_.retries;
    const unsigned shift = std::min(attempts_ - 1, 16u);
    backoff_until_ = now_ + (rc.backoff << shift);
    retry_pending_ = true;
  }
}

void DmaEngine::finish_transfer() {
  stats_.bytes_moved += cur_.total_bytes();
  ++stats_.descriptors_done;
  transfer_active_ = false;
  attempts_ = 0;
  rd_narrow_next_ = 0;
  wr_narrow_next_ = 0;
  if (cur_ring_ordinal_ != kNoOrdinal) {
    // Ring slots chain through their link fields at fetch time; `next` is
    // not followed here — the walk already advanced when this descriptor
    // was parsed.
    const std::uint64_t ord = cur_ring_ordinal_;
    cur_ring_ordinal_ = kNoOrdinal;
    ring_complete(ord, true);
    return;
  }
  latency_.record(now_ - cur_arrival_);
  if (cur_.next != 0) {
    queue_.push_front(PendingDesc{{}, cur_.next, true, now_});
  }
}

void DmaEngine::tick_start() {
  if (transfer_active_ || fetching_desc_) return;
  if (ring_active_) {
    if (has_prefetched_) {
      has_prefetched_ = false;
      cur_ring_ordinal_ = prefetched_ordinal_;
      begin_transfer(prefetched_);
      return;
    }
    if (ring_next_addr_ == 0) {
      // Broken ring (zero link, malformed slot or failed fetch): nothing
      // published can ever execute — reject it so producers don't hang.
      ring_reject_pending();
      return;
    }
    if (ring_consumed_ < ring_published_) {
      fetching_desc_ = true;
      plan_desc_fetch(ring_next_addr_);
    }
    return;
  }
  if (queue_.empty()) return;
  PendingDesc& head = queue_.front();
  if (!head.from_memory) {
    const Descriptor d = head.desc;
    cur_arrival_ = head.arrival;
    queue_.pop_front();
    begin_transfer(d);
    return;
  }
  // Fetch the descriptor over the port (plain INCR reads).
  fetching_desc_ = true;
  fetch_arrival_ = head.arrival;
  plan_desc_fetch(head.addr);
  queue_.pop_front();
}

void DmaEngine::plan_desc_fetch(std::uint64_t addr) {
  desc_addr_ = addr;
  desc_raw_.clear();
  planned_reads_.clear();
  next_read_ = 0;
  for (const axi::AxiAr& ar :
       axi::split_contiguous(addr, kDescriptorBytes, cfg_.bus_bytes)) {
    PlannedRead pr;
    pr.ar = ar;
    pr.ar.id = cfg_.axi_id;
    pr.kind = ReadKind::descriptor;
    pr.payload_bytes = 0;
    planned_reads_.push_back(pr);
  }
  std::uint64_t end = addr + kDescriptorBytes;
  for (std::size_t i = planned_reads_.size(); i-- > 0;) {
    planned_reads_[i].payload_bytes = end - planned_reads_[i].ar.addr;
    end = planned_reads_[i].ar.addr;
  }
}

bool DmaEngine::read_side_drained() const {
  if (next_read_ < planned_reads_.size() || !active_reads_.empty()) {
    return false;
  }
  if (needs_src_idx_ || needs_dst_idx_) return false;
  const bool narrow_src =
      !cfg_.use_pack && cur_.src.kind != Pattern::Kind::contiguous;
  return !narrow_src || rd_narrow_next_ >= cur_.num_elems;
}

void DmaEngine::tick_ring() {
  if (!ring_active_ || !transfer_active_) return;

  // Parse a prefetch whose beats have all arrived. The transfer path's
  // tick_read() consumed them (routed by ReadKind), so the raw bytes are
  // already assembled here.
  if (fetching_desc_ && desc_raw_.size() == kDescriptorBytes &&
      active_reads_.empty()) {
    const auto d = parse_descriptor(desc_raw_.data());
    fetching_desc_ = false;
    desc_raw_.clear();
    const std::uint64_t ordinal = ring_consumed_++;
    if (!d.has_value()) {
      ++stats_.malformed_descriptors;
      ++stats_.error_descriptors;
      ++retry_stats_.failed_ops;
      ring_complete(ordinal, false);
      ring_next_addr_ = 0;
      // Later slots are rejected once the active transfer retires
      // (tick_start's broken-ring path), keeping completions in order.
    } else {
      prefetched_ = *d;
      prefetched_ordinal_ = ordinal;
      has_prefetched_ = true;
      ring_next_addr_ = d->next;
    }
  }

  // Start the next prefetch once the transfer's read side has fully
  // drained: from here on plan_desc_fetch() may repurpose the read plan,
  // and descriptor beats cannot interleave with data beats.
  if (ring_cfg_.double_buffer && !fetching_desc_ && !has_prefetched_ &&
      ring_next_addr_ != 0 && ring_consumed_ < ring_published_ &&
      !retry_pending_ && read_side_drained()) {
    fetching_desc_ = true;
    plan_desc_fetch(ring_next_addr_);
  }
}

void DmaEngine::tick() {
  ++now_;
  if (!idle()) ++stats_.busy_cycles;

  // Backoff between failed attempts: replay once the window closes.
  if (retry_pending_) {
    if (now_ < backoff_until_) return;
    retry_pending_ = false;
    last_progress_ = now_;
    if (fetching_desc_) {
      plan_desc_fetch(desc_addr_);
    } else {
      const Descriptor d = cur_;
      reset_transfer();
      begin_transfer(d);
    }
    return;
  }

  tick_start();

  if (fetching_desc_ && !transfer_active_) {
    issue_next_read();
    if (const std::optional<axi::AxiR> r = port_.r.try_pop()) {
      ++stats_.r_beats;
      last_progress_ = now_;
      assert(!active_reads_.empty());
      ActiveRead& act = active_reads_.front();
      consume_read_payload(*r, act);
      if (r->last) {
        active_reads_.pop_front();
        assert(outstanding_reads_ > 0);
        --outstanding_reads_;
      }
    }
    tick_timeout();
    if (fault_) {
      if (fault_drained()) resolve_fault();
      return;
    }
    if (desc_raw_.size() == kDescriptorBytes && active_reads_.empty()) {
      const auto d = parse_descriptor(desc_raw_.data());
      fetching_desc_ = false;
      attempts_ = 0;
      desc_raw_.clear();
      if (ring_active_) {
        const std::uint64_t ordinal = ring_consumed_++;
        if (!d.has_value()) {
          // Malformed ring slot: the link is unreadable, so the walk
          // cannot continue — fail this slot and break the ring.
          ++stats_.malformed_descriptors;
          ++stats_.error_descriptors;
          ++retry_stats_.failed_ops;
          ring_complete(ordinal, false);
          ring_next_addr_ = 0;
          ring_reject_pending();
        } else {
          ring_next_addr_ = d->next;
          cur_ring_ordinal_ = ordinal;
          begin_transfer(*d);
        }
      } else if (!d.has_value()) {
        // Malformed chain entry: error completion, chain terminated. A
        // register-programmed chain head that points at garbage lands
        // here too — no UB, just a recorded failure.
        ++stats_.malformed_descriptors;
        ++stats_.error_descriptors;
        ++retry_stats_.failed_ops;
      } else {
        cur_arrival_ = fetch_arrival_;
        begin_transfer(*d);
      }
    }
    return;
  }

  if (!transfer_active_) return;
  tick_read();
  tick_write();
  tick_timeout();

  if (fault_) {
    if (fault_drained()) resolve_fault();
    return;
  }

  tick_ring();

  // Transfer completion check.
  const bool reads_planned_done = next_read_ >= planned_reads_.size();
  const bool src_irregular = cur_.src.kind != Pattern::Kind::contiguous;
  const bool narrow_src = !cfg_.use_pack && src_irregular;
  const bool reads_done =
      reads_planned_done && active_reads_.empty() &&
      (!narrow_src || rd_narrow_next_ >= cur_.num_elems);
  const bool dst_irregular = cur_.dst.kind != Pattern::Kind::contiguous;
  const bool narrow_dst = !cfg_.use_pack && dst_irregular;
  const bool writes_done =
      narrow_dst ? wr_narrow_next_ >= cur_.num_elems
                 : w_burst_ >= planned_writes_.size();
  if (reads_done && writes_done && outstanding_writes_ == 0) {
    assert(buffer_.empty());
    finish_transfer();
  }
}

}  // namespace axipack::dma
