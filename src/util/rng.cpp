#include "util/rng.hpp"

#include <algorithm>
#include <cassert>

namespace axipack::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 seeds the xoshiro state from a single word.
std::uint64_t splitmix(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

float Rng::uniform() {
  // 24 mantissa bits -> exactly representable float in [0,1).
  return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
}

float Rng::uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected insertions. Membership goes through a
  // bitmap so dense samples (k ~ n) stay O(k), not O(k^2); the draw
  // sequence — and therefore the sampled set — is unchanged.
  std::vector<std::uint32_t> out;
  out.reserve(k);
  std::vector<std::uint64_t> taken((n + 63) / 64, 0);
  const auto test_and_set = [&taken](std::uint32_t v) {
    std::uint64_t& word = taken[v >> 6];
    const std::uint64_t bit = 1ull << (v & 63);
    const bool was = (word & bit) != 0;
    word |= bit;
    return was;
  };
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(below(j + 1));
    if (!test_and_set(t)) {
      out.push_back(t);
    } else {
      test_and_set(j);
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace axipack::util
