// Bit- and arithmetic helpers shared across all subsystems.
//
// Everything here is constexpr-friendly and free of simulator state; these are
// the "address math" primitives used by burst splitting, bank interleaving and
// the beat packers.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <type_traits>

namespace axipack::util {

/// Integer ceil-division. `d` must be positive.
template <typename T>
constexpr T ceil_div(T n, T d) {
  static_assert(std::is_integral_v<T>);
  assert(d > 0);
  return static_cast<T>((n + d - 1) / d);
}

/// Round `n` up to the next multiple of `align` (align > 0, need not be pow2).
template <typename T>
constexpr T round_up(T n, T align) {
  return ceil_div(n, align) * align;
}

/// Round `n` down to the previous multiple of `align`.
template <typename T>
constexpr T round_down(T n, T align) {
  assert(align > 0);
  return static_cast<T>((n / align) * align);
}

/// True iff `v` is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t v) {
  assert(is_pow2(v));
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Ceiling log2 (log2_ceil(1) == 0).
constexpr unsigned log2_ceil(std::uint64_t v) {
  assert(v != 0);
  return static_cast<unsigned>(64 - std::countl_zero(v - 1));
}

/// Primality test by trial division; bank counts are tiny so this is plenty.
constexpr bool is_prime(std::uint64_t v) {
  if (v < 2) return false;
  for (std::uint64_t d = 2; d * d <= v; ++d) {
    if (v % d == 0) return false;
  }
  return true;
}

/// AXI4 encodes the per-beat size as log2(bytes); helpers to convert both ways.
constexpr unsigned axsize_of_bytes(unsigned bytes) { return log2_exact(bytes); }
constexpr unsigned bytes_of_axsize(unsigned axsize) { return 1u << axsize; }

}  // namespace axipack::util
