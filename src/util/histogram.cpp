#include "util/histogram.hpp"

#include <algorithm>
#include <bit>

namespace axipack::util {

unsigned Histogram::bucket_of(std::uint64_t v) {
  return v == 0 ? 0u : static_cast<unsigned>(std::bit_width(v));
}

std::uint64_t Histogram::bucket_lo(unsigned i) {
  return i == 0 ? 0ull : 1ull << (i - 1);
}

std::uint64_t Histogram::bucket_hi(unsigned i) {
  if (i == 0) return 0;
  if (i == 64) return ~0ull;
  return (1ull << i) - 1;
}

void Histogram::record(std::uint64_t v) {
  ++counts_[bucket_of(v)];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void Histogram::merge(const Histogram& o) {
  for (unsigned i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
  count_ += o.count_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

void Histogram::clear() { *this = Histogram{}; }

double Histogram::mean() const {
  return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                : 0.0;
}

double Histogram::value_at_rank(std::uint64_t r) const {
  // The extreme ranks are known exactly regardless of bucketing.
  if (r == 0) return static_cast<double>(min_);
  if (r + 1 >= count_) return static_cast<double>(max_);
  std::uint64_t seen = 0;
  for (unsigned i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = counts_[i];
    if (r < seen + c) {
      // Clamp the bucket span to the observed extremes so the first and
      // last buckets don't report values that were never seen.
      const double lo =
          static_cast<double>(std::max(bucket_lo(i), min_));
      const double hi =
          static_cast<double>(std::min(bucket_hi(i), max_));
      if (c == 1) return lo == hi ? lo : (lo + hi) / 2.0;
      const double pos = static_cast<double>(r - seen);
      return lo + (hi - lo) * pos / static_cast<double>(c - 1);
    }
    seen += c;
  }
  return static_cast<double>(max_);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double fr = p / 100.0 * static_cast<double>(count_ - 1);
  const std::uint64_t lo_rank = static_cast<std::uint64_t>(fr);
  const double frac = fr - static_cast<double>(lo_rank);
  const double lo = value_at_rank(lo_rank);
  if (frac == 0.0) return lo;
  const double hi = value_at_rank(lo_rank + 1);
  return lo + (hi - lo) * frac;
}

}  // namespace axipack::util
