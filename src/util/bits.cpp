#include "util/bits.hpp"

// Header-only; this translation unit exists so the static library always has
// at least one object per header group and the header is compile-checked.
namespace axipack::util {
static_assert(ceil_div(7, 2) == 4);
static_assert(round_up(5, 4) == 8);
static_assert(is_pow2(32) && !is_pow2(17));
static_assert(log2_exact(256) == 8);
static_assert(is_prime(17) && is_prime(31) && !is_prime(16));
}  // namespace axipack::util
