#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace axipack::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  return buf;
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma and the colon follows it
  }
  if (!stack_.empty() && counts_nonempty_.back() == '1') out_ << ", ";
  if (!counts_nonempty_.empty()) counts_nonempty_.back() = '1';
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << "{";
  stack_ += '{';
  counts_nonempty_ += '0';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  stack_.pop_back();
  counts_nonempty_.pop_back();
  out_ << "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << "[";
  stack_ += '[';
  counts_nonempty_ += '0';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  stack_.pop_back();
  counts_nonempty_.pop_back();
  out_ << "]";
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (!counts_nonempty_.empty() && counts_nonempty_.back() == '1') {
    out_ << ", ";
  }
  if (!counts_nonempty_.empty()) counts_nonempty_.back() = '1';
  out_ << '"' << json_escape(name) << "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(unsigned v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& json_fragment) {
  before_value();
  out_ << json_fragment;
  return *this;
}

}  // namespace axipack::util
