// Fixed-bucket log2 latency histogram.
//
// Values are binned by bit width: bucket 0 holds the value 0, bucket k
// (k >= 1) holds [2^(k-1), 2^k). Recording is O(1) with no allocation, so
// the timing models can stamp every request without perturbing the hot
// path, and two histograms merge by adding bucket counts — per-master
// histograms aggregate into one RunResult exactly, in any order.
//
// Percentiles are reconstructed from the bucket counts: samples inside a
// bucket are assumed evenly spread across it, with the bucket range
// clamped to the observed global [min, max] so p0 == min and p100 == max
// are exact. Single-sample buckets report their clamped midpoint. This
// keeps the error of any quantile below one octave while storing only
// 65 counters per histogram.
#pragma once

#include <array>
#include <cstdint>

namespace axipack::util {

class Histogram {
 public:
  /// Bucket 0 is the exact value 0; bucket k >= 1 spans [2^(k-1), 2^k).
  static constexpr unsigned kBuckets = 65;

  void record(std::uint64_t v);
  /// Adds `o`'s samples to this histogram. Associative and commutative.
  void merge(const Histogram& o);
  void clear();

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  /// Smallest / largest recorded value; 0 when empty.
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  double mean() const;

  /// Quantile at `p` in [0, 100]; 0.0 when empty. p is clamped.
  /// percentile(0) == min(), percentile(100) == max() exactly.
  double percentile(double p) const;

  std::uint64_t bucket_count(unsigned i) const { return counts_[i]; }

  static unsigned bucket_of(std::uint64_t v);
  /// Inclusive bucket bounds: [bucket_lo(i), bucket_hi(i)].
  static std::uint64_t bucket_lo(unsigned i);
  static std::uint64_t bucket_hi(unsigned i);

 private:
  /// Value of the sample at 0-based rank `r` (samples sorted ascending),
  /// interpolated within its bucket.
  double value_at_rank(std::uint64_t r) const;

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace axipack::util
