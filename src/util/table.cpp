#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace axipack::util {

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_pct(double ratio, int precision) {
  return fmt(ratio * 100.0, precision) + "%";
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  assert(!rows_.empty());
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(fmt(value, precision));
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << text;
    }
    os << " |\n";
  };
  print_row(header_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace axipack::util
