// Minimal JSON writer used by the structured result emitters (RunResult,
// ResultSet, perf_kernel). Write-only by design: the project emits JSON
// artifacts for CI and analysis scripts but never parses them.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace axipack::util {

/// Escapes `s` for embedding in a JSON string literal (quotes not added).
std::string json_escape(const std::string& s);

/// Formats a double as a JSON number (finite values only; non-finite
/// values, which JSON cannot represent, are emitted as null).
std::string json_number(double value);

/// Streaming writer for one JSON document. Tracks nesting and element
/// counts so callers never hand-place commas; values are formatted and
/// strings escaped on the way through.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("cycles").value(std::uint64_t{42});
///   w.key("points").begin_array();
///   ...
///   w.end_array();
///   w.end_object();
///   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next value/begin_* call provides its value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(unsigned v);
  JsonWriter& value(bool v);
  JsonWriter& null();
  /// Splices a pre-rendered JSON fragment in as one value (e.g. the
  /// output of RunResult::to_json()).
  JsonWriter& raw(const std::string& json_fragment);

  std::string str() const { return out_.str(); }

 private:
  void before_value();

  std::ostringstream out_;
  /// Element count per open scope; top-level is depth 0.
  std::string stack_;  ///< '{' or '[' per nesting level
  std::string counts_nonempty_;  ///< parallel to stack_: '1' once a scope has elements
  bool pending_key_ = false;
};

}  // namespace axipack::util
