// Console table formatting used by the bench harnesses to print paper-style
// rows (figure series) next to the published reference values.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace axipack::util {

/// A simple right-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision so bench output lines up nicely.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add_* calls append cells to it.
  Table& row();
  Table& cell(std::string text);
  Table& cell(double value, int precision = 2);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);

  /// Renders with column separators and a header rule.
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `precision` decimals (fixed).
std::string fmt(double value, int precision = 2);

/// Format a ratio as a percentage string, e.g. 0.87 -> "87.0%".
std::string fmt_pct(double ratio, int precision = 1);

}  // namespace axipack::util
