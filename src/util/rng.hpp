// Deterministic pseudo-random number generation for workload synthesis.
//
// We use our own xoshiro256** so that generated matrices/graphs are identical
// across platforms and standard-library versions (std::mt19937 distributions
// are not guaranteed reproducible across implementations).
#pragma once

#include <cstdint>
#include <vector>

namespace axipack::util {

/// xoshiro256** by Blackman & Vigna; public-domain algorithm.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound) (bound > 0).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform float in [0, 1).
  float uniform();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// k distinct values from [0, n), ascending. k <= n.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace axipack::util
