#include "traffic/arrival.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace axipack::traffic {

namespace {

/// splitmix64 — same decision hash FaultPlan uses.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform draw in (0, 1] from (seed, ordinal) — never 0, so log() is
/// always finite.
double uniform01(std::uint64_t seed, std::uint64_t ordinal) {
  const std::uint64_t h =
      mix(seed ^ (ordinal * 0xc2b2ae3d27d4eb4full));
  return (static_cast<double>(h >> 11) + 1.0) / 9007199254740992.0;
}

}  // namespace

ArrivalProcess::ArrivalProcess(const ArrivalConfig& cfg) : cfg_(cfg) {
  if (cfg_.rate_per_100k > 0) {
    mean_gap_ = 100000.0 / static_cast<double>(cfg_.rate_per_100k);
  }
}

sim::Cycle ArrivalProcess::poisson_gap(std::uint64_t ordinal) const {
  const double u = uniform01(cfg_.seed, ordinal);
  const double gap = -mean_gap_ * std::log(u);
  return static_cast<sim::Cycle>(std::llround(gap));
}

sim::Cycle ArrivalProcess::arrival_cycle(std::uint64_t ordinal) const {
  assert(enabled() && "arrival_cycle on a disabled process");
  switch (cfg_.kind) {
    case ArrivalKind::fixed:
      return static_cast<sim::Cycle>(
          std::llround(static_cast<double>(ordinal + 1) * mean_gap_));
    case ArrivalKind::bursty: {
      const std::uint64_t burst = ordinal / cfg_.burst_len;
      const std::uint64_t within = ordinal % cfg_.burst_len;
      const auto burst_start = static_cast<sim::Cycle>(std::llround(
          static_cast<double>(burst * cfg_.burst_len) * mean_gap_));
      const auto on_gap = std::max<sim::Cycle>(
          1, static_cast<sim::Cycle>(
                 std::llround(mean_gap_ / cfg_.burst_speedup)));
      return burst_start + within * on_gap;
    }
    case ArrivalKind::poisson: {
      // Prefix-sum of hashed exponential gaps, memoized in order.
      while (poisson_memo_.size() <= ordinal) {
        const std::uint64_t i = poisson_memo_.size();
        const sim::Cycle prev = i == 0 ? 0 : poisson_memo_[i - 1];
        poisson_memo_.push_back(prev + poisson_gap(i));
      }
      return poisson_memo_[ordinal];
    }
  }
  return 0;  // unreachable
}

}  // namespace axipack::traffic
