// Open-loop load driver: turns a seeded arrival process into a sustained
// request stream against a scatter-gather ring DMA engine, and measures
// each request's sojourn latency (arrival -> completion event).
//
// Each request is one ring descriptor: an indirect gather of
// `elems_per_req` words from a shared data region (indices drawn from a
// pre-generated pool) into a per-slot contiguous destination — the
// irregular access shape the paper's packed path accelerates, issued at a
// configured rate instead of as-fast-as-possible. Requests that find the
// ring full wait in a software backlog whose high-water mark is the
// saturation signal.
//
// Determinism: arrival cycles are pure functions of (seed, ordinal)
// (see arrival.hpp) and all stamps use the kernel's wall clock, so gated
// and naive kernels measure identical latencies. The driver sleeps
// between arrivals via wake_hint and is woken by completion events.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "dma/engine.hpp"
#include "mem/backing_store.hpp"
#include "sim/kernel.hpp"
#include "traffic/arrival.hpp"
#include "util/histogram.hpp"

namespace axipack::traffic {

struct TrafficConfig {
  ArrivalConfig arrival;
  /// Config of the scatter-gather master the builder attaches for this
  /// stream (pack vs narrow is what separates the open-loop systems).
  dma::DmaConfig dma;
  unsigned ring_slots = 64;  ///< descriptor-ring size (>= 2)
  bool double_buffer = true; ///< engine prefetches the next slot
  unsigned elems_per_req = 64;     ///< 32-bit words gathered per request
  unsigned pool_reqs = 256;        ///< distinct index/dst slot groups
  std::uint64_t data_words = 1ull << 16;  ///< gather footprint in words
  /// Requests arriving before this cycle (relative to arm()) are issued
  /// but excluded from the latency histogram and the offered/achieved
  /// rates — the measurement window starts after warmup.
  sim::Cycle warmup_cycles = 20000;
};

/// Bytes of backing store the driver needs for ring + pools + data.
std::uint64_t footprint_bytes(const TrafficConfig& cfg);

class OpenLoopDriver final : public sim::Component {
 public:
  /// Writes the data region, index pool and ring links into `store`
  /// starting at `region_base` (64-byte aligned, footprint_bytes() long)
  /// and registers with the kernel. Generation starts at arm().
  OpenLoopDriver(sim::Kernel& k, dma::DmaEngine& engine,
                 mem::BackingStore& store, const TrafficConfig& cfg,
                 std::uint64_t region_base);

  /// Starts open-loop generation now; arrivals stop at `stop_at`
  /// (exclusive). The measurement window is
  /// [now + warmup_cycles, stop_at).
  void arm(sim::Cycle stop_at);

  /// True when every generated request has completed (or before arm()).
  bool drained() const;

  /// Diffs every destination group at least one generated request covered
  /// against a recomputed reference gather (requests are idempotent per
  /// group, so any completed repetition leaves the same bytes). Call
  /// after draining; meaningful only when no request failed.
  bool verify(std::string& error) const;

  struct Stats {
    std::uint64_t arrivals = 0;     ///< requests generated
    std::uint64_t completed = 0;    ///< completion events, any outcome
    std::uint64_t failed = 0;       ///< error completions
    std::uint64_t window_arrivals = 0;     ///< arrivals in the window
    std::uint64_t window_completions = 0;  ///< completions in the window
    std::uint64_t queue_peak = 0;   ///< max in-system (backlog + ring)
    sim::Cycle window_cycles = 0;   ///< measurement-window length
  };
  const Stats& stats() const { return stats_; }

  /// Sojourn latency (arrival -> completion) of requests that arrived
  /// inside the measurement window and completed successfully.
  const util::Histogram& latency() const { return latency_; }

  /// Requests per 100k cycles offered / achieved inside the window.
  double offered_rate() const;
  double achieved_rate() const;

  void clear_measurements();

  void tick() override;
  bool quiescent() const override;
  sim::Cycle wake_hint() const override;

 private:
  void on_complete(std::uint64_t ordinal, bool ok);
  /// Moves backlog entries into free ring slots (writes + publishes).
  void publish_ready();
  /// Writes the descriptor for request `ordinal` into its ring slot.
  void write_slot(std::uint64_t ordinal);
  bool generating(sim::Cycle now) const;
  sim::Cycle arrival_at(std::uint64_t ordinal) const;

  sim::Kernel& kernel_;
  dma::DmaEngine& engine_;
  mem::BackingStore& store_;
  TrafficConfig cfg_;
  ArrivalProcess arrivals_;

  // Region layout (filled in the constructor).
  std::uint64_t ring_base_ = 0;
  std::uint64_t idx_base_ = 0;
  std::uint64_t dst_base_ = 0;
  std::uint64_t data_base_ = 0;

  bool armed_ = false;
  sim::Cycle start_ = 0;
  sim::Cycle warmup_end_ = 0;
  sim::Cycle stop_ = 0;

  std::uint64_t next_ordinal_ = 0;  ///< next arrival to generate
  std::uint64_t published_ = 0;     ///< descriptors handed to the ring
  std::uint64_t completed_ = 0;     ///< completion events seen
  /// Arrivals awaiting a free ring slot, in order: front() == published_.
  std::deque<sim::Cycle> backlog_arrival_;
  /// Arrival stamp of each in-flight ring ordinal, indexed ordinal %
  /// ring_slots (slot reuse is safe: at most ring_slots in flight).
  std::vector<sim::Cycle> slot_arrival_;

  Stats stats_;
  util::Histogram latency_;
};

}  // namespace axipack::traffic
