#include "traffic/driver.hpp"

#include <algorithm>
#include <cassert>

#include "dma/descriptor.hpp"

namespace axipack::traffic {

namespace {

constexpr std::uint64_t kAlign = 64;

std::uint64_t round_up(std::uint64_t n) {
  return (n + kAlign - 1) / kAlign * kAlign;
}

/// splitmix64, for deterministic pool/data contents.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t ring_bytes(const TrafficConfig& cfg) {
  return round_up(std::uint64_t{cfg.ring_slots} * dma::kDescriptorBytes);
}

std::uint64_t pool_bytes(const TrafficConfig& cfg) {
  return round_up(std::uint64_t{cfg.pool_reqs} * cfg.elems_per_req * 4);
}

}  // namespace

std::uint64_t footprint_bytes(const TrafficConfig& cfg) {
  return ring_bytes(cfg) + 2 * pool_bytes(cfg) +
         round_up(cfg.data_words * 4);
}

OpenLoopDriver::OpenLoopDriver(sim::Kernel& k, dma::DmaEngine& engine,
                               mem::BackingStore& store,
                               const TrafficConfig& cfg,
                               std::uint64_t region_base)
    : kernel_(k),
      engine_(engine),
      store_(store),
      cfg_(cfg),
      arrivals_(cfg.arrival),
      slot_arrival_(cfg.ring_slots, 0) {
  assert(cfg_.ring_slots >= 2 && "a ring needs at least two slots");
  assert(cfg_.pool_reqs >= 1 && cfg_.elems_per_req >= 1);
  assert(cfg_.data_words >= 1);
  assert(region_base % kAlign == 0);
  assert(store_.contains(region_base, footprint_bytes(cfg_)));

  ring_base_ = region_base;
  idx_base_ = ring_base_ + ring_bytes(cfg_);
  dst_base_ = idx_base_ + pool_bytes(cfg_);
  data_base_ = dst_base_ + pool_bytes(cfg_);

  // Deterministic data region and index pool. Indices are uniform over the
  // data region; row locality is whatever the coalescer can find, exactly
  // like the closed-loop indirect kernels.
  for (std::uint64_t w = 0; w < cfg_.data_words; ++w) {
    store_.write_u32(data_base_ + w * 4,
                     static_cast<std::uint32_t>(mix(w ^ 0xDA7Aull)));
  }
  const std::uint64_t total_idx =
      std::uint64_t{cfg_.pool_reqs} * cfg_.elems_per_req;
  for (std::uint64_t i = 0; i < total_idx; ++i) {
    const std::uint32_t idx = static_cast<std::uint32_t>(
        mix(cfg_.arrival.seed ^ (i * 0xc2b2ae3d27d4eb4full)) %
        cfg_.data_words);
    store_.write_u32(idx_base_ + i * 4, idx);
  }

  engine_.set_completion(
      [this](std::uint64_t ordinal, bool ok) { on_complete(ordinal, ok); });

  k.add(*this);
}

sim::Cycle OpenLoopDriver::arrival_at(std::uint64_t ordinal) const {
  return start_ + arrivals_.arrival_cycle(ordinal);
}

bool OpenLoopDriver::generating(sim::Cycle /*now*/) const {
  return armed_ && arrivals_.enabled() &&
         arrival_at(next_ordinal_) < stop_;
}

void OpenLoopDriver::arm(sim::Cycle stop_at) {
  assert(!armed_ && "driver armed twice");
  start_ = kernel_.now();
  warmup_end_ = start_ + cfg_.warmup_cycles;
  stop_ = stop_at;
  assert(stop_ > start_);
  stats_.window_cycles = stop_ > warmup_end_ ? stop_ - warmup_end_ : 0;
  armed_ = true;
  engine_.start_ring(dma::RingConfig{ring_base_, cfg_.double_buffer});
  wake_self();
}

bool OpenLoopDriver::verify(std::string& error) const {
  const std::uint64_t groups =
      std::min<std::uint64_t>(next_ordinal_, cfg_.pool_reqs);
  for (std::uint64_t g = 0; g < groups; ++g) {
    for (std::uint64_t e = 0; e < cfg_.elems_per_req; ++e) {
      const std::uint64_t off = (g * cfg_.elems_per_req + e) * 4;
      const std::uint32_t idx = store_.read_u32(idx_base_ + off);
      const std::uint32_t want = store_.read_u32(data_base_ + idx * 4ull);
      const std::uint32_t got = store_.read_u32(dst_base_ + off);
      if (got != want) {
        error = "open-loop gather mismatch: group " + std::to_string(g) +
                " elem " + std::to_string(e) + " got " + std::to_string(got) +
                " want " + std::to_string(want);
        return false;
      }
    }
  }
  return true;
}

bool OpenLoopDriver::drained() const {
  // Backlog empty implies published_ == next_ordinal_, so all generated
  // requests completed iff the completion count caught up.
  return !armed_ ||
         (backlog_arrival_.empty() && completed_ == next_ordinal_);
}

void OpenLoopDriver::clear_measurements() {
  stats_ = Stats{};
  latency_.clear();
}

double OpenLoopDriver::offered_rate() const {
  if (stats_.window_cycles == 0) return 0.0;
  return static_cast<double>(stats_.window_arrivals) * 100000.0 /
         static_cast<double>(stats_.window_cycles);
}

double OpenLoopDriver::achieved_rate() const {
  if (stats_.window_cycles == 0) return 0.0;
  return static_cast<double>(stats_.window_completions) * 100000.0 /
         static_cast<double>(stats_.window_cycles);
}

void OpenLoopDriver::write_slot(std::uint64_t ordinal) {
  const std::uint64_t slot = ordinal % cfg_.ring_slots;
  const std::uint64_t group = ordinal % cfg_.pool_reqs;
  const std::uint64_t req_bytes =
      std::uint64_t{cfg_.elems_per_req} * 4;
  dma::Descriptor d;
  d.src = dma::Pattern::indirect(data_base_, idx_base_ + group * req_bytes);
  d.dst = dma::Pattern::contiguous(dst_base_ + group * req_bytes);
  d.elem_bytes = 4;
  d.num_elems = cfg_.elems_per_req;
  d.next = ring_base_ +
           ((slot + 1) % cfg_.ring_slots) * dma::kDescriptorBytes;
  dma::write_descriptor(store_, ring_base_ + slot * dma::kDescriptorBytes,
                        d);
}

void OpenLoopDriver::publish_ready() {
  while (!backlog_arrival_.empty() &&
         published_ - completed_ < cfg_.ring_slots) {
    const std::uint64_t ordinal = published_;
    write_slot(ordinal);
    slot_arrival_[ordinal % cfg_.ring_slots] = backlog_arrival_.front();
    backlog_arrival_.pop_front();
    ++published_;
    engine_.publish(1);
  }
}

void OpenLoopDriver::on_complete(std::uint64_t ordinal, bool ok) {
  const sim::Cycle now = kernel_.now();
  const sim::Cycle arrival = slot_arrival_[ordinal % cfg_.ring_slots];
  ++completed_;
  ++stats_.completed;
  if (!ok) ++stats_.failed;
  if (now >= warmup_end_ && now < stop_) ++stats_.window_completions;
  if (ok && arrival >= warmup_end_ && arrival < stop_) {
    latency_.record(now - arrival);
  }
  // A freed slot may unblock the backlog; publish from our own tick so
  // behaviour does not depend on where in the engine's tick this fired.
  wake_self();
}

void OpenLoopDriver::tick() {
  if (!armed_) return;
  const sim::Cycle now = kernel_.now();
  while (generating(now) && arrival_at(next_ordinal_) <= now) {
    const sim::Cycle arrival = arrival_at(next_ordinal_);
    ++next_ordinal_;
    ++stats_.arrivals;
    if (arrival >= warmup_end_ && arrival < stop_) ++stats_.window_arrivals;
    backlog_arrival_.push_back(arrival);
  }
  publish_ready();
  const std::uint64_t in_system =
      backlog_arrival_.size() + (published_ - completed_);
  stats_.queue_peak = std::max(stats_.queue_peak, in_system);
}

bool OpenLoopDriver::quiescent() const {
  if (!armed_) return true;
  if (!backlog_arrival_.empty()) {
    // Waiting on a ring slot: completions wake us explicitly.
    return true;
  }
  const sim::Cycle now = kernel_.now();
  return !(generating(now) && arrival_at(next_ordinal_) <= now);
}

sim::Cycle OpenLoopDriver::wake_hint() const {
  if (!armed_) return sim::kNeverCycle;
  if (!backlog_arrival_.empty()) return sim::kNeverCycle;  // event-woken
  const sim::Cycle now = kernel_.now();
  if (!generating(now)) return sim::kNeverCycle;
  return arrival_at(next_ordinal_);
}

}  // namespace axipack::traffic
