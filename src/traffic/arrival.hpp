// Seeded, deterministic arrival processes for open-loop load generation.
//
// Every process is a pure function of (seed, ordinal): the cycle at which
// request i arrives depends on nothing the simulation does, the same
// counter-hash trick FaultPlan uses for injection decisions. That is what
// keeps gated and naive kernels cycle-identical under load — an arrival
// can never move because a component slept through a cycle.
//
// Rates are expressed as requests per 100,000 cycles (the `-p{RATE}`
// scenario knob), so integer knob values cover the whole useful range
// from a trickle to well past saturation.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/kernel.hpp"

namespace axipack::traffic {

enum class ArrivalKind : std::uint8_t {
  fixed,    ///< metronome: one request every mean gap
  poisson,  ///< exponential inter-arrivals from a counter hash
  bursty,   ///< on/off: bursts of back-to-back requests, then silence
};

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::poisson;
  /// Mean arrival rate in requests per 100,000 cycles. 0 disables the
  /// generator entirely (a zero-rate run must behave like closed loop).
  std::uint32_t rate_per_100k = 0;
  std::uint64_t seed = 42;
  /// bursty only: requests per burst. The long-run mean rate stays
  /// `rate_per_100k`; inside a burst requests arrive `burst_speedup`
  /// times faster than the mean gap.
  std::uint32_t burst_len = 8;
  std::uint32_t burst_speedup = 8;
};

class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalConfig& cfg);

  bool enabled() const { return cfg_.rate_per_100k > 0; }
  const ArrivalConfig& config() const { return cfg_; }

  /// Cycle offset (from the start of generation) at which request
  /// `ordinal` arrives. Strictly a function of (seed, ordinal);
  /// non-decreasing in `ordinal`. Must not be called when disabled.
  sim::Cycle arrival_cycle(std::uint64_t ordinal) const;

 private:
  sim::Cycle poisson_gap(std::uint64_t ordinal) const;

  ArrivalConfig cfg_;
  double mean_gap_ = 0.0;
  /// Memoized Poisson prefix sums. Filled on demand in ordinal order;
  /// contents depend only on (seed, ordinal), never on simulation state,
  /// so lazy filling cannot break determinism.
  mutable std::vector<sim::Cycle> poisson_memo_;
};

}  // namespace axipack::traffic
