// Banked on-chip SRAM: n word ports, m interleaved banks, fixed latency.
// This is the memory endpoint behind the AXI-Pack adapter in the BASE and
// PACK systems (paper: eight 32-bit word ports backed by 17 banks).
#pragma once

#include <memory>
#include <vector>

#include "mem/backing_store.hpp"
#include "mem/bank_xbar.hpp"
#include "mem/word.hpp"
#include "sim/kernel.hpp"

namespace axipack::mem {

struct BankedMemoryConfig {
  unsigned num_ports = 8;
  unsigned num_banks = 17;
  sim::Cycle sram_latency = 1;   ///< cycles from grant to response visible
  std::size_t req_depth = 2;     ///< per-port request FIFO depth
  std::size_t resp_depth = 64;   ///< per-port response FIFO depth
};

class BankedMemory final : public WordMemory {
 public:
  BankedMemory(sim::Kernel& k, BackingStore& store,
               const BankedMemoryConfig& cfg);

  unsigned num_ports() const override {
    return static_cast<unsigned>(ports_.size());
  }
  WordPort& port(unsigned i) override { return *ports_[i]; }

  const BankXbar& xbar() const { return *xbar_; }

 private:
  std::vector<std::unique_ptr<WordPort>> ports_;
  std::unique_ptr<BankXbar> xbar_;
};

}  // namespace axipack::mem
