// n-port x m-bank crossbar with round-robin conflict arbitration.
//
// Each cycle, every bank grants at most one of the ports whose *head*
// request maps to it (round-robin priority). Granted accesses are performed
// on the backing store immediately and their responses appear on the port's
// response FIFO after the configured SRAM latency. Because ports arbitrate
// only with their head request and the latency is uniform, per-port response
// order equals request order — the property the adapter's beat packers rely
// on.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/backing_store.hpp"
#include "mem/bank.hpp"
#include "mem/word.hpp"
#include "sim/kernel.hpp"

namespace axipack::mem {

class BankXbar final : public sim::Component {
 public:
  BankXbar(sim::Kernel& k, BackingStore& store,
           std::vector<WordPort*> ports, unsigned num_banks);

  void tick() override;
  /// Pure request server: a grant requires a visible head request on some
  /// port Fifo (all subscribed); the SRAM latency lives on the response
  /// Fifos, not in the crossbar.
  bool quiescent() const override { return true; }

  const BankMap& map() const { return map_; }
  const std::vector<BankStats>& bank_stats() const { return bank_stats_; }
  std::uint64_t total_grants() const { return total_grants_; }
  std::uint64_t total_conflict_losses() const { return conflict_losses_; }

 private:
  std::uint64_t word_index(std::uint64_t addr) const {
    return (addr - store_.base()) / kWordBytes;
  }

  BackingStore& store_;
  sim::Kernel& kernel_;
  std::vector<WordPort*> ports_;
  BankMap map_;
  std::vector<BankStats> bank_stats_;
  std::vector<unsigned> rr_;  ///< per-bank round-robin pointer
  std::uint64_t total_grants_ = 0;
  std::uint64_t conflict_losses_ = 0;
  // Per-tick scratch, member-allocated once (the tick is hot and used to
  // heap-allocate per-bank contender lists every cycle).
  std::vector<unsigned> head_bank_;  ///< port -> target bank (or kNoBank)
};

}  // namespace axipack::mem
