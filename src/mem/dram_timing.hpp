// DRAM timing parameters and address decomposition.
//
// The "dram" memory backend models one channel of off-chip DRAM behind the
// word-port interface: bank groups x banks, each with a row buffer, served
// under the JEDEC-style core timing constraints below. All latencies are in
// fabric clock cycles; the defaults approximate a DDR4-2400-like part seen
// from a 1 GHz fabric (scaled, not cycle-exact to any datasheet — the model
// is about *relative* row-hit/row-miss/refresh behaviour, which is what the
// packed-bus sensitivity studies sweep).
#pragma once

#include <cstdint>

#include "sim/kernel.hpp"

namespace axipack::mem {

/// How word addresses spread across banks (the classic DRAM controller
/// mapping-policy choice):
///
///  * row_interleaved  — consecutive words fill one bank's row before
///    moving to the next bank ([row | bank | column] from the top).
///    Sequential streams maximize row hits but serialize on one bank.
///  * bank_interleaved — consecutive words rotate across banks
///    ([row | column | bank]). Sequential streams engage every bank in
///    parallel, but power-of-two strides collapse onto one bank — the
///    DRAM analogue of the SRAM stride pathology the paper's 17-bank
///    memory avoids (Fig. 5b), except DRAM bank counts are powers of two.
///  * permuted        — bank_interleaved with XOR bank folding
///    (permutation-based interleaving, the standard controller fix):
///    consecutive words still cover all banks, while power-of-two strides
///    spread across banks instead of landing on one. Row locality is
///    span-based, identical to bank_interleaved.
enum class DramMapping : std::uint8_t {
  row_interleaved,
  bank_interleaved,
  permuted,
};

const char* dram_mapping_name(DramMapping m);

/// Core timing set of the "dram" backend (see MemoryBackendConfig::dram).
struct DramTimingConfig {
  // Bank organization. The grouping only determines the total bank count
  // (num_banks() = bank_groups * banks_per_group) and the address layout;
  // group-level command spacing (tCCD_S vs tCCD_L) is not modeled — tCCD
  // below applies per bank.
  unsigned bank_groups = 4;      ///< bank groups per channel
  unsigned banks_per_group = 4;  ///< banks per group (16 banks total)
  unsigned row_words = 512;      ///< row-buffer size in 32-bit words (2 KiB)

  sim::Cycle tRCD = 10;   ///< activate -> first column command
  sim::Cycle tCAS = 10;   ///< column read/write -> data (CL)
  sim::Cycle tRP = 10;    ///< precharge -> next activate
  sim::Cycle tRAS = 24;   ///< activate -> earliest precharge
  /// Column-to-column spacing within one bank. 1 = word-granularity
  /// streaming from the open row (burst-amortized command spacing, matching
  /// the SRAM banks' one-word-per-cycle rate); raise it to model stricter
  /// command-bus spacing.
  sim::Cycle tCCD = 1;
  sim::Cycle tREFI = 4680;  ///< refresh interval (all-bank); 0 disables
  sim::Cycle tRFC = 210;    ///< refresh duration (banks unavailable)

  /// permuted engages all banks on wide sequential beats *and* survives
  /// power-of-two strides (the sensible controller default for a wide
  /// near-memory bus); bank_interleaved is the plain rotation, and
  /// row_interleaved maximizes per-bank row locality instead.
  DramMapping mapping = DramMapping::permuted;

  unsigned num_banks() const { return bank_groups * banks_per_group; }

  /// Data latency of a column access to the open row.
  sim::Cycle row_hit_latency() const { return tCAS; }
  /// Data latency when a different row is open (precharge + activate).
  sim::Cycle row_miss_latency() const { return tRP + tRCD + tCAS; }
  /// Data latency on a precharged (closed) bank, e.g. after refresh.
  sim::Cycle closed_latency() const { return tRCD + tCAS; }
};

/// Decomposes word indices into (bank, row, column) under a mapping policy.
/// Row identifiers are globally unique per bank (row_of is what the row
/// buffer compares), columns index words within the row buffer.
///
/// Multi-channel systems hand each channel's DRAM the *absolute* word index
/// even though the channel only owns every channels-th interleave granule
/// (the router's XOR-folded selection). Decomposing the sparse index
/// directly would dilute row locality channels-fold, so the map first
/// *compacts* the granule index: the log2(channels) channel-select bits are
/// squeezed out, making this channel's address space dense again. The
/// XOR fold picks exactly one granule per channel out of every aligned
/// block of `channels` granules, so dropping the low granule-index bits is
/// injective per channel and consecutive owned granules stay consecutive —
/// the channel interleave composes with (instead of fighting) all three
/// bank mappings. channels = 1 is the identity.
class DramAddressMap {
 public:
  DramAddressMap(unsigned num_banks, unsigned row_words, DramMapping mapping,
                 unsigned channels = 1, std::uint64_t granule_words = 1)
      : banks_(num_banks), row_words_(row_words), mapping_(mapping) {
    while ((1u << shift_) < banks_) ++shift_;  // ceil(log2(banks))
    while ((1u << ch_shift_) < channels) ++ch_shift_;
    while ((std::uint64_t{1} << gran_shift_) < granule_words) ++gran_shift_;
  }

  unsigned num_banks() const { return banks_; }
  unsigned row_words() const { return row_words_; }
  DramMapping mapping() const { return mapping_; }

  /// Squeezes the channel-select bits out of a (channel-sparse) absolute
  /// word index; identity for single-channel maps. See the class comment.
  std::uint64_t compact(std::uint64_t word_index) const {
    if (ch_shift_ == 0) return word_index;
    return ((word_index >> (gran_shift_ + ch_shift_)) << gran_shift_) |
           (word_index & ((std::uint64_t{1} << gran_shift_) - 1));
  }

  unsigned bank_of(std::uint64_t sparse_index) const {
    const std::uint64_t word_index = compact(sparse_index);
    switch (mapping_) {
      case DramMapping::row_interleaved:
        return static_cast<unsigned>((word_index / row_words_) % banks_);
      case DramMapping::bank_interleaved:
        return static_cast<unsigned>(word_index % banks_);
      case DramMapping::permuted: {
        // XOR bank folding: fold shifted copies of the word index into the
        // bank selector so *every* power-of-two stride lands in some fold
        // term and spreads across banks (plain bank_interleaved collapses
        // them all onto one bank). Within an aligned banks_-word block the
        // higher terms are constant, so wide sequential beats still cover
        // every bank exactly once (for power-of-two bank counts).
        std::uint64_t h = word_index;
        h ^= word_index >> shift_;
        h ^= word_index >> (2 * shift_);
        h ^= word_index >> (3 * shift_);
        h ^= word_index >> (4 * shift_);
        h ^= word_index >> (5 * shift_);
        return static_cast<unsigned>(h % banks_);
      }
    }
    return 0;  // unreachable
  }
  std::uint64_t row_of(std::uint64_t sparse_index) const {
    const std::uint64_t word_index = compact(sparse_index);
    // For both interleaved policies (plain and permuted) the row is the
    // span of banks_ * row_words_ consecutive words the word falls in.
    return mapping_ == DramMapping::row_interleaved
               ? word_index / (static_cast<std::uint64_t>(row_words_) * banks_)
               : (word_index / banks_) / row_words_;
  }
  unsigned column_of(std::uint64_t sparse_index) const {
    const std::uint64_t word_index = compact(sparse_index);
    return mapping_ == DramMapping::row_interleaved
               ? static_cast<unsigned>(word_index % row_words_)
               : static_cast<unsigned>((word_index / banks_) % row_words_);
  }

 private:
  unsigned banks_;
  unsigned row_words_;
  DramMapping mapping_;
  unsigned shift_ = 1;      ///< fold distance of the permuted policy
  unsigned ch_shift_ = 0;   ///< log2(channels); 0 = single channel
  unsigned gran_shift_ = 0; ///< log2(interleave granule) in words
};

}  // namespace axipack::mem
