// Per-bank bookkeeping: interleaved address mapping and access statistics.
//
// Banks are W-bit single-port SRAMs; the crossbar grants at most one access
// per bank per cycle, so the bank model itself is pure bookkeeping (the
// fixed read latency is applied on the port response FIFO).
#pragma once

#include <cstdint>

#include "util/bits.hpp"

namespace axipack::mem {

/// Maps word indices onto `m` interleaved banks. Power-of-two counts use
/// mask/shift; other (e.g. prime) counts need modulo/divide units — this
/// distinction is what Fig. 5c's crossbar-area comparison is about, and the
/// mapping itself is what makes prime counts conflict-robust in Fig. 5b.
class BankMap {
 public:
  explicit BankMap(unsigned num_banks)
      : m_(num_banks), pow2_(util::is_pow2(num_banks)) {}

  unsigned num_banks() const { return m_; }
  bool is_pow2() const { return pow2_; }

  unsigned bank_of(std::uint64_t word_index) const {
    return pow2_ ? static_cast<unsigned>(word_index & (m_ - 1))
                 : static_cast<unsigned>(word_index % m_);
  }
  std::uint64_t row_of(std::uint64_t word_index) const {
    return pow2_ ? (word_index >> util::log2_exact(m_)) : (word_index / m_);
  }

 private:
  unsigned m_;
  bool pow2_;
};

/// Statistics for one bank.
struct BankStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t conflict_cycles = 0;  ///< cycles with >1 port contending
};

}  // namespace axipack::mem
