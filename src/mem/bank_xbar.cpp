#include "mem/bank_xbar.hpp"

#include <cassert>

namespace axipack::mem {

namespace {
constexpr unsigned kNoBank = ~0u;
}  // namespace

BankXbar::BankXbar(sim::Kernel& k, BackingStore& store,
                   std::vector<WordPort*> ports, unsigned num_banks)
    : store_(store),
      kernel_(k),
      ports_(std::move(ports)),
      map_(num_banks),
      bank_stats_(num_banks),
      rr_(num_banks, 0),
      head_bank_(ports_.size(), kNoBank) {
  assert(num_banks > 0 && !ports_.empty());
  k.add(*this);
  for (WordPort* p : ports_) k.subscribe(*this, p->req);
}

void BankXbar::tick() {
  const unsigned n = static_cast<unsigned>(ports_.size());
  const sim::Cycle now = kernel_.now();  // hoisted out of the fifo checks
  // Gather the target bank of each port's head request.
  unsigned active = 0;
  for (unsigned p = 0; p < n; ++p) {
    WordPort& port = *ports_[p];
    if (port.req.has_visible(now) && port.resp.can_push()) {
      head_bank_[p] = map_.bank_of(word_index(port.req.front().addr));
      ++active;
    } else {
      head_bank_[p] = kNoBank;  // no request, or response-path backpressure
    }
  }
  if (active == 0) return;
  // Each bank grants one contender, round-robin: the first contender (in
  // port order) at or after rr_[b], else the first contender overall.
  for (unsigned p = 0; p < n; ++p) {
    const unsigned b = head_bank_[p];
    if (b == kNoBank) continue;
    unsigned count = 0;
    unsigned first = kNoBank;
    unsigned first_ge = kNoBank;
    for (unsigned q = p; q < n; ++q) {
      if (head_bank_[q] != b) continue;
      ++count;
      if (first == kNoBank) first = q;
      if (first_ge == kNoBank && q >= rr_[b]) first_ge = q;
      head_bank_[q] = kNoBank;  // consumed: bank b arbitrates once per cycle
    }
    if (count > 1) {
      ++bank_stats_[b].conflict_cycles;
      conflict_losses_ += count - 1;
    }
    const unsigned chosen = first_ge != kNoBank ? first_ge : first;
    rr_[b] = (chosen + 1) % n;
    WordPort& port = *ports_[chosen];
    WordReq req = port.req.pop();
    WordResp resp;
    resp.tag = req.tag;
    resp.was_write = req.write;
    if (req.write) {
      store_.write_word(req.addr, req.wdata, req.wstrb);
      ++bank_stats_[b].writes;
    } else {
      resp.rdata = store_.read_u32(req.addr);
      ++bank_stats_[b].reads;
    }
    port.resp.push(resp);
    ++total_grants_;
  }
}

}  // namespace axipack::mem
