#include "mem/bank_xbar.hpp"

#include <cassert>

namespace axipack::mem {

BankXbar::BankXbar(sim::Kernel& k, BackingStore& store,
                   std::vector<WordPort*> ports, unsigned num_banks)
    : store_(store),
      ports_(std::move(ports)),
      map_(num_banks),
      bank_stats_(num_banks),
      rr_(num_banks, 0) {
  assert(num_banks > 0 && !ports_.empty());
  k.add(*this);
}

void BankXbar::tick() {
  // Gather the target bank of each port's head request.
  const unsigned n = static_cast<unsigned>(ports_.size());
  const unsigned m = map_.num_banks();
  // contenders[b] = ports requesting bank b this cycle.
  // (n and m are tiny — 8 and <=32 — so stack vectors are fine.)
  std::vector<std::vector<unsigned>> contenders(m);
  for (unsigned p = 0; p < n; ++p) {
    WordPort& port = *ports_[p];
    if (!port.req.can_pop()) continue;
    if (!port.resp.can_push()) continue;  // response path backpressure
    contenders[map_.bank_of(word_index(port.req.front().addr))].push_back(p);
  }
  for (unsigned b = 0; b < m; ++b) {
    auto& list = contenders[b];
    if (list.empty()) continue;
    if (list.size() > 1) {
      ++bank_stats_[b].conflict_cycles;
      conflict_losses_ += list.size() - 1;
    }
    // Round-robin: pick the first contender at or after rr_[b].
    unsigned chosen = list[0];
    for (unsigned p : list) {
      if (p >= rr_[b]) {
        chosen = p;
        break;
      }
    }
    rr_[b] = (chosen + 1) % n;
    WordPort& port = *ports_[chosen];
    WordReq req = port.req.pop();
    WordResp resp;
    resp.tag = req.tag;
    resp.was_write = req.write;
    if (req.write) {
      store_.write_word(req.addr, req.wdata, req.wstrb);
      ++bank_stats_[b].writes;
    } else {
      resp.rdata = store_.read_u32(req.addr);
      ++bank_stats_[b].reads;
    }
    port.resp.push(resp);
    ++total_grants_;
  }
}

}  // namespace axipack::mem
