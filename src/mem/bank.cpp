#include "mem/bank.hpp"

namespace axipack::mem {
// BankMap is header-only; this TU compile-checks it.
static_assert(sizeof(BankMap) > 0);
}  // namespace axipack::mem
