// Functional byte-addressable memory image backing the timing models.
//
// All simulated data lives here: workload generators write inputs through
// the host interface, the banked memory performs its word accesses against
// it, and golden checks read results back. A simple bump allocator carves
// out aligned regions for workload buffers.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

namespace axipack::mem {

class BackingStore {
 public:
  /// Memory window [base, base+size). `base` is typically 0x8000'0000.
  /// The image is allocated zeroed but lazily (calloc), so building a
  /// system with a large window does not touch every page up front — this
  /// keeps System construction cheap for parallel sweeps.
  BackingStore(std::uint64_t base, std::uint64_t size);

  std::uint64_t base() const { return base_; }
  std::uint64_t size() const { return size_; }
  bool contains(std::uint64_t addr, std::uint64_t n = 1) const;

  // Host (zero-time) access, used by generators, golden checks and the
  // scalar-core functional model.
  void write(std::uint64_t addr, const void* src, std::uint64_t n);
  void read(std::uint64_t addr, void* dst, std::uint64_t n) const;

  std::uint32_t read_u32(std::uint64_t addr) const;
  void write_u32(std::uint64_t addr, std::uint32_t value);
  float read_f32(std::uint64_t addr) const;
  void write_f32(std::uint64_t addr, float value);

  /// Word access with byte strobes (timing models use this).
  void write_word(std::uint64_t addr, std::uint32_t wdata, std::uint8_t strb);

  /// Bump-allocates `n` bytes aligned to `align`; never freed.
  std::uint64_t alloc(std::uint64_t n, std::uint64_t align = 64);

  /// Resets the allocator (contents are kept).
  void reset_alloc() { next_ = base_; }

 private:
  struct FreeDeleter {
    void operator()(std::uint8_t* p) const { std::free(p); }
  };

  std::uint8_t* data() { return bytes_.get(); }
  const std::uint8_t* data() const { return bytes_.get(); }

  std::uint64_t base_;
  std::uint64_t next_;
  std::uint64_t size_;
  std::unique_ptr<std::uint8_t[], FreeDeleter> bytes_;
};

}  // namespace axipack::mem
