#include "mem/dram_memory.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace axipack::mem {

namespace {
constexpr unsigned kNone = ~0u;

/// Index of the lowest set bit; `m` must be nonzero. Drives the ascending-
/// bank and ascending-port iteration over the candidate bitmasks.
inline unsigned ctz64(std::uint64_t m) {
  return static_cast<unsigned>(__builtin_ctzll(m));
}

inline unsigned popcount64(std::uint64_t m) {
  return static_cast<unsigned>(__builtin_popcountll(m));
}

/// Round-robin tie-break over a port bitmask: lowest set bit at or after
/// `start`, else the lowest overall. `m` must be nonzero, `start` < 64.
inline unsigned pick_rr(std::uint64_t m, unsigned start) {
  const std::uint64_t ge = m & (~std::uint64_t{0} << start);
  return ctz64(ge != 0 ? ge : m);
}
}  // namespace

const char* dram_mapping_name(DramMapping m) {
  switch (m) {
    case DramMapping::row_interleaved:
      return "row-interleaved";
    case DramMapping::bank_interleaved:
      return "bank-interleaved";
    case DramMapping::permuted:
      return "permuted";
  }
  return "?";
}

DramMemory::DramMemory(sim::Kernel& k, BackingStore& store,
                       const DramMemoryConfig& cfg)
    : store_(store),
      kernel_(k),
      cfg_(cfg),
      map_(cfg.timing.num_banks(), cfg.timing.row_words, cfg.timing.mapping,
           cfg.channels, cfg.channel_granule_words),
      banks_(cfg.timing.num_banks()),
      rr_(cfg.timing.num_banks(), 0),
      win_head_(cfg.num_ports, 0),
      win_size_(cfg.num_ports, 0),
      win_base_(cfg.num_ports, 0),
      cand_entry_(cfg.num_ports * cfg.timing.num_banks(), 0),
      cand_hit_(cfg.num_ports * cfg.timing.num_banks(), 0),
      bank_ports_(cfg.timing.num_banks(), 0),
      port_ungranted_writes_(cfg.num_ports, 0),
      port_bank_mask_(cfg.num_ports, 0),
      port_interest_mask_(cfg.num_ports, 0),
      port_samerow_mask_(cfg.num_ports, 0),
      port_recompute_at_(cfg.num_ports, sim::kNeverCycle),
      port_cold_banks_(cfg.num_ports, 0) {
  assert(cfg.num_ports > 0);
  assert(cfg.timing.num_banks() > 0 && cfg.timing.row_words > 0);
  // Every port starts dirty: the first tick builds the candidate caches.
  dirty_ports_ = cfg.num_ports >= 64 ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << cfg.num_ports) - 1;
  // The event-driven scheduler tracks pending banks and contending ports
  // in 64-bit masks.
  if (cfg.timing.num_banks() > 64) {
    std::fprintf(stderr,
                 "DramMemory: %u banks exceed the scheduler's 64-bank "
                 "bitmask limit\n",
                 cfg.timing.num_banks());
    std::abort();
  }
  if (cfg.num_ports > 64) {
    std::fprintf(stderr,
                 "DramMemory: %u ports exceed the scheduler's 64-port "
                 "bitmask limit\n",
                 cfg.num_ports);
    std::abort();
  }
  // The response channel needs at least one register stage.
  assert(cfg.timing.tCAS >= 1 && cfg.timing.tCCD >= 1);
  // Config validation happens unconditionally (not just via assert): a
  // zero-capacity FIFO or a zero-wide scheduler window is a configuration
  // error that must fail loudly instead of being silently clamped or
  // corrupting the Fifo invariants in assert-free builds.
  if (cfg.req_depth == 0 || cfg.resp_depth == 0) {
    std::fprintf(stderr,
                 "DramMemory: req_depth=%zu / resp_depth=%zu must be >= 1 "
                 "(per-port FIFOs cannot have zero capacity)\n",
                 cfg.req_depth, cfg.resp_depth);
    std::abort();
  }
  if (cfg.sched_window == 0) {
    std::fprintf(stderr,
                 "DramMemory: sched_window must be >= 1 (use 1 for head-only "
                 "scheduling, not 0)\n");
    std::abort();
  }
  // Refresh liveness (tREFI == 0 disables refresh): between the end of one
  // window and the start of the next there must be room for a full
  // precharge-activate-column sequence, or every row cycle is deferred
  // forever and the simulation hangs. A silent hang in assert-free builds
  // is worse than an abort, so validate unconditionally.
  const DramTimingConfig& t = cfg.timing;
  if (t.tREFI != 0 && t.tRFC + t.tRP + t.tRCD >= t.tREFI) {
    std::fprintf(stderr,
                 "DramMemory: refresh interval tREFI=%llu leaves no room for "
                 "a row cycle (tRFC=%llu + tRP=%llu + tRCD=%llu must be < "
                 "tREFI)\n",
                 static_cast<unsigned long long>(t.tREFI),
                 static_cast<unsigned long long>(t.tRFC),
                 static_cast<unsigned long long>(t.tRP),
                 static_cast<unsigned long long>(t.tRCD));
    std::abort();
  }
  // Effective per-port window: the scan depth the config asks for, bounded
  // by what the request FIFO can ever hold. Ring capacity is the next
  // power of two so entry addressing is a mask, not a division.
  const std::size_t eff_window = std::min(cfg.sched_window, cfg.req_depth);
  win_cap_ = std::bit_ceil(static_cast<std::uint32_t>(eff_window));
  win_hot_.resize(static_cast<std::size_t>(cfg.num_ports) * win_cap_);
  win_cold_.resize(static_cast<std::size_t>(cfg.num_ports) * win_cap_);
  chain_next_.resize(static_cast<std::size_t>(cfg.num_ports) * win_cap_, 0);
  chain_head_.resize(
      static_cast<std::size_t>(cfg.num_ports) * cfg.timing.num_banks(), 0);
  chain_tail_.resize(
      static_cast<std::size_t>(cfg.num_ports) * cfg.timing.num_banks(), 0);
  ports_.reserve(cfg.num_ports);
  for (unsigned i = 0; i < cfg.num_ports; ++i) {
    // Response latency is per item (Fifo::push_in), so the channel's own
    // latency parameter is the 1-cycle floor.
    ports_.push_back(std::make_unique<WordPort>(k, cfg.req_depth,
                                                cfg.resp_depth, 1));
  }
  k.add(*this);
  for (auto& port : ports_) k.subscribe(*this, port->req);
}

void DramMemory::refresh_update(BankState& b, sim::Cycle now) {
  const sim::Cycle trefi = cfg_.timing.tREFI;
  if (trefi == 0) return;  // refresh disabled
  const std::uint64_t epoch = now / trefi;
  if (epoch == b.refresh_epoch) return;
  // One or more all-bank refreshes started since this bank was last
  // considered: the row buffer is precharged, and no activate may issue
  // before the end of the latest window.
  b.refresh_epoch = epoch;
  b.row_open = false;
  const sim::Cycle window_end = epoch * trefi + cfg_.timing.tRFC;
  b.next_act = std::max(b.next_act, window_end);
  b.refresh_block_until = window_end;
}

bool DramMemory::release_responses(sim::Cycle now) {
  bool released = false;
  blocked_release_ = false;
  const unsigned num_banks = static_cast<unsigned>(banks_.size());
  // Only ports whose head entry is granted can release anything; the mask
  // is maintained here and by grant() (a head can only become granted via
  // a grant at index 0 or a pop exposing a deep grant — both covered).
  for (std::uint64_t m = release_ports_; m != 0; m &= m - 1) {
    const unsigned p = ctz64(m);
    WordPort& port = *ports_[p];
    bool popped = false;
    while (win_size_[p] != 0 && win_hot(p, 0).granted &&
           port.resp.can_push()) {
      const ColdEntry& e = win_cold(p, 0);
      // Unlink the popped entry from its bank chain unless the chain head
      // already slid past it (rescan_bank skips granted prefixes
      // permanently); the link is read before the slot can be reused by a
      // later decode.
      {
        const std::size_t hs =
            static_cast<std::size_t>(p) * win_cap_ + win_head_[p];
        const std::size_t cs = static_cast<std::size_t>(p) * num_banks +
                               win_hot_[hs].bank;
        if (chain_head_[cs] == win_base_[p] + 1) {
          chain_head_[cs] = chain_next_[hs];
          if (chain_head_[cs] == 0) chain_tail_[cs] = 0;
        }
      }
      // Remaining data latency; already-ready responses held back by
      // in-order release still need the 1-cycle register floor.
      const sim::Cycle delay = e.ready_at > now ? e.ready_at - now : 1;
      port.resp.push_in(e.resp, delay);
      port.req.pop();
      win_head_[p] = (win_head_[p] + 1) & (win_cap_ - 1);
      --win_size_[p];
      ++win_base_[p];
      released = true;
      popped = true;
    }
    if (win_size_[p] != 0 && win_hot(p, 0).granted) {
      // A granted head parked behind a full response FIFO must retry the
      // release every cycle — the consumer can free space at any time and
      // the component cannot predict when, so it may not sleep.
      blocked_release_ = true;
    } else {
      release_ports_ &= ~(std::uint64_t{1} << p);
    }
    if (!popped) continue;
    // Freed window slots may uncover the next in-flight request (the pop
    // shifted FIFO indices with the window, so the first undecoded item
    // is still at index win_size_).
    if (win_size_[p] < cfg_.sched_window && win_size_[p] < port.req.size()) {
      const sim::Cycle v = port.req.item_visible_at(win_size_[p]);
      if (v < next_arrival_) next_arrival_ = v;
    }
    if (!port_dirty(p) && win_size_[p] != 0) {
      // The window slid. Only *granted* entries were removed, and granted
      // entries contribute nothing to the cached candidate view (no
      // hazard words, no interest/same-row anchors), so the surviving
      // entries' eligibility is unchanged — except that the new head, if
      // ungranted, now falls under the head-is-always-eligible rule.
      // Candidates are keyed by absolute id (win_base_), so no cached
      // index shifted; fold the head's forced eligibility into its bank's
      // slot instead of rescanning the whole window: the head displaces
      // any non-hit candidate (it is earlier), a hit head displaces any
      // candidate, and a deeper hit candidate survives a non-hit head
      // (prefer-hit). Same-row and interest anchors only ever gain here.
      const HotEntry& h = win_hot(p, 0);
      if (!h.granted) {
        const unsigned b = h.bank;
        const std::uint64_t bbit = std::uint64_t{1} << b;
        const std::size_t slot = static_cast<std::size_t>(p) * num_banks + b;
        const bool hits = banks_[b].row_open && banks_[b].open_row == h.row;
        const std::uint64_t head_id1 = win_base_[p] + 1;
        if (cand_entry_[slot] == 0) {
          cand_entry_[slot] = head_id1;
          cand_hit_[slot] = hits;
          port_bank_mask_[p] |= bbit;
          bank_ports_add(b, p);
        } else if (cand_entry_[slot] != head_id1 &&
                   (hits || !cand_hit_[slot])) {
          cand_entry_[slot] = head_id1;
          cand_hit_[slot] = hits;
        }
        if (hits) port_samerow_mask_[p] |= bbit;
      }
    }
  }
  return released;
}

bool DramMemory::absorb_arrivals(sim::Cycle now) {
  bool grew = false;
  const unsigned n = static_cast<unsigned>(ports_.size());
  const unsigned num_banks = static_cast<unsigned>(banks_.size());
  const sim::Cycle keepalive = cfg_.timing.tRP + cfg_.timing.tRCD;
  next_arrival_ = sim::kNeverCycle;
  for (unsigned p = 0; p < n; ++p) {
    WordPort& port = *ports_[p];
    // Decode once on entry: requests are immutable once enqueued, so every
    // later rescan touches only cached fields. Visibility is FIFO (the
    // scan stops at the first in-flight item), so the window always holds
    // exactly the first min(sched_window, visible_count) requests.
    while (win_size_[p] < cfg_.sched_window &&
           win_size_[p] < port.req.size() &&
           port.req.item_visible_at(win_size_[p]) <= now) {
      const WordReq& rq = port.req.peek(win_size_[p]);
      const std::uint32_t i = win_size_[p];
      HotEntry& e = win_hot(p, i);
      e.word = word_index(rq.addr);
      e.row = map_.row_of(e.word);
      e.defer_cycles = 0;
      e.bank = static_cast<std::uint16_t>(map_.bank_of(e.word));
      e.write = rq.write ? 1 : 0;
      e.granted = 0;
      // Thread the entry onto its bank chain (structural — happens even
      // when the port is dirty; rescans never rebuild chains).
      {
        const std::uint64_t id1 = win_base_[p] + i + 1;
        const std::size_t ns = static_cast<std::size_t>(p) * win_cap_ +
                               ((win_head_[p] + i) & (win_cap_ - 1));
        const std::size_t cs =
            static_cast<std::size_t>(p) * num_banks + e.bank;
        chain_next_[ns] = 0;
        if (chain_tail_[cs] != 0) {
          chain_next_[slot_of(p, chain_tail_[cs] - 1)] = id1;
        } else {
          chain_head_[cs] = id1;
        }
        chain_tail_[cs] = id1;
      }
      ++win_size_[p];
      if (e.write) ++port_ungranted_writes_[p];
      grew = true;
      if (port_dirty(p)) continue;  // a rescan is already pending
      // Fold the append into the candidate caches without a rescan where
      // its effect is fully determined: an appended entry can only claim
      // an *empty* bank slot or upgrade a non-hit candidate to a hit
      // (prefer-hit); it can never displace an earlier hit. Same-row and
      // interest anchors only gain. (A refresh boundary crossed this tick
      // re-dirties every port with entries before arbitration, so the
      // pre-sweep row state read here cannot leak into a decision.)
      const unsigned b = e.bank;
      const std::uint64_t bbit = std::uint64_t{1} << b;
      const std::size_t slot = static_cast<std::size_t>(p) * num_banks + b;
      const bool hits = banks_[b].row_open && banks_[b].open_row == e.row;
      if (i == 0) {
        // New head of an empty window: always eligible, claims its slot
        // (all of this port's caches are empty at this point).
        cand_entry_[slot] = win_base_[p] + 1;
        cand_hit_[slot] = hits;
        port_bank_mask_[p] = bbit;
        bank_ports_add(b, p);
        port_interest_mask_[p] = bbit;
        port_samerow_mask_[p] = hits ? bbit : 0;
      } else if (!e.write && port_ungranted_writes_[p] == 0) {
        // Appended read into an all-read window: hazards are vacuous, so
        // its eligibility is the bank predicate alone — a hit, a closed
        // bank, or a bank gone cold. An eligible read claims an empty
        // slot; behind an existing candidate only a hit upgrades
        // (prefer-hit). A warm-blocked read facing an empty slot becomes
        // the candidate when the bank cools: fold that horizon into the
        // rescan clock instead of dirtying the port.
        const BankState& bank = banks_[b];
        if (cand_entry_[slot] == 0) {
          const bool warm = bank.granted_ever &&
                            now - bank.last_grant_at <= keepalive;
          if (hits || !bank.row_open || !warm) {
            cand_entry_[slot] = win_base_[p] + i + 1;
            cand_hit_[slot] = hits;
            port_bank_mask_[p] |= bbit;
            bank_ports_add(b, p);
          } else {
            fold_recompute_at(p, b, bank.last_grant_at + keepalive + 1);
          }
        } else if (hits && !cand_hit_[slot]) {
          cand_entry_[slot] = win_base_[p] + i + 1;
          cand_hit_[slot] = 1;
        }
        port_interest_mask_[p] |= bbit;
        if (hits) port_samerow_mask_[p] |= bbit;
      } else if (cand_entry_[slot] != 0 && (cand_hit_[slot] || !hits)) {
        // Deep append that cannot become the candidate: anchors only.
        port_interest_mask_[p] |= bbit;
        if (hits) port_samerow_mask_[p] |= bbit;
      } else {
        // Could claim an empty slot or upgrade to a hit — eligibility
        // (bank state, hazards, window position) needs a real scan, but an
        // append perturbs only its own bank's view: rebuild that alone.
        rescan_bank(p, b, now);
      }
    }
    // The first still-in-flight request that would grow this window (the
    // decode loop above stopped right at it) bounds the horizon.
    if (win_size_[p] < cfg_.sched_window && win_size_[p] < port.req.size()) {
      const sim::Cycle v = port.req.item_visible_at(win_size_[p]);
      if (v < next_arrival_) next_arrival_ = v;
    }
  }
  return grew;
}

void DramMemory::rescan_port(unsigned p, sim::Cycle now) {
  const unsigned num_banks = static_cast<unsigned>(banks_.size());
  const sim::Cycle keepalive = cfg_.timing.tRP + cfg_.timing.tRCD;
  // Clear only the slots this port previously offered.
  for (std::uint64_t m = port_bank_mask_[p]; m != 0; m &= m - 1) {
    cand_entry_[static_cast<std::size_t>(p) * num_banks + ctz64(m)] = 0;
  }
  std::uint64_t bank_mask = 0, interest = 0, samerow = 0, cold_banks = 0;
  sim::Cycle recompute_at = sim::kNeverCycle;
  // Words of the ungranted entries scanned so far, for the word-level
  // program-order hazards: a read may not pass a pending same-word write,
  // a write may not pass any pending same-word access. Hazard sources are
  // pending writes, so an all-read window skips the bookkeeping entirely.
  const bool has_writes = port_ungranted_writes_[p] != 0;
  std::vector<std::uint64_t>& words = words_scratch_;
  std::vector<std::uint64_t>& write_words = write_words_scratch_;
  words.clear();
  write_words.clear();
  const HotEntry* const ring = &win_hot_[static_cast<std::size_t>(p) * win_cap_];
  const std::uint32_t capm = win_cap_ - 1;
  const std::uint32_t head = win_head_[p];
  const std::uint64_t base = win_base_[p];
  const std::uint32_t limit = win_size_[p];
  for (std::uint32_t i = 0; i < limit; ++i) {
    const HotEntry& e = ring[(head + i) & capm];
    if (e.granted) continue;  // served, awaiting in-order release
    const unsigned b = e.bank;
    const std::uint64_t bbit = std::uint64_t{1} << b;
    interest |= bbit;
    const bool hits_open_row =
        banks_[b].row_open && banks_[b].open_row == e.row;
    // Ungranted same-row entries — eligible or not, backpressured or not —
    // anchor the batching veto.
    if (hits_open_row) samerow |= bbit;
    bool eligible;
    if (i == 0) {
      eligible = true;
    } else if (!e.write) {
      // Deep reads only where they cannot disturb a streamed row: a hit,
      // a closed bank, or a bank gone cold.
      const bool warm = banks_[b].granted_ever &&
                        now - banks_[b].last_grant_at <= keepalive;
      const bool bank_undisturbed =
          hits_open_row || !banks_[b].row_open || !warm;
      if (!bank_undisturbed) {
        // Time alone flips this predicate: rescan when the bank goes cold.
        const sim::Cycle cold_at = banks_[b].last_grant_at + keepalive + 1;
        if (cold_at < recompute_at) recompute_at = cold_at;
        cold_banks |= bbit;
      }
      eligible = bank_undisturbed;
      if (eligible && !write_words.empty()) {
        for (const std::uint64_t w : write_words) {
          if (w == e.word) {
            eligible = false;
            break;
          }
        }
      }
    } else {
      // Deep writes are held to open-row hits (opening a row for a write
      // the stream has moved past is never worth it).
      eligible = hits_open_row;
      if (eligible) {
        for (const std::uint64_t w : words) {
          if (w == e.word) {
            eligible = false;
            break;
          }
        }
      }
    }
    if (has_writes) {
      words.push_back(e.word);
      if (e.write) write_words.push_back(e.word);
    }
    if (!eligible) continue;
    const std::size_t slot = static_cast<std::size_t>(p) * num_banks + b;
    if (cand_entry_[slot] == 0) {
      cand_entry_[slot] = base + i + 1;
      cand_hit_[slot] = hits_open_row;
      bank_mask |= bbit;
    } else if (hits_open_row && !cand_hit_[slot]) {
      cand_entry_[slot] = base + i + 1;
      cand_hit_[slot] = 1;
    }
  }
  // Mirror the candidate banks into the per-bank contender masks (only
  // the banks whose membership changed are touched).
  for (std::uint64_t diff = port_bank_mask_[p] ^ bank_mask; diff != 0;
       diff &= diff - 1) {
    const unsigned db = ctz64(diff);
    if ((bank_mask >> db) & 1) {
      bank_ports_add(db, p);
    } else {
      bank_ports_remove(db, p);
    }
  }
  port_bank_mask_[p] = bank_mask;
  port_interest_mask_[p] = interest;
  port_samerow_mask_[p] = samerow;
  port_cold_banks_[p] = cold_banks;
  port_recompute_at_[p] = recompute_at;
  if (recompute_at < min_recompute_at_) min_recompute_at_ = recompute_at;
}

void DramMemory::grant(unsigned port_idx, std::size_t entry,
                       unsigned bank_idx, DramGrant::Kind kind,
                       sim::Cycle now) {
  const DramTimingConfig& t = cfg_.timing;
  BankState& bank = banks_[bank_idx];
  const WordReq& req = ports_[port_idx]->req.peek(entry);
  const std::uint64_t row = win_hot(port_idx, entry).row;

  sim::Cycle col_time = now;   // cycle the column command issues
  sim::Cycle data_delay = 0;   // grant -> data ready
  switch (kind) {
    case DramGrant::Kind::hit:
      data_delay = t.row_hit_latency();
      ++stats_.row_hits;
      break;
    case DramGrant::Kind::closed:
      // Activate now, column command after tRCD.
      col_time = now + t.tRCD;
      data_delay = t.closed_latency();
      bank.act_at = now;
      ++stats_.row_misses;
      break;
    case DramGrant::Kind::miss:
      // Precharge now, activate after tRP, column after tRCD more.
      col_time = now + t.tRP + t.tRCD;
      data_delay = t.row_miss_latency();
      bank.act_at = now + t.tRP;
      ++stats_.row_misses;
      break;
  }
  bank.row_open = true;
  bank.open_row = row;
  bank.next_col = col_time + t.tCCD;
  bank.last_grant_at = now;
  bank.granted_ever = true;

  win_hot(port_idx, entry).granted = 1;
  if (entry == 0) release_ports_ |= std::uint64_t{1} << port_idx;
  if (req.write) --port_ungranted_writes_[port_idx];
  ColdEntry& ce = win_cold(port_idx, entry);
  ce.ready_at = now + data_delay;
  ce.resp = WordResp{};  // ring slots are reused: clear stale error/rdata
  ce.resp.tag = req.tag;
  ce.resp.was_write = req.write;
  if (req.write) {
    // A faulted write is dropped before reaching the array (the retry
    // rewrites it); memory is never silently corrupted.
    if (faults_ != nullptr && faults_->next_dram_write()) {
      ce.resp.error = true;
    } else {
      store_.write_word(req.addr, req.wdata, req.wstrb);
    }
  } else {
    ce.resp.rdata = store_.read_u32(req.addr);
    if (faults_ != nullptr) {
      bool correctable = false;
      unsigned bit = 0;
      if (faults_->next_dram_read(&correctable, &bit) && !correctable) {
        // Uncorrectable: poison the returned data and flag the response.
        // Correctable faults are fixed by ECC in place — counted by the
        // plan, invisible on the port.
        ce.resp.rdata ^= 1u << bit;
        ce.resp.error = true;
      }
    }
  }
  ++stats_.grants;
  if (trace_ != nullptr) {
    trace_->push_back({now, now + data_delay, port_idx, bank_idx, row,
                       req.write, kind});
  }
  // Repair the candidate caches the grant made stale. Only bank
  // `bank_idx`'s state changed, and word-level hazards are bank-local
  // (same word implies same bank), so for every affected port the repair
  // is a single-bank rebuild (see rescan_bank) instead of a full rescan —
  // including windows with pending writes. Note this holds even for the
  // hazards the granted entry itself releases (a write leaving the
  // pending set, or a read leaving a write's path): the entries they may
  // have blocked share its word, hence its bank — covered by the rebuild.
  // Already-dirty ports are left alone; their pending full rescan rebuilds
  // every bank, this one included.
  //
  // Affected ports: the granting port always (its entry left the
  // candidate set). After a miss or closed grant the open row changed, so
  // every port with ungranted work on the bank is affected. A row hit
  // leaves the open row unchanged and only refreshes the keep-alive
  // anchor: another port's candidate survives if it is itself a hit (hit
  // eligibility ignores warmth) or the port's head entry (always
  // eligible); only a candidate that was eligible because the bank had
  // gone *cold* — impossible for a hit or a head — is invalidated by the
  // renewed warmth. Ports with ungranted work but no candidate on the
  // bank lose nothing then: warmth only extends, so no blocked entry
  // becomes eligible (their warm->cold horizon is merely stale-early,
  // which costs a spurious rescan, not correctness).
  if (!port_dirty(port_idx)) rescan_bank(port_idx, bank_idx, now);
  const std::uint64_t bbit = std::uint64_t{1} << bank_idx;
  const unsigned num_banks = static_cast<unsigned>(banks_.size());
  const unsigned n = static_cast<unsigned>(ports_.size());
  if (kind != DramGrant::Kind::hit) {
    for (unsigned p = 0; p < n; ++p) {
      if (p == port_idx || (port_interest_mask_[p] & bbit) == 0 ||
          port_dirty(p)) {
        continue;
      }
      rescan_bank(p, bank_idx, now);
    }
  } else {
    for (unsigned p = 0; p < n; ++p) {
      if (p == port_idx || (port_bank_mask_[p] & bbit) == 0) continue;
      const std::size_t slot =
          static_cast<std::size_t>(p) * num_banks + bank_idx;
      if (cand_hit_[slot] || cand_entry_[slot] == win_base_[p] + 1) continue;
      if (!port_dirty(p)) rescan_bank(p, bank_idx, now);
    }
  }
}

void DramMemory::rescan_bank(unsigned p, unsigned b, sim::Cycle now) {
  // Single-bank mirror of rescan_port: identical eligibility, prefer-hit,
  // anchor and cold-horizon rules, applied to bank b's chain only. This is
  // exact because every rule is bank-local — row state and warmth are the
  // bank's own, and the word-level hazards (a read may not pass a pending
  // same-word write, a write may not pass any pending same-word access)
  // can only involve entries whose words collide, which map to the same
  // bank. Candidates cached for other banks therefore stay exact across
  // any bank-b-only change.
  const unsigned num_banks = static_cast<unsigned>(banks_.size());
  const std::size_t slot = static_cast<std::size_t>(p) * num_banks + b;
  const std::uint64_t bbit = std::uint64_t{1} << b;
  const BankState& bank = banks_[b];
  // Slide the chain head past its granted prefix (permanent: granted
  // entries never revert, and release unlinks only un-slid heads).
  std::uint64_t cid = chain_head_[slot];
  while (cid != 0) {
    const std::size_t s = slot_of(p, cid - 1);
    if (!win_hot_[s].granted) break;
    cid = chain_next_[s];
  }
  chain_head_[slot] = cid;
  if (cid == 0) {
    chain_tail_[slot] = 0;
    // No ungranted entry on b at all.
    port_interest_mask_[p] &= ~bbit;
    port_samerow_mask_[p] &= ~bbit;
    cand_entry_[slot] = 0;
    if ((port_bank_mask_[p] & bbit) != 0) {
      port_bank_mask_[p] &= ~bbit;
      bank_ports_remove(b, p);
    }
    return;
  }
  port_interest_mask_[p] |= bbit;
  const sim::Cycle keepalive = cfg_.timing.tRP + cfg_.timing.tRCD;
  const bool warm =
      bank.granted_ever && now - bank.last_grant_at <= keepalive;
  const bool hazards = port_ungranted_writes_[p] != 0;
  std::vector<std::uint64_t>& words = words_scratch_;
  std::vector<std::uint64_t>& write_words = write_words_scratch_;
  if (hazards) {
    words.clear();
    write_words.clear();
  }
  const std::uint64_t head_id1 = win_base_[p] + 1;
  std::uint64_t first_el = 0;  // first eligible entry (claims the slot)
  std::uint8_t first_el_hit = 0;
  bool samerow = false;
  bool fold_cold = false;
  for (std::uint64_t c = cid; c != 0;) {
    const std::size_t s = slot_of(p, c - 1);
    const HotEntry& e = win_hot_[s];
    const std::uint64_t cn = chain_next_[s];
    if (e.granted) {
      c = cn;
      continue;
    }
    const bool hit = bank.row_open && bank.open_row == e.row;
    // Ungranted same-row entries — eligible or not — anchor the veto.
    if (hit) samerow = true;
    bool eligible;
    if (c == head_id1) {
      eligible = true;  // window head: always eligible, nothing before it
    } else if (!e.write) {
      // Deep reads only where they cannot disturb a streamed row.
      const bool undisturbed = hit || !bank.row_open || !warm;
      if (!undisturbed) fold_cold = true;
      eligible = undisturbed;
      if (eligible && hazards) {
        for (const std::uint64_t w : write_words) {
          if (w == e.word) {
            eligible = false;
            break;
          }
        }
      }
    } else {
      // Deep writes are held to open-row hits.
      eligible = hit;
      if (eligible && hazards) {
        for (const std::uint64_t w : words) {
          if (w == e.word) {
            eligible = false;
            break;
          }
        }
      }
    }
    if (hazards) {
      words.push_back(e.word);
      if (e.write) write_words.push_back(e.word);
    }
    if (eligible) {
      if (first_el == 0) {
        first_el = c;
        first_el_hit = hit;
      }
      if (hit) {
        // Prefer-hit: the first eligible hit is final. Stopping here may
        // skip a deeper warm-blocked read's cold-horizon fold, but while a
        // hit candidate stands that read could never displace it; the fold
        // is re-derived when the hit is granted (this same path) or the
        // bank's state changes.
        first_el = c;
        first_el_hit = 1;
        break;
      }
    }
    c = cn;
  }
  if (samerow) {
    port_samerow_mask_[p] |= bbit;
  } else {
    port_samerow_mask_[p] &= ~bbit;
  }
  if (fold_cold) {
    fold_recompute_at(p, b, bank.last_grant_at + keepalive + 1);
  } else {
    port_cold_banks_[p] &= ~bbit;
  }
  if (first_el != 0) {
    cand_entry_[slot] = first_el;
    cand_hit_[slot] = first_el_hit;
    port_bank_mask_[p] |= bbit;
    bank_ports_add(b, p);
  } else {
    cand_entry_[slot] = 0;
    if ((port_bank_mask_[p] & bbit) != 0) {
      port_bank_mask_[p] &= ~bbit;
      bank_ports_remove(b, p);
    }
  }
}

void DramMemory::tick() {
  const unsigned n = static_cast<unsigned>(ports_.size());
  const unsigned num_banks = static_cast<unsigned>(banks_.size());
  const sim::Cycle now = kernel_.now();
  const DramTimingConfig& t = cfg_.timing;

  // In-order release first: frees window slots whose grants completed.
  // (Releases and arrivals update the candidate caches incrementally and
  // do not usually dirty a port, but they do change what is grantable, so
  // either forces the full arbitration path below.)
  // Response-path backpressure never blocks granting: a granted entry
  // waits in the release stage (bounded by the window) until the response
  // FIFO has room, so a backpressured port keeps scheduling — and its
  // pending entries keep anchoring the veto — instead of wedging behind
  // its own out-of-order grants. (Gating grants on response occupancy
  // deadlocks when a deep grant fills the budget the older head needs to
  // release first.)
  const bool released = release_responses(now);
  // Decode newly visible requests into the windows.
  const bool grew = absorb_arrivals(now);

  if (dirty_ports_ == 0 && !released && !grew && now < next_sched_at_) {
    // Nothing changed and no scheduling predicate can flip before
    // next_sched_at_: this tick reduces to the release poll above plus
    // the constant-rate refresh-stall attribution of the span.
    settle_stalls(now);
    wake_hint_ = blocked_release_ ? 0 : next_sched_at_;
    return;
  }

  // Settle the span accrual before this reschedule adds its own stalls.
  if (now > 0) settle_stalls(now - 1);

  // Refresh sweeps only on ticks that crossed a tREFI boundary (the lazy
  // per-bank catch-up collapses any number of skipped epochs exactly);
  // bank row state must be current before any candidate classification or
  // veto reads it, and a closed row invalidates the holders' candidates.
  if (t.tREFI != 0 && now >= next_refresh_sweep_) {
    for (BankState& bank : banks_) refresh_update(bank, now);
    next_refresh_sweep_ = (now / t.tREFI + 1) * t.tREFI;
    for (unsigned p = 0; p < n; ++p) {
      if (win_size_[p] != 0) mark_port_dirty(p);
    }
  }

  // ---- candidate maintenance ------------------------------------------
  // Rebuild only the ports whose inputs changed — arrivals, grants,
  // releases, row-state changes on banks they hold entries on — or whose
  // warm->cold horizon arrived. See rescan_port for the eligibility and
  // hazard rules; the scan is unchanged, it just no longer runs per tick
  // per port. The global rescan clock is a stale-early lower bound, so
  // when it comes due the per-port clocks decide, and the bound is
  // rebuilt exactly.
  std::uint64_t scan = dirty_ports_;
  dirty_ports_ = 0;
  const bool recompute_due = min_recompute_at_ <= now;
  if (recompute_due) {
    for (unsigned p = 0; p < n; ++p) {
      if (port_recompute_at_[p] > now || ((scan >> p) & 1) != 0) continue;
      // Cold horizons name their banks: rebuild exactly those banks (the
      // rest of the port's cached view did not change with time alone).
      std::uint64_t cb = port_cold_banks_[p];
      port_cold_banks_[p] = 0;
      port_recompute_at_[p] = sim::kNeverCycle;
      const sim::Cycle keepalive = t.tRP + t.tRCD;
      for (; cb != 0; cb &= cb - 1) {
        const unsigned cbk = ctz64(cb);
        const BankState& bank = banks_[cbk];
        if (bank.granted_ever && bank.row_open &&
            now - bank.last_grant_at <= keepalive) {
          // The bank was re-granted since the fold and is still warm and
          // open: the blocked deep reads stay blocked, so nothing to
          // rebuild — just refold the new cold horizon. (A stale bit —
          // no blocked read left — costs one refold per keepalive span
          // until the bank actually cools and the rescan clears it.)
          fold_recompute_at(p, cbk, bank.last_grant_at + keepalive + 1);
        } else {
          rescan_bank(p, cbk, now);
        }
      }
    }
  }
  for (std::uint64_t m = scan; m != 0; m &= m - 1) {
    rescan_port(ctz64(m), now);
  }
  if (recompute_due) {
    min_recompute_at_ = sim::kNeverCycle;
    for (unsigned p = 0; p < n; ++p) {
      if (port_recompute_at_[p] < min_recompute_at_) {
        min_recompute_at_ = port_recompute_at_[p];
      }
    }
  }

  const std::uint64_t all_mask = live_banks_;

  // ---- per-bank FR-FCFS ------------------------------------------------
  // Among each bank's contenders, grant a *timing-legal* row hit first,
  // else a timing-legal miss/closed access (subject to the row-batching
  // veto); ties break round-robin by port index. A port is granted at most
  // once per cycle. Only banks with live candidates are visited, in
  // ascending order (the grant order — and with it fault ordinals, traces
  // and stats — matches the full scan exactly). While arbitrating, every
  // cycle at which a currently-illegal move could become legal — or the
  // stall attribution could flip — is folded into `horizon`.
  std::uint64_t grants_this_tick = 0;
  std::uint64_t stall_count = 0;
  bool defer_accounting = false;
  sim::Cycle horizon = sim::kNeverCycle;
  const auto bound = [&horizon](sim::Cycle c) {
    if (c < horizon) horizon = c;
  };

  if (all_mask != 0) {
    std::uint64_t granted_ports = 0;  // per-port once-per-cycle grant latch
    const sim::Cycle keepalive = t.tRP + t.tRCD;
    // An activate/column sequence must complete before the next refresh
    // window opens — a controller never starts a row cycle it would have
    // to interrupt for refresh.
    const sim::Cycle no_col_from =
        t.tREFI == 0 ? sim::kNeverCycle : (now / t.tREFI + 1) * t.tREFI;
    for (std::uint64_t bmask = all_mask; bmask != 0; bmask &= bmask - 1) {
      const unsigned b = ctz64(bmask);
      const std::uint64_t contenders = bank_ports_[b] & ~granted_ports;
      if (contenders == 0) continue;
      BankState& bank = banks_[b];

      bool refresh_deferred = false;
      std::uint64_t hit_mask = 0;     // timing-legal row-hit contenders
      std::uint64_t legal_other = 0;  // timing-legal closed/miss contenders
      for (std::uint64_t cm = contenders; cm != 0; cm &= cm - 1) {
        const unsigned q = ctz64(cm);
        const std::size_t slot = static_cast<std::size_t>(q) * num_banks + b;
        if (cand_hit_[slot]) {
          // Row hit: the column command issues immediately.
          if (now < bank.next_col) {
            bound(bank.next_col);
            continue;
          }
          hit_mask |= std::uint64_t{1} << q;
        } else if (!bank.row_open) {
          // Closed bank: activate must be legal, and the column command it
          // leads to must respect the bank's column spacing and finish
          // before the next refresh window.
          if (now + t.tRCD >= no_col_from) {
            // Schedulable again only past the boundary (bounded globally).
            refresh_deferred = true;
            continue;
          }
          if (no_col_from != sim::kNeverCycle) {
            bound(no_col_from - t.tRCD);  // deferral flips on here
          }
          const sim::Cycle legal_at = std::max(
              bank.next_act,
              bank.next_col > t.tRCD ? bank.next_col - t.tRCD : 0);
          if (legal_at > now) {
            bound(legal_at);
            continue;
          }
          legal_other |= std::uint64_t{1} << q;
        } else {
          // Row conflict: precharge is legal only tRAS after the activate
          // that opened the current row, and the full precharge-activate-
          // column sequence must clear the next refresh window.
          const sim::Cycle row_cycle = t.tRP + t.tRCD;
          if (now + row_cycle >= no_col_from) {
            refresh_deferred = true;
            continue;
          }
          if (no_col_from != sim::kNeverCycle) {
            bound(no_col_from - row_cycle);  // deferral flips on here
          }
          const sim::Cycle legal_at = std::max(
              std::max(bank.act_at + t.tRAS, bank.next_act),
              bank.next_col > row_cycle ? bank.next_col - row_cycle : 0);
          if (legal_at > now) {
            bound(legal_at);
            continue;
          }
          legal_other |= std::uint64_t{1} << q;
        }
      }

      // All legal non-hit contenders share one kind: the bank is either
      // closed (activate only) or holds a conflicting row (full row cycle).
      const DramGrant::Kind other_kind =
          bank.row_open ? DramGrant::Kind::miss : DramGrant::Kind::closed;
      // Entry of port q's candidate on this bank, as a window index.
      const auto cand_index = [&](unsigned q) -> std::size_t {
        return static_cast<std::size_t>(
            cand_entry_[static_cast<std::size_t>(q) * num_banks + b] - 1 -
            win_base_[q]);
      };
      // Starvation cap: a timing-legal row miss spends one cycle of its
      // deferral budget every cycle it is passed over — whether by the
      // batching veto or by hit-priority — and wins unconditionally once
      // the budget is gone. Misses eventually beat any hit stream.
      std::uint64_t starved = 0;
      if (batching_enabled() && other_kind == DramGrant::Kind::miss) {
        for (std::uint64_t m = legal_other; m != 0; m &= m - 1) {
          const unsigned q = ctz64(m);
          if (win_hot(q, cand_index(q)).defer_cycles >= cfg_.starve_cap) {
            starved |= std::uint64_t{1} << q;
          }
        }
      }

      unsigned chosen = kNone;
      DramGrant::Kind kind = DramGrant::Kind::hit;
      if (starved != 0) {
        chosen = pick_rr(starved, rr_[b]);
        kind = other_kind;
        ++stats_.starved_grants;
      } else if (hit_mask != 0) {
        chosen = pick_rr(hit_mask, rr_[b]);
        if (batching_enabled()) {
          // Legal misses passed over by this hit pay from their budget.
          for (std::uint64_t m = legal_other; m != 0; m &= m - 1) {
            const unsigned q = ctz64(m);
            ++win_hot(q, cand_index(q)).defer_cycles;
          }
        }
      } else if (legal_other != 0) {
        kind = other_kind;
        const bool row_warm =
            bank.granted_ever && now - bank.last_grant_at <= keepalive;
        bool veto = kind == DramGrant::Kind::miss && batching_enabled() &&
                    row_warm;
        if (veto) {
          // Veto anchors (any port's ungranted open-row hit on this bank)
          // are checked on demand: far fewer miss considerations than
          // ticks, so this beats re-aggregating a global mask per tick.
          veto = false;
          const std::uint64_t bb = std::uint64_t{1} << b;
          for (unsigned q = 0; q < n; ++q) {
            if ((port_samerow_mask_[q] & bb) != 0) {
              veto = true;
              break;
            }
          }
        }
        std::uint64_t exempt_writes = 0;
        if (veto) {
          // Write misses are exempt from the veto: a write is near the
          // head of its port by construction, so deferring one stalls the
          // whole port (everything behind it is blocked by program order),
          // which costs far more than the row it would close. Only the
          // writes themselves are granted through the veto — read misses
          // at the same bank stay deferred.
          for (std::uint64_t m = legal_other; m != 0; m &= m - 1) {
            const unsigned q = ctz64(m);
            if (win_hot(q, cand_index(q)).write) {
              exempt_writes |= std::uint64_t{1} << q;
            }
          }
        }
        if (!veto) {
          chosen = pick_rr(legal_other, rr_[b]);
        } else if (exempt_writes != 0) {
          chosen = pick_rr(exempt_writes, rr_[b]);
        } else {
          // Every legal miss spends one cycle of its budget and the open
          // row survives for the pending same-row work. Budgets accrue
          // per cycle, so veto cycles must be ticked one by one.
          for (std::uint64_t m = legal_other; m != 0; m &= m - 1) {
            const unsigned q = ctz64(m);
            ++win_hot(q, cand_index(q)).defer_cycles;
          }
          ++stats_.batch_defer_cycles;
          defer_accounting = true;
          continue;
        }
      }
      if (chosen == kNone) {
        // Contenders exist but none is timing-legal this cycle; attribute
        // the stall to refresh when the bank sits inside (or right behind)
        // a refresh window, or deferred a row cycle to clear the next one.
        // The count per span cycle is constant (the horizon is bounded by
        // every flip point), so skipped cycles settle at stall_rate_ each.
        if (now < bank.refresh_block_until || refresh_deferred) {
          ++stats_.refresh_stall_cycles;
          ++stall_count;
          if (now < bank.refresh_block_until) {
            bound(bank.refresh_block_until);
          }
        }
        continue;
      }
      const unsigned ncontend = popcount64(contenders);
      if (ncontend > 1) {
        stats_.conflict_losses += ncontend - 1;
      }
      rr_[b] = (chosen + 1) % n;
      ++grants_this_tick;
      granted_ports |= std::uint64_t{1} << chosen;
      grant(chosen, cand_index(chosen), b, kind, now);
    }
  }

  if (grants_this_tick != 0) {
    // Grants made this cycle whose entry sits at a port's head release
    // now, matching the head-only scheduler's response timing exactly.
    release_responses(now);
  }

  // ---- horizon ---------------------------------------------------------
  // Fold in the maintained event times: the (stale-early) global
  // warm->cold rescan clock and the visibility of the next in-flight
  // request that would grow a window (kept current by absorb_arrivals and
  // the post-grant release above). A stale-early rescan clock at worst
  // schedules a tick that rescans nothing and re-tightens the bound.
  bound(min_recompute_at_);
  bound(next_arrival_);
  // Pending work must observe every refresh boundary (state flips there).
  if (all_mask != 0 && t.tREFI != 0) bound(next_refresh_sweep_);

  // A tick that granted, released or paid deferral budgets invalidates the
  // horizon computed above — reschedule next cycle. Otherwise nothing can
  // change before `horizon`, and the skipped cycles each stall exactly
  // `stall_count` banks.
  const bool acted = released || grants_this_tick != 0 || defer_accounting ||
                     dirty_ports_ != 0;
  next_sched_at_ =
      acted ? now + 1
            : (horizon == sim::kNeverCycle ? horizon
                                           : std::max(horizon, now + 1));
  stall_rate_ = stall_count;
  stalls_settled_to_ = now;
  wake_hint_ = blocked_release_ ? 0 : next_sched_at_;
}

}  // namespace axipack::mem
