#include "mem/dram_memory.hpp"

#include <algorithm>
#include <limits>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace axipack::mem {

namespace {
constexpr unsigned kNoBank = ~0u;
}  // namespace

const char* dram_mapping_name(DramMapping m) {
  switch (m) {
    case DramMapping::row_interleaved:
      return "row-interleaved";
    case DramMapping::bank_interleaved:
      return "bank-interleaved";
    case DramMapping::permuted:
      return "permuted";
  }
  return "?";
}

DramMemory::DramMemory(sim::Kernel& k, BackingStore& store,
                       const DramMemoryConfig& cfg)
    : store_(store),
      kernel_(k),
      cfg_(cfg),
      map_(cfg.timing.num_banks(), cfg.timing.row_words, cfg.timing.mapping),
      banks_(cfg.timing.num_banks()),
      rr_(cfg.timing.num_banks(), 0),
      head_bank_(cfg.num_ports, kNoBank) {
  assert(cfg.num_ports > 0);
  assert(cfg.timing.num_banks() > 0 && cfg.timing.row_words > 0);
  // The response channel needs at least one register stage.
  assert(cfg.timing.tCAS >= 1 && cfg.timing.tCCD >= 1);
  // Refresh liveness (tREFI == 0 disables refresh): between the end of one
  // window and the start of the next there must be room for a full
  // precharge-activate-column sequence, or every row cycle is deferred
  // forever and the simulation hangs. A silent hang in assert-free builds
  // is worse than an abort, so validate unconditionally.
  const DramTimingConfig& t = cfg.timing;
  if (t.tREFI != 0 && t.tRFC + t.tRP + t.tRCD >= t.tREFI) {
    std::fprintf(stderr,
                 "DramMemory: refresh interval tREFI=%llu leaves no room for "
                 "a row cycle (tRFC=%llu + tRP=%llu + tRCD=%llu must be < "
                 "tREFI)\n",
                 static_cast<unsigned long long>(t.tREFI),
                 static_cast<unsigned long long>(t.tRFC),
                 static_cast<unsigned long long>(t.tRP),
                 static_cast<unsigned long long>(t.tRCD));
    std::abort();
  }
  ports_.reserve(cfg.num_ports);
  for (unsigned i = 0; i < cfg.num_ports; ++i) {
    // Response latency is per item (Fifo::push_in), so the channel's own
    // latency parameter is the 1-cycle floor.
    ports_.push_back(std::make_unique<WordPort>(k, cfg.req_depth,
                                                cfg.resp_depth, 1));
  }
  k.add(*this);
  for (auto& port : ports_) k.subscribe(*this, port->req);
}

void DramMemory::refresh_update(BankState& b, sim::Cycle now) {
  const sim::Cycle trefi = cfg_.timing.tREFI;
  if (trefi == 0) return;  // refresh disabled
  const std::uint64_t epoch = now / trefi;
  if (epoch == b.refresh_epoch) return;
  // One or more all-bank refreshes started since this bank was last
  // considered: the row buffer is precharged, and no activate may issue
  // before the end of the latest window.
  b.refresh_epoch = epoch;
  b.row_open = false;
  const sim::Cycle window_end = epoch * trefi + cfg_.timing.tRFC;
  b.next_act = std::max(b.next_act, window_end);
  b.refresh_block_until = window_end;
}

void DramMemory::grant(unsigned port_idx, unsigned bank_idx,
                       DramGrant::Kind kind, sim::Cycle now) {
  const DramTimingConfig& t = cfg_.timing;
  BankState& bank = banks_[bank_idx];
  WordPort& port = *ports_[port_idx];
  WordReq req = port.req.pop();
  const std::uint64_t row = map_.row_of(word_index(req.addr));

  sim::Cycle col_time = now;   // cycle the column command issues
  sim::Cycle data_delay = 0;   // grant -> response visibility
  switch (kind) {
    case DramGrant::Kind::hit:
      data_delay = t.row_hit_latency();
      ++stats_.row_hits;
      break;
    case DramGrant::Kind::closed:
      // Activate now, column command after tRCD.
      col_time = now + t.tRCD;
      data_delay = t.closed_latency();
      bank.act_at = now;
      ++stats_.row_misses;
      break;
    case DramGrant::Kind::miss:
      // Precharge now, activate after tRP, column after tRCD more.
      col_time = now + t.tRP + t.tRCD;
      data_delay = t.row_miss_latency();
      bank.act_at = now + t.tRP;
      ++stats_.row_misses;
      break;
  }
  bank.row_open = true;
  bank.open_row = row;
  bank.next_col = col_time + t.tCCD;

  WordResp resp;
  resp.tag = req.tag;
  resp.was_write = req.write;
  if (req.write) {
    store_.write_word(req.addr, req.wdata, req.wstrb);
  } else {
    resp.rdata = store_.read_u32(req.addr);
  }
  port.resp.push_in(resp, data_delay);
  ++stats_.grants;
  if (trace_ != nullptr) {
    trace_->push_back({now, now + data_delay, port_idx, bank_idx, row,
                       req.write, kind});
  }
}

void DramMemory::tick() {
  const unsigned n = static_cast<unsigned>(ports_.size());
  const sim::Cycle now = kernel_.now();
  // Gather the target bank of each port's head request.
  unsigned active = 0;
  for (unsigned p = 0; p < n; ++p) {
    WordPort& port = *ports_[p];
    if (port.req.has_visible(now) && port.resp.can_push()) {
      head_bank_[p] = map_.bank_of(word_index(port.req.front().addr));
      ++active;
    } else {
      head_bank_[p] = kNoBank;  // no request, or response-path backpressure
    }
  }
  if (active == 0) return;

  // Per-bank FR-FCFS-lite: among this bank's contenders, grant a *timing-
  // legal* row hit first, else a timing-legal miss/closed access; ties
  // break round-robin by port index (first contender at or after rr_[b]).
  for (unsigned p = 0; p < n; ++p) {
    const unsigned b = head_bank_[p];
    if (b == kNoBank) continue;
    BankState& bank = banks_[b];
    refresh_update(bank, now);

    const DramTimingConfig& t = cfg_.timing;
    // An activate/column sequence must complete before the next refresh
    // window opens — a controller never starts a row cycle it would have
    // to interrupt for refresh.
    const sim::Cycle no_col_from =
        t.tREFI == 0 ? std::numeric_limits<sim::Cycle>::max()
                     : (now / t.tREFI + 1) * t.tREFI;
    bool refresh_deferred = false;
    unsigned contenders = 0;
    unsigned hit_first = kNoBank, hit_first_ge = kNoBank;
    unsigned other_first = kNoBank, other_first_ge = kNoBank;
    DramGrant::Kind other_kind = DramGrant::Kind::closed;
    for (unsigned q = p; q < n; ++q) {
      if (head_bank_[q] != b) continue;
      ++contenders;
      head_bank_[q] = kNoBank;  // consumed: bank b arbitrates once per cycle
      const std::uint64_t row =
          map_.row_of(word_index(ports_[q]->req.front().addr));
      if (bank.row_open && bank.open_row == row) {
        // Row hit: the column command issues immediately.
        if (now < bank.next_col) continue;
        if (hit_first == kNoBank) hit_first = q;
        if (hit_first_ge == kNoBank && q >= rr_[b]) hit_first_ge = q;
      } else if (!bank.row_open) {
        // Closed bank: activate must be legal, and the column command it
        // leads to must respect the bank's column spacing and finish
        // before the next refresh window.
        if (now + t.tRCD >= no_col_from) {
          refresh_deferred = true;
          continue;
        }
        if (now < bank.next_act || now + t.tRCD < bank.next_col) continue;
        if (other_first == kNoBank) other_first = q;
        if (other_first_ge == kNoBank && q >= rr_[b]) other_first_ge = q;
        other_kind = DramGrant::Kind::closed;
      } else {
        // Row conflict: precharge is legal only tRAS after the activate
        // that opened the current row, and the full precharge-activate-
        // column sequence must clear the next refresh window.
        if (now + t.tRP + t.tRCD >= no_col_from) {
          refresh_deferred = true;
          continue;
        }
        if (now < bank.act_at + t.tRAS || now < bank.next_act ||
            now + t.tRP + t.tRCD < bank.next_col) {
          continue;
        }
        if (other_first == kNoBank) other_first = q;
        if (other_first_ge == kNoBank && q >= rr_[b]) other_first_ge = q;
        other_kind = DramGrant::Kind::miss;
      }
    }

    unsigned chosen = kNoBank;
    DramGrant::Kind kind = DramGrant::Kind::hit;
    if (hit_first != kNoBank) {
      chosen = hit_first_ge != kNoBank ? hit_first_ge : hit_first;
    } else if (other_first != kNoBank) {
      chosen = other_first_ge != kNoBank ? other_first_ge : other_first;
      kind = other_kind;
    }
    if (chosen == kNoBank) {
      // Contenders exist but none is timing-legal this cycle; attribute
      // the stall to refresh when the bank sits inside (or right behind)
      // a refresh window, or deferred a row cycle to clear the next one.
      if (now < bank.refresh_block_until || refresh_deferred) {
        ++stats_.refresh_stall_cycles;
      }
      continue;
    }
    if (contenders > 1) stats_.conflict_losses += contenders - 1;
    rr_[b] = (chosen + 1) % n;
    grant(chosen, b, kind, now);
  }
}

}  // namespace axipack::mem
