#include "mem/dram_memory.hpp"

#include <algorithm>
#include <limits>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace axipack::mem {

namespace {
constexpr unsigned kNone = ~0u;

/// Round-robin tie-break: first candidate at or after `start`, else the
/// first overall. `cands` is in ascending port order and non-empty.
unsigned pick_rr(const std::vector<unsigned>& cands, unsigned start) {
  for (const unsigned c : cands) {
    if (c >= start) return c;
  }
  return cands.front();
}
}  // namespace

const char* dram_mapping_name(DramMapping m) {
  switch (m) {
    case DramMapping::row_interleaved:
      return "row-interleaved";
    case DramMapping::bank_interleaved:
      return "bank-interleaved";
    case DramMapping::permuted:
      return "permuted";
  }
  return "?";
}

DramMemory::DramMemory(sim::Kernel& k, BackingStore& store,
                       const DramMemoryConfig& cfg)
    : store_(store),
      kernel_(k),
      cfg_(cfg),
      map_(cfg.timing.num_banks(), cfg.timing.row_words, cfg.timing.mapping),
      banks_(cfg.timing.num_banks()),
      rr_(cfg.timing.num_banks(), 0),
      rob_(cfg.num_ports),
      cand_entry_(cfg.num_ports * cfg.timing.num_banks(), 0),
      cand_hit_(cfg.num_ports * cfg.timing.num_banks(), 0),
      same_row_pending_(cfg.timing.num_banks(), 0),
      granted_this_cycle_(cfg.num_ports, 0) {
  assert(cfg.num_ports > 0);
  assert(cfg.timing.num_banks() > 0 && cfg.timing.row_words > 0);
  // The response channel needs at least one register stage.
  assert(cfg.timing.tCAS >= 1 && cfg.timing.tCCD >= 1);
  // Config validation happens unconditionally (not just via assert): a
  // zero-capacity FIFO or a zero-wide scheduler window is a configuration
  // error that must fail loudly instead of being silently clamped or
  // corrupting the Fifo invariants in assert-free builds.
  if (cfg.req_depth == 0 || cfg.resp_depth == 0) {
    std::fprintf(stderr,
                 "DramMemory: req_depth=%zu / resp_depth=%zu must be >= 1 "
                 "(per-port FIFOs cannot have zero capacity)\n",
                 cfg.req_depth, cfg.resp_depth);
    std::abort();
  }
  if (cfg.sched_window == 0) {
    std::fprintf(stderr,
                 "DramMemory: sched_window must be >= 1 (use 1 for head-only "
                 "scheduling, not 0)\n");
    std::abort();
  }
  // Refresh liveness (tREFI == 0 disables refresh): between the end of one
  // window and the start of the next there must be room for a full
  // precharge-activate-column sequence, or every row cycle is deferred
  // forever and the simulation hangs. A silent hang in assert-free builds
  // is worse than an abort, so validate unconditionally.
  const DramTimingConfig& t = cfg.timing;
  if (t.tREFI != 0 && t.tRFC + t.tRP + t.tRCD >= t.tREFI) {
    std::fprintf(stderr,
                 "DramMemory: refresh interval tREFI=%llu leaves no room for "
                 "a row cycle (tRFC=%llu + tRP=%llu + tRCD=%llu must be < "
                 "tREFI)\n",
                 static_cast<unsigned long long>(t.tREFI),
                 static_cast<unsigned long long>(t.tRFC),
                 static_cast<unsigned long long>(t.tRP),
                 static_cast<unsigned long long>(t.tRCD));
    std::abort();
  }
  ports_.reserve(cfg.num_ports);
  for (unsigned i = 0; i < cfg.num_ports; ++i) {
    // Response latency is per item (Fifo::push_in), so the channel's own
    // latency parameter is the 1-cycle floor.
    ports_.push_back(std::make_unique<WordPort>(k, cfg.req_depth,
                                                cfg.resp_depth, 1));
  }
  k.add(*this);
  for (auto& port : ports_) k.subscribe(*this, port->req);
}

void DramMemory::refresh_update(BankState& b, sim::Cycle now) {
  const sim::Cycle trefi = cfg_.timing.tREFI;
  if (trefi == 0) return;  // refresh disabled
  const std::uint64_t epoch = now / trefi;
  if (epoch == b.refresh_epoch) return;
  // One or more all-bank refreshes started since this bank was last
  // considered: the row buffer is precharged, and no activate may issue
  // before the end of the latest window.
  b.refresh_epoch = epoch;
  b.row_open = false;
  const sim::Cycle window_end = epoch * trefi + cfg_.timing.tRFC;
  b.next_act = std::max(b.next_act, window_end);
  b.refresh_block_until = window_end;
}

void DramMemory::release_responses(sim::Cycle now) {
  const unsigned n = static_cast<unsigned>(ports_.size());
  for (unsigned p = 0; p < n; ++p) {
    std::deque<PendingEntry>& rob = rob_[p];
    WordPort& port = *ports_[p];
    while (!rob.empty() && rob.front().granted && port.resp.can_push()) {
      const PendingEntry e = rob.front();
      rob.pop_front();
      port.req.pop();
      // Remaining data latency; already-ready responses held back by
      // in-order release still need the 1-cycle register floor.
      const sim::Cycle delay = e.ready_at > now ? e.ready_at - now : 1;
      port.resp.push_in(e.resp, delay);
    }
  }
}

void DramMemory::grant(unsigned port_idx, std::size_t entry,
                       unsigned bank_idx, DramGrant::Kind kind,
                       sim::Cycle now) {
  const DramTimingConfig& t = cfg_.timing;
  BankState& bank = banks_[bank_idx];
  const WordReq& req = ports_[port_idx]->req.peek(entry);
  const std::uint64_t row = rob_[port_idx][entry].row;

  sim::Cycle col_time = now;   // cycle the column command issues
  sim::Cycle data_delay = 0;   // grant -> data ready
  switch (kind) {
    case DramGrant::Kind::hit:
      data_delay = t.row_hit_latency();
      ++stats_.row_hits;
      break;
    case DramGrant::Kind::closed:
      // Activate now, column command after tRCD.
      col_time = now + t.tRCD;
      data_delay = t.closed_latency();
      bank.act_at = now;
      ++stats_.row_misses;
      break;
    case DramGrant::Kind::miss:
      // Precharge now, activate after tRP, column after tRCD more.
      col_time = now + t.tRP + t.tRCD;
      data_delay = t.row_miss_latency();
      bank.act_at = now + t.tRP;
      ++stats_.row_misses;
      break;
  }
  bank.row_open = true;
  bank.open_row = row;
  bank.next_col = col_time + t.tCCD;
  bank.last_grant_at = now;
  bank.granted_ever = true;

  PendingEntry& pe = rob_[port_idx][entry];
  pe.granted = true;
  pe.ready_at = now + data_delay;
  pe.resp.tag = req.tag;
  pe.resp.was_write = req.write;
  if (req.write) {
    // A faulted write is dropped before reaching the array (the retry
    // rewrites it); memory is never silently corrupted.
    if (faults_ != nullptr && faults_->next_dram_write()) {
      pe.resp.error = true;
    } else {
      store_.write_word(req.addr, req.wdata, req.wstrb);
    }
  } else {
    pe.resp.rdata = store_.read_u32(req.addr);
    if (faults_ != nullptr) {
      bool correctable = false;
      unsigned bit = 0;
      if (faults_->next_dram_read(&correctable, &bit) && !correctable) {
        // Uncorrectable: poison the returned data and flag the response.
        // Correctable faults are fixed by ECC in place — counted by the
        // plan, invisible on the port.
        pe.resp.rdata ^= 1u << bit;
        pe.resp.error = true;
      }
    }
  }
  granted_this_cycle_[port_idx] = 1;
  ++stats_.grants;
  if (trace_ != nullptr) {
    trace_->push_back({now, now + data_delay, port_idx, bank_idx, row,
                       req.write, kind});
  }
}

void DramMemory::tick() {
  const unsigned n = static_cast<unsigned>(ports_.size());
  const unsigned num_banks = static_cast<unsigned>(banks_.size());
  const sim::Cycle now = kernel_.now();
  const DramTimingConfig& t = cfg_.timing;

  // In-order release first: frees window slots whose grants completed.
  release_responses(now);

  // Refresh is applied lazily but uniformly before any open-row state is
  // read this cycle, so candidate classification and the batching veto see
  // post-refresh rows.
  for (BankState& bank : banks_) refresh_update(bank, now);

  // ---- candidate discovery --------------------------------------------
  // For each port, scan the first sched_window visible entries. The head
  // is always eligible; a deeper entry is eligible when granting it cannot
  // disturb an actively streamed row: it *hits* the open row of its bank
  // ("first-ready" in FR-FCFS terms), or its bank is closed, or its bank
  // has gone cold (no grant within the keep-alive window). Reordering
  // misses onto warm rows would let different ports' stream phases spread
  // and thrash the very locality the batching protects; reordering onto
  // idle banks only relieves head-of-line blocking behind a hot bank.
  // Program order per port is preserved for data by exact word-level
  // dependencies: a read may not pass a pending write to the same word,
  // and a write may not pass any pending access to the same word —
  // accesses to different words commute (the response stream carries no
  // data for writes, and reads of distinct words are independent). Each
  // port offers each bank at most one entry, preferring an open-row hit.
  // Ungranted same-row entries — eligible or not, backpressured or not —
  // anchor the batching veto.
  const sim::Cycle keepalive = t.tRP + t.tRCD;
  std::fill(cand_entry_.begin(), cand_entry_.end(), 0u);
  std::fill(same_row_pending_.begin(), same_row_pending_.end(), 0);
  std::fill(granted_this_cycle_.begin(), granted_this_cycle_.end(), 0);
  bool any_candidate = false;
  for (unsigned p = 0; p < n; ++p) {
    WordPort& port = *ports_[p];
    const std::size_t limit =
        std::min(cfg_.sched_window, port.req.visible_count(now));
    if (limit == 0) continue;
    std::deque<PendingEntry>& rob = rob_[p];
    while (rob.size() < limit) {
      // Decode once on entry: requests are immutable once enqueued, so the
      // per-tick rescans below touch only cached fields.
      const WordReq& rq = port.req.peek(rob.size());
      PendingEntry e;
      e.write = rq.write;
      e.word = word_index(rq.addr);
      e.bank = map_.bank_of(e.word);
      e.row = map_.row_of(e.word);
      rob.push_back(e);
    }
    // Response-path backpressure never blocks granting: a granted entry
    // waits in the release stage (bounded by the window) until the
    // response FIFO has room, so a backpressured port keeps scheduling —
    // and its pending entries keep anchoring the veto — instead of
    // wedging behind its own out-of-order grants. (Gating grants on
    // response occupancy deadlocks when a deep grant fills the budget the
    // older head needs to release first.)
    // Words of the ungranted entries scanned so far, for the word-level
    // program-order hazards: a read may not pass a pending same-word
    // write, a write may not pass any pending same-word access.
    std::vector<std::uint64_t>& words = words_scratch_;
    std::vector<std::uint64_t>& write_words = write_words_scratch_;
    words.clear();
    write_words.clear();
    for (std::size_t i = 0; i < limit; ++i) {
      PendingEntry& e = rob[i];
      if (e.granted) continue;  // served, awaiting in-order release
      const unsigned b = e.bank;
      const bool hits_open_row =
          banks_[b].row_open && banks_[b].open_row == e.row;
      if (hits_open_row) same_row_pending_[b] = 1;
      bool eligible;
      if (i == 0) {
        eligible = true;
      } else if (!e.write) {
        // Deep reads only where they cannot disturb a streamed row: a hit,
        // a closed bank, or a bank gone cold.
        const bool bank_undisturbed =
            hits_open_row || !banks_[b].row_open ||
            !(banks_[b].granted_ever &&
              now - banks_[b].last_grant_at <= keepalive);
        eligible = bank_undisturbed;
        if (eligible && !write_words.empty()) {
          for (const std::uint64_t w : write_words) {
            if (w == e.word) {
              eligible = false;
              break;
            }
          }
        }
      } else {
        // Deep writes are held to open-row hits (opening a row for a
        // write the stream has moved past is never worth it).
        eligible = hits_open_row;
        if (eligible) {
          for (const std::uint64_t w : words) {
            if (w == e.word) {
              eligible = false;
              break;
            }
          }
        }
      }
      words.push_back(e.word);
      if (e.write) write_words.push_back(e.word);
      if (!eligible) continue;
      const std::size_t slot =
          static_cast<std::size_t>(p) * num_banks + b;
      if (cand_entry_[slot] == 0) {
        cand_entry_[slot] = static_cast<std::uint32_t>(i) + 1;
        cand_hit_[slot] = hits_open_row;
        any_candidate = true;
      } else if (hits_open_row && !cand_hit_[slot]) {
        cand_entry_[slot] = static_cast<std::uint32_t>(i) + 1;
        cand_hit_[slot] = 1;
      }
    }
  }
  if (!any_candidate) return;

  // ---- per-bank FR-FCFS ------------------------------------------------
  // Among each bank's contenders, grant a *timing-legal* row hit first,
  // else a timing-legal miss/closed access (subject to the row-batching
  // veto); ties break round-robin by port index. A port is granted at most
  // once per cycle.
  for (unsigned b = 0; b < num_banks; ++b) {
    std::vector<unsigned>& contenders = contender_scratch_;
    contenders.clear();
    for (unsigned p = 0; p < n; ++p) {
      if (granted_this_cycle_[p]) continue;
      if (cand_entry_[static_cast<std::size_t>(p) * num_banks + b] != 0) {
        contenders.push_back(p);
      }
    }
    if (contenders.empty()) continue;
    BankState& bank = banks_[b];

    // An activate/column sequence must complete before the next refresh
    // window opens — a controller never starts a row cycle it would have
    // to interrupt for refresh.
    const sim::Cycle no_col_from =
        t.tREFI == 0 ? std::numeric_limits<sim::Cycle>::max()
                     : (now / t.tREFI + 1) * t.tREFI;
    bool refresh_deferred = false;
    unsigned hit_first = kNone, hit_first_ge = kNone;
    std::vector<unsigned>& legal_other = pick_scratch_;
    legal_other.clear();  // timing-legal closed/miss contenders, port order
    for (const unsigned q : contenders) {
      const std::size_t slot = static_cast<std::size_t>(q) * num_banks + b;
      if (cand_hit_[slot]) {
        // Row hit: the column command issues immediately.
        if (now < bank.next_col) continue;
        if (hit_first == kNone) hit_first = q;
        if (hit_first_ge == kNone && q >= rr_[b]) hit_first_ge = q;
      } else if (!bank.row_open) {
        // Closed bank: activate must be legal, and the column command it
        // leads to must respect the bank's column spacing and finish
        // before the next refresh window.
        if (now + t.tRCD >= no_col_from) {
          refresh_deferred = true;
          continue;
        }
        if (now < bank.next_act || now + t.tRCD < bank.next_col) continue;
        legal_other.push_back(q);
      } else {
        // Row conflict: precharge is legal only tRAS after the activate
        // that opened the current row, and the full precharge-activate-
        // column sequence must clear the next refresh window.
        if (now + t.tRP + t.tRCD >= no_col_from) {
          refresh_deferred = true;
          continue;
        }
        if (now < bank.act_at + t.tRAS || now < bank.next_act ||
            now + t.tRP + t.tRCD < bank.next_col) {
          continue;
        }
        legal_other.push_back(q);
      }
    }

    // All legal non-hit contenders share one kind: the bank is either
    // closed (activate only) or holds a conflicting row (full row cycle).
    const DramGrant::Kind other_kind =
        bank.row_open ? DramGrant::Kind::miss : DramGrant::Kind::closed;
    // Starvation cap: a timing-legal row miss spends one cycle of its
    // deferral budget every cycle it is passed over — whether by the
    // batching veto or by hit-priority — and wins unconditionally once the
    // budget is gone. Misses eventually beat any hit stream.
    std::vector<unsigned>& starved = starved_scratch_;
    starved.clear();
    if (batching_enabled() && other_kind == DramGrant::Kind::miss) {
      for (const unsigned q : legal_other) {
        const std::size_t entry =
            cand_entry_[static_cast<std::size_t>(q) * num_banks + b] - 1;
        if (rob_[q][entry].defer_cycles >= cfg_.starve_cap) {
          starved.push_back(q);
        }
      }
    }

    unsigned chosen = kNone;
    DramGrant::Kind kind = DramGrant::Kind::hit;
    if (!starved.empty()) {
      chosen = pick_rr(starved, rr_[b]);
      kind = other_kind;
      ++stats_.starved_grants;
    } else if (hit_first != kNone) {
      chosen = hit_first_ge != kNone ? hit_first_ge : hit_first;
      if (batching_enabled()) {
        // Legal misses passed over by this hit pay from their budget.
        for (const unsigned q : legal_other) {
          const std::size_t entry =
              cand_entry_[static_cast<std::size_t>(q) * num_banks + b] - 1;
          ++rob_[q][entry].defer_cycles;
        }
      }
    } else if (!legal_other.empty()) {
      kind = other_kind;
      const bool row_warm =
          bank.granted_ever && now - bank.last_grant_at <= keepalive;
      const bool veto = kind == DramGrant::Kind::miss && batching_enabled() &&
                        same_row_pending_[b] != 0 && row_warm;
      std::vector<unsigned>& exempt_writes = exempt_scratch_;
      exempt_writes.clear();
      if (veto) {
        // Write misses are exempt from the veto: a write is near the head
        // of its port by construction, so deferring one stalls the whole
        // port (everything behind it is blocked by program order), which
        // costs far more than the row it would close. Only the writes
        // themselves are granted through the veto — read misses at the
        // same bank stay deferred.
        for (const unsigned q : legal_other) {
          const std::size_t entry =
              cand_entry_[static_cast<std::size_t>(q) * num_banks + b] - 1;
          if (rob_[q][entry].write) exempt_writes.push_back(q);
        }
      }
      if (!veto) {
        chosen = pick_rr(legal_other, rr_[b]);
      } else if (!exempt_writes.empty()) {
        chosen = pick_rr(exempt_writes, rr_[b]);
      } else {
        // Every legal miss spends one cycle of its budget and the open
        // row survives for the pending same-row work.
        for (const unsigned q : legal_other) {
          const std::size_t entry =
              cand_entry_[static_cast<std::size_t>(q) * num_banks + b] - 1;
          ++rob_[q][entry].defer_cycles;
        }
        ++stats_.batch_defer_cycles;
        continue;
      }
    }
    if (chosen == kNone) {
      // Contenders exist but none is timing-legal this cycle; attribute
      // the stall to refresh when the bank sits inside (or right behind)
      // a refresh window, or deferred a row cycle to clear the next one.
      if (now < bank.refresh_block_until || refresh_deferred) {
        ++stats_.refresh_stall_cycles;
      }
      continue;
    }
    if (contenders.size() > 1) {
      stats_.conflict_losses += contenders.size() - 1;
    }
    rr_[b] = (chosen + 1) % n;
    grant(chosen,
          cand_entry_[static_cast<std::size_t>(chosen) * num_banks + b] - 1,
          b, kind, now);
  }

  // Grants made this cycle whose entry sits at a port's head release now,
  // matching the head-only scheduler's response timing exactly.
  release_responses(now);
}

}  // namespace axipack::mem
