// Cycle-level DRAM timing model behind the word-port interface.
//
// DramMemory is the third memory endpoint (after banked SRAM and the ideal
// conflict-free memory): n word ports in front of bank_groups x banks, each
// bank with an open-row buffer, scheduled by a per-bank FR-FCFS policy
// (grantable row hits beat row misses; ties break round-robin by port, like
// the SRAM crossbar). Accesses obey tRCD/tCAS/tRP/tRAS/tCCD and an all-bank
// periodic refresh (tREFI/tRFC).
//
// Row-aware request batching (the sched_window scheduler)
// -------------------------------------------------------
// The fine-grained index/gather interleaving of the pack converters puts
// requests to *different* rows back to back in one port's queue; a head-only
// scheduler then ping-pongs every bank between two rows (~50% hit ratio).
// The scheduler therefore looks past the heads, into the first
// `sched_window` visible requests of every port:
//
//  * Reads may be granted out of order within a port's window when that
//    cannot disturb an actively streamed row (they hit the open row, or
//    their bank is closed or has gone cold); writes reorder only as
//    open-row hits. Per-port program order for *data* is enforced at word
//    granularity: a read never passes a still-pending write to the same
//    word, and a write never passes any still-pending access to the same
//    word (nor another pending write, reordered or not, to it — the
//    hazard scan covers every older ungranted entry).
//  * Before a timing-legal row miss closes an open row, it is vetoed while
//    any port still has an ungranted same-row request in its window
//    (pending hits first). Two bounds keep this live and fair: a
//    *starvation cap* — every window entry accrues a deferral budget of
//    `starve_cap` cycles (counted only on cycles it was otherwise
//    grantable); once spent, the miss wins regardless — and a *row
//    keep-alive window* — the veto only holds while the bank was granted
//    within the last tRP + tRCD cycles, so if the pending same-row work is
//    itself stuck (behind a same-word hazard, or beyond another port's
//    grantable window) the row goes cold and the miss proceeds.
//  * Responses are re-serialized: a granted request's response waits in a
//    per-port in-order release stage until every older request of that
//    port has been granted and released, then enters the response Fifo
//    with its remaining data latency via Fifo::push_in (per-item
//    visibility, FIFO delivery) — per-port response order still equals
//    request order, the property the adapter's beat packers rely on.
//
// sched_window == 1 restores strict head-only in-order scheduling (the
// plain FR-FCFS-lite policy of PR 3, though not cycle-identically: grants
// are no longer gated on response-FIFO occupancy — the release stage
// parks responses instead, the blocked-vs-empty backpressure fix);
// starve_cap == 0 keeps the out-of-order window but never defers a miss.
// The effective lookahead is bounded by what the request FIFOs hold, so
// pair a deep window with a matching DramMemoryConfig::req_depth.
//
// Like BankXbar, the component is a *pure request server*: every grant
// decision is a deterministic function of the visible request FIFOs, the
// current cycle, and per-bank/per-entry state that only changes on ticks
// with visible requests.
//
// Event-driven scheduling (the tick() hot path)
// ---------------------------------------------
// tick() does not rebuild the scheduler's view of the world every cycle.
// Instead:
//
//  * Candidate state is *dirty-tracked per port*: the per-(port, bank)
//    candidate slots, the per-port bank/interest/same-row bitmasks and the
//    hazard classification survive across cycles, and a port is rescanned
//    only when its inputs changed — a request became visible, one of its
//    entries was granted or released, a bank it has entries on changed row
//    state (grant or refresh), or a bank it was blocked behind crossed the
//    warm->cold keep-alive boundary (`port_recompute_at_`).
//  * Arbitration visits only banks with live candidates, via a bank
//    bitmask OR-ed from the per-port masks (num_banks <= 64, validated).
//  * All bank timers are folded into one horizon: when a tick ends with no
//    grant, no release and no deferral accounting, the earliest future
//    cycle at which *any* scheduling predicate can change — column/
//    activate/precharge legality, refresh-window expiry, the refresh
//    deferral flip-on points before a tREFI boundary, the boundary itself,
//    warm->cold transitions, and the visibility time of every in-flight
//    request — is computed (`next_sched_at_`), and ticks before it reduce
//    to a release poll plus constant-rate stall accounting. Refresh is
//    swept into bank state only at ticks that crossed a tREFI boundary
//    (multi-epoch catch-up is exact), not re-checked per bank per cycle.
//  * The same horizon backs a real sleep protocol: quiescent() is true,
//    and wake_hint() publishes `next_sched_at_` so the kernel can sleep
//    the component *through* tRCD/tRP/tRFC waits even while requests sit
//    visible in its FIFOs (see Component::wake_hint). The hint is withheld
//    (0) whenever per-cycle work remains: a granted head response blocked
//    by a full response FIFO, or batching-veto cycles whose per-entry
//    deferral budgets accrue each cycle. Refresh-stall statistics over a
//    skipped span are settled in bulk (`stall_rate_` x cycles, flushed
//    lazily), and are exactly what per-cycle ticking would have counted —
//    the horizon is bounded by every cycle at which the stall predicate
//    could flip.
//
// The result is bit- and cycle-identical to the per-cycle rescan (the
// equivalence suite diff-tests gated vs naive, and naive mode itself
// early-outs through the same horizon), but grants cost work proportional
// to the ports/banks actually contending, and blocked stretches cost
// nothing at all.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/backing_store.hpp"
#include "mem/dram_timing.hpp"
#include "mem/word.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"

namespace axipack::mem {

struct DramMemoryConfig {
  unsigned num_ports = 8;
  std::size_t req_depth = 2;   ///< per-port request FIFO depth
  std::size_t resp_depth = 64; ///< per-port response FIFO depth
  /// Row-aware batching lookahead: visible requests per port the scheduler
  /// may inspect (and reorder reads within), including the head. 1 =
  /// head-only in-order scheduling (no batching). The effective window is
  /// bounded by req_depth.
  std::size_t sched_window = 32;
  /// Max cycles a timing-legal row miss may be deferred in favour of
  /// pending same-row requests before it wins anyway. 0 never defers.
  sim::Cycle starve_cap = 48;
  DramTimingConfig timing;
  /// Channel-interleave geometry of the surrounding system. This channel
  /// still receives absolute addresses; the address map compacts the
  /// channel-select bits out before decomposition (see DramAddressMap) so
  /// per-channel row locality is not diluted. 1 = single-channel identity.
  unsigned channels = 1;
  std::uint64_t channel_granule_words = 1;  ///< interleave granule in words
};

/// Activity counters of the DRAM model.
struct DramStats {
  std::uint64_t grants = 0;
  std::uint64_t conflict_losses = 0;  ///< same-cycle same-bank contenders not granted
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;  ///< activates (open-row conflict or closed bank)
  std::uint64_t refresh_stall_cycles = 0;  ///< bank-cycles requests waited on refresh
  /// Bank-cycles a timing-legal row miss was deferred to batch pending
  /// same-row requests on the open row (row-aware scheduling at work).
  std::uint64_t batch_defer_cycles = 0;
  /// Misses granted by the starvation cap while same-row work was still
  /// pending (the batching veto was overridden for fairness).
  std::uint64_t starved_grants = 0;

  double row_hit_ratio() const {
    const std::uint64_t total = row_hits + row_misses;
    return total == 0 ? 0.0 : static_cast<double>(row_hits) / total;
  }
};

/// One granted access, recorded when a trace sink is attached (tests).
/// `cycle`/`data_at` describe the *command* timing (grant and data-ready
/// cycles); delivery into the response FIFO can be later when the in-order
/// release stage holds a response for an older one.
struct DramGrant {
  sim::Cycle cycle = 0;    ///< command-issue (grant) cycle
  sim::Cycle data_at = 0;  ///< cycle the data is ready (col + tCAS)
  unsigned port = 0;
  unsigned bank = 0;
  std::uint64_t row = 0;
  bool write = false;
  enum class Kind : std::uint8_t { hit, closed, miss } kind = Kind::hit;
};

class DramMemory final : public WordMemory, public sim::Component {
 public:
  DramMemory(sim::Kernel& k, BackingStore& store,
             const DramMemoryConfig& cfg);

  unsigned num_ports() const override {
    return static_cast<unsigned>(ports_.size());
  }
  WordPort& port(unsigned i) override { return *ports_[i]; }

  void tick() override;
  /// Pure request server (see file header): all pending work — including
  /// granted responses awaiting in-order release — is anchored by visible
  /// entries in subscribed request Fifos, and all timing state is
  /// evaluated lazily.
  bool quiescent() const override { return true; }
  /// Event-driven sleep: the earliest future cycle any scheduling
  /// predicate can change (see the file header). 0 while per-cycle work
  /// remains (blocked release, veto accounting); sim::kNeverCycle when
  /// only a new request can create work.
  sim::Cycle wake_hint() const override { return wake_hint_; }

  const DramAddressMap& map() const { return map_; }
  const DramTimingConfig& timing() const { return cfg_.timing; }
  /// Counters are exact at any cycle: a query mid-span settles the bulk
  /// refresh-stall accrual for the cycles ticked past (or slept through)
  /// so far, so observers never see a partially-accounted window.
  const DramStats& stats() const {
    const sim::Cycle now = kernel_.now();
    if (now > 0) settle_stalls(now - 1);
    return stats_;
  }
  bool batching_enabled() const {
    return cfg_.sched_window > 1 && cfg_.starve_cap > 0;
  }

  /// Attaches (or detaches, with nullptr) a per-grant trace sink. Test-only
  /// observability; no recording when unset.
  void set_trace(std::vector<DramGrant>* sink) { trace_ = sink; }

  /// Attaches the system fault plan (nullptr = fault-free). Consulted once
  /// per granted access: reads may come back ECC-corrected or poisoned,
  /// writes may be dropped with an error response.
  void set_fault_plan(sim::FaultPlan* plan) { faults_ = plan; }

 private:
  struct BankState {
    bool row_open = false;
    std::uint64_t open_row = 0;
    std::uint64_t refresh_epoch = 0;   ///< last tREFI epoch applied
    sim::Cycle act_at = 0;             ///< cycle of the last activate
    sim::Cycle next_act = 0;           ///< earliest next activate
    sim::Cycle next_col = 0;           ///< earliest next column command
    sim::Cycle refresh_block_until = 0;  ///< end of the last refresh window
    sim::Cycle last_grant_at = 0;        ///< row keep-alive anchor
    bool granted_ever = false;           ///< last_grant_at is meaningful
  };

  /// Scheduler-hot state of one window entry; win_hot(p, i) parallels the
  /// i-th item (from the head) of port p's request Fifo. The address
  /// decomposition is cached at entry (requests are immutable once
  /// enqueued). Kept to 24 bytes on purpose: rescans stream these, and the
  /// rescan is the scheduler's hot loop.
  struct HotEntry {
    std::uint64_t word = 0;  ///< cached word index
    std::uint64_t row = 0;   ///< cached map_.row_of
    /// Starvation budget spent while vetoed. 32 bits bound the budget an
    /// entry can accrue during its (bounded) window residence.
    std::uint32_t defer_cycles = 0;
    std::uint16_t bank = 0;   ///< cached map_.bank_of
    std::uint8_t write = 0;   ///< cached from the request
    std::uint8_t granted = 0; ///< served, awaiting in-order release
  };

  /// Release-stage state of a granted entry (written once per grant, read
  /// once per release — kept out of the rescan stream).
  struct ColdEntry {
    WordResp resp;
    sim::Cycle ready_at = 0;  ///< data-ready cycle of the granted access
  };

  std::uint64_t word_index(std::uint64_t addr) const {
    return (addr - store_.base()) / kWordBytes;
  }

  /// Lazily applies any refresh windows that started since the bank was
  /// last considered: the row is closed and activates are pushed past the
  /// window's end. Multi-epoch catch-up (a sleep spanning several tREFI
  /// boundaries) collapses to the latest window exactly.
  void refresh_update(BankState& b, sim::Cycle now);

  /// Pops granted heads off each port, pushing their responses (with the
  /// remaining data latency) into the response FIFO in request order.
  /// Returns true when anything was released (the windows slid); leaves
  /// blocked_release_ = a granted head is parked behind a full response
  /// FIFO, which forces per-cycle release polling (no sleep).
  bool release_responses(sim::Cycle now);

  /// Decodes newly visible requests into the window rings (decode-once)
  /// and dirties the ports whose windows grew. Returns true if any grew.
  bool absorb_arrivals(sim::Cycle now);

  /// Rebuilds one dirty port's candidate slots, bitmasks and hazard
  /// classification from its window (the only full window scan left).
  void rescan_port(unsigned p, sim::Cycle now);

  /// Settles the constant-rate refresh-stall accrual for all fully
  /// elapsed cycles up to and including `through`.
  void settle_stalls(sim::Cycle through) const {
    if (through > stalls_settled_to_) {
      if (stall_rate_ != 0) {
        stats_.refresh_stall_cycles +=
            stall_rate_ * (through - stalls_settled_to_);
      }
      stalls_settled_to_ = through;
    }
  }

  void mark_port_dirty(unsigned p) { dirty_ports_ |= std::uint64_t{1} << p; }
  bool port_dirty(unsigned p) const {
    return ((dirty_ports_ >> p) & 1) != 0;
  }

  /// Adds/removes port `p` to bank `b`'s contender mask, keeping the
  /// global live-bank mask in sync (a bank is live while any port offers
  /// it a candidate).
  void bank_ports_add(unsigned b, unsigned p) {
    bank_ports_[b] |= std::uint64_t{1} << p;
    live_banks_ |= std::uint64_t{1} << b;
  }
  void bank_ports_remove(unsigned b, unsigned p) {
    bank_ports_[b] &= ~(std::uint64_t{1} << p);
    if (bank_ports_[b] == 0) live_banks_ &= ~(std::uint64_t{1} << b);
  }

  /// Folds a warm->cold horizon on bank `b` into port `p`'s rescan clock
  /// and the global lower bound (both allowed to run stale-early — a
  /// spurious rescan is harmless, a missed one is not), and records the
  /// bank so the clock can be serviced by single-bank rescans.
  void fold_recompute_at(unsigned p, unsigned b, sim::Cycle c) {
    port_cold_banks_[p] |= std::uint64_t{1} << b;
    if (c < port_recompute_at_[p]) port_recompute_at_[p] = c;
    if (c < min_recompute_at_) min_recompute_at_ = c;
  }

  /// Serves entry `entry` of port `port_idx` on bank `bank_idx` at cycle
  /// `now` (timing already validated): performs the store access, stores
  /// the response in the entry for in-order release and updates bank
  /// timing state.
  void grant(unsigned port_idx, std::size_t entry, unsigned bank_idx,
             DramGrant::Kind kind, sim::Cycle now);

  /// Rebuilds port `p`'s candidate, anchor bits and cold horizon for bank
  /// `b` alone, walking only b's entry chain. Exact at any instant — the
  /// word-level hazard rules are bank-local (same word implies same bank),
  /// so a change confined to bank b (a grant on b, an append on b) never
  /// perturbs the port's cached view of any other bank. Replaces the full
  /// rescan for every grant-time repair and deep-append fallback.
  void rescan_bank(unsigned p, unsigned b, sim::Cycle now);

  BackingStore& store_;
  sim::Kernel& kernel_;
  DramMemoryConfig cfg_;
  DramAddressMap map_;
  std::vector<std::unique_ptr<WordPort>> ports_;
  std::vector<BankState> banks_;
  std::vector<unsigned> rr_;  ///< per-bank round-robin pointer
  mutable DramStats stats_;  ///< mutable: stats() settles bulk stall accrual
  std::vector<DramGrant>* trace_ = nullptr;
  sim::FaultPlan* faults_ = nullptr;
  // Per-port scheduling window: a power-of-two ring (capacity >= the
  // effective window, min(sched_window, req_depth)) of decode-once
  // entries. Entries are addressed by *absolute* id — win_base_[p] is the
  // id of the current head — so a release (pop) shifts no cached indices.
  std::vector<HotEntry> win_hot_;        ///< [port][slot] flattened
  std::vector<ColdEntry> win_cold_;      ///< [port][slot] flattened
  std::vector<std::uint32_t> win_head_;  ///< ring slot of the head entry
  std::vector<std::uint32_t> win_size_;  ///< entries currently in the window
  std::vector<std::uint64_t> win_base_;  ///< absolute id of the head entry
  std::uint32_t win_cap_ = 1;            ///< ring capacity (power of two)

  HotEntry& win_hot(unsigned p, std::size_t i) {
    return win_hot_[static_cast<std::size_t>(p) * win_cap_ +
                    ((win_head_[p] + i) & (win_cap_ - 1))];
  }
  const HotEntry& win_hot(unsigned p, std::size_t i) const {
    return win_hot_[static_cast<std::size_t>(p) * win_cap_ +
                    ((win_head_[p] + i) & (win_cap_ - 1))];
  }
  ColdEntry& win_cold(unsigned p, std::size_t i) {
    return win_cold_[static_cast<std::size_t>(p) * win_cap_ +
                     ((win_head_[p] + i) & (win_cap_ - 1))];
  }

  /// Flat ring slot of the live entry with absolute id `id`. Invariant
  /// over the entry's window residence: pops advance win_head_ and
  /// win_base_ together, so the difference below never moves.
  std::size_t slot_of(unsigned p, std::uint64_t id) const {
    return static_cast<std::size_t>(p) * win_cap_ +
           ((win_head_[p] +
             static_cast<std::uint32_t>(id - win_base_[p])) &
            (win_cap_ - 1));
  }

  // Persistent candidate caches (dirty-tracked, NOT refilled per tick).
  // cand_* are [port][bank] flattened: the window entry each port offers
  // each bank; valid only for banks set in port_bank_mask_.
  std::vector<std::uint64_t> cand_entry_;  ///< absolute entry id + 1 (0 = none)
  std::vector<std::uint8_t> cand_hit_;     ///< candidate targets the open row
  std::vector<std::uint64_t> bank_ports_;  ///< per-bank contender port mask
  /// Ungranted writes currently in the window. While 0, reads have no
  /// word hazards by construction (hazard sources are pending writes), so
  /// an appended read hit may upgrade its bank slot without a rescan.
  std::vector<std::uint32_t> port_ungranted_writes_;
  std::vector<std::uint64_t> words_scratch_;        ///< hazard-scan helpers
  std::vector<std::uint64_t> write_words_scratch_;
  // ---- event-driven scheduler state (see file header) ------------------
  std::uint64_t dirty_ports_ = 0;  ///< ports whose candidate cache needs rescan
  std::uint64_t live_banks_ = 0;   ///< banks with a nonzero contender mask
  std::uint64_t release_ports_ = 0;  ///< ports whose head entry is granted
  std::vector<std::uint64_t> port_bank_mask_;      ///< banks with a candidate
  std::vector<std::uint64_t> port_interest_mask_;  ///< banks with ungranted entries
  std::vector<std::uint64_t> port_samerow_mask_;   ///< banks with an ungranted open-row hit (veto anchors)
  // Per-(port,bank) chains threading each window's entries by bank, in
  // window order (ids ascend along a chain). Purely structural — valid
  // regardless of dirty/eligibility state: absorb_arrivals appends,
  // release_responses unlinks popped heads, and recompute_bank_candidate
  // additionally slides chain heads past granted entries (permanent:
  // granted never reverts). They let the single-bank candidate recompute
  // touch same-bank entries only instead of striding the whole window.
  std::vector<std::uint64_t> chain_next_;  ///< [port][slot]: next id+1 on bank
  std::vector<std::uint64_t> chain_head_;  ///< [port][bank]: first id+1 (0=none)
  std::vector<std::uint64_t> chain_tail_;  ///< [port][bank]: last id+1 (0=none)
  std::vector<sim::Cycle> port_recompute_at_;  ///< earliest warm->cold rescan
  /// Banks with a pending warm->cold fold behind port_recompute_at_: the
  /// clock is serviced by rebuilding exactly these banks (rescan_bank),
  /// not the whole window.
  std::vector<std::uint64_t> port_cold_banks_;
  /// Lower bound on min(port_recompute_at_): min-updated on folds, rebuilt
  /// exactly whenever it comes due (stale-early at worst).
  sim::Cycle min_recompute_at_ = sim::kNeverCycle;
  /// Visibility time of the earliest in-flight request that would grow a
  /// non-full window; recomputed by absorb_arrivals each tick and advanced
  /// by release_responses when pops free window slots.
  sim::Cycle next_arrival_ = sim::kNeverCycle;
  sim::Cycle next_refresh_sweep_ = 0;  ///< first tREFI boundary not yet applied
  sim::Cycle next_sched_at_ = 0;  ///< horizon: earliest scheduling-predicate flip
  sim::Cycle wake_hint_ = 0;      ///< published to the kernel (0 = must poll)
  bool blocked_release_ = false;  ///< granted head parked on a full resp FIFO
  std::uint64_t stall_rate_ = 0;  ///< refresh-stalled banks per span cycle
  mutable sim::Cycle stalls_settled_to_ = 0;  ///< stall accrual complete through here
};

}  // namespace axipack::mem
