// Cycle-level DRAM timing model behind the word-port interface.
//
// DramMemory is the third memory endpoint (after banked SRAM and the ideal
// conflict-free memory): n word ports in front of bank_groups x banks, each
// bank with an open-row buffer, scheduled by a per-bank FR-FCFS policy
// (grantable row hits beat row misses; ties break round-robin by port, like
// the SRAM crossbar). Accesses obey tRCD/tCAS/tRP/tRAS/tCCD and an all-bank
// periodic refresh (tREFI/tRFC).
//
// Row-aware request batching (the sched_window scheduler)
// -------------------------------------------------------
// The fine-grained index/gather interleaving of the pack converters puts
// requests to *different* rows back to back in one port's queue; a head-only
// scheduler then ping-pongs every bank between two rows (~50% hit ratio).
// The scheduler therefore looks past the heads, into the first
// `sched_window` visible requests of every port:
//
//  * Reads may be granted out of order within a port's window when that
//    cannot disturb an actively streamed row (they hit the open row, or
//    their bank is closed or has gone cold); writes reorder only as
//    open-row hits. Per-port program order for *data* is enforced at word
//    granularity: a read never passes a still-pending write to the same
//    word, and a write never passes any still-pending access to the same
//    word (nor another pending write, reordered or not, to it — the
//    hazard scan covers every older ungranted entry).
//  * Before a timing-legal row miss closes an open row, it is vetoed while
//    any port still has an ungranted same-row request in its window
//    (pending hits first). Two bounds keep this live and fair: a
//    *starvation cap* — every window entry accrues a deferral budget of
//    `starve_cap` cycles (counted only on cycles it was otherwise
//    grantable); once spent, the miss wins regardless — and a *row
//    keep-alive window* — the veto only holds while the bank was granted
//    within the last tRP + tRCD cycles, so if the pending same-row work is
//    itself stuck (behind a same-word hazard, or beyond another port's
//    grantable window) the row goes cold and the miss proceeds.
//  * Responses are re-serialized: a granted request's response waits in a
//    per-port in-order release stage until every older request of that
//    port has been granted and released, then enters the response Fifo
//    with its remaining data latency via Fifo::push_in (per-item
//    visibility, FIFO delivery) — per-port response order still equals
//    request order, the property the adapter's beat packers rely on.
//
// sched_window == 1 restores strict head-only in-order scheduling (the
// plain FR-FCFS-lite policy of PR 3, though not cycle-identically: grants
// are no longer gated on response-FIFO occupancy — the release stage
// parks responses instead, the blocked-vs-empty backpressure fix);
// starve_cap == 0 keeps the out-of-order window but never defers a miss.
// The effective lookahead is bounded by what the request FIFOs hold, so
// pair a deep window with a matching DramMemoryConfig::req_depth.
//
// Like BankXbar, the component is a *pure request server*: every grant
// decision is a deterministic function of the visible request FIFOs, the
// current cycle, and per-bank/per-entry state that only changes on ticks
// with visible requests. A granted-but-unreleased request stays in its
// request Fifo until release, so all pending work — including the release
// stage's — keeps the component awake through request visibility alone;
// quiescent() == true stays trivially correct, and nothing ever needs to
// tick while no request is pending.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mem/backing_store.hpp"
#include "mem/dram_timing.hpp"
#include "mem/word.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"

namespace axipack::mem {

struct DramMemoryConfig {
  unsigned num_ports = 8;
  std::size_t req_depth = 2;   ///< per-port request FIFO depth
  std::size_t resp_depth = 64; ///< per-port response FIFO depth
  /// Row-aware batching lookahead: visible requests per port the scheduler
  /// may inspect (and reorder reads within), including the head. 1 =
  /// head-only in-order scheduling (no batching). The effective window is
  /// bounded by req_depth.
  std::size_t sched_window = 32;
  /// Max cycles a timing-legal row miss may be deferred in favour of
  /// pending same-row requests before it wins anyway. 0 never defers.
  sim::Cycle starve_cap = 48;
  DramTimingConfig timing;
};

/// Activity counters of the DRAM model.
struct DramStats {
  std::uint64_t grants = 0;
  std::uint64_t conflict_losses = 0;  ///< same-cycle same-bank contenders not granted
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;  ///< activates (open-row conflict or closed bank)
  std::uint64_t refresh_stall_cycles = 0;  ///< bank-cycles requests waited on refresh
  /// Bank-cycles a timing-legal row miss was deferred to batch pending
  /// same-row requests on the open row (row-aware scheduling at work).
  std::uint64_t batch_defer_cycles = 0;
  /// Misses granted by the starvation cap while same-row work was still
  /// pending (the batching veto was overridden for fairness).
  std::uint64_t starved_grants = 0;

  double row_hit_ratio() const {
    const std::uint64_t total = row_hits + row_misses;
    return total == 0 ? 0.0 : static_cast<double>(row_hits) / total;
  }
};

/// One granted access, recorded when a trace sink is attached (tests).
/// `cycle`/`data_at` describe the *command* timing (grant and data-ready
/// cycles); delivery into the response FIFO can be later when the in-order
/// release stage holds a response for an older one.
struct DramGrant {
  sim::Cycle cycle = 0;    ///< command-issue (grant) cycle
  sim::Cycle data_at = 0;  ///< cycle the data is ready (col + tCAS)
  unsigned port = 0;
  unsigned bank = 0;
  std::uint64_t row = 0;
  bool write = false;
  enum class Kind : std::uint8_t { hit, closed, miss } kind = Kind::hit;
};

class DramMemory final : public WordMemory, public sim::Component {
 public:
  DramMemory(sim::Kernel& k, BackingStore& store,
             const DramMemoryConfig& cfg);

  unsigned num_ports() const override {
    return static_cast<unsigned>(ports_.size());
  }
  WordPort& port(unsigned i) override { return *ports_[i]; }

  void tick() override;
  /// Pure request server (see file header): all pending work — including
  /// granted responses awaiting in-order release — is anchored by visible
  /// entries in subscribed request Fifos, and all timing state is
  /// evaluated lazily.
  bool quiescent() const override { return true; }

  const DramAddressMap& map() const { return map_; }
  const DramTimingConfig& timing() const { return cfg_.timing; }
  const DramStats& stats() const { return stats_; }
  bool batching_enabled() const {
    return cfg_.sched_window > 1 && cfg_.starve_cap > 0;
  }

  /// Attaches (or detaches, with nullptr) a per-grant trace sink. Test-only
  /// observability; no recording when unset.
  void set_trace(std::vector<DramGrant>* sink) { trace_ = sink; }

  /// Attaches the system fault plan (nullptr = fault-free). Consulted once
  /// per granted access: reads may come back ECC-corrected or poisoned,
  /// writes may be dropped with an error response.
  void set_fault_plan(sim::FaultPlan* plan) { faults_ = plan; }

 private:
  struct BankState {
    bool row_open = false;
    std::uint64_t open_row = 0;
    std::uint64_t refresh_epoch = 0;   ///< last tREFI epoch applied
    sim::Cycle act_at = 0;             ///< cycle of the last activate
    sim::Cycle next_act = 0;           ///< earliest next activate
    sim::Cycle next_col = 0;           ///< earliest next column command
    sim::Cycle refresh_block_until = 0;  ///< end of the last refresh window
    sim::Cycle last_grant_at = 0;        ///< row keep-alive anchor
    bool granted_ever = false;           ///< last_grant_at is meaningful
  };

  /// Scheduler-side state of one request-FIFO entry; rob_[p][i] parallels
  /// the i-th item (from the head) of port p's request Fifo. The address
  /// decomposition is cached at entry (requests are immutable once
  /// enqueued), and granted entries keep their computed response here
  /// until the in-order release stage pops both together.
  struct PendingEntry {
    bool granted = false;
    bool write = false;           ///< cached from the request
    unsigned bank = 0;            ///< cached map_.bank_of
    sim::Cycle defer_cycles = 0;  ///< starvation budget spent while vetoed
    sim::Cycle ready_at = 0;      ///< data-ready cycle of the granted access
    std::uint64_t word = 0;       ///< cached word index
    std::uint64_t row = 0;        ///< cached map_.row_of
    WordResp resp;
  };

  std::uint64_t word_index(std::uint64_t addr) const {
    return (addr - store_.base()) / kWordBytes;
  }

  /// Lazily applies any refresh windows that started since the bank was
  /// last considered: the row is closed and activates are pushed past the
  /// window's end.
  void refresh_update(BankState& b, sim::Cycle now);

  /// Pops granted heads off each port, pushing their responses (with the
  /// remaining data latency) into the response FIFO in request order.
  void release_responses(sim::Cycle now);

  /// Serves entry `entry` of port `port_idx` on bank `bank_idx` at cycle
  /// `now` (timing already validated): performs the store access, stores
  /// the response in the entry for in-order release and updates bank
  /// timing state.
  void grant(unsigned port_idx, std::size_t entry, unsigned bank_idx,
             DramGrant::Kind kind, sim::Cycle now);

  BackingStore& store_;
  sim::Kernel& kernel_;
  DramMemoryConfig cfg_;
  DramAddressMap map_;
  std::vector<std::unique_ptr<WordPort>> ports_;
  std::vector<BankState> banks_;
  std::vector<unsigned> rr_;  ///< per-bank round-robin pointer
  std::vector<std::deque<PendingEntry>> rob_;       ///< per-port entry state
  DramStats stats_;
  std::vector<DramGrant>* trace_ = nullptr;
  sim::FaultPlan* faults_ = nullptr;
  // Per-tick scratch (hot path, allocated once). cand_* are [port][bank]
  // flattened: the window entry each port offers each bank this cycle.
  std::vector<std::uint32_t> cand_entry_;  ///< entry index + 1 (0 = none)
  std::vector<std::uint8_t> cand_hit_;     ///< candidate targets the open row
  std::vector<std::uint8_t> same_row_pending_;  ///< per-bank veto anchor
  std::vector<std::uint8_t> granted_this_cycle_;  ///< per-port grant latch
  std::vector<unsigned> contender_scratch_;
  std::vector<unsigned> pick_scratch_;
  std::vector<unsigned> starved_scratch_;
  std::vector<unsigned> exempt_scratch_;
  std::vector<std::uint64_t> words_scratch_;        ///< hazard-scan helpers
  std::vector<std::uint64_t> write_words_scratch_;
};

}  // namespace axipack::mem
