// Cycle-level DRAM timing model behind the word-port interface.
//
// DramMemory is the third memory endpoint (after banked SRAM and the ideal
// conflict-free memory): n word ports in front of bank_groups x banks, each
// bank with an open-row buffer, scheduled by a per-bank FR-FCFS-lite policy
// (grantable row hits beat row misses; ties break round-robin by port, like
// the SRAM crossbar). Accesses obey tRCD/tCAS/tRP/tRAS/tCCD and an all-bank
// periodic refresh (tREFI/tRFC).
//
// Like BankXbar, the component is a *pure request server*: every grant
// decision is a deterministic function of the visible port heads, the
// current cycle and per-bank state that itself only changes on grants.
// Timing is enforced lazily — banks keep "earliest next activate / next
// column" cycles and refresh windows are derived arithmetically from the
// clock — so nothing ever needs to tick while no request is pending, which
// keeps the quiescence protocol trivially correct (quiescent() == true,
// wake = request visibility). Variable access latency (hit vs miss) rides
// on the response Fifo's per-item visibility (Fifo::push_in), so per-port
// response order still equals request order, the property the adapter's
// beat packers rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/backing_store.hpp"
#include "mem/dram_timing.hpp"
#include "mem/word.hpp"
#include "sim/kernel.hpp"

namespace axipack::mem {

struct DramMemoryConfig {
  unsigned num_ports = 8;
  std::size_t req_depth = 2;   ///< per-port request FIFO depth
  std::size_t resp_depth = 64; ///< per-port response FIFO depth
  DramTimingConfig timing;
};

/// Activity counters of the DRAM model.
struct DramStats {
  std::uint64_t grants = 0;
  std::uint64_t conflict_losses = 0;  ///< same-cycle same-bank contenders not granted
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;  ///< activates (open-row conflict or closed bank)
  std::uint64_t refresh_stall_cycles = 0;  ///< bank-cycles head requests waited on refresh

  double row_hit_ratio() const {
    const std::uint64_t total = row_hits + row_misses;
    return total == 0 ? 0.0 : static_cast<double>(row_hits) / total;
  }
};

/// One granted access, recorded when a trace sink is attached (tests).
struct DramGrant {
  sim::Cycle cycle = 0;    ///< command-issue (grant) cycle
  sim::Cycle data_at = 0;  ///< cycle the response becomes visible
  unsigned port = 0;
  unsigned bank = 0;
  std::uint64_t row = 0;
  bool write = false;
  enum class Kind : std::uint8_t { hit, closed, miss } kind = Kind::hit;
};

class DramMemory final : public WordMemory, public sim::Component {
 public:
  DramMemory(sim::Kernel& k, BackingStore& store,
             const DramMemoryConfig& cfg);

  unsigned num_ports() const override {
    return static_cast<unsigned>(ports_.size());
  }
  WordPort& port(unsigned i) override { return *ports_[i]; }

  void tick() override;
  /// Pure request server (see file header): all pending work is visible in
  /// subscribed request Fifos, all timing state is evaluated lazily.
  bool quiescent() const override { return true; }

  const DramAddressMap& map() const { return map_; }
  const DramTimingConfig& timing() const { return cfg_.timing; }
  const DramStats& stats() const { return stats_; }

  /// Attaches (or detaches, with nullptr) a per-grant trace sink. Test-only
  /// observability; no recording when unset.
  void set_trace(std::vector<DramGrant>* sink) { trace_ = sink; }

 private:
  struct BankState {
    bool row_open = false;
    std::uint64_t open_row = 0;
    std::uint64_t refresh_epoch = 0;   ///< last tREFI epoch applied
    sim::Cycle act_at = 0;             ///< cycle of the last activate
    sim::Cycle next_act = 0;           ///< earliest next activate
    sim::Cycle next_col = 0;           ///< earliest next column command
    sim::Cycle refresh_block_until = 0;  ///< end of the last refresh window
  };

  std::uint64_t word_index(std::uint64_t addr) const {
    return (addr - store_.base()) / kWordBytes;
  }

  /// Lazily applies any refresh windows that started since the bank was
  /// last considered: the row is closed and activates are pushed past the
  /// window's end.
  void refresh_update(BankState& b, sim::Cycle now);

  /// Serves `req` on bank `b` at cycle `now` (timing already validated):
  /// performs the store access, pushes the response with the access's data
  /// latency and updates bank/group timing state.
  void grant(unsigned port_idx, unsigned bank_idx, DramGrant::Kind kind,
             sim::Cycle now);

  BackingStore& store_;
  sim::Kernel& kernel_;
  DramMemoryConfig cfg_;
  DramAddressMap map_;
  std::vector<std::unique_ptr<WordPort>> ports_;
  std::vector<BankState> banks_;
  std::vector<unsigned> rr_;  ///< per-bank round-robin pointer
  DramStats stats_;
  std::vector<DramGrant>* trace_ = nullptr;
  // Per-tick scratch (hot path, allocated once).
  std::vector<unsigned> head_bank_;  ///< port -> target bank (or kNoBank)
};

}  // namespace axipack::mem
