#include "mem/ideal_memory.hpp"

namespace axipack::mem {

IdealMemory::IdealMemory(sim::Kernel& k, BackingStore& store,
                         const IdealMemoryConfig& cfg)
    : store_(store) {
  ports_.reserve(cfg.num_ports);
  for (unsigned i = 0; i < cfg.num_ports; ++i) {
    ports_.push_back(std::make_unique<WordPort>(k, cfg.req_depth,
                                                cfg.resp_depth, cfg.latency));
  }
  k.add(*this);
  for (auto& port : ports_) k.subscribe(*this, port->req);
}

void IdealMemory::tick() {
  for (auto& port : ports_) {
    if (!port->req.can_pop() || !port->resp.can_push()) continue;
    WordReq req = port->req.pop();
    WordResp resp;
    resp.tag = req.tag;
    resp.was_write = req.write;
    if (req.write) {
      store_.write_word(req.addr, req.wdata, req.wstrb);
    } else {
      resp.rdata = store_.read_u32(req.addr);
    }
    port->resp.push(resp);
  }
}

}  // namespace axipack::mem
