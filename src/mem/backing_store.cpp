#include "mem/backing_store.hpp"

#include <cassert>
#include <cstdio>
#include <cstring>

#include "util/bits.hpp"

namespace axipack::mem {

BackingStore::BackingStore(std::uint64_t base, std::uint64_t size)
    : base_(base),
      next_(base),
      size_(size),
      bytes_(static_cast<std::uint8_t*>(std::calloc(size, 1))) {
  if (bytes_ == nullptr) {
    std::fprintf(stderr, "BackingStore: cannot allocate %llu bytes\n",
                 static_cast<unsigned long long>(size));
    std::abort();
  }
}

bool BackingStore::contains(std::uint64_t addr, std::uint64_t n) const {
  return addr >= base_ && addr + n <= base_ + size_;
}

void BackingStore::write(std::uint64_t addr, const void* src,
                         std::uint64_t n) {
  assert(contains(addr, n));
  std::memcpy(data() + (addr - base_), src, n);
}

void BackingStore::read(std::uint64_t addr, void* dst, std::uint64_t n) const {
  assert(contains(addr, n));
  std::memcpy(dst, data() + (addr - base_), n);
}

std::uint32_t BackingStore::read_u32(std::uint64_t addr) const {
  std::uint32_t v;
  read(addr, &v, sizeof v);
  return v;
}

void BackingStore::write_u32(std::uint64_t addr, std::uint32_t value) {
  write(addr, &value, sizeof value);
}

float BackingStore::read_f32(std::uint64_t addr) const {
  float v;
  read(addr, &v, sizeof v);
  return v;
}

void BackingStore::write_f32(std::uint64_t addr, float value) {
  write(addr, &value, sizeof value);
}

void BackingStore::write_word(std::uint64_t addr, std::uint32_t wdata,
                              std::uint8_t strb) {
  assert(addr % 4 == 0);
  assert(contains(addr, 4));
  auto* p = data() + (addr - base_);
  for (unsigned i = 0; i < 4; ++i) {
    if (strb & (1u << i)) p[i] = static_cast<std::uint8_t>(wdata >> (8 * i));
  }
}

std::uint64_t BackingStore::alloc(std::uint64_t n, std::uint64_t align) {
  next_ = util::round_up(next_, align);
  const std::uint64_t addr = next_;
  assert(contains(addr, n) && "backing store exhausted");
  next_ += n;
  return addr;
}

}  // namespace axipack::mem
