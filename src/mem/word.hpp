// Word-port interface between the AXI-Pack adapter and banked memory.
//
// The adapter converts bursts into sequences of W-bit word accesses issued on
// n parallel ports (n = bus_width / word_width). Each port is a request FIFO
// plus a response FIFO; the memory serves at most one request per bank per
// cycle and returns responses after a fixed SRAM latency, so responses on a
// given port always return in request order.
#pragma once

#include <cstdint>

#include "sim/kernel.hpp"

namespace axipack::mem {

/// Memory word width used by all evaluation systems (32-bit banks).
inline constexpr unsigned kWordBytes = 4;

/// One word access. `addr` is an absolute, word-aligned byte address.
struct WordReq {
  std::uint64_t addr = 0;
  bool write = false;
  std::uint32_t wdata = 0;
  std::uint8_t wstrb = 0;  ///< low 4 bits; ignored for reads
  std::uint32_t tag = 0;   ///< opaque to the memory, returned on the response
};

/// Response to a WordReq (writes are acknowledged too, for B generation).
struct WordResp {
  std::uint32_t rdata = 0;
  std::uint32_t tag = 0;
  bool was_write = false;
  /// The access faulted: a read returned poisoned data (uncorrectable), a
  /// write was dropped before reaching the array. Converters surface this
  /// as SLVERR on the owning burst's R/B response.
  bool error = false;
};

/// One request/response port pair. Owned by the memory.
struct WordPort {
  sim::Fifo<WordReq> req;
  sim::Fifo<WordResp> resp;

  WordPort(sim::Kernel& k, std::size_t req_depth, std::size_t resp_depth,
           sim::Cycle resp_latency)
      : req(k, req_depth, 1), resp(k, resp_depth, resp_latency) {}
};

/// Abstract n-port word memory (banked or ideal).
class WordMemory {
 public:
  virtual ~WordMemory() = default;
  virtual unsigned num_ports() const = 0;
  virtual WordPort& port(unsigned i) = 0;
};

}  // namespace axipack::mem
