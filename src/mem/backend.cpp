#include "mem/backend.hpp"

#include <cstdio>
#include <cstdlib>

namespace axipack::mem {

BankedBackend::BankedBackend(sim::Kernel& k, BackingStore& store,
                             const MemoryBackendConfig& cfg) {
  BankedMemoryConfig mc;
  mc.num_ports = cfg.num_ports;
  mc.num_banks = cfg.num_banks;
  mc.sram_latency = cfg.latency;
  mc.req_depth = cfg.req_depth;
  mc.resp_depth = cfg.resp_depth;
  memory_ = std::make_unique<BankedMemory>(k, store, mc);
}

MemoryBackendStats BankedBackend::stats() const {
  MemoryBackendStats s;
  s.grants = memory_->xbar().total_grants();
  s.conflict_losses = memory_->xbar().total_conflict_losses();
  return s;
}

DramBackend::DramBackend(sim::Kernel& k, BackingStore& store,
                         const MemoryBackendConfig& cfg) {
  DramMemoryConfig mc;
  mc.num_ports = cfg.num_ports;
  mc.req_depth = cfg.req_depth;
  mc.resp_depth = cfg.resp_depth;
  mc.sched_window = cfg.dram_sched_window;
  mc.starve_cap = cfg.dram_starve_cap;
  mc.timing = cfg.dram;
  mc.channels = cfg.channels;
  mc.channel_granule_words = cfg.channel_granule_bytes / kWordBytes;
  memory_ = std::make_unique<DramMemory>(k, store, mc);
}

MemoryBackendStats DramBackend::stats() const {
  const DramStats& d = memory_->stats();
  MemoryBackendStats s;
  s.grants = d.grants;
  s.conflict_losses = d.conflict_losses;
  s.row_hits = d.row_hits;
  s.row_misses = d.row_misses;
  s.refresh_stall_cycles = d.refresh_stall_cycles;
  s.row_batch_defer_cycles = d.batch_defer_cycles;
  s.row_starved_grants = d.starved_grants;
  return s;
}

IdealBackend::IdealBackend(sim::Kernel& k, BackingStore& store,
                           const MemoryBackendConfig& cfg) {
  IdealMemoryConfig mc;
  mc.num_ports = cfg.num_ports;
  mc.latency = cfg.latency;
  mc.req_depth = cfg.req_depth;
  mc.resp_depth = cfg.resp_depth;
  memory_ = std::make_unique<IdealMemory>(k, store, mc);
}

MemoryBackendStats IdealBackend::stats() const {
  // Conflict-free: every request is granted, nothing is lost. Grants are not
  // tracked by IdealMemory, so report zero activity.
  return MemoryBackendStats{};
}

BackendRegistry::BackendRegistry() {
  add("banked", [](sim::Kernel& k, BackingStore& store,
                   const MemoryBackendConfig& cfg) {
    return std::unique_ptr<MemoryBackend>(new BankedBackend(k, store, cfg));
  });
  add("ideal", [](sim::Kernel& k, BackingStore& store,
                  const MemoryBackendConfig& cfg) {
    return std::unique_ptr<MemoryBackend>(new IdealBackend(k, store, cfg));
  });
  add("dram", [](sim::Kernel& k, BackingStore& store,
                 const MemoryBackendConfig& cfg) {
    return std::unique_ptr<MemoryBackend>(new DramBackend(k, store, cfg));
  });
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::add(const std::string& name, BackendFactory factory) {
  for (auto& [key, value] : factories_) {
    if (key == name) {
      value = std::move(factory);
      return;
    }
  }
  factories_.emplace_back(name, std::move(factory));
}

bool BackendRegistry::contains(const std::string& name) const {
  for (const auto& [key, value] : factories_) {
    if (key == name) return true;
  }
  return false;
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, value] : factories_) out.push_back(key);
  return out;
}

std::unique_ptr<MemoryBackend> BackendRegistry::create(
    sim::Kernel& k, BackingStore& store,
    const MemoryBackendConfig& cfg) const {
  for (const auto& [key, factory] : factories_) {
    if (key == cfg.name) return factory(k, store, cfg);
  }
  // An unknown backend name must never yield a null endpoint the system
  // wiring would dereference: fail loudly even in assert-free builds.
  std::fprintf(stderr, "unknown memory backend \"%s\"; registered: ",
               cfg.name.c_str());
  for (const auto& [key, factory] : factories_) {
    std::fprintf(stderr, "%s ", key.c_str());
  }
  std::fprintf(stderr, "\n");
  std::abort();
}

}  // namespace axipack::mem
