// Pluggable memory-backend layer.
//
// A MemoryBackend owns the word-memory endpoint a system's AXI-Pack adapter
// talks to and exposes backend-agnostic activity statistics, so systems can
// swap the memory model without touching the fabric or the adapter.
// Backends are created by name through the BackendRegistry, which ships
// with "banked" (the paper's on-chip SRAM), "ideal" (conflict-free) and
// "dram" (cycle-level DRAM timing) and accepts project-local registrations.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/backing_store.hpp"
#include "mem/banked_memory.hpp"
#include "mem/dram_memory.hpp"
#include "mem/ideal_memory.hpp"
#include "mem/word.hpp"
#include "sim/kernel.hpp"

namespace axipack::mem {

/// Backend-agnostic construction parameters. Fields a backend does not use
/// (e.g. num_banks on "ideal", the dram timing block on "banked") are
/// ignored by it.
struct MemoryBackendConfig {
  std::string name = "banked";   ///< registry key
  unsigned num_ports = 8;        ///< word ports (= bus_bytes / 4)
  unsigned num_banks = 17;       ///< banked only
  sim::Cycle latency = 1;        ///< access latency (SRAM or ideal)
  std::size_t req_depth = 2;     ///< per-port request FIFO depth
  std::size_t resp_depth = 64;   ///< per-port response FIFO depth
  /// "dram" only: bank organization, address-mapping policy and the core
  /// timing set. The derived data latencies are
  ///   row hit   tCAS                 (open-row column access)
  ///   closed    tRCD + tCAS          (activate first, e.g. after refresh)
  ///   row miss  tRP + tRCD + tCAS    (precharge, activate, then access)
  /// and every tREFI cycles an all-bank refresh blocks activates for tRFC
  /// (tREFI = 0 disables refresh). See dram_timing.hpp for the field-level
  /// documentation and defaults.
  DramTimingConfig dram;
  /// "dram" only: row-aware batching scheduler. The per-port lookahead
  /// window (1 = head-only, no batching) and the starvation cap bounding
  /// how long a timing-legal row miss may be deferred for pending same-row
  /// requests (0 = no batching). See DramMemoryConfig; the effective
  /// window is bounded by req_depth, so deepen both together.
  std::size_t dram_sched_window = 32;
  sim::Cycle dram_starve_cap = 48;
  /// Channel-interleave geometry of the surrounding system (1 = the
  /// single-channel identity). "dram" compacts the channel-select address
  /// bits out of its row/bank decomposition so per-channel row locality
  /// survives interleaving; "banked" (17 prime banks) and "ideal" decode
  /// absolute addresses and ignore these.
  unsigned channels = 1;
  std::uint64_t channel_granule_bytes = 4096;
};

/// Activity counters every backend can report; backends without a concept
/// of conflicts (or of row buffers) report zeros for the fields they do not
/// track.
struct MemoryBackendStats {
  std::uint64_t grants = 0;
  std::uint64_t conflict_losses = 0;
  std::uint64_t row_hits = 0;             ///< dram only
  std::uint64_t row_misses = 0;           ///< dram only (activates)
  std::uint64_t refresh_stall_cycles = 0; ///< dram only
  std::uint64_t row_batch_defer_cycles = 0;  ///< dram only (row batching)
  std::uint64_t row_starved_grants = 0;      ///< dram only (cap overrides)
};

/// One memory endpoint behind an adapter: the word memory plus uniform
/// introspection. Owns the underlying memory model.
class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;
  virtual const std::string& name() const = 0;
  virtual WordMemory& word_memory() = 0;
  virtual MemoryBackendStats stats() const = 0;
};

/// The paper's banked on-chip SRAM (BASE/PACK endpoint).
class BankedBackend final : public MemoryBackend {
 public:
  BankedBackend(sim::Kernel& k, BackingStore& store,
                const MemoryBackendConfig& cfg);
  const std::string& name() const override { return name_; }
  WordMemory& word_memory() override { return *memory_; }
  MemoryBackendStats stats() const override;
  const BankedMemory& banked() const { return *memory_; }

 private:
  std::string name_ = "banked";
  std::unique_ptr<BankedMemory> memory_;
};

/// Cycle-level DRAM timing model (off-chip endpoint; see dram_memory.hpp).
class DramBackend final : public MemoryBackend {
 public:
  DramBackend(sim::Kernel& k, BackingStore& store,
              const MemoryBackendConfig& cfg);
  const std::string& name() const override { return name_; }
  WordMemory& word_memory() override { return *memory_; }
  MemoryBackendStats stats() const override;
  DramMemory& dram() { return *memory_; }
  const DramMemory& dram() const { return *memory_; }

 private:
  std::string name_ = "dram";
  std::unique_ptr<DramMemory> memory_;
};

/// Conflict-free word memory (the Fig. 5 "ideal bank count" endpoint).
class IdealBackend final : public MemoryBackend {
 public:
  IdealBackend(sim::Kernel& k, BackingStore& store,
               const MemoryBackendConfig& cfg);
  const std::string& name() const override { return name_; }
  WordMemory& word_memory() override { return *memory_; }
  MemoryBackendStats stats() const override;

 private:
  std::string name_ = "ideal";
  std::unique_ptr<IdealMemory> memory_;
};

using BackendFactory = std::function<std::unique_ptr<MemoryBackend>(
    sim::Kernel&, BackingStore&, const MemoryBackendConfig&)>;

/// Name -> factory map for memory backends. `instance()` comes pre-loaded
/// with the built-in "banked" and "ideal" backends.
class BackendRegistry {
 public:
  static BackendRegistry& instance();

  /// Registers (or replaces) a factory under `name`.
  void add(const std::string& name, BackendFactory factory);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Builds the backend registered under `cfg.name`; asserts it exists.
  std::unique_ptr<MemoryBackend> create(sim::Kernel& k, BackingStore& store,
                                        const MemoryBackendConfig& cfg) const;

 private:
  BackendRegistry();
  std::vector<std::pair<std::string, BackendFactory>> factories_;
};

}  // namespace axipack::mem
