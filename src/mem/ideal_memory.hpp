// Conflict-free word memory: every port is served every cycle. Used as the
// "ideal" bank count in the Fig. 5 sensitivity sweeps, giving the adapter an
// upper bound unconstrained by banking.
#pragma once

#include <memory>
#include <vector>

#include "mem/backing_store.hpp"
#include "mem/word.hpp"
#include "sim/kernel.hpp"

namespace axipack::mem {

struct IdealMemoryConfig {
  unsigned num_ports = 8;
  sim::Cycle latency = 1;
  std::size_t req_depth = 2;
  std::size_t resp_depth = 64;
};

class IdealMemory final : public WordMemory, public sim::Component {
 public:
  IdealMemory(sim::Kernel& k, BackingStore& store,
              const IdealMemoryConfig& cfg);

  unsigned num_ports() const override {
    return static_cast<unsigned>(ports_.size());
  }
  WordPort& port(unsigned i) override { return *ports_[i]; }

  void tick() override;
  /// Pure request server: all pending work sits in subscribed request Fifos
  /// (the latency lives on the response Fifos).
  bool quiescent() const override { return true; }

 private:
  BackingStore& store_;
  std::vector<std::unique_ptr<WordPort>> ports_;
};

}  // namespace axipack::mem
