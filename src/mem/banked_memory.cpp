#include "mem/banked_memory.hpp"

namespace axipack::mem {

BankedMemory::BankedMemory(sim::Kernel& k, BackingStore& store,
                           const BankedMemoryConfig& cfg) {
  ports_.reserve(cfg.num_ports);
  std::vector<WordPort*> raw;
  for (unsigned i = 0; i < cfg.num_ports; ++i) {
    ports_.push_back(std::make_unique<WordPort>(k, cfg.req_depth,
                                                cfg.resp_depth,
                                                cfg.sram_latency));
    raw.push_back(ports_.back().get());
  }
  xbar_ = std::make_unique<BankXbar>(k, store, std::move(raw), cfg.num_banks);
}

}  // namespace axipack::mem
