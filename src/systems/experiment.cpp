#include "systems/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "mem/backend.hpp"
#include "systems/sweep.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace axipack::sys {

namespace {

/// Compact decimal rendering for numeric axis labels and metric cells:
/// integers print without a fraction, everything else as %.4g.
std::string fmt_num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

/// Row key for the baseline join: coord labels joined on a separator that
/// cannot appear in them.
std::string coord_key(
    const std::vector<std::pair<std::string, std::string>>& coords) {
  std::string key;
  for (const auto& [axis, label] : coords) {
    key += label;
    key += '\x1f';
  }
  return key;
}

std::string csv_cell(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Metric keys in first-appearance order across rows (each row's map is
/// already alphabetical; cross-row order follows the first row that
/// reports the key).
std::vector<std::string> metric_keys(const std::vector<ResultRow>& rows) {
  std::vector<std::string> keys;
  for (const ResultRow& row : rows) {
    for (const auto& [key, value] : row.metrics) {
      (void)value;
      if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
        keys.push_back(key);
      }
    }
  }
  return keys;
}

}  // namespace

// ----------------------------------------------------------- AxisValue

AxisValue AxisValue::scenario(std::string name) {
  AxisValue v;
  v.label = name;
  v.shape = [name = std::move(name)](PointDraft& d) { d.scenario = name; };
  return v;
}

AxisValue AxisValue::system(SystemKind kind) {
  AxisValue v;
  v.label = system_name(kind);
  v.shape = [kind](PointDraft& d) { d.kind = kind; };
  return v;
}

AxisValue AxisValue::kernel(wl::KernelKind k) {
  AxisValue v;
  v.label = wl::kernel_name(k);
  v.shape = [k](PointDraft& d) { d.kernel = k; };
  return v;
}

AxisValue AxisValue::dataflow(wl::Dataflow df) {
  AxisValue v;
  v.label = df == wl::Dataflow::rowwise ? "row-wise" : "col-wise";
  v.patch = [df](wl::WorkloadConfig& c) { c.dataflow = df; };
  return v;
}

AxisValue AxisValue::bus_bits(unsigned bits) {
  AxisValue v;
  v.label = std::to_string(bits);
  v.shape = [bits](PointDraft& d) { d.bus_bits = bits; };
  return v;
}

AxisValue AxisValue::param(const std::string& key, double value) {
  AxisValue v;
  v.label = fmt_num(value);
  v.shape = [key, value](PointDraft& d) { d.params[key] = value; };
  return v;
}

AxisValue AxisValue::config(std::string label,
                            std::function<void(wl::WorkloadConfig&)> patch) {
  AxisValue v;
  v.label = std::move(label);
  v.patch = std::move(patch);
  return v;
}

AxisValue AxisValue::shaped(std::string label,
                            std::function<void(PointDraft&)> shape) {
  AxisValue v;
  v.label = std::move(label);
  v.shape = std::move(shape);
  return v;
}

// ----------------------------------------------------------- PointDraft

double PointDraft::param(const std::string& key) const {
  const auto it = params.find(key);
  if (it == params.end()) {
    std::fprintf(stderr,
                 "PointDraft::param: no parameter \"%s\" — is the axis "
                 "that sets it ordered before the one reading it?\n",
                 key.c_str());
    std::abort();
  }
  return it->second;
}

// ----------------------------------------------------------- GridPoint

const std::string& GridPoint::coord(const std::string& axis) const {
  for (const auto& [name, label] : coords) {
    if (name == axis) return label;
  }
  std::fprintf(stderr, "GridPoint::coord: no axis \"%s\"\n", axis.c_str());
  std::abort();
}

double GridPoint::param(const std::string& key) const {
  const auto it = params.find(key);
  if (it == params.end()) {
    std::fprintf(stderr, "GridPoint::param: no parameter \"%s\"\n",
                 key.c_str());
    std::abort();
  }
  return it->second;
}

WorkloadJob GridPoint::job() const {
  WorkloadJob job;
  job.scenario = scenario;
  job.cfg = cfg;
  if (!builder_patches.empty()) {
    job.builder_patch = [patches = builder_patches](SystemBuilder& b) {
      for (const auto& patch : patches) patch(b);
    };
  }
  return job;
}

// ------------------------------------------------------ ExperimentSpec

ExperimentSpec& ExperimentSpec::axis(std::string name,
                                     std::vector<AxisValue> values) {
  if (values.empty()) {
    std::fprintf(stderr, "ExperimentSpec \"%s\": axis \"%s\" has no values\n",
                 name_.c_str(), name.c_str());
    std::abort();
  }
  axes_.push_back({std::move(name), std::move(values)});
  return *this;
}

ExperimentSpec& ExperimentSpec::systems_axis(std::vector<SystemKind> kinds) {
  std::vector<AxisValue> values;
  for (const SystemKind kind : kinds) values.push_back(AxisValue::system(kind));
  return axis("system", std::move(values));
}

ExperimentSpec& ExperimentSpec::scenarios_axis(
    std::string name, std::vector<std::string> scenarios) {
  std::vector<AxisValue> values;
  for (std::string& s : scenarios) {
    values.push_back(AxisValue::scenario(std::move(s)));
  }
  return axis(std::move(name), std::move(values));
}

ExperimentSpec& ExperimentSpec::kernels_axis(
    std::vector<wl::KernelKind> kernels) {
  std::vector<AxisValue> values;
  for (const wl::KernelKind k : kernels) values.push_back(AxisValue::kernel(k));
  return axis("kernel", std::move(values));
}

ExperimentSpec& ExperimentSpec::param_axis(std::string name,
                                           const std::string& key,
                                           std::vector<double> values) {
  std::vector<AxisValue> axis_values;
  for (const double v : values) axis_values.push_back(AxisValue::param(key, v));
  return axis(std::move(name), std::move(axis_values));
}

ExperimentSpec& ExperimentSpec::configure(
    std::function<void(wl::WorkloadConfig&)> patch) {
  configure_ = std::move(patch);
  return *this;
}

ExperimentSpec& ExperimentSpec::baseline(std::string axis,
                                         std::string label) {
  baseline_ = {std::move(axis), std::move(label)};
  return *this;
}

ExperimentSpec& ExperimentSpec::quick(bool on) {
  quick_ = on;
  return *this;
}

ExperimentSpec& ExperimentSpec::filter(std::string substring) {
  filter_ = std::move(substring);
  return *this;
}

ExperimentSpec& ExperimentSpec::threads(unsigned n) {
  threads_ = n;
  return *this;
}

ExperimentSpec& ExperimentSpec::runner(
    std::function<PointResult(const GridPoint&)> fn) {
  runner_ = std::move(fn);
  return *this;
}

std::vector<GridPoint> ExperimentSpec::expand() const {
  if (axes_.empty()) {
    std::fprintf(stderr, "ExperimentSpec \"%s\": no axes\n", name_.c_str());
    std::abort();
  }
  if (baseline_) {
    bool found = false;
    for (const Axis& axis : axes_) {
      if (axis.name != baseline_->first) continue;
      for (const AxisValue& v : axis.values) {
        found = found || v.label == baseline_->second;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "ExperimentSpec \"%s\": baseline %s=%s names no axis "
                   "value\n",
                   name_.c_str(), baseline_->first.c_str(),
                   baseline_->second.c_str());
      std::abort();
    }
  }

  std::size_t total = 1;
  for (const Axis& axis : axes_) total *= axis.values.size();

  std::vector<GridPoint> points;
  points.reserve(total);
  std::vector<std::size_t> idx(axes_.size(), 0);
  for (std::size_t flat = 0; flat < total; ++flat) {
    // Decode row-major: first axis outermost (slowest).
    std::size_t rem = flat;
    for (std::size_t a = axes_.size(); a-- > 0;) {
      idx[a] = rem % axes_[a].values.size();
      rem /= axes_[a].values.size();
    }

    PointDraft draft;
    GridPoint point;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      const AxisValue& value = axes_[a].values[idx[a]];
      point.coords.emplace_back(axes_[a].name, value.label);
      if (value.shape) value.shape(draft);
    }
    point.scenario = draft.scenario.empty()
                         ? scenario_name(draft.kind, draft.bus_bits,
                                         draft.banks)
                         : draft.scenario;
    point.kernel = draft.kernel;
    point.params = std::move(draft.params);
    point.builder_patches = std::move(draft.builder_patches);
    point.quick = quick_;

    // Plan against the point's actual builder — patches included, so the
    // planner sees the resolved memory backend.
    SystemBuilder builder =
        ScenarioRegistry::instance().builder(point.scenario);
    for (const auto& patch : point.builder_patches) patch(builder);
    point.cfg = plan_workload(point.kernel, builder);
    if (configure_) configure_(point.cfg);
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      const AxisValue& value = axes_[a].values[idx[a]];
      if (value.patch) value.patch(point.cfg);
    }
    if (quick_) {
      point.cfg.n = std::min(point.cfg.n, 48u);
      point.cfg.nnz_per_row = std::min(point.cfg.nnz_per_row, 8u);
      point.cfg.iterations = std::min(point.cfg.iterations, 1u);
    }
    points.push_back(std::move(point));
  }

  if (filter_.empty()) return points;

  // Keep points with a matching coord label, plus the baseline partners
  // kept points join against.
  std::vector<bool> keep(points.size(), false);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const auto& [axis, label] : points[i].coords) {
      (void)axis;
      if (label.find(filter_) != std::string::npos) keep[i] = true;
    }
  }
  if (baseline_) {
    std::map<std::string, std::size_t> by_key;
    for (std::size_t i = 0; i < points.size(); ++i) {
      by_key[coord_key(points[i].coords)] = i;
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (!keep[i]) continue;
      auto partner = points[i].coords;
      for (auto& [axis, label] : partner) {
        if (axis == baseline_->first) label = baseline_->second;
      }
      const auto it = by_key.find(coord_key(partner));
      if (it != by_key.end()) keep[it->second] = true;
    }
  }
  std::vector<GridPoint> kept;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (keep[i]) kept.push_back(std::move(points[i]));
  }
  return kept;
}

ResultSet ExperimentSpec::run() const {
  const std::vector<GridPoint> points = expand();
  std::vector<PointResult> outcomes(points.size());
  if (runner_) {
    // Pre-warm the process-wide registries so worker threads only read.
    (void)ScenarioRegistry::instance();
    (void)mem::BackendRegistry::instance();
    SweepRunner(threads_).run_indexed(points.size(), [&](std::size_t i) {
      outcomes[i] = runner_(points[i]);
    });
  } else {
    std::vector<WorkloadJob> jobs;
    jobs.reserve(points.size());
    for (const GridPoint& point : points) jobs.push_back(point.job());
    std::vector<RunResult> runs = run_workloads(jobs, threads_);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      outcomes[i].run = std::move(runs[i]);
    }
  }

  ResultSet set;
  set.name_ = name_;
  set.axes_ = axes_;
  set.baseline_ = baseline_;
  set.rows_.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ResultRow row;
    row.point = points[i];
    row.run = std::move(outcomes[i].run);
    row.metrics = std::move(outcomes[i].metrics);
    set.has_runs_ = set.has_runs_ || row.run.cycles > 0;
    set.has_row_stats_ =
        set.has_row_stats_ || row.run.row_hits + row.run.row_misses > 0;
    set.rows_.push_back(std::move(row));
  }

  if (baseline_) {
    std::map<std::string, std::size_t> by_key;
    for (std::size_t i = 0; i < set.rows_.size(); ++i) {
      by_key[coord_key(set.rows_[i].point.coords)] = i;
    }
    for (ResultRow& row : set.rows_) {
      auto partner = row.point.coords;
      for (auto& [axis, label] : partner) {
        if (axis == baseline_->first) label = baseline_->second;
      }
      const auto it = by_key.find(coord_key(partner));
      if (it == by_key.end()) continue;
      const RunResult& base = set.rows_[it->second].run;
      if (base.cycles == 0 || row.run.cycles == 0) continue;
      row.speedup = static_cast<double>(base.cycles) /
                    static_cast<double>(row.run.cycles);
    }
  }
  return set;
}

// ------------------------------------------------------------ ResultSet

bool ResultSet::all_correct() const {
  for (const ResultRow& row : rows_) {
    if (row.run.cycles > 0 && !row.run.correct) return false;
  }
  return true;
}

const ResultRow* ResultSet::find(
    std::initializer_list<std::pair<std::string, std::string>> key) const {
  for (const ResultRow& row : rows_) {
    bool match = true;
    for (const auto& [axis, label] : key) {
      match = match && row.point.coord(axis) == label;
    }
    if (match) return &row;
  }
  return nullptr;
}

void ResultSet::print_table(std::ostream& os) const {
  const std::vector<std::string> keys = metric_keys(rows_);
  std::vector<std::string> header;
  for (const Axis& axis : axes_) header.push_back(axis.name);
  if (has_runs_) {
    header.push_back("cycles");
    header.push_back("R util");
  }
  if (has_row_stats_) header.push_back("row hit%");
  if (baseline_) header.push_back("speedup");
  for (const std::string& key : keys) header.push_back(key);
  if (has_runs_) header.push_back("ok");

  util::Table table(header);
  for (const ResultRow& row : rows_) {
    table.row();
    for (const auto& [axis, label] : row.point.coords) {
      (void)axis;
      table.cell(label);
    }
    if (has_runs_) {
      table.cell(row.run.cycles);
      table.cell(row.run.cycles > 0 ? util::fmt_pct(row.run.r_util)
                                    : std::string("-"));
    }
    if (has_row_stats_) {
      table.cell(util::fmt_pct(row.run.row_hit_ratio()));
    }
    if (baseline_) {
      table.cell(row.speedup ? util::fmt(*row.speedup, 2) + "x"
                             : std::string("-"));
    }
    for (const std::string& key : keys) {
      const auto it = row.metrics.find(key);
      table.cell(it == row.metrics.end() ? std::string("-")
                                         : fmt_num(it->second));
    }
    if (has_runs_) {
      table.cell(row.run.cycles == 0 ? "-"
                 : row.run.correct   ? "yes"
                                     : "NO");
    }
  }
  table.print(os);
}

void ResultSet::write_csv(std::ostream& os) const {
  const std::vector<std::string> keys = metric_keys(rows_);
  for (const Axis& axis : axes_) os << csv_cell(axis.name) << ',';
  // "planned_kernel", not "kernel": specs built with kernels_axis already
  // have a "kernel" axis column, and duplicate CSV headers are ambiguous.
  os << "scenario,planned_kernel,cycles,r_util,r_util_no_idx,w_util,"
        "row_hit_ratio,speedup,correct";
  for (const std::string& key : keys) os << ',' << csv_cell(key);
  os << '\n';
  for (const ResultRow& row : rows_) {
    for (const auto& [axis, label] : row.point.coords) {
      (void)axis;
      os << csv_cell(label) << ',';
    }
    os << csv_cell(row.point.scenario) << ','
       << wl::kernel_name(row.point.kernel) << ',' << row.run.cycles << ','
       << util::json_number(row.run.r_util) << ','
       << util::json_number(row.run.r_util_no_idx) << ','
       << util::json_number(row.run.w_util) << ','
       << util::json_number(row.run.row_hit_ratio()) << ',';
    if (row.speedup) os << util::json_number(*row.speedup);
    os << ',' << (row.run.correct ? "true" : "false");
    for (const std::string& key : keys) {
      os << ',';
      const auto it = row.metrics.find(key);
      if (it != row.metrics.end()) os << util::json_number(it->second);
    }
    os << '\n';
  }
}

void ResultSet::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.key("experiment").value(name_);
  w.key("axes").begin_array();
  for (const Axis& axis : axes_) {
    w.begin_object();
    w.key("name").value(axis.name);
    w.key("values").begin_array();
    for (const AxisValue& value : axis.values) w.value(value.label);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("baseline");
  if (baseline_) {
    w.begin_object();
    w.key("axis").value(baseline_->first);
    w.key("value").value(baseline_->second);
    w.end_object();
  } else {
    w.null();
  }
  w.key("points").begin_array();
  for (const ResultRow& row : rows_) {
    w.begin_object();
    w.key("coords").begin_object();
    for (const auto& [axis, label] : row.point.coords) {
      w.key(axis).value(label);
    }
    w.end_object();
    w.key("scenario").value(row.point.scenario);
    w.key("kernel").value(wl::kernel_name(row.point.kernel));
    w.key("speedup");
    if (row.speedup) {
      w.value(*row.speedup);
    } else {
      w.null();
    }
    w.key("metrics").begin_object();
    for (const auto& [key, value] : row.metrics) w.key(key).value(value);
    w.end_object();
    w.key("run").raw(row.run.to_json());
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string ResultSet::to_json() const {
  util::JsonWriter w;
  write_json(w);
  return w.str();
}

}  // namespace axipack::sys
