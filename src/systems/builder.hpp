// SystemBuilder: fluent construction of evaluation SoCs.
//
// A system is a set of masters (vector processors, DMA engines, or raw
// externally-driven AXI ports) attached to one memory endpoint — an
// AXI-Pack adapter in front of a pluggable memory backend — through an
// auto-wired fabric:
//
//   * >1 AXI master            -> crossbar between masters and the adapter
//   * monitor(true) (default)  -> monitored link + protocol checker on the
//                                 hop in front of the adapter
//   * monitor(false), 1 master -> the master port feeds the adapter
//                                 directly (the measurement fabrics used by
//                                 the sensitivity harness and quickstart)
//   * processors in VlsuMode::ideal take no AXI port; a system with no AXI
//     masters builds no fabric at all (the paper's IDEAL SoC).
//
// Topology parameters (bus width, banks, queue depths) are set once on the
// builder and propagated consistently into every component, replacing the
// old fixed proc->xbar->link->adapter pipeline wired inside System.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dma/engine.hpp"
#include "mem/backend.hpp"
#include "pack/adapter.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "traffic/driver.hpp"
#include "vproc/context.hpp"

namespace axipack::sys {

class System;

/// Handle to one attached master, returned by the attach_* calls and used
/// to address the master on the built System.
using MasterId = unsigned;

class SystemBuilder {
 public:
  // ---- fabric-wide parameters ------------------------------------------
  /// AXI data-bus width in bits (64, 128 or 256). Lane counts, word-port
  /// counts and per-master widths are derived from it at build time.
  SystemBuilder& bus_bits(unsigned bits);
  /// Simulated memory window (base address and size in bytes).
  SystemBuilder& mem_region(std::uint64_t base, std::uint64_t size);
  /// Adapter decoupling-queue depth (see SystemConfig for the RTL mapping).
  SystemBuilder& queue_depth(unsigned depth);
  /// Monitored link + protocol checker in front of the adapter (default on).
  SystemBuilder& monitor(bool on);
  /// Builds the system on a naive (ungated) kernel: every component ticks
  /// every cycle. Results are cycle-identical to the default gated kernel;
  /// used by the equivalence tests and as the perf-harness baseline.
  SystemBuilder& naive_kernel(bool on);
  /// Memory channels behind an address-interleaving ChannelRouter per
  /// master: each channel owns a full fabric slice (crossbar, monitored
  /// link, adapter, backend) and `granule_bytes` decides the interleave
  /// granularity (XOR-folded channel selection, composable with the DRAM
  /// mappings). Both values must be powers of two — rejected loudly
  /// otherwise, like the capacity constraints at build time (granule at
  /// least one bus beat; mem size divisible by channels * granule).
  /// channels(1) is the single-endpoint system, bit- and cycle-identical
  /// to builds that never call this.
  SystemBuilder& channels(unsigned n, std::uint64_t granule_bytes = 4096);

  // ---- memory backend --------------------------------------------------
  /// Selects a registered backend by name ("banked", "ideal", ...),
  /// keeping the other backend parameters as previously set.
  SystemBuilder& memory(const std::string& backend_name);
  /// Full backend control; `num_ports` is still derived from the bus
  /// width. Replaces the ENTIRE backend configuration, including any
  /// earlier banks()/sram_latency() calls — call those afterwards to
  /// override individual fields of `cfg`.
  SystemBuilder& memory(const mem::MemoryBackendConfig& cfg);
  SystemBuilder& banks(unsigned n);
  SystemBuilder& sram_latency(sim::Cycle cycles);
  /// Overrides the "dram" backend's bank organization, mapping policy and
  /// timing set (ignored by the other backends). Does not change which
  /// backend is selected — pair with memory("dram").
  SystemBuilder& dram_timing(const mem::DramTimingConfig& t);
  /// "dram" only: row-aware batching scheduler — per-port lookahead window
  /// (1 = head-only scheduling) and starvation cap in cycles (0 disables
  /// batching too). Window 0 is rejected loudly.
  SystemBuilder& dram_sched(std::size_t window, sim::Cycle starve_cap);
  /// Explicit per-port memory FIFO depths (all backends). Zero depths are
  /// rejected loudly; setting these disables the DRAM backend's automatic
  /// latency-matched deepening at build time.
  SystemBuilder& mem_queue_depths(std::size_t req_depth,
                                  std::size_t resp_depth);

  // ---- adapter tuning --------------------------------------------------
  /// Overrides the adapter configuration; `bus_bytes` is still derived from
  /// the bus width. Also fixes the decoupling-queue depth (overrides
  /// queue_depth()).
  SystemBuilder& adapter(const pack::AdapterConfig& cfg);
  /// Near-memory index coalescing unit on the indirect read path: an
  /// MSHR-style pending table of `entries` slots plus a row/bank grouping
  /// window of `window` requests, with the index stage moved onto parallel
  /// lanes. Zero entries/window with enable=true are rejected loudly.
  /// Unlike adapter(), this composes with the backend-derived adapter
  /// defaults (deep queues for "dram") instead of replacing them.
  SystemBuilder& coalescer(bool enable, std::size_t entries = 512,
                           std::size_t window = 16);

  // ---- robustness ------------------------------------------------------
  /// Deterministic fault injection across the fabric: the built system owns
  /// a FaultPlan wired into the monitored link, the pack converters and the
  /// DRAM backend. Calling this with an all-zero-rate config still attaches
  /// a plan (so tests can pin faults via FaultPlan::force); not calling it
  /// attaches nothing and the system is bit- and cycle-identical to one
  /// built before this subsystem existed.
  SystemBuilder& faults(const sim::FaultConfig& cfg);
  /// Master-side retry/watchdog/breaker knobs, applied to every attached
  /// processor and DMA engine at build time (overriding any RetryConfig
  /// set on an individual master's own config).
  SystemBuilder& retry(const sim::RetryConfig& cfg);

  // ---- open-loop traffic -----------------------------------------------
  /// Open-loop arrival-process load stream against a scatter-gather ring
  /// DMA master (see traffic/driver.hpp). The built system owns an
  /// OpenLoopDriver whose ring/pool/data footprint is carved from the TOP
  /// of the memory region; drive it with System::run_open_loop. If no
  /// sg_dma() master was attached yet, one is attached here with
  /// `cfg.dma`. Not calling this builds no driver and the system stays
  /// bit- and cycle-identical to one built before this subsystem existed.
  SystemBuilder& traffic(const traffic::TrafficConfig& cfg);
  /// Attaches the scatter-gather ring DMA master the traffic stream will
  /// drive. Call before traffic() to control the engine configuration;
  /// traffic() auto-attaches a default-configured one otherwise.
  MasterId sg_dma(const dma::DmaConfig& cfg = {});

  // ---- masters ---------------------------------------------------------
  /// Vector processor in the given VLSU mode; its lane count and bus width
  /// are derived from the builder's bus. VlsuMode::ideal processors run on
  /// their exclusive ideal memory and take no AXI port.
  MasterId attach_processor(vproc::VlsuMode mode);
  /// Vector processor with explicit tuning; lanes/bus_bytes still derived.
  MasterId attach_processor(const vproc::VProcConfig& cfg);
  /// AXI-Pack DMA engine; its bus width is derived from the builder's bus.
  MasterId attach_dma(const dma::DmaConfig& cfg = {});
  /// Raw master port driven by the caller (measurement harnesses).
  MasterId attach_port(const std::string& name);

  unsigned bus_bytes() const { return bus_bits_ / 8; }
  unsigned num_channels() const { return channels_; }

  // ---- planning introspection ------------------------------------------
  // Read-only views the workload planner (plan_workload) uses to pick the
  // methodology-fastest variant for the system this builder describes.
  /// Registry key of the memory backend the built system will use
  /// ("banked", "ideal", "dram", ...).
  const std::string& memory_backend_name() const { return mem_cfg_.name; }
  /// VLSU mode of the first attached processor master — the one
  /// System::run drives — or disengaged when no processor is attached.
  std::optional<vproc::VlsuMode> primary_vlsu_mode() const {
    for (const MasterSpec& m : masters_) {
      if (m.kind == MasterKind::processor) return m.proc.mode;
    }
    return std::nullopt;
  }

  /// Assembles the system. The builder can be reused (each build creates an
  /// independent system).
  std::unique_ptr<System> build() const;

 private:
  friend class System;

  enum class MasterKind : std::uint8_t { processor, dma, port };

  struct MasterSpec {
    MasterKind kind = MasterKind::port;
    vproc::VProcConfig proc;
    dma::DmaConfig dma;
    std::string name;
  };

  unsigned bus_bits_ = 256;
  std::uint64_t mem_base_ = 0x8000'0000ull;
  std::uint64_t mem_size_ = 96ull << 20;
  unsigned channels_ = 1;
  std::uint64_t channel_granule_ = 4096;
  unsigned queue_depth_ = 8;
  bool monitor_ = true;
  bool naive_kernel_ = false;
  mem::MemoryBackendConfig mem_cfg_;
  bool mem_depths_explicit_ = false;
  pack::AdapterConfig adapter_cfg_;
  bool adapter_explicit_ = false;
  bool coalesce_set_ = false;
  bool coalesce_enable_ = false;
  std::size_t coalesce_entries_ = 512;
  std::size_t coalesce_window_ = 16;
  bool faults_set_ = false;
  sim::FaultConfig fault_cfg_;
  bool retry_set_ = false;
  sim::RetryConfig retry_cfg_;
  bool traffic_set_ = false;
  traffic::TrafficConfig traffic_cfg_;
  int sg_master_ = -1;  ///< index of the sg_dma() master, -1 = none yet
  std::vector<MasterSpec> masters_;
};

}  // namespace axipack::sys
