#include "systems/sensitivity.hpp"

#include <memory>
#include <vector>

#include "axi/burst.hpp"
#include "axi/types.hpp"
#include "systems/builder.hpp"
#include "systems/sweep.hpp"
#include "systems/system.hpp"
#include "util/rng.hpp"

namespace axipack::sys {

namespace {

/// The ideal requestor of §III-E as a gate-safe component: pushes the
/// prepared AR stream (one request per cycle, as AR-channel handshaking
/// allows) and drains/accounts R beats. Quiescent once all requests are
/// out — from then on only R traffic (subscribed) re-activates it.
class StreamRequestor final : public sim::Component {
 public:
  StreamRequestor(sim::Kernel& k, axi::AxiPort& port,
                  std::vector<axi::AxiAr> ars)
      : port_(port), ars_(std::move(ars)) {
    for (const axi::AxiAr& ar : ars_) beats_left_ += ar.beats();
    k.add(*this);
    k.subscribe(*this, port_.r);
  }

  void tick() override {
    if (next_ar_ < ars_.size() && port_.ar.try_push(ars_[next_ar_])) {
      ++next_ar_;
    }
    while (const auto beat = port_.r.try_pop()) {
      payload_bytes_ += beat->useful_bytes;
      --beats_left_;
    }
  }

  bool quiescent() const override { return next_ar_ >= ars_.size(); }

  bool done() const { return beats_left_ == 0; }
  std::uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  axi::AxiPort& port_;
  std::vector<axi::AxiAr> ars_;
  std::size_t next_ar_ = 0;
  std::uint64_t beats_left_ = 0;
  std::uint64_t payload_bytes_ = 0;
};

}  // namespace

SensitivityResult measure_read_utilization(const SensitivityConfig& cfg) {
  constexpr std::uint64_t kBase = 0x8000'0000ull;
  const unsigned elem_bytes = cfg.elem_bits / 8;
  const std::uint64_t epb = cfg.bus_bytes / elem_bytes;
  const std::uint64_t elems_per_burst = epb * cfg.burst_beats;
  const std::uint64_t total_elems = elems_per_burst * cfg.num_bursts;

  // Size the data region to cover the whole stream.
  const std::uint64_t span =
      cfg.indirect
          ? (1ull << 22)
          : elems_per_burst * cfg.num_bursts *
                    static_cast<std::uint64_t>(
                        cfg.stride_elems < 0 ? -cfg.stride_elems
                                             : cfg.stride_elems + 1) *
                    elem_bytes +
                (1u << 16);

  // Bare measurement fabric: one raw requestor port straight into the
  // adapter (no xbar/link hops), banks == 0 selecting the ideal backend.
  SystemBuilder builder;
  builder.bus_bits(cfg.bus_bytes * 8)
      .mem_region(kBase, span + (1ull << 22))
      .monitor(false)
      .naive_kernel(cfg.naive_kernel);
  mem::MemoryBackendConfig mc;
  if (cfg.banks == 0) {
    mc.name = "ideal";
  } else {
    mc.name = "banked";
    mc.num_banks = cfg.banks;
    mc.resp_depth = 256;
  }
  builder.memory(mc);
  pack::AdapterConfig ac;
  ac.queue_depth = cfg.queue_depth;
  ac.resp_fifo_depth = 512;
  ac.idx_window_lines = cfg.idx_window_lines;
  if (cfg.coalesce_entries > 0) {
    ac.coalesce_enable = true;
    ac.coalesce_entries = cfg.coalesce_entries;
    ac.coalesce_window = cfg.coalesce_window;
  }
  builder.adapter(ac);
  const MasterId requestor = builder.attach_port("ideal-requestor");

  std::unique_ptr<System> system = builder.build();
  sim::Kernel& kernel = system->kernel();
  mem::BackingStore& store = system->store();
  axi::AxiPort& port = system->master_port(requestor);

  // Build the burst stream.
  std::vector<axi::AxiAr> ars;
  if (cfg.indirect) {
    // Random indices over the table; index array placed past the table.
    const std::uint64_t table_elems = (1ull << 20) / elem_bytes;
    const std::uint64_t idx_base = kBase + (1ull << 21);
    util::Rng rng(cfg.seed);
    const unsigned ib = cfg.index_bits / 8;
    std::vector<std::uint8_t> raw(total_elems * ib);
    for (std::uint64_t i = 0; i < total_elems; ++i) {
      const std::uint64_t max_idx =
          std::min<std::uint64_t>(table_elems, 1ull << cfg.index_bits);
      const std::uint64_t idx = rng.below(max_idx);
      for (unsigned b = 0; b < ib; ++b) {
        raw[i * ib + b] = static_cast<std::uint8_t>(idx >> (8 * b));
      }
    }
    store.write(idx_base, raw.data(), raw.size());
    ars = axi::split_pack_indirect(kBase, idx_base, cfg.index_bits,
                                   elem_bytes, total_elems, cfg.bus_bytes);
  } else {
    const std::int64_t stride_bytes =
        cfg.stride_elems * static_cast<std::int64_t>(elem_bytes);
    const std::uint64_t start =
        cfg.stride_elems >= 0
            ? kBase
            : kBase + static_cast<std::uint64_t>(-stride_bytes) * total_elems;
    ars = axi::split_pack_strided(start, stride_bytes, elem_bytes, total_elems,
                                  cfg.bus_bytes);
  }

  // Drive bursts back-to-back through the requestor component; the done
  // predicate is a pure observation, so idle stretches fast-forward.
  StreamRequestor driver(kernel, port, std::move(ars));
  kernel.run_until([&] { return driver.done(); }, 50'000'000,
                   sim::Kernel::PredKind::pure);

  SensitivityResult result;
  result.payload_bytes = driver.payload_bytes();
  result.cycles = kernel.now();
  result.r_util = static_cast<double>(result.payload_bytes) /
                  (static_cast<double>(result.cycles) * cfg.bus_bytes);
  result.bank_conflict_losses =
      system->memory_backend()->stats().conflict_losses;
  return result;
}

std::vector<SensitivityResult> measure_read_utilization_many(
    const std::vector<SensitivityConfig>& cfgs, unsigned threads) {
  std::vector<SensitivityResult> results(cfgs.size());
  SweepRunner(threads).run_indexed(cfgs.size(), [&](std::size_t i) {
    results[i] = measure_read_utilization(cfgs[i]);
  });
  return results;
}

double strided_util_avg(unsigned elem_bits, unsigned banks,
                        unsigned bus_bytes, unsigned max_stride) {
  std::vector<SensitivityConfig> cfgs;
  cfgs.reserve(max_stride + 1);
  for (unsigned s = 0; s <= max_stride; ++s) {
    SensitivityConfig cfg;
    cfg.bus_bytes = bus_bytes;
    cfg.banks = banks;
    cfg.elem_bits = elem_bits;
    cfg.indirect = false;
    cfg.stride_elems = static_cast<std::int64_t>(s);
    cfg.num_bursts = 4;  // short steady-state run per stride
    cfgs.push_back(cfg);
  }
  double sum = 0.0;
  for (const SensitivityResult& r : measure_read_utilization_many(cfgs)) {
    sum += r.r_util;
  }
  return sum / (max_stride + 1);
}

}  // namespace axipack::sys
