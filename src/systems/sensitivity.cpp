#include "systems/sensitivity.hpp"

#include <memory>
#include <vector>

#include "axi/burst.hpp"
#include "axi/types.hpp"
#include "mem/backing_store.hpp"
#include "mem/banked_memory.hpp"
#include "mem/ideal_memory.hpp"
#include "pack/adapter.hpp"
#include "sim/kernel.hpp"
#include "util/rng.hpp"

namespace axipack::sys {

SensitivityResult measure_read_utilization(const SensitivityConfig& cfg) {
  constexpr std::uint64_t kBase = 0x8000'0000ull;
  const unsigned elem_bytes = cfg.elem_bits / 8;
  const std::uint64_t epb = cfg.bus_bytes / elem_bytes;
  const std::uint64_t elems_per_burst = epb * cfg.burst_beats;
  const std::uint64_t total_elems = elems_per_burst * cfg.num_bursts;

  sim::Kernel kernel;
  // Size the data region to cover the whole stream.
  const std::uint64_t span =
      cfg.indirect
          ? (1ull << 22)
          : elems_per_burst * cfg.num_bursts *
                    static_cast<std::uint64_t>(
                        cfg.stride_elems < 0 ? -cfg.stride_elems
                                             : cfg.stride_elems + 1) *
                    elem_bytes +
                (1u << 16);
  mem::BackingStore store(kBase, span + (1ull << 22));

  std::unique_ptr<mem::BankedMemory> banked;
  std::unique_ptr<mem::IdealMemory> ideal;
  mem::WordMemory* memory = nullptr;
  if (cfg.banks == 0) {
    mem::IdealMemoryConfig mc;
    mc.num_ports = cfg.bus_bytes / 4;
    ideal = std::make_unique<mem::IdealMemory>(kernel, store, mc);
    memory = ideal.get();
  } else {
    mem::BankedMemoryConfig mc;
    mc.num_ports = cfg.bus_bytes / 4;
    mc.num_banks = cfg.banks;
    mc.resp_depth = 256;
    banked = std::make_unique<mem::BankedMemory>(kernel, store, mc);
    memory = banked.get();
  }

  axi::AxiPort port(kernel, 2, "ideal-requestor");
  pack::AdapterConfig ac;
  ac.bus_bytes = cfg.bus_bytes;
  ac.queue_depth = cfg.queue_depth;
  ac.resp_fifo_depth = 512;
  ac.idx_window_lines = cfg.idx_window_lines;
  pack::AxiPackAdapter adapter(kernel, port, *memory, ac);

  // Build the burst stream.
  std::vector<axi::AxiAr> ars;
  if (cfg.indirect) {
    // Random indices over the table; index array placed past the table.
    const std::uint64_t table_elems = (1ull << 20) / elem_bytes;
    const std::uint64_t idx_base = kBase + (1ull << 21);
    util::Rng rng(cfg.seed);
    const unsigned ib = cfg.index_bits / 8;
    std::vector<std::uint8_t> raw(total_elems * ib);
    for (std::uint64_t i = 0; i < total_elems; ++i) {
      const std::uint64_t max_idx =
          std::min<std::uint64_t>(table_elems, 1ull << cfg.index_bits);
      const std::uint64_t idx = rng.below(max_idx);
      for (unsigned b = 0; b < ib; ++b) {
        raw[i * ib + b] = static_cast<std::uint8_t>(idx >> (8 * b));
      }
    }
    store.write(idx_base, raw.data(), raw.size());
    ars = axi::split_pack_indirect(kBase, idx_base, cfg.index_bits,
                                   elem_bytes, total_elems, cfg.bus_bytes);
  } else {
    const std::int64_t stride_bytes =
        cfg.stride_elems * static_cast<std::int64_t>(elem_bytes);
    const std::uint64_t start =
        cfg.stride_elems >= 0
            ? kBase
            : kBase + static_cast<std::uint64_t>(-stride_bytes) * total_elems;
    ars = axi::split_pack_strided(start, stride_bytes, elem_bytes, total_elems,
                                  cfg.bus_bytes);
  }

  // Drive bursts back-to-back and count payload.
  SensitivityResult result;
  std::size_t next_ar = 0;
  std::uint64_t beats_left = 0;
  for (const auto& ar : ars) beats_left += ar.beats();
  const std::uint64_t start_losses =
      banked ? banked->xbar().total_conflict_losses() : 0;
  kernel.run_until(
      [&] {
        if (next_ar < ars.size() && port.ar.can_push()) {
          port.ar.push(ars[next_ar]);
          ++next_ar;
        }
        while (port.r.can_pop()) {
          const axi::AxiR beat = port.r.pop();
          result.payload_bytes += beat.useful_bytes;
          --beats_left;
        }
        return beats_left == 0;
      },
      50'000'000);
  result.cycles = kernel.now();
  result.r_util = static_cast<double>(result.payload_bytes) /
                  (static_cast<double>(result.cycles) * cfg.bus_bytes);
  if (banked) {
    result.bank_conflict_losses =
        banked->xbar().total_conflict_losses() - start_losses;
  }
  return result;
}

double strided_util_avg(unsigned elem_bits, unsigned banks,
                        unsigned bus_bytes, unsigned max_stride) {
  double sum = 0.0;
  for (unsigned s = 0; s <= max_stride; ++s) {
    SensitivityConfig cfg;
    cfg.bus_bytes = bus_bytes;
    cfg.banks = banks;
    cfg.elem_bits = elem_bits;
    cfg.indirect = false;
    cfg.stride_elems = static_cast<std::int64_t>(s);
    cfg.num_bursts = 4;  // short steady-state run per stride
    sum += measure_read_utilization(cfg).r_util;
  }
  return sum / (max_stride + 1);
}

}  // namespace axipack::sys
