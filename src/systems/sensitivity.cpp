#include "systems/sensitivity.hpp"

#include <memory>
#include <vector>

#include "axi/burst.hpp"
#include "axi/types.hpp"
#include "systems/builder.hpp"
#include "systems/system.hpp"
#include "util/rng.hpp"

namespace axipack::sys {

SensitivityResult measure_read_utilization(const SensitivityConfig& cfg) {
  constexpr std::uint64_t kBase = 0x8000'0000ull;
  const unsigned elem_bytes = cfg.elem_bits / 8;
  const std::uint64_t epb = cfg.bus_bytes / elem_bytes;
  const std::uint64_t elems_per_burst = epb * cfg.burst_beats;
  const std::uint64_t total_elems = elems_per_burst * cfg.num_bursts;

  // Size the data region to cover the whole stream.
  const std::uint64_t span =
      cfg.indirect
          ? (1ull << 22)
          : elems_per_burst * cfg.num_bursts *
                    static_cast<std::uint64_t>(
                        cfg.stride_elems < 0 ? -cfg.stride_elems
                                             : cfg.stride_elems + 1) *
                    elem_bytes +
                (1u << 16);

  // Bare measurement fabric: one raw requestor port straight into the
  // adapter (no xbar/link hops), banks == 0 selecting the ideal backend.
  SystemBuilder builder;
  builder.bus_bits(cfg.bus_bytes * 8)
      .mem_region(kBase, span + (1ull << 22))
      .monitor(false);
  mem::MemoryBackendConfig mc;
  if (cfg.banks == 0) {
    mc.name = "ideal";
  } else {
    mc.name = "banked";
    mc.num_banks = cfg.banks;
    mc.resp_depth = 256;
  }
  builder.memory(mc);
  pack::AdapterConfig ac;
  ac.queue_depth = cfg.queue_depth;
  ac.resp_fifo_depth = 512;
  ac.idx_window_lines = cfg.idx_window_lines;
  builder.adapter(ac);
  const MasterId requestor = builder.attach_port("ideal-requestor");

  std::unique_ptr<System> system = builder.build();
  sim::Kernel& kernel = system->kernel();
  mem::BackingStore& store = system->store();
  axi::AxiPort& port = system->master_port(requestor);

  // Build the burst stream.
  std::vector<axi::AxiAr> ars;
  if (cfg.indirect) {
    // Random indices over the table; index array placed past the table.
    const std::uint64_t table_elems = (1ull << 20) / elem_bytes;
    const std::uint64_t idx_base = kBase + (1ull << 21);
    util::Rng rng(cfg.seed);
    const unsigned ib = cfg.index_bits / 8;
    std::vector<std::uint8_t> raw(total_elems * ib);
    for (std::uint64_t i = 0; i < total_elems; ++i) {
      const std::uint64_t max_idx =
          std::min<std::uint64_t>(table_elems, 1ull << cfg.index_bits);
      const std::uint64_t idx = rng.below(max_idx);
      for (unsigned b = 0; b < ib; ++b) {
        raw[i * ib + b] = static_cast<std::uint8_t>(idx >> (8 * b));
      }
    }
    store.write(idx_base, raw.data(), raw.size());
    ars = axi::split_pack_indirect(kBase, idx_base, cfg.index_bits,
                                   elem_bytes, total_elems, cfg.bus_bytes);
  } else {
    const std::int64_t stride_bytes =
        cfg.stride_elems * static_cast<std::int64_t>(elem_bytes);
    const std::uint64_t start =
        cfg.stride_elems >= 0
            ? kBase
            : kBase + static_cast<std::uint64_t>(-stride_bytes) * total_elems;
    ars = axi::split_pack_strided(start, stride_bytes, elem_bytes, total_elems,
                                  cfg.bus_bytes);
  }

  // Drive bursts back-to-back and count payload.
  SensitivityResult result;
  std::size_t next_ar = 0;
  std::uint64_t beats_left = 0;
  for (const auto& ar : ars) beats_left += ar.beats();
  const std::uint64_t start_losses =
      system->memory_backend()->stats().conflict_losses;
  kernel.run_until(
      [&] {
        if (next_ar < ars.size() && port.ar.can_push()) {
          port.ar.push(ars[next_ar]);
          ++next_ar;
        }
        while (port.r.can_pop()) {
          const axi::AxiR beat = port.r.pop();
          result.payload_bytes += beat.useful_bytes;
          --beats_left;
        }
        return beats_left == 0;
      },
      50'000'000);
  result.cycles = kernel.now();
  result.r_util = static_cast<double>(result.payload_bytes) /
                  (static_cast<double>(result.cycles) * cfg.bus_bytes);
  result.bank_conflict_losses =
      system->memory_backend()->stats().conflict_losses - start_losses;
  return result;
}

double strided_util_avg(unsigned elem_bits, unsigned banks,
                        unsigned bus_bytes, unsigned max_stride) {
  double sum = 0.0;
  for (unsigned s = 0; s <= max_stride; ++s) {
    SensitivityConfig cfg;
    cfg.bus_bytes = bus_bytes;
    cfg.banks = banks;
    cfg.elem_bits = elem_bits;
    cfg.indirect = false;
    cfg.stride_elems = static_cast<std::int64_t>(s);
    cfg.num_bursts = 4;  // short steady-state run per stride
    sum += measure_read_utilization(cfg).r_util;
  }
  return sum / (max_stride + 1);
}

}  // namespace axipack::sys
