#include "systems/scenario.hpp"

#include <cstdio>
#include <cstdlib>

#include "systems/system.hpp"

namespace axipack::sys {

namespace {

SystemBuilder soc_builder(SystemKind kind, unsigned bus_bits,
                          unsigned banks) {
  return SystemConfig::make(kind, bus_bits, banks).to_builder();
}

/// Parses a decimal number from `s` starting at `pos`; advances `pos` past
/// it. Disengaged if no digits are present or the value is implausibly
/// large (guards against silent unsigned wrap-around accepting garbage
/// names like "pack-256-4294967313b").
std::optional<unsigned> parse_number(const std::string& s,
                                     std::size_t& pos) {
  constexpr unsigned kMaxValue = 1'000'000;
  if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') return std::nullopt;
  std::uint64_t value = 0;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(s[pos] - '0');
    if (value > kMaxValue) return std::nullopt;
    ++pos;
  }
  return static_cast<unsigned>(value);
}

/// The retry profile the scenario knobs imply: a small bounded budget with
/// a watchdog generous enough to never fire on legitimate DRAM latency
/// (refresh + row misses stay well under it).
sim::RetryConfig default_retry() {
  sim::RetryConfig rc;
  rc.max_attempts = 4;
  rc.timeout_cycles = 50'000;
  rc.backoff = 16;
  return rc;
}

/// Grows the builder's master list to `total` fabric masters: the SoC's
/// own processor plus extras alternating DMA engine / processor, all
/// matched to the SoC kind (base SoCs get narrow-burst DMA and base-mode
/// processors). Extra masters are left unprogrammed — they contend for the
/// fabric only when a harness drives them — so single-workload runs still
/// drain.
void attach_extra_masters(SystemBuilder& b, SystemKind kind,
                          unsigned total) {
  const bool pack = kind == SystemKind::pack;
  for (unsigned i = 1; i < total; ++i) {
    if (i % 2 == 1) {
      dma::DmaConfig dc;
      dc.use_pack = pack;
      b.attach_dma(dc);
    } else {
      b.attach_processor(pack ? vproc::VlsuMode::pack : vproc::VlsuMode::base);
    }
  }
}

}  // namespace

std::string scenario_name(SystemKind kind, unsigned bus_bits,
                          unsigned banks) {
  if (kind == SystemKind::ideal) {
    return "ideal-" + std::to_string(bus_bits);
  }
  return std::string(system_name(kind)) + "-" + std::to_string(bus_bits) +
         "-" + std::to_string(banks) + "b";
}

std::optional<SystemBuilder> parse_scenario(const std::string& name,
                                            std::string* error) {
  SystemKind kind;
  std::size_t pos;
  if (name.rfind("base-", 0) == 0) {
    kind = SystemKind::base;
    pos = 5;
  } else if (name.rfind("pack-", 0) == 0) {
    kind = SystemKind::pack;
    pos = 5;
  } else if (name.rfind("ideal-", 0) == 0) {
    kind = SystemKind::ideal;
    pos = 6;
  } else {
    return std::nullopt;
  }

  const auto bus_bits = parse_number(name, pos);
  if (!bus_bits ||
      (*bus_bits != 64 && *bus_bits != 128 && *bus_bits != 256)) {
    return std::nullopt;
  }
  if (kind == SystemKind::ideal) {
    if (pos != name.size()) return std::nullopt;
    return soc_builder(kind, *bus_bits, 17);
  }
  if (pos >= name.size() || name[pos] != '-') return std::nullopt;
  ++pos;
  if (name.compare(pos, 4, "dram") == 0) {
    // "{base|pack}-{bits}-dram[-w{W}][-c{C}][-q{Q}][-x{E}][-g{G}]
    //  [-f{F}][-r{R}][-ch{C}][-m{M}]": the paper SoC over the DRAM
    // backend, with optional knobs —
    // w = row-batching per-port lookahead window (1 = head-only),
    // c = row-batching starvation cap in cycles (0 = no batching),
    // q = per-port memory request-FIFO depth (response depth keeps its
    //     default),
    // x = index-coalescer pending-table entries (enables the unit),
    // g = index-coalescer grouping-window lookahead (enables the unit),
    // f = fault injection at F times the default mixed-fault rates
    //     (attaches a FaultPlan; f0 = plan with zero rates, for forcing),
    // r = master-side retry budget in total attempts (r0 = error handling
    //     off). f without r implies the default budget of 4 attempts.
    // ch = interleaved memory channels (default granule; ch1 is the
    //      single-endpoint system),
    // m = total fabric masters: the SoC's processor plus M-1 extras
    //     alternating DMA engine / processor (all kind-matched).
    // p = open-loop Poisson arrivals at P requests per 100k cycles against
    //     a scatter-gather ring DMA master (kind-matched pack/narrow);
    //     run with System::run_open_loop,
    // b = bursty on/off arrivals with burst length B (requires -p; the
    //     mean rate stays P).
    // Knobs may appear in any order, each at most once.
    pos += 4;
    SystemBuilder b = soc_builder(kind, *bus_bits, 17);
    b.memory("dram");
    std::size_t window = 0, cap = 0, req_depth = 0;  // 0 = not given
    std::size_t co_entries = 0, co_window = 0;
    unsigned fault_scale = 0, retry_attempts = 0;
    unsigned num_channels = 0, num_masters = 0;
    unsigned rate = 0, burst = 0;
    bool have_w = false, have_c = false, have_q = false;
    bool have_x = false, have_g = false;
    bool have_f = false, have_r = false;
    bool have_ch = false, have_m = false;
    bool have_p = false, have_b = false;
    // A repeated knob ("-w8-w16") is almost certainly a typo'd sweep point;
    // last-wins would silently run the wrong configuration, so name the
    // offender for the diagnostic instead of just disengaging.
    const auto repeated = [&](const char* k) {
      if (error != nullptr) {
        *error = "scenario \"" + name + "\": knob '-" + std::string(k) +
                 "' given more than once";
      }
    };
    while (pos != name.size()) {
      if (name[pos] != '-' || pos + 2 >= name.size()) return std::nullopt;
      // The two-letter "ch" knob must match before the one-letter switch:
      // a bare 'c' is the starvation cap.
      if (name.compare(pos + 1, 2, "ch") == 0 && pos + 3 < name.size() &&
          name[pos + 3] >= '0' && name[pos + 3] <= '9') {
        if (have_ch) return repeated("ch"), std::nullopt;
        pos += 3;
        const auto value = parse_number(name, pos);
        if (!value || *value == 0) return std::nullopt;
        // Reject bad geometry here instead of letting channels() abort:
        // a scenario *name* is user input, not programmer error.
        if (*value > 64 || (*value & (*value - 1)) != 0) {
          if (error != nullptr) {
            *error = "scenario \"" + name + "\": '-ch" +
                     std::to_string(*value) +
                     "' is not a power-of-two channel count in [1, 64]";
          }
          return std::nullopt;
        }
        num_channels = *value;
        have_ch = true;
        continue;
      }
      const char knob = name[pos + 1];
      pos += 2;
      const auto value = parse_number(name, pos);
      if (!value) return std::nullopt;
      switch (knob) {
        case 'w':
          if (have_w) return repeated("w"), std::nullopt;
          if (*value == 0) return std::nullopt;
          window = *value;
          have_w = true;
          break;
        case 'c':
          if (have_c) return repeated("c"), std::nullopt;
          cap = *value;
          have_c = true;
          break;
        case 'q':
          if (have_q) return repeated("q"), std::nullopt;
          if (*value == 0) return std::nullopt;
          req_depth = *value;
          have_q = true;
          break;
        case 'x':
          if (have_x) return repeated("x"), std::nullopt;
          if (*value == 0) return std::nullopt;
          co_entries = *value;
          have_x = true;
          break;
        case 'g':
          if (have_g) return repeated("g"), std::nullopt;
          if (*value == 0) return std::nullopt;
          co_window = *value;
          have_g = true;
          break;
        case 'f':
          if (have_f) return repeated("f"), std::nullopt;
          fault_scale = *value;
          have_f = true;
          break;
        case 'r':
          if (have_r) return repeated("r"), std::nullopt;
          retry_attempts = *value;
          have_r = true;
          break;
        case 'm':
          if (have_m) return repeated("m"), std::nullopt;
          if (*value == 0) return std::nullopt;
          num_masters = *value;
          have_m = true;
          break;
        case 'p':
          if (have_p) return repeated("p"), std::nullopt;
          if (*value == 0) return std::nullopt;
          rate = *value;
          have_p = true;
          break;
        case 'b':
          if (have_b) return repeated("b"), std::nullopt;
          if (*value == 0) return std::nullopt;
          burst = *value;
          have_b = true;
          break;
        default:
          return std::nullopt;
      }
    }
    mem::MemoryBackendConfig defaults;
    if (have_w || have_c) {
      b.dram_sched(have_w ? window : defaults.dram_sched_window,
                   have_c ? cap : defaults.dram_starve_cap);
    }
    if (have_q) b.mem_queue_depths(req_depth, defaults.resp_depth);
    if (have_x || have_g) {
      pack::AdapterConfig ad;
      b.coalescer(true, have_x ? co_entries : ad.coalesce_entries,
                  have_g ? co_window : ad.coalesce_window);
    }
    if (have_f) {
      b.faults(sim::FaultConfig::defaults(static_cast<double>(fault_scale)));
    }
    if (have_f || have_r) {
      sim::RetryConfig rc = default_retry();
      if (have_r) rc.max_attempts = retry_attempts;
      b.retry(rc);
    }
    if (have_ch) b.channels(num_channels);
    if (have_m) attach_extra_masters(b, kind, num_masters);
    if (have_b && !have_p) {
      // A burst length without an arrival rate is always a typo'd sweep
      // point: there is no stream to shape. Name it, like repeated knobs.
      if (error != nullptr) {
        *error = "scenario \"" + name + "\": '-b" + std::to_string(burst) +
                 "' (burst length) requires an arrival rate '-p{R}'";
      }
      return std::nullopt;
    }
    if (have_p) {
      // The sg master is attached last so -m master numbering and the
      // closed-loop fabric are untouched by the traffic knob.
      traffic::TrafficConfig tc;
      tc.arrival.kind =
          have_b ? traffic::ArrivalKind::bursty : traffic::ArrivalKind::poisson;
      tc.arrival.rate_per_100k = rate;
      if (have_b) tc.arrival.burst_len = burst;
      tc.dma.use_pack = kind == SystemKind::pack;
      b.traffic(tc);
    }
    return b;
  }
  const auto banks = parse_number(name, pos);
  if (!banks || *banks == 0 || pos + 1 != name.size() || name[pos] != 'b') {
    return std::nullopt;
  }
  return soc_builder(kind, *bus_bits, *banks);
}

ScenarioRegistry::ScenarioRegistry() {
  // The paper's three SoCs at every swept bus width.
  for (const unsigned bits : {256u, 128u, 64u}) {
    for (const auto kind :
         {SystemKind::base, SystemKind::pack, SystemKind::ideal}) {
      const std::string name = scenario_name(kind, bits);
      std::string desc =
          std::string(system_name(kind)) + " SoC, " + std::to_string(bits) +
          "-bit bus" +
          (kind == SystemKind::ideal ? " (exclusive ideal memory)"
                                     : ", 17-bank memory");
      add({name, std::move(desc),
           [kind, bits] { return soc_builder(kind, bits, 17); }});
    }
  }

  // The paper SoCs in front of the cycle-level DRAM backend: where packing
  // meets row buffers instead of SRAM banks.
  for (const auto kind : {SystemKind::base, SystemKind::pack}) {
    const std::string name = std::string(system_name(kind)) + "-dram";
    add({name,
         std::string(system_name(kind)) +
             " SoC, 256-bit bus, cycle-level DRAM memory backend",
         [kind] {
           SystemBuilder b = soc_builder(kind, 256, 17);
           b.memory("dram");
           return b;
         }});
  }

  add({"pack-dram-coalesce",
       "PACK SoC, 256-bit bus, DRAM backend, index coalescing unit enabled "
       "(default entries/window; parametric: pack-256-dram-x{E}-g{G})",
       [] {
         SystemBuilder b = soc_builder(SystemKind::pack, 256, 17);
         b.memory("dram");
         b.coalescer(true);
         return b;
       }});

  // Open-loop traffic SoCs: the DRAM-backed systems under a sustained
  // Poisson arrival stream against a kind-matched scatter-gather ring DMA
  // master (run with System::run_open_loop). The names are shorthand for
  // the parametric spellings; sweep the rate with -p{R}.
  add({"open-loop-base-dram",
       "BASE SoC, DRAM backend, open-loop Poisson load on a narrow-burst "
       "scatter-gather ring DMA (= base-256-dram-p40)",
       [] { return *parse_scenario("base-256-dram-p40"); }});
  add({"open-loop-pack-dram",
       "PACK SoC, DRAM backend, open-loop Poisson load on an AXI-Pack "
       "scatter-gather ring DMA (= pack-256-dram-p40)",
       [] { return *parse_scenario("pack-256-dram-p40"); }});
  add({"open-loop-coalesce-dram",
       "PACK SoC, DRAM backend + index coalescing, open-loop Poisson load "
       "on an AXI-Pack scatter-gather ring DMA "
       "(= pack-256-dram-x512-g16-p40)",
       [] { return *parse_scenario("pack-256-dram-x512-g16-p40"); }});

  add({"pack-dram-faults",
       "PACK SoC, 256-bit bus, DRAM backend, default mixed-fault injection "
       "and a 4-attempt retry budget (parametric: pack-256-dram-f{F}-r{R})",
       [] {
         SystemBuilder b = soc_builder(SystemKind::pack, 256, 17);
         b.memory("dram");
         b.faults(sim::FaultConfig::defaults(1.0));
         b.retry(default_retry());
         return b;
       }});

  add({"pack-256-idealmem",
       "PACK pipeline over the conflict-free ideal memory backend",
       [] {
         SystemBuilder b = soc_builder(SystemKind::pack, 256, 17);
         b.memory("ideal");
         return b;
       }});

  add({"dual-master-pack",
       "vector processor + AXI-Pack DMA engine sharing xbar and adapter",
       [] {
         SystemBuilder b;
         b.bus_bits(256);
         b.attach_processor(vproc::VlsuMode::pack);
         b.attach_dma();
         return b;
       }});

  // Bare single-DMA fabrics (no monitor hop) for layout-transform studies;
  // "narrow" degrades the engine to conventional per-element bursts.
  for (const bool use_pack : {true, false}) {
    add({use_pack ? "single-dma-pack" : "single-dma-narrow",
         use_pack ? "one AXI-Pack DMA engine straight into the adapter"
                  : "one narrow-burst DMA engine straight into the adapter",
         [use_pack] {
           SystemBuilder b;
           b.bus_bits(256)
               .mem_region(0x8000'0000ull, 64ull << 20)
               .queue_depth(4)
               .monitor(false);
           dma::DmaConfig dc;
           dc.use_pack = use_pack;
           b.attach_dma(dc);
           return b;
         }});
  }

  add({"dual-dma-pack", "two AXI-Pack DMA engines sharing the fabric", [] {
         SystemBuilder b;
         b.bus_bits(256);
         b.attach_dma();
         b.attach_dma();
         return b;
       }});

  add({"quad-dma-pack", "four AXI-Pack DMA engines sharing the fabric", [] {
         SystemBuilder b;
         b.bus_bits(256);
         for (int i = 0; i < 4; ++i) b.attach_dma();
         return b;
       }});

  // Channel scale-out SoCs: many mixed masters (vector processors + DMA
  // engines, alternating) over interleaved DRAM channels. The master mix
  // and channel count are also parametric: "pack-256-dram-ch{C}-m{M}".
  for (const auto& [masters, chans] :
       {std::pair<unsigned, unsigned>{16, 4}, {32, 8}, {64, 8}}) {
    add({"many-master-pack-" + std::to_string(masters),
         std::to_string(masters) + " mixed masters (vproc + DMA) over " +
             std::to_string(chans) + " interleaved DRAM channels",
         [masters = masters, chans = chans] {
           SystemBuilder b = soc_builder(SystemKind::pack, 256, 17);
           b.memory("dram");
           b.channels(chans);
           attach_extra_masters(b, SystemKind::pack, masters);
           return b;
         }});
  }
}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  for (auto& existing : scenarios_) {
    if (existing.name == scenario.name) {
      existing = std::move(scenario);
      return;
    }
  }
  scenarios_.push_back(std::move(scenario));
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return find(name) != nullptr || parse_scenario(name).has_value();
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(s.name);
  return out;
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

SystemBuilder ScenarioRegistry::builder(const std::string& name) const {
  if (const Scenario* s = find(name)) return s->recipe();
  std::string parse_error;
  if (auto parsed = parse_scenario(name, &parse_error)) return *parsed;
  // A typo'd scenario name must never yield a garbage topology: fail loudly
  // even in assert-free builds.
  if (!parse_error.empty()) {
    std::fprintf(stderr, "%s\n", parse_error.c_str());
    std::abort();
  }
  std::fprintf(stderr, "unknown scenario \"%s\"; registered: ", name.c_str());
  for (const auto& s : scenarios_) std::fprintf(stderr, "%s ", s.name.c_str());
  std::fprintf(stderr, "\n");
  std::abort();
}

std::unique_ptr<System> ScenarioRegistry::build(
    const std::string& name) const {
  return builder(name).build();
}

}  // namespace axipack::sys
