// Channel-scaling measurement harness (the fig10 bench's engine): M raw
// requestor masters stream disjoint contiguous regions through the
// channel-interleaved fabric and the aggregate read utilization — every
// channel link's payload summed against ONE link's capacity — is recorded
// together with its per-channel slices. With granule-sized bursts each
// master's stream round-robins the channels, so aggregate utilization
// scales with min(masters, channels) until the DRAM backends saturate;
// the knee of that curve is what the bench reports.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/dram_timing.hpp"

namespace axipack::sys {

struct ChannelScalingConfig {
  unsigned bus_bytes = 32;
  unsigned channels = 1;   ///< power of two in [1, 64]
  unsigned masters = 8;    ///< concurrent streaming requestors
  mem::DramMapping mapping = mem::DramMapping::permuted;
  std::uint64_t granule_bytes = 4096;  ///< channel interleave granularity
  std::uint64_t bytes_per_master = 256 * 1024;  ///< stream length each
  bool naive_kernel = false;  ///< equivalence testing: disable gating
};

struct ChannelScalingResult {
  /// Sum of all channel links' R payload over cycles * one link's
  /// capacity; exceeds 1.0 once more than one channel streams.
  double agg_r_util = 0.0;
  std::uint64_t cycles = 0;
  std::uint64_t payload_bytes = 0;  ///< drained at the masters
  std::vector<double> per_channel_r_util;
  std::vector<std::uint64_t> per_channel_row_hits;
  std::vector<std::uint64_t> per_channel_row_misses;
};

/// Streams every master's region to completion and reports utilization.
ChannelScalingResult measure_channel_scaling(const ChannelScalingConfig& cfg);

}  // namespace axipack::sys
