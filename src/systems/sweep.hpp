// SweepRunner: a thread pool over independent simulations.
//
// Every figure-level sweep (fig3b-fig3e, the Fig. 5 sensitivity surfaces,
// headline_summary) is N independent (system, workload) points; each point
// builds its own Kernel/System/BackingStore, so points share no mutable
// state and parallelize trivially. SweepRunner::map runs a vector of such
// jobs across worker threads and returns the results in job order.
//
// Thread-safety contract: a job must not touch global mutable state. The
// process-wide registries (ScenarioRegistry, BackendRegistry) are
// initialized before the workers start and only read afterwards.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

namespace axipack::sys {

class SweepRunner {
 public:
  /// `threads` = 0 picks the default: the AXIPACK_THREADS environment
  /// variable if set, else std::thread::hardware_concurrency().
  explicit SweepRunner(unsigned threads = 0)
      : threads_(threads != 0 ? threads : default_threads()) {}

  unsigned threads() const { return threads_; }

  /// Parses an AXIPACK_THREADS-style value: a plain positive decimal
  /// integer (optional surrounding whitespace). Disengaged for anything
  /// else — empty, zero, negative, non-numeric, trailing garbage, or an
  /// implausibly large count.
  static std::optional<unsigned> parse_threads(const char* text) {
    if (text == nullptr) return std::nullopt;
    while (*text == ' ' || *text == '\t') ++text;
    if (*text < '0' || *text > '9') return std::nullopt;
    constexpr unsigned long kMaxThreads = 65'536;
    unsigned long value = 0;
    while (*text >= '0' && *text <= '9') {
      value = value * 10 + static_cast<unsigned long>(*text - '0');
      if (value > kMaxThreads) return std::nullopt;
      ++text;
    }
    while (*text == ' ' || *text == '\t') ++text;
    if (*text != '\0' || value == 0) return std::nullopt;
    return static_cast<unsigned>(value);
  }

  /// Hardware/environment default worker count (>= 1). A set-but-invalid
  /// AXIPACK_THREADS is a config error, not a hint: silently falling back
  /// to hardware_concurrency() would run a sweep at the wrong width, so
  /// fail loudly instead.
  static unsigned default_threads() {
    if (const char* env = std::getenv("AXIPACK_THREADS")) {
      const std::optional<unsigned> n = parse_threads(env);
      if (!n) {
        std::fprintf(stderr,
                     "AXIPACK_THREADS=\"%s\" is not a valid worker count; "
                     "expected a positive integer (e.g. AXIPACK_THREADS=4)\n",
                     env);
        std::abort();
      }
      return *n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
  }

  /// Runs all jobs on the pool and returns their results in job order.
  /// Rethrows the first job exception (remaining jobs still complete).
  template <typename R>
  std::vector<R> map(const std::vector<std::function<R()>>& jobs) const {
    std::vector<R> results(jobs.size());
    run_indexed(jobs.size(), [&](std::size_t i) { results[i] = jobs[i](); });
    return results;
  }

  /// Index-space variant: invokes `body(i)` for i in [0, n) on the pool.
  void run_indexed(std::size_t n,
                   const std::function<void(std::size_t)>& body) const {
    if (n == 0) return;
    const unsigned workers =
        static_cast<unsigned>(n < threads_ ? n : threads_);
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    const auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        try {
          body(i);
        } catch (...) {
          if (!failed.exchange(true)) error = std::current_exception();
        }
      }
    };
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (failed.load()) std::rethrow_exception(error);
  }

 private:
  unsigned threads_;
};

}  // namespace axipack::sys
