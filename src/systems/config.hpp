// Parameterization of the paper's three evaluation SoCs (§III-A):
//   BASE  — unmodified Ara over plain AXI4 to the banked memory
//   PACK  — AXI-Pack-extended Ara, bus and controller
//   IDEAL — Ara on an exclusive ideal memory, one port per lane
//
// All three share one processor and memory parameterization: eight lanes on
// a 256-bit bus (scaled together when the bus width is swept, as in
// Figs. 3d/3e), a 17-bank word memory, and decoupling queues of depth 4.
//
// SystemConfig is a recipe, not a system: to_builder() expands it into a
// SystemBuilder (builder.hpp), which is the only construction path.
#pragma once

#include <cstdint>
#include <string>

#include "sim/kernel.hpp"

namespace axipack::sys {

class SystemBuilder;

enum class SystemKind : std::uint8_t { base, pack, ideal };

const char* system_name(SystemKind k);

struct SystemConfig {
  SystemKind kind = SystemKind::pack;
  unsigned bus_bits = 256;  ///< 64, 128 or 256 (lanes scale with it)
  unsigned banks = 17;      ///< paper's chosen bank count
  std::uint64_t mem_base = 0x8000'0000ull;
  std::uint64_t mem_size = 96ull << 20;
  sim::Cycle sram_latency = 1;
  // Adapter decoupling queues. The paper's RTL uses depth 4; our word path
  // crosses two more registered FIFO hops each way (port mux request and
  // response stages are combinational in the RTL), so depth 8 covers the
  // same bank round trip the RTL's depth 4 does. See
  // bench/ablation_queue_depth for the sensitivity.
  unsigned queue_depth = 8;

  unsigned bus_bytes() const { return bus_bits / 8; }
  unsigned lanes() const { return bus_bits / 32; }

  /// Builds a consistent configuration for a system kind / bus width.
  static SystemConfig make(SystemKind kind, unsigned bus_bits = 256,
                           unsigned banks = 17);

  /// Expands the recipe into a builder (one processor master in the kind's
  /// VLSU mode; banked memory and monitored link unless IDEAL).
  SystemBuilder to_builder() const;
};

}  // namespace axipack::sys
