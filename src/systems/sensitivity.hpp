// Parameter-sensitivity harness (paper §III-E): an ideal requestor issues
// continuous pack read bursts of length 256 at the adapter and measures
// steady-state read-bus utilization, sweeping element size, index size and
// bank count (Figs. 5a/5b). Decoupling queues are deepened to 32 "to avoid
// bottlenecks unrelated to the analysis", as in the paper.
//
// The requestor is a sim::Component (not a run_until side effect), so the
// gated kernel treats it like any other master and the sweep points run
// unattended; multi-point entry points fan the independent points out over
// a SweepRunner thread pool.
#pragma once

#include <cstdint>
#include <vector>

namespace axipack::sys {

struct SensitivityConfig {
  unsigned bus_bytes = 32;
  unsigned banks = 17;        ///< 0 = ideal (conflict-free) memory
  unsigned elem_bits = 32;    ///< 32..256
  unsigned index_bits = 32;   ///< 8/16/32 (indirect only)
  bool indirect = false;
  std::int64_t stride_elems = 1;  ///< element stride (strided only)
  unsigned queue_depth = 32;
  unsigned idx_window_lines = 8;  ///< indirect index prefetch window
  /// >0 enables the index coalescing unit with this pending-table size
  /// (indirect only; 0 keeps the plain shared-lane indirect path).
  std::size_t coalesce_entries = 0;
  std::size_t coalesce_window = 16;  ///< grouping window when enabled
  unsigned burst_beats = 256;
  unsigned num_bursts = 8;
  std::uint64_t seed = 1;
  bool naive_kernel = false;  ///< equivalence testing: disable gating
};

struct SensitivityResult {
  double r_util = 0.0;
  std::uint64_t cycles = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t bank_conflict_losses = 0;
};

/// Runs the configured read stream to completion and reports utilization.
SensitivityResult measure_read_utilization(const SensitivityConfig& cfg);

/// Sweep variant: measures every point on a SweepRunner thread pool
/// (`threads` = 0 -> default pool size); results in input order.
std::vector<SensitivityResult> measure_read_utilization_many(
    const std::vector<SensitivityConfig>& cfgs, unsigned threads = 0);

/// Fig. 5b datapoint: utilization averaged across element strides 0..63,
/// with the per-stride runs spread over the thread pool.
double strided_util_avg(unsigned elem_bits, unsigned banks,
                        unsigned bus_bytes = 32, unsigned max_stride = 63);

}  // namespace axipack::sys
