#include "systems/channel_sweep.hpp"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "axi/burst.hpp"
#include "axi/types.hpp"
#include "systems/builder.hpp"
#include "systems/system.hpp"

namespace axipack::sys {

namespace {

/// Same shape as the sensitivity harness's ideal requestor: pushes the
/// prepared AR stream one request per cycle and drains/accounts R beats.
class StreamRequestor final : public sim::Component {
 public:
  StreamRequestor(sim::Kernel& k, axi::AxiPort& port,
                  std::vector<axi::AxiAr> ars)
      : port_(port), ars_(std::move(ars)) {
    for (const axi::AxiAr& ar : ars_) beats_left_ += ar.beats();
    k.add(*this);
    k.subscribe(*this, port_.r);
  }

  void tick() override {
    if (next_ar_ < ars_.size() && port_.ar.try_push(ars_[next_ar_])) {
      ++next_ar_;
    }
    while (const auto beat = port_.r.try_pop()) {
      payload_bytes_ += beat->useful_bytes;
      --beats_left_;
    }
  }

  bool quiescent() const override { return next_ar_ >= ars_.size(); }

  bool done() const { return beats_left_ == 0; }
  std::uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  axi::AxiPort& port_;
  std::vector<axi::AxiAr> ars_;
  std::size_t next_ar_ = 0;
  std::uint64_t beats_left_ = 0;
  std::uint64_t payload_bytes_ = 0;
};

}  // namespace

ChannelScalingResult measure_channel_scaling(
    const ChannelScalingConfig& cfg) {
  constexpr std::uint64_t kBase = 0x8000'0000ull;
  assert(cfg.masters > 0 && cfg.bytes_per_master > 0);

  // Each master streams its own contiguous region; regions are granule
  // multiples so every master's bursts round-robin all channels the same
  // way regardless of its region index.
  const std::uint64_t span =
      (cfg.bytes_per_master + cfg.granule_bytes - 1) / cfg.granule_bytes *
      cfg.granule_bytes;
  std::uint64_t mem_size = span * cfg.masters + (1ull << 20);
  const std::uint64_t block = cfg.granule_bytes * cfg.channels;
  mem_size = (mem_size + block - 1) / block * block;

  SystemBuilder builder;
  builder.bus_bits(cfg.bus_bytes * 8)
      .mem_region(kBase, mem_size)
      .channels(cfg.channels, cfg.granule_bytes)
      .naive_kernel(cfg.naive_kernel);
  builder.memory("dram");
  mem::DramTimingConfig t;
  t.mapping = cfg.mapping;
  builder.dram_timing(t);
  std::vector<MasterId> ids;
  ids.reserve(cfg.masters);
  for (unsigned m = 0; m < cfg.masters; ++m) {
    ids.push_back(builder.attach_port("req" + std::to_string(m)));
  }

  std::unique_ptr<System> system = builder.build();
  sim::Kernel& kernel = system->kernel();

  std::vector<std::unique_ptr<StreamRequestor>> drivers;
  drivers.reserve(cfg.masters);
  for (unsigned m = 0; m < cfg.masters; ++m) {
    drivers.push_back(std::make_unique<StreamRequestor>(
        kernel, system->master_port(ids[m]),
        axi::split_contiguous(kBase + m * span, cfg.bytes_per_master,
                              cfg.bus_bytes, axi::Traffic::data)));
  }

  kernel.run_until(
      [&] {
        for (const auto& d : drivers) {
          if (!d->done()) return false;
        }
        return true;
      },
      200'000'000, sim::Kernel::PredKind::pure);

  ChannelScalingResult out;
  out.cycles = kernel.now();
  for (const auto& d : drivers) out.payload_bytes += d->payload_bytes();
  const double cap =
      static_cast<double>(out.cycles) * static_cast<double>(cfg.bus_bytes);
  for (unsigned c = 0; c < system->num_channels(); ++c) {
    const axi::BusStats* bs = system->bus_stats(c);
    const double util =
        bs == nullptr || cap == 0.0
            ? 0.0
            : static_cast<double>(bs->r_payload_bytes) / cap;
    out.per_channel_r_util.push_back(util);
    out.agg_r_util += util;
    const mem::MemoryBackendStats ms = system->memory_backend(c)->stats();
    out.per_channel_row_hits.push_back(ms.row_hits);
    out.per_channel_row_misses.push_back(ms.row_misses);
  }
  return out;
}

}  // namespace axipack::sys
