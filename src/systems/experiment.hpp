// Declarative experiment layer: the paper's evaluation expressed as grids.
//
// Every figure-level evaluation is a Cartesian grid — (system kind × bus
// width × kernel × dataflow × timing knobs) — with a designated baseline
// column, derived metrics (speedup-vs-baseline, read utilization, row-hit
// ratio) and a table to print. ExperimentSpec captures that shape once:
//
//   auto results =
//       ExperimentSpec("fig3b")
//           .kernels_axis({wl::KernelKind::gemv})
//           .axis("dataflow", {AxisValue::patch("row-wise", set_rowwise),
//                              AxisValue::patch("col-wise", set_colwise)})
//           .systems_axis({SystemKind::base, SystemKind::pack,
//                          SystemKind::ideal})
//           .baseline("system", "base")
//           .run();
//   results.print_table(std::cout);   // or write_csv / to_json
//
// Expansion walks the axes outermost-first (first axis slowest), plans
// each point's workload with plan_workload against the point's resolved
// builder, applies the axis config patches in axis order, and runs the
// resulting WorkloadJobs on the SweepRunner thread pool. Non-workload
// grids (the sensitivity harness, the area/energy models) plug in a
// custom point runner and flow through the same ResultSet emitters.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "systems/runner.hpp"

namespace axipack::util {
class JsonWriter;
}

namespace axipack::sys {

/// Mutable description of one grid point while the axes are applied, in
/// axis order. An axis value's `shape` hook edits this draft; later axes
/// see earlier axes' edits, so a late axis can compose (e.g. build a
/// parametric scenario name from the kind and knobs set before it).
struct PointDraft {
  SystemKind kind = SystemKind::pack;
  unsigned bus_bits = 256;
  unsigned banks = 17;
  /// Non-empty overrides the "{kind}-{bus}-{banks}b" name derived from the
  /// fields above.
  std::string scenario;
  wl::KernelKind kernel = wl::KernelKind::gemv;
  /// Free-form numeric knobs for later shapes and custom runners.
  std::map<std::string, double> params;
  /// Builder tweaks applied in order after the scenario resolves —
  /// anything the scenario-name grammar cannot express (timing structs,
  /// adapter tuning).
  std::vector<std::function<void(SystemBuilder&)>> builder_patches;

  /// Parameter set by an earlier axis (aborts with the key name when the
  /// axes are ordered so it is not set yet — use this, not params.at(),
  /// in shape hooks that compose across axes).
  double param(const std::string& key) const;
};

/// One value of an axis: the label that keys tables/CSV/JSON plus its
/// effect on the grid point.
struct AxisValue {
  std::string label;
  /// Applied while drafting the point (axis order, before planning).
  std::function<void(PointDraft&)> shape;
  /// Applied to the planned WorkloadConfig (axis order, after planning) —
  /// patches always override plan_workload's choices.
  std::function<void(wl::WorkloadConfig&)> patch;

  // ---- common value kinds ----------------------------------------------
  /// Selects a scenario by name.
  static AxisValue scenario(std::string name);
  /// Selects a system kind ("base"/"pack"/"ideal" label); the scenario
  /// stays the parametric "{kind}-{bus}-{banks}b" family.
  static AxisValue system(SystemKind kind);
  /// Selects the kernel.
  static AxisValue kernel(wl::KernelKind k);
  /// Pins the gemv/trmv dataflow ("row-wise"/"col-wise" labels),
  /// overriding plan_workload's backend-aware choice.
  static AxisValue dataflow(wl::Dataflow df);
  /// Sets the fabric bus width (label = the bit count).
  static AxisValue bus_bits(unsigned bits);
  /// Sets a numeric parameter (label = its decimal rendering).
  static AxisValue param(const std::string& key, double value);
  /// Labelled WorkloadConfig patch.
  static AxisValue config(std::string label,
                          std::function<void(wl::WorkloadConfig&)> patch);
  /// Labelled PointDraft shape hook.
  static AxisValue shaped(std::string label,
                          std::function<void(PointDraft&)> shape);
};

struct Axis {
  std::string name;
  std::vector<AxisValue> values;
};

/// One expanded, run-ready grid point.
struct GridPoint {
  /// (axis name, value label) in axis order — the point's key.
  std::vector<std::pair<std::string, std::string>> coords;
  std::string scenario;
  wl::KernelKind kernel = wl::KernelKind::gemv;
  wl::WorkloadConfig cfg;  ///< planned, patched (and shrunk when quick)
  std::map<std::string, double> params;
  bool quick = false;  ///< custom runners should shrink their work too
  std::vector<std::function<void(SystemBuilder&)>> builder_patches;

  /// Label of `axis` (aborts if the axis does not exist).
  const std::string& coord(const std::string& axis) const;
  /// Numeric parameter set via AxisValue::param (aborts if missing).
  double param(const std::string& key) const;
  /// The WorkloadJob this point expands to (default runner path).
  WorkloadJob job() const;
};

/// What running one grid point produced. Custom runners fill `metrics`
/// with whatever they measure (kGE, utilization averages, ...); the
/// default runner fills `run` from the simulation.
struct PointResult {
  RunResult run;
  std::map<std::string, double> metrics;
};

/// One row of a ResultSet: the point, its measurements, and the derived
/// baseline join.
struct ResultRow {
  GridPoint point;
  RunResult run;
  std::map<std::string, double> metrics;
  /// cycles(baseline partner) / cycles(this row); disengaged when no
  /// baseline is set, the partner was filtered out, or either side ran
  /// zero cycles.
  std::optional<double> speedup;

  const std::string& coord(const std::string& axis) const {
    return point.coord(axis);
  }
};

/// Results keyed by axis values, with paper-style table, CSV and JSON
/// emitters.
class ResultSet {
 public:
  const std::string& name() const { return name_; }
  const std::vector<ResultRow>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// True when every simulated row verified (rows from custom runners
  /// that report no simulation are skipped).
  bool all_correct() const;

  /// First row matching all the given (axis, label) pairs, or nullptr.
  const ResultRow* find(
      std::initializer_list<std::pair<std::string, std::string>> key) const;

  /// Mutable row access for derived-metric enrichment (power/energy models
  /// computed from the runs) before the set is printed or serialized.
  std::vector<ResultRow>& mutable_rows() { return rows_; }

  /// Paper-style aligned table. Axis columns always print; cycles /
  /// R-util / ok only when any row simulated; speedup only when a
  /// baseline was set; row-hit% only when any row touched a dram backend;
  /// custom metrics in first-appearance order.
  void print_table(std::ostream& os) const;

  /// Machine-readable flat CSV (full column set, header row first).
  void write_csv(std::ostream& os) const;

  /// Appends this result set as one JSON object (see to_json for shape).
  void write_json(util::JsonWriter& w) const;

  /// Standalone JSON document:
  ///   {"experiment": ..., "axes": [{"name":..., "values":[...]}, ...],
  ///    "baseline": {"axis":..., "value":...} | null,
  ///    "points": [{"coords": {axis: label, ...}, "scenario":...,
  ///                "kernel":..., "speedup":..., "metrics":{...},
  ///                "run": {...RunResult...}}, ...]}
  std::string to_json() const;

 private:
  friend class ExperimentSpec;
  std::string name_;
  std::vector<Axis> axes_;  ///< value labels as expanded (for the JSON axes)
  std::optional<std::pair<std::string, std::string>> baseline_;
  std::vector<ResultRow> rows_;
  bool has_runs_ = false;      ///< any row carries a real simulation
  bool has_row_stats_ = false; ///< any row touched a dram backend
};

class ExperimentSpec {
 public:
  explicit ExperimentSpec(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Appends an axis (first axis added = outermost loop).
  ExperimentSpec& axis(std::string name, std::vector<AxisValue> values);

  // ---- convenience axes ------------------------------------------------
  /// "system" axis over SoC kinds (labels "base"/"pack"/"ideal").
  ExperimentSpec& systems_axis(std::vector<SystemKind> kinds);
  /// Scenario-name axis (labels = the names).
  ExperimentSpec& scenarios_axis(std::string name,
                                 std::vector<std::string> scenarios);
  /// "kernel" axis (labels = kernel names).
  ExperimentSpec& kernels_axis(std::vector<wl::KernelKind> kernels);
  /// Numeric-parameter axis (labels = decimal renderings).
  ExperimentSpec& param_axis(std::string name, const std::string& key,
                             std::vector<double> values);

  /// Spec-level base patch, applied to every point's planned config
  /// before the axis patches (grid-wide sizing like "n = 192").
  ExperimentSpec& configure(std::function<void(wl::WorkloadConfig&)> patch);

  /// Designates the baseline value on one axis; every row gains
  /// speedup = cycles(partner with this value) / cycles(row).
  ExperimentSpec& baseline(std::string axis, std::string label);

  /// Shrinks every point's workload (n<=48, nnz<=8, 1 iteration) and sets
  /// GridPoint::quick for custom runners — the bench smoke mode.
  ExperimentSpec& quick(bool on = true);

  /// Keeps only points with a coord label containing `substring`
  /// (baseline partners of kept points survive too). Empty = keep all.
  ExperimentSpec& filter(std::string substring);

  /// Sweep thread-pool width (0 = default, 1 = serial).
  ExperimentSpec& threads(unsigned n);

  /// Replaces the default simulate-and-verify runner — the hook that lets
  /// sensitivity/area/energy grids reuse the expansion and emitters.
  ExperimentSpec& runner(std::function<PointResult(const GridPoint&)> fn);

  /// Expands the grid (filter applied, baseline partners retained) in
  /// row-major order, first axis outermost.
  std::vector<GridPoint> expand() const;

  /// Expands, runs every point on the SweepRunner pool, joins baselines.
  ResultSet run() const;

 private:
  std::string name_;
  std::vector<Axis> axes_;
  std::optional<std::pair<std::string, std::string>> baseline_;
  std::function<void(wl::WorkloadConfig&)> configure_;
  bool quick_ = false;
  std::string filter_;
  unsigned threads_ = 0;
  std::function<PointResult(const GridPoint&)> runner_;
};

}  // namespace axipack::sys
