// ScenarioRegistry: named builder recipes for evaluation systems.
//
// Every SoC the benches, examples and tests run is a scenario: a name like
// "pack-256-17b" or "dual-master-pack" mapped to a SystemBuilder recipe.
// The registry ships with the paper's three SoCs across the swept bus
// widths plus multi-master and ideal-backend variants, and accepts
// project-local registrations for new topologies.
//
// Names of the parametric families are also *parsed*, so any point of the
// paper's sweeps resolves without pre-registration:
//
//   {base|pack}-{64|128|256}-{N}b   e.g. pack-256-31b  (N = bank count)
//   {base|pack}-{64|128|256}-dram   same SoC over the DRAM timing backend
//     ...-dram[-w{W}][-c{C}][-q{Q}] with optional row-batching scheduler
//                                   knobs: W = per-port lookahead window
//                                   (1 = head-only), C = starvation cap in
//                                   cycles (0 = no batching), Q = per-port
//                                   memory request-FIFO depth; e.g.
//                                   pack-256-dram-w1 (no batching) or
//                                   pack-256-dram-w16-c128-q32
//     ...-dram[-f{F}][-r{R}]        fault injection at F x the default
//                                   mixed-fault rates and a retry budget of
//                                   R total attempts (f implies r4); e.g.
//                                   pack-256-dram-f2-r4
//   ideal-{64|128|256}              processor on exclusive ideal memory
//
// Fixed names:
//
//   base-dram           BASE SoC over the cycle-level "dram" backend
//   pack-dram           PACK SoC over the cycle-level "dram" backend
//   pack-dram-faults    PACK SoC over "dram" with default mixed-fault
//                       injection and a 4-attempt retry budget
//   pack-256-idealmem   PACK pipeline over the conflict-free "ideal"
//                       memory backend (adapter upper bound)
//   dual-master-pack    vector processor + DMA engine sharing the xbar,
//                       link and AXI-Pack adapter
//   dual-dma-pack       two DMA engines sharing the fabric
//   quad-dma-pack       four DMA engines sharing the fabric
//
// Scenario names are the scenario axis of the declarative experiment
// layer (systems/experiment.hpp) and the input to the backend-aware
// workload planner (plan_workload in systems/runner.hpp), which resolves
// a name to its builder and inspects the resulting memory backend.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "systems/builder.hpp"
#include "systems/config.hpp"

namespace axipack::sys {

struct Scenario {
  std::string name;
  std::string description;
  std::function<SystemBuilder()> recipe;
};

class ScenarioRegistry {
 public:
  /// Pre-loaded with the built-in scenarios described in the file header.
  static ScenarioRegistry& instance();

  /// Registers (or replaces) a scenario.
  void add(Scenario scenario);

  /// True if `name` resolves — registered, or parseable as a parametric
  /// family member.
  bool contains(const std::string& name) const;

  /// All registered scenario names, in registration order (parametric
  /// family members resolve via builder() even when not listed here).
  std::vector<std::string> names() const;

  /// Registered scenario metadata, or nullptr (parsed names have none).
  const Scenario* find(const std::string& name) const;

  /// Resolves `name` to its builder recipe; asserts the name resolves.
  SystemBuilder builder(const std::string& name) const;

  /// Convenience: builder(name).build().
  std::unique_ptr<System> build(const std::string& name) const;

 private:
  ScenarioRegistry();
  std::vector<Scenario> scenarios_;
};

/// Canonical scenario name for one of the paper's SoCs:
/// "{kind}-{bus_bits}-{banks}b", or "ideal-{bus_bits}" for IDEAL.
std::string scenario_name(SystemKind kind, unsigned bus_bits = 256,
                          unsigned banks = 17);

/// Parses a parametric-family name into a builder (see file header).
/// Disengaged if the name does not match a family. When `error` is
/// non-null and the name is *almost* a family member but malformed in a
/// diagnosable way (e.g. a knob repeated: "pack-256-dram-w8-w16"), a
/// human-readable description is stored there; it is left untouched for
/// names that simply belong to no family.
std::optional<SystemBuilder> parse_scenario(const std::string& name,
                                            std::string* error = nullptr);

}  // namespace axipack::sys
