#include "systems/config.hpp"

#include <cassert>

#include "systems/builder.hpp"

namespace axipack::sys {

const char* system_name(SystemKind k) {
  switch (k) {
    case SystemKind::base: return "base";
    case SystemKind::pack: return "pack";
    case SystemKind::ideal: return "ideal";
  }
  return "?";
}

SystemConfig SystemConfig::make(SystemKind kind, unsigned bus_bits,
                                unsigned banks) {
  assert(bus_bits == 64 || bus_bits == 128 || bus_bits == 256);
  SystemConfig cfg;
  cfg.kind = kind;
  cfg.bus_bits = bus_bits;
  cfg.banks = banks;
  return cfg;
}

SystemBuilder SystemConfig::to_builder() const {
  SystemBuilder b;
  b.bus_bits(bus_bits)
      .mem_region(mem_base, mem_size)
      .banks(banks)
      .sram_latency(sram_latency)
      .queue_depth(queue_depth);
  switch (kind) {
    case SystemKind::base:
      b.attach_processor(vproc::VlsuMode::base);
      break;
    case SystemKind::pack:
      b.attach_processor(vproc::VlsuMode::pack);
      break;
    case SystemKind::ideal:
      b.attach_processor(vproc::VlsuMode::ideal);
      break;
  }
  return b;
}

}  // namespace axipack::sys
