#include "systems/config.hpp"

#include <cassert>

namespace axipack::sys {

const char* system_name(SystemKind k) {
  switch (k) {
    case SystemKind::base: return "base";
    case SystemKind::pack: return "pack";
    case SystemKind::ideal: return "ideal";
  }
  return "?";
}

SystemConfig SystemConfig::make(SystemKind kind, unsigned bus_bits,
                                unsigned banks) {
  assert(bus_bits == 64 || bus_bits == 128 || bus_bits == 256);
  SystemConfig cfg;
  cfg.kind = kind;
  cfg.bus_bits = bus_bits;
  cfg.banks = banks;

  cfg.vproc.mode = kind == SystemKind::base
                       ? vproc::VlsuMode::base
                       : (kind == SystemKind::pack ? vproc::VlsuMode::pack
                                                   : vproc::VlsuMode::ideal);
  cfg.vproc.lanes = cfg.lanes();
  cfg.vproc.bus_bytes = cfg.bus_bytes();

  cfg.adapter.bus_bytes = cfg.bus_bytes();
  cfg.adapter.queue_depth = cfg.queue_depth;

  cfg.bank.num_ports = cfg.bus_bytes() / 4;
  cfg.bank.num_banks = banks;
  cfg.bank.sram_latency = cfg.sram_latency;
  return cfg;
}

}  // namespace axipack::sys
