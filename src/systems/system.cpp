#include "systems/system.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "util/json.hpp"

namespace axipack::sys {

// ------------------------------------------------------------- builder

SystemBuilder& SystemBuilder::bus_bits(unsigned bits) {
  assert(bits == 64 || bits == 128 || bits == 256);
  bus_bits_ = bits;
  return *this;
}

SystemBuilder& SystemBuilder::mem_region(std::uint64_t base,
                                         std::uint64_t size) {
  mem_base_ = base;
  mem_size_ = size;
  return *this;
}

SystemBuilder& SystemBuilder::queue_depth(unsigned depth) {
  queue_depth_ = depth;
  return *this;
}

SystemBuilder& SystemBuilder::monitor(bool on) {
  monitor_ = on;
  return *this;
}

SystemBuilder& SystemBuilder::naive_kernel(bool on) {
  naive_kernel_ = on;
  return *this;
}

SystemBuilder& SystemBuilder::channels(unsigned n,
                                       std::uint64_t granule_bytes) {
  // Bad geometry fails loudly here, like dram_sched(): the XOR-folded
  // channel selector consumes exactly log2(channels) address bits, so
  // non-power-of-two values silently alias channels instead of spreading.
  if (n == 0 || n > 64 || (n & (n - 1)) != 0) {
    std::fprintf(stderr,
                 "SystemBuilder::channels: channel count must be a power of "
                 "two in [1, 64] (got %u); the interleaved channel selector "
                 "uses log2(channels) address bits\n",
                 n);
    std::abort();
  }
  if (granule_bytes == 0 || (granule_bytes & (granule_bytes - 1)) != 0) {
    std::fprintf(stderr,
                 "SystemBuilder::channels: interleave granule must be a "
                 "power of two (got %llu bytes)\n",
                 static_cast<unsigned long long>(granule_bytes));
    std::abort();
  }
  channels_ = n;
  channel_granule_ = granule_bytes;
  return *this;
}

SystemBuilder& SystemBuilder::memory(const std::string& backend_name) {
  assert(mem::BackendRegistry::instance().contains(backend_name));
  mem_cfg_.name = backend_name;
  return *this;
}

SystemBuilder& SystemBuilder::memory(const mem::MemoryBackendConfig& cfg) {
  assert(mem::BackendRegistry::instance().contains(cfg.name));
  mem_cfg_ = cfg;
  // A full backend config is the caller taking complete control, including
  // of the FIFO depths: no automatic DRAM deepening on top of it.
  mem_depths_explicit_ = true;
  return *this;
}

SystemBuilder& SystemBuilder::banks(unsigned n) {
  mem_cfg_.num_banks = n;
  return *this;
}

SystemBuilder& SystemBuilder::sram_latency(sim::Cycle cycles) {
  mem_cfg_.latency = cycles;
  return *this;
}

SystemBuilder& SystemBuilder::dram_timing(const mem::DramTimingConfig& t) {
  mem_cfg_.dram = t;
  return *this;
}

SystemBuilder& SystemBuilder::dram_sched(std::size_t window,
                                         sim::Cycle starve_cap) {
  // Bad values fail loudly here (not just deep inside DramMemory): a zero
  // window is always a config error — use window 1 / cap 0 to disable
  // batching explicitly.
  if (window == 0) {
    std::fprintf(stderr,
                 "SystemBuilder::dram_sched: window must be >= 1 (got 0); "
                 "use window=1 or starve_cap=0 to disable batching\n");
    std::abort();
  }
  mem_cfg_.dram_sched_window = window;
  mem_cfg_.dram_starve_cap = starve_cap;
  return *this;
}

SystemBuilder& SystemBuilder::mem_queue_depths(std::size_t req_depth,
                                               std::size_t resp_depth) {
  if (req_depth == 0 || resp_depth == 0) {
    std::fprintf(stderr,
                 "SystemBuilder::mem_queue_depths: req_depth=%zu / "
                 "resp_depth=%zu must be >= 1 (zero-capacity FIFOs cannot "
                 "carry traffic)\n",
                 req_depth, resp_depth);
    std::abort();
  }
  mem_cfg_.req_depth = req_depth;
  mem_cfg_.resp_depth = resp_depth;
  mem_depths_explicit_ = true;
  return *this;
}

SystemBuilder& SystemBuilder::adapter(const pack::AdapterConfig& cfg) {
  adapter_cfg_ = cfg;
  adapter_explicit_ = true;
  return *this;
}

SystemBuilder& SystemBuilder::coalescer(bool enable, std::size_t entries,
                                        std::size_t window) {
  // Bad values fail loudly here, like dram_sched(): a zero-entry table or
  // zero-lookahead window cannot carry traffic — disable the unit instead.
  if (enable && (entries == 0 || window == 0)) {
    std::fprintf(stderr,
                 "SystemBuilder::coalescer: entries=%zu / window=%zu must "
                 "be >= 1 when enabling; use coalescer(false) to disable\n",
                 entries, window);
    std::abort();
  }
  coalesce_set_ = true;
  coalesce_enable_ = enable;
  coalesce_entries_ = entries;
  coalesce_window_ = window;
  return *this;
}

SystemBuilder& SystemBuilder::faults(const sim::FaultConfig& cfg) {
  faults_set_ = true;
  fault_cfg_ = cfg;
  return *this;
}

SystemBuilder& SystemBuilder::retry(const sim::RetryConfig& cfg) {
  retry_set_ = true;
  retry_cfg_ = cfg;
  return *this;
}

SystemBuilder& SystemBuilder::traffic(const traffic::TrafficConfig& cfg) {
  traffic_set_ = true;
  traffic_cfg_ = cfg;
  if (sg_master_ < 0) sg_dma(cfg.dma);
  return *this;
}

MasterId SystemBuilder::sg_dma(const dma::DmaConfig& cfg) {
  const MasterId id = attach_dma(cfg);
  sg_master_ = static_cast<int>(id);
  return id;
}

MasterId SystemBuilder::attach_processor(vproc::VlsuMode mode) {
  vproc::VProcConfig cfg;
  cfg.mode = mode;
  return attach_processor(cfg);
}

MasterId SystemBuilder::attach_processor(const vproc::VProcConfig& cfg) {
  MasterSpec spec;
  spec.kind = MasterKind::processor;
  spec.proc = cfg;
  spec.name = "proc" + std::to_string(masters_.size());
  masters_.push_back(std::move(spec));
  return static_cast<MasterId>(masters_.size() - 1);
}

MasterId SystemBuilder::attach_dma(const dma::DmaConfig& cfg) {
  MasterSpec spec;
  spec.kind = MasterKind::dma;
  spec.dma = cfg;
  spec.name = "dma" + std::to_string(masters_.size());
  masters_.push_back(std::move(spec));
  return static_cast<MasterId>(masters_.size() - 1);
}

MasterId SystemBuilder::attach_port(const std::string& name) {
  MasterSpec spec;
  spec.kind = MasterKind::port;
  spec.name = name;
  masters_.push_back(std::move(spec));
  return static_cast<MasterId>(masters_.size() - 1);
}

std::unique_ptr<System> SystemBuilder::build() const {
  return std::unique_ptr<System>(new System(*this));
}

// ------------------------------------------------------------- system

System::System(const SystemBuilder& b) : bus_bytes_(b.bus_bits_ / 8) {
  kernel_.set_gating(!b.naive_kernel_);
  store_ = std::make_unique<mem::BackingStore>(b.mem_base_, b.mem_size_);
  if (b.faults_set_) {
    fault_plan_ = std::make_unique<sim::FaultPlan>(b.fault_cfg_);
  }

  // Create one AXI port per fabric-attached master.
  std::vector<axi::AxiPort*> fabric_ports;
  for (const auto& spec : b.masters_) {
    Master m;
    m.kind = spec.kind;
    m.name = spec.name;
    const bool needs_port =
        spec.kind != SystemBuilder::MasterKind::processor ||
        spec.proc.mode != vproc::VlsuMode::ideal;
    if (needs_port) {
      m.port = std::make_unique<axi::AxiPort>(kernel_, 2, spec.name);
      fabric_ports.push_back(m.port.get());
    }
    masters_.push_back(std::move(m));
  }

  // Wire the fabric and the memory channels behind it.
  if (!fabric_ports.empty()) {
    const unsigned num_ch = b.channels_;
    if (num_ch > 1) {
      // Capacity constraints only checkable once the bus width and memory
      // region are both known; loud like the setter's power-of-two checks.
      if (b.channel_granule_ < bus_bytes_) {
        std::fprintf(stderr,
                     "SystemBuilder::channels: interleave granule %llu B is "
                     "smaller than one bus beat (%u B); bursts would change "
                     "channel mid-beat\n",
                     static_cast<unsigned long long>(b.channel_granule_),
                     bus_bytes_);
        std::abort();
      }
      const std::uint64_t block =
          static_cast<std::uint64_t>(num_ch) * b.channel_granule_;
      if (b.mem_size_ % block != 0) {
        std::fprintf(stderr,
                     "SystemBuilder::channels: memory size %llu B is not "
                     "divisible by channels * granule = %u * %llu B; the "
                     "tail would interleave across a partial block\n",
                     static_cast<unsigned long long>(b.mem_size_), num_ch,
                     static_cast<unsigned long long>(b.channel_granule_));
        std::abort();
      }
    }

    // With >= 2 channels every fabric master gets an interleaving router;
    // each channel's fabric then sees the routers' per-channel ports as
    // its masters. channels(1) routes nothing and wires the master ports
    // straight into the single fabric slice (today's system, exactly).
    std::vector<std::vector<axi::AxiPort*>> ch_masters(num_ch);
    if (num_ch > 1) {
      axi::ChannelRouteConfig rc;
      rc.base = b.mem_base_;
      rc.size = b.mem_size_;
      rc.granule = b.channel_granule_;
      rc.channels = num_ch;
      routers_.resize(masters_.size());
      for (std::size_t i = 0; i < masters_.size(); ++i) {
        if (!masters_[i].port) continue;
        routers_[i] = std::make_unique<axi::ChannelRouter>(
            kernel_, *masters_[i].port, rc, masters_[i].name + ".rt");
        for (unsigned c = 0; c < num_ch; ++c) {
          ch_masters[c].push_back(&routers_[i]->down(c));
        }
      }
    } else {
      ch_masters[0] = fabric_ports;
    }

    mem::MemoryBackendConfig mc = b.mem_cfg_;
    mc.num_ports = bus_bytes_ / mem::kWordBytes;
    mc.channels = num_ch;
    mc.channel_granule_bytes = b.channel_granule_;
    if (mc.name == "dram" && !b.mem_depths_explicit_) {
      // The row-batching scheduler can only batch what it can see: give
      // the per-port request FIFOs at least a full default lookahead
      // window of depth (a fixed floor, so window sweeps below it compare
      // schedulers over identical FIFOs, not FIFO sizes), and track
      // larger windows so an explicit -w64 sweep point is not silently
      // bounded by the FIFO.
      mc.req_depth = std::max(
          mc.req_depth, std::max<std::size_t>(32, mc.dram_sched_window));
    }

    pack::AdapterConfig ac = b.adapter_cfg_;
    if (!b.adapter_explicit_) {
      ac.queue_depth = b.queue_depth_;
      if (mc.name == "dram") {
        // Latency-tolerant converter queues: the SRAM-sized defaults
        // serialize on the DRAM access latency (a row miss costs
        // tRP + tRCD + tCAS instead of 1 cycle), so scale the per-lane
        // in-flight budget to cover a full miss round trip, keep more
        // bursts outstanding across AR boundaries, and let index prefetch
        // run far enough ahead that gather requests are already queued
        // when the scheduler looks for same-row work.
        const sim::Cycle miss = mc.dram.row_miss_latency();
        ac.queue_depth =
            std::max<unsigned>(ac.queue_depth, static_cast<unsigned>(miss));
        ac.lane_fifo_depth = std::max<std::size_t>(ac.lane_fifo_depth, 4);
        ac.idx_window_lines = std::max<std::size_t>(ac.idx_window_lines, 16);
        ac.pack_max_bursts = std::max<std::size_t>(ac.pack_max_bursts, 4);
      }
    }
    // coalescer() composes with (rather than replaces) the defaults above,
    // so coalesced DRAM systems keep the latency-matched deep queues.
    if (b.coalesce_set_) {
      ac.coalesce_enable = b.coalesce_enable_;
      ac.coalesce_entries = b.coalesce_entries_;
      ac.coalesce_window = b.coalesce_window_;
    }
    ac.bus_bytes = bus_bytes_;

    channels_.reserve(num_ch);
    for (unsigned c = 0; c < num_ch; ++c) {
      Channel ch;
      const std::string sfx = num_ch > 1 ? std::to_string(c) : std::string{};
      axi::AxiPort* upstream = nullptr;  // port that feeds this adapter
      if (b.monitor_) {
        // channel masters -> xbar -> mid -> monitored link -> adapter.
        ch.mid = std::make_unique<axi::AxiPort>(kernel_, 2, "mid" + sfx);
        ch.adapter_port =
            std::make_unique<axi::AxiPort>(kernel_, 2, "adapter" + sfx);
        ch.xbar = std::make_unique<axi::AxiXbar>(
            kernel_, ch_masters[c],
            std::vector<axi::AxiPort*>{ch.mid.get()},
            std::vector<axi::AddrRule>{{b.mem_base_, b.mem_size_, 0}});
        ch.link = std::make_unique<axi::AxiLink>(kernel_, *ch.mid,
                                                 *ch.adapter_port);
        ch.checker = std::make_unique<axi::ProtocolChecker>(bus_bytes_);
        ch.link->attach_checker(ch.checker.get());
        upstream = ch.adapter_port.get();
      } else if (ch_masters[c].size() == 1) {
        // Bare measurement fabric: the channel's one port feeds the
        // adapter directly.
        upstream = ch_masters[c].front();
      } else {
        // channel masters -> xbar -> adapter (no monitoring hop).
        ch.adapter_port =
            std::make_unique<axi::AxiPort>(kernel_, 2, "adapter" + sfx);
        ch.xbar = std::make_unique<axi::AxiXbar>(
            kernel_, ch_masters[c],
            std::vector<axi::AxiPort*>{ch.adapter_port.get()},
            std::vector<axi::AddrRule>{{b.mem_base_, b.mem_size_, 0}});
        upstream = ch.adapter_port.get();
      }

      ch.backend =
          mem::BackendRegistry::instance().create(kernel_, *store_, mc);
      ch.adapter = std::make_unique<pack::AxiPackAdapter>(
          kernel_, *upstream, ch.backend->word_memory(), ac);
      if (ac.coalesce_enable && mc.name == "dram") {
        // Give the grouping window the backend's real bank/row
        // decomposition instead of the coarse address-granule default.
        if (auto* db = dynamic_cast<mem::DramBackend*>(ch.backend.get())) {
          const mem::DramAddressMap* map = &db->dram().map();
          const std::uint64_t base = b.mem_base_;
          ch.adapter->set_indirect_locality([map, base](std::uint64_t addr) {
            const std::uint64_t w = (addr - base) / mem::kWordBytes;
            return (static_cast<std::uint64_t>(map->bank_of(w)) << 48) |
                   map->row_of(w);
          });
        }
      }
      if (fault_plan_) {
        // One plan shared by every channel: injection sites draw from the
        // same per-site event counters, so the fault stream stays a pure
        // function of (seed, site, event ordinal) regardless of which
        // channel an event lands on.
        if (ch.link) ch.link->set_fault_plan(fault_plan_.get());
        ch.adapter->set_fault_plan(fault_plan_.get());
        if (auto* db = dynamic_cast<mem::DramBackend*>(ch.backend.get())) {
          db->dram().set_fault_plan(fault_plan_.get());
        }
      }
      channels_.push_back(std::move(ch));
    }
  }

  // Instantiate the masters now that their ports exist.
  for (std::size_t i = 0; i < masters_.size(); ++i) {
    const auto& spec = b.masters_[i];
    Master& m = masters_[i];
    switch (spec.kind) {
      case SystemBuilder::MasterKind::processor: {
        vproc::VProcConfig vc = spec.proc;
        vc.bus_bytes = bus_bytes_;
        vc.lanes = bus_bytes_ / mem::kWordBytes;
        if (b.retry_set_) vc.retry = b.retry_cfg_;
        m.proc = std::make_unique<vproc::Processor>(kernel_, vc, *store_,
                                                    m.port.get());
        break;
      }
      case SystemBuilder::MasterKind::dma: {
        dma::DmaConfig dc = spec.dma;
        dc.bus_bytes = bus_bytes_;
        if (b.retry_set_) dc.retry = b.retry_cfg_;
        m.dma = std::make_unique<dma::DmaEngine>(kernel_, *m.port, dc);
        break;
      }
      case SystemBuilder::MasterKind::port:
        break;
    }
  }

  // Open-loop traffic: carve the driver's ring/pool/data footprint from
  // the TOP of the memory window (workloads allocate from the bottom, so
  // closed-loop data placement is unaffected) and register the driver
  // last, after every component it may wake.
  if (b.traffic_set_) {
    assert(b.sg_master_ >= 0 && "traffic() attaches the sg master");
    sg_master_ = static_cast<MasterId>(b.sg_master_);
    dma::DmaEngine* engine = masters_[sg_master_].dma.get();
    assert(engine != nullptr);
    const std::uint64_t fp = traffic::footprint_bytes(b.traffic_cfg_);
    if (fp + 4096 > b.mem_size_) {
      std::fprintf(stderr,
                   "SystemBuilder::traffic: driver footprint %llu B does "
                   "not fit the %llu B memory region (shrink data_words / "
                   "pool_reqs or grow mem_region)\n",
                   static_cast<unsigned long long>(fp),
                   static_cast<unsigned long long>(b.mem_size_));
      std::abort();
    }
    const std::uint64_t region =
        (b.mem_base_ + b.mem_size_ - fp) & ~std::uint64_t{63};
    driver_ = std::make_unique<traffic::OpenLoopDriver>(
        kernel_, *engine, *store_, b.traffic_cfg_, region);
  }
}

vproc::Processor& System::processor(MasterId id) {
  assert(id < masters_.size() && masters_[id].proc);
  return *masters_[id].proc;
}

vproc::Processor& System::processor() {
  for (auto& m : masters_) {
    if (m.proc) return *m.proc;
  }
  // Must fail loudly even in assert-free builds: a DMA-only system has no
  // processor to run a workload on.
  std::fprintf(stderr, "System::processor(): no processor master attached\n");
  std::abort();
}

dma::DmaEngine& System::dma(MasterId id) {
  assert(id < masters_.size() && masters_[id].dma);
  return *masters_[id].dma;
}

axi::AxiPort& System::master_port(MasterId id) {
  assert(id < masters_.size() && masters_[id].port);
  return *masters_[id].port;
}

bool System::drained() const {
  if (driver_ && !driver_->drained()) return false;
  for (const auto& m : masters_) {
    if (m.proc && !m.proc->done()) return false;
    if (m.dma && !m.dma->idle()) return false;
  }
  for (const auto& ch : channels_) {
    if (ch.adapter && !ch.adapter->idle()) return false;
  }
  for (const auto& rt : routers_) {
    if (rt && rt->pending() != 0) return false;
  }
  return true;
}

sim::RunStatus System::run_until_drained(sim::Cycle max_cycles) {
  // drained() only observes simulator state, so the kernel may fast-forward
  // through fully-asleep stretches between evaluations.
  return kernel_.run_until([this] { return drained(); }, max_cycles,
                           sim::Kernel::PredKind::pure);
}

sim::RetryStats System::aggregate_retry() const {
  // Master-side recovery counters, summed over all processors and DMA
  // engines (they accumulate across runs, so callers diff snapshots).
  sim::RetryStats s;
  for (const auto& m : masters_) {
    const sim::RetryStats* rs = nullptr;
    if (m.proc) {
      rs = &m.proc->context().retry_stats;
    } else if (m.dma) {
      rs = &m.dma->retry_stats();
    }
    if (rs == nullptr) continue;
    s.retries += rs->retries;
    s.timeouts += rs->timeouts;
    s.failed_ops += rs->failed_ops;
    s.degraded = s.degraded || rs->degraded;
  }
  return s;
}

System::StatSnapshot System::snapshot_stats() const {
  StatSnapshot s;
  s.start = kernel_.now();
  if (fault_plan_) s.faults = fault_plan_->stats();
  s.retry = aggregate_retry();
  // Per-channel snapshots (counters accumulate across runs, so diff).
  s.bus.resize(channels_.size());
  s.mem.resize(channels_.size());
  s.co.resize(channels_.size());
  s.iw.resize(channels_.size());
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    const Channel& ch = channels_[c];
    if (ch.link) s.bus[c] = ch.link->stats();
    if (ch.backend) s.mem[c] = ch.backend->stats();
    if (ch.adapter) {
      s.co[c] = ch.adapter->coalescer_stats();
      s.iw[c] = ch.adapter->indirect_word_stats();
    }
  }
  return s;
}

void System::clear_latency_histograms() {
  for (auto& m : masters_) {
    if (m.proc) m.proc->context().mem_latency.clear();
    if (m.dma) m.dma->latency_hist().clear();
  }
  if (driver_) driver_->clear_measurements();
}

bool System::collect_stats(RunResult& result, const StatSnapshot& snap) {
  const double bus_capacity =
      static_cast<double>(result.cycles) * bus_bytes_;
  const bool monitored =
      !channels_.empty() && channels_.front().link != nullptr;
  if (monitored) {
    // Aggregate = sum of every channel link's counters; utilizations are
    // normalized against ONE link's capacity (see RunResult), so a
    // perfectly-scaled C-channel run reports r_util near C.
    result.per_channel.resize(channels_.size());
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      const axi::BusStats d = channels_[c].link->stats().diff(snap.bus[c]);
      result.bus += d;
      ChannelRunStats& cs = result.per_channel[c];
      cs.bus = d;
      cs.r_util = static_cast<double>(d.r_payload_bytes) / bus_capacity;
      cs.r_fault_beats = d.r_fault_beats;
    }
    result.r_util = static_cast<double>(result.bus.r_payload_bytes) /
                    bus_capacity;
    result.r_util_no_idx =
        static_cast<double>(result.bus.r_payload_bytes -
                            result.bus.r_index_bytes) /
        bus_capacity;
    result.w_util = static_cast<double>(result.bus.w_payload_bytes) /
                    bus_capacity;
  } else if (!has_fabric()) {
    // IDEAL: utilization of the exclusive per-lane ports.
    const auto rd = result.activity.get("ideal.read_bytes");
    const auto ix = result.activity.get("ideal.index_bytes");
    const auto wr = result.activity.get("ideal.write_bytes");
    result.r_util = static_cast<double>(rd + ix) / bus_capacity;
    result.r_util_no_idx = static_cast<double>(rd) / bus_capacity;
    result.w_util = static_cast<double>(wr) / bus_capacity;
  }
  // else: fabric built with monitor(false) — there is no monitored hop, so
  // bus utilization is not measured and the fields stay 0.
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    const Channel& ch = channels_[c];
    if (ch.backend) {
      const mem::MemoryBackendStats now = ch.backend->stats();
      const mem::MemoryBackendStats& st = snap.mem[c];
      result.bank_grants += now.grants - st.grants;
      result.bank_conflict_losses +=
          now.conflict_losses - st.conflict_losses;
      result.row_hits += now.row_hits - st.row_hits;
      result.row_misses += now.row_misses - st.row_misses;
      result.refresh_stall_cycles +=
          now.refresh_stall_cycles - st.refresh_stall_cycles;
      result.row_batch_defer_cycles +=
          now.row_batch_defer_cycles - st.row_batch_defer_cycles;
      result.row_starved_grants +=
          now.row_starved_grants - st.row_starved_grants;
      if (monitored) {
        result.per_channel[c].row_hits = now.row_hits - st.row_hits;
        result.per_channel[c].row_misses = now.row_misses - st.row_misses;
      }
    }
    if (ch.adapter) {
      const pack::CoalescerStats co = ch.adapter->coalescer_stats();
      result.coalesce_merged += co.merged - snap.co[c].merged;
      result.coalesce_unique += co.unique - snap.co[c].unique;
      // Peak occupancy is a high-water mark, not a counter: report the
      // worst lifetime peak across channels, not a difference or a sum.
      result.coalesce_peak_pending =
          std::max(result.coalesce_peak_pending, co.peak_pending);
      result.coalesce_row_groups += co.row_groups - snap.co[c].row_groups;
      const pack::IndirectWordStats iw = ch.adapter->indirect_word_stats();
      result.indirect_idx_words += iw.idx_words - snap.iw[c].idx_words;
      result.indirect_elem_words += iw.elem_words - snap.iw[c].elem_words;
    }
  }
  if (fault_plan_) {
    const sim::FaultStats& fs = fault_plan_->stats();
    result.faults_injected = fs.injected - snap.faults.injected;
    result.faults_corrected =
        fs.dram_correctable - snap.faults.dram_correctable;
    result.faults_uncorrectable =
        result.faults_injected - result.faults_corrected;
  }
  const sim::RetryStats retry_now = aggregate_retry();
  result.retries = retry_now.retries - snap.retry.retries;
  result.retry_timeouts = retry_now.timeouts - snap.retry.timeouts;
  result.failed_ops = retry_now.failed_ops - snap.retry.failed_ops;
  result.degraded = retry_now.degraded;
  // Per-request latency: every master's histogram was cleared when the
  // run started, so merging the raw histograms is the run's own traffic.
  for (const auto& m : masters_) {
    if (m.proc) result.latency.merge(m.proc->context().mem_latency);
    if (m.dma) {
      result.latency.merge(m.dma->latency_hist());
      result.queue_peak =
          std::max(result.queue_peak, m.dma->stats().queue_peak);
    }
  }
  for (const Channel& ch : channels_) {
    if (!ch.checker) continue;
    result.protocol_violations += ch.checker->violations().size();
    // With fault injection active, rule breaches are the expected symptom
    // of injected misbehaviour (a truncated burst IS a beat-count
    // violation): surface them as diagnostics and keep going. Without a
    // fault plan they indicate a real modelling bug and fail the run hard.
    if (!ch.checker->violations().empty() && fault_plan_ == nullptr) {
      result.correct = false;
      result.error = "AXI protocol violation: " +
                     ch.checker->violations().front().rule + " — " +
                     ch.checker->violations().front().detail;
      return false;
    }
  }
  if (result.failed_ops > 0) {
    // A master exhausted its retry budget (or hit a fatal DECERR): the
    // produced data is unrecoverable by construction, so don't bother
    // diffing it against the reference.
    result.correct = false;
    result.error = "unrecoverable memory fault";
    return false;
  }
  return true;
}

RunResult System::run(const wl::WorkloadInstance& instance,
                      sim::Cycle max_cycles) {
  vproc::Processor& proc = processor();
  RunResult result;
  result.bus_bits = bus_bytes_ * 8;
  clear_latency_histograms();
  const StatSnapshot snap = snapshot_stats();
  const sim::Counters counters_start = proc.counters();

  proc.run(instance.program);
  const sim::RunStatus finished = run_until_drained(max_cycles);
  result.cycles = kernel_.now() - snap.start;
  result.channels =
      static_cast<unsigned>(std::max<std::size_t>(1, channels_.size()));
  if (!finished) {
    result.error = "timeout";
    return result;
  }

  result.activity = proc.counters().diff(counters_start);
  if (!collect_stats(result, snap)) return result;
  result.correct = instance.check(*store_, result.error);
  return result;
}

RunResult System::run_open_loop(sim::Cycle measure_cycles,
                                sim::Cycle max_cycles) {
  if (!driver_) {
    // Must fail loudly even in assert-free builds: without traffic() there
    // is no arrival process to run.
    std::fprintf(stderr,
                 "System::run_open_loop: system was built without "
                 "SystemBuilder::traffic()\n");
    std::abort();
  }
  RunResult result;
  result.bus_bits = bus_bytes_ * 8;
  clear_latency_histograms();
  const StatSnapshot snap = snapshot_stats();

  driver_->arm(kernel_.now() + measure_cycles);
  kernel_.run(measure_cycles);
  // Arrivals have stopped; let every in-flight request complete.
  const sim::RunStatus finished = run_until_drained(max_cycles);
  result.cycles = kernel_.now() - snap.start;
  result.channels =
      static_cast<unsigned>(std::max<std::size_t>(1, channels_.size()));
  if (!finished) {
    result.error = "timeout";
    return result;
  }

  const bool ok = collect_stats(result, snap);
  // The driver's sojourn measurements (arrival -> completion, including
  // ring-slot wait) subsume nothing the masters recorded: the sg engine
  // only stamps push/chain descriptors, never ring ordinals.
  result.latency.merge(driver_->latency());
  result.offered_rate = driver_->offered_rate();
  result.achieved_rate = driver_->achieved_rate();
  result.queue_peak =
      std::max(result.queue_peak, driver_->stats().queue_peak);
  if (!ok) return result;
  if (driver_->stats().failed != 0) {
    result.correct = false;
    result.error = "open-loop request completed with error";
    return result;
  }
  result.correct = driver_->verify(result.error);
  return result;
}

std::string RunResult::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("bus_bits").value(bus_bits);
  w.key("cycles").value(cycles);
  w.key("channels").value(channels);
  w.key("r_util").value(r_util);
  w.key("r_util_no_idx").value(r_util_no_idx);
  w.key("w_util").value(w_util);
  w.key("correct").value(correct);
  w.key("protocol_violations").value(protocol_violations);
  w.key("bank_grants").value(bank_grants);
  w.key("bank_conflict_losses").value(bank_conflict_losses);
  w.key("row_hits").value(row_hits);
  w.key("row_misses").value(row_misses);
  w.key("row_hit_ratio").value(row_hit_ratio());
  w.key("refresh_stall_cycles").value(refresh_stall_cycles);
  w.key("row_batch_defer_cycles").value(row_batch_defer_cycles);
  w.key("row_starved_grants").value(row_starved_grants);
  w.key("coalesce_merged").value(coalesce_merged);
  w.key("coalesce_unique").value(coalesce_unique);
  w.key("coalesce_peak_pending").value(coalesce_peak_pending);
  w.key("coalesce_row_groups").value(coalesce_row_groups);
  w.key("indirect_idx_words").value(indirect_idx_words);
  w.key("indirect_elem_words").value(indirect_elem_words);
  w.key("faults_injected").value(faults_injected);
  w.key("faults_corrected").value(faults_corrected);
  w.key("faults_uncorrectable").value(faults_uncorrectable);
  w.key("retries").value(retries);
  w.key("retry_timeouts").value(retry_timeouts);
  w.key("failed_ops").value(failed_ops);
  w.key("degraded").value(degraded);
  w.key("latency_p50").value(latency.percentile(50.0));
  w.key("latency_p95").value(latency.percentile(95.0));
  w.key("latency_p99").value(latency.percentile(99.0));
  w.key("latency_max").value(latency.max());
  w.key("latency_count").value(latency.count());
  w.key("offered_rate").value(offered_rate);
  w.key("achieved_rate").value(achieved_rate);
  w.key("queue_peak").value(queue_peak);
  w.key("per_channel").begin_array();
  for (const ChannelRunStats& cs : per_channel) {
    w.begin_object();
    w.key("r_util").value(cs.r_util);
    w.key("r_beats").value(cs.bus.r_beats);
    w.key("r_payload_bytes").value(cs.bus.r_payload_bytes);
    w.key("w_payload_bytes").value(cs.bus.w_payload_bytes);
    w.key("row_hits").value(cs.row_hits);
    w.key("row_misses").value(cs.row_misses);
    w.key("r_fault_beats").value(cs.r_fault_beats);
    w.end_object();
  }
  w.end_array();
  if (!error.empty()) w.key("error").value(error);
  w.end_object();
  return w.str();
}

}  // namespace axipack::sys
