#include "systems/system.hpp"

namespace axipack::sys {

System::System(const SystemConfig& cfg) : cfg_(cfg) {
  store_ = std::make_unique<mem::BackingStore>(cfg.mem_base, cfg.mem_size);
  if (cfg.kind != SystemKind::ideal) {
    port_proc_ = std::make_unique<axi::AxiPort>(kernel_, 2, "proc");
    port_mid_ = std::make_unique<axi::AxiPort>(kernel_, 2, "mid");
    port_adapter_ = std::make_unique<axi::AxiPort>(kernel_, 2, "adapter");
    xbar_ = std::make_unique<axi::AxiXbar>(
        kernel_, std::vector<axi::AxiPort*>{port_proc_.get()},
        std::vector<axi::AxiPort*>{port_mid_.get()},
        std::vector<axi::AddrRule>{{cfg.mem_base, cfg.mem_size, 0}});
    link_ = std::make_unique<axi::AxiLink>(kernel_, *port_mid_,
                                           *port_adapter_);
    checker_ = std::make_unique<axi::ProtocolChecker>(cfg.bus_bytes());
    link_->attach_checker(checker_.get());
    memory_ = std::make_unique<mem::BankedMemory>(kernel_, *store_, cfg.bank);
    adapter_ = std::make_unique<pack::AxiPackAdapter>(
        kernel_, *port_adapter_, *memory_, cfg.adapter);
  }
  proc_ = std::make_unique<vproc::Processor>(kernel_, cfg.vproc, *store_,
                                             port_proc_.get());
}

RunResult System::run(const wl::WorkloadInstance& instance,
                      sim::Cycle max_cycles) {
  RunResult result;
  const sim::Cycle start = kernel_.now();
  const sim::Counters counters_start = proc_->counters();
  const axi::BusStats bus_start = link_ ? link_->stats() : axi::BusStats{};
  const std::uint64_t grants_start =
      memory_ ? memory_->xbar().total_grants() : 0;
  const std::uint64_t losses_start =
      memory_ ? memory_->xbar().total_conflict_losses() : 0;

  proc_->run(instance.program);
  const bool finished = kernel_.run_until(
      [&] {
        return proc_->done() && (adapter_ == nullptr || adapter_->idle());
      },
      max_cycles);
  result.cycles = kernel_.now() - start;
  if (!finished) {
    result.error = "timeout";
    return result;
  }

  result.activity = proc_->counters().diff(counters_start);
  const double bus_capacity =
      static_cast<double>(result.cycles) * cfg_.bus_bytes();
  if (link_) {
    result.bus = link_->stats().diff(bus_start);
    result.r_util = static_cast<double>(result.bus.r_payload_bytes) /
                    bus_capacity;
    result.r_util_no_idx =
        static_cast<double>(result.bus.r_payload_bytes -
                            result.bus.r_index_bytes) /
        bus_capacity;
    result.w_util = static_cast<double>(result.bus.w_payload_bytes) /
                    bus_capacity;
  } else {
    // IDEAL: utilization of the exclusive per-lane ports.
    const auto rd = result.activity.get("ideal.read_bytes");
    const auto ix = result.activity.get("ideal.index_bytes");
    const auto wr = result.activity.get("ideal.write_bytes");
    result.r_util = static_cast<double>(rd + ix) / bus_capacity;
    result.r_util_no_idx = static_cast<double>(rd) / bus_capacity;
    result.w_util = static_cast<double>(wr) / bus_capacity;
  }
  if (memory_) {
    result.bank_grants = memory_->xbar().total_grants() - grants_start;
    result.bank_conflict_losses =
        memory_->xbar().total_conflict_losses() - losses_start;
  }
  if (checker_) {
    result.protocol_violations = checker_->violations().size();
    if (result.protocol_violations > 0) {
      result.correct = false;
      result.error = "AXI protocol violation: " +
                     checker_->violations().front().rule + " — " +
                     checker_->violations().front().detail;
      return result;
    }
  }
  result.correct = instance.check(*store_, result.error);
  return result;
}

}  // namespace axipack::sys
