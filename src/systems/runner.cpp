#include "systems/runner.hpp"

#include "mem/backend.hpp"
#include "systems/sweep.hpp"

namespace axipack::sys {

wl::WorkloadConfig plan_workload(wl::KernelKind kernel,
                                 const SystemBuilder& builder) {
  wl::WorkloadConfig cfg;
  cfg.kernel = kernel;
  const vproc::VlsuMode mode =
      builder.primary_vlsu_mode().value_or(vproc::VlsuMode::pack);
  // Fastest dataflow per (system, backend): contiguous row-wise on BASE;
  // strided column-wise where strided streams are cheap (PACK/IDEAL on
  // SRAM-like backends); row-wise again for PACK over "dram", whose column
  // strides thrash row buffers (see the header).
  const bool dram = builder.memory_backend_name() == "dram";
  cfg.dataflow = mode == vproc::VlsuMode::base ||
                         (mode == vproc::VlsuMode::pack && dram)
                     ? wl::Dataflow::rowwise
                     : wl::Dataflow::colwise;
  // In-memory indirection exists only with an AXI-Pack VLSU.
  cfg.in_memory_indices = mode == vproc::VlsuMode::pack;
  if (wl::kernel_is_indirect(kernel)) {
    cfg.n = 512;
    cfg.nnz_per_row = 390;  // heart1-like density (paper §III-B)
  } else {
    cfg.n = 256;
  }
  return cfg;
}

wl::WorkloadConfig plan_workload(wl::KernelKind kernel,
                                 const std::string& scenario) {
  return plan_workload(kernel,
                       ScenarioRegistry::instance().builder(scenario));
}

RunResult run_workload(const SystemBuilder& builder,
                       const wl::WorkloadConfig& wl_cfg) {
  std::unique_ptr<System> system = builder.build();
  const wl::WorkloadInstance instance =
      wl::build_workload(system->store(), wl_cfg);
  return system->run(instance);
}

RunResult run_workload(const std::string& scenario,
                       const wl::WorkloadConfig& wl_cfg) {
  return run_workload(ScenarioRegistry::instance().builder(scenario),
                      wl_cfg);
}

RunResult run_default(wl::KernelKind kernel, SystemKind kind,
                      unsigned bus_bits, unsigned banks) {
  const SystemBuilder builder = ScenarioRegistry::instance().builder(
      scenario_name(kind, bus_bits, banks));
  return run_workload(builder, plan_workload(kernel, builder));
}

std::vector<RunResult> run_workloads(const std::vector<WorkloadJob>& jobs,
                                     unsigned threads) {
  // Resolve every scenario to a builder up front: registry access stays on
  // this thread, and bad names fail before any worker starts.
  std::vector<SystemBuilder> builders;
  builders.reserve(jobs.size());
  for (const WorkloadJob& job : jobs) {
    SystemBuilder b = ScenarioRegistry::instance().builder(job.scenario);
    if (job.builder_patch) job.builder_patch(b);
    if (job.naive_kernel) b.naive_kernel(true);
    builders.push_back(std::move(b));
  }
  (void)mem::BackendRegistry::instance();  // pre-warm before the pool
  std::vector<RunResult> results(jobs.size());
  SweepRunner(threads).run_indexed(jobs.size(), [&](std::size_t i) {
    results[i] = run_workload(builders[i], jobs[i].cfg);
  });
  return results;
}

}  // namespace axipack::sys
