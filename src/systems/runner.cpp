#include "systems/runner.hpp"

namespace axipack::sys {

wl::WorkloadConfig default_workload(wl::KernelKind kernel, SystemKind system) {
  wl::WorkloadConfig cfg;
  cfg.kernel = kernel;
  // Fastest dataflow per system (paper Figs. 3b/3c): contiguous row-wise on
  // BASE, strided column-wise where strided streams are cheap.
  cfg.dataflow = system == SystemKind::base ? wl::Dataflow::rowwise
                                            : wl::Dataflow::colwise;
  // In-memory indirection exists only with AXI-Pack.
  cfg.in_memory_indices = system == SystemKind::pack;
  if (wl::kernel_is_indirect(kernel)) {
    cfg.n = 512;
    cfg.nnz_per_row = 390;  // heart1-like density (paper §III-B)
  } else {
    cfg.n = 256;
  }
  return cfg;
}

RunResult run_workload(const SystemConfig& sys_cfg,
                       const wl::WorkloadConfig& wl_cfg) {
  System system(sys_cfg);
  const wl::WorkloadInstance instance =
      wl::build_workload(system.store(), wl_cfg);
  return system.run(instance);
}

RunResult run_default(wl::KernelKind kernel, SystemKind kind,
                      unsigned bus_bits, unsigned banks) {
  const SystemConfig sys_cfg = SystemConfig::make(kind, bus_bits, banks);
  return run_workload(sys_cfg, default_workload(kernel, kind));
}

}  // namespace axipack::sys
