#include "systems/runner.hpp"

#include "mem/backend.hpp"
#include "systems/sweep.hpp"

namespace axipack::sys {

wl::WorkloadConfig default_workload(wl::KernelKind kernel, SystemKind system) {
  wl::WorkloadConfig cfg;
  cfg.kernel = kernel;
  // Fastest dataflow per system (paper Figs. 3b/3c): contiguous row-wise on
  // BASE, strided column-wise where strided streams are cheap.
  cfg.dataflow = system == SystemKind::base ? wl::Dataflow::rowwise
                                            : wl::Dataflow::colwise;
  // In-memory indirection exists only with AXI-Pack.
  cfg.in_memory_indices = system == SystemKind::pack;
  if (wl::kernel_is_indirect(kernel)) {
    cfg.n = 512;
    cfg.nnz_per_row = 390;  // heart1-like density (paper §III-B)
  } else {
    cfg.n = 256;
  }
  return cfg;
}

RunResult run_workload(const SystemBuilder& builder,
                       const wl::WorkloadConfig& wl_cfg) {
  std::unique_ptr<System> system = builder.build();
  const wl::WorkloadInstance instance =
      wl::build_workload(system->store(), wl_cfg);
  return system->run(instance);
}

RunResult run_workload(const std::string& scenario,
                       const wl::WorkloadConfig& wl_cfg) {
  return run_workload(ScenarioRegistry::instance().builder(scenario),
                      wl_cfg);
}

RunResult run_default(wl::KernelKind kernel, SystemKind kind,
                      unsigned bus_bits, unsigned banks) {
  return run_workload(scenario_name(kind, bus_bits, banks),
                      default_workload(kernel, kind));
}

std::vector<RunResult> run_workloads(const std::vector<WorkloadJob>& jobs,
                                     unsigned threads) {
  // Resolve every scenario to a builder up front: registry access stays on
  // this thread, and bad names fail before any worker starts.
  std::vector<SystemBuilder> builders;
  builders.reserve(jobs.size());
  for (const WorkloadJob& job : jobs) {
    SystemBuilder b = ScenarioRegistry::instance().builder(job.scenario);
    if (job.naive_kernel) b.naive_kernel(true);
    builders.push_back(std::move(b));
  }
  (void)mem::BackendRegistry::instance();  // pre-warm before the pool
  std::vector<RunResult> results(jobs.size());
  SweepRunner(threads).run_indexed(jobs.size(), [&](std::size_t i) {
    results[i] = run_workload(builders[i], jobs[i].cfg);
  });
  return results;
}

}  // namespace axipack::sys
