// One-call workload runner: resolves a scenario (or an explicit builder),
// builds a fresh system + workload and runs it. This is the entry point the
// benches, tests and examples use.
#pragma once

#include <string>

#include "systems/scenario.hpp"
#include "systems/system.hpp"
#include "workloads/workloads.hpp"

namespace axipack::sys {

/// Applies the paper's methodology defaults for a (workload, system) pair:
/// the fastest dataflow per system (row-wise on BASE, column-wise on
/// PACK/IDEAL for gemv/trmv) and in-memory indices only on PACK.
wl::WorkloadConfig default_workload(wl::KernelKind kernel, SystemKind system);

/// Builds the system from an explicit builder, runs to completion, verifies.
RunResult run_workload(const SystemBuilder& builder,
                       const wl::WorkloadConfig& wl_cfg);

/// Builds the system from a scenario name, runs to completion, verifies.
RunResult run_workload(const std::string& scenario,
                       const wl::WorkloadConfig& wl_cfg);

/// Convenience: run `kernel` with methodology defaults on the
/// "{kind}-{bus_bits}-{banks}b" scenario.
RunResult run_default(wl::KernelKind kernel, SystemKind kind,
                      unsigned bus_bits = 256, unsigned banks = 17);

/// One point of a workload sweep.
struct WorkloadJob {
  std::string scenario;
  wl::WorkloadConfig cfg;
  bool naive_kernel = false;  ///< run this point on the ungated kernel
};

/// Runs every job (each an independent system + workload) on a SweepRunner
/// thread pool; results come back in job order. `threads` = 0 picks the
/// default (AXIPACK_THREADS or hardware concurrency); 1 forces serial.
std::vector<RunResult> run_workloads(const std::vector<WorkloadJob>& jobs,
                                     unsigned threads = 0);

}  // namespace axipack::sys
