// One-call workload runner: resolves a scenario (or an explicit builder),
// builds a fresh system + workload and runs it. This is the entry point the
// benches, tests and examples use.
#pragma once

#include <string>

#include "systems/scenario.hpp"
#include "systems/system.hpp"
#include "workloads/workloads.hpp"

namespace axipack::sys {

/// Applies the paper's methodology defaults for a (workload, system) pair:
/// the fastest dataflow per system (row-wise on BASE, column-wise on
/// PACK/IDEAL for gemv/trmv) and in-memory indices only on PACK.
wl::WorkloadConfig default_workload(wl::KernelKind kernel, SystemKind system);

/// Builds the system from an explicit builder, runs to completion, verifies.
RunResult run_workload(const SystemBuilder& builder,
                       const wl::WorkloadConfig& wl_cfg);

/// Builds the system from a scenario name, runs to completion, verifies.
RunResult run_workload(const std::string& scenario,
                       const wl::WorkloadConfig& wl_cfg);

/// Convenience: run `kernel` with methodology defaults on the
/// "{kind}-{bus_bits}-{banks}b" scenario.
RunResult run_default(wl::KernelKind kernel, SystemKind kind,
                      unsigned bus_bits = 256, unsigned banks = 17);

}  // namespace axipack::sys
