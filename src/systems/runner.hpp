// Workload planning and one-call running.
//
// Two layers build on this file:
//
//   * plan_workload — the paper's methodology, made backend-aware: given a
//     kernel and the SystemBuilder that will run it, pick the fastest
//     workload variant for that (kernel, system, memory backend) triple.
//   * run_workload / run_workloads — resolve a scenario (or take an
//     explicit builder), build a fresh system + workload, run to
//     completion and verify; the plural form fans independent jobs out
//     over a SweepRunner thread pool.
//
// Grid-shaped evaluations (scenario × kernel × knob sweeps with baseline
// joins and table/CSV/JSON emission) should use the declarative layer in
// systems/experiment.hpp, which expands to the WorkloadJobs defined here.
#pragma once

#include <functional>
#include <string>

#include "systems/scenario.hpp"
#include "systems/system.hpp"
#include "workloads/workloads.hpp"

namespace axipack::sys {

/// Applies the paper's methodology for a (kernel, system) pair — run the
/// fastest variant per system — with the PR-5 extension that the choice
/// sees the *resolved memory backend*, not just the system kind:
///
///   * BASE always streams row-wise (contiguous bursts are all it has).
///   * PACK/IDEAL gemv/trmv run column-wise on SRAM-like backends, where
///     strided streams are cheap (paper Figs. 3b/3c).
///   * PACK on the "dram" backend runs gemv/trmv row-wise: column strides
///     hop DRAM rows faster than any scheduler window can re-localize
///     them, while row-wise streams hit the open row at ~99% — the
///     ROADMAP "residual DRAM gap" this rule closes.
///   * In-memory indirection only exists with an AXI-Pack VLSU.
///
/// Builders without a processor master plan as PACK (the adapter is still
/// the endpoint; DMA-driven studies override the config anyway).
wl::WorkloadConfig plan_workload(wl::KernelKind kernel,
                                 const SystemBuilder& builder);

/// Convenience: plans against the named scenario's registered builder.
wl::WorkloadConfig plan_workload(wl::KernelKind kernel,
                                 const std::string& scenario);

/// Builds the system from an explicit builder, runs to completion, verifies.
RunResult run_workload(const SystemBuilder& builder,
                       const wl::WorkloadConfig& wl_cfg);

/// Builds the system from a scenario name, runs to completion, verifies.
RunResult run_workload(const std::string& scenario,
                       const wl::WorkloadConfig& wl_cfg);

/// Convenience: run `kernel` with the planned methodology config on the
/// "{kind}-{bus_bits}-{banks}b" scenario.
RunResult run_default(wl::KernelKind kernel, SystemKind kind,
                      unsigned bus_bits = 256, unsigned banks = 17);

/// One point of a workload sweep.
struct WorkloadJob {
  std::string scenario;
  wl::WorkloadConfig cfg;
  bool naive_kernel = false;  ///< run this point on the ungated kernel
  /// Optional builder tweak applied after the scenario resolves (timing
  /// overrides, knob sweeps — anything the scenario-name grammar cannot
  /// express).
  std::function<void(SystemBuilder&)> builder_patch;
};

/// Runs every job (each an independent system + workload) on a SweepRunner
/// thread pool; results come back in job order. `threads` = 0 picks the
/// default (AXIPACK_THREADS or hardware concurrency); 1 forces serial.
std::vector<RunResult> run_workloads(const std::vector<WorkloadJob>& jobs,
                                     unsigned threads = 0);

}  // namespace axipack::sys
