// One-call workload runner: builds a fresh system + workload and runs it.
// This is the entry point the benches, tests and examples use.
#pragma once

#include "systems/system.hpp"
#include "workloads/workloads.hpp"

namespace axipack::sys {

/// Applies the paper's methodology defaults for a (workload, system) pair:
/// the fastest dataflow per system (row-wise on BASE, column-wise on
/// PACK/IDEAL for gemv/trmv) and in-memory indices only on PACK.
wl::WorkloadConfig default_workload(wl::KernelKind kernel, SystemKind system);

/// Builds the system and workload, runs to completion, verifies.
RunResult run_workload(const SystemConfig& sys_cfg,
                       const wl::WorkloadConfig& wl_cfg);

/// Convenience: run `kernel` with methodology defaults on `kind`.
RunResult run_default(wl::KernelKind kernel, SystemKind kind,
                      unsigned bus_bits = 256, unsigned banks = 17);

}  // namespace axipack::sys
