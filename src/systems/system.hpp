// One assembled evaluation SoC. Systems are constructed exclusively by
// SystemBuilder (see builder.hpp): any number of masters (vector
// processors, DMA engines, raw ports) reach N independent memory channels
// — each a full fabric slice of crossbar, monitored link, AXI-Pack adapter
// and pluggable memory backend — through per-master address-interleaving
// ChannelRouters (channels(1) needs no router and is the single-endpoint
// system); ideal-mode processors run on their exclusive ideal memory.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "axi/channel_router.hpp"
#include "axi/monitor.hpp"
#include "axi/protocol_checker.hpp"
#include "axi/xbar.hpp"
#include "dma/engine.hpp"
#include "mem/backend.hpp"
#include "mem/backing_store.hpp"
#include "pack/adapter.hpp"
#include "sim/kernel.hpp"
#include "systems/builder.hpp"
#include "traffic/driver.hpp"
#include "util/histogram.hpp"
#include "vproc/processor.hpp"
#include "workloads/workloads.hpp"

namespace axipack::sys {

/// Per-channel slice of a multi-channel run's measurements (monitored
/// systems only; one entry per memory channel).
struct ChannelRunStats {
  axi::BusStats bus;            ///< this channel's link traffic
  double r_util = 0.0;          ///< this channel's link R utilization
  std::uint64_t row_hits = 0;   ///< dram only
  std::uint64_t row_misses = 0; ///< dram only
  std::uint64_t r_fault_beats = 0;  ///< injected R faults on this link
};

/// Measurements from one workload run.
struct RunResult {
  unsigned bus_bits = 256;  ///< data-bus width of the system that ran
  std::uint64_t cycles = 0;
  unsigned channels = 1;    ///< memory channels of the system that ran
  /// Aggregate utilizations sum every channel link's payload against ONE
  /// link's capacity, so they scale past 1.0 as channels are added — the
  /// scale-out metric the channel-scaling bench gates on. At channels == 1
  /// they are the familiar single-link utilizations.
  double r_util = 0.0;         ///< read-bus utilization, incl. index traffic
  double r_util_no_idx = 0.0;  ///< read-bus utilization, data only
  double w_util = 0.0;
  /// Per-channel slices of the aggregate counters (empty when the system
  /// was built with monitor(false); size == channels otherwise).
  std::vector<ChannelRunStats> per_channel;
  bool correct = false;
  std::uint64_t protocol_violations = 0;  ///< AXI rule breaches on the link
  std::string error;
  sim::Counters activity;  ///< processor activity during the run
  axi::BusStats bus;       ///< monitored link traffic during the run
  std::uint64_t bank_grants = 0;
  std::uint64_t bank_conflict_losses = 0;
  // Row-buffer behaviour of the "dram" backend (zero elsewhere).
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t refresh_stall_cycles = 0;
  std::uint64_t row_batch_defer_cycles = 0;  ///< row-batching deferrals
  std::uint64_t row_starved_grants = 0;      ///< starvation-cap overrides
  // Coalescing-stage activity, aggregated over the adapter's four units
  // (element, index, strided-read, base channel); zero when the stage is
  // disabled. `unique` counts words actually fetched from memory, `merged`
  // counts requests served from a live or retained entry (or forwarded
  // from a queued full-word store) without a fetch.
  std::uint64_t coalesce_merged = 0;   ///< requests folded into live entries
  std::uint64_t coalesce_unique = 0;   ///< unique words fetched
  std::uint64_t coalesce_peak_pending = 0;  ///< max pending-table occupancy
  std::uint64_t coalesce_row_groups = 0;    ///< locality groups opened
  // Indirect converter word-level issue counts (fan-out accounting): words
  // *requested* by the gather/scatter lanes; with the coalescing stage on,
  // every element word is counted once there as unique or merged, so
  // coalesce_unique + coalesce_merged >= indirect_elem_words.
  std::uint64_t indirect_idx_words = 0;
  std::uint64_t indirect_elem_words = 0;
  // Fault injection and recovery (all zero/false on systems built without
  // SystemBuilder::faults). `failed_ops` > 0 means data was unrecoverable
  // and the run is reported incorrect; `degraded` means a master's breaker
  // tripped and it finished the run on the base (unpacked) path.
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_corrected = 0;      ///< ECC-corrected DRAM reads
  std::uint64_t faults_uncorrectable = 0;  ///< injected minus corrected
  std::uint64_t retries = 0;
  std::uint64_t retry_timeouts = 0;
  std::uint64_t failed_ops = 0;
  bool degraded = false;
  // Per-request latency over the run, merged across every master
  // (processor accept->retire stamps, DMA descriptor arrival->completion)
  // and — on open-loop runs — the traffic driver's sojourn measurements
  // (arrival -> completion event, including ring-slot wait). Empty when
  // nothing retired (e.g. raw-port harness runs).
  util::Histogram latency;
  // Open-loop load metrics (zero on closed-loop runs): requests per 100k
  // cycles offered by the arrival process vs completed inside the
  // measurement window, and the in-system high-water mark (software
  // backlog + occupied ring slots). achieved < offered means the system
  // saturated below the offered rate.
  double offered_rate = 0.0;
  double achieved_rate = 0.0;
  std::uint64_t queue_peak = 0;

  /// Fraction of dram accesses served from the open row (0 when the run
  /// did not touch a dram backend).
  double row_hit_ratio() const {
    const std::uint64_t total = row_hits + row_misses;
    return total == 0 ? 0.0 : static_cast<double>(row_hits) / total;
  }

  /// Renders the measurements as one JSON object (no trailing newline) —
  /// the shared fragment the experiment JSON emitter and perf_kernel embed
  /// in their artifacts.
  std::string to_json() const;
};

class System {
 public:
  mem::BackingStore& store() { return *store_; }
  sim::Kernel& kernel() { return kernel_; }
  unsigned bus_bytes() const { return bus_bytes_; }

  // ---- masters ---------------------------------------------------------
  unsigned num_masters() const {
    return static_cast<unsigned>(masters_.size());
  }
  /// Master-kind introspection (generic drivers, equivalence tests).
  bool is_processor(MasterId id) const {
    return id < masters_.size() && masters_[id].proc != nullptr;
  }
  bool is_dma(MasterId id) const {
    return id < masters_.size() && masters_[id].dma != nullptr;
  }
  /// The processor attached as master `id` (asserts kind).
  vproc::Processor& processor(MasterId id);
  /// The first attached processor (asserts one exists).
  vproc::Processor& processor();
  /// The DMA engine attached as master `id` (asserts kind).
  dma::DmaEngine& dma(MasterId id);
  /// The AXI port of master `id` (asserts the master has one; raw ports
  /// and fabric-attached processors/DMAs do).
  axi::AxiPort& master_port(MasterId id);

  // ---- fabric / endpoint -----------------------------------------------
  bool has_fabric() const {
    return !channels_.empty() && channels_.front().adapter != nullptr;
  }
  unsigned num_channels() const {
    return static_cast<unsigned>(channels_.size());
  }
  /// Channel 0's adapter (the only one on single-channel systems).
  pack::AxiPackAdapter& adapter() { return *channels_.front().adapter; }
  pack::AxiPackAdapter& adapter(unsigned channel) {
    return *channels_[channel].adapter;
  }
  /// Channel 0's memory backend (the only one on single-channel systems);
  /// null on fabric-less (IDEAL) systems.
  const mem::MemoryBackend* memory_backend() const {
    return channels_.empty() ? nullptr : channels_.front().backend.get();
  }
  const mem::MemoryBackend* memory_backend(unsigned channel) const {
    return channels_[channel].backend.get();
  }
  /// Channel 0's monitored-link counters; null when built with
  /// monitor(false). Multi-channel callers aggregate over bus_stats(c).
  const axi::BusStats* bus_stats() const {
    return channels_.empty() || !channels_.front().link
               ? nullptr
               : &channels_.front().link->stats();
  }
  const axi::BusStats* bus_stats(unsigned channel) const {
    return channels_[channel].link ? &channels_[channel].link->stats()
                                   : nullptr;
  }
  /// The per-master channel router (channels >= 2 only; null otherwise).
  axi::ChannelRouter* router(MasterId id) {
    return id < routers_.size() ? routers_[id].get() : nullptr;
  }
  /// The system's fault plan, or null when built without faults(). Tests
  /// pin exact faults on it via FaultPlan::force before running.
  sim::FaultPlan* fault_plan() { return fault_plan_.get(); }
  /// Channel 0's protocol-checker diagnostics (empty when the system was
  /// built with monitor(false)).
  const axi::ProtocolChecker* protocol_checker() const {
    return channels_.empty() ? nullptr : channels_.front().checker.get();
  }

  /// True when every master is quiescent (processors done, DMA engines
  /// idle; raw ports are caller-driven and always count as quiescent) and
  /// the adapter has drained.
  bool drained() const;
  /// Advances until drained() or the deadline; truthy iff drained, and
  /// carries the cycles consumed (sim::RunStatus converts to bool).
  sim::RunStatus run_until_drained(sim::Cycle max_cycles = 200'000'000);

  /// Runs one workload on the first processor to completion (waiting for
  /// every other master to drain too) and verifies it.
  RunResult run(const wl::WorkloadInstance& instance,
                sim::Cycle max_cycles = 200'000'000);

  /// The open-loop traffic driver, or null when the system was built
  /// without SystemBuilder::traffic().
  traffic::OpenLoopDriver* traffic_driver() { return driver_.get(); }
  /// Runs the open-loop traffic stream (builder::traffic() required —
  /// aborts loudly otherwise): arms the driver, generates arrivals for
  /// `measure_cycles`, drains every in-flight request, and reports
  /// latency percentiles, offered/achieved rates and the queue high-water
  /// mark alongside the usual fabric measurements. Data correctness is
  /// verified by diffing every touched destination group against a
  /// recomputed reference gather.
  RunResult run_open_loop(sim::Cycle measure_cycles = 400'000,
                          sim::Cycle max_cycles = 200'000'000);

 private:
  friend class SystemBuilder;
  explicit System(const SystemBuilder& b);

  /// Pre-run snapshot of every accumulating counter a RunResult diffs
  /// (shared by run() and run_open_loop()).
  struct StatSnapshot {
    sim::Cycle start = 0;
    sim::FaultStats faults;
    sim::RetryStats retry;
    std::vector<axi::BusStats> bus;
    std::vector<mem::MemoryBackendStats> mem;
    std::vector<pack::CoalescerStats> co;
    std::vector<pack::IndirectWordStats> iw;
  };
  StatSnapshot snapshot_stats() const;
  /// Sums the master-side recovery counters over every processor and DMA.
  sim::RetryStats aggregate_retry() const;
  /// Resets every per-request latency histogram a run merges.
  void clear_latency_histograms();
  /// Fills the fabric/backend/fault/retry measurements of `result`
  /// (requires result.cycles set) and merges the latency histograms.
  /// Returns false — with result.correct/error set — on a hard failure
  /// (protocol violation without a fault plan, unrecoverable fault).
  bool collect_stats(RunResult& result, const StatSnapshot& snap);

  struct Master {
    SystemBuilder::MasterKind kind;
    std::string name;
    std::unique_ptr<axi::AxiPort> port;      ///< null for ideal processors
    std::unique_ptr<vproc::Processor> proc;  ///< kind == processor
    std::unique_ptr<dma::DmaEngine> dma;     ///< kind == dma
  };

  /// One memory channel's fabric slice: its crossbar (several masters),
  /// monitored link + checker (monitor(true)), and its adapter + backend.
  /// All backends decode absolute addresses against the one shared
  /// BackingStore, so data placement is channel-count-invariant.
  struct Channel {
    std::unique_ptr<axi::AxiPort> mid;           ///< xbar -> link hop
    std::unique_ptr<axi::AxiPort> adapter_port;  ///< feeds the adapter
    std::unique_ptr<axi::AxiXbar> xbar;
    std::unique_ptr<axi::AxiLink> link;
    std::unique_ptr<axi::ProtocolChecker> checker;
    std::unique_ptr<mem::MemoryBackend> backend;
    std::unique_ptr<pack::AxiPackAdapter> adapter;
  };

  unsigned bus_bytes_ = 32;
  sim::Kernel kernel_;
  std::unique_ptr<mem::BackingStore> store_;
  std::vector<Master> masters_;
  // Fabric (empty when no master has an AXI port). One Channel per memory
  // channel; with >= 2 channels each fabric master gets a ChannelRouter
  // (indexed like masters_; null entries for port-less ideal processors).
  std::vector<Channel> channels_;
  std::vector<std::unique_ptr<axi::ChannelRouter>> routers_;
  std::unique_ptr<sim::FaultPlan> fault_plan_;  ///< null = fault-free
  /// Open-loop traffic driver + its scatter-gather master (traffic()).
  std::unique_ptr<traffic::OpenLoopDriver> driver_;
  MasterId sg_master_ = 0;  ///< valid only when driver_ != null
};

}  // namespace axipack::sys
