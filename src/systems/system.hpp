// Assembles one evaluation SoC: vector processor -> AXI crossbar ->
// monitored link -> AXI-Pack adapter -> banked memory (BASE/PACK), or the
// processor on its exclusive ideal memory (IDEAL).
#pragma once

#include <memory>
#include <string>

#include "axi/monitor.hpp"
#include "axi/protocol_checker.hpp"
#include "axi/xbar.hpp"
#include "mem/backing_store.hpp"
#include "mem/banked_memory.hpp"
#include "pack/adapter.hpp"
#include "sim/kernel.hpp"
#include "systems/config.hpp"
#include "vproc/processor.hpp"
#include "workloads/workloads.hpp"

namespace axipack::sys {

/// Measurements from one workload run.
struct RunResult {
  std::uint64_t cycles = 0;
  double r_util = 0.0;         ///< read-bus utilization, incl. index traffic
  double r_util_no_idx = 0.0;  ///< read-bus utilization, data only
  double w_util = 0.0;
  bool correct = false;
  std::uint64_t protocol_violations = 0;  ///< AXI rule breaches on the link
  std::string error;
  sim::Counters activity;  ///< processor activity during the run
  axi::BusStats bus;       ///< monitored link traffic during the run
  std::uint64_t bank_grants = 0;
  std::uint64_t bank_conflict_losses = 0;
};

class System {
 public:
  explicit System(const SystemConfig& cfg);

  mem::BackingStore& store() { return *store_; }
  const SystemConfig& config() const { return cfg_; }
  vproc::Processor& processor() { return *proc_; }
  sim::Kernel& kernel() { return kernel_; }

  /// Runs one workload to completion and verifies it.
  RunResult run(const wl::WorkloadInstance& instance,
                sim::Cycle max_cycles = 200'000'000);

 private:
  SystemConfig cfg_;
  sim::Kernel kernel_;
  std::unique_ptr<mem::BackingStore> store_;
  // AXI path (absent on IDEAL).
  std::unique_ptr<axi::AxiPort> port_proc_;
  std::unique_ptr<axi::AxiPort> port_mid_;
  std::unique_ptr<axi::AxiPort> port_adapter_;
  std::unique_ptr<axi::AxiXbar> xbar_;
  std::unique_ptr<axi::AxiLink> link_;
  std::unique_ptr<axi::ProtocolChecker> checker_;
  std::unique_ptr<mem::BankedMemory> memory_;
  std::unique_ptr<pack::AxiPackAdapter> adapter_;
  std::unique_ptr<vproc::Processor> proc_;
};

}  // namespace axipack::sys
