// Indirect-stream benchmarks: spmv, pagerank, sssp on CSR data (paper
// §III-A). On the PACK system these use the new in-memory-indexed
// instruction vlimxei, pushing index resolution into the AXI-Pack
// controller; on BASE/IDEAL indices are first fetched into a vector
// register (vle, tagged as index traffic) and gathered with vluxei.
#include <cassert>
#include <cstring>
#include <vector>

#include "util/rng.hpp"
#include "workloads/data.hpp"
#include "workloads/golden.hpp"
#include "workloads/kernels_detail.hpp"
#include "workloads/workloads.hpp"

namespace axipack::wl::detail {

using vproc::VecProgram;

namespace {

std::vector<float> host_copy(const mem::BackingStore& store,
                             std::uint64_t addr, std::uint32_t len) {
  std::vector<float> out(len);
  store.read(addr, out.data(), 4ull * len);
  return out;
}

/// Emits the gather + multiply-accumulate-reduce body for one CSR row chunk.
/// Returns the product register holding the chunk's elementwise products.
struct RowChunkEmitter {
  const WorkloadConfig& cfg;
  const CsrMatrix& m;
  std::uint64_t gather_base;  ///< array being gathered (x / r_old / dist_old)
  VecProgram& p;

  /// Emits loads + elementwise op for elements [k0, k0+len) of the CSR
  /// arrays; `buf` selects the double-buffer set; `combine` is the
  /// elementwise op kind (vfmul_vv for spmv/prank, vfadd_vv for sssp).
  int emit(std::uint32_t k0, std::uint32_t len, unsigned buf,
           vproc::OpKind combine) const {
    const int vidx = static_cast<int>(0 + buf);   // v0/v1
    const int vval = static_cast<int>(2 + buf);   // v2/v3
    const int vgat = static_cast<int>(4 + buf);   // v4/v5
    const int vres = static_cast<int>(6 + buf);   // v6/v7
    const std::uint64_t idx_addr = m.colidx_addr + 4ull * k0;
    const std::uint64_t val_addr = m.vals_addr + 4ull * k0;
    p.push(vproc::op_scalar(cfg.loop_overhead));
    if (cfg.in_memory_indices) {
      p.push(vproc::op_vle(vval, val_addr, len));
      p.push(vproc::op_vlimxei(vgat, gather_base, idx_addr, len));
    } else {
      p.push(vproc::op_vle(vidx, idx_addr, len, axi::Traffic::index));
      p.push(vproc::op_vle(vval, val_addr, len));
      p.push(vproc::op_vluxei(vgat, gather_base, vidx, len));
    }
    vproc::VecOp op;
    op.kind = combine;
    op.vd = static_cast<std::int8_t>(vres);
    op.vs1 = static_cast<std::int8_t>(vval);
    op.vs2 = static_cast<std::int8_t>(vgat);
    op.vl = len;
    p.push(op);
    return vres;
  }
};

}  // namespace

WorkloadInstance build_spmv(mem::BackingStore& store,
                            const WorkloadConfig& cfg) {
  util::Rng rng(cfg.seed);
  const std::uint32_t n = cfg.n;
  const CsrMatrix m = gen_csr_matrix(store, n, n, cfg.nnz_per_row, rng);
  const DenseVector x = gen_dense_vector(store, n, rng);
  const DenseVector y = gen_zero_vector(store, n);
  const std::vector<float> host_x = host_copy(store, x.addr, n);
  std::vector<float> expect = ref_spmv(m.rowptr, m.colidx, m.vals, host_x);

  WorkloadInstance inst;
  inst.program.name = "spmv";
  VecProgram& p = inst.program;
  const RowChunkEmitter emitter{cfg, m, x.addr, p};
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t k0 = m.rowptr[i];
    const std::uint32_t row_len = m.rowptr[i + 1] - k0;
    for (std::uint32_t off = 0; off < row_len; off += cfg.vlmax) {
      const std::uint32_t len = std::min(cfg.vlmax, row_len - off);
      const int vres =
          emitter.emit(k0 + off, len, i % 2, vproc::OpKind::vfmul_vv);
      vproc::VecOp red = vproc::op_vredsum(vres, y.elem_addr(i), len);
      red.post_accumulate = off > 0;
      p.push(red);
    }
  }
  inst.payload_read_bytes = m.nnz * 8;

  inst.check = [addr = y.addr, n, expect = std::move(expect)](
                   const mem::BackingStore& s, std::string& msg) {
    const std::vector<float> got = host_copy(s, addr, n);
    return nearly_equal(expect, got, 2e-3f, msg);
  };
  return inst;
}

WorkloadInstance build_prank(mem::BackingStore& store,
                             const WorkloadConfig& cfg) {
  util::Rng rng(cfg.seed);
  const std::uint32_t n = cfg.n;
  constexpr float kDamping = 0.85f;
  const CsrMatrix m = gen_graph_csr(store, n, cfg.nnz_per_row, rng,
                                    /*row_stochastic=*/true);
  // Ping-pong rank arrays; r[0] starts uniform.
  DenseVector r[2] = {gen_zero_vector(store, n), gen_zero_vector(store, n)};
  {
    const std::vector<float> init(n, 1.0f / static_cast<float>(n));
    store.write(r[0].addr, init.data(), 4ull * n);
  }
  std::vector<float> expect =
      ref_pagerank(m.rowptr, m.colidx, m.vals, n, cfg.iterations, kDamping);

  WorkloadInstance inst;
  inst.program.name = "prank";
  VecProgram& p = inst.program;
  const float base = (1.0f - kDamping) / static_cast<float>(n);
  for (std::uint32_t it = 0; it < cfg.iterations; ++it) {
    const DenseVector& r_old = r[it % 2];
    const DenseVector& r_new = r[1 - it % 2];
    if (it > 0) p.push(vproc::op_fence());  // previous sweep's results land
    const RowChunkEmitter emitter{cfg, m, r_old.addr, p};
    for (std::uint32_t u = 0; u < n; ++u) {
      const std::uint32_t k0 = m.rowptr[u];
      const std::uint32_t row_len = m.rowptr[u + 1] - k0;
      assert(row_len > 0 && "graph generator guarantees in-degree >= 1");
      for (std::uint32_t off = 0; off < row_len; off += cfg.vlmax) {
        const std::uint32_t len = std::min(cfg.vlmax, row_len - off);
        const int vres =
            emitter.emit(k0 + off, len, u % 2, vproc::OpKind::vfmul_vv);
        vproc::VecOp red = vproc::op_vredsum(vres, r_new.elem_addr(u), len);
        if (off + len >= row_len && off == 0) {
          red.post_scale = kDamping;
          red.post_add = base;
        } else {
          // Chunked rows: accumulate raw sums, scale on the last chunk.
          red.post_accumulate = off > 0;
          if (off + len >= row_len) {
            red.post_scale = kDamping;
            red.post_add = base;
          }
        }
        p.push(red);
      }
    }
  }
  inst.payload_read_bytes = cfg.iterations * m.nnz * 8;

  const std::uint64_t result_addr = r[cfg.iterations % 2].addr;
  inst.check = [addr = result_addr, n, expect = std::move(expect)](
                   const mem::BackingStore& s, std::string& msg) {
    const std::vector<float> got = host_copy(s, addr, n);
    return nearly_equal(expect, got, 2e-3f, msg);
  };
  return inst;
}

WorkloadInstance build_sssp(mem::BackingStore& store,
                            const WorkloadConfig& cfg) {
  util::Rng rng(cfg.seed);
  const std::uint32_t n = cfg.n;
  constexpr float kInf = 1e30f;
  constexpr std::uint32_t kSource = 0;
  const CsrMatrix m = gen_graph_csr(store, n, cfg.nnz_per_row, rng,
                                    /*row_stochastic=*/false);
  DenseVector dist[2] = {gen_zero_vector(store, n), gen_zero_vector(store, n)};
  {
    std::vector<float> init(n, kInf);
    init[kSource] = 0.0f;
    store.write(dist[0].addr, init.data(), 4ull * n);
  }
  std::vector<float> expect =
      ref_sssp(m.rowptr, m.colidx, m.vals, n, cfg.iterations, kSource);

  WorkloadInstance inst;
  inst.program.name = "sssp";
  VecProgram& p = inst.program;
  for (std::uint32_t it = 0; it < cfg.iterations; ++it) {
    const DenseVector& d_old = dist[it % 2];
    const DenseVector& d_new = dist[1 - it % 2];
    if (it > 0) p.push(vproc::op_fence());
    // Jacobi sweep: start from the previous distances (vector copy), then
    // relax every node against d_old.
    for (std::uint32_t off = 0; off < n; off += cfg.vlmax) {
      const std::uint32_t len = std::min(cfg.vlmax, n - off);
      p.push(vproc::op_scalar(cfg.loop_overhead));
      p.push(vproc::op_vle(8, d_old.elem_addr(off), len));
      p.push(vproc::op_vse(8, d_new.elem_addr(off), len));
    }
    const RowChunkEmitter emitter{cfg, m, d_old.addr, p};
    for (std::uint32_t u = 0; u < n; ++u) {
      const std::uint32_t k0 = m.rowptr[u];
      const std::uint32_t row_len = m.rowptr[u + 1] - k0;
      for (std::uint32_t off = 0; off < row_len; off += cfg.vlmax) {
        const std::uint32_t len = std::min(cfg.vlmax, row_len - off);
        const int vres =
            emitter.emit(k0 + off, len, u % 2, vproc::OpKind::vfadd_vv);
        vproc::VecOp red = vproc::op_vredmin(vres, d_new.elem_addr(u), len);
        red.post_min_with_dest = true;
        p.push(red);
      }
    }
  }
  inst.payload_read_bytes = cfg.iterations * m.nnz * 8;

  const std::uint64_t result_addr = dist[cfg.iterations % 2].addr;
  inst.check = [addr = result_addr, n, expect = std::move(expect)](
                   const mem::BackingStore& s, std::string& msg) {
    const std::vector<float> got = host_copy(s, addr, n);
    return nearly_equal(expect, got, 1e-5f, msg);
  };
  return inst;
}

}  // namespace axipack::wl::detail
