// Strided-stream benchmarks: ismt (in-situ matrix transpose), gemv and trmv
// with row-wise and column-wise dataflows (paper §III-A). Also hosts the
// build_workload dispatcher.
#include <cassert>
#include <vector>

#include "util/rng.hpp"
#include "workloads/data.hpp"
#include "workloads/golden.hpp"
#include "workloads/kernels_detail.hpp"
#include "workloads/workloads.hpp"

namespace axipack::wl {

using vproc::VecProgram;

const char* kernel_name(KernelKind k) {
  switch (k) {
    case KernelKind::ismt: return "ismt";
    case KernelKind::gemv: return "gemv";
    case KernelKind::trmv: return "trmv";
    case KernelKind::spmv: return "spmv";
    case KernelKind::prank: return "prank";
    case KernelKind::sssp: return "sssp";
  }
  return "?";
}

bool kernel_is_indirect(KernelKind k) {
  return k == KernelKind::spmv || k == KernelKind::prank ||
         k == KernelKind::sssp;
}

WorkloadInstance build_workload(mem::BackingStore& store,
                                const WorkloadConfig& cfg) {
  switch (cfg.kernel) {
    case KernelKind::ismt: return detail::build_ismt(store, cfg);
    case KernelKind::gemv: return detail::build_gemv(store, cfg);
    case KernelKind::trmv: return detail::build_trmv(store, cfg);
    case KernelKind::spmv: return detail::build_spmv(store, cfg);
    case KernelKind::prank: return detail::build_prank(store, cfg);
    case KernelKind::sssp: return detail::build_sssp(store, cfg);
  }
  assert(false);
  return {};
}

namespace detail {

namespace {

/// Reads a float array back from simulated memory.
std::vector<float> host_copy(const mem::BackingStore& store,
                             std::uint64_t addr, std::uint32_t len) {
  std::vector<float> out(len);
  store.read(addr, out.data(), 4ull * len);
  return out;
}

}  // namespace

WorkloadInstance build_ismt(mem::BackingStore& store,
                            const WorkloadConfig& cfg) {
  util::Rng rng(cfg.seed);
  const std::uint32_t n = cfg.n;
  const DenseMatrix a = gen_dense_matrix(store, n, n, rng);
  std::vector<float> expect = host_copy(store, a.addr, n * n);
  ref_transpose(expect, n);

  WorkloadInstance inst;
  inst.program.name = "ismt";
  VecProgram& p = inst.program;
  // For each row i, swap the row tail A[i][i+1..n) with the column tail
  // A[i+1..n)[i]: one contiguous and one strided load, then one strided and
  // one contiguous store. Loads double-buffer in v0/v1.
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    const std::uint32_t total = n - 1 - i;
    for (std::uint32_t off = 0; off < total; off += cfg.vlmax) {
      const std::uint32_t len = std::min(cfg.vlmax, total - off);
      const std::uint64_t row_addr = a.elem_addr(i, i + 1 + off);
      const std::uint64_t col_addr = a.elem_addr(i + 1 + off, i);
      p.push(vproc::op_scalar(cfg.loop_overhead));
      p.push(vproc::op_vle(0, row_addr, len));
      p.push(vproc::op_vlse(1, col_addr, a.row_stride_bytes(), len));
      p.push(vproc::op_vsse(0, col_addr, a.row_stride_bytes(), len));
      p.push(vproc::op_vse(1, row_addr, len));
    }
  }
  inst.payload_read_bytes = std::uint64_t{n} * (n - 1) * 4;

  inst.check = [&store, addr = a.addr, n,
                expect = std::move(expect)](const mem::BackingStore& s,
                                            std::string& msg) {
    (void)store;
    const std::vector<float> got = host_copy(s, addr, n * n);
    return nearly_equal(expect, got, 0.0f, msg);
  };
  return inst;
}

WorkloadInstance build_gemv(mem::BackingStore& store,
                            const WorkloadConfig& cfg) {
  util::Rng rng(cfg.seed);
  const std::uint32_t n = cfg.n;
  assert(n <= cfg.vlmax && "row-wise gemv keeps x in one register group");
  const DenseMatrix a = gen_dense_matrix(store, n, n, rng);
  const DenseVector x = gen_dense_vector(store, n, rng);
  const DenseVector y = gen_zero_vector(store, n);
  const std::vector<float> host_a = host_copy(store, a.addr, n * n);
  const std::vector<float> host_x = host_copy(store, x.addr, n);
  std::vector<float> expect = ref_gemv(host_a, host_x, n);

  WorkloadInstance inst;
  inst.program.name =
      cfg.dataflow == Dataflow::rowwise ? "gemv-row" : "gemv-col";
  VecProgram& p = inst.program;
  if (cfg.dataflow == Dataflow::rowwise) {
    // Per row: contiguous row load, element-wise multiply with x (held in
    // v30), then a sum reduction — the reduction-bound dataflow.
    p.push(vproc::op_vle(30, x.addr, n));
    for (std::uint32_t i = 0; i < n; ++i) {
      const int va = static_cast<int>(i % 2);      // v0/v1
      const int vp = 2 + static_cast<int>(i % 2);  // v2/v3
      p.push(vproc::op_scalar(cfg.loop_overhead));
      p.push(vproc::op_vle(va, a.elem_addr(i, 0), n));
      p.push(vproc::op_vfmul_vv(vp, va, 30, n));
      p.push(vproc::op_vredsum(vp, y.elem_addr(i), n));
    }
  } else {
    // Per column: strided column load, scalar-times-vector accumulate into
    // the y register — the strided-stream dataflow AXI-Pack accelerates.
    p.push(vproc::op_vbrd(8, 0.0f, n));
    for (std::uint32_t j = 0; j < n; ++j) {
      const int va = static_cast<int>(j % 2);
      p.push(vproc::op_scalar(cfg.loop_overhead));
      p.push(vproc::op_vlse(va, a.elem_addr(0, j), a.row_stride_bytes(), n));
      p.push(vproc::op_vfmacc_vf_mem(8, va, x.elem_addr(j), n));
    }
    p.push(vproc::op_vse(8, y.addr, n));
  }
  inst.payload_read_bytes = std::uint64_t{n} * n * 4 + std::uint64_t{n} * 4;

  inst.check = [addr = y.addr, n, expect = std::move(expect)](
                   const mem::BackingStore& s, std::string& msg) {
    const std::vector<float> got = host_copy(s, addr, n);
    return nearly_equal(expect, got, 2e-3f, msg);
  };
  return inst;
}

WorkloadInstance build_trmv(mem::BackingStore& store,
                            const WorkloadConfig& cfg) {
  util::Rng rng(cfg.seed);
  const std::uint32_t n = cfg.n;
  assert(n <= cfg.vlmax);
  const DenseMatrix a = gen_dense_matrix(store, n, n, rng);
  const DenseVector x = gen_dense_vector(store, n, rng);
  const DenseVector y = gen_zero_vector(store, n);
  const std::vector<float> host_a = host_copy(store, a.addr, n * n);
  const std::vector<float> host_x = host_copy(store, x.addr, n);
  std::vector<float> expect = ref_trmv_upper(host_a, host_x, n);

  WorkloadInstance inst;
  inst.program.name =
      cfg.dataflow == Dataflow::rowwise ? "trmv-row" : "trmv-col";
  VecProgram& p = inst.program;
  std::uint64_t payload = 0;
  if (cfg.dataflow == Dataflow::rowwise) {
    // Per row i: load the row tail A[i][i..n); align x's tail with a slide.
    p.push(vproc::op_vle(30, x.addr, n));
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t len = n - i;
      const int va = static_cast<int>(i % 2);
      const int vx = 28 - static_cast<int>(i % 2);  // v28/v27: slide dst
      const int vp = 2 + static_cast<int>(i % 2);
      p.push(vproc::op_scalar(cfg.loop_overhead));
      p.push(vproc::op_vle(va, a.elem_addr(i, i), len));
      p.push(vproc::op_vslidedown(vx, 30, i, len));
      p.push(vproc::op_vfmul_vv(vp, va, vx, len));
      p.push(vproc::op_vredsum(vp, y.elem_addr(i), len));
      payload += std::uint64_t{len} * 4;
    }
  } else {
    // Per column j: strided load of rows 0..j of column j, accumulate into
    // the first j+1 elements of y.
    p.push(vproc::op_vbrd(8, 0.0f, n));
    for (std::uint32_t j = 0; j < n; ++j) {
      const std::uint32_t len = j + 1;
      const int va = static_cast<int>(j % 2);
      p.push(vproc::op_scalar(cfg.loop_overhead));
      p.push(vproc::op_vlse(va, a.elem_addr(0, j), a.row_stride_bytes(), len));
      p.push(vproc::op_vfmacc_vf_mem(8, va, x.elem_addr(j), len));
      payload += std::uint64_t{len} * 4;
    }
    p.push(vproc::op_vse(8, y.addr, n));
  }
  inst.payload_read_bytes = payload + std::uint64_t{n} * 4;

  inst.check = [addr = y.addr, n, expect = std::move(expect)](
                   const mem::BackingStore& s, std::string& msg) {
    const std::vector<float> got = host_copy(s, addr, n);
    return nearly_equal(expect, got, 2e-3f, msg);
  };
  return inst;
}

}  // namespace detail
}  // namespace axipack::wl
