#include <algorithm>
#include <cassert>

#include "workloads/data.hpp"

namespace axipack::wl {

/// Writes the host-side CSR arrays into simulated memory and fills the
/// descriptor addresses.
void place_csr(mem::BackingStore& store, CsrMatrix& m) {
  m.rowptr_addr = store.alloc(4ull * m.rowptr.size(), 64);
  m.colidx_addr = store.alloc(4ull * std::max<std::size_t>(m.colidx.size(), 1), 64);
  m.vals_addr = store.alloc(4ull * std::max<std::size_t>(m.vals.size(), 1), 64);
  store.write(m.rowptr_addr, m.rowptr.data(), m.rowptr.size() * 4);
  if (!m.colidx.empty()) {
    store.write(m.colidx_addr, m.colidx.data(), m.colidx.size() * 4);
    store.write(m.vals_addr, m.vals.data(), m.vals.size() * 4);
  }
}

CsrMatrix gen_csr_matrix(mem::BackingStore& store, std::uint32_t rows,
                         std::uint32_t cols, std::uint32_t avg_nnz_per_row,
                         util::Rng& rng) {
  assert(avg_nnz_per_row >= 1);
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.rowptr.assign(rows + 1, 0);
  for (std::uint32_t r = 0; r < rows; ++r) {
    // Row lengths vary around the average but can never exceed the column
    // count (a row has at most `cols` distinct nonzeros).
    const std::int64_t hi =
        std::min<std::int64_t>(cols, avg_nnz_per_row + avg_nnz_per_row / 2);
    const std::int64_t lo =
        std::min<std::int64_t>(std::max<std::int64_t>(1, avg_nnz_per_row / 2),
                               hi);
    const auto len = static_cast<std::uint32_t>(rng.range(lo, hi));
    const auto cols_of_row = rng.sample_without_replacement(cols, len);
    for (std::uint32_t c : cols_of_row) {
      m.colidx.push_back(c);
      m.vals.push_back(rng.uniform(-1.0f, 1.0f));
    }
    m.rowptr[r + 1] = static_cast<std::uint32_t>(m.colidx.size());
  }
  m.nnz = m.colidx.size();
  place_csr(store, m);
  return m;
}

}  // namespace axipack::wl
