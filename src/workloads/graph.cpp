#include <algorithm>

#include "workloads/data.hpp"

namespace axipack::wl {

CsrMatrix gen_graph_csr(mem::BackingStore& store, std::uint32_t nodes,
                        std::uint32_t avg_degree, util::Rng& rng,
                        bool row_stochastic) {
  CsrMatrix m;
  m.rows = nodes;
  m.cols = nodes;
  m.rowptr.assign(nodes + 1, 0);
  // Skewed in-degree: most nodes near the average, a few hubs (power-law-ish
  // tail), mimicking real graph datasets.
  for (std::uint32_t u = 0; u < nodes; ++u) {
    std::uint32_t deg;
    const std::uint64_t roll = rng.below(100);
    if (roll < 80) {
      deg = static_cast<std::uint32_t>(
          rng.range(1, std::max<std::int64_t>(1, 2 * avg_degree)));
    } else {
      deg = static_cast<std::uint32_t>(rng.range(
          avg_degree, std::max<std::int64_t>(avg_degree, 4 * avg_degree)));
    }
    deg = std::min(deg, nodes);
    const auto preds = rng.sample_without_replacement(nodes, deg);
    for (std::uint32_t p : preds) {
      m.colidx.push_back(p);
      m.vals.push_back(rng.uniform(0.05f, 1.0f));  // positive edge weights
    }
    m.rowptr[u + 1] = static_cast<std::uint32_t>(m.colidx.size());
  }
  if (row_stochastic) {
    // Pagerank wants out-degree-normalized weights: our rows hold incoming
    // edges, so normalize each entry by its source node's out-degree.
    std::vector<std::uint32_t> out_degree(nodes, 0);
    for (std::uint32_t c : m.colidx) ++out_degree[c];
    for (std::size_t k = 0; k < m.colidx.size(); ++k) {
      m.vals[k] = 1.0f / static_cast<float>(std::max<std::uint32_t>(
                             1, out_degree[m.colidx[k]]));
    }
  }
  m.nnz = m.colidx.size();
  place_csr(store, m);
  return m;
}

}  // namespace axipack::wl
