#include <vector>

#include "workloads/data.hpp"

namespace axipack::wl {

DenseMatrix gen_dense_matrix(mem::BackingStore& store, std::uint32_t rows,
                             std::uint32_t cols, util::Rng& rng) {
  DenseMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.addr = store.alloc(4ull * rows * cols, 64);
  std::vector<float> host(std::size_t{rows} * cols);
  for (auto& v : host) v = rng.uniform(-1.0f, 1.0f);
  store.write(m.addr, host.data(), host.size() * 4);
  return m;
}

DenseVector gen_dense_vector(mem::BackingStore& store, std::uint32_t len,
                             util::Rng& rng, float lo, float hi) {
  DenseVector v;
  v.len = len;
  v.addr = store.alloc(4ull * len, 64);
  std::vector<float> host(len);
  for (auto& x : host) x = rng.uniform(lo, hi);
  store.write(v.addr, host.data(), host.size() * 4);
  return v;
}

DenseVector gen_zero_vector(mem::BackingStore& store, std::uint32_t len) {
  DenseVector v;
  v.len = len;
  v.addr = store.alloc(4ull * len, 64);
  const std::vector<float> host(len, 0.0f);
  store.write(v.addr, host.data(), host.size() * 4);
  return v;
}

}  // namespace axipack::wl
