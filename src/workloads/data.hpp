// Workload data descriptors and generators.
//
// Generators place inputs into the simulated memory image (BackingStore) and
// return descriptors with the addresses the kernels need. All randomness is
// seeded, so runs are exactly reproducible.
//
// Substitution note (see DESIGN.md): the paper uses SuiteSparse matrices
// (e.g. heart1, 390 average nonzeros/row) and real graphs; we synthesize CSR
// matrices/graphs with matching statistical structure (row-length
// distribution, random column indices), which drive the memory system the
// same way.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/backing_store.hpp"
#include "util/rng.hpp"

namespace axipack::wl {

/// Row-major dense FP32 matrix in simulated memory.
struct DenseMatrix {
  std::uint64_t addr = 0;
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;

  std::uint64_t elem_addr(std::uint32_t r, std::uint32_t c) const {
    return addr + 4ull * (std::uint64_t{r} * cols + c);
  }
  std::int64_t row_stride_bytes() const { return 4ll * cols; }
};

/// FP32 vector in simulated memory.
struct DenseVector {
  std::uint64_t addr = 0;
  std::uint32_t len = 0;

  std::uint64_t elem_addr(std::uint32_t i) const { return addr + 4ull * i; }
};

/// CSR FP32 sparse matrix: rowptr (u32, rows+1), colidx (u32), vals (f32).
struct CsrMatrix {
  std::uint64_t rowptr_addr = 0;
  std::uint64_t colidx_addr = 0;
  std::uint64_t vals_addr = 0;
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::uint64_t nnz = 0;
  // Host-side copies for golden references and program generation.
  std::vector<std::uint32_t> rowptr;
  std::vector<std::uint32_t> colidx;
  std::vector<float> vals;
};

/// Uniform random dense matrix.
DenseMatrix gen_dense_matrix(mem::BackingStore& store, std::uint32_t rows,
                             std::uint32_t cols, util::Rng& rng);

/// Uniform random vector with values in [lo, hi).
DenseVector gen_dense_vector(mem::BackingStore& store, std::uint32_t len,
                             util::Rng& rng, float lo = -1.0f, float hi = 1.0f);

/// Zero-initialized vector (outputs).
DenseVector gen_zero_vector(mem::BackingStore& store, std::uint32_t len);

/// Random CSR matrix: each row gets a row length drawn uniformly from
/// [avg/2, 3*avg/2] (clamped to [1, cols]) with sorted distinct random
/// column indices — matching the irregular gather pattern of SuiteSparse
/// workloads at a configurable average nnz/row (the x-axis of Fig. 3e).
CsrMatrix gen_csr_matrix(mem::BackingStore& store, std::uint32_t rows,
                         std::uint32_t cols, std::uint32_t avg_nnz_per_row,
                         util::Rng& rng);

/// Random weighted digraph as a CSR matrix of *incoming* edges: row u lists
/// predecessors of u with positive edge weights — the layout pagerank and
/// sssp sweeps consume. Average in-degree `avg_degree`.
CsrMatrix gen_graph_csr(mem::BackingStore& store, std::uint32_t nodes,
                        std::uint32_t avg_degree, util::Rng& rng,
                        bool row_stochastic);

/// Shared by the CSR generators: writes host arrays into simulated memory.
void place_csr(mem::BackingStore& store, CsrMatrix& m);

}  // namespace axipack::wl
