// Internal: per-kernel builders shared between the two kernel TUs.
#pragma once

#include "workloads/workloads.hpp"

namespace axipack::wl::detail {

WorkloadInstance build_ismt(mem::BackingStore& store,
                            const WorkloadConfig& cfg);
WorkloadInstance build_gemv(mem::BackingStore& store,
                            const WorkloadConfig& cfg);
WorkloadInstance build_trmv(mem::BackingStore& store,
                            const WorkloadConfig& cfg);
WorkloadInstance build_spmv(mem::BackingStore& store,
                            const WorkloadConfig& cfg);
WorkloadInstance build_prank(mem::BackingStore& store,
                             const WorkloadConfig& cfg);
WorkloadInstance build_sssp(mem::BackingStore& store,
                            const WorkloadConfig& cfg);

}  // namespace axipack::wl::detail
