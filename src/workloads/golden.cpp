#include "workloads/golden.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace axipack::wl {

void ref_transpose(std::vector<float>& a, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      std::swap(a[std::size_t{i} * n + j], a[std::size_t{j} * n + i]);
    }
  }
}

std::vector<float> ref_gemv(const std::vector<float>& a,
                            const std::vector<float>& x, std::uint32_t n) {
  std::vector<float> y(n, 0.0f);
  for (std::uint32_t i = 0; i < n; ++i) {
    float acc = 0.0f;
    for (std::uint32_t j = 0; j < n; ++j) acc += a[std::size_t{i} * n + j] * x[j];
    y[i] = acc;
  }
  return y;
}

std::vector<float> ref_trmv_upper(const std::vector<float>& a,
                                  const std::vector<float>& x,
                                  std::uint32_t n) {
  std::vector<float> y(n, 0.0f);
  for (std::uint32_t i = 0; i < n; ++i) {
    float acc = 0.0f;
    for (std::uint32_t j = i; j < n; ++j) acc += a[std::size_t{i} * n + j] * x[j];
    y[i] = acc;
  }
  return y;
}

std::vector<float> ref_spmv(const std::vector<std::uint32_t>& rowptr,
                            const std::vector<std::uint32_t>& colidx,
                            const std::vector<float>& vals,
                            const std::vector<float>& x) {
  const std::size_t rows = rowptr.size() - 1;
  std::vector<float> y(rows, 0.0f);
  for (std::size_t i = 0; i < rows; ++i) {
    float acc = 0.0f;
    for (std::uint32_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      acc += vals[k] * x[colidx[k]];
    }
    y[i] = acc;
  }
  return y;
}

std::vector<float> ref_pagerank(const std::vector<std::uint32_t>& rowptr,
                                const std::vector<std::uint32_t>& colidx,
                                const std::vector<float>& vals,
                                std::uint32_t nodes, std::uint32_t iters,
                                float d) {
  std::vector<float> r(nodes, 1.0f / static_cast<float>(nodes));
  std::vector<float> r_new(nodes, 0.0f);
  const float base = (1.0f - d) / static_cast<float>(nodes);
  for (std::uint32_t it = 0; it < iters; ++it) {
    for (std::uint32_t u = 0; u < nodes; ++u) {
      float acc = 0.0f;
      for (std::uint32_t k = rowptr[u]; k < rowptr[u + 1]; ++k) {
        acc += vals[k] * r[colidx[k]];
      }
      r_new[u] = d * acc + base;
    }
    std::swap(r, r_new);
  }
  return r;
}

std::vector<float> ref_sssp(const std::vector<std::uint32_t>& rowptr,
                            const std::vector<std::uint32_t>& colidx,
                            const std::vector<float>& vals,
                            std::uint32_t nodes, std::uint32_t sweeps,
                            std::uint32_t source) {
  constexpr float kInf = 1e30f;
  std::vector<float> dist(nodes, kInf);
  dist[source] = 0.0f;
  std::vector<float> next(nodes);
  for (std::uint32_t it = 0; it < sweeps; ++it) {
    next = dist;  // Jacobi sweep: relax against the previous sweep's values
    for (std::uint32_t u = 0; u < nodes; ++u) {
      float best = kInf;
      for (std::uint32_t k = rowptr[u]; k < rowptr[u + 1]; ++k) {
        best = std::min(best, dist[colidx[k]] + vals[k]);
      }
      next[u] = std::min(next[u], best);
    }
    std::swap(dist, next);
  }
  return dist;
}

bool nearly_equal(const std::vector<float>& expect,
                  const std::vector<float>& got, float rel_tol,
                  std::string& msg) {
  if (expect.size() != got.size()) {
    msg = "size mismatch";
    return false;
  }
  for (std::size_t i = 0; i < expect.size(); ++i) {
    const float e = expect[i];
    const float g = got[i];
    const float scale = std::max({std::fabs(e), std::fabs(g), 1.0f});
    if (std::fabs(e - g) > rel_tol * scale) {
      std::ostringstream os;
      os << "mismatch at [" << i << "]: expected " << e << ", got " << g;
      msg = os.str();
      return false;
    }
  }
  return true;
}

}  // namespace axipack::wl
