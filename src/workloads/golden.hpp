// Golden scalar references for all benchmarks, plus tolerant comparison.
// References use the same FP32 element operations as the vector model;
// only summation order differs (reductions), so sum-based kernels compare
// with a relative tolerance and order-independent kernels compare exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace axipack::wl {

/// In-place transpose of a square row-major matrix.
void ref_transpose(std::vector<float>& a, std::uint32_t n);

/// y = A x (row-major dense).
std::vector<float> ref_gemv(const std::vector<float>& a,
                            const std::vector<float>& x, std::uint32_t n);

/// y = U x with U the upper triangle of `a` (including diagonal).
std::vector<float> ref_trmv_upper(const std::vector<float>& a,
                                  const std::vector<float>& x,
                                  std::uint32_t n);

/// y = A x in CSR.
std::vector<float> ref_spmv(const std::vector<std::uint32_t>& rowptr,
                            const std::vector<std::uint32_t>& colidx,
                            const std::vector<float>& vals,
                            const std::vector<float>& x);

/// `iters` Jacobi pagerank sweeps with damping `d` from uniform start.
/// The CSR rows hold incoming edges with out-degree-normalized weights.
std::vector<float> ref_pagerank(const std::vector<std::uint32_t>& rowptr,
                                const std::vector<std::uint32_t>& colidx,
                                const std::vector<float>& vals,
                                std::uint32_t nodes, std::uint32_t iters,
                                float d);

/// `sweeps` Jacobi Bellman-Ford sweeps from `source`; CSR rows hold incoming
/// edges with positive weights. Returns the distance vector.
std::vector<float> ref_sssp(const std::vector<std::uint32_t>& rowptr,
                            const std::vector<std::uint32_t>& colidx,
                            const std::vector<float>& vals,
                            std::uint32_t nodes, std::uint32_t sweeps,
                            std::uint32_t source);

/// Relative/absolute tolerant compare; fills `msg` on first mismatch.
bool nearly_equal(const std::vector<float>& expect,
                  const std::vector<float>& got, float rel_tol,
                  std::string& msg);

}  // namespace axipack::wl
