// Workload construction: each paper benchmark is built as (data in simulated
// memory, vector program, golden check). The same workload builds for all
// three systems; only the dataflow (row/col-wise) and indexing style
// (in-memory vs core-side) differ, mirroring the paper's methodology of
// running the fastest variant per system.
#pragma once

#include <functional>
#include <string>

#include "mem/backing_store.hpp"
#include "vproc/program.hpp"

namespace axipack::wl {

enum class KernelKind : std::uint8_t { ismt, gemv, trmv, spmv, prank, sssp };

enum class Dataflow : std::uint8_t { rowwise, colwise };

const char* kernel_name(KernelKind k);
bool kernel_is_indirect(KernelKind k);

struct WorkloadConfig {
  KernelKind kernel = KernelKind::gemv;
  std::uint32_t n = 256;             ///< matrix dimension / node count
  std::uint32_t nnz_per_row = 390;   ///< sparse workloads (heart1-like)
  Dataflow dataflow = Dataflow::colwise;  ///< gemv/trmv only
  bool in_memory_indices = true;     ///< vlimxei (PACK) vs vle+vluxei
  std::uint32_t iterations = 2;      ///< prank/sssp sweeps
  std::uint64_t seed = 42;
  std::uint32_t loop_overhead = 4;   ///< scalar cycles per inner iteration
  std::uint32_t vlmax = 1024;
};

struct WorkloadInstance {
  vproc::VecProgram program;
  /// Verifies outputs in the memory image against a golden scalar
  /// reference; fills `msg` on mismatch.
  std::function<bool(const mem::BackingStore&, std::string&)> check;
  /// Useful data bytes the kernel must read (for reporting).
  std::uint64_t payload_read_bytes = 0;
};

/// Generates inputs into `store` and builds the program + golden check.
WorkloadInstance build_workload(mem::BackingStore& store,
                                const WorkloadConfig& cfg);

}  // namespace axipack::wl
