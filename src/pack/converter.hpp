// Shared infrastructure for the five burst converters inside the AXI-Pack
// adapter (paper Fig. 2b): lane I/O bundles, the request regulator that
// bounds per-lane in-flight words to the decoupling-queue depth, and packed-
// stream geometry (element <-> word-slot <-> lane mapping).
//
// Packed-stream geometry
// ----------------------
// A pack burst moving `num_elems` elements of `es` bytes on a bus of
// `bus_bytes` is, on the memory side, a stream of 32-bit *word slots*:
//
//   slot s (0-based) belongs to element i = s / wpe at word k = s % wpe,
//   where wpe = es / 4 (words per element, es >= 4).
//
// Beat b of the packed R/W data consists of slots [b*n, (b+1)*n) where
// n = bus_bytes / 4 is the lane count; slot s is always fetched/written by
// lane s % n. This fixed slot->lane mapping is what lets each lane run an
// independent request pointer (Fig. 2c "pointer0..n-1") while the beat
// packer reassembles in order from the per-lane response queues.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "axi/types.hpp"
#include "mem/word.hpp"
#include "sim/kernel.hpp"
#include "util/bits.hpp"

namespace axipack::pack {

/// One lane's request/response FIFO pair as seen by a converter. The FIFOs
/// are owned by the adapter's port mux.
struct LaneIO {
  sim::Fifo<mem::WordReq>* req = nullptr;
  sim::Fifo<mem::WordResp>* resp = nullptr;
};

/// Word-level issue counters of the indirect converters. Duplicate indices
/// fan one burst out to repeated element words; counting *words requested*
/// separately from memory words issued (the port mux / coalescer view)
/// keeps merged requests from being double-counted as issued traffic.
struct IndirectWordStats {
  std::uint64_t idx_words = 0;   ///< index-array words fetched
  std::uint64_t elem_words = 0;  ///< element words requested by the lanes
};

/// Bounds the number of word requests in flight per lane (issued but not yet
/// consumed by the beat packer / response handler) to the decoupling-queue
/// depth — paper Fig. 2c "req regu".
class Regulator {
 public:
  Regulator(unsigned lanes, unsigned depth)
      : in_flight_(lanes, 0), depth_(depth) {}

  bool can_issue(unsigned lane) const { return in_flight_[lane] < depth_; }
  void on_issue(unsigned lane) { ++in_flight_[lane]; }
  void on_retire(unsigned lane) {
    assert(in_flight_[lane] > 0);
    --in_flight_[lane];
  }
  unsigned in_flight(unsigned lane) const { return in_flight_[lane]; }

 private:
  std::vector<unsigned> in_flight_;
  unsigned depth_;
};

/// Geometry of one pack burst. The adapter only supports element sizes that
/// are multiples of the 32-bit word (the paper evaluates 32..256-bit
/// elements); sub-word elements would require read-modify merging the
/// proof-of-concept controller does not implement either.
struct PackGeom {
  unsigned bus_bytes = 32;
  unsigned lanes = 8;        ///< n = bus_bytes / 4
  unsigned elem_bytes = 4;   ///< es
  unsigned wpe = 1;          ///< words per element
  std::uint64_t num_elems = 0;
  std::uint64_t total_words = 0;  ///< num_elems * wpe
  std::uint64_t beats = 0;        ///< ceil(total_words / lanes)

  static PackGeom make(unsigned bus_bytes, unsigned elem_bytes,
                       std::uint64_t num_elems) {
    assert(elem_bytes >= 4 && elem_bytes % 4 == 0);
    assert(bus_bytes % elem_bytes == 0);
    PackGeom g;
    g.bus_bytes = bus_bytes;
    g.lanes = bus_bytes / 4;
    g.elem_bytes = elem_bytes;
    g.wpe = elem_bytes / 4;
    g.num_elems = num_elems;
    g.total_words = num_elems * g.wpe;
    g.beats = util::ceil_div<std::uint64_t>(g.total_words, g.lanes);
    return g;
  }

  /// Element index owning word slot `s`.
  std::uint64_t elem_of_slot(std::uint64_t s) const { return s / wpe; }
  /// Word offset of slot `s` within its element (bytes = 4 * this).
  unsigned word_in_elem(std::uint64_t s) const {
    return static_cast<unsigned>(s % wpe);
  }
  /// Slot handled by `lane` in beat `b`.
  std::uint64_t slot(std::uint64_t beat, unsigned lane) const {
    return beat * lanes + lane;
  }
  bool slot_valid(std::uint64_t s) const { return s < total_words; }
  /// Number of valid lanes (slots) in beat `b`.
  unsigned valid_lanes(std::uint64_t beat) const {
    const std::uint64_t first = beat * lanes;
    if (first >= total_words) return 0;
    const std::uint64_t left = total_words - first;
    return static_cast<unsigned>(left < lanes ? left : lanes);
  }
  /// Payload bytes of beat `b` (partial on the final beat).
  unsigned beat_useful_bytes(std::uint64_t beat) const {
    return valid_lanes(beat) * 4;
  }
};

/// Interface the adapter uses to drive a converter. A converter is also a
/// sim::Component; its tick() advances request generation and packing.
class Converter : public sim::Component {
 public:
  ~Converter() override = default;

  /// Read-side: converters that serve AR bursts override these.
  virtual bool can_accept_ar() const { return false; }
  virtual void accept_ar(const axi::AxiAr&) { assert(false); }
  virtual sim::Fifo<axi::AxiR>* r_out() { return nullptr; }

  /// Write-side: converters that serve AW bursts override these.
  virtual bool can_accept_aw() const { return false; }
  virtual void accept_aw(const axi::AxiAw&) { assert(false); }
  virtual bool can_accept_w() const { return false; }
  virtual void accept_w(const axi::AxiW&) { assert(false); }
  virtual sim::Fifo<axi::AxiB>* b_out() { return nullptr; }

  /// True when no burst is in flight (used for drain checks in tests).
  virtual bool idle() const = 0;

  /// Converters receive work through accept_*() calls (which wake them),
  /// not through Fifo pops, so an idle converter can always sleep; while a
  /// burst is in flight every cycle may issue requests or pack responses.
  bool quiescent() const override { return idle(); }
};

}  // namespace axipack::pack
