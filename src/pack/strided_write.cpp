#include "pack/strided_write.hpp"

#include <cassert>

namespace axipack::pack {

StridedWriteConverter::StridedWriteConverter(sim::Kernel& k,
                                             std::vector<LaneIO> lanes,
                                             unsigned bus_bytes,
                                             unsigned queue_depth,
                                             std::size_t b_out_depth,
                                             std::size_t max_bursts)
    : lanes_(std::move(lanes)),
      bus_bytes_(bus_bytes),
      regulator_(static_cast<unsigned>(lanes_.size()), queue_depth),
      b_out_(k, b_out_depth, 1),
      max_bursts_(max_bursts) {
  k.add(*this);
}

bool StridedWriteConverter::can_accept_aw() const {
  return bursts_.size() < max_bursts_;
}

void StridedWriteConverter::accept_aw(const axi::AxiAw& aw) {
  assert(aw.pack.has_value() && !aw.pack->indir);
  wake_self();
  Burst bu;
  bu.geom = PackGeom::make(bus_bytes_, aw.beat_bytes(), aw.pack->num_elems);
  bu.base = aw.addr;
  bu.stride = aw.pack->stride;
  bu.id = aw.id;
  bursts_.push_back(bu);
}

StridedWriteConverter::Burst* StridedWriteConverter::unpack_target() {
  for (Burst& bu : bursts_) {
    if (bu.unpack_beat < bu.geom.beats) return &bu;
  }
  return nullptr;
}

bool StridedWriteConverter::can_accept_w() const {
  // A W beat is consumed in one cycle by issuing all its word writes; it can
  // be accepted only when every valid lane has request-queue space and
  // regulator headroom.
  auto* self = const_cast<StridedWriteConverter*>(this);
  Burst* bu = self->unpack_target();
  if (bu == nullptr) return false;
  const unsigned valid = bu->geom.valid_lanes(bu->unpack_beat);
  for (unsigned l = 0; l < valid; ++l) {
    if (!regulator_.can_issue(l)) return false;
    if (!lanes_[l].req->can_push()) return false;
  }
  return true;
}

void StridedWriteConverter::accept_w(const axi::AxiW& w) {
  Burst* bu = unpack_target();
  assert(bu != nullptr);
  const unsigned valid = bu->geom.valid_lanes(bu->unpack_beat);
  for (unsigned l = 0; l < valid; ++l) {
    mem::WordReq req;
    req.addr = slot_addr(*bu, bu->geom.slot(bu->unpack_beat, l));
    req.write = true;
    req.wstrb = 0xF;
    axi::extract_bytes(w.data, 4 * l,
                       reinterpret_cast<std::uint8_t*>(&req.wdata), 4);
    req.tag = l;
    lanes_[l].req->push(req);
    regulator_.on_issue(l);
  }
  ++bu->unpack_beat;
  assert(w.last == (bu->unpack_beat == bu->geom.beats));
}

void StridedWriteConverter::tick() {
  // Collect write acknowledgements (one per lane per cycle); they arrive in
  // issue order, so each belongs to the oldest burst still missing acks.
  for (unsigned l = 0; l < lanes_.size(); ++l) {
    if (!lanes_[l].resp->can_pop()) continue;
    const bool err = lanes_[l].resp->pop().error;
    regulator_.on_retire(l);
    for (Burst& bu : bursts_) {
      if (bu.acks < bu.geom.total_words) {
        ++bu.acks;
        bu.err |= err;
        break;
      }
    }
  }
  if (!bursts_.empty()) {
    Burst& bu = bursts_.front();
    if (bu.acks == bu.geom.total_words &&
        bu.unpack_beat == bu.geom.beats && b_out_.can_push()) {
      axi::AxiB b;
      b.id = bu.id;
      if (bu.err) b.resp = axi::kRespSlvErr;
      b_out_.push(b);
      bursts_.pop_front();
    }
  }
}

}  // namespace axipack::pack
