// Indirect read converter (paper Fig. 2d).
//
// Two stages share the n word-request ports through per-lane round-robin
// arbitration:
//
//  * The *index stage* fetches the index array contiguously (whole bus
//    lines), exactly like a strided-read request generator with stride ==
//    word size. Fetched words pass through offsets extraction, which unpacks
//    the 8/16/32-bit indices in stream order into an index window.
//  * The *element stage* shifts each index by log2(element size), adds the
//    element base address, and issues the word requests of the packed beats;
//    the beat packer then assembles R beats as in the strided converter.
//
// The index window is bounded, which throttles index prefetch; the element
// stage retires window entries once every word slot of an element has been
// issued. Bus utilization of this converter is bounded by r/(r+1) with
// r = elem_size/index_size, because every r data beats require one index
// line through the same ports — the effect quantified in paper Fig. 5a.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "axi/types.hpp"
#include "pack/converter.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"

namespace axipack::pack {

class IndirectReadConverter final : public Converter {
 public:
  /// `idx_lanes` non-empty splits the two stages onto separate lane
  /// bundles: the index stage issues on `idx_lanes`, the element stage on
  /// `lanes`, and both may issue on the same lane number in one cycle
  /// (the coalesced adapter's parallel index lanes — the stages then only
  /// compete at the port mux, not for a shared request FIFO). Empty keeps
  /// the shared-lane round-robin of the plain adapter.
  IndirectReadConverter(sim::Kernel& k, std::vector<LaneIO> lanes,
                        unsigned bus_bytes, unsigned queue_depth,
                        std::size_t r_out_depth = 4,
                        std::size_t idx_window_lines = 4,
                        std::size_t max_bursts = 2,
                        std::vector<LaneIO> idx_lanes = {});

  bool can_accept_ar() const override;
  void accept_ar(const axi::AxiAr& ar) override;
  sim::Fifo<axi::AxiR>* r_out() override { return &r_out_; }
  bool idle() const override { return bursts_.empty(); }

  /// Word-level issue counts (fan-out accounting): `elem_words` counts
  /// element words *requested* by the lanes — what the burst fans out to —
  /// not words issued to memory; with the coalescer in the path the two
  /// differ by exactly its merged count.
  const IndirectWordStats& word_stats() const { return word_stats_; }

  /// Attaches the system fault plan (nullptr = fault-free): packed beats
  /// leaving this converter may be bit-corrupted (delivered as SLVERR).
  void set_fault_plan(sim::FaultPlan* plan) { faults_ = plan; }

  void tick() override;

 private:
  // Tag bit 0 distinguishes the two stages' responses on the shared lanes.
  static constexpr std::uint32_t kIdxTag = 1;
  static constexpr std::uint32_t kElemTag = 0;

  struct Burst {
    PackGeom geom;
    std::uint64_t elem_base = 0;
    std::uint64_t idx_base = 0;
    unsigned idx_bytes = 4;   ///< bytes per index (1, 2 or 4)
    unsigned elem_shift = 2;  ///< log2(elem_bytes), cached for the hot issue
    std::uint32_t id = 0;
    axi::Traffic traffic = axi::Traffic::data;
    // Sticky: an errored index word poisons the rest of the burst (the
    // substituted index keeps addresses in-region, but the data is wrong).
    bool err = false;

    // ---- index stage ----
    std::uint64_t idx_words_total = 0;     ///< words covering the index array
    std::vector<std::uint64_t> idx_issue;  ///< per-lane idx line pointer
    std::uint64_t idx_words_extracted = 0; ///< words fed through extraction
    std::deque<std::uint64_t> idx_window;  ///< extracted indices, in order
    std::uint64_t idx_window_base = 0;     ///< element index of window front

    // ---- element stage ----
    std::vector<std::uint64_t> elem_issue;  ///< per-lane beat pointer
    std::uint64_t pack_beat = 0;
  };

  /// Smallest element-stage word slot not yet issued (all below are issued).
  static std::uint64_t issue_frontier(const Burst& bu);

  void drain_responses();
  void tick_issue();
  void tick_index_extract();
  void tick_pack();
  void retire_indices(Burst& bu);

  std::vector<LaneIO> lanes_;
  std::vector<LaneIO> idx_lanes_;  ///< empty = index shares `lanes_`
  unsigned bus_bytes_;
  unsigned lanes_n_;
  IndirectWordStats word_stats_;
  Regulator idx_regulator_;
  Regulator elem_regulator_;
  sim::Fifo<axi::AxiR> r_out_;
  std::deque<Burst> bursts_;
  std::size_t max_bursts_;
  std::size_t idx_window_lines_;
  std::vector<bool> prefer_idx_;  ///< per-lane round-robin arbitration state
  // Per-stage per-lane decoupling queues (responses routed by tag bit so the
  // stages never head-of-line block each other).
  std::vector<std::deque<mem::WordResp>> idx_q_;
  std::vector<std::deque<mem::WordResp>> elem_q_;
  sim::FaultPlan* faults_ = nullptr;
};

}  // namespace axipack::pack
