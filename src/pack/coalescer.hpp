// Near-memory index coalescing unit for the pack indirect read path.
//
// The indirect element stream is the pack adapter's last bandwidth sink
// with no spatial structure: gather addresses arrive in index order, so
// duplicate indices fetch the same word repeatedly and neighbouring-row
// accesses reach the DRAM scheduler interleaved with unrelated rows and
// spread across all port-mux lanes (every lane fights every bank). The
// coalescer sits between the indirect read converter's element lanes and
// the port mux and attacks all three:
//
//  * MSHR-style pending table — element word requests are looked up by
//    address in a bounded table (`entries`). A hit appends the requester
//    to the entry's waiter list (one memory fetch fans out to every
//    waiter); a miss allocates an entry and queues one downstream fetch.
//    When the response returns the data is fanned out to the waiter
//    records immediately (so table occupancy never includes the
//    deliberately long, row-batched release reorder window), but the
//    filled entry is *retained* in the table and keeps serving later
//    requests for the same word until its slot is reclaimed — each gather
//    word is genuinely fetched once while it stays resident. Only
//    unfilled entries count against the in-flight bound; retained slots
//    are evicted on demand (oldest first). Coherence: the port mux snoops
//    every write any of the adapter's converters issues and invalidates
//    the matching retained word (and stops retention of a matching
//    in-flight fetch), so a store through the adapter can never leave
//    stale data behind — the read-write ordering that remains is exactly
//    the uncoalesced path's, which the workloads already fence.
//  * Bank-partitioned issue with a row-grouping window — each allocated
//    entry is routed to the downstream lane selected by its locality
//    key's partition field (the DRAM bank when the backend provides it, a
//    coarse address granule otherwise), so each mux lane carries
//    single-bank traffic and lanes stop losing grant cycles to cross-lane
//    bank conflicts. Within a lane, issue prefers — among the first
//    `window` queued entries — one whose full key (bank+row) matches the
//    lane's previous issue, falling back to the queue head (FIFO order
//    bounds reordering and guarantees liveness). Same-row fetches
//    therefore reach the DRAM scheduler adjacent even when the index
//    stream interleaves rows.
//
// Responses are released back to each upstream lane strictly in that
// lane's request order (the per-lane in-order contract the beat packer
// relies on), with the original request tag restored — so merging and
// reordering are invisible to the converter: bit-identical data, fewer
// memory words.
//
// Writes pass through the unit un-merged so that a stage can front a
// converter with a mixed read/write lane contract (the base channel):
// a write allocates a pending-table entry like a read — it rides the
// same bank-partitioned issue queues and releases its ack in lane
// order — but is never retained. Same-word ordering is preserved
// exactly: a full-word write forwards its data to later reads of the
// word (store-to-load forwarding; partial-strobe writes stall them
// instead), a write behind a pending read or write of the same word
// stalls in its lane until the older access resolves, and accesses to
// *different* words carry no ordering contract (word-granular, the
// same contract the DRAM scheduler's hazard scan enforces), so the
// grouping window may reorder them freely. The workloads additionally
// fence writes between gather phases (ping-ponged arrays), so serving
// one fetch to multiple waiters cannot observe a torn update; the
// differential tests prove coalescer-on/off bit-identity across every
// backend.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/word.hpp"
#include "pack/converter.hpp"
#include "sim/kernel.hpp"

namespace axipack::pack {

struct CoalescerConfig {
  /// Pending-table capacity (MSHRs). Each live entry owns one in-flight
  /// memory word, so this is also the unit's downstream word-level
  /// parallelism — it must cover the memory round-trip (DRAM: tens of
  /// cycles of bank queueing plus row activity) to sustain line rate.
  std::size_t entries = 64;
  std::size_t window = 16;  ///< row-grouping lookahead per lane (1 = FIFO)
  std::size_t lane_fifo_depth = 2;    ///< upstream request FIFO depth
  std::size_t resp_fifo_depth = 128;  ///< upstream response FIFO depth
};

/// Activity counters, plumbed PackAdapter -> RunResult -> to_json.
struct CoalescerStats {
  std::uint64_t merged = 0;   ///< requests folded into a live entry
  std::uint64_t unique = 0;   ///< entries allocated = words fetched
  std::uint64_t peak_pending = 0;  ///< max live pending-table entries
  /// Issued downstream requests that *opened* a locality group (key differs
  /// from the lane's previous issue); unique - row_groups = requests the
  /// window managed to keep adjacent to a same-row predecessor.
  std::uint64_t row_groups = 0;
};

class Coalescer final : public sim::Component {
 public:
  /// Maps a byte address to a locality key. Convention: the top 16 bits
  /// are the *partition* id (selects the downstream lane, modulo lane
  /// count — the DRAM bank when the backend is "dram"), the low 48 bits
  /// the *group* id (the row); two addresses are grouped adjacent by the
  /// issue window iff their full keys are equal. The default key is a
  /// 2 KiB address granule (the default DRAM row size) used as both
  /// fields; System wires the real bank/row decomposition for "dram".
  using LocalityKeyFn = std::function<std::uint64_t(std::uint64_t)>;

  /// `downstream` is the port-mux lane bundle the unit issues fetches on.
  Coalescer(sim::Kernel& k, std::vector<LaneIO> downstream,
            const CoalescerConfig& cfg);

  /// Upstream lane bundle handed to the indirect read converter's element
  /// stage (FIFOs owned by the coalescer; stable for its lifetime).
  std::vector<LaneIO> upstream_lanes();

  void set_locality_key(LocalityKeyFn fn);

  /// Write-snoop hook (wired to PortMux::set_write_snoop): drops the
  /// retained copy of `addr` if one exists, and de-registers a matching
  /// in-flight fetch so it serves its accepted waiters but is neither
  /// merged into nor retained afterwards.
  void invalidate(std::uint64_t addr);

  void tick() override;
  /// Woken by subscribed FIFO visibility (upstream requests in, downstream
  /// responses back); with no fetch in flight and no waiter unreleased the
  /// tick is a no-op until a new upstream request arrives.
  bool quiescent() const override { return idle(); }
  bool idle() const { return live_ == 0 && total_waiters_ == 0; }

  const CoalescerStats& stats() const { return stats_; }
  std::size_t live_entries() const { return live_; }

 private:
  /// Locates one upstream waiter record: `seq` is the lane-local
  /// acceptance number, so the record's deque index is seq minus the
  /// lane's current head sequence (O(1), stable under pops).
  struct WaiterRef {
    std::uint32_t lane = 0;
    std::uint64_t seq = 0;
  };
  /// One pending-table slot: in flight from allocation until its fetch
  /// returns (counted in `live_`), then retained with the data until
  /// evicted or flushed. The slot index doubles as the downstream request
  /// tag, so responses route back without any allocation-order
  /// assumptions.
  struct Entry {
    std::uint64_t addr = 0;
    std::uint64_t key = 0;  ///< locality key of addr (cached)
    std::vector<WaiterRef> waiters;
    std::uint32_t rdata = 0;
    std::uint32_t wdata = 0;   ///< write entries: data to store
    std::uint8_t wstrb = 0;    ///< write entries: byte strobes
    bool write = false;        ///< pass-through write (never retained)
    bool valid = false;
    bool filled = false;  ///< retained: rdata serves merges instantly
  };
  /// Per-upstream-lane release record, kept in acceptance order. Filled
  /// in place when the fetch returns; self-contained thereafter (the
  /// table entry is already freed).
  struct Waiter {
    std::uint32_t tag = 0;  ///< original upstream tag, restored on release
    std::uint32_t rdata = 0;
    bool was_write = false;  ///< release as a write ack
    bool ready = false;
    bool error = false;  ///< errored fill: propagated to every waiter
  };

  void drain_downstream();
  void release_upstream();
  void accept_upstream();
  void issue_downstream();
  /// Free slot, or evict the oldest retained word; kNoSlot if all slots
  /// hold in-flight fetches.
  std::uint32_t take_slot();
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  unsigned route_of(std::uint64_t key) const {
    return static_cast<unsigned>((key >> 48) % lanes_n_);
  }

  std::vector<LaneIO> down_;
  unsigned lanes_n_;
  CoalescerConfig cfg_;
  LocalityKeyFn key_fn_;
  // Upstream FIFO pairs (owned): the converter pushes into up_req_ and
  // pops from up_resp_, exactly as if they were port-mux lanes.
  std::vector<std::unique_ptr<sim::Fifo<mem::WordReq>>> up_req_;
  std::vector<std::unique_ptr<sim::Fifo<mem::WordResp>>> up_resp_;
  std::vector<Entry> table_;
  /// Live-entry index by address (models the hardware CAM lookup).
  std::unordered_map<std::uint64_t, std::uint32_t> lookup_;
  std::vector<std::uint32_t> free_slots_;
  /// Filled slots in eviction order. Invalidation and eviction leave
  /// stale records behind (a slot may be freed, reallocated, even
  /// re-retained); take_slot() validates each record against the table
  /// before acting on it, so staleness is skipped, never acted on.
  struct Retained {
    std::uint32_t slot;
    std::uint64_t addr;
  };
  std::deque<Retained> retained_q_;
  /// Allocated-but-unissued slots, per downstream lane (bank partition).
  std::vector<std::deque<std::uint32_t>> issue_q_;
  std::vector<std::deque<Waiter>> waiters_;  ///< per upstream lane
  std::vector<std::uint64_t> next_seq_;      ///< per upstream lane
  std::vector<std::uint64_t> last_key_;      ///< per downstream lane
  std::vector<bool> has_last_key_;
  std::size_t live_ = 0;           ///< fetches in flight (live entries)
  std::size_t total_waiters_ = 0;  ///< accepted, not yet released
  CoalescerStats stats_;
};

}  // namespace axipack::pack
