#include "pack/base_converter.hpp"

#include <cassert>

#include "axi/burst.hpp"
#include "util/bits.hpp"

namespace axipack::pack {

BaseConverter::BaseConverter(sim::Kernel& k, std::vector<LaneIO> lanes,
                             unsigned bus_bytes, unsigned queue_depth,
                             std::size_t max_bursts, std::size_t r_out_depth,
                             std::size_t b_out_depth)
    : lanes_(std::move(lanes)),
      bus_bytes_(bus_bytes),
      bus_mask_(bus_bytes - 1),
      regulator_(static_cast<unsigned>(lanes_.size()), queue_depth),
      r_out_(k, r_out_depth, 1),
      b_out_(k, b_out_depth, 1),
      max_bursts_(max_bursts) {
  k.add(*this);
}

bool BaseConverter::can_accept_ar() const {
  return reads_.size() < max_bursts_;
}

void BaseConverter::accept_ar(const axi::AxiAr& ar) {
  assert(!ar.pack.has_value());
  wake_self();
  reads_.push_back(ReadBurst{ar, 0, 0});
}

bool BaseConverter::can_accept_aw() const {
  return writes_.size() < max_bursts_;
}

void BaseConverter::accept_aw(const axi::AxiAw& aw) {
  assert(!aw.pack.has_value());
  wake_self();
  writes_.push_back(WriteBurst{aw, 0, 0, 0});
}

BaseConverter::BeatPlan BaseConverter::plan_beat(const axi::AxiAx& ax,
                                                 unsigned beat) const {
  BeatPlan plan;
  const std::uint64_t addr = axi::beat_addr(ax, beat);
  const unsigned size_bytes = ax.beat_bytes();
  plan.data_lane = static_cast<unsigned>(addr & bus_mask_);
  plan.useful_bytes = size_bytes;
  if (size_bytes >= bus_bytes_) {
    // Full-width beat: fetch the whole aligned line. The first beat of an
    // unaligned INCR burst still reads the full line; the master uses the
    // lanes from the address onward (standard AXI behaviour).
    plan.word_addr = util::round_down<std::uint64_t>(addr, bus_bytes_);
    plan.first_lane = 0;
    plan.words = bus_bytes_ / 4;
    // Unaligned first beat carries fewer useful bytes.
    plan.useful_bytes = bus_bytes_ - plan.data_lane;
  } else {
    // Narrow beat: touch only the words covering [addr, addr+size).
    const std::uint64_t lo = util::round_down<std::uint64_t>(addr, 4);
    const std::uint64_t hi =
        util::round_up<std::uint64_t>(addr + size_bytes, 4);
    plan.word_addr = lo;
    plan.first_lane = static_cast<unsigned>((lo & bus_mask_) / 4);
    plan.words = static_cast<unsigned>((hi - lo) / 4);
  }
  return plan;
}

void BaseConverter::tick_issue() {
  // One beat's worth of word requests per cycle for the oldest burst with
  // an unissued beat (issue is strictly in burst order).
  while (issue_cursor_ < reads_.size() &&
         reads_[issue_cursor_].issue_beat >= reads_[issue_cursor_].ar.beats()) {
    ++issue_cursor_;
  }
  if (issue_cursor_ >= reads_.size()) return;
  ReadBurst& burst = reads_[issue_cursor_];
  const BeatPlan plan = plan_beat(burst.ar, burst.issue_beat);
  for (unsigned wi = 0; wi < plan.words; ++wi) {
    const unsigned lane = plan.first_lane + wi;
    if (!regulator_.can_issue(lane) || !lanes_[lane].req->can_push()) {
      return;  // preserve per-lane order: do not skip ahead
    }
  }
  for (unsigned wi = 0; wi < plan.words; ++wi) {
    const unsigned lane = plan.first_lane + wi;
    mem::WordReq req;
    req.addr = plan.word_addr + 4ull * wi;
    req.write = false;
    req.tag = lane;
    lanes_[lane].req->push(req);
    regulator_.on_issue(lane);
  }
  ++burst.issue_beat;  // at most one beat per cycle
}

void BaseConverter::tick_pack() {
  if (reads_.empty()) return;
  ReadBurst& burst = reads_.front();
  if (burst.pack_beat >= burst.ar.beats()) return;
  if (burst.pack_beat >= burst.issue_beat) return;  // not yet requested
  if (!r_out_.can_push()) return;
  const BeatPlan plan = plan_beat(burst.ar, burst.pack_beat);
  for (unsigned wi = 0; wi < plan.words; ++wi) {
    const auto& resp = *lanes_[plan.first_lane + wi].resp;
    // A write ack at the head belongs to collect_acks — wait for it to
    // drain rather than consuming it as read data (reads and writes of
    // concurrent bursts interleave on the shared lanes).
    if (!resp.can_pop() || resp.front().was_write) return;
  }
  axi::AxiR beat;
  beat.id = burst.ar.id;
  beat.traffic = burst.ar.traffic;
  beat.useful_bytes = static_cast<std::uint16_t>(plan.useful_bytes);
  for (unsigned wi = 0; wi < plan.words; ++wi) {
    const unsigned lane = plan.first_lane + wi;
    const mem::WordResp resp = lanes_[lane].resp->pop();
    assert(!resp.was_write);
    regulator_.on_retire(lane);
    if (resp.error) beat.resp = axi::worst_resp(beat.resp, axi::kRespSlvErr);
    axi::place_bytes(beat.data, 4 * lane,
                     reinterpret_cast<const std::uint8_t*>(&resp.rdata), 4);
  }
  ++burst.pack_beat;
  beat.last = burst.pack_beat == burst.ar.beats();
  r_out_.push(beat);
  if (beat.last) {
    reads_.pop_front();
    if (issue_cursor_ > 0) --issue_cursor_;
  }
}

bool BaseConverter::can_accept_w() const {
  for (const WriteBurst& burst : writes_) {
    if (burst.unpack_beat >= burst.aw.beats()) continue;
    const BeatPlan plan = plan_beat(burst.aw, burst.unpack_beat);
    for (unsigned wi = 0; wi < plan.words; ++wi) {
      const unsigned lane = plan.first_lane + wi;
      if (!regulator_.can_issue(lane)) return false;
      if (!lanes_[lane].req->can_push()) return false;
    }
    return true;
  }
  return false;
}

void BaseConverter::accept_w(const axi::AxiW& w) {
  for (WriteBurst& burst : writes_) {
    if (burst.unpack_beat >= burst.aw.beats()) continue;
    const BeatPlan plan = plan_beat(burst.aw, burst.unpack_beat);
    for (unsigned wi = 0; wi < plan.words; ++wi) {
      const unsigned lane = plan.first_lane + wi;
      mem::WordReq req;
      req.addr = plan.word_addr + 4ull * wi;
      req.write = true;
      axi::extract_bytes(w.data, 4 * lane,
                         reinterpret_cast<std::uint8_t*>(&req.wdata), 4);
      req.wstrb = static_cast<std::uint8_t>((w.strb >> (4 * lane)) & 0xFu);
      req.tag = lane;
      lanes_[lane].req->push(req);
      regulator_.on_issue(lane);
      ++burst.words_issued;
    }
    ++burst.unpack_beat;
    assert(w.last == (burst.unpack_beat == burst.aw.beats()));
    return;
  }
  assert(false && "accept_w without pending write burst");
}

void BaseConverter::collect_acks() {
  for (unsigned l = 0; l < lanes_.size(); ++l) {
    if (!lanes_[l].resp->can_pop()) continue;
    // Reads and writes share the lane response queues; only consume write
    // acks here (read data is consumed by the packer in order).
    if (!lanes_[l].resp->front().was_write) continue;
    const bool err = lanes_[l].resp->pop().error;
    regulator_.on_retire(l);
    for (WriteBurst& burst : writes_) {
      if (burst.acks < burst.words_issued ||
          burst.unpack_beat < burst.aw.beats()) {
        ++burst.acks;
        burst.err |= err;
        break;
      }
    }
  }
  if (!writes_.empty()) {
    WriteBurst& burst = writes_.front();
    if (burst.unpack_beat == burst.aw.beats() &&
        burst.acks == burst.words_issued && b_out_.can_push()) {
      axi::AxiB b;
      b.id = burst.aw.id;
      if (burst.err) b.resp = axi::kRespSlvErr;
      b_out_.push(b);
      writes_.pop_front();
    }
  }
}

void BaseConverter::tick() {
  collect_acks();
  tick_issue();
  tick_pack();
}

}  // namespace axipack::pack
