// Bank-port mux (paper Fig. 2b): shares the n physical word ports of the
// banked memory among the adapter's converters. Requests arbitrate per lane
// round-robin across converters; responses are routed back by the converter
// id carried in the tag's top bits.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/word.hpp"
#include "pack/converter.hpp"
#include "sim/kernel.hpp"

namespace axipack::pack {

class PortMux final : public sim::Component {
 public:
  /// Tag bits reserved for the converter id (top of the 32-bit tag).
  static constexpr unsigned kConvBits = 3;
  static constexpr unsigned kConvShift = 32 - kConvBits;

  PortMux(sim::Kernel& k, mem::WordMemory& memory, unsigned num_converters,
          std::size_t lane_fifo_depth, std::size_t resp_fifo_depth);

  /// Lane I/O bundle for converter `conv` (stable for the mux's lifetime).
  std::vector<LaneIO> lanes_of(unsigned conv);

  unsigned num_lanes() const { return lanes_; }

  void tick() override;
  /// Pure forwarder between the converters' lane Fifos and the memory
  /// ports; all pending work is visible in subscribed Fifos.
  bool quiescent() const override { return true; }

  std::uint64_t words_issued() const { return words_issued_; }

 private:
  sim::Fifo<mem::WordReq>& req(unsigned conv, unsigned lane) {
    return *req_flat_[lane * convs_ + conv];
  }
  sim::Fifo<mem::WordResp>& resp(unsigned conv, unsigned lane) {
    return *resp_flat_[lane * convs_ + conv];
  }

  mem::WordMemory& memory_;
  sim::Kernel& kernel_;
  unsigned lanes_;
  unsigned convs_;
  std::vector<mem::WordPort*> ports_;  ///< cached, port(l) is virtual
  // Flat lane-major [lane * convs + conv] fifo arrays: the hot tick scans
  // all converters of one lane, so keep that scan contiguous in memory.
  std::vector<std::unique_ptr<sim::Fifo<mem::WordReq>>> req_flat_;
  std::vector<std::unique_ptr<sim::Fifo<mem::WordResp>>> resp_flat_;
  std::vector<unsigned> rr_;  ///< per-lane round-robin over converters
  std::uint64_t words_issued_ = 0;
};

}  // namespace axipack::pack
