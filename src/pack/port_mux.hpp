// Bank-port mux (paper Fig. 2b): shares the n physical word ports of the
// banked memory among the adapter's converters. Requests arbitrate per lane
// round-robin across converters; responses are routed back by the converter
// id carried in the tag's top bits.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "mem/word.hpp"
#include "pack/converter.hpp"
#include "sim/kernel.hpp"

namespace axipack::pack {

class PortMux final : public sim::Component {
 public:
  /// Tag bits reserved for the converter id (top of the 32-bit tag).
  static constexpr unsigned kConvBits = 3;
  static constexpr unsigned kConvShift = 32 - kConvBits;

  PortMux(sim::Kernel& k, mem::WordMemory& memory, unsigned num_converters,
          std::size_t lane_fifo_depth, std::size_t resp_fifo_depth);
  ~PortMux() override;

  /// Lane I/O bundle for converter `conv` (stable for the mux's lifetime).
  std::vector<LaneIO> lanes_of(unsigned conv);

  unsigned num_lanes() const { return lanes_; }

  void tick() override;
  /// Pure forwarder between the converters' lane Fifos and the memory
  /// ports; all pending work is visible in subscribed Fifos.
  bool quiescent() const override { return true; }

  std::uint64_t words_issued() const { return words_issued_; }

  /// Called with the address of every write request the moment it is
  /// granted onto a memory port, before the write enters the port FIFO.
  /// The index coalescer uses this to invalidate retained read data (its
  /// coherence point is this mux: all of the adapter's write streams are
  /// granted here).
  void set_write_snoop(std::function<void(std::uint64_t)> fn) {
    write_snoop_ = std::move(fn);
  }

  /// Sticky (burst-quantum) arbitration: once a converter is granted, it
  /// keeps its lane for up to `quantum` back-to-back grants while it has
  /// requests, before round-robin moves on. Each lane then emits long
  /// single-stream runs — which are single-row runs at the DRAM, since the
  /// coalescing units partition their streams by bank — instead of
  /// fine-grained stream interleave that forces a row swap per grant.
  /// `patience` rides out the holder's production bubbles: while it has
  /// credit but no visible request, competing converters are denied for up
  /// to that many consecutive cycles before round-robin takes over (a
  /// short idle port is cheaper than a row swap; bounded, so liveness is
  /// unaffected). quantum 0 (default) is plain per-cycle round-robin.
  void set_sticky_quantum(std::size_t quantum, sim::Cycle patience = 0) {
    sticky_quantum_ = quantum;
    sticky_patience_ = patience;
  }

 private:
  sim::Fifo<mem::WordReq>& req(unsigned conv, unsigned lane) {
    return *req_flat_[lane * convs_ + conv];
  }
  sim::Fifo<mem::WordResp>& resp(unsigned conv, unsigned lane) {
    return *resp_flat_[lane * convs_ + conv];
  }

  mem::WordMemory& memory_;
  sim::Kernel& kernel_;
  unsigned lanes_;
  unsigned convs_;
  std::vector<mem::WordPort*> ports_;  ///< cached, port(l) is virtual
  // Flat lane-major [lane * convs + conv] fifo arrays: the hot tick scans
  // all converters of one lane, so keep that scan contiguous in memory.
  std::vector<std::unique_ptr<sim::Fifo<mem::WordReq>>> req_flat_;
  std::vector<std::unique_ptr<sim::Fifo<mem::WordResp>>> resp_flat_;
  std::vector<unsigned> rr_;  ///< per-lane round-robin over converters
  std::size_t sticky_quantum_ = 0;      ///< 0 = plain round-robin
  sim::Cycle sticky_patience_ = 0;      ///< bubble-ride-out, in cycles
  std::vector<std::size_t> sticky_credit_;  ///< per-lane remaining quantum
  std::vector<unsigned> sticky_conv_;       ///< per-lane current holder
  /// Cycle the holder's current production bubble started denying a
  /// competitor (kNoHold = not holding). Stamped with cycle numbers, not
  /// tick counts, so gated and naive scheduling stay cycle-identical.
  static constexpr sim::Cycle kNoHold = ~sim::Cycle{0};
  std::vector<sim::Cycle> sticky_hold_since_;
  std::function<void(std::uint64_t)> write_snoop_;
  std::uint64_t words_issued_ = 0;
  /// Lanes with anything stored in their request Fifos or their memory
  /// port's response Fifo. tick() scans only these (the per-lane
  /// arbitration was ~16% of the dram-set profile; most lanes idle most
  /// cycles). Producers re-flag a lane through the Fifos' push taps
  /// (FifoBase::set_push_flag); the mux re-flags after ticking a lane that
  /// still holds items. Occupancy-driven, so an idle lane's skipped body
  /// is a strict no-op and scheduling stays cycle-identical.
  std::uint64_t active_lanes_ = 0;
};

}  // namespace axipack::pack
