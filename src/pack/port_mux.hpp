// Bank-port mux (paper Fig. 2b): shares the n physical word ports of the
// banked memory among the adapter's converters. Requests arbitrate per lane
// round-robin across converters; responses are routed back by the converter
// id carried in the tag's top bits.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/word.hpp"
#include "pack/converter.hpp"
#include "sim/kernel.hpp"

namespace axipack::pack {

class PortMux final : public sim::Component {
 public:
  /// Tag bits reserved for the converter id (top of the 32-bit tag).
  static constexpr unsigned kConvBits = 3;
  static constexpr unsigned kConvShift = 32 - kConvBits;

  PortMux(sim::Kernel& k, mem::WordMemory& memory, unsigned num_converters,
          std::size_t lane_fifo_depth, std::size_t resp_fifo_depth);

  /// Lane I/O bundle for converter `conv` (stable for the mux's lifetime).
  std::vector<LaneIO> lanes_of(unsigned conv);

  unsigned num_lanes() const { return lanes_; }

  void tick() override;

  std::uint64_t words_issued() const { return words_issued_; }

 private:
  mem::WordMemory& memory_;
  unsigned lanes_;
  unsigned convs_;
  // fifos_[conv][lane]
  std::vector<std::vector<std::unique_ptr<sim::Fifo<mem::WordReq>>>> req_;
  std::vector<std::vector<std::unique_ptr<sim::Fifo<mem::WordResp>>>> resp_;
  std::vector<unsigned> rr_;  ///< per-lane round-robin over converters
  std::uint64_t words_issued_ = 0;
};

}  // namespace axipack::pack
