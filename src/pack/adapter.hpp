// AXI-Pack adapter top level (paper Fig. 2b).
//
// The adapter is the memory controller bridging an AXI(-Pack) slave port to
// a banked word memory. It demuxes incoming bursts by their pack/indir user
// bits to one of five converters (base AXI4, strided R/W, indirect R/W),
// routes W data in AW-acceptance order, arbitrates the converters onto the
// n bank ports through the port mux, and returns R/B responses in request
// order (AXI-compliant for the single-requester evaluation systems).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "axi/types.hpp"
#include "mem/word.hpp"
#include "pack/base_converter.hpp"
#include "pack/converter.hpp"
#include "pack/indirect_read.hpp"
#include "pack/indirect_write.hpp"
#include "pack/port_mux.hpp"
#include "pack/strided_read.hpp"
#include "pack/strided_write.hpp"
#include "sim/kernel.hpp"

namespace axipack::pack {

struct AdapterConfig {
  unsigned bus_bytes = 32;          ///< AXI data bus width (D)
  unsigned queue_depth = 4;         ///< decoupling-queue depth (paper: 4)
  std::size_t lane_fifo_depth = 2;  ///< converter->mux request FIFO depth
  std::size_t resp_fifo_depth = 128;
  std::size_t idx_window_lines = 4; ///< index prefetch window, in bus lines
  std::size_t r_out_depth = 4;
  std::size_t base_max_bursts = 64; ///< outstanding regular bursts
  /// Outstanding pack bursts per strided/indirect converter. 2 covers the
  /// 1-cycle SRAM banks; variable-latency backends (DRAM) want more so
  /// request generation never drains at burst boundaries (SystemBuilder
  /// raises it automatically for the "dram" backend).
  std::size_t pack_max_bursts = 2;
};

/// Burst counts by type, for diagnostics and the energy model.
struct AdapterStats {
  std::uint64_t base_reads = 0;
  std::uint64_t base_writes = 0;
  std::uint64_t strided_reads = 0;
  std::uint64_t strided_writes = 0;
  std::uint64_t indirect_reads = 0;
  std::uint64_t indirect_writes = 0;
};

class AxiPackAdapter final : public sim::Component {
 public:
  /// `upstream` is the adapter's slave-side AXI port (the adapter pops
  /// AR/AW/W and pushes R/B); `memory` provides the n word ports.
  AxiPackAdapter(sim::Kernel& k, axi::AxiPort& upstream,
                 mem::WordMemory& memory, const AdapterConfig& cfg);

  void tick() override;
  /// Pure demux/mux: every action pops a subscribed Fifo (upstream AR/AW/W
  /// or a converter's R/B output), so input visibility decides wakefulness.
  bool quiescent() const override { return true; }

  bool idle() const;
  const AdapterStats& stats() const { return stats_; }
  const PortMux& port_mux() const { return *mux_; }

 private:
  // Converter indices for the port mux.
  enum Conv : unsigned {
    kBase = 0,
    kStridedR = 1,
    kStridedW = 2,
    kIndirectR = 3,
    kIndirectW = 4,
    kNumConvs = 5,
  };

  Converter* classify_ar(const axi::AxiAr& ar);
  Converter* classify_aw(const axi::AxiAw& aw);

  axi::AxiPort& up_;
  std::unique_ptr<PortMux> mux_;
  std::unique_ptr<BaseConverter> base_;
  std::unique_ptr<StridedReadConverter> strided_r_;
  std::unique_ptr<StridedWriteConverter> strided_w_;
  std::unique_ptr<IndirectReadConverter> indirect_r_;
  std::unique_ptr<IndirectWriteConverter> indirect_w_;

  std::deque<Converter*> r_order_;  ///< AR acceptance order for R return
  std::deque<Converter*> w_route_;  ///< AW acceptance order for W routing
  std::deque<Converter*> b_order_;  ///< AW acceptance order for B return
  AdapterStats stats_;
};

}  // namespace axipack::pack
