// AXI-Pack adapter top level (paper Fig. 2b).
//
// The adapter is the memory controller bridging an AXI(-Pack) slave port to
// a banked word memory. It demuxes incoming bursts by their pack/indir user
// bits to one of five converters (base AXI4, strided R/W, indirect R/W),
// routes W data in AW-acceptance order, arbitrates the converters onto the
// n bank ports through the port mux, and returns R/B responses in request
// order (AXI-compliant for the single-requester evaluation systems).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>

#include "axi/types.hpp"
#include "mem/word.hpp"
#include "pack/base_converter.hpp"
#include "pack/coalescer.hpp"
#include "pack/converter.hpp"
#include "pack/indirect_read.hpp"
#include "pack/indirect_write.hpp"
#include "pack/port_mux.hpp"
#include "pack/strided_read.hpp"
#include "pack/strided_write.hpp"
#include "sim/kernel.hpp"

namespace axipack::pack {

struct AdapterConfig {
  unsigned bus_bytes = 32;          ///< AXI data bus width (D)
  unsigned queue_depth = 4;         ///< decoupling-queue depth (paper: 4)
  std::size_t lane_fifo_depth = 2;  ///< converter->mux request FIFO depth
  std::size_t resp_fifo_depth = 128;
  std::size_t idx_window_lines = 4; ///< index prefetch window, in bus lines
  std::size_t r_out_depth = 4;
  std::size_t base_max_bursts = 64; ///< outstanding regular bursts
  /// Outstanding pack bursts per strided/indirect converter. 2 covers the
  /// 1-cycle SRAM banks; variable-latency backends (DRAM) want more so
  /// request generation never drains at burst boundaries (SystemBuilder
  /// raises it automatically for the "dram" backend).
  std::size_t pack_max_bursts = 2;
  /// Near-memory index coalescing unit on the indirect read path. Enabling
  /// it interposes an MSHR-style pending table plus a row/bank grouping
  /// window between the indirect read converter's element stage and the
  /// port mux, and moves the index stage onto its own parallel mux slot.
  bool coalesce_enable = false;
  /// Pending-table capacity. 512 retains a full gather vector's worth of
  /// element words, so cross-row duplicate columns merge instead of
  /// refetching (the indirect kernels' reuse is across rows, not within
  /// one — see fig8 for the working-set threshold).
  std::size_t coalesce_entries = 512;
  std::size_t coalesce_window = 16;  ///< grouping-window lookahead
  /// Sticky burst quantum of the port-mux arbitration while coalescing is
  /// on (0 = plain round-robin): a granted converter keeps its lane for up
  /// to this many back-to-back words, so the bank-partitioned streams
  /// reach the DRAM as long single-row runs instead of per-cycle
  /// interleave.
  std::size_t coalesce_arb_quantum = 64;
  /// Cycles the sticky holder may ride out a production bubble while a
  /// competitor waits, before yielding its lane. A short idle port is
  /// cheaper than the row swap (tRP+tRCD) a stream switch costs.
  sim::Cycle coalesce_arb_patience = 32;
};

/// Burst counts by type, for diagnostics and the energy model.
struct AdapterStats {
  std::uint64_t base_reads = 0;
  std::uint64_t base_writes = 0;
  std::uint64_t strided_reads = 0;
  std::uint64_t strided_writes = 0;
  std::uint64_t indirect_reads = 0;
  std::uint64_t indirect_writes = 0;
};

class AxiPackAdapter final : public sim::Component {
 public:
  /// `upstream` is the adapter's slave-side AXI port (the adapter pops
  /// AR/AW/W and pushes R/B); `memory` provides the n word ports.
  AxiPackAdapter(sim::Kernel& k, axi::AxiPort& upstream,
                 mem::WordMemory& memory, const AdapterConfig& cfg);

  void tick() override;
  /// Pure demux/mux: every action pops a subscribed Fifo (upstream AR/AW/W
  /// or a converter's R/B output), so input visibility decides wakefulness.
  bool quiescent() const override { return true; }

  bool idle() const;
  const AdapterStats& stats() const { return stats_; }
  const PortMux& port_mux() const { return *mux_; }

  /// Element-stage coalescing unit, or nullptr when the path is disabled.
  const Coalescer* coalescer() const { return coalescer_.get(); }
  /// Aggregate counters over both coalescing units (element + index
  /// stage); all-zero when the path is disabled. Counts sum; peak
  /// occupancy is the larger unit's (the tables are independent).
  CoalescerStats coalescer_stats() const {
    CoalescerStats s = coalescer_ ? coalescer_->stats() : CoalescerStats{};
    for (const Coalescer* u : {coalescer_idx_.get(), coalescer_str_.get(),
                               coalescer_base_.get()}) {
      if (u == nullptr) continue;
      const CoalescerStats& i = u->stats();
      s.merged += i.merged;
      s.unique += i.unique;
      s.row_groups += i.row_groups;
      s.peak_pending = std::max(s.peak_pending, i.peak_pending);
    }
    return s;
  }
  /// Combined word-level issue counts of the two indirect converters.
  IndirectWordStats indirect_word_stats() const {
    IndirectWordStats s = indirect_r_->word_stats();
    s.idx_words += indirect_w_->word_stats().idx_words;
    s.elem_words += indirect_w_->word_stats().elem_words;
    return s;
  }
  /// Installs the locality key (DRAM bank/row decomposition) used by both
  /// coalescing units' partitioning and grouping. No-op when the path is
  /// disabled; must be called before any indirect traffic flows.
  void set_indirect_locality(Coalescer::LocalityKeyFn fn) {
    if (coalescer_idx_) coalescer_idx_->set_locality_key(fn);
    if (coalescer_str_) coalescer_str_->set_locality_key(fn);
    if (coalescer_base_) coalescer_base_->set_locality_key(fn);
    if (coalescer_) coalescer_->set_locality_key(std::move(fn));
  }

  /// Attaches the system fault plan to the pack-beat assembly points
  /// (nullptr = fault-free).
  void set_fault_plan(sim::FaultPlan* plan) {
    strided_r_->set_fault_plan(plan);
    indirect_r_->set_fault_plan(plan);
  }

 private:
  // Converter indices for the port mux. The coalesced adapter adds a sixth
  // slot so the indirect index stage issues in parallel with the (now
  // coalesced) element stage instead of sharing its lanes.
  enum Conv : unsigned {
    kBase = 0,
    kStridedR = 1,
    kStridedW = 2,
    kIndirectR = 3,
    kIndirectW = 4,
    kNumConvs = 5,
    kIndirectRIdx = 5,       ///< index-stage slot (coalesced adapter only)
    kNumConvsCoalesced = 6,
  };

  Converter* classify_ar(const axi::AxiAr& ar);
  Converter* classify_aw(const axi::AxiAw& aw);

  axi::AxiPort& up_;
  std::unique_ptr<PortMux> mux_;
  std::unique_ptr<Coalescer> coalescer_;      ///< element stage (null = off)
  std::unique_ptr<Coalescer> coalescer_idx_;  ///< index stage (null = off)
  std::unique_ptr<Coalescer> coalescer_str_;  ///< strided-read stage
  std::unique_ptr<Coalescer> coalescer_base_;  ///< base channel (r+w)
  std::unique_ptr<BaseConverter> base_;
  std::unique_ptr<StridedReadConverter> strided_r_;
  std::unique_ptr<StridedWriteConverter> strided_w_;
  std::unique_ptr<IndirectReadConverter> indirect_r_;
  std::unique_ptr<IndirectWriteConverter> indirect_w_;

  std::deque<Converter*> r_order_;  ///< AR acceptance order for R return
  std::deque<Converter*> w_route_;  ///< AW acceptance order for W routing
  std::deque<Converter*> b_order_;  ///< AW acceptance order for B return
  AdapterStats stats_;
};

}  // namespace axipack::pack
