// Strided read converter (paper Fig. 2c).
//
// For each beat of a strided pack burst the request generator issues up to n
// parallel word requests fetching the scattered elements; each lane keeps an
// independent request pointer so lanes may run ahead of one another (bank
// conflicts on one lane do not stall the others). The request regulator
// bounds per-lane in-flight words to the decoupling-queue depth. The beat
// packer pops one response per valid lane, packs them into a bus-aligned R
// beat, and emits it — in order, since per-lane responses return in request
// order.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "axi/types.hpp"
#include "pack/converter.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"

namespace axipack::pack {

class StridedReadConverter final : public Converter {
 public:
  StridedReadConverter(sim::Kernel& k, std::vector<LaneIO> lanes,
                       unsigned bus_bytes, unsigned queue_depth,
                       std::size_t r_out_depth = 4,
                       std::size_t max_bursts = 2);

  bool can_accept_ar() const override;
  void accept_ar(const axi::AxiAr& ar) override;
  sim::Fifo<axi::AxiR>* r_out() override { return &r_out_; }
  bool idle() const override { return bursts_.empty(); }

  void tick() override;

  std::uint64_t beats_packed() const { return beats_packed_; }

  /// Attaches the system fault plan (nullptr = fault-free): packed beats
  /// leaving this converter may be bit-corrupted (delivered as SLVERR).
  void set_fault_plan(sim::FaultPlan* plan) { faults_ = plan; }

 private:
  struct Burst {
    PackGeom geom;
    std::uint64_t base = 0;
    std::int64_t stride = 0;
    std::uint32_t id = 0;
    axi::Traffic traffic = axi::Traffic::data;
    // Issue state: per-lane beat pointer; lane l has issued slots
    // {b*n + l : b < issue_beat[l]}.
    std::vector<std::uint64_t> issue_beat;
    // Pack state.
    std::uint64_t pack_beat = 0;
  };

  std::uint64_t slot_addr(const Burst& bu, std::uint64_t slot) const {
    const std::uint64_t elem = bu.geom.elem_of_slot(slot);
    const unsigned word = bu.geom.word_in_elem(slot);
    return bu.base +
           static_cast<std::uint64_t>(static_cast<std::int64_t>(elem) *
                                      bu.stride) +
           4ull * word;
  }

  void tick_issue();
  void tick_pack();

  std::vector<LaneIO> lanes_;
  unsigned bus_bytes_;
  Regulator regulator_;
  sim::Fifo<axi::AxiR> r_out_;
  std::deque<Burst> bursts_;
  std::size_t max_bursts_;
  std::uint64_t beats_packed_ = 0;
  sim::FaultPlan* faults_ = nullptr;
};

}  // namespace axipack::pack
