#include "pack/indirect_write.hpp"

#include <cassert>

#include "util/bits.hpp"

namespace axipack::pack {

IndirectWriteConverter::IndirectWriteConverter(sim::Kernel& k,
                                               std::vector<LaneIO> lanes,
                                               unsigned bus_bytes,
                                               unsigned queue_depth,
                                               std::size_t b_out_depth,
                                               std::size_t idx_window_lines,
                                               std::size_t max_bursts)
    : lanes_(std::move(lanes)),
      bus_bytes_(bus_bytes),
      lanes_n_(static_cast<unsigned>(lanes_.size())),
      idx_regulator_(lanes_n_, queue_depth),
      elem_regulator_(lanes_n_, queue_depth),
      b_out_(k, b_out_depth, 1),
      max_bursts_(max_bursts),
      idx_window_lines_(idx_window_lines),
      prefer_idx_(lanes_n_, true),
      idx_q_(lanes_n_) {
  k.add(*this);
}

bool IndirectWriteConverter::can_accept_aw() const {
  return bursts_.size() < max_bursts_;
}

void IndirectWriteConverter::accept_aw(const axi::AxiAw& aw) {
  assert(aw.pack.has_value() && aw.pack->indir);
  wake_self();
  Burst bu;
  bu.geom = PackGeom::make(bus_bytes_, aw.beat_bytes(), aw.pack->num_elems);
  bu.elem_base = aw.addr;
  bu.idx_base = aw.pack->index_base;
  bu.idx_bytes = aw.pack->index_bits / 8;
  assert(bu.idx_base % 4 == 0 && "index array must be word-aligned");
  bu.id = aw.id;
  bu.idx_words_total =
      util::ceil_div<std::uint64_t>(bu.geom.num_elems * bu.idx_bytes, 4);
  bu.idx_issue.assign(lanes_n_, 0);
  bursts_.push_back(std::move(bu));
}

IndirectWriteConverter::Burst* IndirectWriteConverter::unpack_target() {
  for (Burst& bu : bursts_) {
    if (bu.unpack_beat < bu.geom.beats) return &bu;
  }
  return nullptr;
}

const IndirectWriteConverter::Burst* IndirectWriteConverter::unpack_target()
    const {
  for (const Burst& bu : bursts_) {
    if (bu.unpack_beat < bu.geom.beats) return &bu;
  }
  return nullptr;
}

bool IndirectWriteConverter::can_accept_w() const {
  const Burst* bu = unpack_target();
  if (bu == nullptr) return false;
  const unsigned valid = bu->geom.valid_lanes(bu->unpack_beat);
  for (unsigned l = 0; l < valid; ++l) {
    if (!elem_regulator_.can_issue(l)) return false;
    if (!lanes_[l].req->can_push()) return false;
    // The index for this lane's slot must be in the window.
    const std::uint64_t slot = bu->geom.slot(bu->unpack_beat, l);
    const std::uint64_t elem = bu->geom.elem_of_slot(slot);
    if (elem - bu->idx_window_base >= bu->idx_window.size()) return false;
  }
  return true;
}

void IndirectWriteConverter::accept_w(const axi::AxiW& w) {
  Burst* bu = unpack_target();
  assert(bu != nullptr);
  const unsigned valid = bu->geom.valid_lanes(bu->unpack_beat);
  for (unsigned l = 0; l < valid; ++l) {
    const std::uint64_t slot = bu->geom.slot(bu->unpack_beat, l);
    const std::uint64_t elem = bu->geom.elem_of_slot(slot);
    const std::uint64_t index = bu->idx_window[elem - bu->idx_window_base];
    mem::WordReq req;
    req.addr = bu->elem_base +
               (index << util::log2_exact(bu->geom.elem_bytes)) +
               4ull * bu->geom.word_in_elem(slot);
    req.write = true;
    req.wstrb = bu->err ? 0x0 : 0xF;
    axi::extract_bytes(w.data, 4 * l,
                       reinterpret_cast<std::uint8_t*>(&req.wdata), 4);
    req.tag = kElemTag;
    lanes_[l].req->push(req);
    elem_regulator_.on_issue(l);
    ++word_stats_.elem_words;
  }
  ++bu->unpack_beat;
  retire_indices(*bu);
  assert(w.last == (bu->unpack_beat == bu->geom.beats));
}

void IndirectWriteConverter::drain_responses() {
  for (unsigned l = 0; l < lanes_n_; ++l) {
    if (!lanes_[l].resp->can_pop()) continue;
    const mem::WordResp& head = lanes_[l].resp->front();
    if ((head.tag & 1u) == kIdxTag) {
      idx_q_[l].push_back(lanes_[l].resp->pop());
    } else {
      // Write acknowledgement: count it toward the oldest incomplete burst.
      const bool err = lanes_[l].resp->pop().error;
      elem_regulator_.on_retire(l);
      for (Burst& bu : bursts_) {
        if (bu.acks < bu.geom.total_words) {
          ++bu.acks;
          bu.err |= err;
          break;
        }
      }
    }
  }
}

void IndirectWriteConverter::tick_index_issue() {
  for (unsigned l = 0; l < lanes_n_; ++l) {
    if (!lanes_[l].req->can_push()) continue;
    if (!idx_regulator_.can_issue(l)) continue;
    // Element-stage writes are issued by accept_w (driven by the adapter),
    // so the request port is shared: skip index issue on lanes where an
    // element write will likely go this cycle only via round-robin; the
    // Fifo capacity (>= 2) absorbs same-cycle contention.
    for (Burst& bu : bursts_) {
      const std::uint64_t word = bu.idx_issue[l] * lanes_n_ + l;
      if (word >= bu.idx_words_total) continue;
      const std::uint64_t ipw = 4 / bu.idx_bytes;
      const std::uint64_t cap = idx_window_lines_ * (bus_bytes_ / bu.idx_bytes);
      // Run-ahead credit relative to the extraction frontier — same
      // deadlock-free window accounting as the indirect read converter.
      const std::uint64_t ahead = word + 1 - bu.idx_words_extracted;
      if (bu.idx_window.size() + ahead * ipw > cap) break;
      mem::WordReq req;
      req.addr = bu.idx_base + 4ull * word;
      req.write = false;
      req.tag = kIdxTag;
      lanes_[l].req->push(req);
      idx_regulator_.on_issue(l);
      ++bu.idx_issue[l];
      ++word_stats_.idx_words;
      break;
    }
  }
}

void IndirectWriteConverter::tick_index_extract() {
  for (unsigned consumed = 0; consumed < lanes_n_; ++consumed) {
    Burst* target = nullptr;
    for (Burst& bu : bursts_) {
      if (bu.idx_words_extracted < bu.idx_words_total) {
        target = &bu;
        break;
      }
    }
    if (target == nullptr) return;
    Burst& bu = *target;
    const std::uint64_t w = bu.idx_words_extracted;
    const unsigned lane = static_cast<unsigned>(w % lanes_n_);
    if (idx_q_[lane].empty()) return;
    mem::WordResp resp = idx_q_[lane].front();
    idx_q_[lane].pop_front();
    idx_regulator_.on_retire(lane);
    ++bu.idx_words_extracted;
    if (resp.error) {
      // Substitute index 0 (in-region) and poison the burst; accept_w
      // masks the strobes of every write issued from here on.
      resp.rdata = 0;
      bu.err = true;
    }
    const std::uint64_t first_idx = w * 4 / bu.idx_bytes;
    const std::uint64_t ipw = 4 / bu.idx_bytes;
    for (std::uint64_t i = 0; i < ipw; ++i) {
      const std::uint64_t elem = first_idx + i;
      if (elem >= bu.geom.num_elems) break;
      std::uint64_t value = 0;
      switch (bu.idx_bytes) {
        case 4: value = resp.rdata; break;
        case 2: value = (resp.rdata >> (16 * i)) & 0xFFFFu; break;
        case 1: value = (resp.rdata >> (8 * i)) & 0xFFu; break;
        default: assert(false);
      }
      bu.idx_window.push_back(value);
    }
  }
}

void IndirectWriteConverter::retire_indices(Burst& bu) {
  // Beats unpack atomically, so elements below the unpacked-beat frontier
  // are fully written.
  const std::uint64_t frontier = bu.unpack_beat * lanes_n_;
  const std::uint64_t done_elems = frontier / bu.geom.wpe;
  while (bu.idx_window_base < done_elems && !bu.idx_window.empty()) {
    bu.idx_window.pop_front();
    ++bu.idx_window_base;
  }
}

void IndirectWriteConverter::tick() {
  drain_responses();
  tick_index_extract();
  tick_index_issue();
  if (!bursts_.empty()) {
    Burst& bu = bursts_.front();
    if (bu.unpack_beat == bu.geom.beats && bu.acks == bu.geom.total_words &&
        b_out_.can_push()) {
      axi::AxiB b;
      b.id = bu.id;
      if (bu.err) b.resp = axi::kRespSlvErr;
      b_out_.push(b);
      bursts_.pop_front();
    }
  }
}

}  // namespace axipack::pack
