#include "pack/adapter.hpp"

#include <cassert>

namespace axipack::pack {

AxiPackAdapter::AxiPackAdapter(sim::Kernel& k, axi::AxiPort& upstream,
                               mem::WordMemory& memory,
                               const AdapterConfig& cfg)
    : up_(upstream) {
  assert(memory.num_ports() == cfg.bus_bytes / 4 &&
         "bank ports must match bus width (n = D/W)");
  mux_ = std::make_unique<PortMux>(k, memory, kNumConvs, cfg.lane_fifo_depth,
                                   cfg.resp_fifo_depth);
  base_ = std::make_unique<BaseConverter>(k, mux_->lanes_of(kBase),
                                          cfg.bus_bytes, cfg.queue_depth,
                                          cfg.base_max_bursts,
                                          cfg.r_out_depth);
  strided_r_ = std::make_unique<StridedReadConverter>(
      k, mux_->lanes_of(kStridedR), cfg.bus_bytes, cfg.queue_depth,
      cfg.r_out_depth, cfg.pack_max_bursts);
  strided_w_ = std::make_unique<StridedWriteConverter>(
      k, mux_->lanes_of(kStridedW), cfg.bus_bytes, cfg.queue_depth, 4,
      cfg.pack_max_bursts);
  indirect_r_ = std::make_unique<IndirectReadConverter>(
      k, mux_->lanes_of(kIndirectR), cfg.bus_bytes, cfg.queue_depth,
      cfg.r_out_depth, cfg.idx_window_lines, cfg.pack_max_bursts);
  indirect_w_ = std::make_unique<IndirectWriteConverter>(
      k, mux_->lanes_of(kIndirectW), cfg.bus_bytes, cfg.queue_depth, 4,
      cfg.idx_window_lines, cfg.pack_max_bursts);
  k.add(*this);
  k.subscribe(*this, up_.ar);
  k.subscribe(*this, up_.aw);
  k.subscribe(*this, up_.w);
  k.subscribe(*this, *base_->r_out());
  k.subscribe(*this, *strided_r_->r_out());
  k.subscribe(*this, *indirect_r_->r_out());
  k.subscribe(*this, *base_->b_out());
  k.subscribe(*this, *strided_w_->b_out());
  k.subscribe(*this, *indirect_w_->b_out());
}

Converter* AxiPackAdapter::classify_ar(const axi::AxiAr& ar) {
  if (!ar.pack.has_value()) {
    ++stats_.base_reads;
    return base_.get();
  }
  if (ar.pack->indir) {
    ++stats_.indirect_reads;
    return indirect_r_.get();
  }
  ++stats_.strided_reads;
  return strided_r_.get();
}

Converter* AxiPackAdapter::classify_aw(const axi::AxiAw& aw) {
  if (!aw.pack.has_value()) {
    ++stats_.base_writes;
    return base_.get();
  }
  if (aw.pack->indir) {
    ++stats_.indirect_writes;
    return indirect_w_.get();
  }
  ++stats_.strided_writes;
  return strided_w_.get();
}

void AxiPackAdapter::tick() {
  // AR demux.
  if (up_.ar.can_pop()) {
    // Classify without consuming so a busy converter backpressures AR.
    const axi::AxiAr& ar = up_.ar.front();
    Converter* conv = ar.pack.has_value()
                          ? (ar.pack->indir
                                 ? static_cast<Converter*>(indirect_r_.get())
                                 : static_cast<Converter*>(strided_r_.get()))
                          : static_cast<Converter*>(base_.get());
    if (conv->can_accept_ar()) {
      classify_ar(ar);  // count it
      conv->accept_ar(up_.ar.pop());
      r_order_.push_back(conv);
    }
  }
  // AW demux.
  if (up_.aw.can_pop()) {
    const axi::AxiAw& aw = up_.aw.front();
    Converter* conv = aw.pack.has_value()
                          ? (aw.pack->indir
                                 ? static_cast<Converter*>(indirect_w_.get())
                                 : static_cast<Converter*>(strided_w_.get()))
                          : static_cast<Converter*>(base_.get());
    if (conv->can_accept_aw()) {
      classify_aw(aw);
      conv->accept_aw(up_.aw.pop());
      w_route_.push_back(conv);
      b_order_.push_back(conv);
    }
  }
  // W routing: beats go to the converter of the oldest W-pending AW.
  if (!w_route_.empty() && up_.w.can_pop()) {
    Converter* conv = w_route_.front();
    if (conv->can_accept_w()) {
      const axi::AxiW beat = up_.w.pop();
      const bool last = beat.last;
      conv->accept_w(beat);
      if (last) w_route_.pop_front();
    }
  }
  // R return in AR order.
  if (!r_order_.empty() && up_.r.can_push()) {
    Converter* conv = r_order_.front();
    sim::Fifo<axi::AxiR>* out = conv->r_out();
    assert(out != nullptr);
    if (out->can_pop()) {
      const axi::AxiR beat = out->pop();
      up_.r.push(beat);
      if (beat.last) r_order_.pop_front();
    }
  }
  // B return in AW order.
  if (!b_order_.empty() && up_.b.can_push()) {
    Converter* conv = b_order_.front();
    sim::Fifo<axi::AxiB>* out = conv->b_out();
    assert(out != nullptr);
    if (out->can_pop()) {
      up_.b.push(out->pop());
      b_order_.pop_front();
    }
  }
}

bool AxiPackAdapter::idle() const {
  return r_order_.empty() && b_order_.empty() && w_route_.empty() &&
         base_->idle() && strided_r_->idle() && strided_w_->idle() &&
         indirect_r_->idle() && indirect_w_->idle();
}

}  // namespace axipack::pack
