#include "pack/adapter.hpp"

#include <cassert>

namespace axipack::pack {

AxiPackAdapter::AxiPackAdapter(sim::Kernel& k, axi::AxiPort& upstream,
                               mem::WordMemory& memory,
                               const AdapterConfig& cfg)
    : up_(upstream) {
  assert(memory.num_ports() == cfg.bus_bytes / 4 &&
         "bank ports must match bus width (n = D/W)");
  mux_ = std::make_unique<PortMux>(
      k, memory, cfg.coalesce_enable ? kNumConvsCoalesced : kNumConvs,
      cfg.lane_fifo_depth, cfg.resp_fifo_depth);
  if (cfg.coalesce_enable) {
    CoalescerConfig cc;
    cc.entries = cfg.coalesce_entries;
    cc.window = cfg.coalesce_window;
    cc.lane_fifo_depth = cfg.lane_fifo_depth;
    cc.resp_fifo_depth = cfg.resp_fifo_depth;
    coalescer_ = std::make_unique<Coalescer>(k, mux_->lanes_of(kIndirectR),
                                             cc);
    // The index, strided-read and base stages get their own units on their
    // own mux slots: those streams have little to merge, but the
    // bank-partitioned issue means each DRAM bank receives its entire
    // traffic through one port — so the sticky mux quantum's per-port
    // single-stream runs are per-bank single-row runs at the scheduler,
    // instead of every bank seeing every stream interleaved from all
    // ports (which forces a row swap per stream switch). The base unit
    // also carries the channel's writes as pass-through entries (see
    // coalescer.hpp for the same-word ordering discipline).
    coalescer_idx_ = std::make_unique<Coalescer>(
        k, mux_->lanes_of(kIndirectRIdx), cc);
    coalescer_str_ = std::make_unique<Coalescer>(
        k, mux_->lanes_of(kStridedR), cc);
    coalescer_base_ = std::make_unique<Coalescer>(
        k, mux_->lanes_of(kBase), cc);
    mux_->set_sticky_quantum(cfg.coalesce_arb_quantum,
                             cfg.coalesce_arb_patience);
    // Coherence point: every converter's write stream is granted at the
    // mux, so snooping grants there keeps retained read words honest.
    mux_->set_write_snoop([ce = coalescer_.get(), ci = coalescer_idx_.get(),
                           cs = coalescer_str_.get(),
                           cb = coalescer_base_.get()](std::uint64_t addr) {
      ce->invalidate(addr);
      ci->invalidate(addr);
      cs->invalidate(addr);
      cb->invalidate(addr);
    });
    base_ = std::make_unique<BaseConverter>(
        k, coalescer_base_->upstream_lanes(), cfg.bus_bytes, cfg.queue_depth,
        cfg.base_max_bursts, cfg.r_out_depth);
    strided_r_ = std::make_unique<StridedReadConverter>(
        k, coalescer_str_->upstream_lanes(), cfg.bus_bytes, cfg.queue_depth,
        cfg.r_out_depth, cfg.pack_max_bursts);
  } else {
    base_ = std::make_unique<BaseConverter>(k, mux_->lanes_of(kBase),
                                            cfg.bus_bytes, cfg.queue_depth,
                                            cfg.base_max_bursts,
                                            cfg.r_out_depth);
    strided_r_ = std::make_unique<StridedReadConverter>(
        k, mux_->lanes_of(kStridedR), cfg.bus_bytes, cfg.queue_depth,
        cfg.r_out_depth, cfg.pack_max_bursts);
  }
  strided_w_ = std::make_unique<StridedWriteConverter>(
      k, mux_->lanes_of(kStridedW), cfg.bus_bytes, cfg.queue_depth, 4,
      cfg.pack_max_bursts);
  if (cfg.coalesce_enable) {
    indirect_r_ = std::make_unique<IndirectReadConverter>(
        k, coalescer_->upstream_lanes(), cfg.bus_bytes, cfg.queue_depth,
        cfg.r_out_depth, cfg.idx_window_lines, cfg.pack_max_bursts,
        coalescer_idx_->upstream_lanes());
  } else {
    indirect_r_ = std::make_unique<IndirectReadConverter>(
        k, mux_->lanes_of(kIndirectR), cfg.bus_bytes, cfg.queue_depth,
        cfg.r_out_depth, cfg.idx_window_lines, cfg.pack_max_bursts);
  }
  indirect_w_ = std::make_unique<IndirectWriteConverter>(
      k, mux_->lanes_of(kIndirectW), cfg.bus_bytes, cfg.queue_depth, 4,
      cfg.idx_window_lines, cfg.pack_max_bursts);
  k.add(*this);
  k.subscribe(*this, up_.ar);
  k.subscribe(*this, up_.aw);
  k.subscribe(*this, up_.w);
  k.subscribe(*this, *base_->r_out());
  k.subscribe(*this, *strided_r_->r_out());
  k.subscribe(*this, *indirect_r_->r_out());
  k.subscribe(*this, *base_->b_out());
  k.subscribe(*this, *strided_w_->b_out());
  k.subscribe(*this, *indirect_w_->b_out());
}

Converter* AxiPackAdapter::classify_ar(const axi::AxiAr& ar) {
  if (!ar.pack.has_value()) {
    ++stats_.base_reads;
    return base_.get();
  }
  if (ar.pack->indir) {
    ++stats_.indirect_reads;
    return indirect_r_.get();
  }
  ++stats_.strided_reads;
  return strided_r_.get();
}

Converter* AxiPackAdapter::classify_aw(const axi::AxiAw& aw) {
  if (!aw.pack.has_value()) {
    ++stats_.base_writes;
    return base_.get();
  }
  if (aw.pack->indir) {
    ++stats_.indirect_writes;
    return indirect_w_.get();
  }
  ++stats_.strided_writes;
  return strided_w_.get();
}

void AxiPackAdapter::tick() {
  // AR demux.
  if (up_.ar.can_pop()) {
    // Classify without consuming so a busy converter backpressures AR.
    const axi::AxiAr& ar = up_.ar.front();
    Converter* conv = ar.pack.has_value()
                          ? (ar.pack->indir
                                 ? static_cast<Converter*>(indirect_r_.get())
                                 : static_cast<Converter*>(strided_r_.get()))
                          : static_cast<Converter*>(base_.get());
    if (conv->can_accept_ar()) {
      classify_ar(ar);  // count it
      conv->accept_ar(up_.ar.pop());
      r_order_.push_back(conv);
    }
  }
  // AW demux.
  if (up_.aw.can_pop()) {
    const axi::AxiAw& aw = up_.aw.front();
    Converter* conv = aw.pack.has_value()
                          ? (aw.pack->indir
                                 ? static_cast<Converter*>(indirect_w_.get())
                                 : static_cast<Converter*>(strided_w_.get()))
                          : static_cast<Converter*>(base_.get());
    if (conv->can_accept_aw()) {
      classify_aw(aw);
      conv->accept_aw(up_.aw.pop());
      w_route_.push_back(conv);
      b_order_.push_back(conv);
    }
  }
  // W routing: beats go to the converter of the oldest W-pending AW.
  if (!w_route_.empty() && up_.w.can_pop()) {
    Converter* conv = w_route_.front();
    if (conv->can_accept_w()) {
      const axi::AxiW beat = up_.w.pop();
      const bool last = beat.last;
      conv->accept_w(beat);
      if (last) w_route_.pop_front();
    }
  }
  // R return in AR order.
  if (!r_order_.empty() && up_.r.can_push()) {
    Converter* conv = r_order_.front();
    sim::Fifo<axi::AxiR>* out = conv->r_out();
    assert(out != nullptr);
    if (out->can_pop()) {
      const axi::AxiR beat = out->pop();
      up_.r.push(beat);
      if (beat.last) r_order_.pop_front();
    }
  }
  // B return in AW order.
  if (!b_order_.empty() && up_.b.can_push()) {
    Converter* conv = b_order_.front();
    sim::Fifo<axi::AxiB>* out = conv->b_out();
    assert(out != nullptr);
    if (out->can_pop()) {
      up_.b.push(out->pop());
      b_order_.pop_front();
    }
  }
}

bool AxiPackAdapter::idle() const {
  return r_order_.empty() && b_order_.empty() && w_route_.empty() &&
         base_->idle() && strided_r_->idle() && strided_w_->idle() &&
         indirect_r_->idle() && indirect_w_->idle() &&
         (coalescer_ == nullptr || coalescer_->idle()) &&
         (coalescer_idx_ == nullptr || coalescer_idx_->idle()) &&
         (coalescer_str_ == nullptr || coalescer_str_->idle()) &&
         (coalescer_base_ == nullptr || coalescer_base_->idle());
}

}  // namespace axipack::pack
