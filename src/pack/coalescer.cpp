#include "pack/coalescer.hpp"

#include <algorithm>
#include <cassert>

#include "pack/port_mux.hpp"

namespace axipack::pack {

Coalescer::Coalescer(sim::Kernel& k, std::vector<LaneIO> downstream,
                     const CoalescerConfig& cfg)
    : down_(std::move(downstream)),
      lanes_n_(static_cast<unsigned>(down_.size())),
      cfg_(cfg),
      // 2 KiB granule as both partition and group: the default DRAM row
      // span and a sane spatial-locality proxy for the SRAM backends.
      key_fn_([](std::uint64_t addr) {
        const std::uint64_t g = addr >> 11;
        return (g << 48) | (g & 0xFFFFFFFFFFFFull);
      }),
      table_(cfg.entries),
      issue_q_(lanes_n_),
      waiters_(lanes_n_),
      next_seq_(lanes_n_, 0),
      last_key_(lanes_n_, 0),
      has_last_key_(lanes_n_, false) {
  assert(cfg_.entries >= 1 && cfg_.window >= 1);
  // The slot index travels as the downstream tag and must not collide with
  // the port mux's converter-id field.
  assert((cfg_.entries - 1) >> PortMux::kConvShift == 0);
  up_req_.reserve(lanes_n_);
  up_resp_.reserve(lanes_n_);
  for (unsigned l = 0; l < lanes_n_; ++l) {
    up_req_.push_back(std::make_unique<sim::Fifo<mem::WordReq>>(
        k, cfg_.lane_fifo_depth, 1));
    up_resp_.push_back(std::make_unique<sim::Fifo<mem::WordResp>>(
        k, cfg_.resp_fifo_depth, 1));
  }
  free_slots_.reserve(cfg_.entries);
  for (std::size_t s = cfg_.entries; s > 0; --s) {
    free_slots_.push_back(static_cast<std::uint32_t>(s - 1));
  }
  k.add(*this);
  for (auto& f : up_req_) k.subscribe(*this, *f);
  for (const LaneIO& lane : down_) k.subscribe(*this, *lane.resp);
}

std::vector<LaneIO> Coalescer::upstream_lanes() {
  std::vector<LaneIO> out(lanes_n_);
  for (unsigned l = 0; l < lanes_n_; ++l) {
    out[l].req = up_req_[l].get();
    out[l].resp = up_resp_[l].get();
  }
  return out;
}

void Coalescer::set_locality_key(LocalityKeyFn fn) {
  assert(fn);
  assert(live_ == 0 && "locality key must be set before traffic flows");
  key_fn_ = std::move(fn);
  // Cached keys in the (empty) table need no rewrite; last-issue keys from
  // a previous key space must not seed bogus group matches.
  std::fill(has_last_key_.begin(), has_last_key_.end(), false);
}

void Coalescer::drain_downstream() {
  for (unsigned l = 0; l < lanes_n_; ++l) {
    if (!down_[l].resp->can_pop()) continue;
    const mem::WordResp resp = down_[l].resp->pop();
    assert(resp.tag < table_.size());
    Entry& e = table_[resp.tag];
    assert(e.valid && !e.filled);
    // Fan the word out to every waiter accepted while the fetch was in
    // flight — the waiter records are self-contained from here on, so the
    // in-flight count never includes the (deliberately long, row-batched)
    // release reorder window.
    for (const WaiterRef& ref : e.waiters) {
      auto& lane_q = waiters_[ref.lane];
      const std::uint64_t head = next_seq_[ref.lane] - lane_q.size();
      assert(ref.seq >= head && ref.seq - head < lane_q.size());
      Waiter& w = lane_q[static_cast<std::size_t>(ref.seq - head)];
      w.rdata = resp.rdata;
      w.ready = true;
      w.error = resp.error;
    }
    e.waiters.clear();
    --live_;
    // Retain the word to serve later duplicates — unless it was a write
    // (pass-through, nothing to serve), a snooped write de-registered
    // the entry while the fetch was in flight (the data may predate the
    // store, so it must not outlive this fan-out), or the fill errored
    // (a corrupt word must error every merged waiter now and never be
    // served silently to a later request).
    const auto reg = lookup_.find(e.addr);
    if (!e.write && !resp.error && reg != lookup_.end() &&
        reg->second == resp.tag) {
      e.rdata = resp.rdata;
      e.filled = true;
      retained_q_.push_back({resp.tag, e.addr});
    } else {
      if (reg != lookup_.end() && reg->second == resp.tag) {
        lookup_.erase(reg);
      }
      e.valid = false;
      free_slots_.push_back(resp.tag);
    }
  }
}

void Coalescer::release_upstream() {
  for (unsigned l = 0; l < lanes_n_; ++l) {
    if (waiters_[l].empty() || !up_resp_[l]->can_push()) continue;
    const Waiter& w = waiters_[l].front();
    if (!w.ready) continue;  // fetch still in flight (in-order release)
    mem::WordResp resp;
    resp.rdata = w.rdata;
    resp.tag = w.tag;
    resp.was_write = w.was_write;
    resp.error = w.error;
    up_resp_[l]->push(resp);
    waiters_[l].pop_front();
    --total_waiters_;
  }
}

void Coalescer::invalidate(std::uint64_t addr) {
  const auto it = lookup_.find(addr);
  if (it == lookup_.end()) return;
  Entry& e = table_[it->second];
  if (e.filled) {
    // Retained copy: drop it (its retained_q_ record goes stale and is
    // skipped by take_slot's validation).
    e.valid = false;
    e.filled = false;
    free_slots_.push_back(it->second);
  }
  // In flight: the fetch still serves its already-accepted waiters — the
  // same read-write ordering the uncoalesced path has — but new requests
  // no longer merge into it and drain_downstream will not retain it.
  lookup_.erase(it);
}

std::uint32_t Coalescer::take_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  // Reclaim the oldest retained word; only unfilled entries are
  // irreplaceable (their fetch response still routes back by slot).
  // Records whose slot moved on (invalidated, evicted, reallocated) are
  // stale — skip them.
  while (!retained_q_.empty()) {
    const Retained r = retained_q_.front();
    retained_q_.pop_front();
    Entry& e = table_[r.slot];
    if (!e.valid || !e.filled || e.addr != r.addr) continue;
    e.valid = false;
    e.filled = false;
    lookup_.erase(r.addr);
    return r.slot;
  }
  return kNoSlot;
}

void Coalescer::accept_upstream() {
  for (unsigned l = 0; l < lanes_n_; ++l) {
    if (!up_req_[l]->can_pop()) continue;
    const mem::WordReq& req = up_req_[l]->front();
    std::uint32_t slot = kNoSlot;
    bool instant = false;
    std::uint32_t instant_data = 0;
    const auto hit = lookup_.find(req.addr);
    if (req.write) {
      if (hit != lookup_.end()) {
        Entry& e = table_[hit->second];
        if (!e.filled) {
          // Same-word write behind a pending read or write: stall in the
          // lane until the older access resolves (preserves WAR/WAW; the
          // older entry completes independently, so no deadlock).
          continue;
        }
        // Retained copy: the store supersedes it; reclaim the slot for the
        // write entry itself (its retained_q_ record goes stale).
        slot = hit->second;
        e.filled = false;
        lookup_.erase(hit);
      }
    } else if (hit != lookup_.end()) {
      const Entry& e = table_[hit->second];
      if (e.write) {
        // Read of a word with a queued/in-flight write: forward the store
        // data when the full word is being written, else stall behind it.
        if (e.wstrb != 0xF) continue;
        instant = true;
        instant_data = e.wdata;
        ++stats_.merged;
      } else {
        slot = hit->second;
        instant = e.filled;
        instant_data = e.rdata;
        ++stats_.merged;
      }
    }
    if (slot == kNoSlot && !instant) {
      if ((slot = take_slot()) == kNoSlot) {
        continue;  // table full: the request backpressures in its lane FIFO
      }
    }
    if (slot != kNoSlot && !instant &&
        (req.write || lookup_.find(req.addr) == lookup_.end())) {
      Entry& e = table_[slot];
      e.addr = req.addr;
      e.key = key_fn_(req.addr);
      e.write = req.write;
      e.wdata = req.wdata;
      e.wstrb = req.wstrb;
      e.valid = true;
      e.filled = false;
      if (!req.write) {
        lookup_.emplace(req.addr, slot);
        ++stats_.unique;
      } else {
        lookup_[req.addr] = slot;
      }
      issue_q_[route_of(e.key)].push_back(slot);
      ++live_;
      stats_.peak_pending = std::max<std::uint64_t>(stats_.peak_pending,
                                                    live_);
    }
    Waiter w;
    w.tag = req.tag;
    w.was_write = req.write;
    if (instant) {
      w.rdata = instant_data;
      w.ready = true;
    } else {
      table_[slot].waiters.push_back({l, next_seq_[l]});
    }
    ++next_seq_[l];
    waiters_[l].push_back(w);
    ++total_waiters_;
    up_req_[l]->pop();
  }
}

void Coalescer::issue_downstream() {
  for (unsigned l = 0; l < lanes_n_; ++l) {
    std::deque<std::uint32_t>& q = issue_q_[l];
    if (q.empty() || !down_[l].req->can_push()) continue;
    // Prefer, within the window, the first entry continuing this lane's
    // current row group; fall back to the queue head (bounded reordering,
    // guaranteed progress). The lane itself is the bank partition, so the
    // whole queue is same-bank traffic.
    const std::size_t look = std::min(cfg_.window, q.size());
    std::size_t pick = 0;
    if (has_last_key_[l]) {
      for (std::size_t i = 0; i < look; ++i) {
        if (table_[q[i]].key == last_key_[l]) {
          pick = i;
          break;
        }
      }
    }
    const std::uint32_t slot = q[pick];
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(pick));
    const Entry& e = table_[slot];
    if (!has_last_key_[l] || e.key != last_key_[l]) ++stats_.row_groups;
    last_key_[l] = e.key;
    has_last_key_[l] = true;
    mem::WordReq req;
    req.addr = e.addr;
    req.write = e.write;
    req.wdata = e.wdata;
    req.wstrb = e.wstrb;
    req.tag = slot;
    down_[l].req->push(req);
  }
}

void Coalescer::tick() {
  drain_downstream();
  release_upstream();
  accept_upstream();
  issue_downstream();
}

}  // namespace axipack::pack
