#include "pack/port_mux.hpp"

#include <cassert>

namespace axipack::pack {

PortMux::PortMux(sim::Kernel& k, mem::WordMemory& memory,
                 unsigned num_converters, std::size_t lane_fifo_depth,
                 std::size_t resp_fifo_depth)
    : memory_(memory), lanes_(memory.num_ports()), convs_(num_converters) {
  assert(convs_ > 0 && convs_ < (1u << kConvBits));
  req_.resize(convs_);
  resp_.resize(convs_);
  for (unsigned c = 0; c < convs_; ++c) {
    for (unsigned l = 0; l < lanes_; ++l) {
      req_[c].push_back(std::make_unique<sim::Fifo<mem::WordReq>>(
          k, lane_fifo_depth, 1));
      resp_[c].push_back(std::make_unique<sim::Fifo<mem::WordResp>>(
          k, resp_fifo_depth, 1));
    }
  }
  rr_.assign(lanes_, 0);
  k.add(*this);
}

std::vector<LaneIO> PortMux::lanes_of(unsigned conv) {
  assert(conv < convs_);
  std::vector<LaneIO> out(lanes_);
  for (unsigned l = 0; l < lanes_; ++l) {
    out[l].req = req_[conv][l].get();
    out[l].resp = resp_[conv][l].get();
  }
  return out;
}

void PortMux::tick() {
  for (unsigned l = 0; l < lanes_; ++l) {
    mem::WordPort& port = memory_.port(l);
    // Requests: round-robin over converters with a pending request.
    if (port.req.can_push()) {
      for (unsigned i = 0; i < convs_; ++i) {
        const unsigned c = (rr_[l] + i) % convs_;
        if (!req_[c][l]->can_pop()) continue;
        mem::WordReq r = req_[c][l]->pop();
        assert((r.tag >> kConvShift) == 0 && "tag collides with conv field");
        r.tag |= c << kConvShift;
        port.req.push(r);
        rr_[l] = (c + 1) % convs_;
        ++words_issued_;
        break;
      }
    }
    // Responses: route by converter id in the tag.
    if (port.resp.can_pop()) {
      const unsigned c = port.resp.front().tag >> kConvShift;
      assert(c < convs_);
      if (resp_[c][l]->can_push()) {
        mem::WordResp r = port.resp.pop();
        r.tag &= (1u << kConvShift) - 1u;
        resp_[c][l]->push(r);
      }
    }
  }
}

}  // namespace axipack::pack
