#include "pack/port_mux.hpp"

#include <cassert>

namespace axipack::pack {

PortMux::PortMux(sim::Kernel& k, mem::WordMemory& memory,
                 unsigned num_converters, std::size_t lane_fifo_depth,
                 std::size_t resp_fifo_depth)
    : memory_(memory),
      kernel_(k),
      lanes_(memory.num_ports()),
      convs_(num_converters) {
  assert(convs_ > 0 && convs_ < (1u << kConvBits));
  req_flat_.reserve(std::size_t{convs_} * lanes_);
  resp_flat_.reserve(std::size_t{convs_} * lanes_);
  for (unsigned l = 0; l < lanes_; ++l) {
    for (unsigned c = 0; c < convs_; ++c) {
      req_flat_.push_back(std::make_unique<sim::Fifo<mem::WordReq>>(
          k, lane_fifo_depth, 1));
      resp_flat_.push_back(std::make_unique<sim::Fifo<mem::WordResp>>(
          k, resp_fifo_depth, 1));
    }
  }
  rr_.assign(lanes_, 0);
  sticky_credit_.assign(lanes_, 0);
  sticky_conv_.assign(lanes_, 0);
  sticky_hold_since_.assign(lanes_, kNoHold);
  ports_.reserve(lanes_);
  for (unsigned l = 0; l < lanes_; ++l) ports_.push_back(&memory_.port(l));
  k.add(*this);
  for (auto& f : req_flat_) k.subscribe(*this, *f);
  for (unsigned l = 0; l < lanes_; ++l) {
    k.subscribe(*this, memory_.port(l).resp);
  }
  // Every Fifo a lane's work arrives through re-flags the lane's bit on
  // push, so a lane whose bit is clear provably has nothing stored and
  // tick() may skip it.
  assert(lanes_ <= 64 && "active-lane bitmask is one 64-bit word");
  active_lanes_ = lanes_ == 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << lanes_) - 1;
  for (unsigned l = 0; l < lanes_; ++l) {
    for (unsigned c = 0; c < convs_; ++c) {
      req(c, l).set_push_flag(&active_lanes_, l);
    }
    memory_.port(l).resp.set_push_flag(&active_lanes_, l);
  }
}

PortMux::~PortMux() {
  // The memory outlives the mux in some harnesses; detach the push taps so
  // its response Fifos never write through a dangling pointer.
  for (unsigned l = 0; l < lanes_; ++l) {
    memory_.port(l).resp.set_push_flag(nullptr, 0);
  }
}

std::vector<LaneIO> PortMux::lanes_of(unsigned conv) {
  assert(conv < convs_);
  std::vector<LaneIO> out(lanes_);
  for (unsigned l = 0; l < lanes_; ++l) {
    out[l].req = &req(conv, l);
    out[l].resp = &resp(conv, l);
  }
  return out;
}

void PortMux::tick() {
  const sim::Cycle now = kernel_.now();  // hoisted out of the fifo checks
  // Only flagged lanes can have stored work; an unflagged lane's body is a
  // no-op (no visible request, no response, and hold aging needs a visible
  // competitor), so skipping it cannot change any outcome. Pushes during
  // this tick re-flag bits via the Fifo taps; lanes that still hold items
  // (possibly not yet visible) re-flag themselves below.
  std::uint64_t live = active_lanes_;
  active_lanes_ = 0;
  for (; live != 0; live &= live - 1) {
    const unsigned l =
        static_cast<unsigned>(__builtin_ctzll(live));
    mem::WordPort& port = *ports_[l];
    // Requests: round-robin over converters with a pending request. With a
    // sticky quantum, the last-granted converter keeps the lane while it
    // has requests and credit; a holder in a short production bubble still
    // holds the lane (denying competitors) for up to `patience` cycles,
    // after which — or once the credit is spent — the round-robin scan
    // takes over and re-arms the credit.
    if (port.req.can_push()) {
      unsigned c;
      unsigned scan = convs_;
      bool hold = false;
      if (sticky_credit_[l] > 0 && req(sticky_conv_[l], l).has_visible(now)) {
        c = sticky_conv_[l];
        scan = 1;
        sticky_hold_since_[l] = kNoHold;
      } else {
        c = rr_[l];
        if (sticky_credit_[l] > 0 && sticky_patience_ > 0) {
          // Only denied competitors start or age the hold, so lanes where
          // nothing is pending carry no hold state (keeps gated and naive
          // kernel scheduling cycle-identical).
          bool competitor = false;
          for (unsigned k = 0; k < convs_; ++k) {
            if (k != sticky_conv_[l] && req(k, l).has_visible(now)) {
              competitor = true;
              break;
            }
          }
          if (competitor) {
            if (sticky_hold_since_[l] == kNoHold) sticky_hold_since_[l] = now;
            if (now - sticky_hold_since_[l] < sticky_patience_) {
              hold = true;
            } else {
              sticky_hold_since_[l] = kNoHold;
              sticky_credit_[l] = 0;  // bubble outlasted patience: yield
            }
          }
        }
      }
      for (unsigned i = 0; !hold && i < scan; ++i) {
        if (req(c, l).has_visible(now)) {
          mem::WordReq r = req(c, l).pop();
          assert((r.tag >> kConvShift) == 0 && "tag collides with conv field");
          r.tag |= c << kConvShift;
          if (r.write && write_snoop_) write_snoop_(r.addr);
          port.req.push(r);
          rr_[l] = c + 1 == convs_ ? 0 : c + 1;
          if (sticky_quantum_ > 0) {
            sticky_credit_[l] = c == sticky_conv_[l] && sticky_credit_[l] > 0
                                    ? sticky_credit_[l] - 1
                                    : sticky_quantum_ - 1;
            sticky_conv_[l] = c;
            sticky_hold_since_[l] = kNoHold;
          }
          ++words_issued_;
          break;
        }
        c = c + 1 == convs_ ? 0 : c + 1;
      }
    }
    // Responses: route by converter id in the tag.
    if (port.resp.has_visible(now)) {
      const unsigned c = port.resp.front().tag >> kConvShift;
      assert(c < convs_);
      if (resp(c, l).can_push()) {
        mem::WordResp r = port.resp.pop();
        r.tag &= (1u << kConvShift) - 1u;
        resp(c, l).push(r);
      }
    }
    // Re-flag while anything is still stored in the lane (visible or in
    // flight: blocked requests, next-cycle pushes, unrouted responses).
    bool busy = !port.resp.empty();
    for (unsigned c = 0; !busy && c < convs_; ++c) {
      busy = !req(c, l).empty();
    }
    if (busy) active_lanes_ |= std::uint64_t{1} << l;
  }
}

}  // namespace axipack::pack
