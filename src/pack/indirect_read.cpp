#include "pack/indirect_read.hpp"

#include <algorithm>
#include <cassert>

#include "util/bits.hpp"

namespace axipack::pack {

IndirectReadConverter::IndirectReadConverter(sim::Kernel& k,
                                             std::vector<LaneIO> lanes,
                                             unsigned bus_bytes,
                                             unsigned queue_depth,
                                             std::size_t r_out_depth,
                                             std::size_t idx_window_lines,
                                             std::size_t max_bursts,
                                             std::vector<LaneIO> idx_lanes)
    : lanes_(std::move(lanes)),
      idx_lanes_(std::move(idx_lanes)),
      bus_bytes_(bus_bytes),
      lanes_n_(static_cast<unsigned>(lanes_.size())),
      idx_regulator_(lanes_n_, queue_depth),
      elem_regulator_(lanes_n_, queue_depth),
      r_out_(k, r_out_depth, 1),
      max_bursts_(max_bursts),
      idx_window_lines_(idx_window_lines),
      prefer_idx_(lanes_n_, true),
      idx_q_(lanes_n_),
      elem_q_(lanes_n_) {
  assert(idx_lanes_.empty() || idx_lanes_.size() == lanes_.size());
  k.add(*this);
}

bool IndirectReadConverter::can_accept_ar() const {
  return bursts_.size() < max_bursts_;
}

void IndirectReadConverter::accept_ar(const axi::AxiAr& ar) {
  assert(ar.pack.has_value() && ar.pack->indir);
  wake_self();
  Burst bu;
  bu.geom = PackGeom::make(bus_bytes_, ar.beat_bytes(), ar.pack->num_elems);
  bu.elem_base = ar.addr;
  bu.idx_base = ar.pack->index_base;
  bu.idx_bytes = ar.pack->index_bits / 8;
  bu.elem_shift = util::log2_exact(bu.geom.elem_bytes);
  assert(bu.idx_base % 4 == 0 && "index array must be word-aligned");
  bu.id = ar.id;
  bu.traffic = ar.traffic;
  bu.idx_words_total =
      util::ceil_div<std::uint64_t>(bu.geom.num_elems * bu.idx_bytes, 4);
  bu.idx_issue.assign(lanes_n_, 0);
  bu.elem_issue.assign(lanes_n_, 0);
  bursts_.push_back(std::move(bu));
}

std::uint64_t IndirectReadConverter::issue_frontier(const Burst& bu) {
  std::uint64_t f = ~std::uint64_t{0};
  for (unsigned l = 0; l < bu.elem_issue.size(); ++l) {
    f = std::min(f, bu.elem_issue[l] * bu.elem_issue.size() + l);
  }
  return f;
}

void IndirectReadConverter::drain_responses() {
  // Split lanes: each stage drains its own bundle (no routing needed).
  if (!idx_lanes_.empty()) {
    for (unsigned l = 0; l < lanes_n_; ++l) {
      if (idx_lanes_[l].resp->can_pop()) {
        idx_q_[l].push_back(idx_lanes_[l].resp->pop());
      }
      if (lanes_[l].resp->can_pop()) {
        elem_q_[l].push_back(lanes_[l].resp->pop());
      }
    }
    return;
  }
  // Route shared-lane responses into per-stage queues (the RTL's separate
  // decoupling queues); this removes head-of-line blocking between stages.
  for (unsigned l = 0; l < lanes_n_; ++l) {
    if (!lanes_[l].resp->can_pop()) continue;
    const mem::WordResp& head = lanes_[l].resp->front();
    if ((head.tag & 1u) == kIdxTag) {
      idx_q_[l].push_back(lanes_[l].resp->pop());
    } else {
      elem_q_[l].push_back(lanes_[l].resp->pop());
    }
  }
}

void IndirectReadConverter::tick_issue() {
  const bool split = !idx_lanes_.empty();
  for (unsigned l = 0; l < lanes_n_; ++l) {
    sim::Fifo<mem::WordReq>& idx_req =
        split ? *idx_lanes_[l].req : *lanes_[l].req;
    const bool idx_space = idx_req.can_push();
    const bool elem_space = lanes_[l].req->can_push();
    if (!idx_space && !elem_space) continue;

    // Index-stage candidate: first burst with an unissued index word on this
    // lane whose extracted indices still fit the window.
    Burst* idx_burst = nullptr;
    if (idx_space && idx_regulator_.can_issue(l)) {
      for (Burst& bu : bursts_) {
        const std::uint64_t word = bu.idx_issue[l] * lanes_n_ + l;
        if (word >= bu.idx_words_total) continue;
        const std::uint64_t ipw = 4 / bu.idx_bytes;
        const std::uint64_t cap =
            idx_window_lines_ * (bus_bytes_ / bu.idx_bytes);
        // Run-ahead credit relative to the extraction frontier: once every
        // word up to `word` is extracted, the window holds its current
        // entries plus the indices of words [extracted, word]. Bounding
        // that sum (instead of globally counting in-flight words) keeps
        // the frontier word always issuable, so skewed lanes cannot
        // starve in-order extraction — the deadlock deep per-lane queues
        // would otherwise allow.
        const std::uint64_t ahead = word + 1 - bu.idx_words_extracted;
        if (bu.idx_window.size() + ahead * ipw > cap) break;
        idx_burst = &bu;
        break;
      }
    }

    // Element-stage candidate: first burst with an unissued slot on this
    // lane whose index is already in the window.
    Burst* elem_burst = nullptr;
    std::uint64_t elem_addr = 0;
    if (elem_space && elem_regulator_.can_issue(l)) {
      for (Burst& bu : bursts_) {
        const std::uint64_t slot = bu.elem_issue[l] * lanes_n_ + l;
        if (!bu.geom.slot_valid(slot)) continue;
        const std::uint64_t elem = bu.geom.elem_of_slot(slot);
        assert(elem >= bu.idx_window_base);
        const std::uint64_t off = elem - bu.idx_window_base;
        if (off >= bu.idx_window.size()) break;  // index not fetched yet
        const std::uint64_t index = bu.idx_window[off];
        elem_addr = bu.elem_base + (index << bu.elem_shift) +
                    4ull * bu.geom.word_in_elem(slot);
        elem_burst = &bu;
        break;
      }
    }

    if (idx_burst == nullptr && elem_burst == nullptr) continue;
    // Split lanes: the stages do not share a request FIFO, so both
    // candidates issue this cycle. Shared lanes: round-robin for the one
    // request slot.
    const bool pick_idx =
        split || elem_burst == nullptr ||
        (idx_burst != nullptr && prefer_idx_[l]);
    const bool pick_elem = split ? elem_burst != nullptr : !pick_idx;
    if (!split && idx_burst != nullptr && elem_burst != nullptr) {
      prefer_idx_[l] = !prefer_idx_[l];  // round-robin between the stages
    }
    if (pick_idx && idx_burst != nullptr) {
      Burst& bu = *idx_burst;
      mem::WordReq req;
      req.write = false;
      req.addr = bu.idx_base + 4ull * (bu.idx_issue[l] * lanes_n_ + l);
      req.tag = kIdxTag;
      idx_req.push(req);
      idx_regulator_.on_issue(l);
      ++bu.idx_issue[l];
      ++word_stats_.idx_words;
    }
    if (pick_elem && elem_burst != nullptr) {
      Burst& bu = *elem_burst;
      mem::WordReq req;
      req.write = false;
      req.addr = elem_addr;
      req.tag = kElemTag;
      lanes_[l].req->push(req);
      elem_regulator_.on_issue(l);
      ++bu.elem_issue[l];
      ++word_stats_.elem_words;
    }
  }
}

void IndirectReadConverter::tick_index_extract() {
  // Offsets extraction: consume index words in global stream order, up to
  // one full line per cycle.
  for (unsigned consumed = 0; consumed < lanes_n_; ++consumed) {
    // Strict burst order: finish extracting one burst's index stream before
    // starting the next (matches per-lane response ordering).
    Burst* target = nullptr;
    for (Burst& bu : bursts_) {
      if (bu.idx_words_extracted < bu.idx_words_total) {
        target = &bu;
        break;
      }
    }
    if (target == nullptr) return;
    Burst& bu = *target;
    const std::uint64_t w = bu.idx_words_extracted;
    const unsigned lane = static_cast<unsigned>(w % lanes_n_);
    if (idx_q_[lane].empty()) return;
    mem::WordResp resp = idx_q_[lane].front();
    idx_q_[lane].pop_front();
    idx_regulator_.on_retire(lane);
    ++bu.idx_words_extracted;
    if (resp.error) {
      // A corrupt index would fan out to an arbitrary (possibly unmapped)
      // element address. Substitute index 0 — always in-region and aligned —
      // and poison the burst so every remaining beat reports the error.
      resp.rdata = 0;
      bu.err = true;
    }
    // Unpack the indices contained in this word.
    const std::uint64_t first_idx = w * 4 / bu.idx_bytes;
    const std::uint64_t ipw = 4 / bu.idx_bytes;
    for (std::uint64_t i = 0; i < ipw; ++i) {
      const std::uint64_t elem = first_idx + i;
      if (elem >= bu.geom.num_elems) break;
      std::uint64_t value = 0;
      switch (bu.idx_bytes) {
        case 4:
          value = resp.rdata;
          break;
        case 2:
          value = (resp.rdata >> (16 * i)) & 0xFFFFu;
          break;
        case 1:
          value = (resp.rdata >> (8 * i)) & 0xFFu;
          break;
        default:
          assert(false);
      }
      bu.idx_window.push_back(value);
    }
  }
}

void IndirectReadConverter::retire_indices(Burst& bu) {
  const std::uint64_t frontier = issue_frontier(bu);
  const std::uint64_t done_elems = frontier / bu.geom.wpe;
  while (bu.idx_window_base < done_elems && !bu.idx_window.empty()) {
    bu.idx_window.pop_front();
    ++bu.idx_window_base;
  }
}

void IndirectReadConverter::tick_pack() {
  if (bursts_.empty()) return;
  Burst& bu = bursts_.front();
  if (bu.pack_beat >= bu.geom.beats) return;
  if (!r_out_.can_push()) return;
  const unsigned valid = bu.geom.valid_lanes(bu.pack_beat);
  for (unsigned l = 0; l < valid; ++l) {
    if (elem_q_[l].empty()) return;
  }
  axi::AxiR beat;
  beat.id = bu.id;
  beat.traffic = bu.traffic;
  beat.useful_bytes =
      static_cast<std::uint16_t>(bu.geom.beat_useful_bytes(bu.pack_beat));
  if (bu.err) beat.resp = axi::worst_resp(beat.resp, axi::kRespSlvErr);
  for (unsigned l = 0; l < valid; ++l) {
    const mem::WordResp resp = elem_q_[l].front();
    elem_q_[l].pop_front();
    elem_regulator_.on_retire(l);
    if (resp.error) beat.resp = axi::worst_resp(beat.resp, axi::kRespSlvErr);
    axi::place_bytes(beat.data, 4 * l,
                     reinterpret_cast<const std::uint8_t*>(&resp.rdata), 4);
  }
  if (faults_ != nullptr) {
    unsigned bit = 0;
    if (faults_->next_pack_beat(sim::FaultSite::pack_indirect, &bit)) {
      const unsigned bits = beat.useful_bytes > 0 ? beat.useful_bytes * 8u : 8u;
      const unsigned b = bit % bits;
      beat.data[b / 8] ^= static_cast<std::uint8_t>(1u << (b % 8));
      beat.resp = axi::worst_resp(beat.resp, axi::kRespSlvErr);
    }
  }
  ++bu.pack_beat;
  beat.last = bu.pack_beat == bu.geom.beats;
  r_out_.push(beat);
  if (beat.last) {
    bursts_.pop_front();
  }
}

void IndirectReadConverter::tick() {
  drain_responses();
  tick_index_extract();
  tick_issue();
  for (Burst& bu : bursts_) retire_indices(bu);
  tick_pack();
}

}  // namespace axipack::pack
