// Strided write converter: mirror image of the strided read converter.
// A beat unpacker splits incoming W beats into per-lane word writes aimed at
// the strided addresses; write acknowledgements are counted and combined
// into the single B response (paper §II-C).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "axi/types.hpp"
#include "pack/converter.hpp"
#include "sim/kernel.hpp"

namespace axipack::pack {

class StridedWriteConverter final : public Converter {
 public:
  StridedWriteConverter(sim::Kernel& k, std::vector<LaneIO> lanes,
                        unsigned bus_bytes, unsigned queue_depth,
                        std::size_t b_out_depth = 4,
                        std::size_t max_bursts = 2);

  bool can_accept_aw() const override;
  void accept_aw(const axi::AxiAw& aw) override;
  bool can_accept_w() const override;
  void accept_w(const axi::AxiW& w) override;
  sim::Fifo<axi::AxiB>* b_out() override { return &b_out_; }
  bool idle() const override { return bursts_.empty(); }

  void tick() override;

 private:
  struct Burst {
    PackGeom geom;
    std::uint64_t base = 0;
    std::int64_t stride = 0;
    std::uint32_t id = 0;
    std::uint64_t unpack_beat = 0;  ///< next W beat to unpack
    std::uint64_t acks = 0;         ///< word acknowledgements received
    bool err = false;               ///< any errored ack -> B reports SLVERR
  };

  std::uint64_t slot_addr(const Burst& bu, std::uint64_t slot) const {
    const std::uint64_t elem = bu.geom.elem_of_slot(slot);
    const unsigned word = bu.geom.word_in_elem(slot);
    return bu.base +
           static_cast<std::uint64_t>(static_cast<std::int64_t>(elem) *
                                      bu.stride) +
           4ull * word;
  }

  /// Burst currently consuming W beats (W data arrives in AW order).
  Burst* unpack_target();

  std::vector<LaneIO> lanes_;
  unsigned bus_bytes_;
  Regulator regulator_;
  sim::Fifo<axi::AxiB> b_out_;
  std::deque<Burst> bursts_;
  std::size_t max_bursts_;
};

}  // namespace axipack::pack
