// Base AXI4 converter: serves regular (non-pack) bursts against the banked
// memory — full-width or narrow, INCR/FIXED/WRAP, reads and writes. This is
// the only converter the BASE system ever exercises; in the PACK system it
// carries the contiguous traffic (unit-stride vector loads/stores, index
// vectors fetched by the core).
//
// Reads issue one beat's word requests per cycle and pipeline across bursts,
// which is what lets a stream of single-beat narrow bursts (the BASE
// system's per-element accesses) sustain at most one element per cycle —
// the bus inefficiency AXI-Pack attacks.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "axi/types.hpp"
#include "pack/converter.hpp"
#include "sim/kernel.hpp"

namespace axipack::pack {

class BaseConverter final : public Converter {
 public:
  BaseConverter(sim::Kernel& k, std::vector<LaneIO> lanes, unsigned bus_bytes,
                unsigned queue_depth, std::size_t max_bursts = 32,
                std::size_t r_out_depth = 4, std::size_t b_out_depth = 4);

  bool can_accept_ar() const override;
  void accept_ar(const axi::AxiAr& ar) override;
  sim::Fifo<axi::AxiR>* r_out() override { return &r_out_; }

  bool can_accept_aw() const override;
  void accept_aw(const axi::AxiAw& aw) override;
  bool can_accept_w() const override;
  void accept_w(const axi::AxiW& w) override;
  sim::Fifo<axi::AxiB>* b_out() override { return &b_out_; }

  bool idle() const override { return reads_.empty() && writes_.empty(); }

  void tick() override;

 private:
  /// Word accesses of one beat: lanes [first_lane, first_lane+words) read
  /// words starting at word-aligned address `word_addr`.
  struct BeatPlan {
    std::uint64_t word_addr = 0;
    unsigned first_lane = 0;
    unsigned words = 1;
    unsigned useful_bytes = 0;
    unsigned data_lane = 0;  ///< byte lane where the beat's data starts
  };

  struct ReadBurst {
    axi::AxiAr ar;
    unsigned issue_beat = 0;
    unsigned pack_beat = 0;
  };
  struct WriteBurst {
    axi::AxiAw aw;
    unsigned unpack_beat = 0;
    std::uint64_t words_issued = 0;
    std::uint64_t acks = 0;
    bool err = false;  ///< any word ack errored -> B reports SLVERR
  };

  BeatPlan plan_beat(const axi::AxiAx& ax, unsigned beat) const;

  void tick_issue();
  void tick_pack();
  void collect_acks();

  std::vector<LaneIO> lanes_;
  unsigned bus_bytes_;
  unsigned bus_mask_;  ///< bus_bytes - 1 (bus widths are powers of two)
  Regulator regulator_;
  sim::Fifo<axi::AxiR> r_out_;
  sim::Fifo<axi::AxiB> b_out_;
  std::deque<ReadBurst> reads_;
  /// Index of the first read burst that may still have unissued beats.
  /// Issue is strictly front-to-back, so everything before it is fully
  /// issued — this keeps tick_issue O(1) with many outstanding bursts.
  std::size_t issue_cursor_ = 0;
  std::deque<WriteBurst> writes_;
  std::size_t max_bursts_;
};

}  // namespace axipack::pack
