#include "pack/strided_read.hpp"

#include <cassert>

namespace axipack::pack {

StridedReadConverter::StridedReadConverter(sim::Kernel& k,
                                           std::vector<LaneIO> lanes,
                                           unsigned bus_bytes,
                                           unsigned queue_depth,
                                           std::size_t r_out_depth,
                                           std::size_t max_bursts)
    : lanes_(std::move(lanes)),
      bus_bytes_(bus_bytes),
      regulator_(static_cast<unsigned>(lanes_.size()), queue_depth),
      r_out_(k, r_out_depth, 1),
      max_bursts_(max_bursts) {
  k.add(*this);
}

bool StridedReadConverter::can_accept_ar() const {
  return bursts_.size() < max_bursts_;
}

void StridedReadConverter::accept_ar(const axi::AxiAr& ar) {
  assert(ar.pack.has_value() && !ar.pack->indir);
  wake_self();
  Burst bu;
  bu.geom = PackGeom::make(bus_bytes_, ar.beat_bytes(), ar.pack->num_elems);
  bu.base = ar.addr;
  bu.stride = ar.pack->stride;
  bu.id = ar.id;
  bu.traffic = ar.traffic;
  bu.issue_beat.assign(lanes_.size(), 0);
  bursts_.push_back(std::move(bu));
}

void StridedReadConverter::tick_issue() {
  // Each lane issues the next word of the oldest burst it has not finished.
  for (unsigned l = 0; l < lanes_.size(); ++l) {
    if (!regulator_.can_issue(l)) continue;
    if (!lanes_[l].req->can_push()) continue;
    // Find the first burst with an unissued valid slot on this lane.
    for (Burst& bu : bursts_) {
      std::uint64_t& beat = bu.issue_beat[l];
      // Skip past the tail: a lane is done with a burst once its next slot
      // falls outside the stream.
      if (beat >= bu.geom.beats || !bu.geom.slot_valid(bu.geom.slot(beat, l))) {
        continue;
      }
      mem::WordReq req;
      req.addr = slot_addr(bu, bu.geom.slot(beat, l));
      req.write = false;
      req.tag = l;
      lanes_[l].req->push(req);
      regulator_.on_issue(l);
      ++beat;
      break;
    }
  }
}

void StridedReadConverter::tick_pack() {
  if (bursts_.empty()) return;
  Burst& bu = bursts_.front();
  if (bu.pack_beat >= bu.geom.beats) return;  // fully packed, waiting retire
  if (!r_out_.can_push()) return;
  const unsigned valid = bu.geom.valid_lanes(bu.pack_beat);
  // All valid lanes must have their response at the head of their queue.
  for (unsigned l = 0; l < valid; ++l) {
    if (!lanes_[l].resp->can_pop()) return;
  }
  axi::AxiR beat;
  beat.id = bu.id;
  beat.traffic = bu.traffic;
  beat.useful_bytes = static_cast<std::uint16_t>(bu.geom.beat_useful_bytes(
      bu.pack_beat));
  for (unsigned l = 0; l < valid; ++l) {
    const mem::WordResp resp = lanes_[l].resp->pop();
    regulator_.on_retire(l);
    // An errored element word errors the whole beat (the master discards
    // the payload and retries the burst).
    if (resp.error) beat.resp = axi::worst_resp(beat.resp, axi::kRespSlvErr);
    axi::place_bytes(beat.data, 4 * l,
                     reinterpret_cast<const std::uint8_t*>(&resp.rdata), 4);
  }
  if (faults_ != nullptr) {
    unsigned bit = 0;
    if (faults_->next_pack_beat(sim::FaultSite::pack_strided, &bit)) {
      const unsigned bits = beat.useful_bytes > 0 ? beat.useful_bytes * 8u : 8u;
      const unsigned b = bit % bits;
      beat.data[b / 8] ^= static_cast<std::uint8_t>(1u << (b % 8));
      beat.resp = axi::worst_resp(beat.resp, axi::kRespSlvErr);
    }
  }
  ++bu.pack_beat;
  beat.last = bu.pack_beat == bu.geom.beats;
  r_out_.push(beat);
  ++beats_packed_;
  if (beat.last) bursts_.pop_front();
}

void StridedReadConverter::tick() {
  tick_issue();
  tick_pack();
}

}  // namespace axipack::pack
