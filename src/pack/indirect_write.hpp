// Indirect write converter: index stage as in the indirect read converter;
// the element stage is a beat unpacker that scatters each W beat's words to
// the indexed addresses. Write acknowledgements are combined into B.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "axi/types.hpp"
#include "pack/converter.hpp"
#include "sim/kernel.hpp"

namespace axipack::pack {

class IndirectWriteConverter final : public Converter {
 public:
  IndirectWriteConverter(sim::Kernel& k, std::vector<LaneIO> lanes,
                         unsigned bus_bytes, unsigned queue_depth,
                         std::size_t b_out_depth = 4,
                         std::size_t idx_window_lines = 4,
                         std::size_t max_bursts = 2);

  bool can_accept_aw() const override;
  void accept_aw(const axi::AxiAw& aw) override;
  bool can_accept_w() const override;
  void accept_w(const axi::AxiW& w) override;
  sim::Fifo<axi::AxiB>* b_out() override { return &b_out_; }
  bool idle() const override { return bursts_.empty(); }

  /// Word-level issue counts (fan-out accounting): idx reads vs element
  /// words scattered — see IndirectWordStats.
  const IndirectWordStats& word_stats() const { return word_stats_; }

  void tick() override;

 private:
  static constexpr std::uint32_t kIdxTag = 1;
  static constexpr std::uint32_t kElemTag = 0;

  struct Burst {
    PackGeom geom;
    std::uint64_t elem_base = 0;
    std::uint64_t idx_base = 0;
    unsigned idx_bytes = 4;
    std::uint32_t id = 0;

    std::uint64_t idx_words_total = 0;
    std::vector<std::uint64_t> idx_issue;
    std::uint64_t idx_words_extracted = 0;
    std::deque<std::uint64_t> idx_window;
    std::uint64_t idx_window_base = 0;

    std::uint64_t unpack_beat = 0;
    std::uint64_t acks = 0;
    // Sticky: an errored index word (or word ack) poisons the burst. Writes
    // whose index came after the corruption are issued with an empty strobe
    // so a bogus substituted index can never clobber unrelated memory; the
    // master sees the SLVERR B and replays the whole store.
    bool err = false;
  };

  Burst* unpack_target();
  const Burst* unpack_target() const;
  void drain_responses();
  void tick_index_issue();
  void tick_index_extract();
  void retire_indices(Burst& bu);

  std::vector<LaneIO> lanes_;
  unsigned bus_bytes_;
  unsigned lanes_n_;
  IndirectWordStats word_stats_;
  Regulator idx_regulator_;
  Regulator elem_regulator_;
  sim::Fifo<axi::AxiB> b_out_;
  std::deque<Burst> bursts_;
  std::size_t max_bursts_;
  std::size_t idx_window_lines_;
  std::vector<bool> prefer_idx_;
  std::vector<std::deque<mem::WordResp>> idx_q_;
};

}  // namespace axipack::pack
