// Shared execution state for the vector processor's units (VLSU load/store
// units, VFU) and the sequencer: configuration, in-flight op tracking for
// chaining and hazards, and activity counters for the energy model.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "mem/backing_store.hpp"
#include "sim/fault.hpp"
#include "sim/probe.hpp"
#include "util/histogram.hpp"
#include "vproc/program.hpp"
#include "vproc/vrf.hpp"

namespace axipack::vproc {

/// How the VLSU reaches memory. This is the only difference between the
/// paper's three systems on the processor side.
enum class VlsuMode : std::uint8_t {
  base,   ///< plain AXI4: per-element narrow bursts for strided/indexed
  pack,   ///< AXI-Pack bursts for strided/indexed accesses
  ideal,  ///< exclusive ideal memory, one word port per lane
};

struct VProcConfig {
  VlsuMode mode = VlsuMode::pack;
  unsigned lanes = 8;         ///< elements/cycle compute and ideal-port width
  unsigned bus_bytes = 32;    ///< AXI data width (D); lanes == bus_bytes/4
  unsigned vlmax = 1024;      ///< max vector length in 32-bit elements
  unsigned dispatch_cycles = 2;  ///< CVA6 -> Ara handshake per vector op

  // Reduction phase 2 (inter-lane tree): base + per-level latency.
  // Calibrated against Fig. 3a/3b: BASE row-wise gemv R-util ~37%.
  unsigned redtree_base = 6;
  unsigned redtree_per_level = 4;

  unsigned max_outstanding_bursts = 16;  ///< load-unit AR window
  unsigned store_max_outstanding_b = 16;
  unsigned ideal_latency = 2;  ///< ideal-memory access latency

  // Cycles per element for base-mode per-element *stores* (Ara's store path
  // serializes address generation and data beats for narrow scattered
  // writes). Calibrated against Fig. 3a/3d: ismt BASE slowdown.
  unsigned base_store_elem_interval = 2;

  // Every N-th received beat of a chained load stalls one extra cycle,
  // modeling VRF port conflicts between VLSU writeback and the chained
  // consumer's operand reads. Calibrated against Fig. 3a: PACK col-wise
  // gemv R-util ~87%. 0 disables.
  unsigned vrf_conflict_every = 8;

  // Loads may start once prior stores have at most this many W beats left
  // to send. This models the VLSU's decoupled address phase: the next
  // read's AR overlaps the tail of the store's data phase so the R stream
  // follows the W stream without a pipeline bubble — the behaviour that
  // makes ismt's read-write alternation settle at the paper's 50% R-bus
  // ceiling. Kernels keep consecutive iterations' footprints disjoint, as
  // real Ara code must. Calibrated against Fig. 3a: ismt R-util ~50%.
  unsigned store_load_runahead = 12;

  std::size_t load_q = 4;   ///< load-unit op queue depth
  std::size_t store_q = 4;  ///< store-unit op queue depth
  std::size_t vfu_q = 4;    ///< VFU op queue depth

  /// Master-side fault handling: per-op bounded retry with exponential
  /// backoff, a progress watchdog, and the pack-path circuit breaker.
  /// Disabled (max_attempts == 0) the VLSU behaves exactly as before —
  /// an errored response simply fails the op.
  sim::RetryConfig retry;
};

/// An issued, not-yet-retired vector instruction. `prod_elems` is the
/// element-granular progress consumers chain on.
struct InflightOp {
  VecOp op;
  std::uint64_t seq = 0;
  std::uint64_t prod_elems = 0;  ///< elements of vd produced so far
  bool done = false;
  /// Producer of vd at issue time. Accumulating ops (vfmacc) read vd, so
  /// they chain on this op's progress. Captured at issue — a later op may
  /// take over producer_of[vd], which must not affect earlier consumers.
  std::shared_ptr<InflightOp> vd_dep;
};

using OpRef = std::shared_ptr<InflightOp>;

/// State shared by sequencer and units.
struct ProcContext {
  VProcConfig cfg;
  Vrf vrf;
  mem::BackingStore* store = nullptr;  ///< functional memory image
  sim::Counters counters;

  /// Cached counter slots for per-beat/per-element increments (hot paths).
  struct Hot {
    std::uint64_t* vlsu_ar;
    std::uint64_t* vlsu_aw;
    std::uint64_t* vlsu_beats_rx;
    std::uint64_t* vlsu_bytes_rx;
    std::uint64_t* vlsu_beats_tx;
    std::uint64_t* vlsu_bytes_tx;
    std::uint64_t* vfu_elems;
    std::uint64_t* ideal_read_bytes;
    std::uint64_t* ideal_index_bytes;
    std::uint64_t* ideal_write_bytes;
  } hot{};

  // Hazard tracking.
  std::array<OpRef, 32> producer_of{};  ///< last writer of each vreg
  std::array<int, 32> readers{};        ///< in-flight ops reading each vreg
  unsigned loads_in_flight = 0;
  unsigned stores_in_flight = 0;
  // Stores that have not yet pushed all their W data. Loads stall on this
  // (not on outstanding B responses): once write data has left the core it
  // is ordered ahead of later reads at the memory ports, so Ara-style
  // read-write ordering only serializes up to the last W beat.
  unsigned stores_pending_w = 0;
  // W beats prior stores still have to send (pack/base modes). Loads wait
  // until this drops to cfg.store_load_runahead so their ARs overlap the
  // store tail (see VProcConfig::store_load_runahead).
  std::uint64_t store_w_beats_left = 0;

  // Ideal-memory port budget, reset each cycle (words/cycle across both
  // load and store units — "one port per lane").
  unsigned ideal_budget = 0;
  std::uint64_t ideal_busy_words = 0;  ///< total words moved (utilization)

  // Per-request latency of retired memory ops (accept -> retire, in
  // cycles). Stamped once at first issue — fault replays keep the original
  // stamp — and aggregated into RunResult by System::run.
  util::Histogram mem_latency;

  // Fault handling (all zero in fault-free runs).
  sim::RetryStats retry_stats;
  std::uint64_t pack_fault_attempts = 0;  ///< failed pack-path op attempts
  bool degraded = false;  ///< breaker tripped: plan new ops base-style

  /// Records one failed pack-path op attempt; past the configured breaker
  /// threshold the VLSU stops planning AXI-Pack bursts for new ops and
  /// degrades to the base per-element path (correct, just slow).
  void note_pack_fault() {
    ++pack_fault_attempts;
    if (!degraded && cfg.retry.breaker_threshold != 0 &&
        pack_fault_attempts >= cfg.retry.breaker_threshold) {
      degraded = true;
      retry_stats.degraded = true;
    }
  }

  explicit ProcContext(const VProcConfig& c) : cfg(c), vrf(c.vlmax) {
    hot.vlsu_ar = counters.handle("vlsu.ar");
    hot.vlsu_aw = counters.handle("vlsu.aw");
    hot.vlsu_beats_rx = counters.handle("vlsu.beats_rx");
    hot.vlsu_bytes_rx = counters.handle("vlsu.bytes_rx");
    hot.vlsu_beats_tx = counters.handle("vlsu.beats_tx");
    hot.vlsu_bytes_tx = counters.handle("vlsu.bytes_tx");
    hot.vfu_elems = counters.handle("vfu.elems");
    hot.ideal_read_bytes = counters.handle("ideal.read_bytes");
    hot.ideal_index_bytes = counters.handle("ideal.index_bytes");
    hot.ideal_write_bytes = counters.handle("ideal.write_bytes");
  }

  /// Elements of `reg` safe to read this cycle (vlmax if no live producer).
  std::uint64_t avail_elems(int reg) const {
    if (reg < 0) return cfg.vlmax;
    const OpRef& p = producer_of[static_cast<unsigned>(reg)];
    if (!p || p->done) return cfg.vlmax;
    return p->prod_elems;
  }

  bool has_reader(int reg) const {
    return reg >= 0 && readers[static_cast<unsigned>(reg)] > 0;
  }

  /// Called by a unit when an op fully completes: releases hazard state.
  void retire(const OpRef& op) {
    op->done = true;
    op->vd_dep.reset();  // break chains of retired producers
    auto release_reader = [&](int reg) {
      if (reg >= 0) {
        --readers[static_cast<unsigned>(reg)];
      }
    };
    release_reader(op->op.vs1);
    release_reader(op->op.vs2);
    release_reader(op->op.vidx);
    if (op->op.vd >= 0 &&
        producer_of[static_cast<unsigned>(op->op.vd)] == op) {
      producer_of[static_cast<unsigned>(op->op.vd)].reset();
    }
    if (is_load_op(op->op.kind)) {
      --loads_in_flight;
    } else if (is_store_op(op->op.kind)) {
      --stores_in_flight;
    }
  }
};

}  // namespace axipack::vproc
