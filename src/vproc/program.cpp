#include "vproc/program.hpp"

namespace axipack::vproc {

bool is_mem_op(OpKind k) {
  switch (k) {
    case OpKind::vle:
    case OpKind::vse:
    case OpKind::vlse:
    case OpKind::vsse:
    case OpKind::vluxei:
    case OpKind::vsuxei:
    case OpKind::vlimxei:
    case OpKind::vsimxei:
      return true;
    default:
      return false;
  }
}

bool is_load_op(OpKind k) {
  switch (k) {
    case OpKind::vle:
    case OpKind::vlse:
    case OpKind::vluxei:
    case OpKind::vlimxei:
      return true;
    default:
      return false;
  }
}

bool is_store_op(OpKind k) {
  switch (k) {
    case OpKind::vse:
    case OpKind::vsse:
    case OpKind::vsuxei:
    case OpKind::vsimxei:
      return true;
    default:
      return false;
  }
}

bool is_reduction(OpKind k) {
  return k == OpKind::vredsum || k == OpKind::vredmin;
}

VecOp op_scalar(std::uint32_t cycles) {
  VecOp op;
  op.kind = OpKind::scalar;
  op.cycles = cycles;
  return op;
}

VecOp op_fence() {
  VecOp op;
  op.kind = OpKind::fence;
  return op;
}

VecOp op_vle(int vd, std::uint64_t addr, std::uint32_t vl,
             axi::Traffic traffic) {
  VecOp op;
  op.kind = OpKind::vle;
  op.vd = static_cast<std::int8_t>(vd);
  op.addr = addr;
  op.vl = vl;
  op.traffic = traffic;
  return op;
}

VecOp op_vse(int vs2, std::uint64_t addr, std::uint32_t vl) {
  VecOp op;
  op.kind = OpKind::vse;
  op.vs2 = static_cast<std::int8_t>(vs2);
  op.addr = addr;
  op.vl = vl;
  return op;
}

VecOp op_vlse(int vd, std::uint64_t addr, std::int64_t stride,
              std::uint32_t vl) {
  VecOp op;
  op.kind = OpKind::vlse;
  op.vd = static_cast<std::int8_t>(vd);
  op.addr = addr;
  op.stride = stride;
  op.vl = vl;
  return op;
}

VecOp op_vsse(int vs2, std::uint64_t addr, std::int64_t stride,
              std::uint32_t vl) {
  VecOp op;
  op.kind = OpKind::vsse;
  op.vs2 = static_cast<std::int8_t>(vs2);
  op.addr = addr;
  op.stride = stride;
  op.vl = vl;
  return op;
}

VecOp op_vluxei(int vd, std::uint64_t addr, int vidx, std::uint32_t vl) {
  VecOp op;
  op.kind = OpKind::vluxei;
  op.vd = static_cast<std::int8_t>(vd);
  op.vidx = static_cast<std::int8_t>(vidx);
  op.addr = addr;
  op.vl = vl;
  return op;
}

VecOp op_vlimxei(int vd, std::uint64_t addr, std::uint64_t idx_addr,
                 std::uint32_t vl) {
  VecOp op;
  op.kind = OpKind::vlimxei;
  op.vd = static_cast<std::int8_t>(vd);
  op.addr = addr;
  op.idx_addr = idx_addr;
  op.vl = vl;
  return op;
}

VecOp op_vfmacc_vf(int vd, int vs2, float scalar, std::uint32_t vl) {
  VecOp op;
  op.kind = OpKind::vfmacc_vf;
  op.vd = static_cast<std::int8_t>(vd);
  op.vs2 = static_cast<std::int8_t>(vs2);
  op.scalar_imm = scalar;
  op.vl = vl;
  return op;
}

VecOp op_vfmacc_vf_mem(int vd, int vs2, std::uint64_t scalar_addr,
                       std::uint32_t vl) {
  VecOp op = op_vfmacc_vf(vd, vs2, 0.0f, vl);
  op.scalar_from_mem = true;
  op.scalar_addr = scalar_addr;
  return op;
}

VecOp op_vfmacc_vv(int vd, int vs1, int vs2, std::uint32_t vl) {
  VecOp op;
  op.kind = OpKind::vfmacc_vv;
  op.vd = static_cast<std::int8_t>(vd);
  op.vs1 = static_cast<std::int8_t>(vs1);
  op.vs2 = static_cast<std::int8_t>(vs2);
  op.vl = vl;
  return op;
}

VecOp op_vfmul_vv(int vd, int vs1, int vs2, std::uint32_t vl) {
  VecOp op = op_vfmacc_vv(vd, vs1, vs2, vl);
  op.kind = OpKind::vfmul_vv;
  return op;
}

VecOp op_vfadd_vf_mem(int vd, int vs2, std::uint64_t scalar_addr,
                      std::uint32_t vl) {
  VecOp op;
  op.kind = OpKind::vfadd_vf;
  op.vd = static_cast<std::int8_t>(vd);
  op.vs2 = static_cast<std::int8_t>(vs2);
  op.scalar_from_mem = true;
  op.scalar_addr = scalar_addr;
  op.vl = vl;
  return op;
}

VecOp op_vbrd(int vd, float value, std::uint32_t vl) {
  VecOp op;
  op.kind = OpKind::vbrd;
  op.vd = static_cast<std::int8_t>(vd);
  op.scalar_imm = value;
  op.vl = vl;
  return op;
}

VecOp op_vslidedown(int vd, int vs2, std::uint32_t slide, std::uint32_t vl) {
  VecOp op;
  op.kind = OpKind::vslidedown;
  op.vd = static_cast<std::int8_t>(vd);
  op.vs2 = static_cast<std::int8_t>(vs2);
  op.slide = slide;
  op.vl = vl;
  return op;
}

VecOp op_vredsum(int vs2, std::uint64_t store_addr, std::uint32_t vl) {
  VecOp op;
  op.kind = OpKind::vredsum;
  op.vs2 = static_cast<std::int8_t>(vs2);
  op.store_addr = store_addr;
  op.vl = vl;
  return op;
}

VecOp op_vredmin(int vs2, std::uint64_t store_addr, std::uint32_t vl) {
  VecOp op;
  op.kind = OpKind::vredmin;
  op.vs2 = static_cast<std::int8_t>(vs2);
  op.store_addr = store_addr;
  op.vl = vl;
  return op;
}

}  // namespace axipack::vproc
