// Vector functional unit: executes arithmetic ops at `lanes` elements per
// cycle, chaining element-wise behind in-flight producers (loads). One op is
// active at a time (queued ops wait), which makes reductions the serial
// bottleneck the paper observes for row-wise dataflows: a reduction occupies
// the VFU for vl/lanes accumulation cycles plus an inter-lane tree phase.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "vproc/context.hpp"

namespace axipack::vproc {

class Vfu {
 public:
  explicit Vfu(ProcContext& ctx) : ctx_(ctx) {}

  bool can_accept() const { return q_.size() < ctx_.cfg.vfu_q; }
  void accept(const OpRef& op);
  bool idle() const { return q_.empty(); }

  void tick();

 private:
  struct Active {
    OpRef op;
    std::uint64_t done = 0;       ///< elements consumed/produced
    bool scalar_resolved = false;
    float scalar = 0.0f;
    std::vector<float> partials;  ///< per-lane reduction accumulators
    unsigned tree_left = 0;       ///< remaining phase-2 cycles
    bool in_tree = false;
  };

  unsigned tree_latency() const;
  void execute_elems(Active& a, std::uint64_t count);
  void finish_reduction(Active& a);

  ProcContext& ctx_;
  std::deque<Active> q_;
};

}  // namespace axipack::vproc
