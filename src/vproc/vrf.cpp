#include "vproc/vrf.hpp"

namespace axipack::vproc {
static_assert(sizeof(Vrf) > 0);
}  // namespace axipack::vproc
