// Vector load-store unit: separate load and store units sharing the
// processor's AXI master port (loads own AR/R, stores own AW/W/B), as in
// Ara. Mode selects how strided/indexed accesses are realized:
//
//  * base  — one narrow single-beat burst per element (the inefficiency the
//            paper quantifies; indexed ops read their indices from a vreg)
//  * pack  — AXI-Pack strided/indirect bursts carrying the whole stream
//  * ideal — per-lane ideal ports, any pattern at `lanes` elements/cycle
//
// Both units move real data between the VRF and memory and advance
// element-granular progress so dependent ops chain.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "axi/types.hpp"
#include "vproc/context.hpp"

namespace axipack::vproc {

class LoadUnit {
 public:
  LoadUnit(ProcContext& ctx, axi::AxiPort* port) : ctx_(ctx), port_(port) {}

  bool can_accept() const { return q_.size() < ctx_.cfg.load_q; }
  void accept(const OpRef& op);
  bool idle() const { return q_.empty(); }

  void tick();

 private:
  struct Active {
    OpRef op;
    std::vector<axi::AxiAr> bursts;  ///< precomputed (empty for on-the-fly)
    std::size_t next_burst = 0;
    std::uint64_t elems_requested = 0;  ///< base strided/indexed progress
    std::uint64_t elems_rx = 0;
    std::uint64_t beats_rx = 0;
    std::uint64_t bursts_done = 0;  ///< issued bursts fully received
    std::uint64_t start_cycle = 0;  ///< ideal mode: when op became active
    bool started = false;
    std::uint64_t accept_cycle = 0;  ///< first-issue latency stamp

    // Fault handling: an errored beat freezes element progress (its payload
    // and everything after it is discarded); once the attempt drains the op
    // is either replayed from scratch or force-failed.
    bool fault = false;
    bool fatal = false;  ///< DECERR seen: permanent, never retried
    unsigned attempts = 0;  ///< failed attempts so far
    std::uint64_t backoff_until = 0;
  };

  void tick_issue();
  void tick_receive();
  void tick_retry();
  void tick_timeout();
  void tick_ideal();
  /// Bursts issued for the current attempt (per-element ops: elements).
  static std::uint64_t issued_bursts(const Active& a) {
    return a.bursts.empty() ? a.elems_requested : a.next_burst;
  }
  /// Element address for base-mode strided/indexed ops.
  std::uint64_t elem_addr(const Active& a, std::uint64_t i) const;
  void write_elem(const Active& a, std::uint64_t i, std::uint32_t value);

  ProcContext& ctx_;
  axi::AxiPort* port_;
  std::deque<Active> q_;
  unsigned outstanding_bursts_ = 0;
  bool conflict_stall_ = false;
  std::uint64_t now_ = 0;  ///< advanced once per tick (ideal-mode timing)
  std::uint64_t stale_bursts_ = 0;  ///< abandoned-attempt bursts to drain
  std::uint64_t last_progress_ = 0;  ///< watchdog: last issue/receive cycle
};

class StoreUnit {
 public:
  StoreUnit(ProcContext& ctx, axi::AxiPort* port) : ctx_(ctx), port_(port) {}

  bool can_accept() const { return q_.size() < ctx_.cfg.store_q; }
  void accept(const OpRef& op);
  bool idle() const { return q_.empty(); }

  void tick();

 private:
  struct Active {
    OpRef op;
    std::vector<axi::AxiAw> bursts;
    std::size_t next_burst = 0;       ///< AW issue progress
    std::size_t w_burst = 0;          ///< burst whose W data is being sent
    std::uint64_t w_beat_in_burst = 0;
    std::uint64_t elems_tx = 0;
    unsigned b_received = 0;
    std::uint64_t start_cycle = 0;
    bool started = false;
    std::uint64_t accept_cycle = 0;  ///< first-issue latency stamp
    bool all_w_sent = false;
    // Fault handling (see LoadUnit::Active): stores are idempotent, so a
    // replay simply re-sends every AW/W of the op.
    bool fault = false;
    bool fatal = false;
    unsigned attempts = 0;
    std::uint64_t backoff_until = 0;
  };

  void tick_issue_aw();
  void tick_issue_w();
  void tick_receive_b();
  void tick_retry();
  void tick_timeout();
  void tick_ideal();
  std::uint64_t elem_addr(const Active& a, std::uint64_t i) const;
  std::uint32_t read_elem(const Active& a, std::uint64_t i) const;
  /// Total W beats the op's current plan owes / has already sent.
  static std::uint64_t w_total(const Active& a);
  static std::uint64_t w_sent(const Active& a);

  ProcContext& ctx_;
  axi::AxiPort* port_;
  std::deque<Active> q_;
  unsigned outstanding_b_ = 0;
  unsigned elem_issue_wait_ = 0;  ///< base-mode per-element store pacing
  std::uint64_t now_ = 0;
  std::uint64_t stale_b_ = 0;  ///< abandoned-attempt B responses to drain
  std::uint64_t last_progress_ = 0;
};

}  // namespace axipack::vproc
