#include "vproc/processor.hpp"

#include <cassert>

namespace axipack::vproc {

Processor::Processor(sim::Kernel& k, const VProcConfig& cfg,
                     mem::BackingStore& store, axi::AxiPort* port)
    : ctx_(cfg),
      load_unit_(ctx_, port),
      store_unit_(ctx_, port),
      vfu_(ctx_) {
  ctx_.store = &store;
  assert(cfg.mode == VlsuMode::ideal || port != nullptr);
  k.add(*this);
  if (port != nullptr) {
    k.subscribe(*this, port->r);
    k.subscribe(*this, port->b);
  }
}

void Processor::run(const VecProgram& program) {
  assert(done() && "previous program still running");
  program_ = &program;
  pc_ = 0;
  scalar_wait_ = 0;
  dispatch_wait_ = 0;
  wake_self();
}

bool Processor::done() const {
  const bool program_drained =
      program_ == nullptr || (pc_ == program_->ops.size() && scalar_wait_ == 0);
  return program_drained && load_unit_.idle() && store_unit_.idle() &&
         vfu_.idle();
}

bool Processor::try_issue(const VecOp& op) {
  // Structural hazard: target unit queue.
  const bool is_load = is_load_op(op.kind);
  const bool is_store = is_store_op(op.kind);
#ifdef AXIPACK_DEBUG_STALLS
  static std::uint64_t stall_count = 0;
  if (++stall_count % 50000 == 0) {
    std::fprintf(stderr,
                 "stall pc op kind=%d vd=%d: load_can=%d store_can=%d "
                 "vfu_can=%d pending_w=%u loads_if=%u readers_vd=%d "
                 "idle(l/s/v)=%d%d%d beats_rx=%llu beats_tx=%llu "
                 "dispatches=%llu w_left=%llu\n",
                 (int)op.kind, op.vd, load_unit_.can_accept(),
                 store_unit_.can_accept(), vfu_.can_accept(),
                 ctx_.stores_pending_w, ctx_.loads_in_flight,
                 op.vd >= 0 ? ctx_.readers[(unsigned)op.vd] : -1,
                 load_unit_.idle(), store_unit_.idle(), vfu_.idle(),
                 (unsigned long long)ctx_.counters.get("vlsu.beats_rx"),
                 (unsigned long long)ctx_.counters.get("vlsu.beats_tx"),
                 (unsigned long long)ctx_.counters.get("proc.dispatches"),
                 (unsigned long long)ctx_.store_w_beats_left);
  }
#endif
  if (is_load && !load_unit_.can_accept()) return false;
  if (is_store && !store_unit_.can_accept()) return false;
  if (!is_load && !is_store && !vfu_.can_accept()) return false;

  const bool is_vfu = !is_load && !is_store;
  // WAW: stall unless both writers are VFU ops (they serialize in the VFU).
  if (op.vd >= 0) {
    const OpRef& producer = ctx_.producer_of[static_cast<unsigned>(op.vd)];
    if (producer && !producer->done) {
      const bool producer_vfu = !is_mem_op(producer->op.kind);
      if (!(is_vfu && producer_vfu)) return false;
    }
    // WAR: never overwrite a register an in-flight op still reads.
    if (ctx_.has_reader(op.vd)) return false;
  }
  // Conservative VLSU memory ordering: stores wait for all outstanding
  // loads; loads wait until prior stores are down to the last few W beats,
  // overlapping the next read's address phase with the store tail (ideal
  // mode has no W channel and keeps the per-op rule).
  if (is_load && ctx_.stores_pending_w > 0) {
    if (ctx_.cfg.mode == VlsuMode::ideal ||
        ctx_.store_w_beats_left > ctx_.cfg.store_load_runahead) {
      return false;
    }
  }
  if (is_store && ctx_.loads_in_flight > 0) return false;

  auto ref = std::make_shared<InflightOp>();
  ref->op = op;
  ref->seq = next_seq_++;
  auto add_reader = [&](int reg) {
    if (reg >= 0) ++ctx_.readers[static_cast<unsigned>(reg)];
  };
  add_reader(op.vs1);
  add_reader(op.vs2);
  add_reader(op.vidx);
  if (op.vd >= 0) {
    // Capture the previous producer before taking over: accumulating ops
    // chain on it (see InflightOp::vd_dep).
    ref->vd_dep = ctx_.producer_of[static_cast<unsigned>(op.vd)];
    ctx_.producer_of[static_cast<unsigned>(op.vd)] = ref;
  }
  if (is_load) {
    ++ctx_.loads_in_flight;
    load_unit_.accept(ref);
  } else if (is_store) {
    ++ctx_.stores_in_flight;
    ++ctx_.stores_pending_w;
    store_unit_.accept(ref);
  } else {
    vfu_.accept(ref);
  }
  ctx_.counters.add("proc.dispatches");
  dispatch_wait_ = ctx_.cfg.dispatch_cycles;
  return true;
}

void Processor::tick() {
  ctx_.ideal_budget = ctx_.cfg.lanes;
  load_unit_.tick();
  store_unit_.tick();
  vfu_.tick();

  // Sequencer: at most one instruction leaves the scalar core per cycle.
  if (scalar_wait_ > 0) {
    --scalar_wait_;
    ctx_.counters.add("proc.scalar_cycles");
    return;
  }
  if (dispatch_wait_ > 0) {
    --dispatch_wait_;
    return;
  }
  if (program_ == nullptr || pc_ >= program_->ops.size()) return;
  const VecOp& op = program_->ops[pc_];
  if (op.kind == OpKind::scalar) {
    scalar_wait_ = op.cycles;
    ++pc_;
    return;
  }
  if (op.kind == OpKind::fence) {
    if (load_unit_.idle() && store_unit_.idle() && vfu_.idle()) ++pc_;
    return;
  }
  if (try_issue(op)) ++pc_;
}

}  // namespace axipack::vproc
