#include "vproc/vlsu.hpp"

#include <cassert>

#include "axi/burst.hpp"
#include "util/bits.hpp"

namespace axipack::vproc {

namespace {
constexpr unsigned kElemBytes = 4;
}

// ---------------------------------------------------------------- LoadUnit

void LoadUnit::accept(const OpRef& op) {
  assert(can_accept());
  Active a;
  a.op = op;
  // First-issue latency stamp: replays after a fault keep this value, so
  // retries never double-count a request's latency.
  a.accept_cycle = now_;
  const VecOp& v = op->op;
  const unsigned bus = ctx_.cfg.bus_bytes;
  if (ctx_.cfg.mode != VlsuMode::ideal) {
    switch (v.kind) {
      case OpKind::vle:
        a.bursts = axi::split_contiguous(v.addr, std::uint64_t{v.vl} * 4, bus,
                                         v.traffic);
        break;
      case OpKind::vlse:
        if (ctx_.cfg.mode == VlsuMode::pack && !ctx_.degraded) {
          a.bursts =
              axi::split_pack_strided(v.addr, v.stride, kElemBytes, v.vl, bus);
        }
        break;  // base mode (or degraded): per-element ARs on the fly
      case OpKind::vlimxei:
        assert(ctx_.cfg.mode == VlsuMode::pack &&
               "vlimxei requires an AXI-Pack system");
        if (!ctx_.degraded) {
          a.bursts = axi::split_pack_indirect(v.addr, v.idx_addr, 32,
                                              kElemBytes, v.vl, bus);
        }
        break;  // degraded: per-element, core resolves the indices itself
      case OpKind::vluxei:
        break;  // per-element in both base and pack modes
      default:
        assert(false && "not a load op");
    }
  }
  q_.push_back(std::move(a));
}

std::uint64_t LoadUnit::elem_addr(const Active& a, std::uint64_t i) const {
  const VecOp& v = a.op->op;
  switch (v.kind) {
    case OpKind::vle:
      return v.addr + 4 * i;
    case OpKind::vlse:
      return v.addr + static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(i) * v.stride);
    case OpKind::vluxei: {
      const std::uint64_t idx = ctx_.vrf.read_u32(v.vidx,
                                                  static_cast<std::uint32_t>(i));
      return v.addr + 4 * idx;
    }
    case OpKind::vlimxei: {
      // Functional address for ideal mode; in pack mode the controller
      // resolves indices, not the VLSU.
      const std::uint64_t idx = ctx_.store->read_u32(v.idx_addr + 4 * i);
      return v.addr + 4 * idx;
    }
    default:
      assert(false);
      return 0;
  }
}

void LoadUnit::write_elem(const Active& a, std::uint64_t i,
                          std::uint32_t value) {
  ctx_.vrf.write_u32(a.op->op.vd, static_cast<std::uint32_t>(i), value);
}

void LoadUnit::tick_issue() {
  // Strictly in op order: find the first op with outstanding requests.
  for (Active& a : q_) {
    const VecOp& v = a.op->op;
    // A faulted op blocks further issue (its own and later ops') until the
    // attempt drains and the retry logic resolves it; backoff holds the
    // re-issue. Strict op order is what keeps R-beat attribution trivial.
    if (a.fault || now_ < a.backoff_until) return;
    if (!a.bursts.empty()) {
      if (a.next_burst >= a.bursts.size()) continue;
      if (outstanding_bursts_ >= ctx_.cfg.max_outstanding_bursts) return;
      if (!port_->ar.try_push(a.bursts[a.next_burst])) return;
      ++a.next_burst;
      ++outstanding_bursts_;
      ++*ctx_.hot.vlsu_ar;
      last_progress_ = now_;
      return;
    }
    // Per-element narrow requests (base-mode strided / indexed).
    if (a.elems_requested >= v.vl) continue;
    if (outstanding_bursts_ >= ctx_.cfg.max_outstanding_bursts) return;
    if (!port_->ar.can_push()) return;
    if (v.kind == OpKind::vluxei &&
        ctx_.avail_elems(v.vidx) <= a.elems_requested) {
      return;  // index not yet available — preserve request order
    }
    axi::AxiAr ar;
    ar.addr = elem_addr(a, a.elems_requested);
    ar.len = 0;
    ar.size = 2;  // one 32-bit element
    ar.burst = axi::BurstType::incr;
    ar.traffic = v.traffic;
    port_->ar.push(ar);
    ++a.elems_requested;
    ++outstanding_bursts_;
    ++*ctx_.hot.vlsu_ar;
    last_progress_ = now_;
    return;
  }
}

void LoadUnit::tick_receive() {
  if (!port_->r.can_pop()) return;
  // Beats of a timed-out, already-abandoned attempt: drain and discard.
  if (stale_bursts_ > 0) {
    const axi::AxiR beat = port_->r.pop();
    last_progress_ = now_;
    if (beat.last) {
      --stale_bursts_;
      assert(outstanding_bursts_ > 0);
      --outstanding_bursts_;
    }
    return;
  }
  // The beat belongs to the first op with bursts in flight (single-ID AXI
  // returns R bursts in AR order, and we issue ARs in op order).
  for (Active& a : q_) {
    const VecOp& v = a.op->op;
    if (a.bursts_done >= issued_bursts(a)) continue;
    const bool errbeat = port_->r.front().resp != axi::kRespOkay;
    if (!a.fault && !errbeat) {
      // VRF port conflict: when a chained consumer is live, every N-th
      // writeback loses a cycle (see VProcConfig::vrf_conflict_every).
      const unsigned every = ctx_.cfg.vrf_conflict_every;
      if (every != 0 && ctx_.has_reader(v.vd) && !conflict_stall_ &&
          (a.beats_rx + 1) % every == 0) {
        conflict_stall_ = true;
        return;
      }
      conflict_stall_ = false;
    }
    const axi::AxiR beat = port_->r.pop();
    last_progress_ = now_;
    if (errbeat) {
      a.fault = true;
      if (beat.resp == axi::kRespDecErr) a.fatal = true;
    }
    if (a.fault) {
      // Discard the payload: an errored beat (and every beat after it —
      // element positions depend on elems_rx, which stays frozen until the
      // replay) must never reach the VRF. Chained consumers stall on the
      // frozen prod_elems instead of computing on corrupt data.
      ++a.beats_rx;
      ++*ctx_.hot.vlsu_beats_rx;
      if (beat.last) {
        ++a.bursts_done;
        assert(outstanding_bursts_ > 0);
        --outstanding_bursts_;
      }
      return;
    }
    std::uint64_t cnt = 0;
    unsigned lane = 0;
    switch (v.kind) {
      case OpKind::vle: {
        const std::uint64_t cur = v.addr + 4 * a.elems_rx;
        lane = static_cast<unsigned>(cur & (ctx_.cfg.bus_bytes - 1));
        cnt = std::min<std::uint64_t>((ctx_.cfg.bus_bytes - lane) / 4,
                                      v.vl - a.elems_rx);
        break;
      }
      case OpKind::vlse:
      case OpKind::vlimxei:
        if (!a.bursts.empty()) {
          lane = 0;
          cnt = beat.useful_bytes / 4;  // packed payload
        } else {
          lane = static_cast<unsigned>(elem_addr(a, a.elems_rx) &
                                       (ctx_.cfg.bus_bytes - 1));
          cnt = 1;
        }
        break;
      case OpKind::vluxei:
        lane = static_cast<unsigned>(elem_addr(a, a.elems_rx) &
                                     (ctx_.cfg.bus_bytes - 1));
        cnt = 1;
        break;
      default:
        assert(false);
    }
    assert(cnt >= 1);
    for (std::uint64_t e = 0; e < cnt; ++e) {
      std::uint32_t value;
      axi::extract_bytes(beat.data, lane + static_cast<unsigned>(4 * e),
                         reinterpret_cast<std::uint8_t*>(&value), 4);
      write_elem(a, a.elems_rx + e, value);
    }
    a.elems_rx += cnt;
    ++a.beats_rx;
    a.op->prod_elems = a.elems_rx;
    ++*ctx_.hot.vlsu_beats_rx;
    *ctx_.hot.vlsu_bytes_rx += cnt * 4;
    if (beat.last) {
      ++a.bursts_done;
      assert(outstanding_bursts_ > 0);
      --outstanding_bursts_;
    }
    return;
  }
  assert(false && "R beat with no expecting load op");
}

void LoadUnit::tick_retry() {
  // Resolve faulted ops only once the whole unit has drained: beats still
  // in flight (of this op or any other) would otherwise be misattributed
  // after the replayed ARs break strict op order.
  if (outstanding_bursts_ != 0 || stale_bursts_ != 0) return;
  const sim::RetryConfig& rc = ctx_.cfg.retry;
  for (Active& a : q_) {
    if (!a.fault) continue;
    const VecOp& v = a.op->op;
    const bool pack_op = !a.bursts.empty() && a.bursts[0].pack.has_value();
    ++a.attempts;
    if (pack_op) ctx_.note_pack_fault();
    if (a.fatal || !rc.enabled() || a.attempts >= rc.max_attempts) {
      // Permanent error or budget exhausted: force-complete the op so the
      // program can terminate; the run is reported as failed.
      ++ctx_.retry_stats.failed_ops;
      a.fault = false;
      a.elems_rx = v.vl;
      a.elems_requested = v.vl;
      a.next_burst = a.bursts.size();
      a.bursts_done = issued_bursts(a);
      a.op->prod_elems = v.vl;
      continue;
    }
    ++ctx_.retry_stats.retries;
    a.fault = false;
    a.next_burst = 0;
    a.elems_requested = 0;
    a.elems_rx = 0;
    a.beats_rx = 0;
    a.bursts_done = 0;
    a.op->prod_elems = 0;
    if (ctx_.degraded && pack_op &&
        (v.kind == OpKind::vlse || v.kind == OpKind::vlimxei)) {
      a.bursts.clear();  // breaker tripped: replay on the base path
    }
    const unsigned shift = a.attempts > 16 ? 16u : a.attempts - 1;
    a.backoff_until = now_ + (rc.backoff << shift);
  }
}

void LoadUnit::tick_timeout() {
  const sim::RetryConfig& rc = ctx_.cfg.retry;
  if (!rc.enabled() || rc.timeout_cycles == 0) return;
  if (outstanding_bursts_ == 0) return;
  if (now_ <= last_progress_ + rc.timeout_cycles) return;
  // No beat and no issue for a full timeout window with bursts in flight:
  // abandon every in-flight attempt (their beats drain as stale) and let
  // the retry logic replay the ops.
  ++ctx_.retry_stats.timeouts;
  for (Active& a : q_) {
    const std::uint64_t issued = issued_bursts(a);
    if (a.bursts_done < issued) {
      stale_bursts_ += issued - a.bursts_done;
      a.bursts_done = issued;
      a.fault = true;
    }
  }
  last_progress_ = now_;
}

void LoadUnit::tick_ideal() {
  if (q_.empty()) return;
  Active& a = q_.front();
  const VecOp& v = a.op->op;
  if (!a.started) {
    a.started = true;
    a.start_cycle = now_;
  }
  if (now_ < a.start_cycle + ctx_.cfg.ideal_latency) return;
  std::uint64_t limit = v.vl;
  if (v.kind == OpKind::vluxei) {
    limit = std::min<std::uint64_t>(limit, ctx_.avail_elems(v.vidx));
  }
  std::uint64_t n = std::min<std::uint64_t>(
      {static_cast<std::uint64_t>(ctx_.ideal_budget), limit - a.elems_rx});
  for (std::uint64_t e = 0; e < n; ++e) {
    const std::uint32_t value = ctx_.store->read_u32(elem_addr(a, a.elems_rx));
    write_elem(a, a.elems_rx, value);
    ++a.elems_rx;
  }
  ctx_.ideal_budget -= static_cast<unsigned>(n);
  ctx_.ideal_busy_words += n;
  a.op->prod_elems = a.elems_rx;
  if (v.traffic == axi::Traffic::index) {
    *ctx_.hot.ideal_index_bytes += n * 4;
  } else {
    *ctx_.hot.ideal_read_bytes += n * 4;
  }
}

void LoadUnit::tick() {
  if (ctx_.cfg.mode == VlsuMode::ideal) {
    tick_ideal();
  } else {
    tick_issue();
    tick_receive();
    tick_retry();
    tick_timeout();
  }
  // Retire the front op once fully received.
  while (!q_.empty() && q_.front().elems_rx >= q_.front().op->op.vl) {
    ctx_.mem_latency.record(now_ - q_.front().accept_cycle);
    ctx_.retire(q_.front().op);
    q_.pop_front();
  }
  ++now_;
}

// --------------------------------------------------------------- StoreUnit

void StoreUnit::accept(const OpRef& op) {
  assert(can_accept());
  Active a;
  a.op = op;
  a.accept_cycle = now_;
  const VecOp& v = op->op;
  const unsigned bus = ctx_.cfg.bus_bytes;
  if (ctx_.cfg.mode != VlsuMode::ideal) {
    switch (v.kind) {
      case OpKind::vse:
        a.bursts = axi::split_contiguous(v.addr, std::uint64_t{v.vl} * 4, bus);
        break;
      case OpKind::vsse:
        if (ctx_.cfg.mode == VlsuMode::pack && !ctx_.degraded) {
          a.bursts =
              axi::split_pack_strided(v.addr, v.stride, kElemBytes, v.vl, bus);
        }
        break;
      case OpKind::vsimxei:
        assert(ctx_.cfg.mode == VlsuMode::pack);
        if (!ctx_.degraded) {
          a.bursts = axi::split_pack_indirect(v.addr, v.idx_addr, 32,
                                              kElemBytes, v.vl, bus);
        }
        break;  // degraded: per-element scatter, core resolves the indices
      case OpKind::vsuxei:
        break;
      default:
        assert(false && "not a store op");
    }
    // Publish this op's W-beat obligation for load-after-store ordering.
    if (!a.bursts.empty()) {
      for (const axi::AxiAw& aw : a.bursts) {
        ctx_.store_w_beats_left += aw.beats();
      }
    } else {
      ctx_.store_w_beats_left += v.vl;  // one narrow W beat per element
    }
  }
  q_.push_back(std::move(a));
}

std::uint64_t StoreUnit::elem_addr(const Active& a, std::uint64_t i) const {
  const VecOp& v = a.op->op;
  switch (v.kind) {
    case OpKind::vse:
      return v.addr + 4 * i;
    case OpKind::vsse:
      return v.addr + static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(i) * v.stride);
    case OpKind::vsuxei: {
      const std::uint64_t idx = ctx_.vrf.read_u32(v.vidx,
                                                  static_cast<std::uint32_t>(i));
      return v.addr + 4 * idx;
    }
    case OpKind::vsimxei: {
      const std::uint64_t idx = ctx_.store->read_u32(v.idx_addr + 4 * i);
      return v.addr + 4 * idx;
    }
    default:
      assert(false);
      return 0;
  }
}

std::uint32_t StoreUnit::read_elem(const Active& a, std::uint64_t i) const {
  return ctx_.vrf.read_u32(a.op->op.vs2, static_cast<std::uint32_t>(i));
}

std::uint64_t StoreUnit::w_total(const Active& a) {
  if (a.bursts.empty()) return a.op->op.vl;
  std::uint64_t beats = 0;
  for (const axi::AxiAw& aw : a.bursts) beats += aw.beats();
  return beats;
}

std::uint64_t StoreUnit::w_sent(const Active& a) {
  if (a.bursts.empty()) return a.elems_tx;
  std::uint64_t beats = a.w_beat_in_burst;
  for (std::size_t i = 0; i < a.w_burst; ++i) beats += a.bursts[i].beats();
  return beats;
}

void StoreUnit::tick_issue_aw() {
  for (Active& a : q_) {
    const VecOp& v = a.op->op;
    // A faulted op blocks further AW issue until its attempt drains (W data
    // for already-issued AWs keeps flowing — the slave is owed those beats).
    if (a.fault || now_ < a.backoff_until) return;
    if (!a.bursts.empty()) {
      if (a.next_burst >= a.bursts.size()) continue;
      if (outstanding_b_ >= ctx_.cfg.store_max_outstanding_b) return;
      if (!port_->aw.try_push(a.bursts[a.next_burst])) return;
      ++a.next_burst;
      ++outstanding_b_;
      ++*ctx_.hot.vlsu_aw;
      last_progress_ = now_;
      return;
    }
    // Per-element narrow writes (base-mode strided / indexed stores), paced
    // at base_store_elem_interval cycles per element.
    if (a.next_burst >= v.vl) continue;
    if (elem_issue_wait_ > 0) {
      --elem_issue_wait_;
      return;
    }
    if (outstanding_b_ >= ctx_.cfg.store_max_outstanding_b) return;
    if (!port_->aw.can_push()) return;
    if (v.kind == OpKind::vsuxei &&
        ctx_.avail_elems(v.vidx) <= a.next_burst) {
      return;
    }
    elem_issue_wait_ = ctx_.cfg.base_store_elem_interval > 0
                           ? ctx_.cfg.base_store_elem_interval - 1
                           : 0;
    axi::AxiAw aw;
    aw.addr = elem_addr(a, a.next_burst);
    aw.len = 0;
    aw.size = 2;
    aw.burst = axi::BurstType::incr;
    port_->aw.push(aw);
    ++a.next_burst;
    ++outstanding_b_;
    ++*ctx_.hot.vlsu_aw;
    last_progress_ = now_;
    return;
  }
}

void StoreUnit::tick_issue_w() {
  // W data follows AW order; find the first op with unsent W beats.
  for (Active& a : q_) {
    const VecOp& v = a.op->op;
    if (a.all_w_sent) continue;
    if (!port_->w.can_push()) return;
    axi::AxiW beat;
    if (!a.bursts.empty()) {
      if (a.w_burst >= a.next_burst) return;  // AW not yet issued
      const axi::AxiAw& aw = a.bursts[a.w_burst];
      std::uint64_t cnt;
      unsigned lane;
      if (aw.pack.has_value()) {
        lane = 0;
        const std::uint64_t epb = ctx_.cfg.bus_bytes / 4;
        const std::uint64_t elems_before =
            a.w_beat_in_burst * epb;  // within this burst
        cnt = std::min<std::uint64_t>(epb,
                                      aw.pack->num_elems - elems_before);
      } else {
        const std::uint64_t cur = v.addr + 4 * a.elems_tx;
        lane = static_cast<unsigned>(cur & (ctx_.cfg.bus_bytes - 1));
        cnt = std::min<std::uint64_t>((ctx_.cfg.bus_bytes - lane) / 4,
                                      v.vl - a.elems_tx);
      }
      if (ctx_.avail_elems(v.vs2) < a.elems_tx + cnt) return;  // chain wait
      for (std::uint64_t e = 0; e < cnt; ++e) {
        const std::uint32_t value = read_elem(a, a.elems_tx + e);
        axi::place_bytes(beat.data, lane + static_cast<unsigned>(4 * e),
                         reinterpret_cast<const std::uint8_t*>(&value), 4);
      }
      beat.strb = axi::strb_mask(lane, static_cast<unsigned>(4 * cnt));
      beat.useful_bytes = static_cast<std::uint16_t>(4 * cnt);
      a.elems_tx += cnt;
      ++a.w_beat_in_burst;
      beat.last = a.w_beat_in_burst == aw.beats();
      if (beat.last) {
        ++a.w_burst;
        a.w_beat_in_burst = 0;
        if (a.w_burst == a.bursts.size()) {
          a.all_w_sent = true;
          --ctx_.stores_pending_w;
        }
      }
    } else {
      // Per-element store: one narrow W beat per AW.
      if (a.elems_tx >= a.next_burst) return;  // wait for matching AW
      if (ctx_.avail_elems(v.vs2) <= a.elems_tx) return;
      const std::uint64_t cur = elem_addr(a, a.elems_tx);
      const unsigned lane = static_cast<unsigned>(cur & (ctx_.cfg.bus_bytes - 1));
      const std::uint32_t value = read_elem(a, a.elems_tx);
      axi::place_bytes(beat.data, lane,
                       reinterpret_cast<const std::uint8_t*>(&value), 4);
      beat.strb = axi::strb_mask(lane, 4);
      beat.useful_bytes = 4;
      beat.last = true;
      ++a.elems_tx;
      if (a.elems_tx == v.vl) {
        a.all_w_sent = true;
        --ctx_.stores_pending_w;
      }
    }
    a.op->prod_elems = a.elems_tx;  // stores "produce" consumed elements
    port_->w.push(beat);
    assert(ctx_.store_w_beats_left > 0);
    --ctx_.store_w_beats_left;
    ++*ctx_.hot.vlsu_beats_tx;
    *ctx_.hot.vlsu_bytes_tx += beat.useful_bytes;
    return;
  }
}

void StoreUnit::tick_receive_b() {
  if (!port_->b.can_pop()) return;
  const axi::AxiB b = port_->b.pop();
  assert(outstanding_b_ > 0);
  --outstanding_b_;
  last_progress_ = now_;
  if (stale_b_ > 0) {
    --stale_b_;  // response of a timed-out, already-abandoned attempt
    return;
  }
  for (Active& a : q_) {
    const std::uint64_t expect =
        a.bursts.empty() ? a.op->op.vl : a.bursts.size();
    if (a.b_received < expect) {
      ++a.b_received;
      if (b.resp != axi::kRespOkay) {
        a.fault = true;
        if (b.resp == axi::kRespDecErr) a.fatal = true;
      }
      return;
    }
  }
  assert(false && "B with no expecting store op");
}

void StoreUnit::tick_retry() {
  // Resolve faulted stores only once every B (including stale ones) has
  // drained, so replayed AWs cannot interleave with in-flight responses.
  if (outstanding_b_ != 0 || stale_b_ != 0) return;
  const sim::RetryConfig& rc = ctx_.cfg.retry;
  for (Active& a : q_) {
    if (!a.fault) continue;
    const VecOp& v = a.op->op;
    const bool pack_op = !a.bursts.empty() && a.bursts[0].pack.has_value();
    // With no Bs outstanding, every issued AW's W data has been sent and
    // acknowledged — the attempt is fully drained.
    ++a.attempts;
    if (pack_op) ctx_.note_pack_fault();
    if (a.fatal || !rc.enabled() || a.attempts >= rc.max_attempts) {
      ++ctx_.retry_stats.failed_ops;
      a.fault = false;
      // Cancel the unsent W obligation and force-complete.
      const std::uint64_t owed = w_total(a) - w_sent(a);
      assert(ctx_.store_w_beats_left >= owed);
      ctx_.store_w_beats_left -= owed;
      if (!a.all_w_sent) {
        a.all_w_sent = true;
        --ctx_.stores_pending_w;
      }
      a.next_burst = a.bursts.empty() ? v.vl : a.bursts.size();
      a.b_received = static_cast<unsigned>(
          a.bursts.empty() ? v.vl : a.bursts.size());
      a.elems_tx = v.vl;
      a.op->prod_elems = v.vl;
      continue;
    }
    ++ctx_.retry_stats.retries;
    a.fault = false;
    // Stores are idempotent: re-add the full W obligation and replay every
    // AW/W of the op (a degraded replan switches to the per-element path).
    const std::uint64_t owed_old = w_total(a) - w_sent(a);
    assert(ctx_.store_w_beats_left >= owed_old);
    ctx_.store_w_beats_left -= owed_old;
    if (a.all_w_sent) {
      a.all_w_sent = false;
      ++ctx_.stores_pending_w;
    }
    if (ctx_.degraded && pack_op &&
        (v.kind == OpKind::vsse || v.kind == OpKind::vsimxei)) {
      a.bursts.clear();
    }
    a.next_burst = 0;
    a.w_burst = 0;
    a.w_beat_in_burst = 0;
    a.elems_tx = 0;
    a.b_received = 0;
    a.op->prod_elems = 0;
    ctx_.store_w_beats_left += w_total(a);
    const unsigned shift = a.attempts > 16 ? 16u : a.attempts - 1;
    a.backoff_until = now_ + (rc.backoff << shift);
  }
}

void StoreUnit::tick_timeout() {
  const sim::RetryConfig& rc = ctx_.cfg.retry;
  if (!rc.enabled() || rc.timeout_cycles == 0) return;
  if (outstanding_b_ == 0) return;
  if (now_ <= last_progress_ + rc.timeout_cycles) return;
  ++ctx_.retry_stats.timeouts;
  for (Active& a : q_) {
    const std::uint64_t issued = a.next_burst;
    const std::uint64_t w_done =
        a.bursts.empty() ? a.elems_tx : a.w_burst;
    if (a.b_received < issued && w_done >= issued) {
      // Waiting only on B responses: abandon them (drained as stale) and
      // retry. An attempt still owing W data cannot be aborted safely —
      // the slave is owed those beats — so it just keeps the fault flag off
      // and waits for W-channel progress.
      stale_b_ += issued - a.b_received;
      a.b_received = static_cast<unsigned>(issued);
      a.fault = true;
    }
  }
  last_progress_ = now_;
}

void StoreUnit::tick_ideal() {
  if (q_.empty()) return;
  Active& a = q_.front();
  const VecOp& v = a.op->op;
  if (!a.started) {
    a.started = true;
    a.start_cycle = now_;
  }
  if (now_ < a.start_cycle + ctx_.cfg.ideal_latency) return;
  std::uint64_t limit = std::min<std::uint64_t>(v.vl,
                                                ctx_.avail_elems(v.vs2));
  if (v.kind == OpKind::vsuxei) {
    limit = std::min<std::uint64_t>(limit, ctx_.avail_elems(v.vidx));
  }
  const std::uint64_t n = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(ctx_.ideal_budget),
      limit > a.elems_tx ? limit - a.elems_tx : 0);
  for (std::uint64_t e = 0; e < n; ++e) {
    ctx_.store->write_u32(elem_addr(a, a.elems_tx), read_elem(a, a.elems_tx));
    ++a.elems_tx;
  }
  ctx_.ideal_budget -= static_cast<unsigned>(n);
  ctx_.ideal_busy_words += n;
  *ctx_.hot.ideal_write_bytes += n * 4;
  if (a.elems_tx == v.vl && a.b_received == 0) {
    a.b_received = 1;  // mark complete
    --ctx_.stores_pending_w;
  }
}

void StoreUnit::tick() {
  if (ctx_.cfg.mode == VlsuMode::ideal) {
    tick_ideal();
    while (!q_.empty() && q_.front().elems_tx >= q_.front().op->op.vl &&
           q_.front().b_received > 0) {
      ctx_.mem_latency.record(now_ - q_.front().accept_cycle);
      ctx_.retire(q_.front().op);
      q_.pop_front();
    }
  } else {
    tick_receive_b();
    tick_issue_aw();
    tick_issue_w();
    tick_retry();
    tick_timeout();
    while (!q_.empty()) {
      Active& a = q_.front();
      const std::uint64_t expect =
          a.bursts.empty() ? a.op->op.vl : a.bursts.size();
      // A faulted op may have its full B count (the error response is a B
      // too) — it must stay queued until tick_retry resolves it.
      if (a.fault || !a.all_w_sent || a.b_received < expect) break;
      ctx_.mem_latency.record(now_ - a.accept_cycle);
      ctx_.retire(a.op);
      q_.pop_front();
    }
  }
  ++now_;
}

}  // namespace axipack::vproc
