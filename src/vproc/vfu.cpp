#include "vproc/vfu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/bits.hpp"

namespace axipack::vproc {

void Vfu::accept(const OpRef& op) {
  assert(can_accept());
  Active a;
  a.op = op;
  q_.push_back(std::move(a));
}

unsigned Vfu::tree_latency() const {
  return ctx_.cfg.redtree_base +
         ctx_.cfg.redtree_per_level * util::log2_ceil(ctx_.cfg.lanes);
}

void Vfu::execute_elems(Active& a, std::uint64_t count) {
  const VecOp& v = a.op->op;
  Vrf& vrf = ctx_.vrf;
  for (std::uint64_t n = 0; n < count; ++n) {
    const auto i = static_cast<std::uint32_t>(a.done + n);
    switch (v.kind) {
      case OpKind::vfmacc_vf:
        vrf.write_f32(v.vd, i,
                      vrf.read_f32(v.vd, i) + vrf.read_f32(v.vs2, i) * a.scalar);
        break;
      case OpKind::vfmul_vf:
        vrf.write_f32(v.vd, i, vrf.read_f32(v.vs2, i) * a.scalar);
        break;
      case OpKind::vfadd_vf:
        vrf.write_f32(v.vd, i, vrf.read_f32(v.vs2, i) + a.scalar);
        break;
      case OpKind::vfmin_vf:
        vrf.write_f32(v.vd, i, std::min(vrf.read_f32(v.vs2, i), a.scalar));
        break;
      case OpKind::vfmacc_vv:
        vrf.write_f32(v.vd, i,
                      vrf.read_f32(v.vd, i) +
                          vrf.read_f32(v.vs1, i) * vrf.read_f32(v.vs2, i));
        break;
      case OpKind::vfmul_vv:
        vrf.write_f32(v.vd, i,
                      vrf.read_f32(v.vs1, i) * vrf.read_f32(v.vs2, i));
        break;
      case OpKind::vfadd_vv:
        vrf.write_f32(v.vd, i,
                      vrf.read_f32(v.vs1, i) + vrf.read_f32(v.vs2, i));
        break;
      case OpKind::vfmin_vv:
        vrf.write_f32(v.vd, i, std::min(vrf.read_f32(v.vs1, i),
                                        vrf.read_f32(v.vs2, i)));
        break;
      case OpKind::vbrd:
        vrf.write_f32(v.vd, i, a.scalar);
        break;
      case OpKind::vslidedown:
        vrf.write_u32(v.vd, i, vrf.read_u32(v.vs2, i + v.slide));
        break;
      case OpKind::vredsum:
        a.partials[i % ctx_.cfg.lanes] += vrf.read_f32(v.vs2, i);
        break;
      case OpKind::vredmin:
        a.partials[i % ctx_.cfg.lanes] =
            std::min(a.partials[i % ctx_.cfg.lanes], vrf.read_f32(v.vs2, i));
        break;
      default:
        assert(false && "not a VFU op");
    }
  }
  a.done += count;
  if (a.op->op.vd >= 0) a.op->prod_elems = a.done;
  *ctx_.hot.vfu_elems += count;
}

void Vfu::finish_reduction(Active& a) {
  const VecOp& v = a.op->op;
  // Combine per-lane partials in lane order (deterministic tree order).
  float result;
  if (v.kind == OpKind::vredsum) {
    result = 0.0f;
    for (float p : a.partials) result += p;
  } else {
    result = a.partials[0];
    for (float p : a.partials) result = std::min(result, p);
  }
  // Scalar-core post-processing and store (functional; see program.hpp).
  // Chunk accumulation happens on the raw sum, before scaling, so chunked
  // rows scale their full row sum exactly once.
  if (v.store_addr != 0 && v.post_accumulate) {
    result += ctx_.store->read_f32(v.store_addr);
  }
  result = v.post_scale * result + v.post_add;
  if (v.store_addr != 0) {
    if (v.post_min_with_dest) {
      result = std::min(result, ctx_.store->read_f32(v.store_addr));
    }
    ctx_.store->write_f32(v.store_addr, result);
  }
}

void Vfu::tick() {
  if (q_.empty()) return;
  Active& a = q_.front();
  const VecOp& v = a.op->op;
  if (!a.scalar_resolved) {
    a.scalar = v.scalar_from_mem ? ctx_.store->read_f32(v.scalar_addr)
                                 : v.scalar_imm;
    a.scalar_resolved = true;
    if (is_reduction(v.kind)) {
      a.partials.assign(ctx_.cfg.lanes, v.kind == OpKind::vredmin
                                            ? std::numeric_limits<float>::max()
                                            : 0.0f);
    }
  }
  if (a.in_tree) {
    if (--a.tree_left == 0) {
      finish_reduction(a);
      ctx_.retire(a.op);
      q_.pop_front();
    }
    return;
  }
  // Element phase: consume up to `lanes` elements, bounded by chaining.
  std::uint64_t avail = v.vl;
  if (v.vs1 >= 0) avail = std::min(avail, ctx_.avail_elems(v.vs1));
  if (v.vs2 >= 0) {
    std::uint64_t a2 = ctx_.avail_elems(v.vs2);
    if (v.kind == OpKind::vslidedown) {
      a2 = a2 > v.slide ? a2 - v.slide : 0;  // element i reads vs2[i+slide]
    }
    avail = std::min(avail, a2);
  }
  // Accumulating ops also read vd; chain on the producer captured at issue
  // time. (Looking up producer_of here would find *later* writers of vd,
  // which sit behind us in the queue — a deadlock, not a dependency.)
  if ((v.kind == OpKind::vfmacc_vf || v.kind == OpKind::vfmacc_vv) &&
      v.vd >= 0) {
    const OpRef& p = a.op->vd_dep;
    if (p && !p->done) {
      avail = std::min<std::uint64_t>(avail, p->prod_elems);
    }
  }
  if (avail > a.done) {
    execute_elems(a, std::min<std::uint64_t>(ctx_.cfg.lanes, avail - a.done));
  }
  if (a.done == v.vl) {
    if (is_reduction(v.kind)) {
      a.in_tree = true;
      a.tree_left = tree_latency();
    } else {
      ctx_.retire(a.op);
      q_.pop_front();
    }
  }
}

}  // namespace axipack::vproc
