// Vector program representation.
//
// Workload kernels are expressed as sequences of vector macro-ops modeled on
// the RISC-V vector extension plus the paper's two new in-memory-indexed
// instructions (vlimxei / vsimxei). The processor executes them with an
// Ara-like timing model *and* full functional semantics: loads/stores move
// real bytes between the vector register file and the simulated memory, and
// arithmetic computes real FP32 values, so every run is checked against a
// golden scalar reference.
//
// Scalar-core activity (loop bookkeeping, address generation, scalar loads
// of e.g. x[j]) is modeled by `scalar` ops that consume issue cycles, with
// the actual scalar value read functionally from memory at issue time. This
// matches the paper's setup where CVA6's overhead shapes short-stream
// performance but its memory traffic is negligible next to Ara's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axi/types.hpp"

namespace axipack::vproc {

enum class OpKind : std::uint8_t {
  // Memory ops.
  vle,      ///< unit-stride load         vd <- mem[addr + 4i]
  vse,      ///< unit-stride store        mem[addr + 4i] <- vs2
  vlse,     ///< strided load             vd <- mem[addr + stride*i]
  vsse,     ///< strided store            mem[addr + stride*i] <- vs2
  vluxei,   ///< indexed load, core-side  vd <- mem[addr + 4*vidx[i]]
  vsuxei,   ///< indexed store, core-side mem[addr + 4*vidx[i]] <- vs2
  vlimxei,  ///< indexed load, in-memory indices (AXI-Pack; paper §II-B)
  vsimxei,  ///< indexed store, in-memory indices
  // Arithmetic (FP32).
  vfmacc_vf,  ///< vd[i] += vs2[i] * scalar
  vfmul_vf,   ///< vd[i]  = vs2[i] * scalar
  vfadd_vf,   ///< vd[i]  = vs2[i] + scalar
  vfmin_vf,   ///< vd[i]  = min(vs2[i], scalar)
  vfmacc_vv,  ///< vd[i] += vs1[i] * vs2[i]
  vfmul_vv,   ///< vd[i]  = vs1[i] * vs2[i]
  vfadd_vv,   ///< vd[i]  = vs1[i] + vs2[i]
  vfmin_vv,   ///< vd[i]  = min(vs1[i], vs2[i])
  vbrd,       ///< vd[i]  = scalar (vfmv.v.f)
  vslidedown, ///< vd[i]  = vs2[i + slide] (executed on the VFU; Ara's SLDU
              ///< is modeled as VFU occupancy — see DESIGN.md)
  // Reductions. The result is handed to the scalar core, which applies the
  // optional post-op and stores it (functional; see file header).
  vredsum,  ///< r = sum(vs2[0..vl))
  vredmin,  ///< r = min(vs2[0..vl))
  // Scalar-core bookkeeping: occupies the issue stage for `cycles`.
  scalar,
  // Full barrier: issue stalls until all units drain (sweep boundaries in
  // iterative kernels, where reduction results feed the next sweep).
  fence,
};

/// Is this op executed by the vector load/store unit?
bool is_mem_op(OpKind k);
bool is_load_op(OpKind k);
bool is_store_op(OpKind k);
bool is_reduction(OpKind k);

struct VecOp {
  OpKind kind = OpKind::scalar;
  std::int8_t vd = -1;    ///< destination vreg
  std::int8_t vs1 = -1;   ///< source 1
  std::int8_t vs2 = -1;   ///< source 2 (also store data source)
  std::int8_t vidx = -1;  ///< index vreg for vluxei/vsuxei
  std::uint32_t vl = 0;   ///< vector length in elements

  std::uint64_t addr = 0;      ///< memory base for loads/stores
  std::int64_t stride = 0;     ///< byte stride (vlse/vsse)
  std::uint64_t idx_addr = 0;  ///< index array base (vlimxei/vsimxei)

  float scalar_imm = 0.0f;         ///< immediate scalar operand
  bool scalar_from_mem = false;    ///< read the scalar from scalar_addr
  std::uint64_t scalar_addr = 0;

  // Reduction post-processing by the scalar core:
  //   r' = post_scale * r + post_add;
  //   if post_accumulate:    r' += mem[store_addr]   (chunked row sums)
  //   if post_min_with_dest: r' = min(r', mem[store_addr])
  //   mem[store_addr] = r'.
  std::uint64_t store_addr = 0;  ///< 0 = discard result
  float post_scale = 1.0f;
  float post_add = 0.0f;
  bool post_min_with_dest = false;
  bool post_accumulate = false;

  std::uint32_t slide = 0;  ///< vslidedown offset

  std::uint32_t cycles = 0;  ///< scalar-op duration

  axi::Traffic traffic = axi::Traffic::data;  ///< index loads tag ::index
};

/// A program plus a human-readable name (for traces and test output).
struct VecProgram {
  std::string name;
  std::vector<VecOp> ops;

  void push(const VecOp& op) { ops.push_back(op); }
  std::size_t size() const { return ops.size(); }
};

// ---- small builder helpers used by the workload kernels ----

VecOp op_scalar(std::uint32_t cycles);
VecOp op_fence();
VecOp op_vle(int vd, std::uint64_t addr, std::uint32_t vl,
             axi::Traffic traffic = axi::Traffic::data);
VecOp op_vse(int vs2, std::uint64_t addr, std::uint32_t vl);
VecOp op_vlse(int vd, std::uint64_t addr, std::int64_t stride,
              std::uint32_t vl);
VecOp op_vsse(int vs2, std::uint64_t addr, std::int64_t stride,
              std::uint32_t vl);
VecOp op_vluxei(int vd, std::uint64_t addr, int vidx, std::uint32_t vl);
VecOp op_vlimxei(int vd, std::uint64_t addr, std::uint64_t idx_addr,
                 std::uint32_t vl);
VecOp op_vfmacc_vf(int vd, int vs2, float scalar, std::uint32_t vl);
VecOp op_vfmacc_vf_mem(int vd, int vs2, std::uint64_t scalar_addr,
                       std::uint32_t vl);
VecOp op_vfmacc_vv(int vd, int vs1, int vs2, std::uint32_t vl);
VecOp op_vfmul_vv(int vd, int vs1, int vs2, std::uint32_t vl);
VecOp op_vfadd_vf_mem(int vd, int vs2, std::uint64_t scalar_addr,
                      std::uint32_t vl);
VecOp op_vbrd(int vd, float value, std::uint32_t vl);
VecOp op_vslidedown(int vd, int vs2, std::uint32_t slide, std::uint32_t vl);
VecOp op_vredsum(int vs2, std::uint64_t store_addr, std::uint32_t vl);
VecOp op_vredmin(int vs2, std::uint64_t store_addr, std::uint32_t vl);

}  // namespace axipack::vproc
