// Vector register file: 32 registers of up to `vlmax` 32-bit elements.
//
// Register grouping (LMUL) is modeled as a per-op vector length rather than
// architectural register aliasing: each named register can hold a full
// grouped vector. This keeps kernels simple while preserving the data and
// timing behaviour the paper measures (see DESIGN.md, simplifications).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace axipack::vproc {

class Vrf {
 public:
  explicit Vrf(unsigned vlmax) : vlmax_(vlmax) {
    for (auto& reg : regs_) reg.assign(vlmax, 0);
  }

  unsigned vlmax() const { return vlmax_; }

  std::uint32_t read_u32(int reg, std::uint32_t elem) const {
    assert(valid(reg, elem));
    return regs_[static_cast<unsigned>(reg)][elem];
  }
  void write_u32(int reg, std::uint32_t elem, std::uint32_t value) {
    assert(valid(reg, elem));
    regs_[static_cast<unsigned>(reg)][elem] = value;
  }

  float read_f32(int reg, std::uint32_t elem) const {
    const std::uint32_t raw = read_u32(reg, elem);
    float out;
    std::memcpy(&out, &raw, sizeof out);
    return out;
  }
  void write_f32(int reg, std::uint32_t elem, float value) {
    std::uint32_t raw;
    std::memcpy(&raw, &value, sizeof raw);
    write_u32(reg, elem, raw);
  }

 private:
  bool valid(int reg, std::uint32_t elem) const {
    return reg >= 0 && reg < 32 && elem < vlmax_;
  }

  unsigned vlmax_;
  std::array<std::vector<std::uint32_t>, 32> regs_;
};

}  // namespace axipack::vproc
