// Ara-like vector processor model: in-order sequencer with element-granular
// chaining, a load unit and a store unit (the VLSU), and a single VFU.
//
// Hazard policy (calibrated to reproduce the paper's observed behaviour):
//  * RAW: no issue stall — consumers chain element-wise behind producers.
//  * WAR/WAW: issue stalls until the conflicting op retires, except between
//    two VFU ops, which serialize through the VFU queue anyway. Kernels
//    double-buffer registers to avoid these stalls, as real code does.
//  * Memory ordering: a vector load never issues while a vector store is in
//    flight and vice versa (conservative, like Ara's VLSU) — this is what
//    limits ismt's read-bus utilization to ~50% in the paper.
#pragma once

#include <cstdint>
#include <memory>

#include "axi/types.hpp"
#include "mem/backing_store.hpp"
#include "sim/kernel.hpp"
#include "vproc/context.hpp"
#include "vproc/program.hpp"
#include "vproc/vfu.hpp"
#include "vproc/vlsu.hpp"

namespace axipack::vproc {

class Processor final : public sim::Component {
 public:
  /// `port` is the AXI master port (ignored in ideal mode, may be null).
  Processor(sim::Kernel& k, const VProcConfig& cfg, mem::BackingStore& store,
            axi::AxiPort* port);

  /// Loads a program and resets the sequencer. Any previous program must
  /// have finished.
  void run(const VecProgram& program);

  bool done() const;

  void tick() override;
  /// Idle iff the program has drained: done() implies every unit's tick is
  /// a no-op until run() hands over the next program (which wakes us).
  bool quiescent() const override { return done(); }

  ProcContext& context() { return ctx_; }
  const ProcContext& context() const { return ctx_; }
  const sim::Counters& counters() const { return ctx_.counters; }

 private:
  bool try_issue(const VecOp& op);

  ProcContext ctx_;
  LoadUnit load_unit_;
  StoreUnit store_unit_;
  Vfu vfu_;

  const VecProgram* program_ = nullptr;
  std::size_t pc_ = 0;
  std::uint32_t scalar_wait_ = 0;
  std::uint32_t dispatch_wait_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace axipack::vproc
