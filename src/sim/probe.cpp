#include "sim/probe.hpp"

namespace axipack::sim {

std::uint64_t Counters::get(std::string_view name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

Counters Counters::diff(const Counters& earlier) const {
  Counters out;
  for (const auto& [name, value] : values_) {
    out.values_[name] = value - earlier.get(name);
  }
  return out;
}

}  // namespace axipack::sim
