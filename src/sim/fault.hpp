// Deterministic fault injection and master-side retry configuration.
//
// A FaultPlan is the single source of injected misbehaviour for one
// system: AXI links, the DRAM backend and the pack converters each hold a
// (possibly null) plan pointer and ask it, per data-path event, whether
// that event is faulted. Decisions are a pure hash of (seed, site,
// per-site event ordinal) — no global cycle state, no RNG stream shared
// across sites — so the fault schedule depends only on the traffic itself.
// The gated and naive kernels see identical traffic, hence identical
// faults, and stay cycle-identical with injection enabled; with no plan
// attached (or an all-zero config) every hook is a no-op and behaviour is
// bit- and cycle-identical to a build without this subsystem.
//
// Sites and fault kinds:
//   * link_r        — R beats crossing a monitored AxiLink: single-bit
//                     data flips (delivered with resp=SLVERR), burst
//                     truncation (an error beat with last set; the link
//                     discards the remainder of the real burst), and
//                     head-of-line stalls of a few cycles.
//   * dram_read     — reads granted by the DRAM scheduler: ECC-correctable
//                     (counted, data intact) or uncorrectable (poisoned
//                     data, error response).
//   * dram_write    — writes granted by the DRAM scheduler: the write is
//                     dropped and an error response returned, so memory is
//                     never silently corrupted — a retry simply rewrites.
//   * pack_strided / pack_indirect — packed R beats leaving the strided /
//                     indirect read converters: single-bit payload
//                     corruption, delivered with resp=SLVERR.
//
// Tests can pin exact faults with force(site, nth, kind) instead of (or on
// top of) the rate-driven schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/kernel.hpp"

namespace axipack::sim {

/// Injection attach points (one independent event ordinal per site).
enum class FaultSite : std::uint32_t {
  link_r = 1,
  dram_read = 2,
  dram_write = 3,
  pack_strided = 4,
  pack_indirect = 5,
};

/// Outcome of one link R-beat query.
enum class LinkFault : std::uint8_t { none, flip, truncate, stall };

/// Per-event fault probabilities. All-zero (the default) disables every
/// site; rates are per data-path event (beat, grant), not per cycle.
struct FaultConfig {
  std::uint64_t seed = 1;
  double link_flip_rate = 0.0;      ///< R-beat single-bit flip (SLVERR)
  double link_truncate_rate = 0.0;  ///< R-burst truncation (SLVERR + last)
  double link_stall_rate = 0.0;     ///< R head-of-line stall
  Cycle link_stall_cycles = 6;      ///< length of an injected stall
  double dram_read_correctable_rate = 0.0;    ///< ECC corrects, data intact
  double dram_read_uncorrectable_rate = 0.0;  ///< poisoned data + SLVERR
  double dram_write_error_rate = 0.0;         ///< write dropped + SLVERR
  double pack_corrupt_rate = 0.0;   ///< packed-beat bit corruption (SLVERR)

  /// True when any site can fire (rate-driven; forced events inject even
  /// when this is false).
  bool any() const {
    return link_flip_rate > 0.0 || link_truncate_rate > 0.0 ||
           link_stall_rate > 0.0 || dram_read_correctable_rate > 0.0 ||
           dram_read_uncorrectable_rate > 0.0 ||
           dram_write_error_rate > 0.0 || pack_corrupt_rate > 0.0;
  }

  /// The default mixed-fault profile at `scale` times the base rates
  /// (scale 1.0 ~ a few faults per hundred thousand events: visible in
  /// every headline run, recoverable with a small retry budget).
  static FaultConfig defaults(double scale = 1.0) {
    FaultConfig f;
    f.link_flip_rate = 40e-6 * scale;
    f.link_truncate_rate = 10e-6 * scale;
    f.link_stall_rate = 20e-6 * scale;
    f.dram_read_correctable_rate = 40e-6 * scale;
    f.dram_read_uncorrectable_rate = 10e-6 * scale;
    f.dram_write_error_rate = 10e-6 * scale;
    f.pack_corrupt_rate = 20e-6 * scale;
    return f;
  }
};

/// Injection-side counters (what the plan actually fired).
struct FaultStats {
  std::uint64_t injected = 0;  ///< total faults fired, all sites
  std::uint64_t link_flips = 0;
  std::uint64_t link_truncations = 0;
  std::uint64_t link_stalls = 0;
  std::uint64_t dram_correctable = 0;    ///< ECC corrected in place
  std::uint64_t dram_uncorrectable = 0;
  std::uint64_t dram_write_errors = 0;
  std::uint64_t pack_corruptions = 0;
};

/// Master-side robustness knobs (vproc VLSU and the DMA engine).
struct RetryConfig {
  /// Total attempts per operation including the first (0 = error handling
  /// off: a detected fault fails the op immediately).
  unsigned max_attempts = 0;
  /// Watchdog: cycles without forward progress on an op with outstanding
  /// requests before it is aborted and retried (0 = no watchdog).
  Cycle timeout_cycles = 0;
  /// Backoff before re-issue, doubling per failed attempt.
  Cycle backoff = 16;
  /// Graceful degradation: after this many failed pack-path attempts the
  /// master trips a breaker and re-plans remaining pack ops in base
  /// (unpacked) mode (0 = breaker off).
  unsigned breaker_threshold = 0;

  bool enabled() const { return max_attempts > 0; }
};

/// Master-side counters, aggregated into RunResult across masters.
struct RetryStats {
  std::uint64_t retries = 0;   ///< re-issued operations/transfers
  std::uint64_t timeouts = 0;  ///< watchdog expiries
  std::uint64_t failed_ops = 0;  ///< attempts exhausted (data unrecovered)
  bool degraded = false;         ///< breaker tripped, running in base mode
};

/// Deterministic seed-driven fault schedule (see file header).
class FaultPlan {
 public:
  explicit FaultPlan(const FaultConfig& cfg) : cfg_(cfg) {}

  const FaultConfig& config() const { return cfg_; }
  const FaultStats& stats() const { return stats_; }

  /// Pins fault `kind` onto the `nth` event (0-based) of `site`, overriding
  /// the rate schedule for that event. Kind encodes per site:
  ///   link_r: 1 = flip, 2 = truncate, 3 = stall
  ///   dram_read: 1 = correctable, 2 = uncorrectable
  ///   dram_write / pack_*: any nonzero value
  void force(FaultSite site, std::uint64_t nth, int kind) {
    forced_.push_back({site, nth, kind});
  }

  /// One R beat about to cross a link. On flip/truncate `*bit` is the data
  /// bit to corrupt; on stall `*stall_cycles` is the hold length.
  LinkFault next_link_r(Cycle* stall_cycles, unsigned* bit);

  /// One read granted by the DRAM scheduler; true = faulted, with
  /// `*correctable` distinguishing ECC-corrected from poisoned (for the
  /// latter `*bit` is the data bit to poison).
  bool next_dram_read(bool* correctable, unsigned* bit);

  /// One write granted by the DRAM scheduler; true = drop it and error.
  bool next_dram_write();

  /// One packed beat leaving a read converter; true = corrupt `*bit`.
  bool next_pack_beat(FaultSite site, unsigned* bit);

 private:
  struct Forced {
    FaultSite site;
    std::uint64_t nth;
    int kind;
  };

  /// splitmix64: the decision hash (statistically uniform, cheap).
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::uint64_t draw(FaultSite site, std::uint64_t ordinal,
                     std::uint64_t salt) const {
    return mix(cfg_.seed ^
               (static_cast<std::uint64_t>(site) * 0x9e3779b97f4a7c15ull) ^
               (ordinal * 0xc2b2ae3d27d4eb4full) ^ salt);
  }

  /// True iff the hash for (site, ordinal, salt) lands under `rate`.
  bool fires(FaultSite site, std::uint64_t ordinal, std::uint64_t salt,
             double rate) const {
    if (rate <= 0.0) return false;
    constexpr double k2_64 = 18446744073709551616.0;  // 2^64
    return static_cast<double>(draw(site, ordinal, salt)) < rate * k2_64;
  }

  /// Forced kind for this event, or 0.
  int forced_kind(FaultSite site, std::uint64_t ordinal) const {
    for (const Forced& f : forced_) {
      if (f.site == site && f.nth == ordinal) return f.kind;
    }
    return 0;
  }

  FaultConfig cfg_;
  FaultStats stats_;
  std::vector<Forced> forced_;
  std::uint64_t link_r_events_ = 0;
  std::uint64_t dram_read_events_ = 0;
  std::uint64_t dram_write_events_ = 0;
  std::uint64_t pack_strided_events_ = 0;
  std::uint64_t pack_indirect_events_ = 0;
};

}  // namespace axipack::sim
