#include "sim/fault.hpp"

namespace axipack::sim {

LinkFault FaultPlan::next_link_r(Cycle* stall_cycles, unsigned* bit) {
  const std::uint64_t n = link_r_events_++;
  LinkFault kind = LinkFault::none;
  switch (forced_kind(FaultSite::link_r, n)) {
    case 1: kind = LinkFault::flip; break;
    case 2: kind = LinkFault::truncate; break;
    case 3: kind = LinkFault::stall; break;
    default:
      // Independent draws per kind; flip wins ties (order is arbitrary but
      // fixed, so the schedule stays deterministic).
      if (fires(FaultSite::link_r, n, 0x11, cfg_.link_flip_rate)) {
        kind = LinkFault::flip;
      } else if (fires(FaultSite::link_r, n, 0x22, cfg_.link_truncate_rate)) {
        kind = LinkFault::truncate;
      } else if (fires(FaultSite::link_r, n, 0x33, cfg_.link_stall_rate)) {
        kind = LinkFault::stall;
      }
  }
  switch (kind) {
    case LinkFault::none:
      break;
    case LinkFault::flip:
      *bit = static_cast<unsigned>(draw(FaultSite::link_r, n, 0x44) & 0xff);
      ++stats_.injected;
      ++stats_.link_flips;
      break;
    case LinkFault::truncate:
      ++stats_.injected;
      ++stats_.link_truncations;
      break;
    case LinkFault::stall:
      *stall_cycles = cfg_.link_stall_cycles > 0 ? cfg_.link_stall_cycles : 1;
      ++stats_.injected;
      ++stats_.link_stalls;
      break;
  }
  return kind;
}

bool FaultPlan::next_dram_read(bool* correctable, unsigned* bit) {
  const std::uint64_t n = dram_read_events_++;
  int kind = forced_kind(FaultSite::dram_read, n);
  if (kind == 0) {
    if (fires(FaultSite::dram_read, n, 0x11,
              cfg_.dram_read_correctable_rate)) {
      kind = 1;
    } else if (fires(FaultSite::dram_read, n, 0x22,
                     cfg_.dram_read_uncorrectable_rate)) {
      kind = 2;
    }
  }
  if (kind == 0) return false;
  ++stats_.injected;
  if (kind == 1) {
    *correctable = true;
    ++stats_.dram_correctable;
  } else {
    *correctable = false;
    *bit = static_cast<unsigned>(draw(FaultSite::dram_read, n, 0x33) & 31);
    ++stats_.dram_uncorrectable;
  }
  return true;
}

bool FaultPlan::next_dram_write() {
  const std::uint64_t n = dram_write_events_++;
  const bool hit =
      forced_kind(FaultSite::dram_write, n) != 0 ||
      fires(FaultSite::dram_write, n, 0x11, cfg_.dram_write_error_rate);
  if (hit) {
    ++stats_.injected;
    ++stats_.dram_write_errors;
  }
  return hit;
}

bool FaultPlan::next_pack_beat(FaultSite site, unsigned* bit) {
  std::uint64_t& counter = site == FaultSite::pack_strided
                               ? pack_strided_events_
                               : pack_indirect_events_;
  const std::uint64_t n = counter++;
  const bool hit = forced_kind(site, n) != 0 ||
                   fires(site, n, 0x11, cfg_.pack_corrupt_rate);
  if (hit) {
    *bit = static_cast<unsigned>(draw(site, n, 0x22) & 0xff);
    ++stats_.injected;
    ++stats_.pack_corruptions;
  }
  return hit;
}

}  // namespace axipack::sim
