#include "sim/kernel.hpp"

namespace axipack::sim {

void Kernel::step() {
  for (Component* c : components_) c->tick();
  for (FifoBase* f : fifos_) f->commit();
  ++cycle_;
}

void Kernel::run(Cycle n) {
  for (Cycle i = 0; i < n; ++i) step();
}

bool Kernel::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  const Cycle deadline = cycle_ + max_cycles;
  while (cycle_ < deadline) {
    if (done()) return true;
    step();
  }
  return done();
}

}  // namespace axipack::sim
