#include "sim/kernel.hpp"

#include <algorithm>

namespace axipack::sim {

void Kernel::add(Component& c) {
  assert(c.kernel_ == nullptr && "component registered twice");
  c.kernel_ = this;
  c.comp_id_ = static_cast<std::uint32_t>(components_.size());
  components_.push_back(&c);
  awake_.push_back(1);
  next_wake_.push_back(kNever);
  sub_hint_.push_back(0);
  sleep_check_at_.push_back(0);
  sleep_backoff_.push_back(0);
  ++awake_count_;
  subs_.emplace_back();
}

void Kernel::add(FifoBase& f) {
  assert(f.kernel_ == nullptr && "fifo registered twice");
  f.kernel_ = this;
}

void Kernel::subscribe(Component& c, FifoBase& f) {
  assert(c.kernel_ == this && f.kernel_ == this);
  subs_[c.comp_id_].push_back(&f);
  f.subscribers_.push_back(c.comp_id_);
}

void Kernel::wake(Component& c) {
  assert(c.kernel_ == this);
  wake_id(c.comp_id_);
}

void Kernel::set_gating(bool on) {
  if (gating_ == on) return;
  gating_ = on;
  if (!on) {
    // Naive mode ticks everything; make the awake set reflect that so a
    // later re-enable starts from a conservative (all-awake) state.
    for (std::uint32_t i = 0; i < awake_.size(); ++i) wake_id(i);
  }
}

void Kernel::try_sleep(std::uint32_t i) {
  Component* c = components_[i];
  if (!c->quiescent()) {
    defer_sleep_check(i);
    return;
  }
  const std::vector<FifoBase*>& subs = subs_[i];
  Cycle next_wake = kNever;
  const Cycle timed = c->wake_hint();
  if (timed > cycle_) {
    // The component vouches its tick() is a no-op until `timed` even with
    // visible subscribed input (a timing window, with the visibility of
    // every already-enqueued item folded into the hint) — sleep through
    // it. New pushes while asleep still wake earlier via notify_push.
    next_wake = timed;
  } else {
    const std::size_t n = subs.size();
    // Start scanning at the subscription that kept us awake last time: in
    // steady streaming the same input stays visible, making the scan O(1).
    const std::size_t hint = sub_hint_[i] < n ? sub_hint_[i] : 0;
    for (std::size_t k = 0; k < n; ++k) {
      std::size_t j = hint + k;
      if (j >= n) j -= n;
      const FifoBase* f = subs[j];
      if (f->size_ == 0) continue;
      if (f->head_visible_ <= cycle_) {  // visible work: stay awake
        sub_hint_[i] = j;
        defer_sleep_check(i);
        return;
      }
      next_wake = std::min(next_wake, f->head_visible_);
    }
  }
  // A sleep/wake round-trip has real cost (subscription counters, wake
  // heap); napping through a short latency window is a net loss, so stay
  // awake and no-op-tick through it, exactly like the naive kernel.
  if (next_wake != kNever && next_wake - cycle_ < kMinSleepCycles) {
    defer_sleep_check(i);
    return;
  }
  awake_[i] = 0;
  --awake_count_;
  next_wake_[i] = kNever;
  sleep_backoff_[i] = 0;
  sleep_check_at_[i] = 0;
  for (FifoBase* f : subs) ++f->asleep_subscribers_;
  if (next_wake != kNever) schedule_wake(i, next_wake);
}

void Kernel::step() {
  if (gating_) {
    service_wakes();
    const std::size_t n = components_.size();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!awake_[i]) continue;
      components_[i]->tick();
      // Backoff gate inline: busy components skip the sleep attempt cheaply.
      if (cycle_ >= sleep_check_at_[i]) try_sleep(i);
    }
  } else {
    for (Component* c : components_) c->tick();
  }
  ++cycle_;
}

bool Kernel::fast_forward(Cycle limit) {
  if (!gating_ || awake_count_ > 0) return false;
  service_wakes();
  if (awake_count_ > 0) return false;
  // Everyone is asleep: nothing can happen before the next scheduled wake,
  // so the skipped cycles are exactly the no-op cycles the naive kernel
  // would have spun through.
  cycle_ = wakes_.empty() ? limit : std::min(limit, wakes_.top().first);
  return true;
}

void Kernel::run(Cycle n) {
  const Cycle end = cycle_ + n;
  while (cycle_ < end) {
    if (fast_forward(end)) continue;
    step();
  }
}

RunStatus Kernel::run_until(const std::function<bool()>& done,
                            Cycle max_cycles, PredKind kind) {
  const Cycle start = cycle_;
  const Cycle deadline = cycle_ + max_cycles;
  // Evaluate once per cycle: before the first step and after each step.
  bool completed = done();
  while (!completed && cycle_ < deadline) {
    if (kind == PredKind::pure && fast_forward(deadline)) {
      // A pure predicate cannot change over skipped (fully-asleep) cycles.
      continue;
    }
    step();
    completed = done();
  }
  return RunStatus{completed, cycle_ - start};
}

}  // namespace axipack::sim
