// Lightweight activity counters for performance and energy accounting.
//
// Components increment named counters; the run harness snapshots them at
// region boundaries so per-kernel utilization/energy can be computed without
// resetting the simulator.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace axipack::sim {

/// A bag of named monotonically increasing counters.
class Counters {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    values_[name] += delta;
  }

  /// Value of `name` (0 if never touched).
  std::uint64_t get(const std::string& name) const;

  /// this - other, counter-wise (other must be an earlier snapshot).
  Counters diff(const Counters& earlier) const;

  const std::map<std::string, std::uint64_t>& values() const { return values_; }

 private:
  std::map<std::string, std::uint64_t> values_;
};

}  // namespace axipack::sim
