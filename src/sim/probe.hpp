// Lightweight activity counters for performance and energy accounting.
//
// Components increment named counters; the run harness snapshots them at
// region boundaries so per-kernel utilization/energy can be computed without
// resetting the simulator.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace axipack::sim {

/// A bag of named monotonically increasing counters.
///
/// add() is on simulation hot paths (once or twice per bus beat), so
/// lookups are transparent (heterogeneous) — incrementing an existing
/// counter never materializes a std::string.
class Counters {
 public:
  void add(std::string_view name, std::uint64_t delta = 1) {
    const auto it = values_.find(name);
    if (it != values_.end()) {
      it->second += delta;
    } else {
      values_.emplace(std::string(name), delta);
    }
  }

  /// Stable pointer to a counter's slot (created at 0 if new). Node-based
  /// storage keeps the pointer valid for the Counters' lifetime; hot paths
  /// cache it and increment directly instead of looking the name up.
  std::uint64_t* handle(std::string_view name) {
    const auto it = values_.find(name);
    if (it != values_.end()) return &it->second;
    return &values_.emplace(std::string(name), 0).first->second;
  }

  /// Value of `name` (0 if never touched).
  std::uint64_t get(std::string_view name) const;

  /// this - other, counter-wise (other must be an earlier snapshot).
  Counters diff(const Counters& earlier) const;

  const std::map<std::string, std::uint64_t, std::less<>>& values() const {
    return values_;
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> values_;
};

}  // namespace axipack::sim
