// Cycle-driven simulation kernel.
//
// Model of computation
// --------------------
// The simulated hardware is a set of Components connected by Fifo channels.
// Each cycle the kernel calls tick() on every component (in registration
// order) and then commit() on every channel. Channels have *registered*
// semantics:
//
//  * an item pushed in cycle t becomes visible to poppers in cycle t+latency
//    (latency >= 1, default 1, i.e. a register stage);
//  * space freed by a pop in cycle t becomes usable by pushers in cycle t+1.
//
// Because pushes and pops within a cycle never observe each other, simulation
// results are independent of component tick order — the same property a
// synchronous netlist has. A depth-1 Fifo therefore sustains only one item
// every two cycles (like a hardware FIFO without a skid buffer); use depth
// >= 2 on full-throughput paths.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace axipack::sim {

using Cycle = std::uint64_t;

/// Anything the kernel ticks once per cycle.
class Component {
 public:
  virtual ~Component() = default;
  /// Advance one cycle: consume from input Fifos, produce into output Fifos.
  virtual void tick() = 0;
};

/// Non-template channel base so the kernel can commit them generically.
class FifoBase {
 public:
  virtual ~FifoBase() = default;
  virtual void commit() = 0;
};

/// Owns the clock; ticks components, then commits channels.
class Kernel {
 public:
  Cycle now() const { return cycle_; }

  /// Registers a component (non-owning). Tick order = registration order.
  void add(Component& c) { components_.push_back(&c); }
  /// Registers a channel (non-owning).
  void add(FifoBase& f) { fifos_.push_back(&f); }

  /// Advances exactly one cycle.
  void step();

  /// Advances `n` cycles.
  void run(Cycle n);

  /// Runs until `done()` returns true or `max_cycles` elapse from now.
  /// Returns true iff the predicate fired (i.e. no timeout).
  bool run_until(const std::function<bool()>& done,
                 Cycle max_cycles = 100'000'000);

 private:
  Cycle cycle_ = 0;
  std::vector<Component*> components_;
  std::vector<FifoBase*> fifos_;
};

/// Bounded FIFO channel with registered push/pop semantics (see file header).
///
/// `latency` models pipeline stages between producer and consumer: an item is
/// poppable `latency` cycles after the push. Capacity counts *all* items in
/// flight, including those still inside the latency window.
template <typename T>
class Fifo : public FifoBase {
 public:
  explicit Fifo(Kernel& k, std::size_t capacity, Cycle latency = 1,
                std::string name = {})
      : kernel_(&k),
        capacity_(capacity),
        latency_(latency),
        name_(std::move(name)) {
    assert(capacity_ > 0);
    assert(latency_ >= 1);
    k.add(*this);
  }

  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  /// True if a push is allowed this cycle. Space freed by pops this cycle is
  /// NOT counted (it becomes available next cycle).
  bool can_push() const {
    return items_.size() + popped_this_cycle_ < capacity_;
  }

  void push(T item) {
    assert(can_push());
    items_.push_back(Slot{std::move(item), kernel_->now() + latency_});
  }

  /// True if the head item is visible this cycle.
  bool can_pop() const {
    return !items_.empty() && items_.front().visible_at <= kernel_->now();
  }

  const T& front() const {
    assert(can_pop());
    return items_.front().item;
  }

  T pop() {
    assert(can_pop());
    T item = std::move(items_.front().item);
    items_.pop_front();
    ++popped_this_cycle_;
    return item;
  }

  /// Number of items currently stored (visible or not).
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

  void commit() override { popped_this_cycle_ = 0; }

 private:
  struct Slot {
    T item;
    Cycle visible_at;
  };

  Kernel* kernel_;
  std::size_t capacity_;
  Cycle latency_;
  std::string name_;
  std::deque<Slot> items_;
  std::size_t popped_this_cycle_ = 0;
};

/// Convenience: an effectively unbounded Fifo (for response paths whose
/// occupancy is regulated elsewhere, e.g. by a request regulator).
template <typename T>
class UnboundedFifo : public Fifo<T> {
 public:
  explicit UnboundedFifo(Kernel& k, Cycle latency = 1, std::string name = {})
      : Fifo<T>(k, std::numeric_limits<std::size_t>::max() / 2, latency,
                std::move(name)) {}
};

}  // namespace axipack::sim
