// Cycle-driven simulation kernel with activity gating.
//
// Model of computation
// --------------------
// The simulated hardware is a set of Components connected by Fifo channels.
// Each cycle the kernel calls tick() on every *awake* component (in
// registration order) and then commit() on every channel touched this cycle.
// Channels have *registered* semantics:
//
//  * an item pushed in cycle t becomes visible to poppers in cycle t+latency
//    (latency >= 1, default 1, i.e. a register stage);
//  * space freed by a pop in cycle t becomes usable by pushers in cycle t+1.
//
// Because pushes and pops within a cycle never observe each other, simulation
// results are independent of component tick order — the same property a
// synchronous netlist has. A depth-1 Fifo therefore sustains only one item
// every two cycles (like a hardware FIFO without a skid buffer); use depth
// >= 2 on full-throughput paths.
//
// Activity gating (the quiescence protocol)
// -----------------------------------------
// Ticking every component and committing every Fifo each cycle is wasted
// work when most of the fabric is idle, so the kernel gates both:
//
//  * Fifos need no end-of-cycle commit walk at all: the pop count that
//    delays freed space to the next cycle is kept per-Fifo together with
//    the cycle it was observed in, so it lapses lazily instead of being
//    reset by a per-channel commit() call every cycle.
//  * A component that (a) returns true from quiescent() and (b) has no
//    *visible* item in any Fifo it subscribed to is put to sleep and not
//    ticked again until it is woken — by an item becoming visible on a
//    subscribed Fifo, or by an explicit Kernel::wake() (see below).
//  * A component whose idleness is bounded by *time* rather than by input
//    (a DRAM bank waiting out tRCD/tRP/tRFC with requests already queued)
//    can additionally publish a wake_hint(): a future cycle before which
//    its tick() is a no-op even though subscribed input is visible. The
//    kernel then sleeps it through the window and wakes it at the hint;
//    pushes that arrive while it sleeps still wake it earlier.
//  * When every component is asleep and only Fifo latency timers are
//    pending, run()/run_until() fast-forward the clock to the next
//    scheduled wake-up instead of stepping through dead cycles.
//
// Gating is cycle-identical to naive full-netlist ticking *provided*
// components keep the protocol:
//
//  1. quiescent() must return true only when tick() would be a no-op now
//     and on every future cycle until new input arrives. Any internal
//     pending state — in-flight bursts, countdown timers, data waiting to
//     be pushed into a full output Fifo — means "not quiescent".
//  2. A component must subscribe() to every Fifo it pops from (or whose
//     visible data can otherwise re-activate it).
//  3. Any non-tick entry point that creates new work for a component
//     (Processor::run, DmaEngine::push, Converter::accept_ar, ...) must
//     call wake_self() / Kernel::wake().
//
// The default quiescent() returns false, so unconverted components are
// simply ticked every cycle, exactly as before. set_gating(false) restores
// the naive kernel wholesale (used by the equivalence tests and as the
// perf-harness baseline).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

namespace axipack::sim {

using Cycle = std::uint64_t;

/// "No scheduled event": the far-future sentinel used by wake hints and the
/// kernel's wake bookkeeping.
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

class Kernel;
class FifoBase;

/// Anything the kernel ticks once per cycle.
class Component {
 public:
  virtual ~Component() = default;
  /// Advance one cycle: consume from input Fifos, produce into output Fifos.
  virtual void tick() = 0;
  /// Activity hook: true iff tick() is a no-op now and stays one until new
  /// input arrives (see the quiescence protocol in the file header).
  virtual bool quiescent() const { return false; }
  /// Timed-idleness hook, consulted only when quiescent() is true. A value
  /// `h` greater than the current cycle vouches that tick() is a no-op on
  /// every cycle < h *even if subscribed Fifos hold visible items* — the
  /// component has folded all its already-enqueued work (including the
  /// visibility times of in-flight subscribed items) into the hint, and
  /// only the passage of time or a *new* push can change its behaviour
  /// before h. The kernel may then sleep it until min(h, next new push).
  /// kNeverCycle means "no timed work at all: sleep until a push". The
  /// default 0 opts out: sleep is governed by visible input alone.
  virtual Cycle wake_hint() const { return 0; }

 protected:
  /// Marks this component runnable again; call from any non-tick entry
  /// point that hands it new work. Safe before registration (no-op).
  void wake_self();

 private:
  friend class Kernel;
  Kernel* kernel_ = nullptr;
  std::uint32_t comp_id_ = 0;
};

/// Non-template channel base so the kernel can track occupancy/visibility
/// without virtual dispatch.
class FifoBase {
 public:
  virtual ~FifoBase() = default;

  /// True if a visible (poppable) item exists at cycle `now`.
  bool has_visible(Cycle now) const {
    return size_ > 0 && head_visible_ <= now;
  }

  /// Activity tap: every push also ORs `1 << bit` into `*word` (pass
  /// nullptr to detach). Consumers that mux many Fifos (the adapter's
  /// bank-port mux) point a group of channels at one bitmask word and scan
  /// only flagged groups instead of polling every channel every cycle.
  /// Purely an observer — occupancy and visibility are unaffected, so
  /// gated and naive scheduling stay cycle-identical.
  void set_push_flag(std::uint64_t* word, unsigned bit) {
    push_flag_word_ = word;
    push_flag_mask_ = std::uint64_t{1} << bit;
  }

 protected:
  // Called by Fifo<T>; defined inline after Kernel.
  void notify_push(Cycle visible_at);

  std::size_t size_ = 0;       ///< items stored (visible or in flight)
  Cycle head_visible_ = 0;     ///< visible_at of the head item (if size_>0)
  Kernel* kernel_ = nullptr;
  std::uint64_t* push_flag_word_ = nullptr;  ///< see set_push_flag
  std::uint64_t push_flag_mask_ = 0;

 private:
  friend class Kernel;
  /// Subscribers currently asleep. Pushes only notify the kernel when this
  /// is nonzero, so the steady-state (all consumers awake) push pays one
  /// integer test; the count is maintained at sleep/wake transitions.
  std::uint32_t asleep_subscribers_ = 0;
  std::vector<std::uint32_t> subscribers_;   ///< component ids to wake on push
};

/// Completion + duration of a bounded run (see Kernel::run_until).
struct RunStatus {
  bool completed = false;  ///< the predicate fired before the deadline
  Cycle cycles = 0;        ///< cycles consumed by this call
  operator bool() const { return completed; }  // NOLINT: drop-in for bool
};

/// Owns the clock; ticks components, then commits channels.
class Kernel {
 public:
  Cycle now() const { return cycle_; }

  /// Registers a component (non-owning). Tick order = registration order.
  void add(Component& c);
  /// Binds a channel to this kernel's clock (non-owning; no per-channel
  /// state is kept — commit walks are gone, visibility is per item).
  void add(FifoBase& f);

  /// Declares that `c` consumes from `f`: a sleeping `c` is woken when an
  /// item pushed into `f` becomes visible. Both must be registered here.
  void subscribe(Component& c, FifoBase& f);

  /// Marks `c` runnable (idempotent). See Component::wake_self().
  void wake(Component& c);

  /// Disables/enables activity gating. With gating off the kernel ticks
  /// every component and commits every Fifo each cycle (the naive, pre-
  /// gating behaviour); results are cycle-identical either way.
  void set_gating(bool on);
  bool gating() const { return gating_; }

  /// Advances exactly one cycle.
  void step();

  /// Advances `n` cycles (fast-forwarding through fully-asleep stretches).
  void run(Cycle n);

  /// How the run_until predicate interacts with the simulation.
  enum class PredKind {
    /// The predicate may drive the system (push/pop ports); it is invoked
    /// once per cycle and idle fast-forward is disabled.
    driving,
    /// The predicate only observes simulator state; its value can change
    /// only when a component runs, so fully-asleep stretches are skipped.
    pure,
  };

  /// Runs until `done()` returns true or `max_cycles` elapse from now.
  /// `done` is evaluated before the first step and after every step — never
  /// twice for the same cycle. Returns completion plus cycles consumed.
  RunStatus run_until(const std::function<bool()>& done,
                      Cycle max_cycles = 100'000'000,
                      PredKind kind = PredKind::driving);

 private:
  friend class Component;
  friend class FifoBase;

  static constexpr Cycle kNever = kNeverCycle;

  void wake_id(std::uint32_t id) {
    if (awake_[id]) return;
    awake_[id] = 1;
    ++awake_count_;
    next_wake_[id] = kNever;
    sleep_backoff_[id] = 0;
    sleep_check_at_[id] = 0;
    for (FifoBase* f : subs_[id]) --f->asleep_subscribers_;
  }

  /// Schedules a timed wake for a sleeping component, deduplicated: a wake
  /// at or before `t` is already pending, or the component re-schedules
  /// from its subscriptions when it goes back to sleep after that wake.
  void schedule_wake(std::uint32_t id, Cycle t) {
    if (awake_[id] || next_wake_[id] <= t) return;
    wakes_.emplace(t, id);
    next_wake_[id] = t;
  }

  /// Processes timed wake-ups due at the current cycle.
  void service_wakes() {
    while (!wakes_.empty() && wakes_.top().first <= cycle_) {
      wake_id(wakes_.top().second);
      wakes_.pop();
    }
  }

  /// Sleeps component `i` if the protocol allows; schedules its next timed
  /// wake from the pending (not-yet-visible) items on its subscriptions.
  void try_sleep(std::uint32_t i);

  /// Backs off the next sleep attempt after a failed one (1, 2, 4, ...
  /// up to kMaxSleepBackoff cycles). Purely an overhead bound; a component
  /// that stays awake longer just no-op-ticks like the naive kernel.
  static constexpr Cycle kMaxSleepBackoff = 64;
  /// Minimum nap length worth the sleep/wake bookkeeping.
  static constexpr Cycle kMinSleepCycles = 8;
  void defer_sleep_check(std::uint32_t i) {
    const Cycle b = sleep_backoff_[i];
    sleep_backoff_[i] = b == 0 ? 1 : (b < kMaxSleepBackoff ? b * 2 : b);
    sleep_check_at_[i] = cycle_ + 1 + sleep_backoff_[i];
  }

  /// On-push notification from a subscribed Fifo.
  void on_push(const std::vector<std::uint32_t>& subscribers,
               Cycle visible_at) {
    for (const std::uint32_t id : subscribers) {
      schedule_wake(id, visible_at);
    }
  }

  /// If everyone is asleep, jumps the clock to the next scheduled wake (or
  /// `limit`) and returns true; returns false if any component is runnable.
  bool fast_forward(Cycle limit);

  Cycle cycle_ = 0;
  bool gating_ = true;
  std::vector<Component*> components_;
  std::vector<std::uint8_t> awake_;               ///< parallel to components_
  std::vector<Cycle> next_wake_;                  ///< earliest pending wake
  std::vector<std::size_t> sub_hint_;             ///< try_sleep scan start
  std::vector<Cycle> sleep_check_at_;             ///< next sleep attempt
  std::vector<Cycle> sleep_backoff_;              ///< current backoff length
  std::size_t awake_count_ = 0;
  std::vector<std::vector<FifoBase*>> subs_;      ///< per-component inputs
  std::priority_queue<std::pair<Cycle, std::uint32_t>,
                      std::vector<std::pair<Cycle, std::uint32_t>>,
                      std::greater<>>
      wakes_;
};

inline void Component::wake_self() {
  if (kernel_ != nullptr) kernel_->wake(*this);
}

inline void FifoBase::notify_push(Cycle visible_at) {
  if (push_flag_word_ != nullptr) *push_flag_word_ |= push_flag_mask_;
  if (asleep_subscribers_ != 0) {
    kernel_->on_push(subscribers_, visible_at);
  }
}

/// Bounded FIFO channel with registered push/pop semantics (see file header).
///
/// `latency` models pipeline stages between producer and consumer: an item is
/// poppable `latency` cycles after the push. Capacity counts *all* items in
/// flight, including those still inside the latency window.
///
/// Storage is a power-of-two ring buffer, so steady-state pushes never
/// allocate; it starts small and doubles (amortized O(1)) only while the
/// high-water mark is still growing toward `capacity`.
template <typename T>
class Fifo : public FifoBase {
 public:
  explicit Fifo(Kernel& k, std::size_t capacity, Cycle latency = 1,
                std::string name = {})
      : capacity_(capacity), latency_(latency), name_(std::move(name)) {
    assert(capacity_ > 0);
    assert(latency_ >= 1);
    storage_ = round_up_pow2(capacity_ < kInitialStorage ? capacity_
                                                         : kInitialStorage);
    ring_ = std::make_unique<Slot[]>(storage_);
    k.add(*this);
  }

  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  /// True if a push is allowed this cycle. Space freed by pops this cycle is
  /// NOT counted (it becomes available next cycle).
  bool can_push() const {
    return size_ + popped_this_cycle() < capacity_;
  }

  void push(T item) { push_in(std::move(item), latency_); }

  /// push() with a per-item latency override: the item becomes visible
  /// `delay` cycles from now (delay >= 1) instead of after the channel's
  /// construction-time latency. Delivery order is still FIFO — an item
  /// pushed behind a slower one waits for it — which is exactly the
  /// in-order-per-port contract variable-latency memories (DRAM row hits
  /// vs misses) need from their response channels.
  void push_in(T item, Cycle delay) {
    assert(can_push());
    assert(delay >= 1);
    if (size_ == storage_) grow();
    const Cycle visible_at = now_() + delay;
    Slot& s = ring_[(head_ + size_) & (storage_ - 1)];
    s.item = std::move(item);
    s.visible_at = visible_at;
    if (size_ == 0) head_visible_ = visible_at;
    ++size_;
    notify_push(visible_at);
  }

  /// push() iff can_push(); returns whether the item was accepted.
  bool try_push(T item) {
    if (!can_push()) return false;
    push(std::move(item));
    return true;
  }

  /// True if the head item is visible this cycle.
  bool can_pop() const { return has_visible(now_()); }

  const T& front() const {
    assert(can_pop());
    return ring_[head_].item;
  }

  T pop() {
    assert(can_pop());
    T item = std::move(ring_[head_].item);
    head_ = (head_ + 1) & (storage_ - 1);
    --size_;
    head_visible_ = size_ > 0 ? ring_[head_].visible_at : 0;
    const Cycle now = now_();
    if (last_pop_cycle_ == now) {
      ++pops_at_last_cycle_;
    } else {
      last_pop_cycle_ = now;
      pops_at_last_cycle_ = 1;
    }
    return item;
  }

  /// pop() iff can_pop(); disengaged when nothing is visible.
  std::optional<T> try_pop() {
    if (!can_pop()) return std::nullopt;
    return pop();
  }

  /// Read-only access to the i-th stored item counted from the head
  /// (peek(0) == front()). Does not consume; `i` must be < size(). Callers
  /// that care about visibility bound `i` by visible_count() — lookahead
  /// schedulers (the DRAM row-batching window) peek past the head without
  /// disturbing FIFO order.
  const T& peek(std::size_t i) const {
    assert(i < size_);
    return ring_[(head_ + i) & (storage_ - 1)].item;
  }

  /// Cycle the i-th stored item (counted from the head, like peek) becomes
  /// poppable; `i` must be < size(). Lets lookahead schedulers compute
  /// exact wake horizons — "when does the next in-flight request land?" —
  /// without a visibility scan.
  Cycle item_visible_at(std::size_t i) const {
    assert(i < size_);
    return ring_[(head_ + i) & (storage_ - 1)].visible_at;
  }

  /// Number of items visible (poppable, in FIFO order) at cycle `now`.
  /// Delivery is FIFO even under per-item latency (push_in), so the visible
  /// items are exactly the longest head prefix whose every member has
  /// visible_at <= now; the scan stops at the first in-flight item.
  std::size_t visible_count(Cycle now) const {
    std::size_t n = 0;
    while (n < size_ &&
           ring_[(head_ + n) & (storage_ - 1)].visible_at <= now) {
      ++n;
    }
    return n;
  }

  /// Number of items currently stored (visible or not).
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

 private:
  static constexpr std::size_t kInitialStorage = 8;

  struct Slot {
    T item;
    Cycle visible_at;
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  Cycle now_() const;  // defined below (needs Kernel)

  /// Space freed by a pop only becomes pushable the next cycle; the count
  /// lapses lazily when the clock moves on (no per-cycle commit walk).
  std::size_t popped_this_cycle() const {
    return last_pop_cycle_ == now_() ? pops_at_last_cycle_ : 0;
  }

  void grow() {
    const std::size_t bigger = storage_ * 2;
    auto fresh = std::make_unique<Slot[]>(bigger);
    for (std::size_t i = 0; i < size_; ++i) {
      fresh[i] = std::move(ring_[(head_ + i) & (storage_ - 1)]);
    }
    ring_ = std::move(fresh);
    storage_ = bigger;
    head_ = 0;
  }

  std::size_t capacity_;
  Cycle latency_;
  std::string name_;
  std::unique_ptr<Slot[]> ring_;
  std::size_t storage_ = 0;  ///< allocated slots (power of two)
  std::size_t head_ = 0;
  Cycle last_pop_cycle_ = std::numeric_limits<Cycle>::max();
  std::size_t pops_at_last_cycle_ = 0;
};

template <typename T>
inline Cycle Fifo<T>::now_() const {
  return kernel_->now();
}

/// Convenience: an effectively unbounded Fifo (for response paths whose
/// occupancy is regulated elsewhere, e.g. by a request regulator).
template <typename T>
class UnboundedFifo : public Fifo<T> {
 public:
  explicit UnboundedFifo(Kernel& k, Cycle latency = 1, std::string name = {})
      : Fifo<T>(k, std::numeric_limits<std::size_t>::max() / 2, latency,
                std::move(name)) {}
};

}  // namespace axipack::sim
