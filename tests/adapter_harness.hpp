// Test harness driving the AXI-Pack adapter directly over an AxiPort:
// issues read/write bursts as a master would and collects beats, so
// converter behaviour can be verified functionally and cycle counts
// measured. Shared by the adapter unit/property tests and the Fig. 5
// sensitivity benches.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "axi/types.hpp"
#include "mem/backing_store.hpp"
#include "systems/builder.hpp"
#include "systems/system.hpp"

namespace axipack::testing {

struct AdapterHarnessConfig {
  unsigned bus_bytes = 32;
  unsigned banks = 17;       ///< 0 = ideal (conflict-free) memory backend
  unsigned queue_depth = 4;
  std::uint64_t mem_base = 0x8000'0000ull;
  std::uint64_t mem_size = 16ull << 20;
};

class AdapterHarness {
 public:
  explicit AdapterHarness(const AdapterHarnessConfig& cfg = {}) : cfg_(cfg) {
    sys::SystemBuilder b;
    b.bus_bits(cfg.bus_bytes * 8)
        .mem_region(cfg.mem_base, cfg.mem_size)
        .queue_depth(cfg.queue_depth)
        .monitor(false);
    if (cfg.banks == 0) {
      b.memory("ideal");
    } else {
      b.banks(cfg.banks);
    }
    tb_ = b.attach_port("tb");
    system_ = b.build();
  }

  mem::BackingStore& store() { return system_->store(); }
  sim::Kernel& kernel() { return system_->kernel(); }
  axi::AxiPort& port() { return system_->master_port(tb_); }
  pack::AxiPackAdapter& adapter() { return system_->adapter(); }

  /// Issues one read burst and collects all its beats. Returns the packed
  /// payload bytes (useful bytes of each beat, concatenated).
  std::vector<std::uint8_t> read_burst(const axi::AxiAr& ar,
                                       std::uint64_t max_cycles = 100'000) {
    std::vector<std::uint8_t> out;
    bool pushed = false;
    bool done = false;
    const bool ok = kernel().run_until(
        [&] {
          if (!pushed && port().ar.can_push()) {
            port().ar.push(ar);
            pushed = true;
          }
          while (port().r.can_pop()) {
            const axi::AxiR beat = port().r.pop();
            for (unsigned i = 0; i < beat.useful_bytes; ++i) {
              out.push_back(beat.data[i]);
            }
            if (beat.last) done = true;
          }
          return done;
        },
        max_cycles);
    assert(ok);
    (void)ok;
    return out;
  }

  /// Issues one read burst and returns the raw beats (data at natural byte
  /// lanes — needed to check regular narrow/unaligned bursts, where payload
  /// does not start at lane 0).
  std::vector<axi::AxiR> read_burst_beats(const axi::AxiAr& ar,
                                          std::uint64_t max_cycles = 100'000) {
    std::vector<axi::AxiR> beats;
    bool pushed = false;
    bool done = false;
    const bool ok = kernel().run_until(
        [&] {
          if (!pushed && port().ar.can_push()) {
            port().ar.push(ar);
            pushed = true;
          }
          while (port().r.can_pop()) {
            beats.push_back(port().r.pop());
            if (beats.back().last) done = true;
          }
          return done;
        },
        max_cycles);
    assert(ok);
    (void)ok;
    return beats;
  }

  /// Issues one write burst whose beats are produced by `make_beat(i)`;
  /// waits for B.
  template <typename MakeBeat>
  void write_burst_beats(const axi::AxiAw& aw, MakeBeat&& make_beat,
                         std::uint64_t max_cycles = 100'000) {
    bool aw_pushed = false;
    unsigned sent = 0;
    bool done = false;
    const bool ok = kernel().run_until(
        [&] {
          if (!aw_pushed && port().aw.can_push()) {
            port().aw.push(aw);
            aw_pushed = true;
          }
          if (aw_pushed && sent < aw.beats() && port().w.can_push()) {
            axi::AxiW beat = make_beat(sent);
            beat.last = sent + 1 == aw.beats();
            port().w.push(beat);
            ++sent;
          }
          if (port().b.can_pop()) {
            port().b.pop();
            done = true;
          }
          return done;
        },
        max_cycles);
    assert(ok);
    (void)ok;
  }

  /// Issues one write burst from packed payload bytes; waits for B.
  void write_burst(const axi::AxiAw& aw, const std::vector<std::uint8_t>& data,
                   std::uint64_t max_cycles = 100'000) {
    const unsigned epb = cfg_.bus_bytes / aw.beat_bytes();
    const unsigned bytes_per_beat = epb * aw.beat_bytes();
    bool aw_pushed = false;
    std::size_t sent = 0;
    unsigned beat_idx = 0;
    bool done = false;
    const bool ok = kernel().run_until(
        [&] {
          if (!aw_pushed && port().aw.can_push()) {
            port().aw.push(aw);
            aw_pushed = true;
          }
          if (aw_pushed && sent < data.size() && port().w.can_push()) {
            axi::AxiW beat;
            const std::size_t n =
                std::min<std::size_t>(bytes_per_beat, data.size() - sent);
            for (std::size_t i = 0; i < n; ++i) {
              beat.data[i] = data[sent + i];
            }
            beat.strb = axi::strb_mask(0, static_cast<unsigned>(n));
            beat.useful_bytes = static_cast<std::uint16_t>(n);
            sent += n;
            ++beat_idx;
            beat.last = beat_idx == aw.beats();
            port().w.push(beat);
          }
          if (port().b.can_pop()) {
            port().b.pop();
            done = true;
          }
          return done;
        },
        max_cycles);
    assert(ok);
    (void)ok;
  }

 private:
  AdapterHarnessConfig cfg_;
  sys::MasterId tb_ = 0;
  std::unique_ptr<sys::System> system_;
};

}  // namespace axipack::testing
