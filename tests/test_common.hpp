// Shared test harness for every test binary in tests/.
//
// A self-contained, dependency-free replacement for the googletest subset
// this repo uses, so the suite builds anywhere the library builds (no
// find_package(GTest), no system packages — the ASan/UBSan CI job and the
// tier-1 build share one toolchain requirement). One header provides:
//
//   * TEST / TEST_F / TEST_P + INSTANTIATE_TEST_SUITE_P with
//     testing::Values / testing::Combine / testing::Bool generators;
//   * EXPECT_* / ASSERT_* comparison, boolean and floating-point macros
//     with value printing and `<< "context"` message streaming;
//   * a runner (main() is defined here — each test binary is one TU) that
//     prints per-test pass/fail with failure file:line locations, counts
//     executed assertions, and exits non-zero when anything failed;
//   * `--filter=SUBSTR` and `--list` for local debugging.
//
// Fatal ASSERT_* macros return from the *current function*, exactly like
// googletest: use them in void helpers or directly in test bodies.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace axitest {

// ------------------------------------------------------------ value printing

template <typename T, typename = void>
struct is_streamable : std::false_type {};
template <typename T>
struct is_streamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                             << std::declval<const T&>())>>
    : std::true_type {};

template <typename T>
void print_value(std::ostream& os, const T& v) {
  if constexpr (std::is_same_v<T, bool>) {
    os << (v ? "true" : "false");
  } else if constexpr (std::is_enum_v<T>) {
    os << static_cast<long long>(static_cast<std::underlying_type_t<T>>(v));
  } else if constexpr (std::is_integral_v<T>) {
    if constexpr (sizeof(T) == 1) {
      os << +v;  // print char-sized integers numerically
    } else {
      os << v;
    }
  } else if constexpr (is_streamable<T>::value) {
    os << v;
  } else {
    os << "<" << sizeof(T) << "-byte value>";
  }
}

// ------------------------------------------------------------ global state

struct RunState {
  std::uint64_t assertions = 0;  ///< assertion macros executed
  bool current_failed = false;
  std::vector<std::string> failures;  ///< names of failed tests
};

inline RunState& state() {
  static RunState s;
  return s;
}

// ------------------------------------------------------------ failure plumbing

/// Accumulates the user's `<< "context"` stream on a failing assertion.
class Message {
 public:
  template <typename T>
  Message& operator<<(const T& v) {
    print_value(ss_, v);
    return *this;
  }
  std::string str() const { return ss_.str(); }

 private:
  std::ostringstream ss_;
};

/// Reports one failure; the assignment operator exists so the macros can
/// splice the user's streamed message in (`helper = Message() << ...`).
class AssertHelper {
 public:
  AssertHelper(const char* file, int line, std::string summary)
      : file_(file), line_(line), summary_(std::move(summary)) {}

  void operator=(const Message& m) const {
    state().current_failed = true;
    std::printf("%s:%d: Failure\n%s%s%s\n", file_, line_, summary_.c_str(),
                m.str().empty() ? "" : "\n", m.str().c_str());
  }

 private:
  const char* file_;
  int line_;
  std::string summary_;
};

/// Outcome of one evaluated check: truthy when it passed, otherwise carries
/// the pre-rendered failure summary.
struct CheckResult {
  bool passed;
  std::string summary;
  explicit operator bool() const { return passed; }
};

// ------------------------------------------------------------ comparisons

/// Integral comparisons across signedness use the value-correct std::cmp_*
/// helpers (avoids -Wsign-compare and surprises); everything else uses the
/// plain operator.
template <typename T>
inline constexpr bool is_cmp_int =
    std::is_integral_v<T> && !std::is_same_v<T, bool> &&
    !std::is_same_v<T, char> && !std::is_same_v<T, wchar_t> &&
    !std::is_same_v<T, char16_t> && !std::is_same_v<T, char32_t>;

template <typename A, typename B>
inline constexpr bool use_cmp_int =
    is_cmp_int<A> && is_cmp_int<B> &&
    std::is_signed_v<A> != std::is_signed_v<B>;

#define AXITEST_DEFINE_OP_(Name, op, cmp_fn)                        \
  struct Name {                                                     \
    static constexpr const char* text = #op;                        \
    template <typename A, typename B>                               \
    bool operator()(const A& a, const B& b) const {                 \
      if constexpr (use_cmp_int<A, B>) return std::cmp_fn(a, b);    \
      else return a op b;                                           \
    }                                                               \
  };
AXITEST_DEFINE_OP_(OpEq, ==, cmp_equal)
AXITEST_DEFINE_OP_(OpNe, !=, cmp_not_equal)
AXITEST_DEFINE_OP_(OpLt, <, cmp_less)
AXITEST_DEFINE_OP_(OpLe, <=, cmp_less_equal)
AXITEST_DEFINE_OP_(OpGt, >, cmp_greater)
AXITEST_DEFINE_OP_(OpGe, >=, cmp_greater_equal)
#undef AXITEST_DEFINE_OP_

template <typename Op, typename A, typename B>
CheckResult check_cmp(const A& a, const B& b, const char* atxt,
                      const char* btxt) {
  ++state().assertions;
  if (Op{}(a, b)) return {true, {}};
  std::ostringstream ss;
  ss << "Expected: (" << atxt << ") " << Op::text << " (" << btxt
     << "), actual: ";
  print_value(ss, a);
  ss << " vs ";
  print_value(ss, b);
  return {false, ss.str()};
}

template <typename T>
CheckResult check_bool(const T& value, const char* txt, bool expected) {
  ++state().assertions;
  if (static_cast<bool>(value) == expected) return {true, {}};
  std::ostringstream ss;
  ss << "Value of: " << txt << "\n  Actual: " << (expected ? "false" : "true")
     << "\nExpected: " << (expected ? "true" : "false");
  return {false, ss.str()};
}

inline CheckResult check_near(double a, double b, double tol,
                              const char* atxt, const char* btxt) {
  ++state().assertions;
  if (std::fabs(a - b) <= tol) return {true, {}};
  std::ostringstream ss;
  ss << "The difference between " << atxt << " and " << btxt << " is "
     << std::fabs(a - b) << ", which exceeds " << tol << " (" << a << " vs "
     << b << ")";
  return {false, ss.str()};
}

/// 4-ULP almost-equality on the biased (monotone) bit representation, the
/// same definition googletest uses.
template <typename F, typename Bits>
bool almost_equal(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) return false;
  constexpr Bits sign_bit = Bits{1} << (sizeof(F) * 8 - 1);
  const auto biased = [](F f) {
    Bits bits;
    std::memcpy(&bits, &f, sizeof(F));
    return (bits & sign_bit) ? ~bits + 1 : bits | sign_bit;
  };
  const Bits x = biased(a);
  const Bits y = biased(b);
  return (x >= y ? x - y : y - x) <= 4;
}

template <typename F, typename Bits>
CheckResult check_float_eq(F a, F b, const char* atxt, const char* btxt) {
  ++state().assertions;
  if (almost_equal<F, Bits>(a, b)) return {true, {}};
  std::ostringstream ss;
  ss << "Expected near-equality of " << atxt << " and " << btxt << ", actual: "
     << a << " vs " << b;
  return {false, ss.str()};
}

// ------------------------------------------------------------ registration

struct TestCase {
  std::string name;
  std::function<void()> body;
};

inline std::vector<TestCase>& registry() {
  static std::vector<TestCase> tests;
  return tests;
}

inline bool register_test(std::string name, std::function<void()> body) {
  registry().push_back({std::move(name), std::move(body)});
  return true;
}

/// Fixture base (the ::testing::Test shim). SetUp/TearDown are public so
/// the runner can drive any fixture polymorphically.
class Test {
 public:
  virtual ~Test() = default;
  virtual void SetUp() {}
  virtual void TearDown() {}
};

template <typename T>
class TestWithParam : public Test {
 public:
  using ParamType = T;
  const T& GetParam() const { return param_; }
  /// Runner hook: installs the parameter before TestBody runs.
  void InstallParam(const T& p) { param_ = p; }

 private:
  T param_;
};

/// Per-fixture list of TEST_P bodies awaiting INSTANTIATE_TEST_SUITE_P.
/// TEST_P registers into it; INSTANTIATE (textually later in the same TU,
/// so after it in static-init order) crosses patterns with parameters.
template <typename Fixture>
struct ParamPatterns {
  struct Pattern {
    const char* name;
    std::function<void(const typename Fixture::ParamType&)> run;
  };
  static std::vector<Pattern>& get() {
    static std::vector<Pattern> patterns;
    return patterns;
  }
};

template <typename Fixture>
bool register_pattern(
    const char* name,
    std::function<void(const typename Fixture::ParamType&)> run) {
  ParamPatterns<Fixture>::get().push_back({name, std::move(run)});
  return true;
}

// ------------------------------------------------------------ generators

template <typename... A>
struct ValuesGen {
  std::tuple<A...> items;
  template <typename T>
  std::vector<T> get() const {
    std::vector<T> out;
    out.reserve(sizeof...(A));
    std::apply(
        [&](const A&... a) { (out.push_back(static_cast<T>(a)), ...); },
        items);
    return out;
  }
};

template <typename... A>
ValuesGen<std::decay_t<A>...> Values(A&&... a) {
  return {std::tuple<std::decay_t<A>...>(std::forward<A>(a)...)};
}

struct BoolGen {
  template <typename T>
  std::vector<T> get() const {
    return {static_cast<T>(false), static_cast<T>(true)};
  }
};
inline BoolGen Bool() { return {}; }

template <std::size_t I, typename T, typename Lists>
void cartesian_fill(std::vector<T>& out, const Lists& lists, T& current) {
  if constexpr (I == std::tuple_size_v<Lists>) {
    out.push_back(current);
  } else {
    for (const auto& v : std::get<I>(lists)) {
      std::get<I>(current) = v;
      cartesian_fill<I + 1>(out, lists, current);
    }
  }
}

template <typename... G>
struct CombineGen {
  std::tuple<G...> gens;

  template <typename T>
  std::vector<T> get() const {
    return get_impl<T>(std::make_index_sequence<sizeof...(G)>{});
  }

 private:
  template <typename T, std::size_t... I>
  std::vector<T> get_impl(std::index_sequence<I...>) const {
    auto lists = std::make_tuple(
        std::get<I>(gens).template get<std::tuple_element_t<I, T>>()...);
    std::vector<T> out;
    T current{};
    cartesian_fill<0>(out, lists, current);
    return out;
  }
};

template <typename... G>
CombineGen<std::decay_t<G>...> Combine(G&&... g) {
  return {std::tuple<std::decay_t<G>...>(std::forward<G>(g)...)};
}

/// What the optional INSTANTIATE name-generator lambda receives.
template <typename T>
struct TestParamInfo {
  T param;
  std::size_t index;
};

template <typename Fixture, typename Gen, typename Namer>
bool instantiate(const char* prefix, const char* fixture, const Gen& gen,
                 const Namer& namer) {
  if (ParamPatterns<Fixture>::get().empty()) {
    // Unlike a silent no-op (parameterized tests vanishing with a green
    // run), surface the misuse as a failing test: INSTANTIATE must come
    // textually after its TEST_P bodies.
    register_test(
        std::string(prefix) + "/" + fixture + ".MisorderedInstantiation",
        [msg = std::string("INSTANTIATE_TEST_SUITE_P(") + prefix + ", " +
               fixture + ", ...) matched no TEST_P bodies — it must appear "
               "after the TEST_P definitions in the same file"] {
          AssertHelper("tests/test_common.hpp", 0, msg) = Message();
        });
    return false;
  }
  const auto values = gen.template get<typename Fixture::ParamType>();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::string suffix =
        namer(TestParamInfo<typename Fixture::ParamType>{values[i], i});
    for (const auto& pattern : ParamPatterns<Fixture>::get()) {
      register_test(std::string(prefix) + "/" + fixture + "." + pattern.name +
                        "/" + suffix,
                    [run = pattern.run, v = values[i]] { run(v); });
    }
  }
  return true;
}

template <typename Fixture, typename Gen>
bool instantiate(const char* prefix, const char* fixture, const Gen& gen) {
  return instantiate<Fixture>(
      prefix, fixture, gen,
      [](const auto& info) { return std::to_string(info.index); });
}

// ------------------------------------------------------------ runner

inline int run_all_tests(int argc, char** argv) {
  std::string filter;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--filter=", 9) == 0) {
      filter = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list_only = true;
    } else {
      std::fprintf(stderr, "usage: %s [--filter=SUBSTR] [--list]\n", argv[0]);
      return 2;
    }
  }
  auto& tests = registry();
  if (list_only) {
    for (const auto& t : tests) std::printf("%s\n", t.name.c_str());
    return 0;
  }
  std::uint64_t ran = 0;
  for (const auto& t : tests) {
    if (!filter.empty() && t.name.find(filter) == std::string::npos) continue;
    std::printf("[ RUN      ] %s\n", t.name.c_str());
    state().current_failed = false;
    t.body();
    ++ran;
    if (state().current_failed) {
      state().failures.push_back(t.name);
      std::printf("[  FAILED  ] %s\n", t.name.c_str());
    } else {
      std::printf("[       OK ] %s\n", t.name.c_str());
    }
  }
  auto& st = state();
  std::printf("\n%llu/%llu tests passed, %llu assertions executed\n",
              static_cast<unsigned long long>(ran - st.failures.size()),
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(st.assertions));
  if (ran == 0 && !filter.empty()) {
    std::printf("FAILED: filter \"%s\" matched no tests\n", filter.c_str());
    return 1;
  }
  for (const auto& name : st.failures) {
    std::printf("FAILED: %s\n", name.c_str());
  }
  return st.failures.empty() ? 0 : 1;
}

}  // namespace axitest

// gtest-compatible spellings used across tests/.
namespace testing {
using ::axitest::Bool;
using ::axitest::Combine;
using ::axitest::Test;
using ::axitest::TestWithParam;
using ::axitest::Values;
}  // namespace testing

// ------------------------------------------------------------ macros

/// Hardens the `if`-based macros against dangling-else ambiguity.
#define AXITEST_BLOCK_ switch (0) case 0: default:  // NOLINT

#define AXITEST_CHECK_(result_expr, fatal_kw)                                \
  AXITEST_BLOCK_                                                             \
  if (const ::axitest::CheckResult axitest_result_ = (result_expr))          \
    ;                                                                        \
  else                                                                       \
    fatal_kw ::axitest::AssertHelper(__FILE__, __LINE__,                     \
                                     axitest_result_.summary) =              \
        ::axitest::Message()

#define EXPECT_TRUE(c) AXITEST_CHECK_(::axitest::check_bool((c), #c, true), )
#define EXPECT_FALSE(c) AXITEST_CHECK_(::axitest::check_bool((c), #c, false), )
#define ASSERT_TRUE(c) \
  AXITEST_CHECK_(::axitest::check_bool((c), #c, true), return)
#define ASSERT_FALSE(c) \
  AXITEST_CHECK_(::axitest::check_bool((c), #c, false), return)

#define AXITEST_CMP_(Op, a, b, fatal_kw) \
  AXITEST_CHECK_(::axitest::check_cmp<::axitest::Op>((a), (b), #a, #b), \
                 fatal_kw)
#define EXPECT_EQ(a, b) AXITEST_CMP_(OpEq, a, b, )
#define EXPECT_NE(a, b) AXITEST_CMP_(OpNe, a, b, )
#define EXPECT_LT(a, b) AXITEST_CMP_(OpLt, a, b, )
#define EXPECT_LE(a, b) AXITEST_CMP_(OpLe, a, b, )
#define EXPECT_GT(a, b) AXITEST_CMP_(OpGt, a, b, )
#define EXPECT_GE(a, b) AXITEST_CMP_(OpGe, a, b, )
#define ASSERT_EQ(a, b) AXITEST_CMP_(OpEq, a, b, return)
#define ASSERT_NE(a, b) AXITEST_CMP_(OpNe, a, b, return)

#define EXPECT_NEAR(a, b, tol) \
  AXITEST_CHECK_(::axitest::check_near((a), (b), (tol), #a, #b), )
#define EXPECT_FLOAT_EQ(a, b)                                             \
  AXITEST_CHECK_(                                                         \
      (::axitest::check_float_eq<float, std::uint32_t>((a), (b), #a, #b)), )
#define EXPECT_DOUBLE_EQ(a, b)                                              \
  AXITEST_CHECK_(                                                           \
      (::axitest::check_float_eq<double, std::uint64_t>((a), (b), #a, #b)), )

#define TEST(Suite, Name)                                                  \
  static void axitest_##Suite##_##Name##_body();                           \
  static const bool axitest_##Suite##_##Name##_registered =                \
      ::axitest::register_test(#Suite "." #Name,                           \
                               &axitest_##Suite##_##Name##_body);          \
  static void axitest_##Suite##_##Name##_body()

#define TEST_F(Fixture, Name)                                              \
  class AxitestFixture_##Fixture##_##Name : public Fixture {               \
   public:                                                                 \
    void TestBody();                                                       \
  };                                                                       \
  static const bool axitest_f_##Fixture##_##Name##_registered =            \
      ::axitest::register_test(#Fixture "." #Name, [] {                    \
        AxitestFixture_##Fixture##_##Name t;                               \
        t.SetUp();                                                         \
        t.TestBody();                                                      \
        t.TearDown();                                                      \
      });                                                                  \
  void AxitestFixture_##Fixture##_##Name::TestBody()

#define TEST_P(Fixture, Name)                                              \
  class AxitestParam_##Fixture##_##Name : public Fixture {                 \
   public:                                                                 \
    void TestBody();                                                       \
  };                                                                       \
  static const bool axitest_p_##Fixture##_##Name##_registered =            \
      ::axitest::register_pattern<Fixture>(                                \
          #Name, [](const Fixture::ParamType& p) {                         \
            AxitestParam_##Fixture##_##Name t;                             \
            t.InstallParam(p);                                             \
            t.SetUp();                                                     \
            t.TestBody();                                                  \
            t.TearDown();                                                  \
          });                                                              \
  void AxitestParam_##Fixture##_##Name::TestBody()

#define INSTANTIATE_TEST_SUITE_P(Prefix, Fixture, ...)                     \
  static const bool axitest_i_##Prefix##_##Fixture##_registered =          \
      ::axitest::instantiate<Fixture>(#Prefix, #Fixture, __VA_ARGS__)

// Each test binary is a single translation unit; the harness supplies its
// entry point (define AXITEST_NO_MAIN first to opt out).
#ifndef AXITEST_NO_MAIN
int main(int argc, char** argv) { return ::axitest::run_all_tests(argc, argv); }
#endif
