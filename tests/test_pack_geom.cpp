// Packed-stream geometry (pack::PackGeom) and request-regulator
// (pack::Regulator) unit tests: the slot/lane/beat arithmetic every
// converter relies on, with emphasis on partial final beats, and the
// per-lane in-flight accounting that bounds decoupling-queue occupancy.
#include "test_common.hpp"

#include "pack/converter.hpp"

namespace axipack::pack {
namespace {

TEST(PackGeom, ExactMultipleHasNoPartialBeat) {
  // 32-byte bus, 4-byte elements: 8 slots per beat; 24 elements = 3 beats.
  const PackGeom g = PackGeom::make(32, 4, 24);
  EXPECT_EQ(g.lanes, 8u);
  EXPECT_EQ(g.wpe, 1u);
  EXPECT_EQ(g.total_words, 24u);
  EXPECT_EQ(g.beats, 3u);
  for (std::uint64_t b = 0; b < g.beats; ++b) {
    EXPECT_EQ(g.valid_lanes(b), 8u) << "beat " << b;
    EXPECT_EQ(g.beat_useful_bytes(b), 32u) << "beat " << b;
  }
}

TEST(PackGeom, PartialFinalBeatGeometry) {
  // 21 4-byte elements on 8 lanes: beats 0-1 full, beat 2 carries 5 slots.
  const PackGeom g = PackGeom::make(32, 4, 21);
  EXPECT_EQ(g.beats, 3u);
  EXPECT_EQ(g.valid_lanes(0), 8u);
  EXPECT_EQ(g.valid_lanes(1), 8u);
  EXPECT_EQ(g.valid_lanes(2), 5u);
  EXPECT_EQ(g.beat_useful_bytes(2), 20u);
  // Beats past the stream carry nothing.
  EXPECT_EQ(g.valid_lanes(3), 0u);
  EXPECT_EQ(g.beat_useful_bytes(3), 0u);
}

TEST(PackGeom, SingleSlotFinalBeat) {
  // 17 elements: final beat holds exactly one slot (the paper's worst-case
  // padding, one useful word on a 32-byte beat).
  const PackGeom g = PackGeom::make(32, 4, 17);
  EXPECT_EQ(g.beats, 3u);
  EXPECT_EQ(g.valid_lanes(2), 1u);
  EXPECT_EQ(g.beat_useful_bytes(2), 4u);
}

TEST(PackGeom, WideElementsSpanLanes) {
  // 16-byte elements on a 32-byte bus: wpe = 4, two elements per beat.
  // 5 elements = 20 word slots = 2 full beats + 4 slots.
  const PackGeom g = PackGeom::make(32, 16, 5);
  EXPECT_EQ(g.wpe, 4u);
  EXPECT_EQ(g.total_words, 20u);
  EXPECT_EQ(g.beats, 3u);
  EXPECT_EQ(g.valid_lanes(2), 4u);
  EXPECT_EQ(g.beat_useful_bytes(2), 16u);
  // Slot -> element/word mapping: slot 18 is element 4, word 2.
  EXPECT_EQ(g.elem_of_slot(18), 4u);
  EXPECT_EQ(g.word_in_elem(18), 2u);
}

TEST(PackGeom, NarrowBusPartialBeat) {
  // 8-byte bus (64-bit), 4-byte elements: 2 lanes. 7 elements = 4 beats,
  // last with one slot.
  const PackGeom g = PackGeom::make(8, 4, 7);
  EXPECT_EQ(g.lanes, 2u);
  EXPECT_EQ(g.beats, 4u);
  EXPECT_EQ(g.valid_lanes(3), 1u);
  EXPECT_EQ(g.beat_useful_bytes(3), 4u);
}

TEST(PackGeom, SlotLaneMappingIsFixed) {
  // Slot s is always served by lane s % lanes: the property that lets each
  // lane run an independent request pointer.
  const PackGeom g = PackGeom::make(32, 4, 40);
  for (std::uint64_t beat = 0; beat < g.beats; ++beat) {
    for (unsigned lane = 0; lane < g.lanes; ++lane) {
      const std::uint64_t s = g.slot(beat, lane);
      EXPECT_EQ(s % g.lanes, lane);
      EXPECT_EQ(s / g.lanes, beat);
    }
  }
}

TEST(PackGeom, EmptyStream) {
  const PackGeom g = PackGeom::make(32, 4, 0);
  EXPECT_EQ(g.beats, 0u);
  EXPECT_EQ(g.total_words, 0u);
  EXPECT_EQ(g.valid_lanes(0), 0u);
  EXPECT_EQ(g.beat_useful_bytes(0), 0u);
  EXPECT_FALSE(g.slot_valid(0));
}

TEST(Regulator, BoundsPerLaneInFlight) {
  Regulator reg(/*lanes=*/4, /*depth=*/3);
  for (unsigned lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(reg.in_flight(lane), 0u);
    EXPECT_TRUE(reg.can_issue(lane));
  }
  // Fill lane 1 to the depth limit.
  for (unsigned i = 0; i < 3; ++i) {
    ASSERT_TRUE(reg.can_issue(1)) << "issue " << i;
    reg.on_issue(1);
  }
  EXPECT_EQ(reg.in_flight(1), 3u);
  EXPECT_FALSE(reg.can_issue(1));
  // Other lanes are accounted independently.
  EXPECT_TRUE(reg.can_issue(0));
  EXPECT_TRUE(reg.can_issue(2));
  EXPECT_TRUE(reg.can_issue(3));
  // Retiring one word frees exactly one slot.
  reg.on_retire(1);
  EXPECT_EQ(reg.in_flight(1), 2u);
  EXPECT_TRUE(reg.can_issue(1));
}

TEST(Regulator, IssueRetireCyclesConserveCounts) {
  Regulator reg(2, 2);
  for (int cycle = 0; cycle < 100; ++cycle) {
    if (reg.can_issue(0)) reg.on_issue(0);
    if (cycle % 2 == 1 && reg.in_flight(0) > 0) reg.on_retire(0);
  }
  // Steady state: occupancy never exceeded depth and ends within bounds.
  EXPECT_LE(reg.in_flight(0), 2u);
  // Lane 1 was never touched.
  EXPECT_EQ(reg.in_flight(1), 0u);
  EXPECT_TRUE(reg.can_issue(1));
}

TEST(Regulator, DepthOneSerializes) {
  Regulator reg(1, 1);
  EXPECT_TRUE(reg.can_issue(0));
  reg.on_issue(0);
  EXPECT_FALSE(reg.can_issue(0));
  reg.on_retire(0);
  EXPECT_TRUE(reg.can_issue(0));
  EXPECT_EQ(reg.in_flight(0), 0u);
}

}  // namespace
}  // namespace axipack::pack
