// DRAM timing-model tests: address-mapping policies, timing-constraint
// legality (every granted command sequence respects tRCD/tCAS/tRP/tRAS/tCCD
// and the refresh windows), refresh-window guarantees, row-hit/miss stat
// accounting, and in-order variable-latency responses.
#include "test_common.hpp"

#include <map>
#include <set>
#include <memory>
#include <vector>

#include "mem/backing_store.hpp"
#include "mem/dram_memory.hpp"
#include "mem/dram_timing.hpp"
#include "util/rng.hpp"
#include "word_driver.hpp"

namespace axipack::mem {
namespace {

constexpr std::uint64_t kBase = 0x8000'0000ull;

// ---------------------------------------------------------------- mapping

TEST(DramAddressMap, RowInterleavedFillsARowBeforeSwitchingBanks) {
  // 4 banks x 8-word rows: words 0..7 -> bank 0 row 0, words 8..15 ->
  // bank 1 row 0, ..., words 32..39 -> bank 0 row 1.
  DramAddressMap map(4, 8, DramMapping::row_interleaved);
  for (std::uint64_t w = 0; w < 8; ++w) {
    EXPECT_EQ(map.bank_of(w), 0u) << "word " << w;
    EXPECT_EQ(map.row_of(w), 0u);
    EXPECT_EQ(map.column_of(w), static_cast<unsigned>(w));
  }
  EXPECT_EQ(map.bank_of(8), 1u);
  EXPECT_EQ(map.bank_of(31), 3u);
  EXPECT_EQ(map.bank_of(32), 0u);
  EXPECT_EQ(map.row_of(32), 1u);
  EXPECT_EQ(map.column_of(33), 1u);
}

TEST(DramAddressMap, BankInterleavedRotatesBanksPerWord) {
  // 4 banks x 8-word rows: consecutive words rotate across banks; each
  // bank's row fills every 4th word.
  DramAddressMap map(4, 8, DramMapping::bank_interleaved);
  for (std::uint64_t w = 0; w < 16; ++w) {
    EXPECT_EQ(map.bank_of(w), static_cast<unsigned>(w % 4)) << "word " << w;
  }
  EXPECT_EQ(map.row_of(0), 0u);
  EXPECT_EQ(map.column_of(4), 1u);   // second in-row word of bank 0
  EXPECT_EQ(map.row_of(31), 0u);     // 31/4 = 7 < 8 -> still row 0
  EXPECT_EQ(map.row_of(32), 1u);     // 32/4 = 8 -> row 1
}

TEST(DramAddressMap, PoliciesCoverAllBanks) {
  for (const auto policy :
       {DramMapping::row_interleaved, DramMapping::bank_interleaved,
        DramMapping::permuted}) {
    DramAddressMap map(16, 32, policy);
    std::vector<bool> seen(16, false);
    for (std::uint64_t w = 0; w < 16 * 32; ++w) seen[map.bank_of(w)] = true;
    for (unsigned b = 0; b < 16; ++b) {
      EXPECT_TRUE(seen[b]) << dram_mapping_name(policy) << " bank " << b;
    }
  }
}

TEST(DramAddressMap, PermutedCoversEveryBankPerAlignedBlock) {
  // Within one aligned 16-word block the fold's upper terms are constant,
  // so a wide sequential beat still engages every bank exactly once.
  DramAddressMap map(16, 512, DramMapping::permuted);
  for (std::uint64_t block = 0; block < 64; ++block) {
    std::set<unsigned> banks;
    for (std::uint64_t w = 0; w < 16; ++w) {
      banks.insert(map.bank_of(block * 16 + w));
    }
    EXPECT_EQ(banks.size(), 16u) << "block " << block;
  }
}

TEST(DramAddressMap, PermutedBreaksPowerOfTwoStridePathology) {
  // The DRAM analogue of the paper's Fig. 5b prime-bank argument: plain
  // bank interleaving collapses power-of-two word strides onto one bank;
  // XOR folding spreads them out. (DRAM bank counts are powers of two, so
  // the SRAM trick of a prime bank count is not available.)
  DramAddressMap plain(16, 512, DramMapping::bank_interleaved);
  DramAddressMap permuted(16, 512, DramMapping::permuted);
  for (const std::uint64_t stride : {16ull, 256ull, 4096ull}) {
    std::set<unsigned> plain_banks;
    std::set<unsigned> permuted_banks;
    for (std::uint64_t i = 0; i < 64; ++i) {
      plain_banks.insert(plain.bank_of(i * stride));
      permuted_banks.insert(permuted.bank_of(i * stride));
    }
    EXPECT_EQ(plain_banks.size(), 1u) << "stride " << stride;
    EXPECT_GE(permuted_banks.size(), 8u) << "stride " << stride;
  }
}

// ---------------------------------------------------------------- harness

/// Small driving harness around the shared replay loop (word_driver.hpp):
/// enqueue per-port requests, then run() until every response arrived.
struct DramHarness {
  explicit DramHarness(const DramMemoryConfig& cfg)
      : store(kBase, 1 << 22), mem(kernel, store, cfg) {
    mem.set_trace(&trace);
    pending.resize(cfg.num_ports);
    for (std::uint32_t i = 0; i < (1u << 16); ++i) {
      store.write_u32(kBase + 4ull * i, i * 2654435761u);
    }
  }

  void enqueue(unsigned port, std::uint64_t addr, bool write = false,
               std::uint32_t wdata = 0) {
    WordReq req;
    req.addr = addr;
    req.write = write;
    req.wdata = wdata;
    req.wstrb = 0xF;
    req.tag = static_cast<std::uint32_t>(pending[port].size());
    pending[port].push_back(req);
  }

  /// Runs until every enqueued request has a response. Returns false on
  /// deadline (a scheduler deadlock).
  bool run(sim::Cycle max_cycles = 2'000'000) {
    return testutil::replay_word_requests(kernel, mem, pending, responses,
                                          max_cycles);
  }

  sim::Kernel kernel;
  BackingStore store;
  DramMemory mem;
  std::vector<DramGrant> trace;
  std::vector<std::vector<WordReq>> pending;
  std::vector<std::vector<WordResp>> responses;
};

/// Strict, easily-distinguishable timing set for the legality checks.
DramMemoryConfig strict_cfg() {
  DramMemoryConfig cfg;
  cfg.num_ports = 4;
  cfg.timing.bank_groups = 2;
  cfg.timing.banks_per_group = 2;
  cfg.timing.row_words = 16;
  cfg.timing.tRCD = 5;
  cfg.timing.tCAS = 4;
  cfg.timing.tRP = 6;
  cfg.timing.tRAS = 20;
  cfg.timing.tCCD = 3;
  cfg.timing.tREFI = 400;
  cfg.timing.tRFC = 60;
  return cfg;
}

/// Validates every timing rule a grant trace can violate; `what` labels
/// failures. All command times are reconstructed from the grant records:
/// hit -> column at grant; closed -> activate at grant, column tRCD later;
/// miss -> precharge at grant, activate tRP later, column tRCD after that.
void check_trace_legality(const std::vector<DramGrant>& trace,
                          const DramTimingConfig& t, const char* what) {
  struct BankView {
    bool seen = false;
    std::uint64_t open_row = 0;
    sim::Cycle act_at = 0;
    sim::Cycle last_col = 0;
    sim::Cycle last_grant = 0;
  };
  std::map<unsigned, BankView> banks;
  const auto in_refresh_window = [&](sim::Cycle c) {
    return t.tREFI != 0 && c >= t.tREFI && (c % t.tREFI) < t.tRFC;
  };
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const DramGrant& g = trace[i];
    BankView& b = banks[g.bank];
    sim::Cycle act = 0;
    sim::Cycle col = 0;
    switch (g.kind) {
      case DramGrant::Kind::hit:
        col = g.cycle;
        ASSERT_TRUE(b.seen) << what << ": grant " << i
                            << " hits a never-opened bank";
        EXPECT_EQ(b.open_row, g.row) << what << ": grant " << i;
        // A refresh between the opening grant and this one would have
        // closed the row.
        if (t.tREFI != 0) {
          EXPECT_EQ(g.cycle / t.tREFI, b.last_grant / t.tREFI)
              << what << ": grant " << i << " hit across a refresh";
        }
        break;
      case DramGrant::Kind::closed:
        act = g.cycle;
        col = g.cycle + t.tRCD;
        break;
      case DramGrant::Kind::miss:
        act = g.cycle + t.tRP;
        col = g.cycle + t.tRP + t.tRCD;
        ASSERT_TRUE(b.seen) << what << ": grant " << i
                            << " misses a never-opened bank";
        EXPECT_NE(b.open_row, g.row) << what << ": grant " << i;
        // Precharge legality: tRAS since the activate that opened the row.
        EXPECT_GE(g.cycle, b.act_at + t.tRAS) << what << ": grant " << i;
        break;
    }
    EXPECT_EQ(g.data_at, col + t.tCAS) << what << ": grant " << i;
    if (b.seen) {
      EXPECT_GE(col, b.last_col + t.tCCD)
          << what << ": grant " << i << " violates tCCD on bank " << g.bank;
    }
    if (g.kind != DramGrant::Kind::hit) {
      EXPECT_FALSE(in_refresh_window(act))
          << what << ": grant " << i << " activates inside a refresh window";
      // tRCD held between this activate and its column command.
      EXPECT_EQ(col, act + t.tRCD) << what << ": grant " << i;
      b.act_at = act;
      b.open_row = g.row;
    }
    EXPECT_FALSE(in_refresh_window(col))
        << what << ": grant " << i << " issues a column inside a refresh";
    b.last_col = col;
    b.last_grant = g.cycle;
    b.seen = true;
  }
}

// ---------------------------------------------------------------- legality

TEST(DramTiming, RandomTrafficObeysAllConstraints) {
  for (const auto policy :
       {DramMapping::row_interleaved, DramMapping::bank_interleaved,
        DramMapping::permuted}) {
    DramMemoryConfig cfg = strict_cfg();
    cfg.timing.mapping = policy;
    DramHarness h(cfg);
    util::Rng rng(7 + static_cast<std::uint64_t>(policy));
    // A small region (few rows per bank) maximizes hit/miss/conflict mix.
    for (int i = 0; i < 600; ++i) {
      const unsigned port = static_cast<unsigned>(rng.below(cfg.num_ports));
      const std::uint64_t word = rng.below(4 * 16 * 6);  // ~6 rows per bank
      const bool write = rng.below(4) == 0;
      h.enqueue(port, kBase + 4 * word, write,
                static_cast<std::uint32_t>(rng.next()));
    }
    ASSERT_TRUE(h.run()) << dram_mapping_name(policy);
    ASSERT_EQ(h.trace.size(), 600u);
    check_trace_legality(h.trace, cfg.timing, dram_mapping_name(policy));
  }
}

TEST(DramTiming, SameBankStreamRespectsTccd) {
  DramMemoryConfig cfg = strict_cfg();
  cfg.timing.mapping = DramMapping::row_interleaved;
  cfg.timing.tREFI = 0;  // isolate tCCD from refresh noise
  DramHarness h(cfg);
  // 32 accesses inside one 16-word row: row-interleaved, all in bank 0.
  for (int i = 0; i < 32; ++i) h.enqueue(0, kBase + 4ull * (i % 16));
  ASSERT_TRUE(h.run());
  ASSERT_EQ(h.trace.size(), 32u);
  for (std::size_t i = 1; i < h.trace.size(); ++i) {
    EXPECT_EQ(h.trace[i].bank, h.trace[0].bank);
    const sim::Cycle col_prev =
        h.trace[i - 1].data_at - cfg.timing.tCAS;
    const sim::Cycle col = h.trace[i].data_at - cfg.timing.tCAS;
    EXPECT_GE(col, col_prev + cfg.timing.tCCD) << "grant " << i;
  }
}

TEST(DramTiming, RefreshClosesRowsAndStallsTraffic) {
  DramMemoryConfig cfg = strict_cfg();
  cfg.timing.mapping = DramMapping::row_interleaved;
  DramHarness h(cfg);
  // Saturate one bank for several refresh intervals.
  for (int i = 0; i < 900; ++i) h.enqueue(0, kBase + 4ull * (i % 16));
  ASSERT_TRUE(h.run());
  check_trace_legality(h.trace, cfg.timing, "refresh stream");
  // The stream crossed refresh windows: some accesses re-opened the row
  // behind a refresh (closed kind, not the first), and stall cycles were
  // attributed.
  std::uint64_t closed = 0;
  for (const auto& g : h.trace) {
    if (g.kind == DramGrant::Kind::closed) ++closed;
  }
  EXPECT_GT(closed, 1u);
  EXPECT_GT(h.mem.stats().refresh_stall_cycles, 0u);
  // No grant's data returns inside the window either (the sequence is
  // scheduled entirely before or after it).
  for (const auto& g : h.trace) {
    const sim::Cycle col = g.data_at - cfg.timing.tCAS;
    EXPECT_FALSE(col >= cfg.timing.tREFI &&
                 (col % cfg.timing.tREFI) < cfg.timing.tRFC)
        << "column command inside refresh window";
  }
}

TEST(DramTiming, DisabledRefreshNeverStalls) {
  DramMemoryConfig cfg = strict_cfg();
  cfg.timing.mapping = DramMapping::row_interleaved;  // one bank, one row
  cfg.timing.tREFI = 0;
  DramHarness h(cfg);
  for (int i = 0; i < 900; ++i) h.enqueue(0, kBase + 4ull * (i % 16));
  ASSERT_TRUE(h.run());
  EXPECT_EQ(h.mem.stats().refresh_stall_cycles, 0u);
  // One activate to open the row, everything else streams as hits.
  EXPECT_EQ(h.mem.stats().row_misses, 1u);
  EXPECT_EQ(h.mem.stats().row_hits, 899u);
}

// ---------------------------------------------------------------- stats

TEST(DramStats, HitsPlusMissesEqualsGrantsAndMatchTrace) {
  DramMemoryConfig cfg = strict_cfg();
  DramHarness h(cfg);
  util::Rng rng(99);
  for (int i = 0; i < 400; ++i) {
    h.enqueue(static_cast<unsigned>(rng.below(cfg.num_ports)),
              kBase + 4 * rng.below(1024), rng.below(3) == 0,
              static_cast<std::uint32_t>(rng.next()));
  }
  ASSERT_TRUE(h.run());
  const DramStats& s = h.mem.stats();
  EXPECT_EQ(s.grants, 400u);
  EXPECT_EQ(s.row_hits + s.row_misses, s.grants);
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& g : h.trace) {
    if (g.kind == DramGrant::Kind::hit) {
      ++hits;
    } else {
      ++misses;
    }
  }
  EXPECT_EQ(s.row_hits, hits);
  EXPECT_EQ(s.row_misses, misses);
  EXPECT_GT(s.row_hits, 0u);
  EXPECT_GT(s.row_misses, 0u);
}

TEST(DramStats, MappingPolicyShapesRowHitRatio) {
  // One long sequential stream on one port: row-interleaved keeps one bank
  // streaming its row (high hit ratio); bank-interleaved touches every
  // bank but still walks each bank's row in order — both should be hit-
  // heavy, and *neither* may disagree with the trace-derived ratio.
  for (const auto policy :
       {DramMapping::row_interleaved, DramMapping::bank_interleaved}) {
    DramMemoryConfig cfg = strict_cfg();
    cfg.timing.mapping = policy;
    cfg.timing.tREFI = 0;
    DramHarness h(cfg);
    for (int i = 0; i < 512; ++i) h.enqueue(0, kBase + 4ull * i);
    ASSERT_TRUE(h.run()) << dram_mapping_name(policy);
    const DramStats& s = h.mem.stats();
    // Row-interleaved: one activate per 16-word row = 32 misses.
    // Bank-interleaved: one activate per bank per 64-word span = 32 too
    // (4 banks x 16-word rows cover 64 words).
    EXPECT_EQ(s.row_misses, 512u / cfg.timing.row_words);
    EXPECT_GT(s.row_hit_ratio(), 0.9) << dram_mapping_name(policy);
  }
}

// ---------------------------------------------------------------- batching

/// strict_cfg with FIFOs deep enough for the full lookahead window, so the
/// row-batching scheduler actually reorders (the base strict_cfg keeps the
/// seed depth of 2, which bounds the effective window to 2).
DramMemoryConfig batched_cfg() {
  DramMemoryConfig cfg = strict_cfg();
  cfg.req_depth = 32;
  cfg.sched_window = 32;
  cfg.starve_cap = 48;
  return cfg;
}

TEST(DramBatching, RandomTrafficWithDeepWindowsObeysAllConstraints) {
  // The batched scheduler reorders grants, but every reconstructed command
  // sequence must still satisfy the full timing rule set, and per-port
  // responses must still return in request order.
  for (const auto policy :
       {DramMapping::row_interleaved, DramMapping::bank_interleaved,
        DramMapping::permuted}) {
    DramMemoryConfig cfg = batched_cfg();
    cfg.timing.mapping = policy;
    DramHarness h(cfg);
    util::Rng rng(11 + static_cast<std::uint64_t>(policy));
    for (int i = 0; i < 800; ++i) {
      const unsigned port = static_cast<unsigned>(rng.below(cfg.num_ports));
      const std::uint64_t word = rng.below(4 * 16 * 6);  // ~6 rows per bank
      const bool write = rng.below(4) == 0;
      h.enqueue(port, kBase + 4 * word, write,
                static_cast<std::uint32_t>(rng.next()));
    }
    ASSERT_TRUE(h.run()) << dram_mapping_name(policy);
    ASSERT_EQ(h.trace.size(), 800u);
    check_trace_legality(h.trace, cfg.timing, dram_mapping_name(policy));
    for (unsigned p = 0; p < cfg.num_ports; ++p) {
      for (std::uint32_t i = 0; i < h.responses[p].size(); ++i) {
        EXPECT_EQ(h.responses[p][i].tag, i)
            << dram_mapping_name(policy) << " port " << p;
      }
    }
  }
}

TEST(DramBatching, InterleavedTwoRowStreamsBatchOnTheOpenRow) {
  // The PR-3 pathology in miniature: every port alternates between two
  // rows of the same bank (the index/gather interleave). Head-only
  // scheduling ping-pongs the row buffer on every access; the batched
  // scheduler must recover most of the locality — and return identical
  // data.
  auto run_with = [](std::size_t window, double* hit_ratio,
                     std::vector<std::vector<WordResp>>* responses) {
    DramMemoryConfig cfg = batched_cfg();
    cfg.sched_window = window;
    cfg.timing.mapping = DramMapping::row_interleaved;
    cfg.timing.tREFI = 0;
    DramHarness h(cfg);
    // 4 banks x 16-word rows: words 0..15 = (bank 0, row 0) and words
    // 64..79 = (bank 0, row 1). One port interleaves the two rows at
    // word granularity — the index/gather shape — so a head-only
    // scheduler swaps the row on every access.
    for (int i = 0; i < 128; ++i) {
      const std::uint64_t word =
          static_cast<std::uint64_t>(i % 2) * 64 + (i / 2) % 16;
      h.enqueue(0, kBase + 4 * word);
    }
    ASSERT_TRUE(h.run());
    *hit_ratio = h.mem.stats().row_hit_ratio();
    *responses = h.responses;
  };
  double hit_plain = 0.0, hit_batched = 0.0;
  std::vector<std::vector<WordResp>> resp_plain, resp_batched;
  run_with(1, &hit_plain, &resp_plain);
  run_with(32, &hit_batched, &resp_batched);
  // Head-only: nearly every access swaps rows. Batched: long same-row runs.
  EXPECT_LT(hit_plain, 0.2);
  EXPECT_GT(hit_batched, 0.6);
  EXPECT_GT(hit_batched, hit_plain + 0.4);
  ASSERT_EQ(resp_plain.size(), resp_batched.size());
  for (std::size_t p = 0; p < resp_plain.size(); ++p) {
    ASSERT_EQ(resp_plain[p].size(), resp_batched[p].size()) << "port " << p;
    for (std::size_t i = 0; i < resp_plain[p].size(); ++i) {
      EXPECT_EQ(resp_plain[p][i].tag, resp_batched[p][i].tag);
      EXPECT_EQ(resp_plain[p][i].rdata, resp_batched[p][i].rdata)
          << "port " << p << " resp " << i;
    }
  }
}

TEST(DramBatching, StarvationCapBoundsDeferral) {
  // Port 1 streams row hits forever; port 0 wants a different row of the
  // same bank. The batching veto and hit-priority may defer port 0's miss
  // for at most starve_cap grantable cycles (plus bounded timing slack) —
  // then the miss must win.
  DramMemoryConfig cfg = batched_cfg();
  cfg.timing.mapping = DramMapping::row_interleaved;
  cfg.timing.tREFI = 0;
  DramHarness h(cfg);
  sim::Kernel& k = h.kernel;
  mem::WordPort& hot = h.mem.port(1);
  mem::WordPort& starving = h.mem.port(0);
  // Drive manually: keep port 1's request FIFO full of row-0 hits, inject
  // one row-1 access on port 0, drain all responses.
  const std::uint64_t kMissWord = 64;  // (bank 0, row 1)
  sim::Cycle miss_enqueued_at = 0;
  std::uint32_t hits = 0;
  for (sim::Cycle c = 0; c < 3000; ++c) {
    while (hot.req.can_push()) {
      WordReq rq;
      rq.addr = kBase + 4 * (hits % 16);
      rq.tag = hits++;
      hot.req.push(rq);
    }
    if (c == 50 && starving.req.can_push()) {
      WordReq rq;
      rq.addr = kBase + 4 * kMissWord;
      rq.tag = 7777;
      starving.req.push(rq);
      miss_enqueued_at = k.now();
    }
    while (hot.resp.can_pop()) hot.resp.pop();
    while (starving.resp.can_pop()) starving.resp.pop();
    k.step();
  }
  ASSERT_TRUE(miss_enqueued_at > 0);
  const DramGrant* miss_grant = nullptr;
  for (const auto& g : h.trace) {
    if (g.port == 0) {
      miss_grant = &g;
      break;
    }
  }
  ASSERT_TRUE(miss_grant != nullptr) << "starved request never granted";
  // Bound: visibility + deferral budget + one full row cycle of slack.
  const sim::Cycle slack = cfg.timing.tRAS + cfg.timing.tRP +
                           cfg.timing.tRCD + cfg.timing.tCAS + 8;
  EXPECT_LE(miss_grant->cycle, miss_enqueued_at + cfg.starve_cap + slack);
  EXPECT_GE(h.mem.stats().starved_grants, 1u);
}

TEST(DramBatching, BackpressuredPortIsNeverStarvedOrWedged) {
  // Regression (PR-3 head scan treated response backpressure as "no
  // request", which could starve a slowly-draining port): response-path
  // backpressure must not cost a port its scheduling position. With a
  // single-slot response FIFO that is never proactively drained, the
  // port's same-row read is still served from the open row before a
  // competing miss closes it, responses arrive in order, and everything
  // completes.
  DramMemoryConfig cfg = batched_cfg();
  cfg.resp_depth = 1;  // single-slot response path: trivially backpressured
  cfg.timing.mapping = DramMapping::row_interleaved;
  cfg.timing.tREFI = 0;
  DramHarness h(cfg);
  sim::Kernel& k = h.kernel;
  mem::WordPort& victim = h.mem.port(0);
  mem::WordPort& closer = h.mem.port(2);
  // Victim: two row-0 reads. The first response fills the 1-deep FIFO and
  // is only drained lazily; the second (a row-0 hit) must not lose its
  // slot to the competing row-1 miss pushed right behind it.
  for (int i = 0; i < 2; ++i) {
    WordReq rq;
    rq.addr = kBase + 4ull * static_cast<std::uint64_t>(i);
    rq.tag = static_cast<std::uint32_t>(i);
    victim.req.push(rq);
  }
  {
    WordReq rq;
    rq.addr = kBase + 4 * 64;  // (bank 0, row 1): would close row 0
    rq.tag = 99;
    closer.req.push(rq);
  }
  // Drain lazily (one pop every 16 cycles) until all three responses
  // arrived — a port draining slowly must still be served completely.
  std::vector<WordResp> victim_resps;
  std::size_t closer_resps = 0;
  for (sim::Cycle c = 0; c < 2000 && victim_resps.size() + closer_resps < 3;
       ++c) {
    if (c % 16 == 0) {
      if (victim.resp.can_pop()) victim_resps.push_back(victim.resp.pop());
      if (closer.resp.can_pop()) {
        closer.resp.pop();
        ++closer_resps;
      }
    }
    k.step();
  }
  ASSERT_EQ(victim_resps.size(), 2u);
  ASSERT_EQ(closer_resps, 1u);
  EXPECT_EQ(victim_resps[0].tag, 0u);
  EXPECT_EQ(victim_resps[1].tag, 1u);
  ASSERT_TRUE(h.trace.size() == 3);
  const DramGrant* second = nullptr;
  const DramGrant* miss = nullptr;
  for (const auto& g : h.trace) {
    if (g.port == 0) second = &g;  // last port-0 grant = the row-0 hit
    if (g.port == 2) miss = &g;
  }
  ASSERT_TRUE(second != nullptr && miss != nullptr);
  EXPECT_EQ(second->kind, DramGrant::Kind::hit)
      << "backpressured same-row read was not served from the open row";
  EXPECT_LT(second->cycle, miss->cycle)
      << "competing miss closed the row ahead of the pending hit";
}

TEST(DramBatching, DeepGrantNeverWedgesAShallowResponsePath) {
  // Regression (found in review): with resp_depth < sched_window, a deep
  // out-of-order grant must never consume budget the older head needs —
  // the release stage holds granted responses until the response FIFO
  // drains, and the head stays grantable. Shape that wedged: the head is
  // a row conflict on one bank while a deeper read targets another,
  // immediately grantable bank.
  DramMemoryConfig cfg = batched_cfg();
  cfg.resp_depth = 1;
  cfg.timing.mapping = DramMapping::row_interleaved;
  cfg.timing.tREFI = 0;
  DramHarness h(cfg);
  // Open row 0 of bank 1 (words 16..31), then make port 0's head a row
  // conflict on bank 1 while its next entry reads the closed bank 0.
  h.enqueue(1, kBase + 4 * 16);        // (bank 1, row 0): opens the row
  h.enqueue(0, kBase + 4 * (16 + 64)); // (bank 1, row 1): head, conflict
  h.enqueue(0, kBase + 4 * 0);         // (bank 0, closed): deep grant
  h.enqueue(0, kBase + 4 * 17);        // more behind the head
  ASSERT_TRUE(h.run(200'000)) << "port wedged behind its own deep grant";
  ASSERT_EQ(h.responses[0].size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(h.responses[0][i].tag, i) << "response " << i;
  }
}

TEST(DramOrdering, SameWordProgramOrderSurvivesReordering) {
  // One port issues read/write/read/write/read on one word, interleaved
  // with same-row-adjacent traffic that invites reordering: word-level
  // dependencies must hold (each read sees the latest older write), and
  // responses return in request order.
  DramMemoryConfig cfg = batched_cfg();
  cfg.timing.mapping = DramMapping::row_interleaved;
  cfg.timing.tREFI = 0;
  DramHarness h(cfg);
  const std::uint64_t kWord = 5;
  const std::uint32_t original = h.store.read_u32(kBase + 4 * kWord);
  h.enqueue(0, kBase + 4 * kWord);                    // read: original
  h.enqueue(0, kBase + 4 * 64);                       // row 1: provokes OOO
  h.enqueue(0, kBase + 4 * kWord, true, 0x11111111);  // write
  h.enqueue(0, kBase + 4 * 65);                       // row 1
  h.enqueue(0, kBase + 4 * kWord);                    // read: 0x11111111
  h.enqueue(0, kBase + 4 * kWord, true, 0x22222222);  // write
  h.enqueue(0, kBase + 4 * kWord);                    // read: 0x22222222
  ASSERT_TRUE(h.run());
  ASSERT_EQ(h.responses[0].size(), 7u);
  for (std::uint32_t i = 0; i < 7; ++i) {
    EXPECT_EQ(h.responses[0][i].tag, i) << "response " << i;
  }
  EXPECT_EQ(h.responses[0][0].rdata, original);
  EXPECT_EQ(h.responses[0][4].rdata, 0x11111111u);
  EXPECT_EQ(h.responses[0][6].rdata, 0x22222222u);
  EXPECT_EQ(h.store.read_u32(kBase + 4 * kWord), 0x22222222u);
}

TEST(DramStats, BatchedAccountingMatchesTraceAndExercisesDeferral) {
  // Under the batching scheduler the stat counters must still agree with
  // the trace (a batched hit after a deferred close is a real hit; a
  // starved grant is a real miss), and the two-row interleave must
  // actually exercise the deferral path.
  DramMemoryConfig cfg = batched_cfg();
  cfg.timing.mapping = DramMapping::row_interleaved;
  cfg.timing.tREFI = 0;
  DramHarness h(cfg);
  util::Rng rng(1234);
  for (int i = 0; i < 600; ++i) {
    const unsigned port = static_cast<unsigned>(rng.below(cfg.num_ports));
    // Rows 0 and 1 of bank 0 plus a sprinkle of other banks.
    const std::uint64_t word =
        rng.below(3) == 0 ? 16 + rng.below(32) : (rng.below(2) * 64 + rng.below(16));
    h.enqueue(port, kBase + 4 * word, rng.below(5) == 0,
              static_cast<std::uint32_t>(rng.next()));
  }
  ASSERT_TRUE(h.run());
  const DramStats& s = h.mem.stats();
  EXPECT_EQ(s.grants, 600u);
  EXPECT_EQ(s.row_hits + s.row_misses, s.grants);
  std::uint64_t hits = 0, misses = 0;
  for (const auto& g : h.trace) {
    if (g.kind == DramGrant::Kind::hit) {
      ++hits;
    } else {
      ++misses;
    }
  }
  EXPECT_EQ(s.row_hits, hits);
  EXPECT_EQ(s.row_misses, misses);
  EXPECT_GT(s.batch_defer_cycles, 0u) << "deferral path never exercised";
}

// ---------------------------------------------------------------- ordering

TEST(DramOrdering, VariableLatencyResponsesStayInRequestOrder) {
  DramMemoryConfig cfg = strict_cfg();
  cfg.timing.tREFI = 0;
  // Port 0 alternates rows within one bank (row-interleaved): latencies
  // differ between hits and misses, response order must not.
  cfg.timing.mapping = DramMapping::row_interleaved;
  DramHarness h(cfg);
  for (int i = 0; i < 24; ++i) {
    const std::uint64_t row = static_cast<std::uint64_t>(i % 3);
    h.enqueue(0, kBase + 4ull * (row * 16 + static_cast<std::uint64_t>(i)));
  }
  ASSERT_TRUE(h.run());
  ASSERT_EQ(h.responses[0].size(), 24u);
  for (std::uint32_t i = 0; i < 24; ++i) {
    EXPECT_EQ(h.responses[0][i].tag, i) << "response " << i;
  }
}

TEST(DramOrdering, ReadsReturnStoreContentsAndWritesLand) {
  DramMemoryConfig cfg = strict_cfg();
  DramHarness h(cfg);
  h.enqueue(0, kBase + 4 * 100);                       // read original
  h.enqueue(0, kBase + 4 * 100, true, 0xDEADBEEF);     // overwrite
  h.enqueue(0, kBase + 4 * 100);                       // read back
  ASSERT_TRUE(h.run());
  ASSERT_EQ(h.responses[0].size(), 3u);
  EXPECT_EQ(h.responses[0][0].rdata, 100u * 2654435761u);
  EXPECT_TRUE(h.responses[0][1].was_write);
  EXPECT_EQ(h.responses[0][2].rdata, 0xDEADBEEFu);
  EXPECT_EQ(h.store.read_u32(kBase + 4 * 100), 0xDEADBEEFu);
}

// ----------------------------------------------------- sleep and refresh

/// Drives `h` through alternating traffic bursts and fully-idle spans,
/// each span long enough that the gated kernel's fast-forward jumps
/// several tREFI epochs in one step. Returns the drained response sets
/// per burst for cross-harness comparison.
std::vector<std::vector<std::vector<WordResp>>> drive_bursty_with_gaps(
    DramHarness& h, const DramMemoryConfig& cfg) {
  std::vector<std::vector<std::vector<WordResp>>> per_burst;
  util::Rng rng(7);
  for (int burst = 0; burst < 6; ++burst) {
    for (auto& q : h.pending) q.clear();
    for (int i = 0; i < 12; ++i) {
      const unsigned port =
          static_cast<unsigned>(rng.next() % cfg.num_ports);
      const bool write = (rng.next() & 7) == 0;
      h.enqueue(port, kBase + 4ull * (rng.next() % (1u << 12)), write,
                static_cast<std::uint32_t>(rng.next()));
    }
    EXPECT_TRUE(h.run()) << "burst " << burst;
    per_burst.push_back(h.responses);
    // Idle span: no traffic at all, crossing several refresh epochs. The
    // refresh sweep is caught up lazily, so the skipped epochs must be
    // accounted for exactly when the next burst arrives.
    h.kernel.run(5 * cfg.timing.tREFI + 31);
  }
  return per_burst;
}

TEST(DramSleep, IdleFastForwardAcrossRefreshEpochsStaysLegal) {
  // Refresh state is swept only at ticks that crossed a tREFI boundary;
  // an idle span fast-forwarded in one jump skips *several* boundaries at
  // once, and the multi-epoch catch-up must leave every bank exactly
  // where per-cycle ticking would have: the full command trace across
  // six burst/idle rounds has to satisfy every timing and refresh-window
  // rule.
  DramMemoryConfig cfg = strict_cfg();
  cfg.timing.tREFI = 150;  // short epochs: every idle span skips several
  cfg.timing.tRFC = 40;
  DramHarness h(cfg);
  const auto bursts = drive_bursty_with_gaps(h, cfg);
  EXPECT_EQ(bursts.size(), 6u);
  check_trace_legality(h.trace, cfg.timing, "multi-epoch fast-forward");
  EXPECT_GT(h.mem.stats().refresh_stall_cycles, 0u);
  EXPECT_GT(h.kernel.now(), 25u * cfg.timing.tREFI)
      << "the idle spans never actually crossed refresh epochs";
}

TEST(DramSleep, MultiEpochSkipMatchesNaivePerCycleTicking) {
  // The same bursty script on a gated and a force-naive kernel: grants,
  // response data and every counter must be bit-identical, cycle for
  // cycle — the lazily-settled refresh-stall accrual and the multi-epoch
  // refresh catch-up may not drift from per-cycle accounting.
  DramMemoryConfig cfg = strict_cfg();
  cfg.timing.tREFI = 150;
  cfg.timing.tRFC = 40;
  DramHarness gated(cfg);
  DramHarness naive(cfg);
  naive.kernel.set_gating(false);
  const auto gated_bursts = drive_bursty_with_gaps(gated, cfg);
  const auto naive_bursts = drive_bursty_with_gaps(naive, cfg);
  EXPECT_EQ(gated.kernel.now(), naive.kernel.now());
  ASSERT_EQ(gated.trace.size(), naive.trace.size());
  for (std::size_t i = 0; i < gated.trace.size(); ++i) {
    const DramGrant& g = gated.trace[i];
    const DramGrant& n = naive.trace[i];
    EXPECT_EQ(g.cycle, n.cycle) << "grant " << i;
    EXPECT_EQ(g.data_at, n.data_at) << "grant " << i;
    EXPECT_EQ(g.port, n.port) << "grant " << i;
    EXPECT_EQ(g.bank, n.bank) << "grant " << i;
    EXPECT_EQ(g.row, n.row) << "grant " << i;
    EXPECT_EQ(g.write, n.write) << "grant " << i;
    EXPECT_EQ(static_cast<int>(g.kind), static_cast<int>(n.kind))
        << "grant " << i;
  }
  ASSERT_EQ(gated_bursts.size(), naive_bursts.size());
  for (std::size_t b = 0; b < gated_bursts.size(); ++b) {
    for (std::size_t p = 0; p < gated_bursts[b].size(); ++p) {
      ASSERT_EQ(gated_bursts[b][p].size(), naive_bursts[b][p].size());
      for (std::size_t i = 0; i < gated_bursts[b][p].size(); ++i) {
        EXPECT_EQ(gated_bursts[b][p][i].rdata, naive_bursts[b][p][i].rdata);
        EXPECT_EQ(gated_bursts[b][p][i].tag, naive_bursts[b][p][i].tag);
      }
    }
  }
  EXPECT_EQ(gated.mem.stats().grants, naive.mem.stats().grants);
  EXPECT_EQ(gated.mem.stats().row_hits, naive.mem.stats().row_hits);
  EXPECT_EQ(gated.mem.stats().row_misses, naive.mem.stats().row_misses);
  EXPECT_EQ(gated.mem.stats().refresh_stall_cycles,
            naive.mem.stats().refresh_stall_cycles);
  EXPECT_EQ(gated.mem.stats().batch_defer_cycles,
            naive.mem.stats().batch_defer_cycles);
  EXPECT_EQ(gated.mem.stats().starved_grants,
            naive.mem.stats().starved_grants);
  EXPECT_GT(gated.mem.stats().refresh_stall_cycles, 0u);
}

TEST(DramSleep, SleepNeverSkipsInFlightResponses) {
  // After the lone request is granted there is no candidate work left —
  // only a response with a future ready_at. The sleep horizon must still
  // stop at the release cycle: delivery time has to match the force-naive
  // kernel exactly, and a horizon that skipped the in-flight release
  // would time the run out.
  sim::Cycle delivered_at[2] = {0, 0};
  for (const bool gated_mode : {false, true}) {
    DramMemoryConfig cfg = strict_cfg();
    DramHarness h(cfg);
    h.kernel.set_gating(gated_mode);
    WordPort& port = h.mem.port(0);
    WordReq req;
    req.addr = kBase + 4 * 5;
    req.wstrb = 0xF;
    req.tag = 9;
    port.req.push(req);
    // Driving predicate: the harness is not a subscribed component, so it
    // must observe every cycle itself. The gated kernel may still sleep
    // the DRAM model; if the model dozed past pushing the release, this
    // run would hang.
    const auto status =
        h.kernel.run_until([&] { return port.resp.can_pop(); }, 10'000);
    ASSERT_TRUE(status.completed) << (gated_mode ? "gated" : "naive")
                                  << ": response skipped past";
    delivered_at[gated_mode ? 1 : 0] = h.kernel.now();
    EXPECT_EQ(port.resp.pop().rdata, 5u * 2654435761u);
  }
  EXPECT_EQ(delivered_at[0], delivered_at[1])
      << "gated sleep shifted an in-flight response";
}

TEST(DramSleep, BlockedReleaseSurvivesSlowConsumer) {
  // A full response FIFO blocks the in-order release stage; the scheduler
  // must keep polling (wake hint withheld) rather than sleep past the
  // unblock. A slow consumer that pops one response at a time must see
  // every response, at cycles identical to the naive kernel.
  std::vector<sim::Cycle> pop_cycles[2];
  for (const bool gated_mode : {false, true}) {
    DramMemoryConfig cfg = strict_cfg();
    cfg.req_depth = 8;   // room to queue the whole burst up front
    cfg.resp_depth = 1;  // release blocks after a single response
    DramHarness h(cfg);
    h.kernel.set_gating(gated_mode);
    WordPort& port = h.mem.port(0);
    for (std::uint32_t i = 0; i < 4; ++i) {
      WordReq req;
      req.addr = kBase + 4ull * (5 + i);
      req.wstrb = 0xF;
      req.tag = i;
      port.req.push(req);
    }
    for (std::uint32_t i = 0; i < 4; ++i) {
      const auto status =
          h.kernel.run_until([&] { return port.resp.can_pop(); }, 50'000);
      ASSERT_TRUE(status.completed) << "response " << i << " never arrived";
      // Dwell before popping: the release stage sits blocked on the full
      // FIFO for a while, a state the sleep protocol must stay awake for.
      h.kernel.run(100);
      pop_cycles[gated_mode ? 1 : 0].push_back(h.kernel.now());
      EXPECT_EQ(port.resp.pop().tag, i);
    }
  }
  EXPECT_EQ(pop_cycles[0], pop_cycles[1]);
}

}  // namespace
}  // namespace axipack::mem
