// Declarative experiment layer tests: grid expansion order and size,
// baseline-join speedups, backend-aware plan_workload choices across the
// scenario families (including the -dram names), filtering, and the
// CSV/JSON emitters (golden-shape checks plus RunResult::to_json).
#include "test_common.hpp"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "systems/experiment.hpp"
#include "systems/runner.hpp"
#include "systems/scenario.hpp"
#include "util/json.hpp"

namespace axipack {
namespace {

using sys::AxisValue;
using sys::ExperimentSpec;
using sys::GridPoint;
using sys::PointResult;
using sys::ResultSet;
using sys::SystemKind;

// ------------------------------------------------------- plan_workload

TEST(PlanWorkload, SramMethodologyMatchesThePaper) {
  // BASE streams row-wise; PACK/IDEAL run gemv/trmv column-wise on the
  // banked SRAM backend; in-memory indices only exist on PACK.
  const auto base = sys::plan_workload(wl::KernelKind::gemv,
                                       sys::scenario_name(SystemKind::base));
  EXPECT_EQ(static_cast<int>(base.dataflow),
            static_cast<int>(wl::Dataflow::rowwise));
  EXPECT_FALSE(base.in_memory_indices);

  const auto pack = sys::plan_workload(wl::KernelKind::gemv,
                                       sys::scenario_name(SystemKind::pack));
  EXPECT_EQ(static_cast<int>(pack.dataflow),
            static_cast<int>(wl::Dataflow::colwise));
  EXPECT_TRUE(pack.in_memory_indices);

  const auto ideal = sys::plan_workload(
      wl::KernelKind::trmv, sys::scenario_name(SystemKind::ideal));
  EXPECT_EQ(static_cast<int>(ideal.dataflow),
            static_cast<int>(wl::Dataflow::colwise));
  EXPECT_FALSE(ideal.in_memory_indices);
}

TEST(PlanWorkload, PackOnDramGoesRowWise) {
  // The backend-aware rule that closes the ROADMAP residual: column
  // strides thrash DRAM rows, so PACK gemv/trmv plan row-wise on every
  // "dram" scenario spelling — fixed names, parametric widths, and the
  // knobbed family.
  for (const char* scenario :
       {"pack-dram", "pack-256-dram", "pack-128-dram", "pack-64-dram",
        "pack-256-dram-w1", "pack-256-dram-w16-c128-q32"}) {
    for (const auto kernel : {wl::KernelKind::gemv, wl::KernelKind::trmv}) {
      const auto cfg = sys::plan_workload(kernel, scenario);
      EXPECT_EQ(static_cast<int>(cfg.dataflow),
                static_cast<int>(wl::Dataflow::rowwise))
          << scenario << " " << wl::kernel_name(kernel);
      EXPECT_TRUE(cfg.in_memory_indices) << scenario;
    }
  }
  // BASE on dram was already row-wise; the SRAM pack plan stays col-wise.
  EXPECT_EQ(static_cast<int>(
                sys::plan_workload(wl::KernelKind::gemv, "base-dram")
                    .dataflow),
            static_cast<int>(wl::Dataflow::rowwise));
  EXPECT_EQ(static_cast<int>(
                sys::plan_workload(wl::KernelKind::gemv, "pack-256-17b")
                    .dataflow),
            static_cast<int>(wl::Dataflow::colwise));
}

TEST(PlanWorkload, SeesBuilderPatchesNotJustNames) {
  // A builder retargeted onto "dram" after scenario resolution must plan
  // row-wise too — the planner inspects the builder, not the name.
  sys::SystemBuilder b =
      sys::ScenarioRegistry::instance().builder("pack-256-17b");
  EXPECT_EQ(static_cast<int>(sys::plan_workload(wl::KernelKind::gemv, b)
                                 .dataflow),
            static_cast<int>(wl::Dataflow::colwise));
  b.memory("dram");
  EXPECT_EQ(b.memory_backend_name(), "dram");
  EXPECT_EQ(static_cast<int>(sys::plan_workload(wl::KernelKind::gemv, b)
                                 .dataflow),
            static_cast<int>(wl::Dataflow::rowwise));
}

// ------------------------------------------------------ grid expansion

ExperimentSpec tiny_spec() {
  return ExperimentSpec("tiny")
      .kernels_axis({wl::KernelKind::ismt})
      .axis("n", {AxisValue::config("8", [](wl::WorkloadConfig& c) {
                    c.n = 8;
                  }),
                  AxisValue::config("16", [](wl::WorkloadConfig& c) {
                    c.n = 16;
                  })})
      .systems_axis({SystemKind::base, SystemKind::pack})
      .baseline("system", "base");
}

TEST(ExperimentSpec, ExpansionOrderAndSize) {
  const std::vector<GridPoint> points = tiny_spec().expand();
  ASSERT_EQ(points.size(), 4u);  // 1 kernel x 2 n x 2 systems
  // Row-major, first axis outermost: the last axis (system) cycles
  // fastest.
  EXPECT_EQ(points[0].coord("n"), "8");
  EXPECT_EQ(points[0].coord("system"), "base");
  EXPECT_EQ(points[1].coord("n"), "8");
  EXPECT_EQ(points[1].coord("system"), "pack");
  EXPECT_EQ(points[2].coord("n"), "16");
  EXPECT_EQ(points[3].coord("n"), "16");
  // Coords carry every axis in declaration order.
  ASSERT_EQ(points[0].coords.size(), 3u);
  EXPECT_EQ(points[0].coords[0].first, "kernel");
  EXPECT_EQ(points[0].coords[0].second, "ismt");
  // The config patches landed.
  EXPECT_EQ(points[0].cfg.n, 8u);
  EXPECT_EQ(points[3].cfg.n, 16u);
  // Scenario derives from the system axis.
  EXPECT_EQ(points[0].scenario, "base-256-17b");
  EXPECT_EQ(points[1].scenario, "pack-256-17b");
}

TEST(ExperimentSpec, PlansPerPointThenAppliesPatches) {
  const auto points =
      ExperimentSpec("plan")
          .kernels_axis({wl::KernelKind::gemv})
          .scenarios_axis("endpoint", {"pack-256-17b", "pack-dram"})
          .expand();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(static_cast<int>(points[0].cfg.dataflow),
            static_cast<int>(wl::Dataflow::colwise));
  EXPECT_EQ(static_cast<int>(points[1].cfg.dataflow),
            static_cast<int>(wl::Dataflow::rowwise));
  // An explicit patch overrides the plan.
  const auto pinned =
      ExperimentSpec("pin")
          .kernels_axis({wl::KernelKind::gemv})
          .scenarios_axis("endpoint", {"pack-dram"})
          .axis("dataflow", {AxisValue::config("col", [](wl::WorkloadConfig&
                                                            c) {
                  c.dataflow = wl::Dataflow::colwise;
                })})
          .expand();
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(static_cast<int>(pinned[0].cfg.dataflow),
            static_cast<int>(wl::Dataflow::colwise));
}

TEST(ExperimentSpec, QuickShrinksWorkloads) {
  const auto points =
      ExperimentSpec("quick")
          .kernels_axis({wl::KernelKind::spmv})
          .systems_axis({SystemKind::pack})
          .quick(true)
          .expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].quick);
  EXPECT_LE(points[0].cfg.n, 48u);
  EXPECT_LE(points[0].cfg.nnz_per_row, 8u);
  EXPECT_LE(points[0].cfg.iterations, 1u);
}

TEST(ExperimentSpec, FilterKeepsBaselinePartners) {
  auto spec = tiny_spec();
  spec.filter("pack");
  const auto points = spec.expand();
  // Both pack points survive, plus their base partners for the join.
  ASSERT_EQ(points.size(), 4u);
  auto spec2 = tiny_spec();
  spec2.filter("16");
  const auto points2 = spec2.expand();
  ASSERT_EQ(points2.size(), 2u);
  EXPECT_EQ(points2[0].coord("n"), "16");
  EXPECT_EQ(points2[1].coord("n"), "16");
  auto spec3 = tiny_spec();
  spec3.filter("no-such-label");
  EXPECT_EQ(spec3.expand().size(), 0u);
}

TEST(ExperimentSpec, ParamAxisLabelsAndLookup) {
  const auto points = ExperimentSpec("params")
                          .param_axis("depth", "depth", {1, 16})
                          .expand();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].coord("depth"), "1");
  EXPECT_EQ(points[1].coord("depth"), "16");
  EXPECT_EQ(points[0].param("depth"), 1.0);
  EXPECT_EQ(points[1].param("depth"), 16.0);
}

// ---------------------------------------------------- runs and joins

TEST(ExperimentSpec, BaselineJoinSpeedups) {
  // Custom runner with known cycle counts: base 1000, pack 250 -> 4x.
  const ResultSet set =
      ExperimentSpec("join")
          .kernels_axis({wl::KernelKind::ismt})
          .systems_axis({SystemKind::base, SystemKind::pack})
          .baseline("system", "base")
          .runner([](const GridPoint& p) {
            PointResult out;
            out.run.cycles = p.coord("system") == "base" ? 1000 : 250;
            out.run.correct = true;
            return out;
          })
          .run();
  ASSERT_EQ(set.size(), 2u);
  const auto* base = set.find({{"system", "base"}});
  const auto* pack = set.find({{"system", "pack"}});
  ASSERT_NE(base, nullptr);
  ASSERT_NE(pack, nullptr);
  ASSERT_TRUE(base->speedup.has_value());
  ASSERT_TRUE(pack->speedup.has_value());
  EXPECT_NEAR(*base->speedup, 1.0, 1e-12);
  EXPECT_NEAR(*pack->speedup, 4.0, 1e-12);
  EXPECT_TRUE(set.all_correct());
}

TEST(ExperimentSpec, RealRunEndToEnd) {
  // A real (tiny) simulation grid through the default runner: results are
  // verified and the pack speedup is joined against base.
  const ResultSet set =
      ExperimentSpec("real")
          .kernels_axis({wl::KernelKind::ismt})
          .systems_axis({SystemKind::base, SystemKind::pack})
          .baseline("system", "base")
          .configure([](wl::WorkloadConfig& c) { c.n = 32; })
          .threads(1)
          .run();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.all_correct());
  const auto* pack = set.find({{"system", "pack"}});
  ASSERT_NE(pack, nullptr);
  ASSERT_TRUE(pack->speedup.has_value());
  EXPECT_GE(*pack->speedup, 1.0);  // pack is never slower
  EXPECT_GT(pack->run.cycles, 0u);
}

// ----------------------------------------------------------- emission

ResultSet golden_set() {
  return ExperimentSpec("golden")
      .kernels_axis({wl::KernelKind::ismt})
      .systems_axis({SystemKind::base, SystemKind::pack})
      .baseline("system", "base")
      .runner([](const GridPoint& p) {
        PointResult out;
        out.run.cycles = p.coord("system") == "base" ? 100 : 50;
        out.run.r_util = 0.5;
        out.run.correct = true;
        out.metrics["extra"] = 2.5;
        return out;
      })
      .run();
}

TEST(ResultSet, CsvGolden) {
  std::ostringstream os;
  golden_set().write_csv(os);
  const std::string csv = os.str();
  const std::string expected =
      "kernel,system,scenario,planned_kernel,cycles,r_util,r_util_no_idx,"
      "w_util,row_hit_ratio,speedup,correct,extra\n"
      "ismt,base,base-256-17b,ismt,100,0.5,0,0,0,1,true,2.5\n"
      "ismt,pack,pack-256-17b,ismt,50,0.5,0,0,0,2,true,2.5\n";
  EXPECT_EQ(csv, expected);
}

TEST(ResultSet, JsonGoldenShape) {
  const std::string json = golden_set().to_json();
  // Structural golden checks (full-string equality would be brittle
  // against RunResult field additions).
  EXPECT_NE(json.find("\"experiment\": \"golden\""), std::string::npos);
  EXPECT_NE(json.find("\"axes\": [{\"name\": \"kernel\", \"values\": "
                      "[\"ismt\"]}, {\"name\": \"system\", \"values\": "
                      "[\"base\", \"pack\"]}]"),
            std::string::npos);
  EXPECT_NE(json.find("\"baseline\": {\"axis\": \"system\", \"value\": "
                      "\"base\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"coords\": {\"kernel\": \"ismt\", \"system\": "
                      "\"pack\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"speedup\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": {\"extra\": 2.5}"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\": 50"), std::string::npos);
}

TEST(ResultSet, TableListsAxesAndDerivedColumns) {
  std::ostringstream os;
  golden_set().print_table(os);
  const std::string table = os.str();
  EXPECT_NE(table.find("kernel"), std::string::npos);
  EXPECT_NE(table.find("system"), std::string::npos);
  EXPECT_NE(table.find("speedup"), std::string::npos);
  EXPECT_NE(table.find("2.00x"), std::string::npos);
  EXPECT_NE(table.find("extra"), std::string::npos);
  EXPECT_NE(table.find("yes"), std::string::npos);
}

TEST(RunResult, ToJsonRoundsTheCoreFields) {
  sys::RunResult r;
  r.bus_bits = 128;
  r.cycles = 1234;
  r.r_util = 0.25;
  r.correct = true;
  r.row_hits = 3;
  r.row_misses = 1;
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"bus_bits\": 128"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\": 1234"), std::string::npos);
  EXPECT_NE(json.find("\"r_util\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"correct\": true"), std::string::npos);
  EXPECT_NE(json.find("\"row_hit_ratio\": 0.75"), std::string::npos);
  EXPECT_EQ(json.find("\"error\""), std::string::npos);  // empty -> omitted
  r.error = "a \"quoted\" failure";
  EXPECT_NE(r.to_json().find("\"error\": \"a \\\"quoted\\\" failure\""),
            std::string::npos);
}

TEST(JsonWriter, EscapesAndNests) {
  util::JsonWriter w;
  w.begin_object();
  w.key("s").value("line\nbreak \"q\"");
  w.key("list").begin_array().value(1).value(2.5).null().end_array();
  w.key("empty").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\": \"line\\nbreak \\\"q\\\"\", "
            "\"list\": [1, 2.5, null], \"empty\": {}}");
}

}  // namespace
}  // namespace axipack
