// Workload-layer unit tests: generators (determinism, CSR invariants,
// graph structure), golden references, and program construction.
#include "test_common.hpp"

#include "mem/backing_store.hpp"
#include "util/rng.hpp"
#include "workloads/data.hpp"
#include "workloads/golden.hpp"
#include "workloads/workloads.hpp"

namespace axipack::wl {
namespace {

constexpr std::uint64_t kBase = 0x8000'0000ull;

TEST(Generators, DenseMatrixDeterministic) {
  mem::BackingStore s1(kBase, 1 << 22);
  mem::BackingStore s2(kBase, 1 << 22);
  util::Rng r1(42);
  util::Rng r2(42);
  const auto m1 = gen_dense_matrix(s1, 16, 16, r1);
  const auto m2 = gen_dense_matrix(s2, 16, 16, r2);
  for (std::uint32_t i = 0; i < 256; ++i) {
    EXPECT_EQ(s1.read_u32(m1.addr + 4 * i), s2.read_u32(m2.addr + 4 * i));
  }
}

TEST(Generators, CsrInvariants) {
  mem::BackingStore store(kBase, 1 << 24);
  util::Rng rng(7);
  const auto m = gen_csr_matrix(store, 64, 64, 12, rng);
  ASSERT_EQ(m.rowptr.size(), 65u);
  EXPECT_EQ(m.rowptr[0], 0u);
  EXPECT_EQ(m.rowptr[64], m.nnz);
  for (std::uint32_t r = 0; r < 64; ++r) {
    EXPECT_LE(m.rowptr[r], m.rowptr[r + 1]);
    // Columns sorted and distinct within a row, in range.
    for (std::uint32_t k = m.rowptr[r]; k + 1 < m.rowptr[r + 1]; ++k) {
      EXPECT_LT(m.colidx[k], m.colidx[k + 1]);
    }
    for (std::uint32_t k = m.rowptr[r]; k < m.rowptr[r + 1]; ++k) {
      EXPECT_LT(m.colidx[k], 64u);
    }
  }
  // Average nnz/row within the generator's [avg/2, 3avg/2] band.
  const double avg = static_cast<double>(m.nnz) / 64.0;
  EXPECT_GE(avg, 6.0);
  EXPECT_LE(avg, 18.0);
}

TEST(Generators, CsrInMemoryMatchesHostArrays) {
  mem::BackingStore store(kBase, 1 << 24);
  util::Rng rng(9);
  const auto m = gen_csr_matrix(store, 32, 32, 8, rng);
  for (std::size_t i = 0; i < m.rowptr.size(); ++i) {
    EXPECT_EQ(store.read_u32(m.rowptr_addr + 4 * i), m.rowptr[i]);
  }
  for (std::size_t k = 0; k < m.colidx.size(); ++k) {
    EXPECT_EQ(store.read_u32(m.colidx_addr + 4 * k), m.colidx[k]);
    EXPECT_EQ(store.read_f32(m.vals_addr + 4 * k), m.vals[k]);
  }
}

TEST(Generators, GraphHasMinDegreeOne) {
  mem::BackingStore store(kBase, 1 << 24);
  util::Rng rng(11);
  const auto g = gen_graph_csr(store, 100, 8, rng, false);
  for (std::uint32_t u = 0; u < 100; ++u) {
    EXPECT_GE(g.rowptr[u + 1] - g.rowptr[u], 1u) << "node " << u;
  }
  for (float w : g.vals) EXPECT_GT(w, 0.0f);  // positive weights for sssp
}

TEST(Generators, StochasticGraphWeightsNormalized) {
  mem::BackingStore store(kBase, 1 << 24);
  util::Rng rng(13);
  const auto g = gen_graph_csr(store, 80, 6, rng, true);
  // Column sums of the normalized matrix equal 1 for nodes with out-edges
  // (each source contributes 1/out_degree per outgoing edge).
  std::vector<double> col_sum(80, 0.0);
  std::vector<std::uint32_t> out_deg(80, 0);
  for (std::uint32_t c : g.colidx) ++out_deg[c];
  for (std::size_t k = 0; k < g.colidx.size(); ++k) {
    col_sum[g.colidx[k]] += g.vals[k];
  }
  for (std::uint32_t v = 0; v < 80; ++v) {
    if (out_deg[v] > 0) {
      EXPECT_NEAR(col_sum[v], 1.0, 1e-4) << "node " << v;
    }
  }
}

TEST(Golden, TransposeIsInvolution) {
  std::vector<float> a(16 * 16);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i);
  std::vector<float> b = a;
  ref_transpose(b, 16);
  EXPECT_NE(a, b);
  ref_transpose(b, 16);
  EXPECT_EQ(a, b);
}

TEST(Golden, GemvKnownValues) {
  // 2x2: [1 2; 3 4] * [5, 6] = [17, 39]
  const std::vector<float> a = {1, 2, 3, 4};
  const std::vector<float> x = {5, 6};
  const auto y = ref_gemv(a, x, 2);
  EXPECT_FLOAT_EQ(y[0], 17.0f);
  EXPECT_FLOAT_EQ(y[1], 39.0f);
}

TEST(Golden, TrmvUsesUpperTriangleOnly) {
  const std::vector<float> a = {1, 2, 100, 4};  // lower element ignored
  const std::vector<float> x = {1, 1};
  const auto y = ref_trmv_upper(a, x, 2);
  EXPECT_FLOAT_EQ(y[0], 3.0f);  // 1 + 2
  EXPECT_FLOAT_EQ(y[1], 4.0f);  // only diagonal
}

TEST(Golden, SpmvMatchesDense) {
  // CSR of [0 2; 3 0].
  const std::vector<std::uint32_t> rowptr = {0, 1, 2};
  const std::vector<std::uint32_t> colidx = {1, 0};
  const std::vector<float> vals = {2, 3};
  const std::vector<float> x = {10, 20};
  const auto y = ref_spmv(rowptr, colidx, vals, x);
  EXPECT_FLOAT_EQ(y[0], 40.0f);
  EXPECT_FLOAT_EQ(y[1], 30.0f);
}

TEST(Golden, PagerankConservesMass) {
  mem::BackingStore store(kBase, 1 << 24);
  util::Rng rng(17);
  const auto g = gen_graph_csr(store, 60, 5, rng, true);
  const auto r = ref_pagerank(g.rowptr, g.colidx, g.vals, 60, 20, 0.85f);
  double total = 0.0;
  for (float v : r) {
    EXPECT_GT(v, 0.0f);
    total += v;
  }
  // Mass is approximately conserved for stochastic graphs.
  EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(Golden, SsspSourceZeroAndTriangleInequality) {
  // Path graph 0 -> 1 -> 2 encoded as incoming-edge CSR.
  const std::vector<std::uint32_t> rowptr = {0, 0, 1, 2};
  const std::vector<std::uint32_t> colidx = {0, 1};
  const std::vector<float> vals = {1.5f, 2.5f};
  const auto d = ref_sssp(rowptr, colidx, vals, 3, 3, 0);
  EXPECT_FLOAT_EQ(d[0], 0.0f);
  EXPECT_FLOAT_EQ(d[1], 1.5f);
  EXPECT_FLOAT_EQ(d[2], 4.0f);
}

TEST(Golden, SsspSweepsConverge) {
  // More sweeps never increase any distance (monotone relaxation).
  mem::BackingStore store(kBase, 1 << 24);
  util::Rng rng(19);
  const auto g = gen_graph_csr(store, 40, 4, rng, false);
  const auto d2 = ref_sssp(g.rowptr, g.colidx, g.vals, 40, 2, 0);
  const auto d5 = ref_sssp(g.rowptr, g.colidx, g.vals, 40, 5, 0);
  for (std::uint32_t u = 0; u < 40; ++u) EXPECT_LE(d5[u], d2[u]);
}

TEST(Golden, NearlyEqualDetectsMismatch) {
  std::string msg;
  EXPECT_TRUE(nearly_equal({1.0f, 2.0f}, {1.0f, 2.00001f}, 1e-3f, msg));
  EXPECT_FALSE(nearly_equal({1.0f, 2.0f}, {1.0f, 2.5f}, 1e-3f, msg));
  EXPECT_NE(msg.find("mismatch"), std::string::npos);
  EXPECT_FALSE(nearly_equal({1.0f}, {1.0f, 2.0f}, 1e-3f, msg));
}

TEST(Programs, PackSpmvUsesInMemoryIndices) {
  mem::BackingStore store(kBase, 1 << 24);
  WorkloadConfig cfg;
  cfg.kernel = KernelKind::spmv;
  cfg.n = 16;
  cfg.nnz_per_row = 4;
  cfg.in_memory_indices = true;
  const auto inst = build_workload(store, cfg);
  bool has_vlimxei = false;
  bool has_vluxei = false;
  for (const auto& op : inst.program.ops) {
    has_vlimxei |= op.kind == vproc::OpKind::vlimxei;
    has_vluxei |= op.kind == vproc::OpKind::vluxei;
  }
  EXPECT_TRUE(has_vlimxei);
  EXPECT_FALSE(has_vluxei);
}

TEST(Programs, BaseSpmvFetchesIndicesIntoCore) {
  mem::BackingStore store(kBase, 1 << 24);
  WorkloadConfig cfg;
  cfg.kernel = KernelKind::spmv;
  cfg.n = 16;
  cfg.nnz_per_row = 4;
  cfg.in_memory_indices = false;
  const auto inst = build_workload(store, cfg);
  bool has_index_load = false;
  bool has_vluxei = false;
  for (const auto& op : inst.program.ops) {
    has_index_load |= op.kind == vproc::OpKind::vle &&
                      op.traffic == axi::Traffic::index;
    has_vluxei |= op.kind == vproc::OpKind::vluxei;
  }
  EXPECT_TRUE(has_index_load);
  EXPECT_TRUE(has_vluxei);
}

TEST(Programs, VlCappedByVlmax) {
  mem::BackingStore store(kBase, 1 << 24);
  WorkloadConfig cfg;
  cfg.kernel = KernelKind::ismt;
  cfg.n = 64;
  cfg.vlmax = 16;  // force stripmining
  const auto inst = build_workload(store, cfg);
  for (const auto& op : inst.program.ops) {
    EXPECT_LE(op.vl, 16u);
  }
}

}  // namespace
}  // namespace axipack::wl
