// Differential backend testing: the same randomized read/write workload
// replayed against the "dram", "banked" and "ideal" backends must return
// identical data and leave identical memory images. Timing may (and does)
// differ — data must not: the memory model is a contract, the timing model
// an implementation.
//
// Two workload shapes keep the comparison order-independent by
// construction:
//   * per-port address partitions — each port owns the words with
//     word_index % num_ports == port, so cross-port races cannot exist and
//     per-port response streams are fully deterministic;
//   * write-then-read phases over a Floyd-sampled word set — distinct
//     write targets per phase, reads only after the writes drained.
#include "test_common.hpp"

#include <memory>
#include <string>
#include <vector>

#include "mem/backend.hpp"
#include "util/rng.hpp"
#include "word_driver.hpp"

namespace axipack::mem {
namespace {

constexpr std::uint64_t kBase = 0x8000'0000ull;
constexpr unsigned kPorts = 4;
constexpr std::uint64_t kWords = 1 << 12;

/// One backend instance with its own kernel and store, driven by raw word
/// requests; collects per-port responses in arrival order.
/// Shared backend parameterization: aggressive dram timing (small rows, a
/// short refresh interval) so a few thousand cycles of traffic cross many
/// refresh windows; 7 SRAM banks so conflicts are common.
MemoryBackendConfig diff_cfg(const std::string& name) {
  MemoryBackendConfig cfg;
  cfg.name = name;
  cfg.num_ports = kPorts;
  cfg.num_banks = 7;
  cfg.dram.bank_groups = 2;
  cfg.dram.banks_per_group = 3;
  cfg.dram.row_words = 32;
  cfg.dram.tREFI = 300;
  cfg.dram.tRFC = 40;
  return cfg;
}

struct BackendRun {
  explicit BackendRun(const MemoryBackendConfig& cfg)
      : store(kBase, kWords * 4) {
    // Deterministic pseudo-random initial image, identical per backend.
    for (std::uint64_t w = 0; w < kWords; ++w) {
      store.write_u32(kBase + 4 * w, static_cast<std::uint32_t>(w * 40503u));
    }
    backend = BackendRegistry::instance().create(kernel, store, cfg);
  }

  /// Replays per-port request lists through the shared drive loop; true
  /// when every response arrived.
  bool replay(const std::vector<std::vector<WordReq>>& reqs,
              sim::Cycle max_cycles = 4'000'000) {
    return testutil::replay_word_requests(kernel, backend->word_memory(),
                                          reqs, responses, max_cycles);
  }

  sim::Kernel kernel;
  BackingStore store;
  std::unique_ptr<MemoryBackend> backend;
  std::vector<std::vector<WordResp>> responses;
};

const std::vector<std::string>& backend_names() {
  static const std::vector<std::string> names = {"ideal", "banked", "dram"};
  return names;
}

/// Diffs every run's collected per-port response streams (tag order,
/// read/write kind, read data) and final memory image against runs[0].
void expect_runs_agree(const std::vector<std::unique_ptr<BackendRun>>& runs,
                       const std::vector<std::string>& labels,
                       const char* what) {
  const BackendRun& ref = *runs[0];
  for (std::size_t r = 1; r < runs.size(); ++r) {
    const BackendRun& other = *runs[r];
    const std::string& name = labels[r];
    for (unsigned p = 0; p < kPorts; ++p) {
      ASSERT_EQ(other.responses[p].size(), ref.responses[p].size())
          << what << " " << name << " port " << p;
      for (std::size_t i = 0; i < ref.responses[p].size(); ++i) {
        const WordResp& a = ref.responses[p][i];
        const WordResp& b = other.responses[p][i];
        // Per-port responses return in request order on every backend, so
        // tag streams must match; read data must match word for word.
        ASSERT_EQ(b.tag, a.tag) << what << " " << name << " port " << p
                                << " resp " << i;
        ASSERT_EQ(b.was_write, a.was_write)
            << what << " " << name << " port " << p << " resp " << i;
        if (!a.was_write) {
          ASSERT_EQ(b.rdata, a.rdata)
              << what << " " << name << " port " << p << " resp " << i
              << " tag " << a.tag;
        }
      }
    }
    for (std::uint64_t w = 0; w < kWords; ++w) {
      ASSERT_EQ(other.store.read_u32(kBase + 4 * w),
                ref.store.read_u32(kBase + 4 * w))
          << what << " " << name << " word " << w;
    }
  }
}

/// Runs `reqs` on every backend and checks responses + memory images agree
/// with the first ("ideal") backend.
void expect_backends_agree(const std::vector<std::vector<WordReq>>& reqs,
                           const char* what) {
  std::vector<std::unique_ptr<BackendRun>> runs;
  for (const auto& name : backend_names()) {
    runs.push_back(std::make_unique<BackendRun>(diff_cfg(name)));
    ASSERT_TRUE(runs.back()->replay(reqs)) << what << " " << name;
  }
  expect_runs_agree(runs, backend_names(), what);
}

TEST(DifferentialBackends, PartitionedRandomReadWriteStreams) {
  for (const std::uint64_t seed : {1ull, 17ull, 123456789ull}) {
    util::Rng rng(seed);
    std::vector<std::vector<WordReq>> reqs(kPorts);
    for (unsigned p = 0; p < kPorts; ++p) {
      for (int i = 0; i < 500; ++i) {
        // Port p owns words congruent to p mod kPorts: no cross-port races.
        const std::uint64_t word =
            rng.below(kWords / kPorts) * kPorts + p;
        WordReq req;
        req.addr = kBase + 4 * word;
        req.tag = static_cast<std::uint32_t>(i);
        if (rng.below(3) == 0) {
          req.write = true;
          req.wdata = static_cast<std::uint32_t>(rng.next());
          req.wstrb = static_cast<std::uint8_t>(rng.below(16));
        }
        reqs[p].push_back(req);
      }
    }
    expect_backends_agree(reqs, "partitioned");
  }
}

TEST(DifferentialBackends, FloydSampledWriteThenReadPhases) {
  util::Rng rng(4242);
  // Floyd sampling picks distinct write targets, so write/write races are
  // impossible even across ports.
  const std::vector<std::uint32_t> targets = rng.sample_without_replacement(
      static_cast<std::uint32_t>(kWords), 800);
  std::vector<std::vector<WordReq>> writes(kPorts);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    WordReq req;
    req.addr = kBase + 4ull * targets[i];
    req.write = true;
    req.wdata = static_cast<std::uint32_t>(rng.next());
    req.wstrb = 0xF;
    req.tag = static_cast<std::uint32_t>(i);
    writes[i % kPorts].push_back(req);
  }
  // Reads target the sampled set from *any* port (plus untouched words),
  // only after every write drained.
  std::vector<std::vector<WordReq>> reads(kPorts);
  for (int i = 0; i < 1200; ++i) {
    const std::uint32_t word =
        rng.below(4) == 0 ? static_cast<std::uint32_t>(rng.below(kWords))
                          : targets[rng.below(targets.size())];
    WordReq req;
    req.addr = kBase + 4ull * word;
    req.tag = static_cast<std::uint32_t>(i);
    reads[rng.below(kPorts)].push_back(req);
  }

  std::vector<std::unique_ptr<BackendRun>> runs;
  for (const auto& name : backend_names()) {
    runs.push_back(std::make_unique<BackendRun>(diff_cfg(name)));
    ASSERT_TRUE(runs.back()->replay(writes)) << name << " write phase";
    ASSERT_TRUE(runs.back()->replay(reads)) << name << " read phase";
  }
  // `responses` holds the read phase (replay resets them); the write
  // phase's effects are covered by the memory-image diff.
  expect_runs_agree(runs, backend_names(), "floyd");
}

TEST(DifferentialBackends, DramSchedWindowsAgreeOnData) {
  // The row-batching scheduler reorders grants (reads freely within the
  // window, writes as hazard-free open-row hits), which must never change
  // *data*: every sched-window/starve-cap setting — from head-only to a
  // full-depth window — must return the same responses and leave the same
  // memory image as the in-order backends. Mixed read/write streams with
  // repeated words exercise the word-level dependency rules.
  util::Rng rng(777);
  std::vector<std::vector<WordReq>> reqs(kPorts);
  for (unsigned p = 0; p < kPorts; ++p) {
    for (int i = 0; i < 500; ++i) {
      // A small per-port word set forces frequent same-word read/write
      // dependencies inside one scheduling window.
      const std::uint64_t word = rng.below(96) * kPorts + p;
      WordReq req;
      req.addr = kBase + 4 * word;
      req.tag = static_cast<std::uint32_t>(i);
      if (rng.below(3) == 0) {
        req.write = true;
        req.wdata = static_cast<std::uint32_t>(rng.next());
        req.wstrb = static_cast<std::uint8_t>(1 + rng.below(15));
      }
      reqs[p].push_back(req);
    }
  }
  struct Setting {
    std::size_t window;
    sim::Cycle cap;
    std::size_t req_depth;
  };
  const Setting settings[] = {
      {1, 48, 2},   // PR-3 head-only scheduler, seed depths
      {1, 48, 32},  // head-only over deep FIFOs
      {4, 16, 32},  {32, 48, 32}, {32, 0, 32},  // OOO window, veto on/off
  };
  std::vector<std::unique_ptr<BackendRun>> runs;
  std::vector<std::string> labels;
  runs.push_back(std::make_unique<BackendRun>(diff_cfg("ideal")));
  labels.push_back("ideal");
  ASSERT_TRUE(runs.back()->replay(reqs)) << "ideal";
  for (const Setting& s : settings) {
    MemoryBackendConfig cfg = diff_cfg("dram");
    cfg.dram_sched_window = s.window;
    cfg.dram_starve_cap = s.cap;
    cfg.req_depth = s.req_depth;
    auto run = std::make_unique<BackendRun>(cfg);
    const std::string label = "dram-w" + std::to_string(s.window) + "-c" +
                              std::to_string(s.cap) + "-q" +
                              std::to_string(s.req_depth);
    ASSERT_TRUE(run->replay(reqs)) << label;
    runs.push_back(std::move(run));
    labels.push_back(label);
  }
  expect_runs_agree(runs, labels, "sched-windows");
}

TEST(DifferentialBackends, DramMappingPoliciesAgreeOnData) {
  // The two dram address-mapping policies are different *timings* of the
  // same memory: replay one partitioned workload under both and diff.
  util::Rng rng(31337);
  std::vector<std::vector<WordReq>> reqs(kPorts);
  for (unsigned p = 0; p < kPorts; ++p) {
    for (int i = 0; i < 400; ++i) {
      WordReq req;
      req.addr = kBase + 4 * (rng.below(kWords / kPorts) * kPorts + p);
      req.tag = static_cast<std::uint32_t>(i);
      if (rng.below(2) == 0) {
        req.write = true;
        req.wdata = static_cast<std::uint32_t>(rng.next());
        req.wstrb = 0xF;
      }
      reqs[p].push_back(req);
    }
  }
  std::vector<std::unique_ptr<BackendRun>> runs;
  std::vector<std::string> labels;
  for (const auto mapping :
       {DramMapping::row_interleaved, DramMapping::bank_interleaved,
        DramMapping::permuted}) {
    MemoryBackendConfig cfg = diff_cfg("dram");
    cfg.dram.mapping = mapping;
    auto run = std::make_unique<BackendRun>(cfg);
    ASSERT_TRUE(run->replay(reqs)) << dram_mapping_name(mapping);
    runs.push_back(std::move(run));
    labels.push_back(dram_mapping_name(mapping));
  }
  expect_runs_agree(runs, labels, "mappings");
}

}  // namespace
}  // namespace axipack::mem
