// Vector processor tests: functional data movement through each VLSU mode,
// chaining, hazards, reductions, and the in-memory-indexed instructions.
#include "test_common.hpp"

#include <memory>
#include <vector>

#include "systems/scenario.hpp"
#include "systems/system.hpp"
#include "workloads/workloads.hpp"

namespace axipack {
namespace {

using sys::SystemKind;
using vproc::VecProgram;

/// Builds a System via the scenario registry, fills `words` u32 pattern at
/// an allocated region, runs `program`, and keeps the system for
/// inspection.
struct ProgramFixture {
  explicit ProgramFixture(SystemKind kind, unsigned bus_bits = 256)
      : system_ptr(sys::ScenarioRegistry::instance().build(
            sys::scenario_name(kind, bus_bits))),
        system(*system_ptr) {}

  sys::RunResult run(VecProgram program) {
    wl::WorkloadInstance instance;
    instance.program = std::move(program);
    instance.check = [](const mem::BackingStore&, std::string&) {
      return true;
    };
    return system.run(instance);
  }

  std::unique_ptr<sys::System> system_ptr;
  sys::System& system;
};

TEST(VprocTest, UnitLoadStoreRoundTrip) {
  for (const auto kind :
       {SystemKind::base, SystemKind::pack, SystemKind::ideal}) {
    ProgramFixture f(kind);
    auto& store = f.system.store();
    const std::uint64_t src = store.alloc(4 * 64);
    const std::uint64_t dst = store.alloc(4 * 64);
    for (std::uint32_t i = 0; i < 64; ++i) store.write_u32(src + 4 * i, i + 7);
    VecProgram p;
    p.push(vproc::op_vle(1, src, 64));
    p.push(vproc::op_vse(1, dst, 64));
    const auto result = f.run(p);
    EXPECT_TRUE(result.error.empty()) << result.error;
    for (std::uint32_t i = 0; i < 64; ++i) {
      EXPECT_EQ(store.read_u32(dst + 4 * i), i + 7)
          << "system " << sys::system_name(kind) << " elem " << i;
    }
  }
}

TEST(VprocTest, StridedLoadAllModes) {
  for (const auto kind :
       {SystemKind::base, SystemKind::pack, SystemKind::ideal}) {
    ProgramFixture f(kind);
    auto& store = f.system.store();
    const std::uint64_t src = store.alloc(4 * 1024);
    const std::uint64_t dst = store.alloc(4 * 64);
    for (std::uint32_t i = 0; i < 1024; ++i)
      store.write_u32(src + 4 * i, i * 11);
    VecProgram p;
    p.push(vproc::op_vlse(2, src, 12, 50));  // every 3rd word
    p.push(vproc::op_vse(2, dst, 50));
    const auto result = f.run(p);
    EXPECT_TRUE(result.error.empty());
    for (std::uint32_t i = 0; i < 50; ++i) {
      EXPECT_EQ(store.read_u32(dst + 4 * i), 3 * i * 11)
          << sys::system_name(kind);
    }
  }
}

TEST(VprocTest, StridedStoreAllModes) {
  for (const auto kind :
       {SystemKind::base, SystemKind::pack, SystemKind::ideal}) {
    ProgramFixture f(kind);
    auto& store = f.system.store();
    const std::uint64_t src = store.alloc(4 * 64);
    const std::uint64_t dst = store.alloc(4 * 1024);
    for (std::uint32_t i = 0; i < 64; ++i)
      store.write_u32(src + 4 * i, 0xA000 + i);
    VecProgram p;
    p.push(vproc::op_vle(3, src, 40));
    p.push(vproc::op_vsse(3, dst, 20, 40));  // every 5th word
    const auto result = f.run(p);
    EXPECT_TRUE(result.error.empty());
    for (std::uint32_t i = 0; i < 40; ++i) {
      EXPECT_EQ(store.read_u32(dst + 20ull * i), 0xA000u + i)
          << sys::system_name(kind);
    }
  }
}

TEST(VprocTest, CoreSideIndexedGather) {
  for (const auto kind : {SystemKind::base, SystemKind::ideal}) {
    ProgramFixture f(kind);
    auto& store = f.system.store();
    const std::uint64_t table = store.alloc(4 * 512);
    const std::uint64_t idx = store.alloc(4 * 32);
    const std::uint64_t dst = store.alloc(4 * 32);
    for (std::uint32_t i = 0; i < 512; ++i)
      store.write_u32(table + 4 * i, i ^ 0x55);
    const std::uint32_t indices[8] = {500, 1, 30, 2, 2, 77, 400, 0};
    std::vector<std::uint32_t> all;
    for (int r = 0; r < 4; ++r)
      for (auto v : indices) all.push_back(v);
    store.write(idx, all.data(), all.size() * 4);
    VecProgram p;
    p.push(vproc::op_vle(4, idx, 32, axi::Traffic::index));
    p.push(vproc::op_vluxei(5, table, 4, 32));
    p.push(vproc::op_vse(5, dst, 32));
    const auto result = f.run(p);
    EXPECT_TRUE(result.error.empty());
    for (std::uint32_t i = 0; i < 32; ++i) {
      EXPECT_EQ(store.read_u32(dst + 4 * i), all[i] ^ 0x55u)
          << sys::system_name(kind);
    }
  }
}

TEST(VprocTest, InMemoryIndexedGather) {
  ProgramFixture f(SystemKind::pack);
  auto& store = f.system.store();
  const std::uint64_t table = store.alloc(4 * 512);
  const std::uint64_t idx = store.alloc(4 * 40);
  const std::uint64_t dst = store.alloc(4 * 40);
  for (std::uint32_t i = 0; i < 512; ++i)
    store.write_u32(table + 4 * i, i * 13 + 1);
  std::vector<std::uint32_t> indices(40);
  for (std::uint32_t i = 0; i < 40; ++i) indices[i] = (i * 37) % 512;
  store.write(idx, indices.data(), indices.size() * 4);
  VecProgram p;
  p.push(vproc::op_vlimxei(6, table, idx, 40));
  p.push(vproc::op_vse(6, dst, 40));
  const auto result = f.run(p);
  EXPECT_TRUE(result.error.empty());
  for (std::uint32_t i = 0; i < 40; ++i) {
    EXPECT_EQ(store.read_u32(dst + 4 * i), indices[i] * 13 + 1);
  }
  // In-memory indirection must not put index traffic on the AXI bus.
  EXPECT_EQ(result.bus.r_index_bytes, 0u);
}

TEST(VprocTest, FmaccAndReduction) {
  ProgramFixture f(SystemKind::pack);
  auto& store = f.system.store();
  const std::uint64_t a = store.alloc(4 * 64);
  const std::uint64_t b = store.alloc(4 * 64);
  const std::uint64_t out = store.alloc(4);
  float expect = 0.0f;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const float av = 0.25f * static_cast<float>(i);
    const float bv = 1.0f - 0.01f * static_cast<float>(i);
    store.write_f32(a + 4 * i, av);
    store.write_f32(b + 4 * i, bv);
    expect += av * bv;
  }
  VecProgram p;
  p.push(vproc::op_vle(1, a, 64));
  p.push(vproc::op_vle(2, b, 64));
  p.push(vproc::op_vfmul_vv(3, 1, 2, 64));
  p.push(vproc::op_vredsum(3, out, 64));
  const auto result = f.run(p);
  EXPECT_TRUE(result.error.empty());
  EXPECT_NEAR(store.read_f32(out), expect, 1e-3f);
}

TEST(VprocTest, ReductionPostOps) {
  ProgramFixture f(SystemKind::pack);
  auto& store = f.system.store();
  const std::uint64_t a = store.alloc(4 * 16);
  const std::uint64_t out = store.alloc(4);
  float sum = 0.0f;
  for (std::uint32_t i = 0; i < 16; ++i) {
    store.write_f32(a + 4 * i, static_cast<float>(i));
    sum += static_cast<float>(i);
  }
  store.write_f32(out, 5.0f);
  VecProgram p;
  p.push(vproc::op_vle(1, a, 16));
  vproc::VecOp red = vproc::op_vredsum(1, out, 16);
  red.post_scale = 0.5f;
  red.post_add = 2.0f;
  p.push(red);
  f.run(p);
  EXPECT_NEAR(store.read_f32(out), 0.5f * sum + 2.0f, 1e-4f);
}

TEST(VprocTest, ReductionMinWithDest) {
  ProgramFixture f(SystemKind::pack);
  auto& store = f.system.store();
  const std::uint64_t a = store.alloc(4 * 8);
  const std::uint64_t out = store.alloc(4);
  const float values[8] = {9, 7, 8, 6.5f, 12, 7.5f, 20, 11};
  for (int i = 0; i < 8; ++i) store.write_f32(a + 4 * i, values[i]);
  store.write_f32(out, 3.25f);  // destination already smaller
  VecProgram p;
  p.push(vproc::op_vle(1, a, 8));
  vproc::VecOp red = vproc::op_vredmin(1, out, 8);
  red.post_min_with_dest = true;
  p.push(red);
  f.run(p);
  EXPECT_FLOAT_EQ(store.read_f32(out), 3.25f);
}

TEST(VprocTest, SlidedownAligns) {
  ProgramFixture f(SystemKind::pack);
  auto& store = f.system.store();
  const std::uint64_t a = store.alloc(4 * 64);
  const std::uint64_t dst = store.alloc(4 * 16);
  for (std::uint32_t i = 0; i < 64; ++i) store.write_u32(a + 4 * i, 100 + i);
  VecProgram p;
  p.push(vproc::op_vle(1, a, 64));
  p.push(vproc::op_vslidedown(2, 1, 10, 16));
  p.push(vproc::op_vse(2, dst, 16));
  f.run(p);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(store.read_u32(dst + 4 * i), 110u + i);
  }
}

TEST(VprocTest, ChainingOverlapsLoadAndCompute) {
  // With chaining, vle + vfmul must take much less than their serial sum.
  ProgramFixture f(SystemKind::pack);
  auto& store = f.system.store();
  const std::uint64_t a = store.alloc(4 * 1024);
  for (std::uint32_t i = 0; i < 1024; ++i) store.write_f32(a + 4 * i, 1.0f);
  VecProgram chained;
  chained.push(vproc::op_vle(1, a, 1024));
  chained.push(vproc::op_vfmacc_vf(2, 1, 2.0f, 1024));
  const auto r = f.run(chained);
  // 1024 elems = 128 beats; serial would be ~128 + 128 cycles + overheads.
  EXPECT_LT(r.cycles, 220u);
  EXPECT_GT(r.cycles, 128u);
}

TEST(VprocTest, ConservativeMemoryOrdering) {
  // A store followed by a load of the same region must observe the store.
  for (const auto kind :
       {SystemKind::base, SystemKind::pack, SystemKind::ideal}) {
    ProgramFixture f(kind);
    auto& store = f.system.store();
    const std::uint64_t buf = store.alloc(4 * 32);
    const std::uint64_t dst = store.alloc(4 * 32);
    for (std::uint32_t i = 0; i < 32; ++i) store.write_u32(buf + 4 * i, 1);
    VecProgram p;
    p.push(vproc::op_vbrd(1, 42.0f, 32));
    p.push(vproc::op_vse(1, buf, 32));
    p.push(vproc::op_vle(2, buf, 32));
    p.push(vproc::op_vse(2, dst, 32));
    f.run(p);
    for (std::uint32_t i = 0; i < 32; ++i) {
      EXPECT_FLOAT_EQ(store.read_f32(dst + 4 * i), 42.0f)
          << sys::system_name(kind);
    }
  }
}

TEST(VprocTest, ScalarOpsConsumeIssueCycles) {
  ProgramFixture f(SystemKind::pack);
  VecProgram p;
  for (int i = 0; i < 10; ++i) p.push(vproc::op_scalar(7));
  const auto r = f.run(p);
  EXPECT_GE(r.cycles, 70u);
  EXPECT_LT(r.cycles, 100u);
}

TEST(VprocTest, PackStridedFasterThanBase) {
  // The core claim at instruction level: a strided load of 1024 elements is
  // several times faster with AXI-Pack.
  auto measure = [](SystemKind kind) {
    ProgramFixture f(kind);
    auto& store = f.system.store();
    const std::uint64_t src = store.alloc(4 * 16384);
    VecProgram p;
    p.push(vproc::op_vlse(1, src, 64, 1024));
    return f.run(p).cycles;
  };
  const auto base = measure(SystemKind::base);
  const auto pack = measure(SystemKind::pack);
  EXPECT_GT(base, 3 * pack);
}

}  // namespace
}  // namespace axipack
