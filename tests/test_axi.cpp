// AXI substrate tests: pack user encoding round-trips, burst splitting
// rules (4 KiB / 256-beat), beat address math, link monitoring.
#include "test_common.hpp"

#include "axi/burst.hpp"
#include "axi/monitor.hpp"
#include "axi/pack.hpp"
#include "axi/types.hpp"

namespace axipack::axi {
namespace {

TEST(PackUser, PlainRequestEncodesToZero) {
  EXPECT_EQ(encode_user(std::nullopt), 0u);
  EXPECT_FALSE(decode_user(0, 0).has_value());
}

TEST(PackUser, StridedRoundTrip) {
  PackRequest req;
  req.indir = false;
  req.stride = 1024;
  req.num_elems = 77;
  const UserBits u = encode_user(req);
  const auto back = decode_user(u, 77);
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->indir);
  EXPECT_EQ(back->stride, 1024);
  EXPECT_EQ(back->num_elems, 77u);
}

TEST(PackUser, NegativeStrideRoundTrip) {
  PackRequest req;
  req.indir = false;
  req.stride = -4096;
  const UserBits u = encode_user(req);
  const auto back = decode_user(u, 1);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->stride, -4096);
}

TEST(PackUser, IndirectRoundTrip) {
  PackRequest req;
  req.indir = true;
  req.index_base = 0x8001'2340ull;
  req.index_bits = 16;
  const UserBits u = encode_user(req);
  const auto back = decode_user(u, 10);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->indir);
  EXPECT_EQ(back->index_base, 0x8001'2340ull);
  EXPECT_EQ(back->index_bits, 16u);
}

TEST(PackUser, IndexSizeCodes) {
  EXPECT_EQ(index_code_to_bits(index_bits_to_code(8)), 8u);
  EXPECT_EQ(index_code_to_bits(index_bits_to_code(16)), 16u);
  EXPECT_EQ(index_code_to_bits(index_bits_to_code(32)), 32u);
}

TEST(PackUser, ExtremeStridesRoundTripAtEveryWidth) {
  // The full representable stride range must survive the wire encoding at
  // every supported user width — including the maximum-magnitude negative
  // stride (whose encoding occupies the topmost payload bit) at the
  // minimum width, and the 64-bit carrier boundary at the maximum width.
  for (unsigned w = kMinUserBits; w <= kMaxUserBits; w += 4) {
    const unsigned payload_bits = w - 4;
    const std::int64_t lo = -(std::int64_t{1} << (payload_bits - 1));
    const std::int64_t hi = (std::int64_t{1} << (payload_bits - 1)) - 1;
    for (const std::int64_t stride : {lo, lo + 1, std::int64_t{-1},
                                      std::int64_t{0}, std::int64_t{1},
                                      hi - 1, hi}) {
      ASSERT_TRUE(stride_fits_user(stride, w)) << "w=" << w;
      PackRequest req;
      req.indir = false;
      req.stride = stride;
      req.num_elems = 9;
      const auto back = decode_user(encode_user(req, w), 9, w);
      ASSERT_TRUE(back.has_value()) << "w=" << w;
      EXPECT_EQ(back->stride, stride) << "w=" << w;
      EXPECT_FALSE(back->indir) << "w=" << w;
    }
    // One past the range must be reported as unrepresentable.
    EXPECT_FALSE(stride_fits_user(lo - 1, w)) << "w=" << w;
    EXPECT_FALSE(stride_fits_user(hi + 1, w)) << "w=" << w;
  }
}

TEST(PackUser, FortyEightBitIndexBasesRoundTrip) {
  // The default 52-bit user width exists precisely to carry a 48-bit index
  // base; all-ones and high-bit-heavy bases must survive, with every index
  // size code, at the default and wider widths.
  for (const unsigned w : {kDefaultUserBits, 56u, 60u, kMaxUserBits}) {
    for (const std::uint64_t base :
         {(std::uint64_t{1} << 48) - 1,     // 48 ones
          std::uint64_t{1} << 47,           // top bit only
          std::uint64_t{0xFEDC'BA98'7654}}) {
      for (const unsigned index_bits : {8u, 16u, 32u}) {
        ASSERT_TRUE(index_base_fits_user(base, w)) << "w=" << w;
        PackRequest req;
        req.indir = true;
        req.index_base = base;
        req.index_bits = index_bits;
        req.num_elems = 5;
        const auto back = decode_user(encode_user(req, w), 5, w);
        ASSERT_TRUE(back.has_value()) << "w=" << w;
        EXPECT_TRUE(back->indir);
        EXPECT_EQ(back->index_base, base) << "w=" << w;
        EXPECT_EQ(back->index_bits, index_bits) << "w=" << w;
      }
    }
  }
  // A 48-bit base does not fit below the default width.
  EXPECT_FALSE(index_base_fits_user((std::uint64_t{1} << 48) - 1, 48));
  EXPECT_TRUE(index_base_fits_user((std::uint64_t{1} << 44) - 1, 48));
}

TEST(PackUser, DecodeIgnoresBitsAboveTheWireWidth) {
  // A narrow user signal has no wires above user_bits: garbage there (e.g.
  // from a wider struct field) must not corrupt the decoded request.
  PackRequest req;
  req.indir = false;
  req.stride = -4;
  const UserBits u = encode_user(req, kMinUserBits);
  const UserBits dirty = u | (~std::uint64_t{0} << kMinUserBits);
  const auto back = decode_user(dirty, 3, kMinUserBits);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->stride, -4);
  EXPECT_EQ(back->num_elems, 3u);
}

TEST(StreamElems, PartialLastBeat) {
  // 10 elements of 4B on a 32B bus -> beat 0 has 8, beat 1 has 2.
  EXPECT_EQ(stream_elems(2, 32, 4, 10), 10u);
  EXPECT_EQ(stream_elems(1, 32, 4, 10), 8u);
}

TEST(SplitContiguous, RespectsBusAlignment) {
  const auto bursts = split_contiguous(0x8000'0004, 64, 32);
  ASSERT_FALSE(bursts.empty());
  // First burst starts at the bus-aligned line containing the address.
  EXPECT_EQ(bursts[0].addr, 0x8000'0000u);
}

TEST(SplitContiguous, Respects4KBoundary) {
  // 8 KiB starting just below a 4 KiB boundary.
  const auto bursts = split_contiguous(0x8000'0FE0, 8192, 32);
  for (const auto& b : bursts) {
    const std::uint64_t first = b.addr;
    const std::uint64_t last = b.addr + std::uint64_t{b.beats()} * 32 - 1;
    EXPECT_EQ(first / 4096, last / 4096)
        << "burst crosses 4KiB boundary at " << std::hex << first;
  }
}

TEST(SplitContiguous, Respects256BeatLimit) {
  const auto bursts = split_contiguous(0x8000'0000, 1u << 20, 32);
  for (const auto& b : bursts) {
    EXPECT_LE(b.beats(), 256u);
  }
  // Total coverage.
  std::uint64_t bytes = 0;
  for (const auto& b : bursts) bytes += std::uint64_t{b.beats()} * 32;
  EXPECT_GE(bytes, 1u << 20);
}

TEST(SplitContiguous, EmptyRange) {
  EXPECT_TRUE(split_contiguous(0x8000'0000, 0, 32).empty());
}

TEST(SplitPackStrided, SingleBurstGeometry) {
  const auto bursts = split_pack_strided(0x8000'0000, 1024, 4, 256, 32);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].beats(), 32u);  // 256 elems / 8 per beat
  ASSERT_TRUE(bursts[0].pack.has_value());
  EXPECT_EQ(bursts[0].pack->num_elems, 256u);
  EXPECT_EQ(bursts[0].pack->stride, 1024);
  EXPECT_EQ(bursts[0].beat_bytes(), 4u);
}

TEST(SplitPackStrided, LongStreamSplitsAt256Beats) {
  // 5000 elements of 4B on 32B bus: 8 elems/beat -> 625 beats -> 3 bursts.
  const auto bursts = split_pack_strided(0x8000'0000, 8, 4, 5000, 32);
  ASSERT_EQ(bursts.size(), 3u);
  EXPECT_EQ(bursts[0].beats(), 256u);
  EXPECT_EQ(bursts[0].pack->num_elems, 2048u);
  // Second burst must start where the first left off.
  EXPECT_EQ(bursts[1].addr, 0x8000'0000ull + 2048ull * 8);
  std::uint64_t total = 0;
  for (const auto& b : bursts) total += b.pack->num_elems;
  EXPECT_EQ(total, 5000u);
}

TEST(SplitPackIndirect, IndexBaseAdvances) {
  const auto bursts = split_pack_indirect(0x8000'0000, 0x8010'0000, 32, 4,
                                          3000, 32);
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_EQ(bursts[0].pack->index_base, 0x8010'0000u);
  EXPECT_EQ(bursts[1].pack->index_base, 0x8010'0000u + 2048u * 4);
  EXPECT_TRUE(bursts[0].pack->indir);
}

TEST(BeatAddr, IncrAlignsAfterFirstBeat) {
  AxiAr ar;
  ar.addr = 0x8000'0004;
  ar.size = 5;  // 32B
  ar.len = 3;
  ar.burst = BurstType::incr;
  EXPECT_EQ(beat_addr(ar, 0), 0x8000'0004u);
  EXPECT_EQ(beat_addr(ar, 1), 0x8000'0020u);
  EXPECT_EQ(beat_addr(ar, 2), 0x8000'0040u);
}

TEST(BeatAddr, FixedRepeats) {
  AxiAr ar;
  ar.addr = 0x8000'0100;
  ar.size = 2;
  ar.len = 7;
  ar.burst = BurstType::fixed;
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(beat_addr(ar, i), 0x8000'0100u);
}

TEST(BeatAddr, WrapWrapsInContainer) {
  AxiAr ar;
  ar.addr = 0x8000'0010;
  ar.size = 2;  // 4B beats
  ar.len = 7;   // 8 beats -> 32B container
  ar.burst = BurstType::wrap;
  EXPECT_EQ(beat_addr(ar, 0), 0x8000'0010u);
  EXPECT_EQ(beat_addr(ar, 3), 0x8000'001Cu);
  EXPECT_EQ(beat_addr(ar, 4), 0x8000'0000u);  // wrapped
  EXPECT_EQ(beat_addr(ar, 7), 0x8000'000Cu);
}

TEST(ByteHelpers, PlaceExtractRoundTrip) {
  BeatBytes beat{};
  const std::uint32_t value = 0xDEADBEEF;
  place_bytes(beat, 12, reinterpret_cast<const std::uint8_t*>(&value), 4);
  std::uint32_t out = 0;
  extract_bytes(beat, 12, reinterpret_cast<std::uint8_t*>(&out), 4);
  EXPECT_EQ(out, value);
}

TEST(ByteHelpers, StrbMask) {
  EXPECT_EQ(strb_mask(0, 4), 0xFu);
  EXPECT_EQ(strb_mask(4, 4), 0xF0u);
  EXPECT_EQ(strb_mask(0, 32), 0xFFFF'FFFFu);
}

TEST(AxiLink, ForwardsAndCounts) {
  sim::Kernel k;
  AxiPort up(k, 2, "up");
  AxiPort down(k, 2, "down");
  AxiLink link(k, up, down);

  AxiAr ar;
  ar.addr = 0x8000'0000;
  up.ar.push(ar);
  AxiR r;
  r.useful_bytes = 32;
  r.traffic = Traffic::index;
  down.r.push(r);
  k.run(3);

  EXPECT_TRUE(down.ar.can_pop());
  EXPECT_TRUE(up.r.can_pop());
  EXPECT_EQ(link.stats().ar_handshakes, 1u);
  EXPECT_EQ(link.stats().r_beats, 1u);
  EXPECT_EQ(link.stats().r_payload_bytes, 32u);
  EXPECT_EQ(link.stats().r_index_bytes, 32u);
}

TEST(AxiLink, StatsDiff) {
  BusStats a;
  a.r_beats = 10;
  a.r_payload_bytes = 320;
  BusStats b = a;
  b.r_beats = 25;
  b.r_payload_bytes = 800;
  const BusStats d = b.diff(a);
  EXPECT_EQ(d.r_beats, 15u);
  EXPECT_EQ(d.r_payload_bytes, 480u);
}

}  // namespace
}  // namespace axipack::axi
