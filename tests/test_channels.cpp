// Multi-channel memory scale-out tests.
//
// Three layers:
//   * ChannelRouter unit tests against a scripted per-channel memory stub:
//     interleave geometry, read splitting + seam-hidden reassembly, write
//     splitting + worst-resp B merging, and the error-truncation poison
//     protocol (including drain and reuse after a poisoned transaction).
//   * System-level differential tests: the same workload produces the same
//     memory image and verified result for channels in {1, 2, 4, 8} under
//     every DRAM mapping, 1-channel builds match the legacy single-endpoint
//     wiring exactly, and per-channel stats sum to the aggregates.
//   * Scenario-grammar tests for the -ch / -m knobs.
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "axi/burst.hpp"
#include "axi/channel_router.hpp"
#include "axi/types.hpp"
#include "mem/backing_store.hpp"
#include "mem/dram_timing.hpp"
#include "sim/kernel.hpp"
#include "systems/builder.hpp"
#include "systems/runner.hpp"
#include "systems/scenario.hpp"
#include "systems/system.hpp"
#include "test_common.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace axipack;

constexpr std::uint64_t kBase = 0x8000'0000ull;
constexpr std::uint64_t kSize = 1ull << 20;
constexpr unsigned kBusBytes = 32;

/// Scripted slave for one router down-channel: serves R beats whose first
/// eight data lanes carry the beat's absolute address (so reassembly order
/// and pass-through addressing are both observable upstream), accepts W
/// bursts and answers each with a configurable B response, and can
/// truncate one chosen read burst early with an error beat.
class MemStub final : public sim::Component {
 public:
  MemStub(sim::Kernel& k, axi::AxiPort& port) : port_(port) {
    k.add(*this);
    k.subscribe(*this, port.ar);
    k.subscribe(*this, port.aw);
    k.subscribe(*this, port.w);
  }

  /// Truncate the `burst`-th read burst served (0-based): emit `beats`
  /// beats, the final one SLVERR with `last` set.
  void truncate_read(unsigned burst, unsigned beats) {
    trunc_burst_ = burst;
    trunc_beats_ = beats;
  }
  void write_resp(std::uint8_t resp) { b_resp_ = resp; }

  const std::vector<axi::AxiAr>& ars_seen() const { return ars_seen_; }
  const std::vector<unsigned>& w_burst_lens() const { return w_lens_; }
  std::uint64_t r_beats_served() const { return r_beats_served_; }

  void tick() override {
    if (!r_active_ && port_.ar.can_pop()) {
      ar_ = port_.ar.pop();
      ars_seen_.push_back(ar_);
      r_active_ = true;
      beat_ = 0;
      ++r_bursts_started_;
    }
    if (r_active_ && port_.r.can_push()) {
      axi::AxiR r;
      r.id = ar_.id;
      // Pack-burst element addresses are data-dependent; stamp a synthetic
      // per-beat address for those instead of decoding the stream.
      const std::uint64_t addr =
          ar_.pack.has_value()
              ? ar_.addr + beat_ * std::uint64_t{ar_.beat_bytes()}
              : axi::beat_addr(ar_, beat_);
      std::memcpy(r.data.data(), &addr, sizeof(addr));
      r.useful_bytes = kBusBytes;
      const bool trunc = r_bursts_started_ - 1 == trunc_burst_ &&
                         beat_ + 1 == trunc_beats_;
      r.last = trunc || beat_ == ar_.len;
      r.resp = trunc ? axi::kRespSlvErr : axi::kRespOkay;
      port_.r.push(r);
      ++r_beats_served_;
      ++beat_;
      if (r.last) r_active_ = false;
    }
    if (!w_active_ && !b_pending_ && port_.aw.can_pop()) {
      aw_ = port_.aw.pop();
      w_active_ = true;
      wbeat_ = 0;
    }
    if (w_active_ && port_.w.can_pop()) {
      const axi::AxiW wb = port_.w.pop();
      ++wbeat_;
      if (wb.last) {
        w_lens_.push_back(wbeat_);
        w_active_ = false;
        b_pending_ = true;
      }
    }
    if (b_pending_ && port_.b.can_push()) {
      axi::AxiB b;
      b.id = aw_.id;
      b.resp = b_resp_;
      port_.b.push(b);
      b_pending_ = false;
    }
  }

 private:
  axi::AxiPort& port_;
  axi::AxiAr ar_;
  axi::AxiAw aw_;
  bool r_active_ = false;
  bool w_active_ = false;
  bool b_pending_ = false;
  unsigned beat_ = 0;
  unsigned wbeat_ = 0;
  std::uint64_t r_bursts_started_ = 0;
  std::uint64_t r_beats_served_ = 0;
  unsigned trunc_burst_ = ~0u;
  unsigned trunc_beats_ = 0;
  std::uint8_t b_resp_ = axi::kRespOkay;
  std::vector<axi::AxiAr> ars_seen_;
  std::vector<unsigned> w_lens_;
};

struct RouterHarness {
  sim::Kernel kernel;
  axi::AxiPort up;
  axi::ChannelRouter router;
  std::vector<std::unique_ptr<MemStub>> stubs;

  RouterHarness(unsigned channels, std::uint64_t granule)
      : up(kernel, 2, "up"),
        router(kernel, up,
               axi::ChannelRouteConfig{kBase, kSize, granule, channels},
               "rt") {
    for (unsigned c = 0; c < channels; ++c) {
      stubs.push_back(std::make_unique<MemStub>(kernel, router.down(c)));
    }
  }

  /// Pushes `ar` upstream and collects R beats until `last` or the cycle
  /// limit.
  std::vector<axi::AxiR> run_read(const axi::AxiAr& ar,
                                  unsigned limit = 5000) {
    bool pushed = false;
    std::vector<axi::AxiR> beats;
    for (unsigned i = 0; i < limit; ++i) {
      if (!pushed) pushed = up.ar.try_push(ar);
      kernel.step();
      while (const auto b = up.r.try_pop()) beats.push_back(*b);
      if (!beats.empty() && beats.back().last) break;
    }
    return beats;
  }
};

std::uint64_t stamped_addr(const axi::AxiR& r) {
  std::uint64_t a = 0;
  std::memcpy(&a, r.data.data(), sizeof(a));
  return a;
}

TEST(ChannelRouter, BlockOfGranulesCoversEveryChannelOnce) {
  RouterHarness h(4, 4096);
  for (std::uint64_t block = 0; block < 8; ++block) {
    unsigned seen_mask = 0;
    for (std::uint64_t c = 0; c < 4; ++c) {
      const std::uint64_t addr = kBase + (block * 4 + c) * 4096;
      const unsigned ch = h.router.channel_of(addr);
      EXPECT_LT(ch, 4u);
      seen_mask |= 1u << ch;
      // Every address of a granule maps to the granule's channel.
      EXPECT_EQ(h.router.channel_of(addr + 4095), ch);
    }
    EXPECT_EQ(seen_mask, 0xfu);
  }
  // Out-of-region addresses decode to channel 0 (its crossbar raises the
  // DECERR).
  EXPECT_EQ(h.router.channel_of(kBase - 1), 0u);
  EXPECT_EQ(h.router.channel_of(kBase + kSize), 0u);
}

TEST(ChannelRouter, SplitsReadAtGranulesAndReassemblesInOrder) {
  RouterHarness h(2, 256);
  axi::AxiAr ar;
  ar.addr = kBase;
  ar.id = 7;
  ar.len = 31;  // 32 beats x 32 B = 1 KiB = 4 granules
  ar.size = 5;
  const std::vector<axi::AxiR> beats = h.run_read(ar);

  ASSERT_EQ(beats.size(), 32u);
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(beats[i].id, 7u);
    EXPECT_EQ(beats[i].resp, axi::kRespOkay);
    // Beats come back in original order with pass-through addressing; the
    // sub-burst seams are hidden (`last` only on the final beat).
    EXPECT_EQ(stamped_addr(beats[i]), kBase + i * 32ull);
    EXPECT_EQ(beats[i].last, i == 31);
  }

  // Each stub only saw sub-bursts that belong to its channel, each
  // granule-contained, and the sub-burst beats sum to the original burst.
  std::uint64_t total_beats = 0;
  for (unsigned c = 0; c < 2; ++c) {
    for (const axi::AxiAr& sub : h.stubs[c]->ars_seen()) {
      EXPECT_EQ(h.router.channel_of(sub.addr), c);
      EXPECT_EQ(h.router.channel_of(axi::beat_addr(sub, sub.len)), c);
      total_beats += sub.beats();
    }
    EXPECT_GT(h.stubs[c]->ars_seen().size(), 0u);
  }
  EXPECT_EQ(total_beats, 32u);
  EXPECT_EQ(h.router.pending(), 0u);
}

TEST(ChannelRouter, RoutesPackBurstsWholeByStreamAnchor) {
  RouterHarness h(2, 256);
  axi::AxiAr ar;
  ar.addr = kBase + 3 * 256;  // granule 3
  ar.id = 1;
  ar.len = 15;
  ar.size = 2;
  axi::PackRequest pr;
  pr.indir = false;
  pr.stride = 1024;  // elements hop granules; the burst must not split
  pr.num_elems = 16;
  ar.pack = pr;
  const std::vector<axi::AxiR> beats = h.run_read(ar);
  ASSERT_EQ(beats.size(), 16u);
  EXPECT_TRUE(beats.back().last);

  const unsigned home = h.router.channel_of(ar.addr);
  EXPECT_EQ(h.stubs[home]->ars_seen().size(), 1u);
  EXPECT_EQ(h.stubs[home ^ 1]->ars_seen().size(), 0u);
  EXPECT_TRUE(h.stubs[home]->ars_seen()[0].pack.has_value());
}

TEST(ChannelRouter, MergesWriteResponsesWorstResp) {
  RouterHarness h(2, 256);
  // 16 beats x 32 B = 512 B = 2 granules: one sub-AW per channel.
  axi::AxiAw aw;
  aw.addr = kBase;
  aw.id = 3;
  aw.len = 15;
  aw.size = 5;
  h.stubs[0]->write_resp(axi::kRespOkay);
  h.stubs[1]->write_resp(axi::kRespSlvErr);

  bool aw_pushed = false;
  unsigned w_pushed = 0;
  std::vector<axi::AxiB> bs;
  for (unsigned i = 0; i < 2000 && bs.empty(); ++i) {
    if (!aw_pushed) aw_pushed = h.up.aw.try_push(aw);
    if (aw_pushed && w_pushed < 16) {
      axi::AxiW w;
      w.strb = 0xffffffffu;
      w.useful_bytes = kBusBytes;
      w.last = w_pushed == 15;
      if (h.up.w.try_push(w)) ++w_pushed;
    }
    h.kernel.step();
    while (const auto b = h.up.b.try_pop()) bs.push_back(*b);
  }

  // Exactly one merged B, carrying the worst sub-response.
  ASSERT_EQ(bs.size(), 1u);
  EXPECT_EQ(bs[0].id, 3u);
  EXPECT_EQ(bs[0].resp, axi::kRespSlvErr);
  // Each channel got its 8-beat slice with `last` rewritten per sub-burst.
  ASSERT_EQ(h.stubs[0]->w_burst_lens().size(), 1u);
  ASSERT_EQ(h.stubs[1]->w_burst_lens().size(), 1u);
  EXPECT_EQ(h.stubs[0]->w_burst_lens()[0], 8u);
  EXPECT_EQ(h.stubs[1]->w_burst_lens()[0], 8u);
  EXPECT_EQ(h.router.pending(), 0u);
}

TEST(ChannelRouter, TruncatedSubBurstPoisonsDrainsAndRecovers) {
  RouterHarness h(2, 256);
  // 32 beats spanning 4 granules; channel sequence ch0 x8, ch1 x16, ch0 x8
  // (granules 1 and 2 both fold to channel 1 with two channels).
  axi::AxiAr ar;
  ar.addr = kBase;
  ar.id = 9;
  ar.len = 31;
  ar.size = 5;
  ASSERT_EQ(h.router.channel_of(kBase + 0 * 256), 0u);
  ASSERT_EQ(h.router.channel_of(kBase + 1 * 256), 1u);
  ASSERT_EQ(h.router.channel_of(kBase + 2 * 256), 1u);
  ASSERT_EQ(h.router.channel_of(kBase + 3 * 256), 0u);
  // Channel 1 dies 6 beats into its (first) 16-beat sub-burst.
  h.stubs[1]->truncate_read(0, 6);

  const std::vector<axi::AxiR> beats = h.run_read(ar);
  // 8 clean channel-0 beats, 5 clean channel-1 beats, then the error beat
  // terminates the burst early with `last` set.
  ASSERT_EQ(beats.size(), 14u);
  for (unsigned i = 0; i < 13; ++i) {
    EXPECT_EQ(beats[i].resp, axi::kRespOkay);
    EXPECT_FALSE(beats[i].last);
    EXPECT_EQ(stamped_addr(beats[i]), kBase + i * 32ull);
  }
  EXPECT_EQ(beats[13].resp, axi::kRespSlvErr);
  EXPECT_TRUE(beats[13].last);

  // The poisoned transaction's trailing sub-burst is drained internally;
  // nothing else surfaces upstream and the router goes fully idle.
  for (unsigned i = 0; i < 200; ++i) {
    h.kernel.step();
    EXPECT_FALSE(h.up.r.try_pop().has_value());
  }
  EXPECT_EQ(h.router.pending(), 0u);

  // The router is reusable after a poisoned transaction.
  axi::AxiAr again;
  again.addr = kBase + 4 * 256;
  again.id = 10;
  again.len = 7;
  again.size = 5;
  const std::vector<axi::AxiR> ok = h.run_read(again);
  ASSERT_EQ(ok.size(), 8u);
  EXPECT_TRUE(ok.back().last);
  EXPECT_EQ(ok.back().resp, axi::kRespOkay);
  EXPECT_EQ(stamped_addr(ok[0]), again.addr);
}

// ---------------------------------------------------------------------------
// System-level differential tests.

std::uint64_t store_hash(sys::System& system) {
  mem::BackingStore& st = system.store();
  std::vector<std::uint8_t> buf(1u << 16);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (std::uint64_t off = 0; off < st.size(); off += buf.size()) {
    const std::uint64_t n =
        std::min<std::uint64_t>(buf.size(), st.size() - off);
    st.read(st.base() + off, buf.data(), n);
    for (std::uint64_t i = 0; i < n; ++i) {
      h ^= buf[i];
      h *= 1099511628211ull;
    }
  }
  return h;
}

struct ChannelRun {
  sys::RunResult rr;
  std::uint64_t hash = 0;
};

ChannelRun run_gemv(unsigned channels, mem::DramMapping mapping) {
  sys::SystemBuilder b = sys::parse_scenario("pack-256-dram").value();
  mem::DramTimingConfig t;
  t.mapping = mapping;
  b.dram_timing(t);
  b.channels(channels);
  wl::WorkloadConfig cfg = sys::plan_workload(wl::KernelKind::gemv, b);
  cfg.n = 96;
  std::unique_ptr<sys::System> system = b.build();
  const wl::WorkloadInstance inst = wl::build_workload(system->store(), cfg);
  ChannelRun out;
  out.rr = system->run(inst);
  out.hash = store_hash(*system);
  return out;
}

TEST(SystemChannels, DataIdenticalAcrossChannelCountsAndMappings) {
  for (const mem::DramMapping mapping :
       {mem::DramMapping::permuted, mem::DramMapping::bank_interleaved,
        mem::DramMapping::row_interleaved}) {
    std::optional<std::uint64_t> golden;
    for (const unsigned channels : {1u, 2u, 4u, 8u}) {
      const ChannelRun run = run_gemv(channels, mapping);
      ASSERT_TRUE(run.rr.correct);
      EXPECT_EQ(run.rr.error, std::string());
      EXPECT_EQ(run.rr.channels, channels);
      // Same inputs, same outputs: the interleaved fan-out must not change
      // a single byte of the memory image, only the timing.
      if (!golden) {
        golden = run.hash;
      } else {
        EXPECT_EQ(run.hash, *golden);
      }
    }
  }
}

TEST(SystemChannels, OneChannelBuildMatchesLegacyWiringExactly) {
  // channels(1) must not merely be "close": it is the same wiring (no
  // router is built), so cycles and every counter match bit for bit.
  std::optional<sys::SystemBuilder> legacy =
      sys::parse_scenario("pack-256-dram");
  ASSERT_TRUE(legacy.has_value());
  std::optional<sys::SystemBuilder> one = sys::parse_scenario("pack-256-dram");
  ASSERT_TRUE(one.has_value());
  one->channels(1);

  wl::WorkloadConfig cfg = sys::plan_workload(wl::KernelKind::gemv, *legacy);
  cfg.n = 96;

  std::unique_ptr<sys::System> sys_a = legacy->build();
  const wl::WorkloadInstance inst_a = wl::build_workload(sys_a->store(), cfg);
  const sys::RunResult a = sys_a->run(inst_a);

  std::unique_ptr<sys::System> sys_b = one->build();
  const wl::WorkloadInstance inst_b = wl::build_workload(sys_b->store(), cfg);
  const sys::RunResult b = sys_b->run(inst_b);

  EXPECT_TRUE(a.correct);
  EXPECT_TRUE(b.correct);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.channels, 1u);
  EXPECT_EQ(b.channels, 1u);
  EXPECT_EQ(a.bus.r_beats, b.bus.r_beats);
  EXPECT_EQ(a.bus.r_payload_bytes, b.bus.r_payload_bytes);
  EXPECT_EQ(a.bus.w_beats, b.bus.w_beats);
  EXPECT_EQ(a.row_hits, b.row_hits);
  EXPECT_EQ(a.row_misses, b.row_misses);
  EXPECT_EQ(a.r_util, b.r_util);
  EXPECT_EQ(store_hash(*sys_a), store_hash(*sys_b));
}

TEST(SystemChannels, PerChannelStatsSumToAggregates) {
  const ChannelRun run = run_gemv(4, mem::DramMapping::permuted);
  ASSERT_TRUE(run.rr.correct);
  const sys::RunResult& rr = run.rr;
  ASSERT_EQ(rr.per_channel.size(), 4u);

  std::uint64_t r_beats = 0, r_payload = 0, hits = 0, misses = 0;
  double util = 0.0;
  unsigned active = 0;
  for (const sys::ChannelRunStats& cs : rr.per_channel) {
    r_beats += cs.bus.r_beats;
    r_payload += cs.bus.r_payload_bytes;
    hits += cs.row_hits;
    misses += cs.row_misses;
    util += cs.r_util;
    if (cs.bus.r_beats > 0) ++active;
  }
  EXPECT_EQ(r_beats, rr.bus.r_beats);
  EXPECT_EQ(r_payload, rr.bus.r_payload_bytes);
  EXPECT_EQ(hits, rr.row_hits);
  EXPECT_EQ(misses, rr.row_misses);
  EXPECT_NEAR(util, rr.r_util, 1e-9);
  // The gemv footprint spans many granules: the interleave must actually
  // spread the stream over the channels.
  EXPECT_GT(active, 1u);
}

// ---------------------------------------------------------------------------
// Scenario-grammar coverage for the channel and master-count knobs.

TEST(ScenarioGrammar, ChannelKnobParsesAndConfigures) {
  std::string error;
  const auto b = sys::parse_scenario("pack-256-dram-ch4", &error);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(error, std::string());
  EXPECT_EQ(b->num_channels(), 4u);

  // Composes with the other dram knobs, in any order.
  const auto c = sys::parse_scenario("pack-64-dram-w8-ch2-f50-r4", &error);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->num_channels(), 2u);

  // A bare '-c' is still the starvation cap, not a channel count.
  const auto d = sys::parse_scenario("pack-256-dram-c100", &error);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->num_channels(), 1u);
}

TEST(ScenarioGrammar, ChannelKnobRejectsBadValues) {
  std::string error;
  EXPECT_FALSE(sys::parse_scenario("pack-256-dram-ch0", &error).has_value());

  error.clear();
  EXPECT_FALSE(sys::parse_scenario("pack-256-dram-ch3", &error).has_value());
  EXPECT_NE(error.find("'-ch3'"), std::string::npos);
  EXPECT_NE(error.find("power-of-two"), std::string::npos);

  error.clear();
  EXPECT_FALSE(sys::parse_scenario("pack-256-dram-ch128", &error).has_value());

  error.clear();
  EXPECT_FALSE(
      sys::parse_scenario("pack-256-dram-ch2-ch4", &error).has_value());
  EXPECT_NE(error.find("'-ch'"), std::string::npos);
}

TEST(ScenarioGrammar, MasterCountKnobParses) {
  std::string error;
  const auto b = sys::parse_scenario("pack-256-dram-ch4-m6", &error);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(error, std::string());
  EXPECT_EQ(b->num_channels(), 4u);

  EXPECT_FALSE(sys::parse_scenario("pack-256-dram-m0", &error).has_value());

  error.clear();
  EXPECT_FALSE(
      sys::parse_scenario("pack-256-dram-m4-m8", &error).has_value());
  EXPECT_NE(error.find("'-m'"), std::string::npos);
}

TEST(ScenarioGrammar, ManyMasterScenariosAreRegistered) {
  for (const char* name :
       {"many-master-pack-16", "many-master-pack-32", "many-master-pack-64"}) {
    sys::SystemBuilder b = sys::ScenarioRegistry::instance().builder(name);
    EXPECT_GT(b.num_channels(), 1u);
  }
}

}  // namespace
