// Banked-memory tests: backing store semantics, interleaved bank mapping,
// conflict arbitration, fixed-latency ordering, ideal memory.
#include "test_common.hpp"

#include <memory>
#include <set>

#include "mem/backing_store.hpp"
#include "mem/bank.hpp"
#include "mem/banked_memory.hpp"
#include "mem/ideal_memory.hpp"

namespace axipack::mem {
namespace {

constexpr std::uint64_t kBase = 0x8000'0000ull;

TEST(BackingStore, ReadWriteRoundTrip) {
  BackingStore store(kBase, 1 << 20);
  store.write_u32(kBase + 64, 0xCAFEBABE);
  EXPECT_EQ(store.read_u32(kBase + 64), 0xCAFEBABEu);
  store.write_f32(kBase + 128, 3.5f);
  EXPECT_FLOAT_EQ(store.read_f32(kBase + 128), 3.5f);
}

TEST(BackingStore, StrobedWrite) {
  BackingStore store(kBase, 4096);
  store.write_u32(kBase, 0x11223344);
  store.write_word(kBase, 0xAABBCCDD, 0b0101);  // bytes 0 and 2
  EXPECT_EQ(store.read_u32(kBase), 0x11BB33DDu);
}

TEST(BackingStore, AllocAlignsAndAdvances) {
  BackingStore store(kBase, 1 << 16);
  const auto a = store.alloc(100, 64);
  const auto b = store.alloc(4, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
}

TEST(BackingStore, Contains) {
  BackingStore store(kBase, 4096);
  EXPECT_TRUE(store.contains(kBase, 4096));
  EXPECT_FALSE(store.contains(kBase - 1));
  EXPECT_FALSE(store.contains(kBase + 4096));
  EXPECT_FALSE(store.contains(kBase + 4090, 8));
}

TEST(BankMap, Pow2UsesMaskShift) {
  BankMap map(16);
  EXPECT_TRUE(map.is_pow2());
  EXPECT_EQ(map.bank_of(17), 1u);
  EXPECT_EQ(map.row_of(17), 1u);
}

TEST(BankMap, PrimeUsesModDiv) {
  BankMap map(17);
  EXPECT_FALSE(map.is_pow2());
  EXPECT_EQ(map.bank_of(35), 1u);
  EXPECT_EQ(map.row_of(35), 2u);
}

TEST(BankMap, StridePathology) {
  // Word stride 16 on 16 banks always hits the same bank; on 17 banks it
  // cycles through all of them — the prime-bank advantage of Fig. 5b.
  BankMap pow2(16);
  BankMap prime(17);
  std::set<unsigned> pow2_banks;
  std::set<unsigned> prime_banks;
  for (std::uint64_t i = 0; i < 16; ++i) {
    pow2_banks.insert(pow2.bank_of(i * 16));
    prime_banks.insert(prime.bank_of(i * 16));
  }
  EXPECT_EQ(pow2_banks.size(), 1u);
  EXPECT_EQ(prime_banks.size(), 16u);
}

class BankedMemoryTest : public ::testing::Test {
 protected:
  BankedMemoryTest() : store_(kBase, 1 << 20) {
    BankedMemoryConfig cfg;
    cfg.num_ports = 4;
    cfg.num_banks = 7;
    memory_ = std::make_unique<BankedMemory>(kernel_, store_, cfg);
    for (std::uint32_t i = 0; i < 1024; ++i) {
      store_.write_u32(kBase + 4 * i, i * 3 + 1);
    }
  }

  sim::Kernel kernel_;
  BackingStore store_;
  std::unique_ptr<BankedMemory> memory_;
};

TEST_F(BankedMemoryTest, SingleReadRoundTrip) {
  WordReq req;
  req.addr = kBase + 40;
  req.tag = 9;
  memory_->port(0).req.push(req);
  kernel_.run(5);
  ASSERT_TRUE(memory_->port(0).resp.can_pop());
  const WordResp resp = memory_->port(0).resp.pop();
  EXPECT_EQ(resp.rdata, 10u * 3 + 1);
  EXPECT_EQ(resp.tag, 9u);
  EXPECT_FALSE(resp.was_write);
}

TEST_F(BankedMemoryTest, WriteThenReadBack) {
  WordReq wr;
  wr.addr = kBase + 100;
  wr.write = true;
  wr.wdata = 0x5555AAAA;
  wr.wstrb = 0xF;
  memory_->port(1).req.push(wr);
  kernel_.run(5);
  ASSERT_TRUE(memory_->port(1).resp.can_pop());
  EXPECT_TRUE(memory_->port(1).resp.pop().was_write);
  EXPECT_EQ(store_.read_u32(kBase + 100), 0x5555AAAAu);
}

TEST_F(BankedMemoryTest, ConflictSerializes) {
  // Both requests map to the same bank (same word address).
  WordReq r0;
  r0.addr = kBase;
  r0.tag = 0;
  WordReq r1;
  r1.addr = kBase;  // same bank
  r1.tag = 1;
  memory_->port(0).req.push(r0);
  memory_->port(1).req.push(r1);
  kernel_.run(2);
  // After 2 cycles only one can have been granted (resp latency 1).
  const int got = (memory_->port(0).resp.can_pop() ? 1 : 0) +
                  (memory_->port(1).resp.can_pop() ? 1 : 0);
  EXPECT_EQ(got, 1);
  kernel_.run(2);
  EXPECT_TRUE(memory_->port(0).resp.can_pop());
  EXPECT_TRUE(memory_->port(1).resp.can_pop());
  EXPECT_GE(memory_->xbar().total_conflict_losses(), 1u);
}

TEST_F(BankedMemoryTest, DistinctBanksParallel) {
  for (unsigned p = 0; p < 4; ++p) {
    WordReq req;
    req.addr = kBase + 4 * p;  // consecutive words -> distinct banks (7)
    req.tag = p;
    memory_->port(p).req.push(req);
  }
  kernel_.run(3);
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_TRUE(memory_->port(p).resp.can_pop()) << "port " << p;
  }
  EXPECT_EQ(memory_->xbar().total_conflict_losses(), 0u);
}

TEST_F(BankedMemoryTest, PerPortResponseOrder) {
  // Port 0 issues requests to different banks; responses must return in
  // request order regardless.
  for (int i = 0; i < 8; ++i) {
    kernel_.run_until([&] { return memory_->port(0).req.can_push(); }, 10);
    WordReq req;
    req.addr = kBase + 4ull * static_cast<std::uint64_t>(7 - i);
    req.tag = static_cast<std::uint32_t>(i);
    memory_->port(0).req.push(req);
    kernel_.step();
  }
  kernel_.run(10);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(memory_->port(0).resp.can_pop());
    EXPECT_EQ(memory_->port(0).resp.pop().tag, static_cast<std::uint32_t>(i));
  }
}

TEST_F(BankedMemoryTest, ThroughputOneWordPerBankPerCycle) {
  // Stream 100 words on one port: at one grant/cycle the port sustains
  // ~1 word/cycle when banks rotate.
  int sent = 0;
  int received = 0;
  std::uint64_t cycles = 0;
  while (received < 100 && cycles < 1000) {
    if (sent < 100 && memory_->port(2).req.can_push()) {
      WordReq req;
      req.addr = kBase + 4ull * static_cast<std::uint64_t>(sent);
      memory_->port(2).req.push(req);
      ++sent;
    }
    if (memory_->port(2).resp.can_pop()) {
      memory_->port(2).resp.pop();
      ++received;
    }
    kernel_.step();
    ++cycles;
  }
  EXPECT_EQ(received, 100);
  EXPECT_LE(cycles, 110u);
}

TEST(IdealMemory, AlwaysGrantsAllPorts) {
  sim::Kernel kernel;
  BackingStore store(kBase, 1 << 16);
  for (std::uint32_t i = 0; i < 64; ++i) store.write_u32(kBase + 4 * i, i);
  IdealMemoryConfig cfg;
  cfg.num_ports = 8;
  IdealMemory mem(kernel, store, cfg);
  // All 8 ports target the same word — no conflicts in ideal memory.
  for (unsigned p = 0; p < 8; ++p) {
    WordReq req;
    req.addr = kBase + 12;
    req.tag = p;
    mem.port(p).req.push(req);
  }
  kernel.run(3);
  for (unsigned p = 0; p < 8; ++p) {
    ASSERT_TRUE(mem.port(p).resp.can_pop());
    EXPECT_EQ(mem.port(p).resp.pop().rdata, 3u);
  }
}

}  // namespace
}  // namespace axipack::mem
