// Open-loop traffic subsystem: arrival-process determinism, the
// scatter-gather descriptor-ring DMA mode (continuous operation,
// completion events, data equality against the one-shot path), and the
// OpenLoopDriver / System::run_open_loop surface.
#include "test_common.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dma/descriptor.hpp"
#include "dma/engine.hpp"
#include "systems/scenario.hpp"
#include "systems/system.hpp"
#include "traffic/arrival.hpp"
#include "traffic/driver.hpp"

namespace axipack {
namespace {

using traffic::ArrivalConfig;
using traffic::ArrivalKind;
using traffic::ArrivalProcess;

// ---------------------------------------------------------------- arrivals

TEST(ArrivalProcess, FixedRateIsAMetronome) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::fixed;
  cfg.rate_per_100k = 100;  // mean gap 1000 cycles
  const ArrivalProcess p(cfg);
  ASSERT_TRUE(p.enabled());
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(p.arrival_cycle(i), (i + 1) * 1000);
  }
}

TEST(ArrivalProcess, FixedRateRoundsPerArrivalNotPerGap) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::fixed;
  cfg.rate_per_100k = 33;  // mean gap 3030.303...
  const ArrivalProcess p(cfg);
  // Per-arrival rounding of i * gap keeps the long-run rate exact instead
  // of accumulating the per-gap rounding error.
  EXPECT_EQ(p.arrival_cycle(32), 100000u);
}

TEST(ArrivalProcess, ZeroRateIsDisabled) {
  ArrivalConfig cfg;
  cfg.rate_per_100k = 0;
  EXPECT_FALSE(ArrivalProcess(cfg).enabled());
}

TEST(ArrivalProcess, PoissonIsDeterministicAndMonotone) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::poisson;
  cfg.rate_per_100k = 50;
  cfg.seed = 7;
  const ArrivalProcess a(cfg);
  const ArrivalProcess b(cfg);
  sim::Cycle prev = 0;
  for (std::uint64_t i = 0; i < 512; ++i) {
    const sim::Cycle c = a.arrival_cycle(i);
    EXPECT_EQ(c, b.arrival_cycle(i)) << "ordinal " << i;
    EXPECT_GE(c, prev) << "ordinal " << i;
    prev = c;
  }
}

TEST(ArrivalProcess, PoissonRandomAccessMatchesSequential) {
  // The memo fills lazily in ordinal order; jumping ahead first must give
  // the same schedule as walking sequentially.
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::poisson;
  cfg.rate_per_100k = 80;
  const ArrivalProcess jumped(cfg);
  const sim::Cycle at100 = jumped.arrival_cycle(100);
  const ArrivalProcess walked(cfg);
  for (std::uint64_t i = 0; i <= 100; ++i) walked.arrival_cycle(i);
  EXPECT_EQ(at100, walked.arrival_cycle(100));
  EXPECT_EQ(jumped.arrival_cycle(3), walked.arrival_cycle(3));
}

TEST(ArrivalProcess, PoissonMeanTracksTheConfiguredRate) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::poisson;
  cfg.rate_per_100k = 50;  // mean gap 2000
  const ArrivalProcess p(cfg);
  const std::uint64_t n = 4000;
  const double mean_gap =
      static_cast<double>(p.arrival_cycle(n - 1)) / static_cast<double>(n);
  EXPECT_NEAR(mean_gap, 2000.0, 200.0);  // 10% over 4000 draws
}

TEST(ArrivalProcess, PoissonSeedChangesTheSchedule) {
  ArrivalConfig a;
  a.kind = ArrivalKind::poisson;
  a.rate_per_100k = 50;
  ArrivalConfig b = a;
  b.seed = a.seed + 1;
  unsigned differs = 0;
  const ArrivalProcess pa(a), pb(b);
  for (std::uint64_t i = 0; i < 64; ++i) {
    differs += pa.arrival_cycle(i) != pb.arrival_cycle(i);
  }
  EXPECT_GT(differs, 32u);
}

TEST(ArrivalProcess, BurstyCompressesWithinBurstsKeepsTheMean) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::bursty;
  cfg.rate_per_100k = 40;  // mean gap 2500
  cfg.burst_len = 8;
  cfg.burst_speedup = 8;
  const ArrivalProcess p(cfg);
  // Within a burst: back-to-back at gap/speedup.
  const sim::Cycle within = p.arrival_cycle(1) - p.arrival_cycle(0);
  EXPECT_LE(within, 2500u / 8 + 1);
  // Long-run mean: bursts * burst_len requests in bursts * burst_len * gap
  // cycles.
  const std::uint64_t n = 8 * 100;
  const double mean_gap =
      static_cast<double>(p.arrival_cycle(n - 1)) / static_cast<double>(n);
  EXPECT_NEAR(mean_gap, 2500.0, 2500.0 * 0.05);
}

// ------------------------------------------------------- descriptor rings

/// One-DMA bare fabric (no monitor hop), identical store layout across
/// instances so ring and one-shot runs can be diffed byte-for-byte.
struct DmaHarness {
  std::unique_ptr<sys::System> system;
  dma::DmaEngine* engine = nullptr;
  mem::BackingStore* store = nullptr;

  explicit DmaHarness(bool use_pack = true, bool naive = false) {
    sys::SystemBuilder b;
    b.bus_bits(256)
        .mem_region(0x8000'0000ull, 64ull << 20)
        .queue_depth(4)
        .monitor(false)
        .naive_kernel(naive);
    dma::DmaConfig dc;
    dc.use_pack = use_pack;
    b.attach_dma(dc);
    system = b.build();
    engine = &system->dma(0);
    store = &system->store();
  }
};

/// A deterministic mixed-pattern descriptor set: contiguous, strided and
/// indirect sources, each into its own contiguous destination. Returns
/// the descriptors and the destination bases for verification.
std::vector<dma::Descriptor> make_descriptors(mem::BackingStore& store,
                                              unsigned n,
                                              std::uint64_t elems) {
  std::vector<dma::Descriptor> out;
  const std::uint64_t data_words = 4096;
  const std::uint64_t data = store.alloc(data_words * 4, 64);
  for (std::uint64_t w = 0; w < data_words; ++w) {
    store.write_u32(data + w * 4, 0x5EED'0000u + static_cast<std::uint32_t>(w));
  }
  for (unsigned i = 0; i < n; ++i) {
    dma::Descriptor d;
    const std::uint64_t dst = store.alloc(elems * 4, 64);
    switch (i % 3) {
      case 0:
        d.src = dma::Pattern::contiguous(data + (i % 7) * 64);
        break;
      case 1:
        d.src = dma::Pattern::strided(data + (i % 5) * 4, 36);
        break;
      default: {
        const std::uint64_t idx = store.alloc(elems * 4, 64);
        for (std::uint64_t e = 0; e < elems; ++e) {
          store.write_u32(idx + e * 4,
                          static_cast<std::uint32_t>((e * 37 + i * 11) %
                                                     data_words));
        }
        d.src = dma::Pattern::indirect(data, idx);
        break;
      }
    }
    d.dst = dma::Pattern::contiguous(dst);
    d.elem_bytes = 4;
    d.num_elems = elems;
    out.push_back(d);
  }
  return out;
}

/// Writes `descs` as a circular ring (slot i links to slot i+1 mod n).
std::uint64_t write_ring(mem::BackingStore& store,
                         std::vector<dma::Descriptor> descs) {
  const std::uint64_t base =
      store.alloc(descs.size() * dma::kDescriptorBytes, 64);
  for (std::size_t i = 0; i < descs.size(); ++i) {
    descs[i].next =
        base + ((i + 1) % descs.size()) * dma::kDescriptorBytes;
    dma::write_descriptor(store, base + i * dma::kDescriptorBytes, descs[i]);
  }
  return base;
}

TEST(DescriptorRing, RunsA96SlotRingWithCompletionEvents) {
  // A >= 64-descriptor ring consumed continuously in double-buffer mode;
  // every slot completes exactly once, in order, with ok = true.
  DmaHarness h;
  const auto descs = make_descriptors(*h.store, 96, 64);
  const std::uint64_t ring = write_ring(*h.store, descs);
  std::vector<std::pair<std::uint64_t, bool>> events;
  h.engine->set_completion([&](std::uint64_t ordinal, bool ok) {
    events.emplace_back(ordinal, ok);
  });
  h.engine->start_ring(dma::RingConfig{ring, /*double_buffer=*/true});
  EXPECT_TRUE(h.engine->ring_active());
  h.engine->publish(96);
  ASSERT_TRUE(h.system->run_until_drained(5'000'000));
  EXPECT_EQ(h.engine->ring_completed(), 96u);
  ASSERT_EQ(events.size(), 96u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].first, i);
    EXPECT_TRUE(events[i].second) << "ordinal " << i;
  }
  h.engine->stop_ring();
  EXPECT_FALSE(h.engine->ring_active());
  EXPECT_TRUE(h.engine->idle());
}

TEST(DescriptorRing, RingMatchesOneShotByteForByte) {
  // The same descriptor set through the ring fetch path and through
  // one-shot push() must land identical bytes — the data-equality
  // differential the one-shot path is already validated by.
  for (const bool use_pack : {true, false}) {
    DmaHarness ring_h(use_pack);
    DmaHarness shot_h(use_pack);
    const auto ring_descs = make_descriptors(*ring_h.store, 66, 48);
    const auto shot_descs = make_descriptors(*shot_h.store, 66, 48);
    const std::uint64_t ring = write_ring(*ring_h.store, ring_descs);
    ring_h.engine->start_ring(dma::RingConfig{ring, true});
    ring_h.engine->publish(66);
    ASSERT_TRUE(ring_h.system->run_until_drained(5'000'000));
    for (const auto& d : shot_descs) shot_h.engine->push(d);
    ASSERT_TRUE(shot_h.system->run_until_drained(5'000'000));
    for (std::size_t i = 0; i < ring_descs.size(); ++i) {
      const std::uint64_t a = ring_descs[i].dst.addr;
      const std::uint64_t b = shot_descs[i].dst.addr;
      ASSERT_EQ(a, b);  // identical alloc order -> identical layout
      for (std::uint64_t e = 0; e < 48; ++e) {
        ASSERT_EQ(ring_h.store->read_u32(a + e * 4),
                  shot_h.store->read_u32(b + e * 4))
            << (use_pack ? "pack" : "narrow") << " desc " << i << " elem "
            << e;
      }
    }
  }
}

TEST(DescriptorRing, SingleBufferMatchesDoubleBufferAndIsNotFaster) {
  DmaHarness dbl;
  DmaHarness sgl;
  const auto dbl_descs = make_descriptors(*dbl.store, 64, 64);
  const auto sgl_descs = make_descriptors(*sgl.store, 64, 64);
  dbl.engine->start_ring(
      dma::RingConfig{write_ring(*dbl.store, dbl_descs), true});
  sgl.engine->start_ring(
      dma::RingConfig{write_ring(*sgl.store, sgl_descs), false});
  dbl.engine->publish(64);
  sgl.engine->publish(64);
  const auto dbl_status = dbl.system->run_until_drained(5'000'000);
  const auto sgl_status = sgl.system->run_until_drained(5'000'000);
  ASSERT_TRUE(dbl_status);
  ASSERT_TRUE(sgl_status);
  for (std::size_t i = 0; i < dbl_descs.size(); ++i) {
    for (std::uint64_t e = 0; e < 64; ++e) {
      ASSERT_EQ(dbl.store->read_u32(dbl_descs[i].dst.addr + e * 4),
                sgl.store->read_u32(sgl_descs[i].dst.addr + e * 4));
    }
  }
  // Prefetching the next descriptor while the transfer drains can only
  // help: the double-buffered ring must never be slower.
  EXPECT_LE(dbl_status.cycles, sgl_status.cycles);
  // And it must actually overlap something on this workload (non-vacuous).
  EXPECT_LT(dbl_status.cycles, sgl_status.cycles);
}

TEST(DescriptorRing, SlotsAreReusedAcrossPublishWaves) {
  // An 8-slot ring carrying 32 requests: the producer rewrites slots as
  // they free and publishes in waves — the ring never stops.
  DmaHarness h;
  const unsigned kSlots = 8;
  const std::uint64_t elems = 32;
  const auto all = make_descriptors(*h.store, 32, elems);
  const std::uint64_t ring =
      h.store->alloc(kSlots * dma::kDescriptorBytes, 64);
  const auto write_slot = [&](std::uint64_t ordinal) {
    dma::Descriptor d = all[ordinal];
    d.next = ring + ((ordinal + 1) % kSlots) * dma::kDescriptorBytes;
    dma::write_descriptor(*h.store,
                          ring + (ordinal % kSlots) * dma::kDescriptorBytes,
                          d);
  };
  std::uint64_t completed = 0;
  std::uint64_t published = 0;
  h.engine->set_completion([&](std::uint64_t ordinal, bool ok) {
    EXPECT_EQ(ordinal, completed);
    EXPECT_TRUE(ok);
    ++completed;
  });
  h.engine->start_ring(dma::RingConfig{ring, true});
  while (completed < all.size()) {
    while (published < all.size() && published - completed < kSlots) {
      write_slot(published);
      h.engine->publish(1);
      ++published;
    }
    h.system->kernel().run(64);
    ASSERT_TRUE(h.system->kernel().now() < 5'000'000) << "ring stalled";
  }
  EXPECT_EQ(h.engine->ring_completed(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::uint64_t e = 0; e < elems; ++e) {
      const std::uint32_t got = h.store->read_u32(all[i].dst.addr + e * 4);
      std::uint32_t want = 0;
      switch (i % 3) {
        case 0:
          want = h.store->read_u32(all[i].src.addr + e * 4);
          break;
        case 1:
          want = h.store->read_u32(all[i].src.addr + e * 36);
          break;
        default: {
          const std::uint32_t idx =
              h.store->read_u32(all[i].src.index_base + e * 4);
          want = h.store->read_u32(all[i].src.addr + idx * 4ull);
          break;
        }
      }
      ASSERT_EQ(got, want) << "desc " << i << " elem " << e;
    }
  }
}

// ------------------------------------------------- open-loop driver + SoC

TEST(OpenLoop, ScenarioRunReportsSaneLatencyAndRates) {
  auto system =
      sys::ScenarioRegistry::instance().builder("pack-256-dram-p80").build();
  ASSERT_NE(system->traffic_driver(), nullptr);
  const sys::RunResult r = system->run_open_loop(100'000, 10'000'000);
  ASSERT_TRUE(r.correct) << r.error;
  EXPECT_GE(r.cycles, 100'000u);
  ASSERT_TRUE(r.latency.count() > 0);
  const double p50 = r.latency.percentile(50);
  const double p95 = r.latency.percentile(95);
  const double p99 = r.latency.percentile(99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, static_cast<double>(r.latency.max()));
  EXPECT_GT(r.offered_rate, 0.0);
  EXPECT_GT(r.achieved_rate, 0.0);
  // At rate 80 the PACK DRAM SoC is far from saturation: everything
  // offered inside the window completes inside or shortly after it.
  EXPECT_NEAR(r.achieved_rate, r.offered_rate, r.offered_rate * 0.1);
  EXPECT_GE(r.queue_peak, 1u);
  const auto& stats = system->traffic_driver()->stats();
  EXPECT_EQ(stats.arrivals, stats.completed);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_TRUE(system->traffic_driver()->drained());
}

TEST(OpenLoop, RunsAreDeterministic) {
  sys::RunResult r[2];
  for (int i = 0; i < 2; ++i) {
    auto system =
        sys::ScenarioRegistry::instance().builder("base-256-dram-p40").build();
    r[i] = system->run_open_loop(60'000, 10'000'000);
  }
  EXPECT_EQ(r[0].cycles, r[1].cycles);
  EXPECT_EQ(r[0].latency.count(), r[1].latency.count());
  EXPECT_EQ(r[0].latency.percentile(99), r[1].latency.percentile(99));
  EXPECT_EQ(r[0].offered_rate, r[1].offered_rate);
  EXPECT_EQ(r[0].queue_peak, r[1].queue_peak);
}

TEST(OpenLoop, ZeroRateBehavesLikeClosedLoop) {
  sys::SystemBuilder b =
      sys::ScenarioRegistry::instance().builder("pack-256-dram");
  traffic::TrafficConfig tc;
  tc.arrival.rate_per_100k = 0;
  b.traffic(tc);
  auto system = b.build();
  const sys::RunResult r = system->run_open_loop(20'000, 1'000'000);
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.latency.count(), 0u);
  EXPECT_EQ(r.offered_rate, 0.0);
  EXPECT_EQ(r.achieved_rate, 0.0);
  EXPECT_EQ(system->traffic_driver()->stats().arrivals, 0u);
}

TEST(OpenLoop, BurstyKnobRaisesTailLatencyAtEqualMeanRate) {
  auto smooth =
      sys::ScenarioRegistry::instance().builder("base-256-dram-p80").build();
  auto bursty =
      sys::ScenarioRegistry::instance().builder("base-256-dram-p80-b16").build();
  const sys::RunResult rs = smooth->run_open_loop(120'000, 10'000'000);
  const sys::RunResult rb = bursty->run_open_loop(120'000, 10'000'000);
  ASSERT_TRUE(rs.correct) << rs.error;
  ASSERT_TRUE(rb.correct) << rb.error;
  // Same mean rate, but 16-deep bursts queue behind each other: the tail
  // must be visibly worse than the smooth stream's.
  EXPECT_GT(rb.latency.percentile(99), rs.latency.percentile(99) * 1.5);
}

TEST(OpenLoop, BuilderCarvesTheFootprintInsideTheRegion) {
  traffic::TrafficConfig tc;
  tc.arrival.rate_per_100k = 10;
  const std::uint64_t fp = traffic::footprint_bytes(tc);
  EXPECT_EQ(fp % 64, 0u);
  traffic::TrafficConfig bigger = tc;
  bigger.data_words *= 2;
  EXPECT_GT(traffic::footprint_bytes(bigger), fp);
  // The driver region must stay inside the memory window.
  sys::SystemBuilder b;
  b.bus_bits(256).mem_region(0x8000'0000ull, 8ull << 20);
  b.attach_dma();
  b.traffic(tc);
  auto system = b.build();
  EXPECT_NE(system->traffic_driver(), nullptr);
  EXPECT_TRUE(system->drained());
}

TEST(OpenLoop, FaultInjectionRecoversUnderLoad) {
  // Open-loop stream over the fault plan: injected faults are retried by
  // the sg engine and the stream still verifies.
  auto system = sys::ScenarioRegistry::instance()
                    .builder("pack-256-dram-f50-r4-p80")
                    .build();
  const sys::RunResult r = system->run_open_loop(120'000, 10'000'000);
  ASSERT_TRUE(r.correct) << r.error;
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_GT(r.retries, 0u);
  EXPECT_EQ(r.failed_ops, 0u);
}

}  // namespace
}  // namespace axipack
