// Protocol-level verification: the ProtocolChecker IP itself, randomized
// mixed traffic with golden-model data checks under an always-watching
// checker, and backpressure injection (a randomly stalling consumer) — the
// simulation analogue of RTL verification with protocol assertions and
// randomized ready signals.
#include "test_common.hpp"

#include <cstring>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "axi/burst.hpp"
#include "axi/monitor.hpp"
#include "axi/protocol_checker.hpp"
#include "mem/backing_store.hpp"
#include "mem/banked_memory.hpp"
#include "pack/adapter.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "systems/runner.hpp"
#include "systems/scenario.hpp"
#include "systems/system.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace axipack {
namespace {

constexpr std::uint64_t kBase = 0x8000'0000ull;

// ------------------------------------------------- checker unit behaviour

TEST(ProtocolChecker, AcceptsWellFormedRead) {
  axi::ProtocolChecker chk(32);
  axi::AxiAr ar;
  ar.id = 3;
  ar.len = 1;
  ar.size = 5;
  chk.observe_ar(ar, 0);
  axi::AxiR beat;
  beat.id = 3;
  chk.observe_r(beat, 1);
  beat.last = true;
  chk.observe_r(beat, 2);
  EXPECT_TRUE(chk.clean());
  EXPECT_TRUE(chk.drained());
}

TEST(ProtocolChecker, FlagsMissingLast) {
  axi::ProtocolChecker chk(32);
  axi::AxiAr ar;
  ar.len = 0;
  chk.observe_ar(ar, 0);
  axi::AxiR beat;  // last not set on the only beat
  chk.observe_r(beat, 1);
  ASSERT_FALSE(chk.clean());
  EXPECT_EQ(chk.violations()[0].rule, "R.overrun");
}

TEST(ProtocolChecker, FlagsEarlyLast) {
  axi::ProtocolChecker chk(32);
  axi::AxiAr ar;
  ar.len = 3;
  chk.observe_ar(ar, 0);
  axi::AxiR beat;
  beat.last = true;  // after one of four beats
  chk.observe_r(beat, 1);
  ASSERT_FALSE(chk.clean());
  EXPECT_EQ(chk.violations()[0].rule, "R.last");
}

TEST(ProtocolChecker, FlagsOrphanResponses) {
  axi::ProtocolChecker chk(32);
  axi::AxiR r;
  r.id = 9;
  chk.observe_r(r, 0);
  axi::AxiB b;
  b.id = 9;
  chk.observe_b(b, 0);
  ASSERT_EQ(chk.violations().size(), 2u);
  EXPECT_EQ(chk.violations()[0].rule, "R.orphan");
  EXPECT_EQ(chk.violations()[1].rule, "B.orphan");
}

TEST(ProtocolChecker, FlagsEarlyB) {
  axi::ProtocolChecker chk(32);
  axi::AxiAw aw;
  aw.id = 2;
  aw.len = 1;
  chk.observe_aw(aw, 0);
  axi::AxiB b;
  b.id = 2;
  chk.observe_b(b, 1);  // before any W beat
  ASSERT_FALSE(chk.clean());
  EXPECT_EQ(chk.violations()[0].rule, "B.early");
}

TEST(ProtocolChecker, FlagsMalformedPackRequest) {
  axi::ProtocolChecker chk(32);
  axi::AxiAr ar;
  ar.size = 2;
  ar.len = 0;  // wrong: 20 elements of 4B on a 32B bus need 3 beats
  axi::PackRequest p;
  p.num_elems = 20;
  ar.pack = p;
  chk.observe_ar(ar, 0);
  ASSERT_FALSE(chk.clean());
  EXPECT_EQ(chk.violations()[0].rule, "AR.pack.len");
}

TEST(ProtocolChecker, PackLenRuleMatchesBurstSplitter) {
  // Everything split_pack_* produces must satisfy the checker's geometry
  // rule — ties the request factory and the checker together.
  axi::ProtocolChecker chk(32);
  for (const auto& ar :
       axi::split_pack_strided(kBase, 12, 4, 1000, 32)) {
    chk.observe_ar(ar, 0);
  }
  for (const auto& ar : axi::split_pack_indirect(kBase, kBase + 0x10000, 16,
                                                 8, 777, 32)) {
    chk.observe_ar(ar, 0);
  }
  EXPECT_TRUE(chk.clean());
}

// ------------------------------------- randomized traffic + backpressure

/// Reference gather for one AR against the backing store.
std::vector<std::uint8_t> golden_payload(const mem::BackingStore& store,
                                         const axi::AxiAr& ar) {
  std::vector<std::uint8_t> out;
  if (ar.pack.has_value()) {
    const unsigned es = ar.beat_bytes();
    for (std::uint64_t i = 0; i < ar.pack->num_elems; ++i) {
      std::uint64_t addr;
      if (ar.pack->indir) {
        const unsigned ib = ar.pack->index_bits / 8;
        std::uint64_t idx = 0;
        store.read(ar.pack->index_base + i * ib, &idx, ib);
        addr = ar.addr + idx * es;
      } else {
        addr = ar.addr + static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(i) * ar.pack->stride);
      }
      for (unsigned b = 0; b < es; ++b) {
        std::uint8_t byte;
        store.read(addr + b, &byte, 1);
        out.push_back(byte);
      }
    }
  } else {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(ar.beats()) * ar.beat_bytes();
    // Full-width INCR only in this test's random mix.
    for (std::uint64_t b = 0; b < bytes; ++b) {
      std::uint8_t byte;
      store.read(ar.addr + b, &byte, 1);
      out.push_back(byte);
    }
  }
  return out;
}

struct TrafficParams {
  unsigned banks;
  unsigned stall_pct;  ///< chance (in %) the consumer refuses to pop R
};

class RandomTraffic
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(RandomTraffic, MixedReadsMatchGoldenUnderBackpressure) {
  const auto [banks, stall_pct] = GetParam();
  sim::Kernel kernel;
  mem::BackingStore store(kBase, 8u << 20);
  axi::AxiPort master(kernel, 2, "m");
  axi::AxiPort slave(kernel, 2, "s");
  axi::AxiLink link(kernel, master, slave);
  axi::ProtocolChecker checker(32);
  link.attach_checker(&checker);
  mem::BankedMemoryConfig mc;
  mc.num_ports = 8;
  mc.num_banks = banks;
  mem::BankedMemory memory(kernel, store, mc);
  pack::AdapterConfig ac;
  pack::AxiPackAdapter adapter(kernel, slave, memory, ac);

  util::Rng rng(banks * 100 + stall_pct);
  for (std::uint32_t i = 0; i < (2u << 20) / 4; ++i) {
    store.write_u32(kBase + 4ull * i, static_cast<std::uint32_t>(rng.below(1ull << 32)));
  }
  // Index region with bounded random indices.
  const std::uint64_t idx_base = kBase + (4u << 20);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    store.write_u32(idx_base + 4ull * i, rng.below(1 << 14));
  }

  // Random request mix: regular INCR, strided, indirect.
  std::vector<axi::AxiAr> requests;
  for (int i = 0; i < 60; ++i) {
    const unsigned kind = static_cast<unsigned>(rng.below(3));
    const std::uint64_t n = 1 + rng.below(96);
    std::vector<axi::AxiAr> split;
    if (kind == 0) {
      split = axi::split_contiguous(kBase + 4 * rng.below(1 << 16), n * 4, 32);
    } else if (kind == 1) {
      const std::int64_t stride = 4 * (1 + static_cast<std::int64_t>(
                                               rng.below(24)));
      split = axi::split_pack_strided(kBase + 4 * rng.below(1 << 10), stride,
                                      4, n, 32);
    } else {
      split = axi::split_pack_indirect(kBase, idx_base + 4 * rng.below(1024),
                                       32, 4, n, 32);
    }
    requests.insert(requests.end(), split.begin(), split.end());
  }

  // Issue everything; consume R beats with random stalls; compare payload
  // streams burst by burst (single-ID traffic returns in request order).
  std::vector<std::uint8_t> got;
  std::size_t next = 0;
  std::uint64_t bursts_done = 0;
  const bool ok = kernel.run_until(
      [&] {
        if (next < requests.size() && master.ar.can_push()) {
          master.ar.push(requests[next]);
          ++next;
        }
        if (master.r.can_pop() && rng.below(100) >= stall_pct) {
          const axi::AxiR beat = master.r.pop();
          for (unsigned b = 0; b < beat.useful_bytes; ++b) {
            got.push_back(beat.data[b]);
          }
          if (beat.last) ++bursts_done;
        }
        return bursts_done == requests.size();
      },
      20'000'000);
  ASSERT_TRUE(ok) << "traffic did not drain";

  std::vector<std::uint8_t> expect;
  for (const auto& ar : requests) {
    const auto g = golden_payload(store, ar);
    expect.insert(expect.end(), g.begin(), g.end());
  }
  ASSERT_EQ(got.size(), expect.size());
  EXPECT_TRUE(got == expect) << "payload mismatch";

  EXPECT_TRUE(checker.clean())
      << checker.violations().size() << " violations, first: "
      << checker.violations()[0].rule << " — "
      << checker.violations()[0].detail;
  EXPECT_TRUE(checker.drained());
}

INSTANTIATE_TEST_SUITE_P(
    BanksAndStalls, RandomTraffic,
    ::testing::Combine(::testing::Values(8u, 17u, 32u),
                       ::testing::Values(0u, 30u, 70u)),
    [](const auto& info) {
      return "banks" + std::to_string(std::get<0>(info.param)) + "_stall" +
             std::to_string(std::get<1>(info.param));
    });

// Write-side randomized traffic with the checker watching W/B ordering.
TEST(RandomTraffic, MixedWritesLandCorrectlyUnderChecker) {
  sim::Kernel kernel;
  mem::BackingStore store(kBase, 8u << 20);
  axi::AxiPort master(kernel, 2, "m");
  axi::AxiPort slave(kernel, 2, "s");
  axi::AxiLink link(kernel, master, slave);
  axi::ProtocolChecker checker(32);
  link.attach_checker(&checker);
  mem::BankedMemoryConfig mc;
  mc.num_ports = 8;
  mc.num_banks = 17;
  mem::BankedMemory memory(kernel, store, mc);
  pack::AdapterConfig ac;
  pack::AxiPackAdapter adapter(kernel, slave, memory, ac);

  util::Rng rng(99);
  struct Job {
    axi::AxiAw aw;
    std::vector<std::uint32_t> payload;  ///< packed words
    std::uint64_t dst;                   ///< first element address
    std::int64_t stride;
  };
  std::vector<Job> jobs;
  std::uint64_t region = kBase + (1u << 20);
  for (int i = 0; i < 24; ++i) {
    Job job;
    const std::uint64_t n = 1 + rng.below(64);
    job.stride = 4 * (1 + static_cast<std::int64_t>(rng.below(12)));
    job.dst = region;
    region += n * job.stride + 64;
    const auto split =
        axi::split_pack_strided(job.dst, job.stride, 4, n, 32);
    ASSERT_EQ(split.size(), 1u);
    job.aw = split[0];
    for (std::uint64_t e = 0; e < n; ++e) {
      job.payload.push_back(static_cast<std::uint32_t>(rng.below(1ull << 32)));
    }
    jobs.push_back(std::move(job));
  }

  std::size_t next_aw = 0;
  std::size_t w_job = 0;
  std::size_t w_word = 0;
  std::uint64_t bs = 0;
  const bool ok = kernel.run_until(
      [&] {
        if (next_aw < jobs.size() && next_aw <= w_job &&
            master.aw.can_push()) {
          master.aw.push(jobs[next_aw].aw);
          ++next_aw;
        }
        if (w_job < jobs.size() && w_job < next_aw && master.w.can_push()) {
          const Job& job = jobs[w_job];
          axi::AxiW beat;
          const std::size_t cnt =
              std::min<std::size_t>(8, job.payload.size() - w_word);
          for (std::size_t e = 0; e < cnt; ++e) {
            axi::place_bytes(
                beat.data, static_cast<unsigned>(4 * e),
                reinterpret_cast<const std::uint8_t*>(&job.payload[w_word + e]),
                4);
          }
          beat.strb = axi::strb_mask(0, static_cast<unsigned>(4 * cnt));
          beat.useful_bytes = static_cast<std::uint16_t>(4 * cnt);
          w_word += cnt;
          beat.last = w_word == job.payload.size();
          master.w.push(beat);
          if (beat.last) {
            ++w_job;
            w_word = 0;
          }
        }
        if (master.b.can_pop()) {
          master.b.pop();
          ++bs;
        }
        return bs == jobs.size();
      },
      20'000'000);
  ASSERT_TRUE(ok);

  for (const Job& job : jobs) {
    for (std::size_t e = 0; e < job.payload.size(); ++e) {
      ASSERT_EQ(store.read_u32(job.dst + static_cast<std::uint64_t>(
                                             job.stride * static_cast<std::int64_t>(e))),
                job.payload[e]);
    }
  }
  EXPECT_TRUE(checker.clean())
      << checker.violations().size() << " violations, first: "
      << checker.violations()[0].rule;
  EXPECT_TRUE(checker.drained());
}

// ------------------------------------------- fault-mode diagnostics policy

TEST(ProtocolDiagnostics, InjectedTruncationIsCollectedNotFatal) {
  // An injected burst truncation breaks the R beat-count rule on purpose.
  // With a fault plan attached, checker findings are collected diagnostics
  // surfaced through RunResult — the run must recover via retry and stay
  // correct instead of hard-failing on the first violation.
  sys::SystemBuilder b =
      sys::ScenarioRegistry::instance().builder("pack-256-17b");
  b.faults(sim::FaultConfig{});
  sim::RetryConfig rc;
  rc.max_attempts = 4;
  rc.timeout_cycles = 50'000;
  b.retry(rc);
  std::unique_ptr<sys::System> system = b.build();
  system->fault_plan()->force(sim::FaultSite::link_r, 12, 2);

  wl::WorkloadConfig cfg = sys::plan_workload(wl::KernelKind::gemv, b);
  cfg.n = 64;
  const wl::WorkloadInstance inst = wl::build_workload(system->store(), cfg);
  const sys::RunResult r = system->run(inst);

  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_GE(r.protocol_violations, 1u);
  ASSERT_TRUE(system->protocol_checker() != nullptr);
  EXPECT_EQ(system->protocol_checker()->violations().size(),
            r.protocol_violations);
  EXPECT_FALSE(system->protocol_checker()->violations().front().rule.empty());
}

TEST(ProtocolDiagnostics, CleanFaultPlanRunsStayViolationFree) {
  // The converse guard: attaching a plan must not relax checking into
  // false positives — a zero-rate plan still reports a clean link.
  sys::SystemBuilder b =
      sys::ScenarioRegistry::instance().builder("pack-256-17b");
  b.faults(sim::FaultConfig{});
  std::unique_ptr<sys::System> system = b.build();
  wl::WorkloadConfig cfg = sys::plan_workload(wl::KernelKind::spmv, b);
  cfg.n = 48;
  cfg.nnz_per_row = 16;
  const wl::WorkloadInstance inst = wl::build_workload(system->store(), cfg);
  const sys::RunResult r = system->run(inst);
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.protocol_violations, 0u);
}

}  // namespace
}  // namespace axipack
