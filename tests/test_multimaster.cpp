// Multi-requestor systems: several masters (vector processor, DMA engines)
// share one AXI-Pack adapter through the crossbar. The paper claims AXI-Pack
// "supports non-core requestors (e.g., accelerators) and systems with
// multiple requestors and endpoints" — these tests exercise that end to end:
// ID-based response routing, W-ordering across masters, fairness, and
// correctness of concurrent irregular streams.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "axi/monitor.hpp"
#include "axi/xbar.hpp"
#include "dma/descriptor.hpp"
#include "dma/engine.hpp"
#include "mem/backing_store.hpp"
#include "mem/banked_memory.hpp"
#include "pack/adapter.hpp"
#include "sim/kernel.hpp"
#include "systems/runner.hpp"
#include "vproc/processor.hpp"
#include "workloads/workloads.hpp"

namespace axipack {
namespace {

using dma::Descriptor;
using dma::DmaConfig;
using dma::DmaEngine;
using dma::Pattern;

constexpr std::uint64_t kMemBase = 0x8000'0000ull;
constexpr std::uint64_t kMemSize = 32ull << 20;

/// N master ports -> crossbar -> monitored link -> AXI-Pack adapter ->
/// banked memory. Masters are attached by the test.
class MultiMasterFabric {
 public:
  explicit MultiMasterFabric(unsigned num_masters, unsigned bus_bytes = 32,
                             unsigned banks = 17)
      : store_(kMemBase, kMemSize) {
    for (unsigned i = 0; i < num_masters; ++i) {
      masters_.push_back(std::make_unique<axi::AxiPort>(
          kernel_, 2, "m" + std::to_string(i)));
    }
    mid_ = std::make_unique<axi::AxiPort>(kernel_, 2, "mid");
    slave_ = std::make_unique<axi::AxiPort>(kernel_, 2, "slave");
    std::vector<axi::AxiPort*> mports;
    for (auto& m : masters_) mports.push_back(m.get());
    xbar_ = std::make_unique<axi::AxiXbar>(
        kernel_, mports, std::vector<axi::AxiPort*>{mid_.get()},
        std::vector<axi::AddrRule>{{kMemBase, kMemSize, 0}});
    link_ = std::make_unique<axi::AxiLink>(kernel_, *mid_, *slave_);
    mem::BankedMemoryConfig mc;
    mc.num_ports = bus_bytes / 4;
    mc.num_banks = banks;
    memory_ = std::make_unique<mem::BankedMemory>(kernel_, store_, mc);
    pack::AdapterConfig ac;
    ac.bus_bytes = bus_bytes;
    adapter_ = std::make_unique<pack::AxiPackAdapter>(kernel_, *slave_,
                                                      *memory_, ac);
  }

  sim::Kernel& kernel() { return kernel_; }
  mem::BackingStore& store() { return store_; }
  axi::AxiPort& master(unsigned i) { return *masters_[i]; }
  pack::AxiPackAdapter& adapter() { return *adapter_; }
  const axi::BusStats& bus() const { return link_->stats(); }

 private:
  sim::Kernel kernel_;
  mem::BackingStore store_;
  std::vector<std::unique_ptr<axi::AxiPort>> masters_;
  std::unique_ptr<axi::AxiPort> mid_;
  std::unique_ptr<axi::AxiPort> slave_;
  std::unique_ptr<axi::AxiXbar> xbar_;
  std::unique_ptr<axi::AxiLink> link_;
  std::unique_ptr<mem::BankedMemory> memory_;
  std::unique_ptr<pack::AxiPackAdapter> adapter_;
};

/// Standard strided gather job for a DMA master; returns expected dst words.
struct GatherJob {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint64_t n = 0;
  std::int64_t stride = 0;
};

GatherJob make_gather(mem::BackingStore& store, std::uint64_t n,
                      std::int64_t stride, std::uint32_t seed) {
  GatherJob job;
  job.n = n;
  job.stride = stride;
  job.src = store.alloc(n * static_cast<std::uint64_t>(stride) + 64, 64);
  job.dst = store.alloc(n * 4, 64);
  for (std::uint64_t i = 0; i < n; ++i) {
    store.write_u32(job.src + i * static_cast<std::uint64_t>(stride),
                    seed + std::uint32_t(i));
  }
  return job;
}

void push_gather(DmaEngine& engine, const GatherJob& job) {
  Descriptor d;
  d.src = Pattern::strided(job.src, job.stride);
  d.dst = Pattern::contiguous(job.dst);
  d.elem_bytes = 4;
  d.num_elems = job.n;
  engine.push(d);
}

void expect_gathered(mem::BackingStore& store, const GatherJob& job,
                     std::uint32_t seed, const char* who) {
  for (std::uint64_t i = 0; i < job.n; ++i) {
    ASSERT_EQ(store.read_u32(job.dst + 4 * i), seed + i)
        << who << " element " << i;
  }
}

TEST(MultiMaster, TwoDmaEnginesProduceCorrectStreams) {
  MultiMasterFabric fab(2);
  DmaConfig dc;
  dc.use_pack = true;
  DmaEngine dma0(fab.kernel(), fab.master(0), dc);
  DmaEngine dma1(fab.kernel(), fab.master(1), dc);

  const GatherJob job0 = make_gather(fab.store(), 512, 36, 0x1000);
  const GatherJob job1 = make_gather(fab.store(), 512, 52, 0x2000);
  push_gather(dma0, job0);
  push_gather(dma1, job1);

  const bool ok = fab.kernel().run_until(
      [&] { return dma0.idle() && dma1.idle() && fab.adapter().idle(); },
      1'000'000);
  ASSERT_TRUE(ok);
  expect_gathered(fab.store(), job0, 0x1000, "dma0");
  expect_gathered(fab.store(), job1, 0x2000, "dma1");
}

TEST(MultiMaster, ArbitrationIsFair) {
  // Identical jobs from two masters finish within a modest factor of a solo
  // run — round-robin arbitration must not starve either requestor.
  std::uint64_t solo_cycles = 0;
  {
    MultiMasterFabric fab(1);
    DmaConfig dc;
    DmaEngine dma(fab.kernel(), fab.master(0), dc);
    const GatherJob job = make_gather(fab.store(), 1024, 36, 0x100);
    push_gather(dma, job);
    ASSERT_TRUE(fab.kernel().run_until(
        [&] { return dma.idle() && fab.adapter().idle(); }, 1'000'000));
    solo_cycles = fab.kernel().now();
  }

  MultiMasterFabric fab(2);
  DmaConfig dc;
  DmaEngine dma0(fab.kernel(), fab.master(0), dc);
  DmaEngine dma1(fab.kernel(), fab.master(1), dc);
  const GatherJob job0 = make_gather(fab.store(), 1024, 36, 0x300);
  const GatherJob job1 = make_gather(fab.store(), 1024, 36, 0x400);
  push_gather(dma0, job0);
  push_gather(dma1, job1);
  ASSERT_TRUE(fab.kernel().run_until(
      [&] { return dma0.idle() && dma1.idle() && fab.adapter().idle(); },
      1'000'000));
  const std::uint64_t both_cycles = fab.kernel().now();

  expect_gathered(fab.store(), job0, 0x300, "dma0");
  expect_gathered(fab.store(), job1, 0x400, "dma1");
  // Two equal jobs share the fabric: ideal is 2x solo; allow up to 3x for
  // arbitration and bank-conflict overheads, and require > 1x (sanity).
  EXPECT_LT(both_cycles, solo_cycles * 3);
  EXPECT_GT(both_cycles, solo_cycles);
}

TEST(MultiMaster, ConcurrentIndirectStreamsStaySeparate) {
  // Two masters issue indirect gathers with different index arrays over the
  // same element table; ID-based response routing must keep them apart.
  MultiMasterFabric fab(2);
  DmaConfig dc;
  DmaEngine dma0(fab.kernel(), fab.master(0), dc);
  DmaEngine dma1(fab.kernel(), fab.master(1), dc);

  const std::uint64_t n = 256;
  const std::uint64_t table = fab.store().alloc(1024 * 4, 64);
  for (std::uint64_t i = 0; i < 1024; ++i) {
    fab.store().write_u32(table + 4 * i, 0x5EED'0000u + std::uint32_t(i));
  }
  const std::uint64_t idx0 = fab.store().alloc(n * 4, 64);
  const std::uint64_t idx1 = fab.store().alloc(n * 4, 64);
  const std::uint64_t dst0 = fab.store().alloc(n * 4, 64);
  const std::uint64_t dst1 = fab.store().alloc(n * 4, 64);
  for (std::uint64_t i = 0; i < n; ++i) {
    fab.store().write_u32(idx0 + 4 * i, std::uint32_t((i * 13) % 1024));
    fab.store().write_u32(idx1 + 4 * i, std::uint32_t((i * 29 + 7) % 1024));
  }

  auto push_indirect = [&](DmaEngine& e, std::uint64_t idx,
                           std::uint64_t dst) {
    Descriptor d;
    d.src = Pattern::indirect(table, idx, 32);
    d.dst = Pattern::contiguous(dst);
    d.elem_bytes = 4;
    d.num_elems = n;
    e.push(d);
  };
  push_indirect(dma0, idx0, dst0);
  push_indirect(dma1, idx1, dst1);

  ASSERT_TRUE(fab.kernel().run_until(
      [&] { return dma0.idle() && dma1.idle() && fab.adapter().idle(); },
      1'000'000));
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(fab.store().read_u32(dst0 + 4 * i),
              fab.store().read_u32(table + 4 * ((i * 13) % 1024)))
        << "dma0 element " << i;
    ASSERT_EQ(fab.store().read_u32(dst1 + 4 * i),
              fab.store().read_u32(table + 4 * ((i * 29 + 7) % 1024)))
        << "dma1 element " << i;
  }
}

TEST(MultiMaster, VectorProcessorAndDmaCoexist) {
  // The vector processor runs ismt (strided loads+stores) while a DMA
  // engine gathers a disjoint region — both results must be exact, proving
  // pack-burst streams from different requestors interleave safely.
  MultiMasterFabric fab(2);

  vproc::VProcConfig vc;
  vc.mode = vproc::VlsuMode::pack;
  vproc::Processor proc(fab.kernel(), vc, fab.store(), &fab.master(0));

  DmaConfig dc;
  DmaEngine dma(fab.kernel(), fab.master(1), dc);

  wl::WorkloadConfig wc = sys::default_workload(wl::KernelKind::ismt,
                                                sys::SystemKind::pack);
  wc.n = 32;
  const wl::WorkloadInstance inst = wl::build_workload(fab.store(), wc);

  const GatherJob job = make_gather(fab.store(), 2048, 44, 0x7000);
  push_gather(dma, job);
  proc.run(inst.program);

  ASSERT_TRUE(fab.kernel().run_until(
      [&] {
        return proc.done() && dma.idle() && fab.adapter().idle();
      },
      2'000'000));

  std::string msg;
  EXPECT_TRUE(inst.check(fab.store(), msg)) << msg;
  expect_gathered(fab.store(), job, 0x7000, "dma");
}

}  // namespace
}  // namespace axipack
