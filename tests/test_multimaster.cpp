// Multi-requestor systems: several masters (vector processor, DMA engines)
// share one AXI-Pack adapter through the crossbar. The paper claims AXI-Pack
// "supports non-core requestors (e.g., accelerators) and systems with
// multiple requestors and endpoints" — these tests exercise that end to end:
// ID-based response routing, W-ordering across masters, fairness, and
// correctness of concurrent irregular streams. All fabrics are assembled
// through SystemBuilder's master attach points.
#include "test_common.hpp"

#include <memory>
#include <vector>

#include "dma/descriptor.hpp"
#include "dma/engine.hpp"
#include "systems/builder.hpp"
#include "systems/runner.hpp"
#include "systems/system.hpp"
#include "workloads/workloads.hpp"

namespace axipack {
namespace {

using dma::Descriptor;
using dma::DmaConfig;
using dma::DmaEngine;
using dma::Pattern;
using sys::MasterId;
using sys::System;
using sys::SystemBuilder;

constexpr std::uint64_t kMemBase = 0x8000'0000ull;
constexpr std::uint64_t kMemSize = 32ull << 20;

/// N DMA masters -> crossbar -> monitored link -> AXI-Pack adapter ->
/// banked memory, built through the SystemBuilder attach points.
std::unique_ptr<System> make_dma_system(unsigned num_dmas,
                                        bool use_pack = true) {
  SystemBuilder b;
  b.bus_bits(256).mem_region(kMemBase, kMemSize).banks(17);
  DmaConfig dc;
  dc.use_pack = use_pack;
  for (unsigned i = 0; i < num_dmas; ++i) b.attach_dma(dc);
  return b.build();
}

/// Standard strided gather job for a DMA master; returns expected dst words.
struct GatherJob {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint64_t n = 0;
  std::int64_t stride = 0;
};

GatherJob make_gather(mem::BackingStore& store, std::uint64_t n,
                      std::int64_t stride, std::uint32_t seed) {
  GatherJob job;
  job.n = n;
  job.stride = stride;
  job.src = store.alloc(n * static_cast<std::uint64_t>(stride) + 64, 64);
  job.dst = store.alloc(n * 4, 64);
  for (std::uint64_t i = 0; i < n; ++i) {
    store.write_u32(job.src + i * static_cast<std::uint64_t>(stride),
                    seed + std::uint32_t(i));
  }
  return job;
}

void push_gather(DmaEngine& engine, const GatherJob& job) {
  Descriptor d;
  d.src = Pattern::strided(job.src, job.stride);
  d.dst = Pattern::contiguous(job.dst);
  d.elem_bytes = 4;
  d.num_elems = job.n;
  engine.push(d);
}

void expect_gathered(mem::BackingStore& store, const GatherJob& job,
                     std::uint32_t seed, const char* who) {
  for (std::uint64_t i = 0; i < job.n; ++i) {
    ASSERT_EQ(store.read_u32(job.dst + 4 * i), seed + i)
        << who << " element " << i;
  }
}

TEST(MultiMaster, TwoDmaEnginesProduceCorrectStreams) {
  auto system = make_dma_system(2);

  const GatherJob job0 = make_gather(system->store(), 512, 36, 0x1000);
  const GatherJob job1 = make_gather(system->store(), 512, 52, 0x2000);
  push_gather(system->dma(0), job0);
  push_gather(system->dma(1), job1);

  ASSERT_TRUE(system->run_until_drained(1'000'000));
  expect_gathered(system->store(), job0, 0x1000, "dma0");
  expect_gathered(system->store(), job1, 0x2000, "dma1");
}

TEST(MultiMaster, ArbitrationIsFair) {
  // Identical jobs from two masters finish within a modest factor of a solo
  // run — round-robin arbitration must not starve either requestor.
  std::uint64_t solo_cycles = 0;
  {
    auto solo = make_dma_system(1);
    const GatherJob job = make_gather(solo->store(), 1024, 36, 0x100);
    push_gather(solo->dma(0), job);
    ASSERT_TRUE(solo->run_until_drained(1'000'000));
    solo_cycles = solo->kernel().now();
  }

  auto system = make_dma_system(2);
  const GatherJob job0 = make_gather(system->store(), 1024, 36, 0x300);
  const GatherJob job1 = make_gather(system->store(), 1024, 36, 0x400);
  push_gather(system->dma(0), job0);
  push_gather(system->dma(1), job1);
  ASSERT_TRUE(system->run_until_drained(1'000'000));
  const std::uint64_t both_cycles = system->kernel().now();

  expect_gathered(system->store(), job0, 0x300, "dma0");
  expect_gathered(system->store(), job1, 0x400, "dma1");
  // Two equal jobs share the fabric: ideal is 2x solo; allow up to 3x for
  // arbitration and bank-conflict overheads, and require > 1x (sanity).
  EXPECT_LT(both_cycles, solo_cycles * 3);
  EXPECT_GT(both_cycles, solo_cycles);
}

TEST(MultiMaster, ConcurrentIndirectStreamsStaySeparate) {
  // Two masters issue indirect gathers with different index arrays over the
  // same element table; ID-based response routing must keep them apart.
  auto system = make_dma_system(2);
  mem::BackingStore& store = system->store();

  const std::uint64_t n = 256;
  const std::uint64_t table = store.alloc(1024 * 4, 64);
  for (std::uint64_t i = 0; i < 1024; ++i) {
    store.write_u32(table + 4 * i, 0x5EED'0000u + std::uint32_t(i));
  }
  const std::uint64_t idx0 = store.alloc(n * 4, 64);
  const std::uint64_t idx1 = store.alloc(n * 4, 64);
  const std::uint64_t dst0 = store.alloc(n * 4, 64);
  const std::uint64_t dst1 = store.alloc(n * 4, 64);
  for (std::uint64_t i = 0; i < n; ++i) {
    store.write_u32(idx0 + 4 * i, std::uint32_t((i * 13) % 1024));
    store.write_u32(idx1 + 4 * i, std::uint32_t((i * 29 + 7) % 1024));
  }

  auto push_indirect = [&](DmaEngine& e, std::uint64_t idx,
                           std::uint64_t dst) {
    Descriptor d;
    d.src = Pattern::indirect(table, idx, 32);
    d.dst = Pattern::contiguous(dst);
    d.elem_bytes = 4;
    d.num_elems = n;
    e.push(d);
  };
  push_indirect(system->dma(0), idx0, dst0);
  push_indirect(system->dma(1), idx1, dst1);

  ASSERT_TRUE(system->run_until_drained(1'000'000));
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(store.read_u32(dst0 + 4 * i),
              store.read_u32(table + 4 * ((i * 13) % 1024)))
        << "dma0 element " << i;
    ASSERT_EQ(store.read_u32(dst1 + 4 * i),
              store.read_u32(table + 4 * ((i * 29 + 7) % 1024)))
        << "dma1 element " << i;
  }
}

TEST(MultiMaster, VectorProcessorAndDmaCoexist) {
  // The vector processor runs ismt (strided loads+stores) while a DMA
  // engine gathers a disjoint region — both results must be exact, proving
  // pack-burst streams from different requestors interleave safely.
  SystemBuilder b;
  b.bus_bits(256).mem_region(kMemBase, kMemSize);
  const MasterId proc_id = b.attach_processor(vproc::VlsuMode::pack);
  const MasterId dma_id = b.attach_dma();
  auto system = b.build();

  wl::WorkloadConfig wc = sys::plan_workload(
      wl::KernelKind::ismt, sys::scenario_name(sys::SystemKind::pack));
  wc.n = 32;
  const wl::WorkloadInstance inst = wl::build_workload(system->store(), wc);

  const GatherJob job = make_gather(system->store(), 2048, 44, 0x7000);
  push_gather(system->dma(dma_id), job);
  system->processor(proc_id).run(inst.program);

  ASSERT_TRUE(system->run_until_drained(2'000'000));

  std::string msg;
  EXPECT_TRUE(inst.check(system->store(), msg)) << msg;
  expect_gathered(system->store(), job, 0x7000, "dma");
}

}  // namespace
}  // namespace axipack
