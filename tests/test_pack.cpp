// AXI-Pack adapter tests: functional correctness of all five converters
// (regular bursts, strided gather/scatter, indirect gather/scatter with all
// index sizes), ordering across converters, and randomized property sweeps
// comparing packed payloads against reference gathers.
#include "test_common.hpp"

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

#include "adapter_harness.hpp"
#include "axi/burst.hpp"
#include "util/rng.hpp"

namespace axipack {
namespace {

using testing::AdapterHarness;
using testing::AdapterHarnessConfig;

constexpr std::uint64_t kBase = 0x8000'0000ull;

std::vector<std::uint8_t> bytes_of_u32s(const std::vector<std::uint32_t>& v) {
  std::vector<std::uint8_t> out(v.size() * 4);
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

void fill_pattern(mem::BackingStore& store, std::uint64_t addr,
                  std::uint32_t words) {
  for (std::uint32_t i = 0; i < words; ++i) {
    store.write_u32(addr + 4ull * i, 0x1000'0000u + i);
  }
}

TEST(BaseConverterTest, FullWidthReadBurst) {
  AdapterHarness h;
  fill_pattern(h.store(), kBase, 64);
  const auto bursts = axi::split_contiguous(kBase, 64 * 4, 32);
  ASSERT_EQ(bursts.size(), 1u);
  const auto data = h.read_burst(bursts[0]);
  ASSERT_EQ(data.size(), 64u * 4);
  std::vector<std::uint32_t> words(64);
  std::memcpy(words.data(), data.data(), data.size());
  for (std::uint32_t i = 0; i < 64; ++i) EXPECT_EQ(words[i], 0x1000'0000u + i);
}

/// Word at the natural byte lane of `addr` within a beat.
std::uint32_t lane_word(const axi::AxiR& beat, std::uint64_t addr,
                        unsigned bus_bytes = 32) {
  std::uint32_t value = 0;
  axi::extract_bytes(beat.data, static_cast<unsigned>(addr % bus_bytes),
                     reinterpret_cast<std::uint8_t*>(&value), 4);
  return value;
}

TEST(BaseConverterTest, NarrowSingleBeatRead) {
  AdapterHarness h;
  fill_pattern(h.store(), kBase, 64);
  axi::AxiAr ar;
  ar.addr = kBase + 4 * 13;
  ar.size = 2;
  ar.len = 0;
  const auto beats = h.read_burst_beats(ar);
  ASSERT_EQ(beats.size(), 1u);
  // Narrow beats carry data at the address's natural byte lanes.
  EXPECT_EQ(lane_word(beats[0], ar.addr), 0x1000'0000u + 13);
}

TEST(BaseConverterTest, NarrowMultiBeatReadWalksLanes) {
  AdapterHarness h;
  fill_pattern(h.store(), kBase, 64);
  axi::AxiAr ar;
  ar.addr = kBase + 4 * 5;
  ar.size = 2;   // 4-byte beats on the 32-byte bus
  ar.len = 11;   // 12 beats crossing a bus-line boundary
  const auto beats = h.read_burst_beats(ar);
  ASSERT_EQ(beats.size(), 12u);
  for (unsigned i = 0; i < 12; ++i) {
    EXPECT_EQ(lane_word(beats[i], ar.addr + 4ull * i), 0x1000'0000u + 5 + i)
        << "beat " << i;
  }
}

TEST(BaseConverterTest, UnalignedFullWidthRead) {
  AdapterHarness h;
  fill_pattern(h.store(), kBase, 64);
  axi::AxiAr ar;
  ar.addr = kBase + 4 * 3;  // mid-line start
  ar.size = 5;              // full 32-byte beats
  ar.len = 2;
  const auto beats = h.read_burst_beats(ar);
  ASSERT_EQ(beats.size(), 3u);
  // First beat: data from the start address to the end of its line.
  EXPECT_EQ(beats[0].useful_bytes, 32u - (4 * 3) % 32);
  EXPECT_EQ(lane_word(beats[0], ar.addr), 0x1000'0000u + 3);
  // Later beats are line-aligned (standard AXI INCR alignment).
  EXPECT_EQ(lane_word(beats[1], kBase + 32), 0x1000'0000u + 8);
  EXPECT_EQ(lane_word(beats[2], kBase + 64), 0x1000'0000u + 16);
}

TEST(BaseConverterTest, FixedReadBurstPollsOneAddress) {
  AdapterHarness h;
  fill_pattern(h.store(), kBase, 8);
  axi::AxiAr ar;
  ar.addr = kBase + 4 * 6;
  ar.size = 2;
  ar.len = 3;  // four polls
  ar.burst = axi::BurstType::fixed;
  const auto beats = h.read_burst_beats(ar);
  ASSERT_EQ(beats.size(), 4u);
  for (const auto& beat : beats) {
    EXPECT_EQ(lane_word(beat, ar.addr), 0x1000'0000u + 6);
  }
}

TEST(BaseConverterTest, WrapReadBurstWrapsAtBoundary) {
  // Critical-word-first cache-line fill: a 4-beat wrapping burst starting
  // mid-line returns the line from the requested word, wrapping at the
  // 16-byte boundary.
  AdapterHarness h;
  fill_pattern(h.store(), kBase, 16);
  axi::AxiAr ar;
  ar.addr = kBase + 4 * 2;  // third word of the wrap-4 container
  ar.size = 2;
  ar.len = 3;
  ar.burst = axi::BurstType::wrap;
  const auto beats = h.read_burst_beats(ar);
  ASSERT_EQ(beats.size(), 4u);
  const std::uint64_t addrs[] = {kBase + 8, kBase + 12, kBase + 0, kBase + 4};
  const std::uint32_t expect[] = {0x1000'0002u, 0x1000'0003u, 0x1000'0000u,
                                  0x1000'0001u};
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(lane_word(beats[i], addrs[i]), expect[i]) << "beat " << i;
  }
}

TEST(BaseConverterTest, FixedWriteBurstLastBeatWins) {
  AdapterHarness h;
  h.store().write_u32(kBase + 64, 0);
  axi::AxiAw aw;
  aw.addr = kBase + 64;
  aw.size = 2;
  aw.len = 3;
  aw.burst = axi::BurstType::fixed;
  const unsigned lane = 64 % 32;
  h.write_burst_beats(aw, [&](unsigned i) {
    axi::AxiW beat;
    const std::uint32_t value = 0xF1F0'0000u + i;
    axi::place_bytes(beat.data, lane,
                     reinterpret_cast<const std::uint8_t*>(&value), 4);
    beat.strb = axi::strb_mask(lane, 4);
    beat.useful_bytes = 4;
    return beat;
  });
  EXPECT_EQ(h.store().read_u32(kBase + 64), 0xF1F0'0003u);
}

TEST(BaseConverterTest, SubWordWriteStrobesSpareNeighbors) {
  // A one-byte write (AxSIZE = 0) must only touch its strobed lane.
  AdapterHarness h;
  h.store().write_u32(kBase + 4 * 7, 0xAABB'CCDDu);
  axi::AxiAw aw;
  aw.addr = kBase + 4 * 7 + 2;  // third byte of the word
  aw.size = 0;
  aw.len = 0;
  const unsigned lane = static_cast<unsigned>(aw.addr % 32);
  h.write_burst_beats(aw, [&](unsigned) {
    axi::AxiW beat;
    const std::uint8_t value = 0xEE;
    axi::place_bytes(beat.data, lane, &value, 1);
    beat.strb = axi::strb_mask(lane, 1);
    beat.useful_bytes = 1;
    return beat;
  });
  EXPECT_EQ(h.store().read_u32(kBase + 4 * 7), 0xAAEE'CCDDu);
}

TEST(BaseConverterTest, NarrowWriteReadBack) {
  AdapterHarness h;
  axi::AxiAw aw;
  aw.addr = kBase + 4 * 9;
  aw.size = 2;
  aw.len = 0;
  // Build the narrow W beat manually at the right lane.
  bool aw_pushed = false;
  bool w_pushed = false;
  bool done = false;
  h.kernel().run_until(
      [&] {
        if (!aw_pushed && h.port().aw.can_push()) {
          h.port().aw.push(aw);
          aw_pushed = true;
        }
        if (aw_pushed && !w_pushed && h.port().w.can_push()) {
          axi::AxiW beat;
          const std::uint32_t value = 0xA5A5'5A5A;
          const unsigned lane = (4 * 9) % 32;
          axi::place_bytes(beat.data, lane,
                           reinterpret_cast<const std::uint8_t*>(&value), 4);
          beat.strb = axi::strb_mask(lane, 4);
          beat.useful_bytes = 4;
          beat.last = true;
          h.port().w.push(beat);
          w_pushed = true;
        }
        if (h.port().b.can_pop()) {
          h.port().b.pop();
          done = true;
        }
        return done;
      },
      10'000);
  ASSERT_TRUE(done);
  EXPECT_EQ(h.store().read_u32(kBase + 4 * 9), 0xA5A5'5A5Au);
}

TEST(BaseConverterTest, ConcurrentReadsAndWritesDoNotCrossLanes) {
  // Reads and writes of concurrent bursts interleave on the shared word
  // lanes; the packer must never consume a write acknowledgement as read
  // data (regression: with deep queues this corrupted data and then
  // deadlocked ack collection).
  AdapterHarnessConfig hc;
  hc.queue_depth = 8;
  AdapterHarness h(hc);
  fill_pattern(h.store(), kBase, 512);
  const std::uint64_t dst = kBase + 0x10000;

  // One long write burst and one long read burst in flight together.
  const auto wbursts = axi::split_contiguous(dst, 128 * 4, 32);
  const auto rbursts = axi::split_contiguous(kBase, 128 * 4, 32);
  ASSERT_EQ(wbursts.size(), 1u);
  ASSERT_EQ(rbursts.size(), 1u);

  bool aw_pushed = false;
  bool ar_pushed = false;
  unsigned w_sent = 0;
  std::vector<std::uint32_t> got;
  bool b_seen = false;
  bool r_done = false;
  const bool ok = h.kernel().run_until(
      [&] {
        if (!aw_pushed && h.port().aw.can_push()) {
          h.port().aw.push(wbursts[0]);
          aw_pushed = true;
        }
        if (!ar_pushed && h.port().ar.can_push()) {
          h.port().ar.push(rbursts[0]);
          ar_pushed = true;
        }
        if (aw_pushed && w_sent < wbursts[0].beats() &&
            h.port().w.can_push()) {
          axi::AxiW beat;
          for (unsigned e = 0; e < 8; ++e) {
            const std::uint32_t v = 0xC0DE'0000u + w_sent * 8 + e;
            axi::place_bytes(beat.data, 4 * e,
                             reinterpret_cast<const std::uint8_t*>(&v), 4);
          }
          beat.strb = axi::strb_mask(0, 32);
          beat.useful_bytes = 32;
          ++w_sent;
          beat.last = w_sent == wbursts[0].beats();
          h.port().w.push(beat);
        }
        while (h.port().r.can_pop()) {
          const axi::AxiR beat = h.port().r.pop();
          for (unsigned e = 0; e < beat.useful_bytes / 4; ++e) {
            std::uint32_t v;
            axi::extract_bytes(beat.data, 4 * e,
                               reinterpret_cast<std::uint8_t*>(&v), 4);
            got.push_back(v);
          }
          if (beat.last) r_done = true;
        }
        if (h.port().b.can_pop()) {
          h.port().b.pop();
          b_seen = true;
        }
        return r_done && b_seen;
      },
      50'000);
  ASSERT_TRUE(ok) << "concurrent read+write did not drain";

  ASSERT_EQ(got.size(), 128u);
  for (std::uint32_t i = 0; i < 128; ++i) {
    EXPECT_EQ(got[i], 0x1000'0000u + i) << "read word " << i;
  }
  for (std::uint32_t i = 0; i < 128; ++i) {
    EXPECT_EQ(h.store().read_u32(dst + 4 * i), 0xC0DE'0000u + i)
        << "written word " << i;
  }
}

TEST(StridedReadTest, GathersStride) {
  AdapterHarness h;
  fill_pattern(h.store(), kBase, 4096);
  const std::int64_t stride = 5 * 4;  // the paper Fig. 1 example: stride 5
  const auto bursts = axi::split_pack_strided(kBase, stride, 4, 20, 32);
  ASSERT_EQ(bursts.size(), 1u);
  const auto data = h.read_burst(bursts[0]);
  ASSERT_EQ(data.size(), 20u * 4);
  std::vector<std::uint32_t> words(20);
  std::memcpy(words.data(), data.data(), data.size());
  for (std::uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(words[i], 0x1000'0000u + 5 * i) << "element " << i;
  }
}

TEST(StridedReadTest, NegativeStride) {
  AdapterHarness h;
  fill_pattern(h.store(), kBase, 256);
  const auto bursts =
      axi::split_pack_strided(kBase + 255 * 4, -4, 4, 17, 32);
  const auto data = h.read_burst(bursts[0]);
  std::vector<std::uint32_t> words(17);
  std::memcpy(words.data(), data.data(), data.size());
  for (std::uint32_t i = 0; i < 17; ++i) {
    EXPECT_EQ(words[i], 0x1000'0000u + 255 - i);
  }
}

TEST(StridedReadTest, WideElements64Bit) {
  AdapterHarness h;
  fill_pattern(h.store(), kBase, 4096);
  // 8-byte elements, stride 24 bytes: element i = words {6i, 6i+1}.
  const auto bursts = axi::split_pack_strided(kBase, 24, 8, 10, 32);
  const auto data = h.read_burst(bursts[0]);
  ASSERT_EQ(data.size(), 10u * 8);
  std::vector<std::uint32_t> words(20);
  std::memcpy(words.data(), data.data(), data.size());
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(words[2 * i], 0x1000'0000u + 6 * i);
    EXPECT_EQ(words[2 * i + 1], 0x1000'0000u + 6 * i + 1);
  }
}

TEST(StridedReadTest, PartialLastBeat) {
  AdapterHarness h;
  fill_pattern(h.store(), kBase, 256);
  const auto bursts = axi::split_pack_strided(kBase, 8, 4, 11, 32);
  ASSERT_EQ(bursts[0].beats(), 2u);  // 8 + 3
  const auto data = h.read_burst(bursts[0]);
  ASSERT_EQ(data.size(), 11u * 4);
  std::vector<std::uint32_t> words(11);
  std::memcpy(words.data(), data.data(), data.size());
  for (std::uint32_t i = 0; i < 11; ++i) {
    EXPECT_EQ(words[i], 0x1000'0000u + 2 * i);
  }
}

TEST(StridedWriteTest, ScattersStride) {
  AdapterHarness h;
  std::vector<std::uint32_t> payload(20);
  for (std::uint32_t i = 0; i < 20; ++i) payload[i] = 0xBEEF'0000 + i;
  const auto aws = axi::split_pack_strided(kBase, 12, 4, 20, 32);
  ASSERT_EQ(aws.size(), 1u);
  h.write_burst(aws[0], bytes_of_u32s(payload));
  for (std::uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(h.store().read_u32(kBase + 12ull * i), 0xBEEF'0000u + i);
  }
}

TEST(IndirectReadTest, GathersByIndex32) {
  AdapterHarness h;
  fill_pattern(h.store(), kBase, 4096);
  const std::uint64_t idx_base = kBase + 64 * 1024;
  const std::vector<std::uint32_t> indices = {4,  9,  14, 19, 24, 29, 34,
                                              39, 44, 49, 3,  1,  0,  2};
  h.store().write(idx_base, indices.data(), indices.size() * 4);
  const auto bursts = axi::split_pack_indirect(
      kBase, idx_base, 32, 4, indices.size(), 32);
  const auto data = h.read_burst(bursts[0]);
  ASSERT_EQ(data.size(), indices.size() * 4);
  std::vector<std::uint32_t> words(indices.size());
  std::memcpy(words.data(), data.data(), data.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(words[i], 0x1000'0000u + indices[i]) << "element " << i;
  }
}

TEST(IndirectReadTest, Index16And8) {
  for (const unsigned idx_bits : {16u, 8u}) {
    AdapterHarness h;
    fill_pattern(h.store(), kBase, 512);
    const std::uint64_t idx_base = kBase + 64 * 1024;
    const std::uint32_t n = 13;
    std::vector<std::uint8_t> raw;
    std::vector<std::uint32_t> expect;
    util::Rng rng(55);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t idx = static_cast<std::uint32_t>(rng.below(200));
      expect.push_back(idx);
      if (idx_bits == 16) {
        raw.push_back(static_cast<std::uint8_t>(idx & 0xFF));
        raw.push_back(static_cast<std::uint8_t>(idx >> 8));
      } else {
        raw.push_back(static_cast<std::uint8_t>(idx & 0xFF));
      }
    }
    h.store().write(idx_base, raw.data(), raw.size());
    const auto bursts =
        axi::split_pack_indirect(kBase, idx_base, idx_bits, 4, n, 32);
    const auto data = h.read_burst(bursts[0]);
    ASSERT_EQ(data.size(), n * 4u);
    std::vector<std::uint32_t> words(n);
    std::memcpy(words.data(), data.data(), data.size());
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t want =
          0x1000'0000u + (expect[i] & (idx_bits == 16 ? 0xFFFFu : 0xFFu));
      EXPECT_EQ(words[i], want) << "idx_bits=" << idx_bits << " elem " << i;
    }
  }
}

TEST(IndirectWriteTest, ScattersByIndex) {
  AdapterHarness h;
  const std::uint64_t idx_base = kBase + 64 * 1024;
  const std::vector<std::uint32_t> indices = {7, 3, 11, 200, 42, 0, 9};
  h.store().write(idx_base, indices.data(), indices.size() * 4);
  std::vector<std::uint32_t> payload(indices.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = 0xCAFE'0000u + static_cast<std::uint32_t>(i);
  }
  const auto aws = axi::split_pack_indirect(kBase, idx_base, 32, 4,
                                            indices.size(), 32);
  h.write_burst(aws[0], bytes_of_u32s(payload));
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(h.store().read_u32(kBase + 4ull * indices[i]),
              0xCAFE'0000u + i);
  }
}

TEST(AdapterTest, BackToBackMixedReads) {
  // A regular read between two strided reads: R bursts must come back in
  // AR order with correct data.
  AdapterHarness h;
  fill_pattern(h.store(), kBase, 4096);
  const auto s1 = axi::split_pack_strided(kBase, 8, 4, 16, 32)[0];
  const auto reg = axi::split_contiguous(kBase, 32 * 4, 32)[0];
  const auto s2 = axi::split_pack_strided(kBase + 4, 8, 4, 16, 32)[0];

  std::vector<std::vector<std::uint8_t>> results(3);
  std::size_t pushed = 0;
  std::size_t finished = 0;
  const std::vector<axi::AxiAr> ars = {s1, reg, s2};
  h.kernel().run_until(
      [&] {
        if (pushed < ars.size() && h.port().ar.can_push()) {
          h.port().ar.push(ars[pushed]);
          ++pushed;
        }
        while (h.port().r.can_pop()) {
          const axi::AxiR beat = h.port().r.pop();
          for (unsigned i = 0; i < beat.useful_bytes; ++i) {
            results[finished].push_back(beat.data[i]);
          }
          if (beat.last) ++finished;
        }
        return finished == 3;
      },
      100'000);
  ASSERT_EQ(finished, 3u);
  // First strided: words 0,2,4,...
  std::vector<std::uint32_t> w0(16);
  std::memcpy(w0.data(), results[0].data(), 64);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(w0[i], 0x1000'0000u + 2 * i);
  // Regular read: words 0..31.
  std::vector<std::uint32_t> w1(32);
  std::memcpy(w1.data(), results[1].data(), 128);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(w1[i], 0x1000'0000u + i);
  // Second strided: words 1,3,5,...
  std::vector<std::uint32_t> w2(16);
  std::memcpy(w2.data(), results[2].data(), 64);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(w2[i], 0x1000'0000u + 1 + 2 * i);
}

TEST(AdapterTest, StridedThroughputConflictFree) {
  // Stride = 17 words on 17 banks cycles all banks; a long burst should
  // stream near one beat per cycle.
  AdapterHarness h;
  fill_pattern(h.store(), kBase, 1u << 18);
  const auto bursts = axi::split_pack_strided(kBase, 4 * 4, 4, 2048, 32);
  const std::uint64_t start = h.kernel().now();
  for (const auto& ar : bursts) {
    h.read_burst(ar);
  }
  const std::uint64_t cycles = h.kernel().now() - start;
  const std::uint64_t beats = 2048 / 8;
  // Allow pipeline fill + inter-burst bubbles.
  EXPECT_LT(cycles, beats * 13 / 10 + 40);
}

// Property sweep: random (stride, element size, length) gathers must equal
// the reference gather exactly.
class StridedProperty
    : public ::testing::TestWithParam<std::tuple<int, unsigned, unsigned>> {};

TEST_P(StridedProperty, MatchesReferenceGather) {
  const auto [stride_words, elem_bytes, num_elems] = GetParam();
  AdapterHarnessConfig cfg;
  cfg.banks = 17;
  AdapterHarness h(cfg);
  fill_pattern(h.store(), kBase, 1u << 16);
  const std::uint64_t base = kBase + (1u << 17);
  fill_pattern(h.store(), base, 1u << 14);
  const std::int64_t stride = std::int64_t{stride_words} * 4;
  const std::uint64_t start =
      stride >= 0 ? base : base - stride * (num_elems - 1);
  const auto bursts =
      axi::split_pack_strided(start, stride, elem_bytes, num_elems, 32);
  std::vector<std::uint8_t> got;
  for (const auto& ar : bursts) {
    const auto part = h.read_burst(ar);
    got.insert(got.end(), part.begin(), part.end());
  }
  ASSERT_EQ(got.size(), std::size_t{num_elems} * elem_bytes);
  for (std::uint32_t i = 0; i < num_elems; ++i) {
    for (unsigned b = 0; b < elem_bytes; ++b) {
      std::uint8_t want;
      h.store().read(start + static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(i) * stride) +
                         b,
                     &want, 1);
      EXPECT_EQ(got[std::size_t{i} * elem_bytes + b], want)
          << "elem " << i << " byte " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StridedProperty,
    ::testing::Values(std::make_tuple(1, 4u, 64u), std::make_tuple(3, 4u, 33u),
                      std::make_tuple(17, 4u, 100u),
                      std::make_tuple(-2, 4u, 31u), std::make_tuple(0, 4u, 24u),
                      std::make_tuple(5, 8u, 40u), std::make_tuple(9, 16u, 20u),
                      std::make_tuple(2, 32u, 12u),
                      std::make_tuple(64, 4u, 513u),
                      std::make_tuple(7, 8u, 129u)));

// Property sweep over bank counts and queue depths: indirect gathers with
// random indices must match the reference for every memory configuration.
class IndirectProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(IndirectProperty, MatchesReferenceGather) {
  const auto [banks, depth] = GetParam();
  AdapterHarnessConfig cfg;
  cfg.banks = banks;
  cfg.queue_depth = depth;
  AdapterHarness h(cfg);
  fill_pattern(h.store(), kBase, 1u << 14);
  const std::uint64_t idx_base = kBase + (1u << 18);
  util::Rng rng(banks * 31 + depth);
  const std::uint32_t n = 200;
  std::vector<std::uint32_t> indices(n);
  for (auto& v : indices) v = static_cast<std::uint32_t>(rng.below(1u << 13));
  h.store().write(idx_base, indices.data(), indices.size() * 4);
  const auto bursts = axi::split_pack_indirect(kBase, idx_base, 32, 4, n, 32);
  std::vector<std::uint8_t> got;
  for (const auto& ar : bursts) {
    const auto part = h.read_burst(ar);
    got.insert(got.end(), part.begin(), part.end());
  }
  std::vector<std::uint32_t> words(n);
  std::memcpy(words.data(), got.data(), got.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(words[i], 0x1000'0000u + indices[i]) << "elem " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndirectProperty,
    ::testing::Combine(::testing::Values(0u, 8u, 11u, 16u, 17u, 31u, 32u),
                       ::testing::Values(1u, 4u, 32u)));

}  // namespace
}  // namespace axipack
