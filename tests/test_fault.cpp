// Fault injection, error-response propagation and master-side recovery.
//
// Three layers of coverage:
//   * FaultPlan unit behaviour — deterministic hashing, zero-rate inertness,
//     forced-event overrides;
//   * pinned single faults through full systems — one forced fault per run
//     at each site (link flip/truncate/stall, DRAM read/write, packed-beat
//     corruption), recovered by the master retry path, plus the failure
//     modes (retry disabled, breaker degradation to base mode);
//   * rate-driven end-to-end runs — the pack-256-dram-f{F}-r{R} family at a
//     fault rate high enough that every site fires, across the headline
//     kernels and the non-DRAM backends, with results still bit-correct.
//
// The zero-fault identity test is the subsystem's "do no harm" contract: a
// system built with an all-zero FaultConfig (plan attached, nothing fires)
// must be cycle- and stat-identical to one built without faults() at all.
#include "test_common.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "systems/runner.hpp"
#include "systems/scenario.hpp"
#include "systems/system.hpp"
#include "workloads/workloads.hpp"

namespace axipack {
namespace {

sim::RetryConfig retry4() {
  sim::RetryConfig rc;
  rc.max_attempts = 4;
  rc.timeout_cycles = 50'000;
  rc.backoff = 16;
  return rc;
}

struct Pin {
  sim::FaultSite site;
  std::uint64_t nth;
  int kind;
};

/// Builds `scenario` (optionally patched), pins the requested faults, runs
/// one planned workload and returns the result.
sys::RunResult run_faulted(
    const std::string& scenario, wl::KernelKind kernel,
    const std::function<void(sys::SystemBuilder&)>& patch,
    const std::vector<Pin>& pins = {}) {
  sys::SystemBuilder b = sys::ScenarioRegistry::instance().builder(scenario);
  if (patch) patch(b);
  std::unique_ptr<sys::System> system = b.build();
  EXPECT_TRUE(pins.empty() || system->fault_plan() != nullptr)
      << scenario << ": pins require SystemBuilder::faults";
  if (system->fault_plan()) {
    for (const Pin& p : pins) system->fault_plan()->force(p.site, p.nth, p.kind);
  }
  wl::WorkloadConfig cfg = sys::plan_workload(kernel, b);
  if (wl::kernel_is_indirect(kernel)) {
    cfg.n = 64;
    cfg.nnz_per_row = 16;
  } else {
    cfg.n = 64;
  }
  const wl::WorkloadInstance inst = wl::build_workload(system->store(), cfg);
  return system->run(inst);
}

// --------------------------------------------------------------- plan unit

TEST(FaultPlan, DeterministicAcrossInstances) {
  const sim::FaultConfig cfg = sim::FaultConfig::defaults(500.0);
  sim::FaultPlan a(cfg);
  sim::FaultPlan c(cfg);
  unsigned fired = 0;
  for (int i = 0; i < 20000; ++i) {
    sim::Cycle stall_a = 0, stall_c = 0;
    unsigned bit_a = 0, bit_c = 0;
    const sim::LinkFault fa = a.next_link_r(&stall_a, &bit_a);
    const sim::LinkFault fc = c.next_link_r(&stall_c, &bit_c);
    ASSERT_EQ(static_cast<int>(fa), static_cast<int>(fc)) << "event " << i;
    if (fa == sim::LinkFault::flip || fa == sim::LinkFault::truncate) {
      ASSERT_EQ(bit_a, bit_c) << "event " << i;
    }
    if (fa == sim::LinkFault::stall) ASSERT_EQ(stall_a, stall_c);
    if (fa != sim::LinkFault::none) ++fired;
  }
  EXPECT_GT(fired, 0u) << "rates high enough that the schedule must fire";
  EXPECT_EQ(a.stats().injected, fired);
  EXPECT_EQ(a.stats().injected, c.stats().injected);
}

TEST(FaultPlan, SeedChangesTheSchedule) {
  sim::FaultConfig cfg = sim::FaultConfig::defaults(500.0);
  sim::FaultPlan a(cfg);
  cfg.seed = 99;
  sim::FaultPlan c(cfg);
  bool differs = false;
  for (int i = 0; i < 20000 && !differs; ++i) {
    sim::Cycle stall = 0;
    unsigned bit = 0;
    differs = a.next_link_r(&stall, &bit) != c.next_link_r(&stall, &bit);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, ZeroRatesNeverFire) {
  sim::FaultPlan plan{sim::FaultConfig{}};
  for (int i = 0; i < 10000; ++i) {
    sim::Cycle stall = 0;
    unsigned bit = 0;
    bool correctable = false;
    EXPECT_TRUE(plan.next_link_r(&stall, &bit) == sim::LinkFault::none);
    EXPECT_FALSE(plan.next_dram_read(&correctable, &bit));
    EXPECT_FALSE(plan.next_dram_write());
    EXPECT_FALSE(plan.next_pack_beat(sim::FaultSite::pack_strided, &bit));
    EXPECT_FALSE(plan.next_pack_beat(sim::FaultSite::pack_indirect, &bit));
  }
  EXPECT_EQ(plan.stats().injected, 0u);
}

TEST(FaultPlan, ForcedEventsOverrideTheSchedule) {
  sim::FaultPlan plan{sim::FaultConfig{}};
  plan.force(sim::FaultSite::link_r, 2, 2);        // truncate the 3rd beat
  plan.force(sim::FaultSite::dram_read, 1, 1);     // correctable
  plan.force(sim::FaultSite::dram_read, 3, 2);     // uncorrectable
  plan.force(sim::FaultSite::dram_write, 0, 1);
  plan.force(sim::FaultSite::pack_indirect, 4, 1);
  sim::Cycle stall = 0;
  unsigned bit = 0;
  bool correctable = false;
  for (int i = 0; i < 5; ++i) {
    const sim::LinkFault f = plan.next_link_r(&stall, &bit);
    EXPECT_TRUE(f == (i == 2 ? sim::LinkFault::truncate : sim::LinkFault::none))
        << "link event " << i;
  }
  for (int i = 0; i < 5; ++i) {
    const bool faulted = plan.next_dram_read(&correctable, &bit);
    EXPECT_EQ(faulted, i == 1 || i == 3) << "dram read event " << i;
    if (faulted) EXPECT_EQ(correctable, i == 1);
  }
  EXPECT_TRUE(plan.next_dram_write());
  EXPECT_FALSE(plan.next_dram_write());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(plan.next_pack_beat(sim::FaultSite::pack_indirect, &bit), i == 4)
        << "pack event " << i;
    EXPECT_FALSE(plan.next_pack_beat(sim::FaultSite::pack_strided, &bit));
  }
  EXPECT_EQ(plan.stats().injected, 5u);
  EXPECT_EQ(plan.stats().link_truncations, 1u);
  EXPECT_EQ(plan.stats().dram_correctable, 1u);
  EXPECT_EQ(plan.stats().dram_uncorrectable, 1u);
  EXPECT_EQ(plan.stats().dram_write_errors, 1u);
  EXPECT_EQ(plan.stats().pack_corruptions, 1u);
}

// ------------------------------------------------- do-no-harm (zero rates)

TEST(FaultFree, ZeroRatePlanIsCycleIdentical) {
  // Attaching an all-zero-rate plan plus the full retry/watchdog machinery
  // must not move a single cycle or beat on any backend.
  for (const std::string scenario :
       {std::string("pack-256-17b"), std::string("pack-256-dram"),
        std::string("base-256-dram"), std::string("pack-dram-coalesce")}) {
    const auto kernel = wl::KernelKind::spmv;
    const sys::RunResult plain = run_faulted(scenario, kernel, nullptr);
    const sys::RunResult armed = run_faulted(
        scenario, kernel, [](sys::SystemBuilder& b) {
          b.faults(sim::FaultConfig{});
          b.retry(retry4());
        });
    EXPECT_TRUE(plain.correct) << scenario << ": " << plain.error;
    EXPECT_TRUE(armed.correct) << scenario << ": " << armed.error;
    EXPECT_EQ(plain.cycles, armed.cycles) << scenario;
    EXPECT_EQ(plain.bus.r_beats, armed.bus.r_beats) << scenario;
    EXPECT_EQ(plain.bus.w_beats, armed.bus.w_beats) << scenario;
    EXPECT_EQ(armed.faults_injected, 0u) << scenario;
    EXPECT_EQ(armed.retries, 0u) << scenario;
    EXPECT_EQ(armed.retry_timeouts, 0u) << scenario;
    EXPECT_FALSE(armed.degraded) << scenario;
  }
}

// ---------------------------------------------------- pinned single faults

void arm_zero(sys::SystemBuilder& b) {
  b.faults(sim::FaultConfig{});
  b.retry(retry4());
}

TEST(FaultRecovery, LinkBitFlip) {
  const sys::RunResult r =
      run_faulted("pack-256-17b", wl::KernelKind::gemv, arm_zero,
                  {{sim::FaultSite::link_r, 7, 1}});
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_GE(r.retries, 1u);
  EXPECT_EQ(r.failed_ops, 0u);
}

TEST(FaultRecovery, LinkTruncation) {
  const sys::RunResult r =
      run_faulted("pack-256-17b", wl::KernelKind::gemv, arm_zero,
                  {{sim::FaultSite::link_r, 12, 2}});
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_GE(r.retries, 1u);
}

TEST(FaultRecovery, LinkStallIsTransparent) {
  // A short stall delays beats but corrupts nothing: no retry, no error,
  // same data — only the fault counter records it.
  const sys::RunResult r =
      run_faulted("pack-256-17b", wl::KernelKind::gemv, arm_zero,
                  {{sim::FaultSite::link_r, 9, 3}});
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.retry_timeouts, 0u);
}

TEST(FaultRecovery, LongStallTripsTheWatchdog) {
  // A stall longer than the watchdog: the master times the op out, drains
  // the late (stale) beats and replays — still bit-correct.
  const sys::RunResult r = run_faulted(
      "pack-256-17b", wl::KernelKind::gemv,
      [](sys::SystemBuilder& b) {
        sim::FaultConfig fc;
        fc.link_stall_cycles = 600;
        b.faults(fc);
        sim::RetryConfig rc = retry4();
        rc.timeout_cycles = 200;
        b.retry(rc);
      },
      {{sim::FaultSite::link_r, 20, 3}});
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_GE(r.retry_timeouts, 1u);
  EXPECT_GE(r.retries, 1u);
}

TEST(FaultRecovery, DramUncorrectableRead) {
  const sys::RunResult r =
      run_faulted("pack-256-dram", wl::KernelKind::spmv, arm_zero,
                  {{sim::FaultSite::dram_read, 11, 2}});
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.faults_uncorrectable, 1u);
  EXPECT_GE(r.retries, 1u);
}

TEST(FaultRecovery, DramCorrectableReadNeedsNoRetry) {
  const sys::RunResult r =
      run_faulted("pack-256-dram", wl::KernelKind::spmv, arm_zero,
                  {{sim::FaultSite::dram_read, 11, 1}});
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.faults_corrected, 1u);
  EXPECT_EQ(r.faults_uncorrectable, 0u);
  EXPECT_EQ(r.retries, 0u);
}

TEST(FaultRecovery, DramWriteError) {
  // The faulted write is dropped (memory never silently corrupted) and the
  // master rewrites on retry. ismt is the headline kernel whose stores
  // travel the AXI write path (the reduction kernels store through the
  // scalar core, which no memory fault can reach).
  const sys::RunResult r =
      run_faulted("pack-256-dram", wl::KernelKind::ismt, arm_zero,
                  {{sim::FaultSite::dram_write, 0, 1}});
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_GE(r.retries, 1u);
}

TEST(FaultRecovery, PackedIndirectBeatCorruption) {
  const sys::RunResult r =
      run_faulted("pack-256-17b", wl::KernelKind::spmv, arm_zero,
                  {{sim::FaultSite::pack_indirect, 2, 1}});
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_GE(r.retries, 1u);
}

TEST(FaultRecovery, PackedStridedBeatCorruption) {
  const sys::RunResult r =
      run_faulted("pack-256-17b", wl::KernelKind::gemv, arm_zero,
                  {{sim::FaultSite::pack_strided, 2, 1}});
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_GE(r.retries, 1u);
}

TEST(FaultRecovery, CoalescedFillError) {
  // An uncorrectable DRAM fault under the coalescing stage: the errored
  // fill must error every merged waiter (never serve retained corrupt
  // words), and the retry must still converge to correct data.
  const sys::RunResult r =
      run_faulted("pack-dram-coalesce", wl::KernelKind::spmv, arm_zero,
                  {{sim::FaultSite::dram_read, 5, 2}});
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.faults_uncorrectable, 1u);
  EXPECT_GE(r.retries, 1u);
  EXPECT_GT(r.coalesce_merged, 0u);
}

TEST(FaultRecovery, MultipleFaultSitesInOneRun) {
  const sys::RunResult r =
      run_faulted("pack-256-dram", wl::KernelKind::spmv, arm_zero,
                  {{sim::FaultSite::link_r, 5, 1},
                   {sim::FaultSite::link_r, 40, 2},
                   {sim::FaultSite::dram_read, 9, 2},
                   {sim::FaultSite::pack_indirect, 3, 1}});
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.faults_injected, 4u);
  EXPECT_GE(r.retries, 3u);
  EXPECT_EQ(r.failed_ops, 0u);
}

// --------------------------------------------------------- failure modes

TEST(FaultFailure, RetryDisabledFailsTheRun) {
  // faults() without retry(): error handling off — the first uncorrectable
  // fault fails the op and the run reports unrecoverable.
  const sys::RunResult r = run_faulted(
      "pack-256-dram", wl::KernelKind::spmv,
      [](sys::SystemBuilder& b) { b.faults(sim::FaultConfig{}); },
      {{sim::FaultSite::dram_read, 11, 2}});
  EXPECT_FALSE(r.correct);
  EXPECT_GE(r.failed_ops, 1u);
  EXPECT_EQ(r.error, "unrecoverable memory fault");
}

TEST(FaultFailure, BreakerDegradesToBaseMode) {
  // breaker_threshold=1: the first failed pack-path attempt trips the
  // breaker; the master re-plans the remaining pack ops in base (unpacked)
  // mode and the run completes correct but degraded.
  const sys::RunResult r = run_faulted(
      "pack-256-17b", wl::KernelKind::spmv,
      [](sys::SystemBuilder& b) {
        b.faults(sim::FaultConfig{});
        sim::RetryConfig rc = retry4();
        rc.breaker_threshold = 1;
        b.retry(rc);
      },
      {{sim::FaultSite::pack_indirect, 2, 1}});
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_TRUE(r.degraded);
  EXPECT_GE(r.retries, 1u);
  EXPECT_EQ(r.failed_ops, 0u);
}

// -------------------------------------------------- rate-driven end-to-end

TEST(FaultEndToEnd, HeadlineKernelsRecoverAtHighFaultRates) {
  // The parametric scenario family, at a rate high enough that faults are
  // all but guaranteed in a small run (tens of expected events against
  // thousands of DRAM grants) while a 4-attempt budget still recovers
  // every op; each kernel must return data identical to a fault-free run
  // (the workload check verifies against golden results).
  for (const auto kernel : {wl::KernelKind::spmv, wl::KernelKind::prank,
                            wl::KernelKind::sssp, wl::KernelKind::gemv}) {
    const sys::RunResult r =
        run_faulted("pack-256-dram-f50-r4", kernel, nullptr);
    EXPECT_TRUE(r.correct) << wl::kernel_name(kernel) << ": " << r.error;
    EXPECT_GT(r.faults_injected, 0u) << wl::kernel_name(kernel);
    EXPECT_EQ(r.failed_ops, 0u) << wl::kernel_name(kernel);
  }
}

TEST(FaultEndToEnd, RegisteredFaultScenarioRuns) {
  const sys::RunResult r =
      run_faulted("pack-dram-faults", wl::KernelKind::spmv, nullptr);
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.failed_ops, 0u);
}

TEST(FaultEndToEnd, NonDramBackendsRecover) {
  // banked and ideal backends have no DRAM fault site — drive the link and
  // pack sites rate-high on those fabrics.
  for (const std::string scenario :
       {std::string("pack-256-17b"), std::string("pack-256-idealmem")}) {
    const sys::RunResult r = run_faulted(
        scenario, wl::KernelKind::spmv, [](sys::SystemBuilder& b) {
          sim::FaultConfig fc;
          fc.link_flip_rate = 4e-3;
          fc.link_truncate_rate = 1e-3;
          fc.link_stall_rate = 2e-3;
          fc.pack_corrupt_rate = 2e-3;
          b.faults(fc);
          b.retry(retry4());
        });
    EXPECT_TRUE(r.correct) << scenario << ": " << r.error;
    EXPECT_GT(r.faults_injected, 0u) << scenario;
    EXPECT_EQ(r.failed_ops, 0u) << scenario;
  }
}

// ----------------------------------------------------------- observability

TEST(FaultObservability, RunResultJsonCarriesFaultFields) {
  const sys::RunResult r =
      run_faulted("pack-256-dram", wl::KernelKind::spmv, arm_zero,
                  {{sim::FaultSite::dram_read, 3, 2}});
  const std::string json = r.to_json();
  for (const char* key :
       {"\"faults_injected\"", "\"faults_corrected\"",
        "\"faults_uncorrectable\"", "\"retries\"", "\"retry_timeouts\"",
        "\"failed_ops\"", "\"degraded\""}) {
    EXPECT_TRUE(json.find(key) != std::string::npos) << key;
  }
  EXPECT_TRUE(json.find("\"faults_injected\": 1") != std::string::npos)
      << json;
}

}  // namespace
}  // namespace axipack
