// ScenarioRegistry and SystemBuilder topology tests: every registered
// scenario must build, parametric names must parse, memory backends must be
// pluggable, and the dual-master scenario's run results must be exact.
#include "test_common.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "dma/descriptor.hpp"
#include "mem/backend.hpp"
#include "systems/runner.hpp"
#include "systems/scenario.hpp"
#include "systems/system.hpp"

namespace axipack {
namespace {

using sys::ScenarioRegistry;
using sys::System;
using sys::SystemBuilder;
using sys::SystemKind;

TEST(ScenarioRegistry, ListsTheCoreScenarios) {
  const auto names = ScenarioRegistry::instance().names();
  EXPECT_GE(names.size(), 6u);
  for (const char* required :
       {"base-256-17b", "pack-256-17b", "ideal-256", "pack-256-idealmem",
        "dual-master-pack", "dual-dma-pack"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << "missing scenario " << required;
  }
}

TEST(ScenarioRegistry, EveryRegisteredScenarioBuilds) {
  for (const auto& name : ScenarioRegistry::instance().names()) {
    std::unique_ptr<System> system = ScenarioRegistry::instance().build(name);
    ASSERT_NE(system, nullptr) << name;
    EXPECT_TRUE(system->drained()) << name << " not quiescent at reset";
  }
}

TEST(ScenarioRegistry, ScenarioNameRoundTrips) {
  EXPECT_EQ(sys::scenario_name(SystemKind::pack), "pack-256-17b");
  EXPECT_EQ(sys::scenario_name(SystemKind::base, 128), "base-128-17b");
  EXPECT_EQ(sys::scenario_name(SystemKind::pack, 256, 31), "pack-256-31b");
  EXPECT_EQ(sys::scenario_name(SystemKind::ideal, 64), "ideal-64");
  for (const auto kind :
       {SystemKind::base, SystemKind::pack, SystemKind::ideal}) {
    for (const unsigned bus : {64u, 128u, 256u}) {
      EXPECT_TRUE(ScenarioRegistry::instance().contains(
          sys::scenario_name(kind, bus)))
          << sys::scenario_name(kind, bus);
    }
  }
}

TEST(ScenarioRegistry, ParsesParametricBankCounts) {
  // pack-256-31b is not registered explicitly; the parametric family
  // resolves it, and the resulting system runs correctly.
  EXPECT_EQ(ScenarioRegistry::instance().find("pack-256-31b"), nullptr);
  ASSERT_TRUE(ScenarioRegistry::instance().contains("pack-256-31b"));
  auto cfg = sys::plan_workload(wl::KernelKind::spmv, "pack-256-31b");
  cfg.n = 48;
  cfg.nnz_per_row = 24;
  const auto result = sys::run_workload("pack-256-31b", cfg);
  EXPECT_TRUE(result.correct) << result.error;
}

TEST(ScenarioRegistry, RejectsMalformedNames) {
  auto& reg = ScenarioRegistry::instance();
  EXPECT_FALSE(reg.contains("pack-512-17b"));  // unsupported bus width
  EXPECT_FALSE(reg.contains("pack-256-0b"));   // zero banks
  EXPECT_FALSE(reg.contains("pack-256-17"));   // missing 'b' suffix
  EXPECT_FALSE(reg.contains("ideal-256-17b")); // ideal takes no bank count
  EXPECT_FALSE(reg.contains("warp-256-17b"));  // unknown family
  // 2^32 + 17: must not wrap around to a "valid" 17-bank system.
  EXPECT_FALSE(reg.contains("pack-256-4294967313b"));
  EXPECT_FALSE(reg.contains(""));
}

TEST(ScenarioRegistry, CustomScenariosCanBeRegistered) {
  ScenarioRegistry::instance().add(
      {"test-tiny-pack", "pack SoC with an 8-bank memory (test-local)", [] {
         SystemBuilder b;
         b.bus_bits(64).banks(8);
         b.attach_processor(vproc::VlsuMode::pack);
         return b;
       }});
  ASSERT_TRUE(ScenarioRegistry::instance().contains("test-tiny-pack"));
  auto cfg = sys::plan_workload(wl::KernelKind::ismt, "test-tiny-pack");
  cfg.n = 32;
  const auto result = sys::run_workload("test-tiny-pack", cfg);
  EXPECT_TRUE(result.correct) << result.error;
}

TEST(MemoryBackends, RegistryListsBuiltins) {
  auto& reg = mem::BackendRegistry::instance();
  EXPECT_TRUE(reg.contains("banked"));
  EXPECT_TRUE(reg.contains("ideal"));
  EXPECT_TRUE(reg.contains("dram"));
  EXPECT_FALSE(reg.contains("hbm3-someday"));
}

TEST(MemoryBackends, DramScenariosRunEndToEnd) {
  // base-dram / pack-dram resolve through the registry, execute a real
  // workload over the DRAM timing model, and report row-buffer stats.
  auto& reg = ScenarioRegistry::instance();
  ASSERT_TRUE(reg.contains("base-dram"));
  ASSERT_TRUE(reg.contains("pack-dram"));
  for (const auto kind : {SystemKind::base, SystemKind::pack}) {
    const std::string name = std::string(system_name(kind)) + "-dram";
    auto cfg = sys::plan_workload(wl::KernelKind::ismt, name);
    cfg.n = 64;
    const auto r = sys::run_workload(name, cfg);
    EXPECT_TRUE(r.correct) << name << ": " << r.error;
    EXPECT_GT(r.row_hits + r.row_misses, 0u) << name;
    EXPECT_EQ(r.row_hits + r.row_misses, r.bank_grants) << name;
    EXPECT_GT(r.row_hit_ratio(), 0.0) << name;
  }
}

TEST(MemoryBackends, DramParametricFamilyParses) {
  auto& reg = ScenarioRegistry::instance();
  EXPECT_TRUE(reg.contains("pack-128-dram"));
  EXPECT_TRUE(reg.contains("base-64-dram"));
  EXPECT_FALSE(reg.contains("pack-96-dram"));   // bus width not swept
  EXPECT_FALSE(reg.contains("ideal-256-dram"));  // ideal has no fabric
  EXPECT_FALSE(reg.contains("pack-256-dramm"));
  auto cfg = sys::plan_workload(wl::KernelKind::gemv, "pack-128-dram");
  cfg.n = 48;
  const auto r = sys::run_workload("pack-128-dram", cfg);
  EXPECT_TRUE(r.correct) << r.error;
  EXPECT_EQ(r.bus_bits, 128u);
  EXPECT_GT(r.row_hits, 0u);
}

TEST(MemoryBackends, DramSchedulerKnobSuffixesParse) {
  auto& reg = ScenarioRegistry::instance();
  // Window / cap / request-depth knobs, in any order, each at most once.
  EXPECT_TRUE(reg.contains("pack-256-dram-w1"));
  EXPECT_TRUE(reg.contains("pack-256-dram-w16-c128"));
  EXPECT_TRUE(reg.contains("base-128-dram-c0"));
  EXPECT_TRUE(reg.contains("pack-64-dram-q32"));
  EXPECT_TRUE(reg.contains("pack-256-dram-c16-w8"));   // order-free
  EXPECT_TRUE(reg.contains("pack-256-dram-w32-c48-q64"));
  // Malformed: unknown knob, missing value, zero window/depth, duplicates.
  EXPECT_FALSE(reg.contains("pack-256-dram-z4"));
  EXPECT_FALSE(reg.contains("pack-256-dram-w"));
  EXPECT_FALSE(reg.contains("pack-256-dram-w0"));
  EXPECT_FALSE(reg.contains("pack-256-dram-q0"));
  EXPECT_FALSE(reg.contains("pack-256-dram-w4-w8"));
  EXPECT_FALSE(reg.contains("pack-256-dram-w4c8"));
  EXPECT_FALSE(reg.contains("pack-256-dram-"));
}

TEST(MemoryBackends, RepeatedKnobNamesTheOffender) {
  // A repeated knob must be rejected with a diagnostic naming the knob —
  // historically it disengaged silently and surfaced only as a generic
  // "unknown scenario" abort far from the typo.
  for (const char knob : {'w', 'c', 'q', 'x', 'g', 'f', 'r', 'p', 'b'}) {
    const std::string name = std::string("pack-256-dram-") + knob + "4-" +
                             knob + "8";
    std::string error;
    EXPECT_FALSE(sys::parse_scenario(name, &error).has_value()) << name;
    EXPECT_NE(error.find(name), std::string::npos) << error;
    EXPECT_NE(error.find(std::string("'-") + knob + "'"), std::string::npos)
        << "diagnostic for " << name << " does not name the knob: " << error;
  }
  // Repeats separated by other knobs are still repeats.
  std::string error;
  EXPECT_FALSE(
      sys::parse_scenario("pack-256-dram-w8-c16-w32", &error).has_value());
  EXPECT_NE(error.find("'-w'"), std::string::npos) << error;
  // Names that merely belong to no family leave the diagnostic untouched.
  error.clear();
  EXPECT_FALSE(sys::parse_scenario("not-a-scenario", &error).has_value());
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_FALSE(sys::parse_scenario("pack-256-dram-z4", &error).has_value());
  EXPECT_TRUE(error.empty()) << error;
  // Valid parametric points still parse with the diagnostic parameter set.
  EXPECT_TRUE(sys::parse_scenario("pack-256-dram-w8-c16", &error).has_value());
  EXPECT_TRUE(error.empty()) << error;
}

TEST(OpenLoopScenarios, TrafficKnobsParse) {
  auto& reg = ScenarioRegistry::instance();
  // -p{RATE} (requests per 100k cycles) and -b{BURST} compose with every
  // other knob, in any order.
  EXPECT_TRUE(reg.contains("pack-256-dram-p40"));
  EXPECT_TRUE(reg.contains("base-128-dram-p160"));
  EXPECT_TRUE(reg.contains("pack-256-dram-p80-b16"));
  EXPECT_TRUE(reg.contains("pack-256-dram-b16-p80"));  // order-free
  EXPECT_TRUE(reg.contains("pack-256-dram-x512-g16-ch2-p320"));
  EXPECT_TRUE(reg.contains("pack-256-dram-f50-r4-p80"));
  // Zero rate / zero burst are malformed, not "disabled".
  EXPECT_FALSE(reg.contains("pack-256-dram-p0"));
  EXPECT_FALSE(reg.contains("pack-256-dram-p40-b0"));
  // Named open-loop scenarios are registered.
  EXPECT_TRUE(reg.contains("open-loop-base-dram"));
  EXPECT_TRUE(reg.contains("open-loop-pack-dram"));
  EXPECT_TRUE(reg.contains("open-loop-coalesce-dram"));
}

TEST(OpenLoopScenarios, BurstWithoutRateNamesTheProblem) {
  // A burst length with no arrival rate shapes nothing: loud diagnostic,
  // like repeated knobs, instead of silently running closed-loop.
  std::string error;
  EXPECT_FALSE(sys::parse_scenario("pack-256-dram-b16", &error).has_value());
  EXPECT_NE(error.find("'-b16'"), std::string::npos) << error;
  EXPECT_NE(error.find("-p{R}"), std::string::npos) << error;
}

TEST(OpenLoopScenarios, TrafficKnobBuildsADriverAndKeepsMasterNumbering) {
  // -p attaches the sg master last: master 0 stays the processor and -m
  // numbering is unchanged relative to the closed-loop family member.
  auto system = ScenarioRegistry::instance().build("pack-256-dram-p40");
  EXPECT_NE(system->traffic_driver(), nullptr);
  EXPECT_TRUE(system->is_processor(0));
  EXPECT_TRUE(system->is_dma(system->num_masters() - 1));
  // The narrow variant's sg engine must also be narrow (that asymmetry is
  // the whole open-loop comparison).
  auto base = ScenarioRegistry::instance().build("base-256-dram-p40");
  EXPECT_FALSE(base->dma(base->num_masters() - 1).config().use_pack);
  auto pack = ScenarioRegistry::instance().build("pack-256-dram-p40");
  EXPECT_TRUE(pack->dma(pack->num_masters() - 1).config().use_pack);
}

TEST(MemoryBackends, SchedWindowScenarioRunsAndShiftsHitRatio) {
  // The parsed knobs must actually reach the scheduler: an indirect
  // workload on the head-only scheduler thrashes rows; the batched default
  // recovers them (the PR-3 DRAM finding and its fix, in miniature).
  // Large enough that the index/value/x regions span several DRAM rows per
  // bank (smaller sets fit one row-span and never thrash).
  auto cfg = sys::plan_workload(wl::KernelKind::spmv, "pack-256-dram-w1");
  cfg.n = 192;
  cfg.nnz_per_row = 64;
  const auto plain = sys::run_workload("pack-256-dram-w1", cfg);
  const auto batched = sys::run_workload("pack-256-dram", cfg);
  ASSERT_TRUE(plain.correct) << plain.error;
  ASSERT_TRUE(batched.correct) << batched.error;
  EXPECT_GT(batched.row_hit_ratio(), plain.row_hit_ratio() + 0.1)
      << "sched window had no effect on the indirect-kernel hit ratio";
  EXPECT_EQ(plain.row_batch_defer_cycles, 0u);  // w1 = batching disabled
}

TEST(MemoryBackends, IdealBackendRemovesBankConflicts) {
  // Same PACK pipeline, banked vs ideal backend: the ideal backend must
  // report no conflict losses and never be slower.
  auto cfg = sys::plan_workload(wl::KernelKind::spmv, "pack-256-17b");
  cfg.n = 64;
  cfg.nnz_per_row = 32;
  const auto banked = sys::run_workload("pack-256-17b", cfg);
  const auto ideal = sys::run_workload("pack-256-idealmem", cfg);
  ASSERT_TRUE(banked.correct) << banked.error;
  ASSERT_TRUE(ideal.correct) << ideal.error;
  EXPECT_EQ(ideal.bank_conflict_losses, 0u);
  EXPECT_LE(ideal.cycles, banked.cycles);
}

TEST(DualMasterScenario, RunResultsAreExact) {
  // The registered dual-master scenario: the vector processor runs ismt
  // while the DMA engine gathers a disjoint strided region. Both results
  // are verified element-exact, and both streams must actually have moved
  // over the one shared link.
  auto system = ScenarioRegistry::instance().build("dual-master-pack");
  ASSERT_EQ(system->num_masters(), 2u);
  mem::BackingStore& store = system->store();

  auto wc = sys::plan_workload(wl::KernelKind::ismt, "dual-master-pack");
  wc.n = 32;
  const wl::WorkloadInstance inst = wl::build_workload(store, wc);

  const std::uint64_t n = 512;
  const std::int64_t stride = 36;
  const std::uint64_t src = store.alloc(n * stride + 64, 64);
  const std::uint64_t dst = store.alloc(n * 4, 64);
  for (std::uint64_t i = 0; i < n; ++i) {
    store.write_u32(src + i * stride, 0xC0FE'0000u + std::uint32_t(i));
  }
  dma::Descriptor d;
  d.src = dma::Pattern::strided(src, stride);
  d.dst = dma::Pattern::contiguous(dst);
  d.elem_bytes = 4;
  d.num_elems = n;
  system->dma(1).push(d);

  system->processor(0).run(inst.program);
  ASSERT_TRUE(system->run_until_drained(2'000'000));

  std::string msg;
  EXPECT_TRUE(inst.check(store, msg)) << msg;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(store.read_u32(dst + 4 * i), 0xC0FE'0000u + i)
        << "dma element " << i;
  }
  ASSERT_NE(system->bus_stats(), nullptr);
  EXPECT_GT(system->bus_stats()->r_payload_bytes, n * 4);
  EXPECT_GT(system->dma(1).stats().bytes_moved, 0u);
}

TEST(DualDmaScenario, BothEnginesMoveTheirStreams) {
  auto system = ScenarioRegistry::instance().build("dual-dma-pack");
  ASSERT_EQ(system->num_masters(), 2u);
  mem::BackingStore& store = system->store();
  const std::uint64_t n = 256;
  std::uint64_t dsts[2];
  for (unsigned e = 0; e < 2; ++e) {
    const std::int64_t stride = e == 0 ? 36 : 52;
    const std::uint64_t src = store.alloc(n * stride + 64, 64);
    dsts[e] = store.alloc(n * 4, 64);
    for (std::uint64_t i = 0; i < n; ++i) {
      store.write_u32(src + i * stride, (e << 16) + std::uint32_t(i));
    }
    dma::Descriptor d;
    d.src = dma::Pattern::strided(src, stride);
    d.dst = dma::Pattern::contiguous(dsts[e]);
    d.elem_bytes = 4;
    d.num_elems = n;
    system->dma(e).push(d);
  }
  ASSERT_TRUE(system->run_until_drained(1'000'000));
  for (unsigned e = 0; e < 2; ++e) {
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(store.read_u32(dsts[e] + 4 * i), (e << 16) + i)
          << "engine " << e << " element " << i;
    }
  }
}

}  // namespace
}  // namespace axipack
